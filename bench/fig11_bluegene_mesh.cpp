// Figure 11: as Figure 10 but on 3D-MESH machines (wraparound links
// removed).
//
// Paper result: all times are higher than the torus case, but random
// placement suffers most from losing the wraparound paths — its messages
// travel long distances, while TopoLB/TopoCentLB mappings keep messages to
// a few hops where wraparound barely matters.
#include "bench/bluegene_common.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Fig 11: 2D Jacobi on BlueGene-style 3D-mesh machines");
  cli.add_option("procs", "machine sizes", "64,128,216,512");
  cli.add_option("iterations", "Jacobi iterations", "400");
  cli.add_option("msg-kb", "message size in KB", "100");
  cli.add_option("bandwidth", "link bandwidth MB/s", "175");
  cli.add_option("compute-us", "compute per iteration (us)", "20");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_flag("full", "add p=729 (several minutes)");
  if (!cli.parse(argc, argv)) return 0;

  auto procs = cli.int_list("procs");
  if (cli.flag("full")) procs.push_back(729);
  bench::run_bluegene_figure(
      "2D-mesh pattern on BlueGene 3D-mesh (Fig 11)", "fig11_bluegene_mesh",
      /*torus=*/false, procs, static_cast<int>(cli.integer("iterations")),
      cli.real("msg-kb") * 1024.0, cli.real("bandwidth"),
      cli.real("compute-us"), static_cast<std::uint64_t>(cli.integer("seed")));
  std::cout << "\nPaper shape check: every entry exceeds its Fig 10 (torus) "
               "counterpart, with the largest regression\n"
               "for random placement.\n";
  return 0;
}
