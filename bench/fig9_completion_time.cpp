// Figure 9: total completion time of 2000 iterations of the 2D-mesh
// benchmark on the 64-node (4,4,4) 3D-torus vs channel bandwidth.
//
// Paper result: at low bandwidth random placement takes more than 2x
// TopoLB's time; TopoCentLB also improves greatly on random but TopoLB
// beats it by ~10-25%.
#include "bench/common.hpp"
#include "core/contention.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "topo/torus_mesh.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Fig 9: completion time of 2000 iterations vs bandwidth");
  cli.add_option("bandwidths", "bandwidths in 100s of MB/s",
                 "0.5,1,1.5,2,2.5,3,3.5,4,4.5,5");
  cli.add_option("iterations", "Jacobi iterations", "2000");
  cli.add_option("msg-bytes", "message size in bytes", "2048");
  cli.add_option("compute-us", "compute per iteration (us)", "10");
  cli.add_option("seed", "RNG seed", "1");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  bench::preamble(
      "2D-mesh (8x8) on (4,4,4) 3D-torus: completion time vs bandwidth "
      "(Fig 9)",
      seed);

  const double msg_bytes = cli.real("msg-bytes");
  const auto g = graph::stencil_2d(8, 8, 2.0 * msg_bytes);
  const topo::TorusMesh torus = topo::TorusMesh::torus({4, 4, 4});
  Rng rng(seed);
  const core::Mapping m_greedy = core::make_strategy("greedy")->map(g, torus, rng);
  const core::Mapping m_cent = core::make_strategy("topocent")->map(g, torus, rng);
  const core::Mapping m_lb = core::make_strategy("topolb")->map(g, torus, rng);

  // Bandwidth-independent link-load proxy: the completion-time gap below is
  // driven by the busiest link, which this table predicts without simulating.
  Table contention("Per-link load (predicts the completion-time ordering)",
                   {"strategy", "max_link_B", "mean_link_B", "l2", "gini"},
                   4);
  const std::pair<const char*, const core::Mapping*> mappings[] = {
      {"greedy", &m_greedy}, {"topocent", &m_cent}, {"topolb", &m_lb}};
  for (const auto& [name, m] : mappings) {
    const core::ContentionStats s = core::contention_stats(g, torus, *m);
    contention.add_row(
        {std::string(name), s.max_bytes, s.mean_bytes, s.l2, s.gini});
  }
  bench::emit(contention, "fig9_link_contention");

  netsim::AppParams app;
  app.iterations = static_cast<int>(cli.integer("iterations"));
  app.compute_us = cli.real("compute-us");

  Table table("Total execution time (ms) for " +
                  std::to_string(app.iterations) + " iterations",
              {"bw_100MBps", "Random(greedyLB)", "TopoCentLB", "TopoLB",
               "rand/topolb", "cent/topolb"},
              2);
  for (double bw100 : cli.real_list("bandwidths")) {
    netsim::NetworkParams net;
    net.bandwidth = bw100 * 100.0;
    net.per_hop_latency_us = 0.1;
    net.injection_overhead_us = 0.5;
    const auto r_g = netsim::run_iterative_app(g, torus, m_greedy, app, net);
    const auto r_c = netsim::run_iterative_app(g, torus, m_cent, app, net);
    const auto r_l = netsim::run_iterative_app(g, torus, m_lb, app, net);
    table.add_row({bw100, r_g.completion_us / 1000.0,
                   r_c.completion_us / 1000.0, r_l.completion_us / 1000.0,
                   r_g.completion_us / r_l.completion_us,
                   r_c.completion_us / r_l.completion_us});
  }
  bench::emit(table, "fig9_completion_time");
  std::cout << "\nPaper shape check: at the congested (low-bandwidth) end "
               "random costs >2x TopoLB; TopoCentLB\n"
               "sits between them, ~10-25% above TopoLB.\n";
  return 0;
}
