// Shared driver for the LeanMD-workload experiments (Figures 5 & 6).
//
// Pipeline per processor count p (paper §5.2.3): run the instrumented MD
// exchange on the mini runtime to get a measured load database, partition
// the ~3.4k-object graph into p groups with the multilevel (METIS-
// substitute) partitioner, coalesce, then map the quotient graph with each
// strategy and report average hops-per-byte.  RefineTopoLB is applied on
// top of TopoLB as in the paper.
#pragma once

#include "bench/common.hpp"
#include "graph/quotient.hpp"
#include "graph/synthetic_md.hpp"
#include "partition/partition.hpp"
#include "runtime/apps.hpp"
#include "runtime/lb_manager.hpp"
#include "topo/factory.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::bench {

struct LeanMdRow {
  int p;
  double virtualization;   ///< objects per processor
  double avg_degree;       ///< quotient-graph average degree
  double random;
  double topocent;
  double topolb;
  double topolb_refined;
};

inline LeanMdRow leanmd_point(const graph::TaskGraph& objects,
                              const topo::Topology& topo, std::uint64_t seed,
                              int random_repeats) {
  const int p = topo.size();
  Rng rng(seed);
  const auto partitioner = part::make_partitioner("multilevel");
  const auto groups_assign = partitioner->partition(objects, p, rng).assignment;
  const graph::TaskGraph quotient =
      graph::quotient_graph(objects, groups_assign, p);

  LeanMdRow row{};
  row.p = p;
  row.virtualization = static_cast<double>(objects.num_vertices()) /
                       static_cast<double>(p);
  row.avg_degree = graph::average_degree(quotient);
  row.random = mean_hops_per_byte(*core::make_strategy("random"), quotient,
                                  topo, rng, random_repeats);
  row.topocent = mean_hops_per_byte(*core::make_strategy("topocent"),
                                    quotient, topo, rng, 1);
  row.topolb = mean_hops_per_byte(*core::make_strategy("topolb"), quotient,
                                  topo, rng, 1);
  row.topolb_refined = mean_hops_per_byte(
      *core::make_strategy("topolb+refine"), quotient, topo, rng, 1);
  return row;
}

/// Build the measured MD object graph once (instrumented runtime run).
inline graph::TaskGraph build_leanmd_objects(std::uint64_t seed,
                                             int iterations) {
  graph::MdParams params;  // defaults: 8x6x5 cells, ~3.4k objects
  Rng rng(seed);
  const graph::TaskGraph pattern = graph::synthetic_md(params, rng);
  const rts::LBDatabase db = rts::run_graph_exchange(pattern, iterations);
  return db.to_task_graph("leanmd-measured");
}

inline void run_leanmd_figure(const std::string& what,
                              const std::string& csv_name, int dims,
                              const std::vector<std::int64_t>& procs,
                              std::uint64_t seed, int random_repeats,
                              int md_iterations) {
  preamble(what, seed);
  const graph::TaskGraph objects = build_leanmd_objects(seed, md_iterations);
  std::cout << "objects: " << objects.num_vertices()
            << " (cells+pairs), edges: " << objects.num_edges() << "\n";

  Table table("Average hops per byte, LeanMD-like workload",
              {"p", "torus", "virt", "avg_deg", "Random", "TopoCentLB",
               "TopoLB", "TopoLB+Refine", "LB_vs_rand_%", "refine_extra_%"},
              3);
  for (auto p64 : procs) {
    const int p = static_cast<int>(p64);
    if (p > objects.num_vertices()) {
      std::cout << "skipping p=" << p << " (more processors than objects)\n";
      continue;
    }
    const auto topo =
        std::make_shared<topo::TorusMesh>(
            topo::TorusMesh::torus(topo::balanced_dims(p, dims)));
    const LeanMdRow row = leanmd_point(objects, *topo, seed, random_repeats);
    const double lb_vs_rand = 100.0 * (1.0 - row.topolb / row.random);
    const double refine_extra =
        100.0 * (1.0 - row.topolb_refined / row.topolb);
    table.add_row({static_cast<std::int64_t>(row.p), topo->name(),
                   row.virtualization, row.avg_degree, row.random,
                   row.topocent, row.topolb, row.topolb_refined, lb_vs_rand,
                   refine_extra});
  }
  emit(table, csv_name);
  std::cout << "\nPaper shape check: TopoLB ~30-40% below random (less at "
               "very high virtualization where the\n"
               "quotient graph is dense), TopoCentLB close behind, "
               "RefineTopoLB adds ~10% on top of TopoLB.\n";
}

}  // namespace topomap::bench
