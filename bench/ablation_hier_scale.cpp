// Ablation: HierTopoLB scale-up — million-task graphs on tens of
// thousands of processors (DESIGN.md §12).
//
// Two questions:
//   1. How does the multilevel coarsen/map/uncoarsen pipeline scale?  The
//      sweep runs a 3-D stencil from 8k tasks / 512 procs up to 1M tasks
//      on a 64^3 torus (262,144 procs) — far past flat TopoLB's O(n^2)
//      comfort zone — and reports per-stage level counts, runtime, and
//      mapping quality against the random expectation.
//   2. What does the hierarchy cost in quality?  At sizes where flat
//      TopoLB still runs (n == p <= a few thousand), hier and flat map
//      the same workload and the table reports the hop-bytes ratio
//      (acceptance gate: within 5%).
#include "bench/common.hpp"
#include "core/hier_topo_lb.hpp"
#include "graph/builders.hpp"
#include "topo/factory.hpp"

using namespace topomap;

namespace {

graph::TaskGraph make_stencil3d(int x, int y, int z) {
  return graph::stencil_3d(x, y, z, 1.0);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Ablation: HierTopoLB scale-up to million-task graphs");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("full", "include the 1M-task row (slowest)", "1");
  if (!cli.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const bool full = cli.integer("full") != 0;
  bench::preamble("hier scale-up", seed);

  // --- 1. scale sweep: tasks and machine grow together ---
  {
    struct Case {
      const char* tasks;
      int x, y, z;
      const char* machine;
    };
    std::vector<Case> cases = {
        {"stencil3d:20x20x20", 20, 20, 20, "torus:8x8x8"},
        {"stencil3d:32x32x32", 32, 32, 32, "torus:16x16x16"},
        {"stencil3d:64x64x64", 64, 64, 64, "torus:32x32x32"},
    };
    if (full)
      cases.push_back({"stencil3d:100x100x100", 100, 100, 100,
                       "torus:64x64x64"});
    Table table("hier scale sweep: 3-D stencil, tasks = 16 x procs",
                {"workload", "tasks", "procs", "t_lvls", "m_lvls", "swaps",
                 "seconds", "hops/byte", "E[random]"},
                3);
    for (const Case& c : cases) {
      const auto g = make_stencil3d(c.x, c.y, c.z);
      const auto t = topo::make_topology(c.machine);
      Rng rng(seed);
      core::HierResult r;
      const double secs =
          bench::timed([&] { r = core::hier_map(g, *t, rng); });
      table.add_row({std::string(c.tasks),
                     static_cast<std::int64_t>(g.num_vertices()),
                     static_cast<std::int64_t>(t->size()),
                     static_cast<std::int64_t>(r.task_levels),
                     static_cast<std::int64_t>(r.topo_levels),
                     static_cast<std::int64_t>(r.swaps), secs,
                     core::hops_per_byte(g, *t, r.mapping),
                     core::expected_random_hops(*t)});
    }
    bench::emit(table, "ablation_hier_scale_sweep");
    std::cout << "\nExpected: runtime grows roughly linearly in tasks "
                 "(single-digit seconds at 1M tasks / 64^3 torus) while "
                 "hops/byte stays a small multiple of the torus link "
                 "distance, far under the random expectation.\n\n";
  }

  // --- 2. quality vs flat TopoLB where both run (n == p) ---
  {
    struct Case {
      const char* label;
      int x, y, z;
      const char* machine;
    };
    const Case cases[] = {
        {"8x8x8 / torus:8x8x8", 8, 8, 8, "torus:8x8x8"},
        {"16x16x8 / torus:16x16x8", 16, 16, 8, "torus:16x16x8"},
        {"16x16x16 / torus:16x16x16", 16, 16, 16, "torus:16x16x16"},
    };
    Table table("hier vs flat TopoLB at square sizes (ratio gate: <= 1.05)",
                {"case", "flat_hb", "hier_hb", "ratio", "flat_sec", "hier_sec"},
                4);
    for (const Case& c : cases) {
      const auto g = make_stencil3d(c.x, c.y, c.z);
      const auto t = topo::make_topology(c.machine);
      const auto flat = core::make_strategy("topolb");
      const auto hier = core::make_strategy("hier");
      double flat_hb = 0.0, hier_hb = 0.0;
      Rng rng_flat(seed), rng_hier(seed);
      const double flat_s = bench::timed(
          [&] { flat_hb = core::hop_bytes(g, *t, flat->map(g, *t, rng_flat)); });
      const double hier_s = bench::timed(
          [&] { hier_hb = core::hop_bytes(g, *t, hier->map(g, *t, rng_hier)); });
      table.add_row({std::string(c.label), flat_hb, hier_hb,
                     hier_hb / flat_hb, flat_s, hier_s});
    }
    bench::emit(table, "ablation_hier_vs_flat");
    std::cout << "\nExpected: ratio <= 1.05 everywhere — the coarse solve "
                 "plus bounded refinement recovers flat TopoLB's quality "
                 "(often beating it, ratio < 1, thanks to the built-in "
                 "refinement sweeps).\n";
  }
  return 0;
}
