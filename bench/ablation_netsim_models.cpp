// Ablation (ours): do the two network service models agree?
//
// The wormhole (virtual cut-through) model is what the headline
// experiments use; the packetised store-and-forward model is the
// fine-grained cross-check.  Both must (a) match their analytic no-load
// latencies and (b) rank mappings identically — otherwise conclusions
// drawn from the fast model would be suspect.
#include "bench/common.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "topo/torus_mesh.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Ablation: wormhole vs store-and-forward service models");
  cli.add_option("iterations", "Jacobi iterations", "200");
  cli.add_option("msg-bytes", "message size in bytes", "4096");
  cli.add_option("bandwidths", "bandwidths in MB/s", "100,200,400,800");
  cli.add_option("seed", "RNG seed", "1");
  if (!cli.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  bench::preamble("network service-model ablation", seed);

  const double msg = cli.real("msg-bytes");
  const auto g = graph::stencil_2d(8, 8, 2.0 * msg);
  const topo::TorusMesh torus = topo::TorusMesh::torus({4, 4, 4});
  Rng rng(seed);
  const core::Mapping m_rand = core::make_strategy("random")->map(g, torus, rng);
  const core::Mapping m_lb = core::make_strategy("topolb")->map(g, torus, rng);

  netsim::AppParams app;
  app.iterations = static_cast<int>(cli.integer("iterations"));
  app.compute_us = 10.0;

  Table table("Completion time (ms): wormhole vs store-and-forward",
              {"bw_MBps", "WH_random", "WH_topolb", "SF_random", "SF_topolb",
               "WH_ratio", "SF_ratio"},
              2);
  for (double bw : cli.real_list("bandwidths")) {
    netsim::NetworkParams net;
    net.bandwidth = bw;
    net.per_hop_latency_us = 0.1;
    net.injection_overhead_us = 0.5;
    net.packet_bytes = 256.0;
    using SM = netsim::ServiceModel;
    const auto wh_r = netsim::run_iterative_app(g, torus, m_rand, app, net,
                                                SM::kWormhole);
    const auto wh_l = netsim::run_iterative_app(g, torus, m_lb, app, net,
                                                SM::kWormhole);
    const auto sf_r = netsim::run_iterative_app(g, torus, m_rand, app, net,
                                                SM::kStoreForward);
    const auto sf_l = netsim::run_iterative_app(g, torus, m_lb, app, net,
                                                SM::kStoreForward);
    table.add_row({bw, wh_r.completion_us / 1000.0,
                   wh_l.completion_us / 1000.0, sf_r.completion_us / 1000.0,
                   sf_l.completion_us / 1000.0,
                   wh_r.completion_us / wh_l.completion_us,
                   sf_r.completion_us / sf_l.completion_us});
  }
  bench::emit(table, "ablation_netsim_models");
  std::cout << "\nExpected: both models rank TopoLB ahead of random at every "
               "bandwidth, with similar ratios —\n"
               "the cheap wormhole model is a faithful stand-in for the "
               "packetised one.\n";
  return 0;
}
