// Shared helpers for the experiment harnesses (one binary per paper
// table/figure).  Each harness prints an aligned table with the same
// rows/series the paper reports and mirrors it to bench_results/<name>.csv
// plus a machine-readable obs::Report at bench_results/<name>.json — the
// JSON carries the table and, in instrumented builds (-DTOPOMAP_OBS=ON)
// with recording on (TOPOMAP_OBS=1), every counter/span the run recorded.
#pragma once

#include <chrono>
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/metrics.hpp"
#include "core/strategy.hpp"
#include "obs/report.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace topomap::bench {

/// Wall-clock seconds of a callable.
template <typename Fn>
double timed(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Mean hops-per-byte of `strategy` over `repeats` seeded runs (1 repeat
/// for the deterministic strategies).
inline double mean_hops_per_byte(const core::MappingStrategy& strategy,
                                 const graph::TaskGraph& g,
                                 const topo::Topology& topo, Rng& rng,
                                 int repeats) {
  Distribution d;
  for (int r = 0; r < repeats; ++r)
    d.add(core::hops_per_byte(g, topo, strategy.map(g, topo, rng)));
  return d.mean();
}

/// Print the table and mirror it to bench_results/<csv_name>.csv and, as an
/// obs::Report with the table plus any recorded counters/spans, to
/// bench_results/<csv_name>.json.
inline void emit(const Table& table, const std::string& csv_name) {
  table.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const std::string path = "bench_results/" + csv_name + ".csv";
  if (table.write_csv(path))
    std::cout << "(csv: " << path << ")\n";
  else
    std::cout << "(warning: could not write " << path << ")\n";

  obs::Report report;
  report.set_meta("bench", csv_name);
  std::vector<std::vector<obs::json::Value>> rows;
  rows.reserve(table.rows().size());
  for (const auto& row : table.rows()) {
    std::vector<obs::json::Value> cells;
    cells.reserve(row.size());
    for (const TableCell& cell : row)
      cells.push_back(std::visit(
          [](const auto& v) { return obs::json::Value(v); }, cell));
    rows.push_back(std::move(cells));
  }
  report.add_table(csv_name, table.columns(), std::move(rows));
  report.capture();
  const std::string json_path = "bench_results/" + csv_name + ".json";
  try {
    report.write_file(json_path);
    std::cout << "(json: " << json_path << ")\n";
  } catch (const std::exception&) {
    std::cout << "(warning: could not write " << json_path << ")\n";
  }
}

/// Common preamble: print the experiment header and the seed.
inline void preamble(const std::string& what, std::uint64_t seed) {
  std::cout << "topomap experiment: " << what << "\n"
            << "seed: " << seed << "\n";
}

}  // namespace topomap::bench
