// Shared helpers for the experiment harnesses (one binary per paper
// table/figure).  Each harness prints an aligned table with the same
// rows/series the paper reports and mirrors it to bench_results/<name>.csv.
#pragma once

#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/metrics.hpp"
#include "core/strategy.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace topomap::bench {

/// Wall-clock seconds of a callable.
template <typename Fn>
double timed(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Mean hops-per-byte of `strategy` over `repeats` seeded runs (1 repeat
/// for the deterministic strategies).
inline double mean_hops_per_byte(const core::MappingStrategy& strategy,
                                 const graph::TaskGraph& g,
                                 const topo::Topology& topo, Rng& rng,
                                 int repeats) {
  double total = 0.0;
  for (int r = 0; r < repeats; ++r)
    total += core::hops_per_byte(g, topo, strategy.map(g, topo, rng));
  return total / static_cast<double>(repeats);
}

/// Print the table and mirror it to bench_results/<csv_name>.csv.
inline void emit(const Table& table, const std::string& csv_name) {
  table.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const std::string path = "bench_results/" + csv_name + ".csv";
  if (table.write_csv(path))
    std::cout << "(csv: " << path << ")\n";
  else
    std::cout << "(warning: could not write " << path << ")\n";
}

/// Common preamble: print the experiment header and the seed.
inline void preamble(const std::string& what, std::uint64_t seed) {
  std::cout << "topomap experiment: " << what << "\n"
            << "seed: " << seed << "\n";
}

}  // namespace topomap::bench
