// §4.4 complexity claims, as google-benchmark microbenchmarks:
//   * TopoLB second order runs in ~O(p^2) on constant-degree task graphs;
//   * TopoLB third order costs O(p^3) — visibly steeper scaling;
//   * TopoCentLB runs in O(p * |E_t|), comparable to second-order TopoLB
//     but with a smaller constant;
//   * RefineTopoLB sweeps are O(p^2) per pass;
//   * the multilevel partitioner handles the MD-scale object graphs fast.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/metrics.hpp"
#include "core/refine_topo_lb.hpp"
#include "core/strategy.hpp"
#include "graph/builders.hpp"
#include "graph/synthetic_md.hpp"
#include "partition/partition.hpp"
#include "support/rng.hpp"
#include "topo/torus_mesh.hpp"

namespace {

using namespace topomap;

void map_stencil(benchmark::State& state, const char* strategy_spec) {
  const int side = static_cast<int>(state.range(0));
  const auto g = graph::stencil_2d(side, side, 1.0);
  const topo::TorusMesh torus = topo::TorusMesh::torus({side, side});
  const auto strategy = core::make_strategy(strategy_spec);
  Rng rng(1);
  for (auto _ : state) {
    auto m = strategy->map(g, torus, rng);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetComplexityN(side * side);
}

void BM_TopoLB_SecondOrder(benchmark::State& state) {
  map_stencil(state, "topolb");
}
BENCHMARK(BM_TopoLB_SecondOrder)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Complexity(benchmark::oNSquared);

void BM_TopoLB_FirstOrder(benchmark::State& state) {
  map_stencil(state, "topolb1");
}
BENCHMARK(BM_TopoLB_FirstOrder)->Arg(16)->Arg(32);

void BM_TopoLB_ThirdOrder(benchmark::State& state) {
  map_stencil(state, "topolb3");
}
BENCHMARK(BM_TopoLB_ThirdOrder)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(24)
    ->Complexity(benchmark::oNCubed);

void BM_TopoCentLB(benchmark::State& state) { map_stencil(state, "topocent"); }
BENCHMARK(BM_TopoCentLB)->Arg(8)->Arg(16)->Arg(32)->Complexity(
    benchmark::oNSquared);

void BM_RandomLB(benchmark::State& state) { map_stencil(state, "random"); }
BENCHMARK(BM_RandomLB)->Arg(32);

void BM_RefineTopoLB_OnePass(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const auto g = graph::stencil_2d(side, side, 1.0);
  const topo::TorusMesh torus = topo::TorusMesh::torus({side, side});
  Rng rng(2);
  const core::Mapping random = rng.permutation(side * side);
  for (auto _ : state) {
    auto r = core::refine_mapping(g, torus, random, /*max_passes=*/1);
    benchmark::DoNotOptimize(r.swaps);
  }
  state.SetComplexityN(side * side);
}
BENCHMARK(BM_RefineTopoLB_OnePass)->Arg(8)->Arg(16)->Arg(24)->Complexity(
    benchmark::oNSquared);

void BM_MultilevelPartition_Md(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  graph::MdParams params;
  params.cells_x = 4;
  params.cells_y = 4;
  params.cells_z = 4;
  Rng rng(3);
  const auto md = graph::synthetic_md(params, rng);
  const auto partitioner = part::make_partitioner("multilevel");
  for (auto _ : state) {
    auto r = partitioner->partition(md, k, rng);
    benchmark::DoNotOptimize(r.assignment.data());
  }
}
BENCHMARK(BM_MultilevelPartition_Md)->Arg(8)->Arg(32)->Arg(128);

void BM_HopBytesEvaluation(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const auto g = graph::stencil_2d(side, side, 1.0);
  const topo::TorusMesh torus = topo::TorusMesh::torus({side, side});
  Rng rng(4);
  const core::Mapping m = rng.permutation(side * side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hop_bytes(g, torus, m));
  }
}
BENCHMARK(BM_HopBytesEvaluation)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
