// §4.4 complexity claims, as google-benchmark microbenchmarks:
//   * TopoLB second order runs in ~O(p^2) on constant-degree task graphs;
//   * TopoLB third order costs O(p^3) — visibly steeper scaling;
//   * TopoCentLB runs in O(p * |E_t|), comparable to second-order TopoLB
//     but with a smaller constant;
//   * RefineTopoLB sweeps are O(p^2) per pass;
//   * the multilevel partitioner handles the MD-scale object graphs fast;
//   * the distance-plane engine: DistanceCache rows vs virtual dispatch
//     (the cached/virtual suffix pairs), and thread scaling of the
//     parallel kernels (the /threads:N variants).
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/metrics.hpp"
#include "core/refine_topo_lb.hpp"
#include "core/strategy.hpp"
#include "graph/builders.hpp"
#include "graph/synthetic_md.hpp"
#include "partition/multilevel.hpp"
#include "partition/partition.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "topo/distance_cache.hpp"
#include "topo/torus_mesh.hpp"

namespace {

using namespace topomap;

void map_stencil(benchmark::State& state, const char* strategy_spec,
                 core::DistanceMode mode = core::DistanceMode::kCached) {
  const int side = static_cast<int>(state.range(0));
  const auto g = graph::stencil_2d(side, side, 1.0);
  const topo::TorusMesh torus = topo::TorusMesh::torus({side, side});
  const auto strategy = core::make_strategy(strategy_spec, mode);
  Rng rng(1);
  for (auto _ : state) {
    auto m = strategy->map(g, torus, rng);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetComplexityN(side * side);
}

/// Same workload with an explicit worker-pool size; restores a single
/// worker afterwards so unrelated benchmarks stay sequential.
void map_stencil_threads(benchmark::State& state, const char* strategy_spec) {
  support::set_num_threads(static_cast<int>(state.range(1)));
  map_stencil(state, strategy_spec);
  support::set_num_threads(1);
}

void BM_TopoLB_SecondOrder(benchmark::State& state) {
  map_stencil(state, "topolb");
}
BENCHMARK(BM_TopoLB_SecondOrder)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Complexity(benchmark::oNSquared);

void BM_TopoLB_FirstOrder(benchmark::State& state) {
  map_stencil(state, "topolb1");
}
BENCHMARK(BM_TopoLB_FirstOrder)->Arg(16)->Arg(32);

void BM_TopoLB_ThirdOrder(benchmark::State& state) {
  map_stencil(state, "topolb3");
}
BENCHMARK(BM_TopoLB_ThirdOrder)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(24)
    ->Complexity(benchmark::oNCubed);

void BM_TopoCentLB(benchmark::State& state) { map_stencil(state, "topocent"); }
BENCHMARK(BM_TopoCentLB)->Arg(8)->Arg(16)->Arg(32)->Complexity(
    benchmark::oNSquared);

void BM_RandomLB(benchmark::State& state) { map_stencil(state, "random"); }
BENCHMARK(BM_RandomLB)->Arg(32);

// --- distance-plane engine: cached rows vs virtual dispatch ---------------
// The acceptance bar for the cache is >= 2x on second-order TopoLB at
// side=32 with a single thread; compare these two series.

void BM_TopoLB_SecondOrder_Virtual(benchmark::State& state) {
  map_stencil(state, "topolb", core::DistanceMode::kVirtual);
}
BENCHMARK(BM_TopoLB_SecondOrder_Virtual)->Arg(16)->Arg(24)->Arg(32);

void BM_TopoLB_ThirdOrder_Virtual(benchmark::State& state) {
  map_stencil(state, "topolb3", core::DistanceMode::kVirtual);
}
BENCHMARK(BM_TopoLB_ThirdOrder_Virtual)->Arg(16)->Arg(24);

void BM_TopoCentLB_Virtual(benchmark::State& state) {
  map_stencil(state, "topocent", core::DistanceMode::kVirtual);
}
BENCHMARK(BM_TopoCentLB_Virtual)->Arg(32);

void BM_DistanceCacheBuild(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const topo::TorusMesh torus = topo::TorusMesh::torus({side, side});
  for (auto _ : state) {
    topo::DistanceCache cache(torus);
    benchmark::DoNotOptimize(cache.row(0));
  }
  state.SetComplexityN(side * side);
}
BENCHMARK(BM_DistanceCacheBuild)->Arg(16)->Arg(32)->Arg(64)->Complexity(
    benchmark::oNSquared);

// --- thread scaling of the parallel kernels (cached mode) -----------------
// Args are (side, workers).  Results are byte-identical across the series;
// only wall time may change.

void BM_TopoLB_ThirdOrder_Threads(benchmark::State& state) {
  map_stencil_threads(state, "topolb3");
}
BENCHMARK(BM_TopoLB_ThirdOrder_Threads)
    ->Args({24, 1})
    ->Args({24, 2})
    ->Args({24, 4})
    ->Args({24, 8});

void BM_TopoLB_SecondOrder_Threads(benchmark::State& state) {
  map_stencil_threads(state, "topolb");
}
BENCHMARK(BM_TopoLB_SecondOrder_Threads)
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 4});

void BM_Refine_Threads(benchmark::State& state) {
  support::set_num_threads(static_cast<int>(state.range(1)));
  const int side = static_cast<int>(state.range(0));
  const auto g = graph::stencil_2d(side, side, 1.0);
  const topo::TorusMesh torus = topo::TorusMesh::torus({side, side});
  Rng rng(2);
  const core::Mapping random = rng.permutation(side * side);
  for (auto _ : state) {
    auto r = core::refine_mapping(g, torus, random, /*max_passes=*/1);
    benchmark::DoNotOptimize(r.swaps);
  }
  support::set_num_threads(1);
}
BENCHMARK(BM_Refine_Threads)
    ->Args({24, 1})
    ->Args({24, 2})
    ->Args({24, 4})
    ->Args({24, 8});

void BM_RefineTopoLB_OnePass(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const auto g = graph::stencil_2d(side, side, 1.0);
  const topo::TorusMesh torus = topo::TorusMesh::torus({side, side});
  Rng rng(2);
  const core::Mapping random = rng.permutation(side * side);
  for (auto _ : state) {
    auto r = core::refine_mapping(g, torus, random, /*max_passes=*/1);
    benchmark::DoNotOptimize(r.swaps);
  }
  state.SetComplexityN(side * side);
}
BENCHMARK(BM_RefineTopoLB_OnePass)->Arg(8)->Arg(16)->Arg(24)->Complexity(
    benchmark::oNSquared);

void BM_MultilevelPartition_Md(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  graph::MdParams params;
  params.cells_x = 4;
  params.cells_y = 4;
  params.cells_z = 4;
  Rng rng(3);
  const auto md = graph::synthetic_md(params, rng);
  const auto partitioner = part::make_partitioner("multilevel");
  for (auto _ : state) {
    auto r = partitioner->partition(md, k, rng);
    benchmark::DoNotOptimize(r.assignment.data());
  }
}
BENCHMARK(BM_MultilevelPartition_Md)->Arg(8)->Arg(32)->Arg(128);

// --- hierarchical scale path (HierTopoLB) ---------------------------------
// Oversubscribed 3-D stencils, 8 tasks per processor: runtime should grow
// roughly linearly in tasks (the coarsen/uncoarsen stages dominate), far
// below flat TopoLB's O(n^2) curve at the same vertex counts.

void BM_HierTopoLB_Oversubscribed(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const auto g = graph::stencil_3d(2 * side, 2 * side, 2 * side, 1.0);
  const topo::TorusMesh torus = topo::TorusMesh::torus({side, side, side});
  const auto strategy = core::make_strategy("hier");
  Rng rng(1);
  for (auto _ : state) {
    auto m = strategy->map(g, torus, rng);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetComplexityN(8 * side * side * side);
}
BENCHMARK(BM_HierTopoLB_Oversubscribed)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Complexity(benchmark::oN);

void BM_HierTopoLB_Threads(benchmark::State& state) {
  support::set_num_threads(static_cast<int>(state.range(1)));
  const int side = static_cast<int>(state.range(0));
  const auto g = graph::stencil_3d(2 * side, 2 * side, 2 * side, 1.0);
  const topo::TorusMesh torus = topo::TorusMesh::torus({side, side, side});
  const auto strategy = core::make_strategy("hier");
  Rng rng(1);
  for (auto _ : state) {
    auto m = strategy->map(g, torus, rng);
    benchmark::DoNotOptimize(m.data());
  }
  support::set_num_threads(1);
}
BENCHMARK(BM_HierTopoLB_Threads)
    ->Args({12, 1})
    ->Args({12, 2})
    ->Args({12, 4});

void BM_TaskCoarsenOnce(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const auto g = graph::stencil_3d(side, side, side, 1.0);
  for (auto _ : state) {
    Rng rng(2);
    part::CoarseLevel level;
    const bool ok = part::coarsen_once(g, 1e18, rng, &level);
    benchmark::DoNotOptimize(ok);
  }
  state.SetComplexityN(side * side * side);
}
BENCHMARK(BM_TaskCoarsenOnce)->Arg(16)->Arg(32)->Arg(48)->Complexity(
    benchmark::oN);

void BM_HopBytesEvaluation(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const auto g = graph::stencil_2d(side, side, 1.0);
  const topo::TorusMesh torus = topo::TorusMesh::torus({side, side});
  Rng rng(4);
  const core::Mapping m = rng.permutation(side * side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hop_bytes(g, torus, m));
  }
}
BENCHMARK(BM_HopBytesEvaluation)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
