// Ablation: does health-aware mapping actually steer traffic off sick
// links?
//
// A column of links in the middle of the machine degrades (soft faults:
// the links still exist but serialise messages slower).  Two placements of
// the same stencil compete on the degraded machine:
//
//  * blind  — the strategy maps on the pristine base topology: the mapping
//    cannot see the degradation (today's default without the overlay).
//  * aware  — the strategy maps on the FaultOverlay, whose health-weighted
//    distance plane makes crossing a sick link cost 1/health hops, so the
//    placement itself avoids straddling the degraded cut.
//
// Both placements then execute on the *same* degraded machine (overlay
// routes + netsim service rates seeded from link health), so the table
// isolates the placement decision: bytes crossing degraded links, plain
// hop-bytes, and simulated completion time.  On the torus the wraparound
// lets an aware placement rotate the stencil so the degraded cut falls on
// the stencil's open boundary (near-zero sick traffic); on the mesh only
// half the cut is degraded and the aware placement shifts heavy pairs onto
// the healthy rows.
#include <memory>

#include "bench/common.hpp"
#include "core/contention.hpp"
#include "core/fault_aware.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "topo/factory.hpp"
#include "topo/fault_overlay.hpp"

using namespace topomap;

namespace {

/// Bytes per iteration that cross a degraded link, following the machine's
/// actual routes (what the simulator will do to both placements).
double degraded_link_bytes(const graph::TaskGraph& g,
                           const topo::FaultOverlay& overlay,
                           const core::Mapping& m) {
  double sick = 0.0;
  for (const auto& e : g.edges()) {
    const int pu = m[static_cast<std::size_t>(e.a)];
    const int pv = m[static_cast<std::size_t>(e.b)];
    if (pu == pv) continue;
    const std::vector<int> path = overlay.route(pu, pv);
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
      if (overlay.link_health(path[i], path[i + 1]) < 1.0) sick += e.bytes;
  }
  return sick;
}

struct Scenario {
  std::string label;
  std::string topology;
  /// Rows of the column cut (between x = cut_x and x = cut_x + 1) whose
  /// links degrade.
  std::vector<int> rows;
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Ablation: health-aware vs health-blind mapping on a "
                "machine with degraded links");
  cli.add_option("strategy", "mapping strategy", "topolb+refine");
  cli.add_option("health", "health of each degraded link, in (0,1)", "0.25");
  cli.add_option("iterations", "simulated app iterations", "50");
  cli.add_option("seed", "RNG seed", "1");
  if (!cli.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const double health = cli.real("health");
  bench::preamble("soft-fault mapping ablation", seed);

  const int nx = 8, ny = 8, cut_x = 3;
  const graph::TaskGraph g = graph::stencil_2d(nx, ny, 1000.0);
  const auto strategy = core::make_strategy(cli.str("strategy"));
  std::cout << "workload: " << g.num_vertices() << " stencil tasks, "
            << "degraded column cut x=" << cut_x << "-" << cut_x + 1
            << " at health " << health << ", strategy "
            << cli.str("strategy") << "\n";

  // Torus: the full cut degrades, but wraparound means an aware placement
  // can rotate the (open-boundary) stencil off it.  Mesh: only the lower
  // half degrades, so healthy rows remain for the heavy pairs.
  const std::vector<Scenario> scenarios = {
      {"torus", "torus:8x8", {0, 1, 2, 3, 4, 5, 6, 7}},
      {"mesh", "mesh:8x8", {0, 1, 2, 3}},
  };

  Table table("health-aware vs health-blind placement",
              {"machine", "degraded", "blind_sickB", "aware_sickB",
               "blind_hpB", "aware_hpB", "blind_ms", "aware_ms"},
              4);

  netsim::AppParams app;
  app.iterations = static_cast<int>(cli.integer("iterations"));
  netsim::NetworkParams net;
  net.bandwidth = 500.0;

  bool aware_wins_everywhere = true;
  for (const Scenario& sc : scenarios) {
    const auto base = topo::make_topology(sc.topology);
    auto overlay = std::make_shared<topo::FaultOverlay>(base);
    for (const int y : sc.rows)
      overlay->degrade_link(cut_x + nx * y, cut_x + 1 + nx * y, health);

    // Blind: map on the pristine base (identical streams via fresh Rng).
    Rng blind_rng(seed);
    const core::Mapping blind = strategy->map(g, *base, blind_rng);
    // Aware: same strategy, but the machine view is the weighted overlay.
    Rng aware_rng(seed);
    const core::Mapping aware =
        core::map_on_alive(*strategy, g, *overlay, aware_rng);

    const double blind_sick = degraded_link_bytes(g, *overlay, blind);
    const double aware_sick = degraded_link_bytes(g, *overlay, aware);
    // Plain hop-bytes on the base: what the placement costs in distance,
    // independent of the weighted metric used to find it.
    const double blind_hpb = core::hops_per_byte(g, *base, blind);
    const double aware_hpb = core::hops_per_byte(g, *base, aware);
    const auto blind_sim =
        netsim::run_iterative_app(g, *overlay, blind, app, net);
    const auto aware_sim =
        netsim::run_iterative_app(g, *overlay, aware, app, net);

    table.add_row({sc.label, static_cast<std::int64_t>(sc.rows.size()),
                   blind_sick, aware_sick, blind_hpb, aware_hpb,
                   blind_sim.completion_us / 1000.0,
                   aware_sim.completion_us / 1000.0});
    if (aware_sick >= blind_sick) aware_wins_everywhere = false;

    // Explain the shift: per-link diff blind -> aware on the degraded
    // machine (the degraded cut's links should dominate the drops).
    const core::ContentionDiff diff =
        core::diff_contention(core::attribute_link_loads(g, *overlay, blind),
                              core::attribute_link_loads(g, *overlay, aware));
    std::cout << "\n[" << sc.label << "] contention shift blind -> aware:\n"
              << core::render_contention_diff(diff, 5, 3);
  }

  bench::emit(table, "ablation_soft_faults");
  std::cout << "\nExpected: the aware placement moves traffic off the "
               "degraded links (aware_sickB <\nblind_sickB) at little or no "
               "plain hop-byte cost, and the simulator — whose per-link\n"
               "service rates come from the same health values — finishes "
               "the aware placement\nsooner.\n";
  if (!aware_wins_everywhere) {
    std::cout << "WARNING: health-aware placement did not reduce degraded-"
                 "link traffic on every\nscenario above.\n";
    return 1;
  }
  return 0;
}
