// Load harness for topomapd: an in-process svc::Server hammered by N
// concurrent clients cycling through a mixed request workload (map /
// explain / evacuate / optimal / status) over a fixed set of machines.
//
// Two tables go to bench_results/:
//
//   svc_load        per-kind request counts plus p50/p99 client-observed
//                   latency, estimated from obs::Histogram (the same
//                   log-bucketed quantiles the daemon's metrics snapshot
//                   reports — samples land in microsecond buckets, so the
//                   bench and `topomap top` agree on methodology).  The
//                   latency columns are named *_ms_wall so
//                   scripts/bench_compare.py keeps them in the committed
//                   BENCH_mapping.json as informational columns but never
//                   fails the gate on them (machine speed is not a
//                   regression).  The ok/requests counts ARE gated: every
//                   request must succeed deterministically.
//
//   svc_load_cache  svc::CachePool counters for the run.  Misses equal the
//                   number of distinct machine keys no matter how the
//                   concurrent clients interleave (per-key build latching),
//                   the workload keeps distinct machines under the pool
//                   capacity so evictions are exactly 0, and hit_rate is
//                   therefore a deterministic, gated cache-sharing bound.
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "obs/histogram.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

using namespace topomap;

namespace {

// The same machine mix the service tests use: four distinct pool keys
// (torus:4x4, mesh:4x4, torus:4x4+fail-node, torus:3x3), all well under
// the default pool capacity.
std::vector<svc::Request> mixed_workload(int count) {
  std::vector<svc::Request> reqs;
  reqs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    svc::Request req;
    req.id = "load-" + std::to_string(i);
    req.seed = static_cast<std::uint64_t>(1 + i % 3);
    switch (i % 5) {
      case 0:
        req.kind = svc::RequestKind::kMap;
        req.tasks = "stencil2d:4x4";
        req.topology = (i % 10 == 0) ? "torus:4x4" : "mesh:4x4";
        req.strategy = "topolb+refine";
        break;
      case 1:
        req.kind = svc::RequestKind::kExplain;
        req.tasks = "stencil2d:4x4";
        req.topology = "torus:4x4";
        req.strategy = "topolb";
        req.baseline = "random";
        break;
      case 2:
        req.kind = svc::RequestKind::kEvacuate;
        req.tasks = "stencil2d:3x4";
        req.topology = "torus:4x4";
        req.strategy = "topolb";
        req.fail_node = "5";
        break;
      case 3:
        req.kind = svc::RequestKind::kOptimal;
        req.tasks = "stencil2d:3x3";
        req.topology = "torus:3x3";
        req.compare = "topolb";
        break;
      default:
        req.kind = svc::RequestKind::kStatus;
        break;
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "topomapd load test: concurrent clients, mixed request kinds, "
      "shared distance-plane pool");
  cli.add_option("clients", "concurrent client connections", "8");
  cli.add_option("requests", "total requests across all clients", "80");
  cli.add_option("workers", "server worker threads", "4");
  cli.add_option("seed", "workload seed offset (request seeds cycle 1..3)",
                 "1");
  if (!cli.parse(argc, argv)) return 0;
  const int clients = static_cast<int>(cli.integer("clients"));
  const int total = static_cast<int>(cli.integer("requests"));
  bench::preamble("topomapd load (mixed kinds, shared cache pool)",
                  static_cast<std::uint64_t>(cli.integer("seed")));

  svc::ServerOptions options;
  options.socket_path =
      "/tmp/topomap-svc-load-" + std::to_string(::getpid()) + ".sock";
  options.workers = static_cast<std::size_t>(cli.integer("workers"));
  svc::Server server(options);
  server.start();

  const std::vector<svc::Request> reqs = mixed_workload(total);

  // One latency histogram per request kind (plus the overall one), one
  // connection per client, work-stealing over the shared request list.
  // Samples are microseconds: obs::Histogram's bucket 0 absorbs values
  // below 1.0, so sub-millisecond latencies need the finer unit.
  std::map<std::string, obs::Histogram> latency;
  std::map<std::string, std::int64_t> sent, succeeded;
  obs::Histogram overall;
  for (const svc::Request& r : reqs) {
    latency[svc::to_string(r.kind)];
    ++sent[svc::to_string(r.kind)];
  }
  std::mutex agg_mu;
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  const double t_all = bench::timed([&] {
    for (int c = 0; c < clients; ++c)
      threads.emplace_back([&] {
        svc::Client client = svc::Client::connect_unix(options.socket_path);
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= reqs.size()) break;
          const auto t0 = std::chrono::steady_clock::now();
          const svc::Response resp = client.call(reqs[i]);
          const double us =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
          std::lock_guard<std::mutex> lock(agg_mu);
          latency[svc::to_string(reqs[i].kind)].add(us);
          overall.add(us);
          if (resp.ok) ++succeeded[svc::to_string(reqs[i].kind)];
        }
      });
    for (std::thread& t : threads) t.join();
  });

  const svc::CachePoolStats cache = server.cache_stats();
  server.stop();
  server.join();

  Table table("request latency by kind (" + std::to_string(clients) +
                  " clients, " + std::to_string(options.workers) +
                  " workers)",
              {"kind", "requests", "ok", "p50_ms_wall", "p99_ms_wall"}, 3);
  std::int64_t ok_total = 0;
  for (auto& [kind, hist] : latency) {
    table.add_row({kind, sent[kind], succeeded[kind],
                   hist.quantile(0.5) / 1000.0,
                   hist.quantile(0.99) / 1000.0});
    ok_total += succeeded[kind];
  }
  table.add_row({std::string("all"), static_cast<std::int64_t>(reqs.size()),
                 ok_total, overall.quantile(0.5) / 1000.0,
                 overall.quantile(0.99) / 1000.0});
  bench::emit(table, "svc_load");

  const std::int64_t acquires =
      static_cast<std::int64_t>(cache.hits + cache.misses);
  Table cache_table(
      "distance-plane pool sharing across concurrent requests",
      {"clients", "requests", "cache_hits", "cache_misses",
       "cache_evictions", "hit_rate", "throughput_rps_wall"},
      4);
  cache_table.add_row(
      {static_cast<std::int64_t>(clients),
       static_cast<std::int64_t>(reqs.size()),
       static_cast<std::int64_t>(cache.hits),
       static_cast<std::int64_t>(cache.misses),
       static_cast<std::int64_t>(cache.evictions),
       acquires > 0 ? static_cast<double>(cache.hits) /
                          static_cast<double>(acquires)
                    : 0.0,
       t_all > 0.0 ? static_cast<double>(reqs.size()) / t_all : 0.0});
  bench::emit(cache_table, "svc_load_cache");

  std::cout << "\nhit_rate and the miss count are deterministic (misses == "
               "distinct machines);\nthe *_wall columns are informational "
               "and never gate.\n";
  return 0;
}
