// Ablation: deterministic (dimension-ordered) vs minimal adaptive routing.
//
// BlueGene/L could route adaptively; our headline reproductions use
// deterministic DOR, which concentrates contention and explains why our
// random-mapping penalties at large p exceed the paper's (EXPERIMENTS.md,
// Figs 10-11 notes).  This harness quantifies the effect: adaptive routing
// rescues random placement the most (it has the most path diversity to
// exploit) while topology-aware mappings barely change — hop-bytes
// reduction and adaptive routing are complementary, not redundant.
#include "bench/common.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "topo/factory.hpp"
#include "topo/torus_mesh.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Ablation: deterministic vs minimal-adaptive routing");
  cli.add_option("procs", "machine sizes (3D-decomposable)", "64,216,512");
  cli.add_option("iterations", "Jacobi iterations", "200");
  cli.add_option("msg-kb", "message size in KB", "100");
  cli.add_option("bandwidth", "link bandwidth MB/s", "175");
  cli.add_option("seed", "RNG seed", "1");
  if (!cli.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  bench::preamble("routing-policy ablation", seed);

  netsim::AppParams app;
  app.iterations = static_cast<int>(cli.integer("iterations"));
  app.compute_us = 20.0;

  Table table("completion time (s): DOR vs minimal adaptive",
              {"p", "rand_DOR", "rand_adaptive", "rand_gain", "topolb_DOR",
               "topolb_adaptive", "topolb_gain", "rand/topolb_adaptive"},
              3);
  for (auto p64 : cli.int_list("procs")) {
    const int p = static_cast<int>(p64);
    const topo::TorusMesh machine =
        topo::TorusMesh::torus(topo::balanced_dims(p, 3));
    const auto dims = topo::balanced_dims(p, 2);
    const auto g = graph::stencil_2d(dims[0], dims[1],
                                     2.0 * cli.real("msg-kb") * 1024.0);
    Rng rng(seed);
    const core::Mapping m_rand = core::make_strategy("random")->map(g, machine, rng);
    const core::Mapping m_lb = core::make_strategy("topolb")->map(g, machine, rng);

    auto run = [&](const core::Mapping& m, netsim::RoutingPolicy policy) {
      netsim::NetworkParams net;
      net.bandwidth = cli.real("bandwidth");
      net.per_hop_latency_us = 0.1;
      net.injection_overhead_us = 2.0;
      net.routing = policy;
      return netsim::run_iterative_app(g, machine, m, app, net)
                 .completion_us /
             1e6;
    };
    const double r_det = run(m_rand, netsim::RoutingPolicy::kDeterministic);
    const double r_ad = run(m_rand, netsim::RoutingPolicy::kMinimalAdaptive);
    const double l_det = run(m_lb, netsim::RoutingPolicy::kDeterministic);
    const double l_ad = run(m_lb, netsim::RoutingPolicy::kMinimalAdaptive);
    table.add_row({static_cast<std::int64_t>(p), r_det, r_ad, r_det / r_ad,
                   l_det, l_ad, l_det / l_ad, r_ad / l_ad});
  }
  bench::emit(table, "ablation_routing");
  std::cout << "\nExpected: adaptive routing helps random placement much "
               "more than TopoLB (which already has\nlittle contention to "
               "spread), narrowing — but not closing — the gap; this "
               "matches the residual\nrandom-vs-TopoLB ratios the paper "
               "measured on adaptive-capable BlueGene hardware.\n";
  return 0;
}
