// Ablation (ours, motivated by paper §4.3-4.4): quality vs cost of the
// three TopoLB estimation orders.
//
// The paper argues second order is the sweet spot: first order ignores
// unplaced neighbours entirely; third order models the shrinking free-
// processor set exactly but costs O(p^3).  This harness quantifies both
// claims on stencil and irregular workloads.
#include "bench/common.hpp"
#include "graph/builders.hpp"
#include "topo/factory.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Ablation: TopoLB estimation orders (quality and runtime)");
  cli.add_option("seed", "RNG seed", "1");
  if (!cli.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  bench::preamble("TopoLB estimation-order ablation", seed);

  struct Case {
    std::string name;
    graph::TaskGraph g;
    topo::TopologyPtr topo;
  };
  Rng graph_rng(seed);
  std::vector<Case> cases;
  cases.push_back({"stencil 16x16 / torus 16x16",
                   graph::stencil_2d(16, 16, 1.0),
                   topo::make_topology("torus:16x16")});
  cases.push_back({"stencil 24x24 / torus 24x24",
                   graph::stencil_2d(24, 24, 1.0),
                   topo::make_topology("torus:24x24")});
  cases.push_back({"stencil 16x8 / torus 8x4x4",
                   graph::stencil_2d(16, 8, 1.0),
                   topo::make_topology("torus:8x4x4")});
  cases.push_back({"random n=256 / mesh 16x16",
                   graph::random_graph(256, 0.03, 1.0, 64.0, graph_rng),
                   topo::make_topology("mesh:16x16")});
  cases.push_back({"geometric n=256 / torus 16x16",
                   graph::random_geometric(256, 0.12, 8.0, graph_rng),
                   topo::make_topology("torus:16x16")});

  Table table("TopoLB estimation orders: hops-per-byte (time in s)",
              {"workload", "E[random]", "first", "second", "third",
               "t_first", "t_second", "t_third"},
              3);
  for (const auto& c : cases) {
    Rng rng(seed);
    double hpb[3] = {0, 0, 0};
    double secs[3] = {0, 0, 0};
    const char* specs[3] = {"topolb1", "topolb", "topolb3"};
    for (int i = 0; i < 3; ++i) {
      const auto strategy = core::make_strategy(specs[i]);
      secs[i] = bench::timed([&] {
        hpb[i] = core::hops_per_byte(c.g, *c.topo,
                                     strategy->map(c.g, *c.topo, rng));
      });
    }
    table.add_row({c.name, core::expected_random_hops(*c.topo), hpb[0],
                   hpb[1], hpb[2], secs[0], secs[1], secs[2]});
  }
  bench::emit(table, "ablation_estimation_orders");
  std::cout << "\nExpected: second order matches or beats first order in "
               "quality at similar cost; third order\n"
               "is by far the slowest without consistent quality wins — the "
               "paper's reason to ship second order.\n";
  return 0;
}
