// Figures 3 & 4: map a 2D-mesh communication pattern onto a 3D-torus of
// the same size.
//
// Paper result: random placement matches 3*cbrt(p)/4; TopoLB and
// TopoCentLB are far below it.  In the special case p=64 the (8,8) mesh is
// a subgraph of the (4,4,4) torus and TopoLB reaches the optimum 1.0;
// elsewhere TopoCentLB runs ~10% above TopoLB.
#include <cmath>

#include "bench/common.hpp"
#include "graph/builders.hpp"
#include "topo/factory.hpp"
#include "topo/torus_mesh.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli(
      "Fig 3/4: 2D-mesh pattern on 3D-torus — hops-per-byte vs processors");
  cli.add_option("procs", "comma list of processor counts (perfect cubes)",
                 "64,216,512,1000,1728");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("random-repeats", "random-placement repetitions", "5");
  cli.add_flag("full", "extend the sweep to p=4096, a few seconds extra");
  if (!cli.parse(argc, argv)) return 0;

  auto procs = cli.int_list("procs");
  if (cli.flag("full")) procs.push_back(4096);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const int repeats = static_cast<int>(cli.integer("random-repeats"));
  bench::preamble("2D-mesh pattern mapped onto a 3D-torus (Figs 3-4)", seed);

  Table table("Average hops per byte, 2D-mesh on 3D-torus",
              {"p", "mesh", "torus", "E[random]=3*cbrt(p)/4", "Random",
               "TopoCentLB", "TopoLB"},
              3);
  const auto random = core::make_strategy("random");
  const auto topocent = core::make_strategy("topocent");
  const auto topolb = core::make_strategy("topolb");

  for (auto p64 : procs) {
    const int p = static_cast<int>(p64);
    if (!topo::is_perfect_cube(p)) {
      std::cout << "skipping p=" << p << " (not a perfect cube)\n";
      continue;
    }
    const auto mesh_dims = topo::balanced_dims(p, 2);
    const auto g = graph::stencil_2d(mesh_dims[0], mesh_dims[1], 1.0);
    const auto torus_dims = topo::balanced_dims(p, 3);
    const topo::TorusMesh torus = topo::TorusMesh::torus(torus_dims);
    Rng rng(seed);
    const double expected = core::expected_random_hops(torus);
    const double rand_hpb =
        bench::mean_hops_per_byte(*random, g, torus, rng, repeats);
    const double cent_hpb =
        bench::mean_hops_per_byte(*topocent, g, torus, rng, 1);
    const double lb_hpb = bench::mean_hops_per_byte(*topolb, g, torus, rng, 1);
    table.add_row(
        {static_cast<std::int64_t>(p),
         std::to_string(mesh_dims[0]) + "x" + std::to_string(mesh_dims[1]),
         torus.name(), expected, rand_hpb, cent_hpb, lb_hpb});
  }
  bench::emit(table, "fig3_4_mesh2d_torus3d");
  std::cout << "\nPaper shape check: Random ~= 3*cbrt(p)/4; both heuristics "
               "far lower; TopoLB hits ~1.0 at p=64\n"
               "((8,8) mesh is a subgraph of the (4,4,4) torus) and stays "
               "below TopoCentLB elsewhere.\n";
  return 0;
}
