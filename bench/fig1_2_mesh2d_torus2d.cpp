// Figures 1 & 2: map a 2D-mesh communication pattern onto a 2D-torus of
// the same size.
//
// Paper result: random placement lands at the analytic expectation
// sqrt(p)/2 hops-per-byte; TopoLB reaches ~1 (often exactly optimal);
// TopoCentLB is close behind (~10% higher in the subgraph cases).
#include <cmath>

#include "bench/common.hpp"
#include "graph/builders.hpp"
#include "topo/torus_mesh.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli(
      "Fig 1/2: 2D-mesh pattern on 2D-torus — hops-per-byte vs processors");
  cli.add_option("sides", "comma list of torus side lengths", "16,24,32,48,64");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("random-repeats", "random-placement repetitions", "5");
  cli.add_flag("full", "extend the sweep to p=5776 (76x76), ~10s extra");
  if (!cli.parse(argc, argv)) return 0;

  auto sides = cli.int_list("sides");
  if (cli.flag("full")) sides.push_back(76);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const int repeats = static_cast<int>(cli.integer("random-repeats"));
  bench::preamble("2D-mesh pattern mapped onto a 2D-torus (Figs 1-2)", seed);

  Table table("Average hops per byte, 2D-mesh on 2D-torus",
              {"p", "E[random]=sqrt(p)/2", "Random", "TopoCentLB", "TopoLB",
               "TopoLB_s"},
              3);
  const auto random = core::make_strategy("random");
  const auto topocent = core::make_strategy("topocent");
  const auto topolb = core::make_strategy("topolb");

  for (auto side : sides) {
    const int p = static_cast<int>(side * side);
    const auto g = graph::stencil_2d(static_cast<int>(side),
                                     static_cast<int>(side), 1.0);
    const topo::TorusMesh torus =
        topo::TorusMesh::torus({static_cast<int>(side),
                                static_cast<int>(side)});
    Rng rng(seed);
    const double expected = core::expected_random_hops(torus);
    const double rand_hpb =
        bench::mean_hops_per_byte(*random, g, torus, rng, repeats);
    const double cent_hpb =
        bench::mean_hops_per_byte(*topocent, g, torus, rng, 1);
    double lb_hpb = 0.0;
    const double lb_secs = bench::timed([&] {
      lb_hpb = bench::mean_hops_per_byte(*topolb, g, torus, rng, 1);
    });
    table.add_row({static_cast<std::int64_t>(p), expected, rand_hpb, cent_hpb,
                   lb_hpb, lb_secs});
  }
  bench::emit(table, "fig1_2_mesh2d_torus2d");
  std::cout << "\nPaper shape check: Random ~= sqrt(p)/2, TopoLB ~= 1 "
               "(optimal: the 2D mesh is a subgraph of the 2D torus),\n"
               "TopoCentLB small but above TopoLB.\n";
  return 0;
}
