// Ablation: failure-driven evacuation vs full remap, and incremental
// distance-cache repair vs from-scratch rebuild.
//
// Processors die under a healthy placement; evacuate() moves only the
// stranded tasks (plus bounded refine swaps) while the full remap reruns
// the mapping strategy on the alive subset.  The question the table
// answers: how much mapping quality does patching give up, and at what
// fraction of the migration volume?  A second table measures the
// DistanceCache repair path: rows BFS-recomputed and wall time against the
// O(p^2) rebuild the repair replaces.
#include <memory>

#include "bench/common.hpp"
#include "core/fault_aware.hpp"
#include "graph/builders.hpp"
#include "runtime/evacuate.hpp"
#include "topo/distance_cache.hpp"
#include "topo/factory.hpp"
#include "topo/fault_overlay.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Ablation: evacuation vs full remap under processor faults");
  cli.add_option("tasks", "stencil extents <nx>x<ny>", "9x10");
  cli.add_option("topology", "machine", "torus:10x10");
  cli.add_option("strategy", "mapping strategy", "topolb");
  cli.add_option("refine-passes", "evacuate refine sweeps", "1");
  cli.add_option("seed", "RNG seed", "1");
  if (!cli.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  bench::preamble("fault-tolerance ablation", seed);

  const auto dims = cli.str("tasks");
  const auto x = dims.find('x');
  if (x == std::string::npos) {
    std::cerr << "--tasks must look like <nx>x<ny>\n";
    return 1;
  }
  const int nx = std::stoi(dims.substr(0, x));
  const int ny = std::stoi(dims.substr(x + 1));
  const graph::TaskGraph g = graph::stencil_2d(nx, ny, 1000.0);
  const auto machine = topo::make_topology(cli.str("topology"));
  const auto strategy = core::make_strategy(cli.str("strategy"));
  const int refine = static_cast<int>(cli.integer("refine-passes"));
  std::cout << "workload: " << g.num_vertices() << " stencil tasks on "
            << machine->name() << ", strategy " << cli.str("strategy")
            << "\n";

  Table table("evacuation vs full remap",
              {"failures", "stranded", "evac_migr", "full_migr", "evac_hpb",
               "full_hpb", "hpb_ratio"},
              4);
  Table repair_table("distance-cache repair vs rebuild",
                     {"failures", "rows_recomputed", "repair_ms",
                      "rebuild_ms"},
                     3);

  for (const int failures : {1, 2, 4, 8}) {
    topo::FaultOverlay healthy(machine);
    Rng rng(seed);
    const core::Mapping previous =
        core::map_on_alive(*strategy, g, healthy, rng);

    // Kill `failures` distinct occupied processors: every failure strands a
    // task, exercising the evacuation path rather than trivial no-ops.
    auto overlay = std::make_shared<topo::FaultOverlay>(machine);
    topo::DistanceCache cache(*overlay);
    Rng fault_rng(seed + static_cast<std::uint64_t>(failures));
    int rows_recomputed = 0;
    double repair_s = 0.0;
    while (overlay->num_failed_nodes() < failures) {
      const int task = static_cast<int>(fault_rng.uniform(
          static_cast<std::uint64_t>(g.num_vertices())));
      const int proc = previous[static_cast<std::size_t>(task)];
      if (!overlay->is_alive(proc)) continue;
      overlay->fail_node(proc);
      repair_s += bench::timed(
          [&] { rows_recomputed += cache.repair_node_failure(*overlay, proc); });
    }
    const double rebuild_s =
        bench::timed([&] { topo::DistanceCache rebuilt(*overlay); });

    const rts::EvacuateComparison cmp = rts::compare_evacuate_vs_remap(
        g, *overlay, previous, *strategy, rng, refine);
    table.add_row({static_cast<std::int64_t>(failures),
                   static_cast<std::int64_t>(cmp.evac.stranded),
                   static_cast<std::int64_t>(cmp.evac.migrations),
                   static_cast<std::int64_t>(cmp.full_migrations),
                   cmp.evac.hop_bytes / g.total_comm_bytes(),
                   cmp.full_hop_bytes / g.total_comm_bytes(),
                   cmp.evac.hop_bytes / cmp.full_hop_bytes});
    repair_table.add_row({static_cast<std::int64_t>(failures),
                          static_cast<std::int64_t>(rows_recomputed),
                          repair_s * 1e3, rebuild_s * 1e3});
  }

  bench::emit(table, "ablation_fault_tolerance");
  std::cout << "\n";
  bench::emit(repair_table, "ablation_fault_tolerance_repair");
  std::cout << "\nExpected: evacuation migrates ~failures tasks (vs a near-"
               "total reshuffle for the full\nremap) while staying within "
               "~10% of its hop-bytes.  Cache repair recomputes only rows\n"
               "whose shortest-path DAG crossed the dead processor — on a "
               "dense torus that is most\nrows (a grid node is interior to "
               "nearly every DAG), so repair only ties the rebuild\nhere; "
               "the savings come from link failures (strict row subsets) and "
               "distance-model\ntopologies like fat trees (zero rows).\n";
  return 0;
}
