// Ablation: heuristic vs "physical optimization" mapping (paper §1 and
// related work).
//
// The paper dismisses simulated-annealing-class methods for production
// use: "though physical optimization algorithms produce high-quality
// solutions (better than heuristic algorithms), they tend to be very
// slow".  This harness quantifies both halves of that sentence with our
// AnnealingLB against TopoLB/TopoCentLB, cold and warm-started.
#include "bench/common.hpp"
#include "graph/builders.hpp"
#include "topo/factory.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Ablation: heuristics vs simulated annealing");
  cli.add_option("seed", "RNG seed", "1");
  if (!cli.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  bench::preamble("heuristic vs physical-optimization ablation", seed);

  struct Case {
    std::string name;
    graph::TaskGraph g;
    topo::TopologyPtr topo;
  };
  Rng graph_rng(seed);
  std::vector<Case> cases;
  cases.push_back({"stencil 12x12 / torus 12x12",
                   graph::stencil_2d(12, 12, 1.0),
                   topo::make_topology("torus:12x12")});
  cases.push_back({"random n=144 / torus 12x12",
                   graph::random_graph(144, 0.05, 1.0, 32.0, graph_rng),
                   topo::make_topology("torus:12x12")});
  cases.push_back({"geometric n=128 / mesh 16x8",
                   graph::random_geometric(128, 0.16, 8.0, graph_rng),
                   topo::make_topology("mesh:16x8")});

  Table table("hops-per-byte (wall seconds)",
              {"workload", "TopoCentLB", "TopoLB", "Anneal", "Anneal+warm",
               "t_topolb", "t_anneal", "t_warm"},
              3);
  for (const auto& c : cases) {
    Rng rng(seed);
    double hpb_cent = 0, hpb_lb = 0, hpb_sa = 0, hpb_warm = 0;
    const double t_cent [[maybe_unused]] = bench::timed([&] {
      hpb_cent = bench::mean_hops_per_byte(*core::make_strategy("topocent"),
                                           c.g, *c.topo, rng, 1);
    });
    const double t_lb = bench::timed([&] {
      hpb_lb = bench::mean_hops_per_byte(*core::make_strategy("topolb"), c.g,
                                         *c.topo, rng, 1);
    });
    const double t_sa = bench::timed([&] {
      hpb_sa = bench::mean_hops_per_byte(*core::make_strategy("anneal"), c.g,
                                         *c.topo, rng, 1);
    });
    const double t_warm = bench::timed([&] {
      hpb_warm = bench::mean_hops_per_byte(
          *core::make_strategy("anneal-warm"), c.g, *c.topo, rng, 1);
    });
    table.add_row({c.name, hpb_cent, hpb_lb, hpb_sa, hpb_warm, t_lb, t_sa,
                   t_warm});
  }
  bench::emit(table, "ablation_physical_opt");
  std::cout << "\nExpected (paper's related-work claim): annealing matches "
               "or beats the heuristics on quality —\n"
               "especially warm-started — at 1-3 orders of magnitude more "
               "runtime.\n";
  return 0;
}
