// Figure 10: BlueGene-style end-to-end run — time for N iterations of the
// 2D Jacobi benchmark (100KB messages) on 3D-TORUS machines of growing
// size, under random / TopoCentLB / TopoLB mappings.
//
// Paper result: both topology-aware mappings clearly beat random at every
// machine size, and the advantage grows with size.  (The paper ran 4000
// iterations on BlueGene hardware; the default here is scaled down to keep
// the simulated run short — use --iterations=4000 for the paper scale.)
#include "bench/bluegene_common.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Fig 10: 2D Jacobi on BlueGene-style 3D-torus machines");
  cli.add_option("procs", "machine sizes", "64,128,216,512");
  cli.add_option("iterations", "Jacobi iterations", "400");
  cli.add_option("msg-kb", "message size in KB", "100");
  cli.add_option("bandwidth", "link bandwidth MB/s", "175");
  cli.add_option("compute-us", "compute per iteration (us)", "20");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_flag("full", "add p=729 (several minutes)");
  if (!cli.parse(argc, argv)) return 0;

  auto procs = cli.int_list("procs");
  if (cli.flag("full")) procs.push_back(729);
  bench::run_bluegene_figure(
      "2D-mesh pattern on BlueGene 3D-torus (Fig 10)", "fig10_bluegene_torus",
      /*torus=*/true, procs, static_cast<int>(cli.integer("iterations")),
      cli.real("msg-kb") * 1024.0, cli.real("bandwidth"),
      cli.real("compute-us"), static_cast<std::uint64_t>(cli.integer("seed")));
  std::cout << "\nPaper shape check: TopoLB ~= TopoCentLB << Random at every "
               "size; compare against Fig 11 (mesh):\n"
               "torus times are lower, especially for random placement, "
               "thanks to the wraparound links.\n";
  return 0;
}
