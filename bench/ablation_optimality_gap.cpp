// Ablation: per-strategy optimality gaps against the exact oracle.
//
// Every other experiment ranks strategies *relative to each other*; this
// one anchors them to ground truth.  core::find_optimal_mapping solves a
// slice of the shared oracle corpus (tests/oracle_corpus.hpp) exactly, and
// each gated strategy spec reports
//
//   gap = strategy hop-bytes / optimal hop-bytes   (1.0 == provably optimal)
//
// All corpus weights and distances are integers, so the gap columns are
// exact and deterministic for any thread count — scripts/bench_gate.sh
// compares them against the committed BENCH_mapping.json on every CI run,
// turning "TopoLB is within X% of optimal on small instances" into a gated
// regression bound instead of a paper claim.
#include "bench/common.hpp"
#include "core/optimal_lb.hpp"
#include "tests/oracle_corpus.hpp"
#include "topo/distance_cache.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Ablation: strategy optimality gaps vs the exact oracle");
  cli.add_option("seed", "RNG seed for the randomized strategies", "1");
  if (!cli.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  bench::preamble("optimality gap vs exact oracle", seed);

  // The square slice of the corpus: every bijective strategy can run, and
  // one degraded machine keeps the fault path honest.
  const std::vector<std::string> picks = {
      "stencil4x2/mesh4x2", "er8/torus4x2", "stencil3x3/torus3x3",
      "stencil4x2/mesh4x2+degrade01"};

  Table table("optimality gap by strategy (oracle corpus, exact arithmetic)",
              {"instance", "strategy", "opt_hpB", "strat_hpB", "gap",
               "seconds"},
              4);
  for (const oracle::OracleInstance& inst : oracle::oracle_corpus()) {
    if (std::find(picks.begin(), picks.end(), inst.name) == picks.end())
      continue;
    const core::OptimalResult opt =
        core::find_optimal_mapping(inst.g, *inst.machine);
    const topo::DistanceCache plane(*inst.machine);
    const double total = inst.g.total_comm_bytes();
    for (const std::string& spec : oracle::gated_strategy_specs()) {
      Rng rng(seed);
      const auto strategy = core::make_strategy(spec);
      double hb = 0.0;
      const double secs = bench::timed([&] {
        hb = core::hop_bytes(inst.g, plane,
                             strategy->map(inst.g, *inst.machine, rng));
      });
      table.add_row({inst.name, spec, opt.hop_bytes / total, hb / total,
                     hb / opt.hop_bytes, secs});
    }
  }
  bench::emit(table, "ablation_optimality_gap");
  std::cout << "\ngap == 1.0 is provably optimal; the committed "
               "BENCH_mapping.json pins every cell,\nso any strategy "
               "regression against ground truth fails scripts/bench_gate.sh."
            << "\n";
  return 0;
}
