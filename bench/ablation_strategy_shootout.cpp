// Ablation: full strategy shoot-out across network classes.
//
// Two questions from the paper's introduction, quantified:
//   1. How do all implemented strategies (paper's + extensions) rank on a
//      contention-prone torus?
//   2. On richly-wired networks (hypercube, fat-tree, dragonfly) — where
//      "with number of wires growing as P log P, even this is not a very
//      significant factor" — how much does mapping still matter?
// The second table reports random-vs-TopoLB hops-per-byte per topology:
// the improvement headroom shrinks from ~4x on the torus toward ~1.2x on
// the dragonfly, which is exactly the paper's motivation for targeting
// torus/mesh machines.
#include "bench/common.hpp"
#include "core/contention.hpp"
#include "graph/builders.hpp"
#include "topo/factory.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Ablation: all strategies; torus vs rich networks");
  cli.add_option("seed", "RNG seed", "1");
  if (!cli.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  bench::preamble("strategy shoot-out", seed);

  // --- 1. all strategies on the contention-prone case ---
  {
    const auto g = graph::stencil_2d(12, 12, 1.0);
    const auto t = topo::make_topology("torus:12x12");
    Table table("all strategies: 12x12 stencil on 12x12 torus",
                {"strategy", "hops/byte", "max_link_B", "l2", "seconds"}, 3);
    for (const char* spec :
         {"random", "greedy", "topocent", "topolb1", "topolb", "topolb3",
          "recursive", "anneal", "topolb+refine", "topolb+linkrefine",
          "recursive+refine", "anneal-warm", "hier", "hier+refine"}) {
      Rng rng(seed);
      const auto strategy = core::make_strategy(spec);
      double hpb = 0.0;
      const double secs = bench::timed([&] {
        hpb = bench::mean_hops_per_byte(*strategy, g, *t, rng,
                                        std::string(spec) == "random" ? 5 : 1);
      });
      // Contention proxy of one representative mapping (fresh seed-`seed`
      // RNG, matching the first mean_hops_per_byte repetition).
      Rng map_rng(seed);
      const core::ContentionStats s =
          core::contention_stats(g, *t, strategy->map(g, *t, map_rng));
      table.add_row({std::string(spec), hpb, s.max_bytes, s.l2, secs});
    }
    bench::emit(table, "ablation_shootout_strategies");
  }

  // --- 2. topology classes: how much headroom does mapping have? ---
  {
    Table table("random vs TopoLB headroom by network class (64-72 nodes)",
                {"topology", "diameter", "E[random]", "Random", "TopoLB",
                 "headroom (rand/topolb)"},
                3);
    for (const char* spec : {"torus:8x8", "mesh:8x8", "torus:4x4x4",
                             "hypercube:6", "fattree:4x3", "dragonfly:8"}) {
      const auto t = topo::make_topology(spec);
      Rng graph_rng(seed);
      // Same workload class everywhere: a stencil of matching size.
      const auto dims = topo::balanced_dims(t->size(), 2);
      const auto g = graph::stencil_2d(dims[0], dims[1], 1.0);
      Rng rng(seed);
      const double rand_hpb = bench::mean_hops_per_byte(
          *core::make_strategy("random"), g, *t, rng, 5);
      const double lb_hpb = bench::mean_hops_per_byte(
          *core::make_strategy("topolb"), g, *t, rng, 1);
      table.add_row({std::string(spec),
                     static_cast<std::int64_t>(t->diameter()),
                     core::expected_random_hops(*t), rand_hpb, lb_hpb,
                     rand_hpb / lb_hpb});
    }
    bench::emit(table, "ablation_shootout_topologies");
    std::cout << "\nExpected: the torus/mesh rows show the largest headroom "
               "(the paper's target machines);\nhypercube/fat-tree/dragonfly "
               "compress it — mapping matters less when wiring is rich.\n";
  }
  return 0;
}
