// Figures 7 & 8: average message latency vs channel bandwidth for a 2D-mesh
// pattern on a 64-node (4,4,4) 3D-torus, under GreedyLB (random placement),
// TopoCentLB, and TopoLB mappings.
//
// Paper result: as bandwidth drops, random placement's latency explodes
// first (congestion sets in earliest); TopoCentLB tolerates less bandwidth,
// TopoLB the least — and in the uncongested region (Fig 8) the ordering
// TopoLB < TopoCentLB < random still holds because fewer hops mean fewer
// serialisations and less queuing.
#include "bench/common.hpp"
#include "core/contention.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "topo/torus_mesh.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Fig 7/8: average message latency vs channel bandwidth");
  cli.add_option("bandwidths", "bandwidths in 100s of MB/s",
                 "1,1.5,2,2.5,3,4,5,6,7,8,9,10");
  cli.add_option("iterations", "Jacobi iterations per run", "300");
  cli.add_option("msg-bytes", "message size in bytes", "4096");
  cli.add_option("compute-us", "compute per iteration (us)", "10");
  cli.add_option("seed", "RNG seed", "1");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  bench::preamble(
      "2D-mesh (8x8) on (4,4,4) 3D-torus: latency vs bandwidth (Figs 7-8)",
      seed);

  const double msg_bytes = cli.real("msg-bytes");
  const auto g = graph::stencil_2d(8, 8, 2.0 * msg_bytes);
  const topo::TorusMesh torus = topo::TorusMesh::torus({4, 4, 4});
  Rng rng(seed);

  const core::Mapping m_greedy = core::make_strategy("greedy")->map(g, torus, rng);
  const core::Mapping m_cent = core::make_strategy("topocent")->map(g, torus, rng);
  const core::Mapping m_lb = core::make_strategy("topolb")->map(g, torus, rng);
  std::cout << "hops-per-byte: greedy(random)="
            << core::hops_per_byte(g, torus, m_greedy)
            << " topocent=" << core::hops_per_byte(g, torus, m_cent)
            << " topolb=" << core::hops_per_byte(g, torus, m_lb) << "\n";

  // Bandwidth-independent contention proxy (§5.3): per-link byte loads of
  // each mapping — the quantity whose congestion the latency sweep exposes.
  Table contention("Per-link load (proxy for the latency divergence below)",
                   {"strategy", "max_link_B", "mean_link_B", "l2", "gini"},
                   4);
  const std::pair<const char*, const core::Mapping*> mappings[] = {
      {"greedy", &m_greedy}, {"topocent", &m_cent}, {"topolb", &m_lb}};
  for (const auto& [name, m] : mappings) {
    const core::ContentionStats s = core::contention_stats(g, torus, *m);
    contention.add_row(
        {std::string(name), s.max_bytes, s.mean_bytes, s.l2, s.gini});
  }
  bench::emit(contention, "fig7_8_link_contention");

  netsim::AppParams app;
  app.iterations = static_cast<int>(cli.integer("iterations"));
  app.compute_us = cli.real("compute-us");

  Table table("Average message latency (us) vs channel bandwidth",
              {"bw_100MBps", "Random(greedyLB)", "TopoCentLB", "TopoLB"}, 2);
  for (double bw100 : cli.real_list("bandwidths")) {
    netsim::NetworkParams net;
    net.bandwidth = bw100 * 100.0;  // 100s of MB/s -> bytes/us
    net.per_hop_latency_us = 0.1;
    net.injection_overhead_us = 0.5;
    const auto r_g = netsim::run_iterative_app(g, torus, m_greedy, app, net);
    const auto r_c = netsim::run_iterative_app(g, torus, m_cent, app, net);
    const auto r_l = netsim::run_iterative_app(g, torus, m_lb, app, net);
    table.add_row({bw100, r_g.avg_message_latency_us,
                   r_c.avg_message_latency_us, r_l.avg_message_latency_us});
  }
  bench::emit(table, "fig7_8_latency_vs_bw");
  std::cout << "\nPaper shape check: random placement's latency diverges at "
               "the highest bandwidth threshold;\n"
               "TopoLB stays lowest everywhere, including the uncongested "
               "right-hand region (Fig 8 zoom).\n";
  return 0;
}
