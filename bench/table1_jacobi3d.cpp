// Table 1: 200 iterations of a 3D Jacobi-like program — 512 elements in an
// 8x8x8 logical mesh on 512 processors connected as an (8,8,8) 3D mesh —
// under the optimal (identity isomorphism) mapping vs a random mapping,
// for message sizes 1KB .. 1MB.
//
// Paper result (BlueGene hardware; ours is the simulator substitute):
//   size     random    optimal   ratio
//   1KB      56.93ms   46.91ms   1.21x
//   10KB    243.64ms  124.56ms   1.96x
//   100KB     2.25s     0.91s    2.46x
//   500KB    11.62s     4.44s    2.62x
//   1MB      23.50s     8.80s    2.67x
// The gap grows with message size as contention dominates.
#include "bench/common.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "topo/torus_mesh.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Table 1: 3D Jacobi, optimal vs random mapping, by msg size");
  cli.add_option("iterations", "Jacobi iterations", "200");
  cli.add_option("sizes-kb", "message sizes in KB", "1,10,100,500,1024");
  cli.add_option("bandwidth", "link bandwidth in MB/s", "175");
  // In a real Jacobi program the boundary-message size is tied to the
  // subdomain size, so per-iteration compute grows with message size; this
  // keeps the communication-to-computation ratio in the regime the paper
  // measured (ratios ~1.2x at 1KB rising to ~2.7x at 1MB) instead of the
  // pure-communication limit.
  cli.add_option("compute-us-per-kb", "compute per task per iteration, per KB "
                 "of message size (us)", "35");
  cli.add_option("compute-us-base", "fixed compute per iteration (us)", "150");
  cli.add_option("seed", "RNG seed", "1");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const int iterations = static_cast<int>(cli.integer("iterations"));
  bench::preamble(
      "Table 1: Jacobi-like 8x8x8 on a (8,8,8) 3D-mesh, optimal vs random",
      seed);

  const auto g_pattern = [&](double message_bytes) {
    // Edge weight is total bytes per iteration (both directions).
    return graph::stencil_3d(8, 8, 8, 2.0 * message_bytes);
  };
  const topo::TorusMesh mesh = topo::TorusMesh::mesh({8, 8, 8});
  Rng rng(seed);
  const core::Mapping optimal = core::identity_mapping(512);
  const core::Mapping random = rng.permutation(512);

  netsim::NetworkParams net;
  net.bandwidth = cli.real("bandwidth");  // MB/s == bytes/us
  net.per_hop_latency_us = 0.1;
  net.injection_overhead_us = 2.0;

  netsim::AppParams app;
  app.iterations = iterations;

  Table table("Time for " + std::to_string(iterations) +
                  " iterations (simulated)",
              {"msg_size", "Random(ms)", "Optimal(ms)", "ratio",
               "rand_hops", "opt_hops"},
              2);
  for (auto kb : cli.int_list("sizes-kb")) {
    const double bytes = static_cast<double>(kb) * 1024.0;
    app.compute_us = cli.real("compute-us-base") +
                     cli.real("compute-us-per-kb") * static_cast<double>(kb);
    const auto g = g_pattern(bytes);
    const auto r_rand =
        netsim::run_iterative_app(g, mesh, random, app, net);
    const auto r_opt =
        netsim::run_iterative_app(g, mesh, optimal, app, net);
    const std::string label = kb >= 1024
                                  ? std::to_string(kb / 1024) + "MB"
                                  : std::to_string(kb) + "KB";
    table.add_row({label, r_rand.completion_us / 1000.0,
                   r_opt.completion_us / 1000.0,
                   r_rand.completion_us / r_opt.completion_us,
                   r_rand.mean_hops, r_opt.mean_hops});
  }
  bench::emit(table, "table1_jacobi3d");
  std::cout << "\nPaper shape check: optimal mapping (all messages one hop) "
               "beats random, with the ratio\n"
               "growing from ~1.2x at 1KB toward ~2.7x at 1MB as link "
               "contention dominates.\n";
  return 0;
}
