// Figure 5: the LeanMD-like molecular-dynamics workload mapped onto 2D
// tori of various sizes.
//
// Paper result: TopoLB reduces hops-per-byte ~34% below random placement,
// RefineTopoLB a further ~12%, TopoCentLB ~30%; at very high
// virtualization (p=18 in the paper) the coalesced graph is so dense that
// no strategy can do much.
#include "bench/leanmd_common.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Fig 5: LeanMD-like workload on 2D tori");
  cli.add_option("procs", "processor counts (2D-decomposable)",
                 "16,64,144,256,529");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("random-repeats", "random-placement repetitions", "3");
  cli.add_option("md-iterations", "instrumented MD iterations", "5");
  cli.add_flag("full", "extend to p=1024");
  if (!cli.parse(argc, argv)) return 0;

  auto procs = cli.int_list("procs");
  if (cli.flag("full")) procs.push_back(1024);
  bench::run_leanmd_figure(
      "LeanMD-like workload mapped onto 2D tori (Fig 5)",
      "fig5_leanmd_torus2d", /*dims=*/2, procs,
      static_cast<std::uint64_t>(cli.integer("seed")),
      static_cast<int>(cli.integer("random-repeats")),
      static_cast<int>(cli.integer("md-iterations")));
  return 0;
}
