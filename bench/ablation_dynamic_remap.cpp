// Ablation: re-map from scratch vs incremental refinement under load
// drift (the operational trade-off behind the paper's RefineTopoLB, and
// its future-work note on distributed/low-churn approaches).
//
// Every epoch the workload's loads and communication volumes drift; the
// scratch policy reruns the full two-phase pipeline (best hops-per-byte,
// heavy object migration), the incremental policy keeps the grouping and
// refines the previous mapping with RefineTopoLB (near-equal quality at a
// fraction of the migrations).
#include "bench/common.hpp"
#include "graph/builders.hpp"
#include "graph/synthetic_md.hpp"
#include "partition/partition.hpp"
#include "runtime/dynamic_lb.hpp"
#include "topo/factory.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Ablation: scratch vs incremental re-mapping under drift");
  cli.add_option("epochs", "LB epochs", "8");
  cli.add_option("load-drift", "per-epoch load drift", "0.3");
  cli.add_option("comm-drift", "per-epoch communication drift", "0.15");
  cli.add_option("topology", "machine", "torus:8x8");
  cli.add_option("seed", "RNG seed", "1");
  if (!cli.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  bench::preamble("dynamic re-mapping ablation", seed);

  graph::MdParams params;
  params.cells_x = 5;
  params.cells_y = 4;
  params.cells_z = 4;
  Rng graph_rng(seed);
  const graph::TaskGraph objects = graph::synthetic_md(params, graph_rng);
  const auto machine = topo::make_topology(cli.str("topology"));
  std::cout << "workload: " << objects.num_vertices() << " MD objects on "
            << machine->name() << "\n";

  auto run_policy = [&](rts::RemapPolicy policy) {
    rts::DynamicLBConfig config;
    config.epochs = static_cast<int>(cli.integer("epochs"));
    config.load_drift = cli.real("load-drift");
    config.comm_drift = cli.real("comm-drift");
    config.policy = policy;
    config.pipeline.partitioner = part::make_partitioner("multilevel");
    config.pipeline.mapper = core::make_strategy("topolb");
    Rng rng(seed);
    return rts::run_dynamic_lb(objects, *machine, config, rng);
  };
  const auto scratch = run_policy(rts::RemapPolicy::kScratch);
  const auto incremental = run_policy(rts::RemapPolicy::kIncremental);

  Table table("per-epoch quality and migration cost",
              {"epoch", "scratch_hpb", "scratch_migr", "incr_hpb",
               "incr_migr", "scratch_imbal", "incr_imbal"},
              3);
  long total_scratch = 0, total_incr = 0;
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    table.add_row({static_cast<std::int64_t>(i), scratch[i].hops_per_byte,
                   static_cast<std::int64_t>(scratch[i].migrations),
                   incremental[i].hops_per_byte,
                   static_cast<std::int64_t>(incremental[i].migrations),
                   scratch[i].load_imbalance,
                   incremental[i].load_imbalance});
    total_scratch += scratch[i].migrations;
    total_incr += incremental[i].migrations;
  }
  bench::emit(table, "ablation_dynamic_remap");
  std::cout << "\ntotal migrations: scratch=" << total_scratch
            << " incremental=" << total_incr
            << "\nExpected: incremental keeps hops-per-byte within a few "
               "percent of scratch while migrating\nan order of magnitude "
               "fewer objects (imbalance slowly decays as loads drift away "
               "from the\nfrozen epoch-0 grouping — the reason Charm++ "
               "interleaves full LB steps with refinements).\n";
  return 0;
}
