// Figure 6: the LeanMD-like molecular-dynamics workload mapped onto 3D
// tori of various sizes.
//
// Paper result: same ordering as the 2D case; TopoLB followed by
// RefineTopoLB reduces hops-per-byte by ~40% relative to random placement.
#include "bench/leanmd_common.hpp"

using namespace topomap;

int main(int argc, char** argv) {
  CliParser cli("Fig 6: LeanMD-like workload on 3D tori");
  cli.add_option("procs", "processor counts (3D-decomposable)",
                 "27,64,216,512");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("random-repeats", "random-placement repetitions", "3");
  cli.add_option("md-iterations", "instrumented MD iterations", "5");
  cli.add_flag("full", "extend to p=1000");
  if (!cli.parse(argc, argv)) return 0;

  auto procs = cli.int_list("procs");
  if (cli.flag("full")) procs.push_back(1000);
  bench::run_leanmd_figure(
      "LeanMD-like workload mapped onto 3D tori (Fig 6)",
      "fig6_leanmd_torus3d", /*dims=*/3, procs,
      static_cast<std::uint64_t>(cli.integer("seed")),
      static_cast<int>(cli.integer("random-repeats")),
      static_cast<int>(cli.integer("md-iterations")));
  return 0;
}
