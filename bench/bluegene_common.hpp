// Shared driver for the BlueGene-style end-to-end experiments (Figures
// 10 & 11): time to complete N iterations of the 2D Jacobi benchmark with
// 100KB messages, for several machine sizes, under random / TopoCentLB /
// TopoLB mappings, on a 3D torus or 3D mesh.  The machine is our
// discrete-event wormhole simulator (BlueGene substitute; see DESIGN.md).
#pragma once

#include "bench/common.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "topo/factory.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::bench {

inline void run_bluegene_figure(const std::string& what,
                                const std::string& csv_name, bool torus,
                                const std::vector<std::int64_t>& procs,
                                int iterations, double message_bytes,
                                double bandwidth, double compute_us,
                                std::uint64_t seed) {
  preamble(what, seed);
  std::cout << "iterations=" << iterations << " msg=" << message_bytes / 1024
            << "KB bandwidth=" << bandwidth << "MB/s\n";

  Table table("Time (s) for " + std::to_string(iterations) +
                  " iterations of the 2D Jacobi benchmark",
              {"p", "machine", "Random", "TopoCentLB", "TopoLB",
               "rand/topolb"},
              3);
  for (auto p64 : procs) {
    const int p = static_cast<int>(p64);
    const auto net_dims = topo::balanced_dims(p, 3);
    const topo::TorusMesh machine = torus ? topo::TorusMesh::torus(net_dims)
                                          : topo::TorusMesh::mesh(net_dims);
    const auto mesh_dims = topo::balanced_dims(p, 2);
    const auto g =
        graph::stencil_2d(mesh_dims[0], mesh_dims[1], 2.0 * message_bytes);
    Rng rng(seed);
    const core::Mapping m_rand = core::make_strategy("random")->map(g, machine, rng);
    const core::Mapping m_cent = core::make_strategy("topocent")->map(g, machine, rng);
    const core::Mapping m_lb = core::make_strategy("topolb")->map(g, machine, rng);

    netsim::NetworkParams net;
    net.bandwidth = bandwidth;
    net.per_hop_latency_us = 0.1;
    net.injection_overhead_us = 2.0;
    netsim::AppParams app;
    app.iterations = iterations;
    app.compute_us = compute_us;

    const auto r_r = netsim::run_iterative_app(g, machine, m_rand, app, net);
    const auto r_c = netsim::run_iterative_app(g, machine, m_cent, app, net);
    const auto r_l = netsim::run_iterative_app(g, machine, m_lb, app, net);
    table.add_row({static_cast<std::int64_t>(p), machine.name(),
                   r_r.completion_us / 1e6, r_c.completion_us / 1e6,
                   r_l.completion_us / 1e6,
                   r_r.completion_us / r_l.completion_us});
  }
  emit(table, csv_name);
}

}  // namespace topomap::bench
