// Ablation: the dynamic runtime under seeded chaos — does resilience cost
// mapping quality, and does the repair-or-rebuild loop stay silent when
// repairs are honest?
//
// A drifting stencil soaks on a torus while a seeded chaos schedule fails,
// degrades, and repairs processors and links (runtime/chaos.hpp).  Three
// chaos intensities cross two remap policies; every cell is seed-fixed and
// virtual, so the table is byte-stable across machines and thread counts
// and safe for the bench regression gate (no wall-clock columns).
//
// What to look for:
//  * events/avail quantify how much machine each profile takes away;
//  * part_ep > 0 rows prove transient partitions are survived, with q_max
//    objects frozen rather than lost;
//  * rebuilds/violations stay 0 — the incremental plane repairs match
//    from-scratch rebuilds, so validation never has to fall back;
//  * incremental vs scratch shows the usual migration-vs-quality trade
//    holding up under faults.
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "graph/builders.hpp"
#include "partition/partition.hpp"
#include "runtime/chaos.hpp"
#include "runtime/dynamic_lb.hpp"
#include "topo/factory.hpp"

using namespace topomap;

namespace {

struct Profile {
  std::string label;
  std::string spec;    // seed:rate:burst
  int burst_size = 4;  // a torus needs big correlated balls to partition
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Ablation: dynamic-runtime chaos soak — availability, "
                "quarantine, migrations, and plane-repair integrity across "
                "chaos intensities and remap policies");
  cli.add_option("topology", "machine spec", "torus:8x8");
  cli.add_option("epochs", "LB epochs per cell", "200");
  cli.add_option("strategy", "phase-2 mapper", "topolb+refine");
  cli.add_option("seed", "drift/mapping RNG seed", "1");
  if (!cli.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const int epochs = static_cast<int>(cli.integer("epochs"));
  bench::preamble("chaos soak ablation", seed);

  const auto topo = topo::make_topology(cli.str("topology"));
  const graph::TaskGraph g = graph::stencil_2d(16, 8, 1000.0);  // 128 objects
  std::cout << "workload: " << g.num_vertices() << " stencil objects on "
            << topo->name() << ", " << epochs << " epochs per cell\n\n";

  const std::vector<Profile> profiles = {
      {"calm", "42:0.15:0.02"},
      {"steady", "42:0.3:0.05"},
      {"storm", "42:0.8:0.25", 12},
  };
  const std::vector<std::pair<std::string, rts::RemapPolicy>> policies = {
      {"scratch", rts::RemapPolicy::kScratch},
      {"incremental", rts::RemapPolicy::kIncremental},
  };

  Table table("chaos soak: availability, quarantine, and repair integrity",
              {"profile", "policy", "events", "part_ep", "avail", "q_max",
               "migrations", "mean_hpB", "final_hpB", "repair_rows",
               "rebuilds", "violations"},
              4);

  bool loop_silent = true;
  for (const Profile& profile : profiles) {
    rts::ChaosConfig chaos = rts::parse_chaos_spec(profile.spec);
    chaos.epochs = epochs;
    chaos.burst_size = profile.burst_size;
    const rts::ChaosSchedule schedule =
        rts::make_chaos_schedule(*topo, chaos);

    for (const auto& [policy_label, policy] : policies) {
      rts::DynamicLBConfig config;
      config.epochs = epochs;
      config.policy = policy;
      config.pipeline.partitioner = part::make_partitioner("multilevel");
      config.pipeline.mapper = core::make_strategy(cli.str("strategy"));
      config.events = schedule.events;

      Rng rng(seed);
      const rts::DynamicLBRun run =
          rts::run_dynamic_lb_detailed(g, *topo, config, rng);

      double alive_sum = 0.0;
      double hpb_sum = 0.0;
      std::int64_t migrations = 0;
      std::int64_t repair_rows = 0;
      for (const rts::DynamicEpochStats& s : run.history) {
        alive_sum += s.alive_procs;
        hpb_sum += s.hops_per_byte;
        migrations += s.migrations;
        repair_rows += s.plane_rows_repaired;
      }
      const double n_epochs = static_cast<double>(run.history.size());
      table.add_row({profile.label, policy_label,
                     static_cast<std::int64_t>(run.events_applied),
                     static_cast<std::int64_t>(run.partitioned_epochs),
                     alive_sum / (n_epochs * topo->size()),
                     static_cast<std::int64_t>(run.max_quarantined),
                     migrations, hpb_sum / n_epochs,
                     run.history.back().hops_per_byte, repair_rows,
                     static_cast<std::int64_t>(run.plane_rebuilds),
                     static_cast<std::int64_t>(run.violations)});
      if (run.plane_rebuilds != 0 || run.violations != 0) loop_silent = false;
    }
  }

  bench::emit(table, "ablation_chaos_soak");
  std::cout << "\nExpected: availability drops and partitioned epochs rise "
               "with chaos intensity while\nevery run completes; rebuilds "
               "and violations stay 0 because the incremental plane\n"
               "repairs are exact; incremental migrates less than scratch "
               "at comparable hops-per-byte.\n";
  if (!loop_silent) {
    std::cout << "WARNING: validation caught a stale plane (rebuilds or "
                 "violations above are non-zero)\n— the incremental repair "
                 "path disagreed with ground truth somewhere.\n";
    return 1;
  }
  return 0;
}
