// topomapd — the mapping-as-a-service daemon.
//
// Serves topomap.svc.request documents (map / explain / evacuate / optimal
// / status) over a unix-domain socket, optionally mirrored on a localhost
// TCP port, with a bounded request queue, a fixed worker pool, and a
// shared distance-plane cache across concurrent requests (src/svc/).
//
//   topomapd --socket=/tmp/topomapd.sock --workers=4 &
//   topomap client --kind=map --tasks=stencil2d:8x8 --topology=torus:8x8
//
// SIGTERM/SIGINT trigger a clean drain: stop accepting, finish every
// queued request, exit 0.  Exit codes follow the topomap taxonomy:
// 0 success, 1 usage, 2 invalid input, 3 invariant violation, 4 I/O
// failure (e.g. the socket path cannot be bound).
#include <csignal>
#include <iostream>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "svc/server.hpp"

namespace {

topomap::svc::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->stop();  // one self-pipe write
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topomap;
  CliParser cli(
      "serve topology-aware mapping requests over a unix socket "
      "(optionally TCP) with a shared distance-plane cache");
  cli.add_option("socket", "unix-domain socket path to listen on",
                 "/tmp/topomapd.sock");
  cli.add_option("tcp-port",
                 "also listen on 127.0.0.1:<port> with the same framing "
                 "(0 = unix socket only)",
                 "0");
  cli.add_option("workers", "request worker threads", "4");
  cli.add_option("queue",
                 "bounded request-queue depth (readers block when full)",
                 "64");
  cli.add_option("cache",
                 "distinct machines kept warm in the distance-plane pool",
                 "8");
  cli.add_option("report-dir",
                 "write one obs::Report artifact per request here ('' = off)",
                 "");
  try {
    if (!cli.parse(argc, argv)) return 0;

    svc::ServerOptions options;
    options.socket_path = cli.str("socket");
    options.tcp_port = static_cast<int>(cli.integer("tcp-port"));
    options.workers = static_cast<std::size_t>(cli.integer("workers"));
    options.queue_capacity = static_cast<std::size_t>(cli.integer("queue"));
    options.service.cache_capacity =
        static_cast<std::size_t>(cli.integer("cache"));
    options.service.report_dir = cli.str("report-dir");
    TOPOMAP_REQUIRE(options.queue_capacity >= 1,
                    "--queue must be at least 1");

    // write_frame uses MSG_NOSIGNAL, but ignore SIGPIPE globally anyway so
    // a vanished client can never kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    svc::Server server(options);
    server.start();
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::cout << "topomapd listening on " << options.socket_path;
    if (options.tcp_port > 0)
      std::cout << " and 127.0.0.1:" << options.tcp_port;
    std::cout << " (" << options.workers << " workers, queue "
              << options.queue_capacity << ", cache "
              << options.service.cache_capacity << ")" << std::endl;
    server.join();
    g_server = nullptr;
    std::cout << "topomapd: clean shutdown" << std::endl;
    return 0;
  } catch (const precondition_error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const invariant_error& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return 3;
  } catch (const io_error& e) {
    std::cerr << "I/O error: " << e.what() << "\n";
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
