// topomapd — the mapping-as-a-service daemon.
//
// Serves topomap.svc.request documents (map / explain / evacuate / optimal
// / status) over a unix-domain socket, optionally mirrored on a localhost
// TCP port, with a bounded request queue, a fixed worker pool, and a
// shared distance-plane cache across concurrent requests (src/svc/).
//
//   topomapd --socket=/tmp/topomapd.sock --workers=4 &
//   topomap client --kind=map --tasks=stencil2d:8x8 --topology=torus:8x8
//
// Telemetry: every request is traced through its lifecycle (queue-wait →
// acquire → kernel → serialize) into per-kind histograms served by the
// `metrics` request kind (`topomap client --kind=metrics`, `topomap top`).
// A fixed-size flight recorder of recent lifecycle events is always on:
// SIGUSR1 dumps it to stderr, and the `flight` request kind returns it as
// JSON.  --event-log=FILE appends one JSONL line per request with
// size-based rotation (FILE -> FILE.1).  --trace/--stats write the usual
// obs artifacts at shutdown (needs a -DTOPOMAP_OBS=ON build for content).
//
// SIGTERM/SIGINT trigger a clean drain: stop accepting, finish every
// queued request, exit 0.  Exit codes follow the topomap taxonomy:
// 0 success, 1 usage, 2 invalid input, 3 invariant violation, 4 I/O
// failure (e.g. the socket path cannot be bound).
#include <csignal>
#include <fstream>
#include <iostream>

#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "svc/server.hpp"

namespace {

topomap::svc::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->stop();  // one self-pipe write
}

void on_sigusr1(int) {
  if (g_server != nullptr) g_server->request_flight_dump();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topomap;
  CliParser cli(
      "serve topology-aware mapping requests over a unix socket "
      "(optionally TCP) with a shared distance-plane cache");
  cli.add_option("socket", "unix-domain socket path to listen on",
                 "/tmp/topomapd.sock");
  cli.add_option("tcp-port",
                 "also listen on 127.0.0.1:<port> with the same framing "
                 "(0 = unix socket only)",
                 "0");
  cli.add_option("workers", "request worker threads", "4");
  cli.add_option("queue",
                 "bounded request-queue depth (readers block when full)",
                 "64");
  cli.add_option("cache",
                 "distinct machines kept warm in the distance-plane pool",
                 "8");
  cli.add_option("report-dir",
                 "write one obs::Report artifact per request here ('' = off)",
                 "");
  cli.add_option("event-log",
                 "append one JSONL lifecycle line per request here ('' = "
                 "off)",
                 "");
  cli.add_option("event-log-max-bytes",
                 "rotate the event log (FILE -> FILE.1) past this size",
                 "1048576");
  cli.add_option("flight-capacity",
                 "flight-recorder ring size (recent lifecycle events; "
                 "SIGUSR1 dumps it)",
                 "256");
  cli.add_option("trace",
                 "write Chrome-trace JSON of request spans at shutdown", "");
  cli.add_option("stats",
                 "write an obs::Report JSON (counters/histograms) at "
                 "shutdown",
                 "");
  try {
    if (!cli.parse(argc, argv)) return 0;

    svc::ServerOptions options;
    options.socket_path = cli.str("socket");
    options.tcp_port = static_cast<int>(cli.integer("tcp-port"));
    options.workers = static_cast<std::size_t>(cli.integer("workers"));
    options.queue_capacity = static_cast<std::size_t>(cli.integer("queue"));
    options.service.cache_capacity =
        static_cast<std::size_t>(cli.integer("cache"));
    options.service.report_dir = cli.str("report-dir");
    options.service.event_log_path = cli.str("event-log");
    options.service.event_log_max_bytes =
        static_cast<std::size_t>(cli.integer("event-log-max-bytes"));
    options.service.flight_capacity =
        static_cast<std::size_t>(cli.integer("flight-capacity"));
    const std::string trace_path = cli.str("trace");
    const std::string stats_path = cli.str("stats");
    TOPOMAP_REQUIRE(options.queue_capacity >= 1,
                    "--queue must be at least 1");
    TOPOMAP_REQUIRE(options.service.flight_capacity >= 1,
                    "--flight-capacity must be at least 1");

    if (!trace_path.empty() || !stats_path.empty()) {
#if defined(TOPOMAP_OBS_ENABLED)
      obs::set_enabled(true);
#else
      std::cerr << "warning: this binary was built without -DTOPOMAP_OBS=ON;"
                   " --trace/--stats artifacts will carry no instrumentation"
                   " data\n";
#endif
    }

    // write_frame uses MSG_NOSIGNAL, but ignore SIGPIPE globally anyway so
    // a vanished client can never kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    svc::Server server(options);
    server.start();
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGUSR1, on_sigusr1);
    std::cout << "topomapd listening on " << options.socket_path;
    if (options.tcp_port > 0)
      std::cout << " and 127.0.0.1:" << options.tcp_port;
    std::cout << " (" << options.workers << " workers, queue "
              << options.queue_capacity << ", cache "
              << options.service.cache_capacity << ")" << std::endl;
    server.join();
    g_server = nullptr;
    if (!stats_path.empty()) {
      obs::Report report;
      report.set_meta("command", "topomapd");
      report.capture();
      report.write_file(stats_path);
      std::cout << "stats written to " << stats_path << "\n";
    }
    if (!trace_path.empty()) {
      std::ofstream os(trace_path);
      obs::Tracer::instance().write_chrome_trace(os);
      std::cout << "trace written to " << trace_path << "\n";
    }
    std::cout << "topomapd: clean shutdown" << std::endl;
    return 0;
  } catch (const precondition_error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const invariant_error& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return 3;
  } catch (const io_error& e) {
    std::cerr << "I/O error: " << e.what() << "\n";
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
