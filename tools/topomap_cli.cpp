// topomap — command-line front end.
//
//   topomap map       --tasks=<spec> --topology=<spec> --strategy=<spec>
//   topomap simulate  ... same, plus network knobs; runs the DES
//   topomap partition --tasks=<spec> --parts=K [--partitioner=multilevel]
//   topomap pipeline  --tasks=<spec> --topology=<spec>  (objects > procs)
//   topomap evacuate  map, inject faults, repair the placement
//
// map/simulate/evacuate accept fault injection: --fail-link=a:b[,c:d...],
// --fail-node=p[,q...], --degrade-link=a:b:health[,...] (soft faults),
// and/or --random-{link,node}-faults=K / --random-degrades=K drawn with
// --fault-seed.  Mapping then targets the alive processors (tasks must fit),
// avoids degraded links via the health-weighted distance plane, and the
// simulator both routes around failed links and serialises proportionally
// slower on degraded ones.
//
// Workload specs: graph::make_task_graph (stencil2d:16x16, md:8x6x5,
// er:100:0.05, file:path, ...).  Machine specs: topo::make_topology
// (torus:8x8x8, mesh:16x16, hypercube:6, fattree:4x3, dragonfly:8).
// Strategy specs: core::make_strategy (random, topocent, topolb,
// recursive, anneal, <base>+refine, <base>+linkrefine).
//
// Everything prints to stdout; --output writes machine-readable files.
//
// Observability: map/simulate/evacuate accept --trace=FILE (Chrome-trace
// JSON of the run's phase spans; load in chrome://tracing or
// ui.perfetto.dev) and --stats=FILE (a schema-versioned obs::Report with
// counters, span rollups, and series such as TopoLB's per-iteration
// hop-bytes trajectory).  Both need a build with -DTOPOMAP_OBS=ON to carry
// instrumentation data; an OFF build still writes schema-valid artifacts
// and warns that they are empty.
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "core/contention.hpp"
#include "core/fault_aware.hpp"
#include "core/metrics.hpp"
#include "core/optimal_lb.hpp"
#include "core/validate.hpp"
#include "graph/builders.hpp"
#include "graph/factory.hpp"
#include "graph/quotient.hpp"
#include "netsim/app.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "partition/partition.hpp"
#include "runtime/chaos.hpp"
#include "runtime/dynamic_lb.hpp"
#include "runtime/evacuate.hpp"
#include "runtime/lb_manager.hpp"
#include "runtime/rank_reorder.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "svc/client.hpp"
#include "svc/metrics.hpp"
#include "svc/protocol.hpp"
#include "topo/components.hpp"
#include "topo/distance_cache.hpp"
#include "topo/factory.hpp"
#include "topo/fault_spec.hpp"
#include "topo/torus_mesh.hpp"

namespace {

using namespace topomap;

void add_obs_options(CliParser& cli) {
  cli.add_option("trace", "write Chrome-trace JSON of phase spans here", "");
  cli.add_option("stats", "write an obs::Report JSON (counters/spans) here",
                 "");
}

/// Handles --trace/--stats: switches recording on up front, collects run
/// metadata, and writes both artifacts once the command's root span closed.
struct ObsOutputs {
  std::string trace_path;
  std::string stats_path;
  obs::Report report;

  bool active() const { return !trace_path.empty() || !stats_path.empty(); }

  void init(const CliParser& cli) {
    trace_path = cli.str("trace");
    stats_path = cli.str("stats");
    if (!active()) return;
#if defined(TOPOMAP_OBS_ENABLED)
    obs::set_enabled(true);
#else
    std::cerr << "warning: this binary was built without -DTOPOMAP_OBS=ON; "
                 "--trace/--stats artifacts will carry no instrumentation "
                 "data\n";
#endif
  }

  void meta(const std::string& key, double value) {
    report.set_meta(key, obs::json::format_number(value));
  }

  void finish() {
    if (!stats_path.empty()) {
      report.capture();
      report.write_file(stats_path);
      std::cout << "stats written to " << stats_path << "\n";
    }
    if (!trace_path.empty()) {
      std::ofstream os(trace_path);
      obs::Tracer::instance().write_chrome_trace(os);
      std::cout << "trace written to " << trace_path << "\n";
    }
  }
};

void add_fault_options(CliParser& cli) {
  cli.add_option("fail-link", "failed links a:b[,c:d...]", "");
  cli.add_option("fail-node", "failed processors p[,q...]", "");
  cli.add_option("degrade-link",
                 "degraded links a:b:health[,...], health in (0,1]", "");
  cli.add_option("restore-node", "recovered processors p[@epoch][,...]", "");
  cli.add_option("restore-link", "recovered links a:b[@epoch][,...]", "");
  cli.add_option("random-link-faults", "additional random link failures", "0");
  cli.add_option("random-node-faults", "additional random node failures", "0");
  cli.add_option("random-degrades", "additional random link degradations",
                 "0");
  cli.add_option("fault-seed", "RNG seed for random fault selection", "42");
}

topo::FaultSpec parse_fault_options(const CliParser& cli) {
  return topo::parse_fault_spec(
      cli.str("fail-link"), cli.str("fail-node"), cli.str("degrade-link"),
      cli.integer("random-link-faults"), cli.integer("random-node-faults"),
      cli.integer("random-degrades"),
      static_cast<std::uint64_t>(cli.integer("fault-seed")),
      cli.str("restore-node"), cli.str("restore-link"));
}

/// Build the fault overlay described by the fault options, or null when no
/// fault was requested (topo::parse_fault_spec/build_fault_overlay do the
/// real work and are unit-tested directly).
std::shared_ptr<topo::FaultOverlay> make_fault_overlay(
    const CliParser& cli, const topo::TopologyPtr& base) {
  return topo::build_fault_overlay(base, parse_fault_options(cli));
}

/// Open `path` for writing; throws io_error (CLI exit code 4) when the
/// environment refuses.
std::ofstream open_output(const std::string& path) {
  std::ofstream os(path);
  if (!os.good())
    throw io_error("cannot open '" + path + "' for writing");
  return os;
}

void print_fault_summary(const topo::FaultOverlay& overlay) {
  std::cout << "faults:         " << overlay.num_failed_nodes() << " nodes, "
            << overlay.num_failed_links() << " links, "
            << overlay.num_degraded_links() << " degraded ("
            << overlay.num_alive() << "/" << overlay.size()
            << " processors alive)\n";
}

void print_mapping_report(const graph::TaskGraph& g,
                          const topo::Topology& topo, const core::Mapping& m,
                          const std::string& strategy_name) {
  std::cout << "strategy:       " << strategy_name << "\n";
  std::cout << "hops-per-byte:  " << core::hops_per_byte(g, topo, m)
            << "  (random expectation " << core::expected_random_hops(topo)
            << ")\n";
  std::cout << "hop-bytes:      " << core::hop_bytes(g, topo, m) << "\n";
  try {
    const auto links = core::link_loads(g, topo, m);
    std::cout << "link loads:     max " << links.max_bytes << " B, mean "
              << links.mean_bytes << " B over " << links.links_total
              << " directed links (" << links.links_used << " used)\n";
  } catch (const precondition_error&) {
    std::cout << "link loads:     (topology has no processor-level routes)\n";
  }
}

int cmd_map(int argc, const char* const* argv, bool simulate) {
  CliParser cli(simulate ? "map a workload and simulate its execution"
                         : "map a workload onto a machine");
  cli.add_option("tasks", "workload spec", "stencil2d:8x8");
  cli.add_option("topology", "machine spec", "torus:8x8");
  cli.add_option("strategy", "mapping strategy", "topolb");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("output", "write 'task processor' lines here", "");
  add_fault_options(cli);
  add_obs_options(cli);
  if (simulate) {
    cli.add_option("iterations", "app iterations", "200");
    cli.add_option("compute-us", "compute per task-iteration (us)", "10");
    cli.add_option("bandwidth", "link bandwidth MB/s", "500");
    cli.add_option("routing", "deterministic | adaptive", "deterministic");
    cli.add_option("model", "wormhole | storeforward", "wormhole");
  }
  if (!cli.parse(argc, argv)) return 0;

  ObsOutputs obs_out;
  obs_out.init(cli);

  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const graph::TaskGraph g = graph::make_task_graph(cli.str("tasks"), rng);
  const auto topo = topo::make_topology(cli.str("topology"));
  const auto overlay = make_fault_overlay(cli, topo);
  // All metrics/simulation run against the (possibly faulted) machine view.
  const topo::Topology& machine = overlay ? *overlay : *topo;
  const auto strategy = core::make_strategy(cli.str("strategy"));

  obs_out.report.set_meta("command", simulate ? "simulate" : "map");
  obs_out.report.set_meta("workload", g.label());
  obs_out.report.set_meta("machine", topo->name());
  obs_out.report.set_meta("strategy", strategy->name());
  obs_out.report.set_meta("seed", cli.str("seed"));

  core::Mapping m;
  std::vector<int> quarantined;
  std::string partition_note;
  {
    obs::ScopedSpan root_span(simulate ? "cli/simulate" : "cli/map");
    if (overlay) {
      // Maps onto the primary component when the faults split the machine;
      // on overflow the lightest communicators are quarantined unplaced.
      const topo::ComponentSplit split = topo::connected_components(*overlay);
      if (split.partitioned() &&
          g.num_vertices() > static_cast<int>(split.primary().size())) {
        TOPOMAP_REQUIRE(!simulate,
                        "cannot simulate a partitioned machine whose primary "
                        "component is too small for the workload — " +
                            topo::describe_partition(*overlay, split));
        core::PartitionedMapResult pr =
            core::map_on_largest_component(*strategy, g, *overlay, rng);
        m = std::move(pr.mapping);
        quarantined = std::move(pr.quarantined);
        partition_note = topo::describe_partition(*overlay, split);
      } else {
        m = core::map_on_alive(*strategy, g, *overlay, rng);
      }
    } else {
      if (g.num_vertices() != topo->size() &&
          !(strategy->supports_oversubscription() &&
            g.num_vertices() > topo->size())) {
        std::cerr << "error: workload has " << g.num_vertices()
                  << " tasks but the machine has " << topo->size()
                  << " processors; use `topomap pipeline` or strategy "
                     "`hier` when tasks > procs\n";
        return 1;
      }
      m = strategy->map(g, *topo, rng);
    }
  }
  // Metrics run on the placed tasks (everything, absent quarantine).
  const graph::TaskGraph* metric_g = &g;
  core::Mapping metric_m = m;
  graph::Subgraph placed_view;
  if (!quarantined.empty()) {
    std::vector<int> placed_ids;
    for (int t = 0; t < g.num_vertices(); ++t)
      if (m[static_cast<std::size_t>(t)] != core::kUnassigned)
        placed_ids.push_back(t);
    placed_view = graph::induced_subgraph(g, placed_ids);
    metric_g = &placed_view.graph;
    metric_m.clear();
    for (int t : placed_ids)
      metric_m.push_back(m[static_cast<std::size_t>(t)]);
  }
  obs_out.meta("hop_bytes", core::hop_bytes(*metric_g, machine, metric_m));
  obs_out.meta("hops_per_byte",
               core::hops_per_byte(*metric_g, machine, metric_m));

  std::cout << "workload:       " << g.label() << " (" << g.num_edges()
            << " edges, " << g.total_comm_bytes() << " B/iter)\n"
            << "machine:        " << topo->name() << "\n";
  if (overlay) print_fault_summary(*overlay);
  if (!partition_note.empty())
    std::cout << "partition:      " << partition_note << "\n"
              << "quarantined:    " << quarantined.size() << " of "
              << g.num_vertices()
              << " tasks left unplaced (lightest communicators)\n";
  print_mapping_report(*metric_g, machine, metric_m, strategy->name());

  if (simulate) {
    netsim::AppParams app;
    app.iterations = static_cast<int>(cli.integer("iterations"));
    app.compute_us = cli.real("compute-us");
    netsim::NetworkParams net;
    net.bandwidth = cli.real("bandwidth");
    const std::string routing = cli.str("routing");
    if (routing == "adaptive")
      net.routing = netsim::RoutingPolicy::kMinimalAdaptive;
    else if (routing != "deterministic") {
      std::cerr << "error: unknown routing policy " << routing << "\n";
      return 1;
    }
    const std::string model_str = cli.str("model");
    const netsim::ServiceModel model =
        model_str == "storeforward" ? netsim::ServiceModel::kStoreForward
                                    : netsim::ServiceModel::kWormhole;
    const auto r = netsim::run_iterative_app(g, machine, m, app, net, model);
    obs_out.meta("completion_us", r.completion_us);
    std::cout << "simulation:     " << app.iterations << " iterations at "
              << net.bandwidth << " MB/s (" << routing << ", " << model_str
              << ")\n"
              << "completion:     " << r.completion_us / 1000.0 << " ms\n"
              << "msg latency:    avg " << r.avg_message_latency_us
              << " us, p99 " << r.p99_message_latency_us << " us, max "
              << r.max_message_latency_us << " us\n"
              << "busiest link:   " << r.max_link_busy_us / 1000.0
              << " ms busy\n";
  }

  if (const std::string out = cli.str("output"); !out.empty()) {
    std::ofstream os = open_output(out);
    if (quarantined.empty()) {
      rts::write_rank_mapping(os, m);
    } else {
      // Placed tasks only; quarantined ids live in the report above.
      for (int t = 0; t < g.num_vertices(); ++t)
        if (m[static_cast<std::size_t>(t)] != core::kUnassigned)
          os << t << ' ' << m[static_cast<std::size_t>(t)] << '\n';
    }
    std::cout << "mapping written to " << out << "\n";
  }
  obs_out.finish();
  return 0;
}

/// Write the schema-versioned contention artifact ("topomap.obs.contention"
/// v1): per-link table with top-K contributors, optional busiest-link
/// timeline, optional baseline stats + mapping diff.
void write_contention_report(
    const std::string& path, const obs::json::Value& meta,
    const core::ContentionReport& attr, int top_k,
    const netsim::AppResult* sim, const core::ContentionReport* baseline,
    const std::string& baseline_name, const core::ContentionDiff* diff) {
  obs::json::Value doc = obs::json::Value::object();
  doc.set("schema", core::kContentionSchemaName);
  doc.set("schema_version", core::kContentionSchemaVersion);
  doc.set("meta", meta);
  doc.set("stats", core::contention_stats_to_json(attr.stats));
  doc.set("links", core::contention_links_to_json(attr, top_k));
  if (sim != nullptr) {
    const netsim::TelemetrySnapshot& snap = sim->telemetry;
    obs::json::Value timeline = obs::json::Value::object();
    timeline.set("sample_us", snap.sample_interval_us);
    timeline.set("completion_us", sim->completion_us);
    auto arr = [](const std::vector<double>& xs) {
      obs::json::Value a = obs::json::Value::array();
      for (double x : xs) a.push_back(x);
      return a;
    };
    timeline.set("t_us", arr(snap.t_us));
    timeline.set("util_max", arr(snap.util_max));
    timeline.set("queue_depth", arr(snap.queue_depth));
    obs::json::Value hot = obs::json::Value::array();
    const std::size_t shown = std::min<std::size_t>(snap.links.size(), 10);
    for (std::size_t i = 0; i < shown; ++i) {
      const netsim::LinkTelemetry& lt = snap.links[i];
      obs::json::Value v = obs::json::Value::object();
      v.set("from", lt.from);
      v.set("to", lt.to);
      v.set("bytes", lt.bytes);
      v.set("busy_us", lt.busy_us);
      v.set("peak_util", lt.peak_util);
      v.set("time_to_peak_us", lt.time_to_peak_us);
      v.set("saturated_us", lt.saturated_us);
      hot.push_back(std::move(v));
    }
    timeline.set("hot_links", std::move(hot));
    doc.set("timeline", std::move(timeline));
  }
  if (baseline != nullptr) {
    obs::json::Value b = obs::json::Value::object();
    b.set("strategy", baseline_name);
    b.set("stats", core::contention_stats_to_json(baseline->stats));
    doc.set("baseline", std::move(b));
  }
  if (diff != nullptr) {
    obs::json::Value d = obs::json::Value::object();
    d.set("links", core::contention_diff_to_json(*diff, top_k));
    doc.set("diff", std::move(d));
  }
  std::ofstream os(path);
  if (!os.good())
    throw io_error("explain: cannot open '" + path + "' for writing");
  os << doc.dump(2) << "\n";
  os.flush();
  if (!os.good()) throw io_error("explain: failed writing '" + path + "'");
}

int cmd_explain(int argc, const char* const* argv) {
  CliParser cli(
      "explain a mapping's link contention: per-link attribution, "
      "busiest-link timeline, and (with --baseline) a mapping diff");
  cli.add_option("tasks", "workload spec", "stencil2d:8x8");
  cli.add_option("topology", "machine spec", "torus:8x8");
  cli.add_option("strategy", "mapping strategy to explain", "topolb");
  cli.add_option("baseline", "baseline strategy to diff against", "");
  cli.add_flag("baseline-blind",
               "map the baseline on the pristine machine (ignore soft "
               "faults) — reproduces health-blind placement");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("top-k", "contributing task pairs kept per link", "3");
  cli.add_option("report", "write the topomap.obs.contention JSON here", "");
  cli.add_option("iterations",
                 "simulated app iterations for the timeline (0 = skip "
                 "simulation)",
                 "50");
  cli.add_option("compute-us", "compute per task-iteration (us)", "10");
  cli.add_option("bandwidth", "link bandwidth MB/s", "500");
  cli.add_option("model", "wormhole | storeforward", "wormhole");
  cli.add_option("sample-us", "telemetry sampling window (virtual us)",
                 "100");
  cli.add_option("output", "write 'task processor' lines here", "");
  add_fault_options(cli);
  add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  ObsOutputs obs_out;
  obs_out.init(cli);

  const int top_k = static_cast<int>(cli.integer("top-k"));
  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const graph::TaskGraph g = graph::make_task_graph(cli.str("tasks"), rng);
  const auto topo = topo::make_topology(cli.str("topology"));
  const auto overlay = make_fault_overlay(cli, topo);
  const topo::Topology& machine = overlay ? *overlay : *topo;
  const auto strategy = core::make_strategy(cli.str("strategy"));

  obs_out.report.set_meta("command", "explain");
  obs_out.report.set_meta("workload", g.label());
  obs_out.report.set_meta("machine", topo->name());
  obs_out.report.set_meta("strategy", strategy->name());
  obs_out.report.set_meta("seed", cli.str("seed"));

  const std::string baseline_spec = cli.str("baseline");
  const bool baseline_blind = cli.flag("baseline-blind");
  if (baseline_blind && baseline_spec.empty()) {
    std::cerr << "error: --baseline-blind needs --baseline=<strategy>\n";
    return 1;
  }
  if (baseline_blind && overlay &&
      (overlay->num_failed_nodes() > 0 || overlay->num_failed_links() > 0)) {
    std::cerr << "error: --baseline-blind supports soft faults only (a "
                 "blind mapping may land on failed processors)\n";
    return 1;
  }

  core::Mapping m;
  core::Mapping baseline_m;
  {
    obs::ScopedSpan root_span("cli/explain");
    if (overlay) {
      m = core::map_on_alive(*strategy, g, *overlay, rng);
    } else {
      if (g.num_vertices() != topo->size() &&
          !(strategy->supports_oversubscription() &&
            g.num_vertices() > topo->size())) {
        std::cerr << "error: workload has " << g.num_vertices()
                  << " tasks but the machine has " << topo->size()
                  << " processors; use `topomap pipeline` or strategy "
                     "`hier` when tasks > procs\n";
        return 1;
      }
      m = strategy->map(g, *topo, rng);
    }
    if (!baseline_spec.empty()) {
      const auto baseline_strategy = core::make_strategy(baseline_spec);
      Rng baseline_rng(static_cast<std::uint64_t>(cli.integer("seed")));
      if (overlay && !baseline_blind) {
        baseline_m =
            core::map_on_alive(*baseline_strategy, g, *overlay, baseline_rng);
      } else {
        // Blind (or no faults): the baseline maps on the pristine machine
        // but is *evaluated* on the actual (possibly degraded) one.
        topo::FaultOverlay healthy(topo);
        baseline_m =
            core::map_on_alive(*baseline_strategy, g, healthy, baseline_rng);
      }
    }
  }

  std::cout << "workload:       " << g.label() << " (" << g.num_edges()
            << " edges, " << g.total_comm_bytes() << " B/iter)\n"
            << "machine:        " << topo->name() << "\n";
  if (overlay) print_fault_summary(*overlay);
  std::cout << "strategy:       " << strategy->name() << "\n";

  core::ContentionReport attr;
  try {
    attr = core::attribute_link_loads(g, machine, m);
  } catch (const precondition_error& e) {
    std::cerr << "error: this machine has no processor-level routes to "
                 "attribute ("
              << e.what() << ")\n";
    return 1;
  }
  const double hb = core::hop_bytes(g, machine, m);
  obs_out.meta("hop_bytes", hb);
  std::cout << "hop-bytes:      " << hb;
  if (hb == attr.stats.total_bytes) {
    std::cout << " (per-link totals sum to it exactly)\n";
  } else {
    // Soft-fault overlays weight hop-bytes by link health; the attribution
    // counts physical bytes crossing each link.
    std::cout << " (health-weighted; physical routed bytes "
              << attr.stats.total_bytes << ")\n";
  }
  std::cout << core::render_contention_summary(attr, 5, top_k);

  // Busiest-link timeline from the simulator's sampling grid.
  netsim::AppResult sim;
  bool simulated = false;
  const int iterations = static_cast<int>(cli.integer("iterations"));
  if (iterations > 0) {
    netsim::AppParams app;
    app.iterations = iterations;
    app.compute_us = cli.real("compute-us");
    app.telemetry = true;
    app.telemetry_spec.sample_interval_us = cli.real("sample-us");
    netsim::NetworkParams net;
    net.bandwidth = cli.real("bandwidth");
    const std::string model_str = cli.str("model");
    const netsim::ServiceModel model =
        model_str == "storeforward" ? netsim::ServiceModel::kStoreForward
                                    : netsim::ServiceModel::kWormhole;
    sim = netsim::run_iterative_app(g, machine, m, app, net, model);
    simulated = true;
    obs_out.meta("completion_us", sim.completion_us);
    const netsim::TelemetrySnapshot& snap = sim.telemetry;
    std::cout << "timeline:       " << snap.t_us.size() << " windows of "
              << snap.sample_interval_us << " us over " << iterations
              << " iterations (completion " << sim.completion_us / 1000.0
              << " ms)\n";
    if (!snap.links.empty()) {
      const netsim::LinkTelemetry& hot = snap.links.front();
      std::cout << "busiest link:   (" << hot.from << "," << hot.to << ") "
                << hot.bytes << " B, peak util "
                << format_fixed(hot.peak_util, 2) << " at "
                << hot.time_to_peak_us << " us, saturated "
                << hot.saturated_us << " us\n";
    }
  }

  // Baseline attribution + diff: baseline is side A, the explained
  // strategy side B, so "8000 -> 1000" reads as the improvement.
  core::ContentionReport baseline_attr;
  core::ContentionDiff diff;
  const bool diffed = !baseline_spec.empty();
  if (diffed) {
    baseline_attr = core::attribute_link_loads(g, machine, baseline_m);
    diff = core::diff_contention(baseline_attr, attr);
    std::cout << "baseline:       " << baseline_spec
              << (baseline_blind ? " (blind: mapped on pristine machine)"
                                 : "")
              << ", routed bytes " << baseline_attr.stats.total_bytes << "\n"
              << core::render_contention_diff(diff, 5, top_k);
  }

  if (const std::string report_path = cli.str("report");
      !report_path.empty()) {
    obs::json::Value meta = obs::json::Value::object();
    meta.set("command", "explain");
    meta.set("workload", g.label());
    meta.set("machine", topo->name());
    meta.set("strategy", strategy->name());
    meta.set("seed", cli.str("seed"));
    meta.set("top_k", top_k);
    meta.set("hop_bytes", hb);
    if (diffed) meta.set("baseline", baseline_spec);
    write_contention_report(report_path, meta, attr, top_k,
                            simulated ? &sim : nullptr,
                            diffed ? &baseline_attr : nullptr, baseline_spec,
                            diffed ? &diff : nullptr);
    std::cout << "report written to " << report_path << "\n";
  }
  if (const std::string out = cli.str("output"); !out.empty()) {
    std::ofstream os = open_output(out);
    rts::write_rank_mapping(os, m);
    std::cout << "mapping written to " << out << "\n";
  }
  obs_out.finish();
  return 0;
}

int cmd_partition(int argc, const char* const* argv) {
  CliParser cli("partition a workload into balanced groups");
  cli.add_option("tasks", "workload spec", "md:6x6x5");
  cli.add_option("parts", "group count", "16");
  cli.add_option("partitioner", "multilevel | greedy | random", "multilevel");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("output", "write 'task group' lines here", "");
  if (!cli.parse(argc, argv)) return 0;

  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const graph::TaskGraph g = graph::make_task_graph(cli.str("tasks"), rng);
  const int k = static_cast<int>(cli.integer("parts"));
  const auto partitioner = part::make_partitioner(cli.str("partitioner"));
  const auto r = partitioner->partition(g, k, rng);

  std::cout << "workload:   " << g.label() << " (" << g.num_vertices()
            << " tasks)\n"
            << "parts:      " << k << " via " << partitioner->name() << "\n"
            << "edge cut:   " << part::edge_cut(g, r.assignment) << " B of "
            << g.total_comm_bytes() << " B total\n"
            << "imbalance:  " << part::load_imbalance(g, r.assignment, k)
            << "\n";
  if (const std::string out = cli.str("output"); !out.empty()) {
    std::ofstream os = open_output(out);
    for (std::size_t t = 0; t < r.assignment.size(); ++t)
      os << t << ' ' << r.assignment[t] << '\n';
    std::cout << "assignment written to " << out << "\n";
  }
  return 0;
}

int cmd_pipeline(int argc, const char* const* argv) {
  CliParser cli("two-phase pipeline: partition objects, map groups");
  cli.add_option("tasks", "workload spec (tasks >= processors)", "md:6x6x5");
  cli.add_option("topology", "machine spec", "torus:8x8");
  cli.add_option("strategy", "phase-2 mapper", "topolb+refine");
  cli.add_option("partitioner", "phase-1 partitioner", "multilevel");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("output", "write 'object processor' lines here", "");
  if (!cli.parse(argc, argv)) return 0;

  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const graph::TaskGraph g = graph::make_task_graph(cli.str("tasks"), rng);
  const auto topo = topo::make_topology(cli.str("topology"));
  rts::PipelineConfig config;
  config.partitioner = part::make_partitioner(cli.str("partitioner"));
  config.mapper = core::make_strategy(cli.str("strategy"));
  const auto r = rts::run_two_phase(g, *topo, config, rng);

  std::cout << "workload:       " << g.label() << " (" << g.num_vertices()
            << " objects, virtualization "
            << static_cast<double>(g.num_vertices()) / topo->size() << ")\n"
            << "machine:        " << topo->name() << "\n"
            << "phase 1:        cut " << r.edge_cut_bytes << " B, imbalance "
            << r.load_imbalance << ", quotient degree "
            << r.quotient_avg_degree << "\n"
            << "phase 2:        " << config.mapper->name()
            << ", hops-per-byte " << r.hops_per_byte << "\n";
  if (const std::string out = cli.str("output"); !out.empty()) {
    std::ofstream os = open_output(out);
    for (std::size_t obj = 0; obj < r.object_to_proc.size(); ++obj)
      os << obj << ' ' << r.object_to_proc[obj] << '\n';
    std::cout << "placement written to " << out << "\n";
  }
  return 0;
}

int cmd_evacuate(int argc, const char* const* argv) {
  CliParser cli(
      "map on the healthy machine, inject faults, evacuate stranded tasks");
  cli.add_option("tasks", "workload spec (tasks <= processors)",
                 "stencil2d:7x8");
  cli.add_option("topology", "machine spec", "torus:8x8");
  cli.add_option("strategy", "initial/remap strategy", "topolb");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("refine-passes", "bounded refine sweeps after evacuation",
                 "1");
  cli.add_option("load-weight",
                 "neighbourhood-load term weight in the destination score "
                 "(0 = pure hop-bytes)",
                 "0");
  cli.add_option("output", "write repaired 'task processor' lines here", "");
  add_fault_options(cli);
  add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  ObsOutputs obs_out;
  obs_out.init(cli);

  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const graph::TaskGraph g = graph::make_task_graph(cli.str("tasks"), rng);
  const auto topo = topo::make_topology(cli.str("topology"));
  auto overlay = make_fault_overlay(cli, topo);
  if (!overlay) {
    std::cerr << "error: evacuate needs at least one fault (--fail-link/"
                 "--fail-node/--degrade-link/--random-*)\n";
    return 1;
  }

  obs_out.report.set_meta("command", "evacuate");
  obs_out.report.set_meta("workload", g.label());
  obs_out.report.set_meta("machine", topo->name());
  obs_out.report.set_meta("strategy", cli.str("strategy"));
  obs_out.report.set_meta("seed", cli.str("seed"));

  // Map on the healthy machine first: the faults strike a running job.
  topo::FaultOverlay healthy(topo);
  const auto strategy = core::make_strategy(cli.str("strategy"));
  rts::EvacuateOptions evac_options;
  evac_options.refine_passes = static_cast<int>(cli.integer("refine-passes"));
  evac_options.load_weight = cli.real("load-weight");

  core::Mapping before;
  double hb_before = 0.0;
  rts::EvacuateComparison cmp;
  {
    obs::ScopedSpan root_span("cli/evacuate");
    before = core::map_on_alive(*strategy, g, healthy, rng);
    hb_before = core::hop_bytes(g, *topo, before);
    cmp = rts::compare_evacuate_vs_remap(g, *overlay, before, *strategy, rng,
                                         evac_options);
  }
  obs_out.meta("hop_bytes", cmp.evac.hop_bytes);
  obs_out.meta("load_imbalance", cmp.evac.load_imbalance);

  std::cout << "workload:       " << g.label() << " (" << g.num_vertices()
            << " tasks)\n"
            << "machine:        " << topo->name() << "\n";
  print_fault_summary(*overlay);
  std::cout << "before faults:  hop-bytes " << hb_before << " ("
            << strategy->name() << ")\n"
            << "evacuate:       " << cmp.evac.stranded << " stranded, "
            << cmp.evac.migrations << " migrations ("
            << cmp.evac.refine_swaps << " refine swaps), hop-bytes "
            << cmp.evac.hop_bytes << ", nbhd load imbalance "
            << cmp.evac.load_imbalance << "\n"
            << "full remap:     " << cmp.full_migrations
            << " migrations, hop-bytes " << cmp.full_hop_bytes << "\n"
            << "evac/remap:     hop-bytes ratio "
            << (cmp.full_hop_bytes > 0.0
                    ? cmp.evac.hop_bytes / cmp.full_hop_bytes
                    : 1.0)
            << "\n";
  if (const std::string out = cli.str("output"); !out.empty()) {
    std::ofstream os = open_output(out);
    rts::write_rank_mapping(os, cmp.evac.mapping);
    std::cout << "repaired mapping written to " << out << "\n";
  }
  obs_out.finish();
  return 0;
}

int cmd_optimal(int argc, const char* const* argv) {
  CliParser cli(
      "exactly minimize hop-bytes by branch and bound (<= 12 tasks) and "
      "report a strategy's optimality gap against the proven minimum");
  cli.add_option("tasks", "workload spec (<= 12 tasks)", "stencil2d:3x3");
  cli.add_option("topology", "machine spec", "torus:3x3");
  cli.add_option("seed", "RNG seed (workload + compared strategy)", "1");
  cli.add_option("budget", "branch-and-bound node budget", "20000000");
  cli.add_option("compare",
                 "strategy spec to gap against the optimum ('' skips)",
                 "topolb");
  cli.add_flag("no-symmetry",
               "explore every root placement (disable automorphism pruning)");
  cli.add_option("output", "write 'task processor' lines here", "");
  add_fault_options(cli);
  add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  ObsOutputs obs_out;
  obs_out.init(cli);

  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const graph::TaskGraph g = graph::make_task_graph(cli.str("tasks"), rng);
  const auto topo = topo::make_topology(cli.str("topology"));
  const auto overlay = make_fault_overlay(cli, topo);
  const topo::Topology& machine = overlay ? *overlay : *topo;
  if (overlay) print_fault_summary(*overlay);

  core::OptimalOptions opts;
  opts.node_budget = cli.integer("budget");
  opts.symmetry = !cli.flag("no-symmetry");

  obs_out.report.set_meta("command", "optimal");
  obs_out.report.set_meta("workload", g.label());
  obs_out.report.set_meta("machine", machine.name());
  obs_out.report.set_meta("seed", cli.str("seed"));

  core::OptimalResult result;
  {
    obs::ScopedSpan root_span("cli/optimal");
    result = core::find_optimal_mapping(g, machine, opts);
  }
  print_mapping_report(g, machine, result.mapping, "OptimalLB (exact)");
  std::cout << "search:         " << result.nodes << " nodes, "
            << result.pruned << " pruned subtrees, " << result.root_candidates
            << " root candidates\n";
  obs_out.meta("optimal_hop_bytes", result.hop_bytes);
  obs_out.meta("search_nodes", static_cast<double>(result.nodes));

  if (const std::string spec = cli.str("compare"); !spec.empty()) {
    const auto strategy = core::make_strategy(spec);
    Rng crng(static_cast<std::uint64_t>(cli.integer("seed")));
    const core::Mapping cm =
        overlay ? core::map_on_alive(*strategy, g, *overlay, crng)
                : strategy->map(g, *topo, crng);
    const double chb = core::hop_bytes(g, machine, cm);
    const double gap =
        result.hop_bytes > 0.0 ? chb / result.hop_bytes : 1.0;
    std::cout << "compare:        " << strategy->name() << " hop-bytes "
              << chb << ", optimality gap " << gap
              << (gap == 1.0 ? " (provably optimal)" : "") << "\n";
    obs_out.meta("compare_hop_bytes", chb);
    obs_out.meta("optimality_gap", gap);
  }

  if (const std::string out = cli.str("output"); !out.empty()) {
    std::ofstream os = open_output(out);
    for (std::size_t t = 0; t < result.mapping.size(); ++t)
      os << t << ' ' << result.mapping[t] << '\n';
    std::cout << "mapping written to " << out << "\n";
  }
  obs_out.finish();
  return 0;
}

/// `topomap chaos --drill=<kind>`: corrupt exactly one validated subsystem
/// of a small healthy mapped system and let core::validate_state convict
/// it.  Always exits non-zero: the caught corruption is rethrown as
/// invariant_error (exit code 3) — scripts/smoke_test.sh asserts the exit
/// code and the violation text end to end.
int run_validation_drill(const std::string& kind) {
  const graph::TaskGraph g = graph::stencil_2d(4, 2, 64.0);
  auto base =
      std::make_shared<topo::TorusMesh>(topo::TorusMesh::mesh({4, 2}));
  topo::FaultOverlay overlay(base);
  topo::DistanceCache plane(overlay);
  Rng rng(11);
  core::Mapping placement =
      core::make_strategy("topolb")->map(g, overlay, rng);
  std::vector<char> quarantined(static_cast<std::size_t>(g.num_vertices()),
                                0);
  std::cout << "drill: healthy 8-task stencil on mesh:4x2 — corrupting '"
            << kind << "'\n";
  if (kind == "placement") {
    // The processor dies and the plane is repaired faithfully, but the
    // placement is never migrated off the corpse.
    const int victim = placement[0];
    overlay.fail_node(victim);
    plane.repair_node_failure(overlay, victim);
    std::cout << "  processor " << victim
              << " died; plane repaired; placement left stale\n";
  } else if (kind == "quarantine") {
    // An active task loses its seat with no quarantine record.
    placement[0] = core::kUnassigned;
    std::cout << "  task 0 unseated without a quarantine flag\n";
  } else if (kind == "plane") {
    // A soft fault flips the overlay into fixed-point units; the plane
    // misses the repair event — version skew.
    overlay.degrade_link(0, 1, 0.5);
    std::cout << "  link 0-1 degraded to half health; plane repair skipped\n";
  } else {
    throw precondition_error("unknown drill '" + kind +
                             "' (want placement | quarantine | plane)");
  }
  core::SystemState st;
  st.graph = &g;
  st.overlay = &overlay;
  st.placement = &placement;
  st.quarantined = &quarantined;
  st.plane = &plane;
  const core::ValidationReport report = core::validate_state(st);
  TOPOMAP_ASSERT(!report.ok(), "drill failed: validate_state missed the '" +
                                   kind + "' corruption");
  throw invariant_error("self-validation drill '" + kind +
                        "' caught: " + report.summary());
}

int cmd_chaos(int argc, const char* const* argv) {
  CliParser cli(
      "soak the dynamic runtime under a seeded fault/recovery timeline: "
      "correlated bursts, degrades, repair crews, transient partitions");
  cli.add_option("tasks", "workload spec (objects >= processors)", "md:6x6x5");
  cli.add_option("topology", "machine spec", "torus:8x8");
  cli.add_option("strategy", "phase-2 mapper", "topolb+refine");
  cli.add_option("partitioner", "phase-1 partitioner", "multilevel");
  cli.add_option("policy", "scratch | incremental", "incremental");
  cli.add_option("epochs", "LB epochs to soak", "200");
  cli.add_option("seed", "RNG seed for drift and mapping", "1");
  cli.add_option("chaos", "chaos timeline spec seed:rate:burst",
                 "42:0.3:0.05");
  cli.add_option("load-drift", "per-epoch load drift in [0,1)", "0.3");
  cli.add_option("comm-drift", "per-epoch communication drift in [0,1)",
                 "0.15");
  cli.add_option("plane-rows",
                 "distance-plane rows per validation (0 = all alive rows)",
                 "0");
  cli.add_flag("no-validate", "skip the per-event/per-epoch self-validation");
  cli.add_option("drill",
                 "corrupt one validated subsystem of a fixed small system "
                 "and exit 3 with the caught violation: placement | "
                 "quarantine | plane",
                 "");
  cli.add_option("output", "write final 'object processor' lines here", "");
  add_fault_options(cli);
  add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  if (const std::string drill = cli.str("drill"); !drill.empty())
    return run_validation_drill(drill);  // throws: exit 3 (or 2 on bad kind)

  ObsOutputs obs_out;
  obs_out.init(cli);

  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const graph::TaskGraph g = graph::make_task_graph(cli.str("tasks"), rng);
  const auto topo = topo::make_topology(cli.str("topology"));

  rts::DynamicLBConfig config;
  config.epochs = static_cast<int>(cli.integer("epochs"));
  config.load_drift = cli.real("load-drift");
  config.comm_drift = cli.real("comm-drift");
  config.resilience.validate = !cli.flag("no-validate");
  config.resilience.plane_rows = static_cast<int>(cli.integer("plane-rows"));
  config.pipeline.partitioner = part::make_partitioner(cli.str("partitioner"));
  config.pipeline.mapper = core::make_strategy(cli.str("strategy"));
  const std::string policy = cli.str("policy");
  if (policy == "scratch")
    config.policy = rts::RemapPolicy::kScratch;
  else
    TOPOMAP_REQUIRE(policy == "incremental",
                    "unknown policy '" + policy +
                        "' (want scratch | incremental)");

  // Explicit fault flags become strict events (epoch 0 for faults, the
  // given @epoch for restores); the chaos generator supplies the random
  // timeline, so the --random-* counts are rejected here.
  const topo::FaultSpec spec = parse_fault_options(cli);
  TOPOMAP_REQUIRE(spec.random_link_faults == 0 &&
                      spec.random_node_faults == 0 &&
                      spec.random_degrades == 0,
                  "chaos generates its own random faults — drop the "
                  "--random-* flags and tune --chaos=seed:rate:burst");
  for (const auto& l : spec.fail_links)
    config.events.push_back({0, rts::EventKind::kLinkFail, l.first, l.second});
  for (int p : spec.fail_nodes)
    config.events.push_back({0, rts::EventKind::kNodeFail, p});
  for (const topo::LinkDegradeSpec& d : spec.degrades)
    config.events.push_back(
        {0, rts::EventKind::kLinkDegrade, d.a, d.b, d.health});
  for (const topo::NodeRestoreSpec& r : spec.restore_nodes)
    config.events.push_back({r.epoch, rts::EventKind::kNodeRestore, r.p});
  for (const topo::LinkRestoreSpec& r : spec.restore_links)
    config.events.push_back({r.epoch, rts::EventKind::kLinkRestore, r.a, r.b});

  rts::ChaosConfig chaos_cfg = rts::parse_chaos_spec(cli.str("chaos"));
  chaos_cfg.epochs = config.epochs;
  const rts::ChaosSchedule schedule =
      rts::make_chaos_schedule(*topo, chaos_cfg);
  config.events.insert(config.events.end(), schedule.events.begin(),
                       schedule.events.end());

  obs_out.report.set_meta("command", "chaos");
  obs_out.report.set_meta("workload", g.label());
  obs_out.report.set_meta("machine", topo->name());
  obs_out.report.set_meta("strategy", config.pipeline.mapper->name());
  obs_out.report.set_meta("seed", cli.str("seed"));
  obs_out.report.set_meta("chaos", cli.str("chaos"));

  rts::DynamicLBRun run;
  {
    obs::ScopedSpan root_span("cli/chaos");
    run = rts::run_dynamic_lb_detailed(g, *topo, config, rng);
  }

  double alive_sum = 0.0;
  double active_sum = 0.0;
  double hpb_sum = 0.0;
  long long migrations = 0;
  long long rows_repaired = 0;
  for (const rts::DynamicEpochStats& s : run.history) {
    alive_sum += s.alive_procs;
    active_sum += g.num_vertices() - s.quarantined;
    hpb_sum += s.hops_per_byte;
    migrations += s.migrations;
    rows_repaired += s.plane_rows_repaired;
  }
  const double epochs = static_cast<double>(run.history.size());
  const double machine_avail = alive_sum / (epochs * topo->size());
  const double task_avail = active_sum / (epochs * g.num_vertices());

  std::cout << "workload:        " << g.label() << " (" << g.num_vertices()
            << " objects, virtualization "
            << static_cast<double>(g.num_vertices()) / topo->size() << ")\n"
            << "machine:         " << topo->name() << "\n"
            << "policy:          " << policy << ", " << config.epochs
            << " epochs\n"
            << "chaos:           " << cli.str("chaos") << " — "
            << schedule.failures << " failures, " << schedule.degrades
            << " degrades, " << schedule.restores << " restores, "
            << schedule.bursts << " bursts\n"
            << "events:          " << run.events_applied << " applied, "
            << run.events_skipped << " skipped\n"
            << "availability:    machine " << machine_avail << ", tasks "
            << task_avail << "\n"
            << "partitions:      " << run.partitioned_epochs
            << " partitioned epochs, max " << run.max_quarantined
            << " objects quarantined\n"
            << "migrations:      " << migrations << " total\n"
            << "hops-per-byte:   mean " << hpb_sum / epochs << ", final "
            << run.history.back().hops_per_byte << "\n"
            << "plane:           " << rows_repaired
            << " rows repaired incrementally, " << run.plane_rebuilds
            << " rebuild fallbacks, " << run.violations
            << " violations caught\n";
  obs_out.meta("machine_availability", machine_avail);
  obs_out.meta("task_availability", task_avail);
  obs_out.meta("migrations", static_cast<double>(migrations));
  obs_out.meta("plane_rebuilds", run.plane_rebuilds);

  if (const std::string out = cli.str("output"); !out.empty()) {
    std::ofstream os = open_output(out);
    for (std::size_t obj = 0; obj < run.final_placement.size(); ++obj)
      os << obj << ' ' << run.final_placement[obj] << '\n';
    std::cout << "final placement written to " << out << "\n";
  }
  obs_out.finish();
  return 0;
}

/// `topomap client`: one request against a running topomapd.  Reuses the
/// CLI flag family verbatim (including the fault flags and their parser),
/// prints the response document, and exits with the taxonomy code the
/// equivalent one-shot command would have — a server-side
/// precondition_error comes back as exit 2, an I/O failure reaching the
/// daemon as exit 4.
int cmd_client(int argc, const char* const* argv) {
  CliParser cli(
      "send one mapping request to a running topomapd and print the "
      "response");
  cli.add_option("socket", "daemon unix socket path", "/tmp/topomapd.sock");
  cli.add_option("tcp",
                 "daemon TCP endpoint host:port (overrides --socket)", "");
  cli.add_option("kind",
                 "map | explain | evacuate | optimal | status | metrics | "
                 "flight",
                 "status");
  cli.add_option("id", "request id echoed in the response", "cli");
  cli.add_option("tasks", "workload spec", "stencil2d:8x8");
  cli.add_option("topology", "machine spec", "torus:8x8");
  cli.add_option("strategy", "mapping strategy", "topolb");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("baseline", "explain: baseline strategy to diff against",
                 "");
  cli.add_flag("baseline-blind",
               "explain: map the baseline on the pristine machine");
  cli.add_option("top-k", "explain: contributing task pairs kept per link",
                 "3");
  cli.add_option("refine-passes", "evacuate: bounded refine sweeps", "1");
  cli.add_option("load-weight", "evacuate: neighbourhood-load term weight",
                 "0");
  cli.add_option("budget", "optimal: branch-and-bound node budget",
                 "20000000");
  cli.add_option("compare",
                 "optimal: strategy to gap against the optimum ('' skips)",
                 "topolb");
  cli.add_flag("no-symmetry", "optimal: disable automorphism pruning");
  cli.add_option("output", "write the response's mapping bytes here", "");
  cli.add_flag("prom",
               "metrics: print Prometheus exposition text instead of JSON");
  add_fault_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  svc::Request req;
  req.id = cli.str("id");
  req.kind = svc::parse_request_kind(cli.str("kind"));
  TOPOMAP_REQUIRE(!cli.flag("prom") || req.kind == svc::RequestKind::kMetrics,
                  "--prom applies to --kind=metrics only");
  req.tasks = cli.str("tasks");
  req.topology = cli.str("topology");
  req.strategy = cli.str("strategy");
  req.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  req.baseline = cli.str("baseline");
  req.baseline_blind = cli.flag("baseline-blind");
  req.top_k = static_cast<int>(cli.integer("top-k"));
  req.refine_passes = static_cast<int>(cli.integer("refine-passes"));
  req.load_weight = cli.real("load-weight");
  req.budget = cli.integer("budget");
  req.compare = cli.str("compare");
  req.no_symmetry = cli.flag("no-symmetry");
  req.fail_link = cli.str("fail-link");
  req.fail_node = cli.str("fail-node");
  req.degrade_link = cli.str("degrade-link");
  req.restore_node = cli.str("restore-node");
  req.restore_link = cli.str("restore-link");
  req.random_link_faults = cli.integer("random-link-faults");
  req.random_node_faults = cli.integer("random-node-faults");
  req.random_degrades = cli.integer("random-degrades");
  req.fault_seed = static_cast<std::uint64_t>(cli.integer("fault-seed"));
  // Validate the fault flags client-side with the same parser the one-shot
  // CLI uses — malformed flags exit 2 without a round-trip (the server
  // revalidates anyway).
  (void)req.fault_spec();

  svc::Client client = [&] {
    if (const std::string tcp = cli.str("tcp"); !tcp.empty()) {
      const std::size_t colon = tcp.rfind(':');
      TOPOMAP_REQUIRE(colon != std::string::npos && colon > 0,
                      "--tcp wants host:port, got '" + tcp + "'");
      return svc::Client::connect_tcp(
          tcp.substr(0, colon), std::stoi(tcp.substr(colon + 1)));
    }
    return svc::Client::connect_unix(cli.str("socket"));
  }();
  const svc::Response resp = client.call(req);

  if (!resp.ok) {
    // Mirror the one-shot CLI's stderr formatting per category.
    const std::string& cat = resp.error.category;
    if (cat == "invariant")
      std::cerr << "internal error: " << resp.error.message << "\n";
    else if (cat == "io")
      std::cerr << "I/O error: " << resp.error.message << "\n";
    else
      std::cerr << "error: " << resp.error.message << "\n";
    return svc::exit_code_for(cat);
  }
  if (cli.flag("prom")) {
    // Validates the snapshot against the topomap.svc.metrics schema on the
    // way out, so a drifting daemon fails loudly instead of exporting
    // garbage.
    std::cout << svc::metrics_to_prometheus(resp.result);
    return 0;
  }
  std::cout << resp.to_json().dump(2) << "\n";
  if (const std::string out = cli.str("output"); !out.empty()) {
    const obs::json::Value* mapping = resp.result.find("mapping");
    TOPOMAP_REQUIRE(mapping != nullptr && mapping->is_string(),
                    "response carries no mapping (kind '" + cli.str("kind") +
                        "' has none) — drop --output");
    std::ofstream os = open_output(out);
    os << mapping->as_string();
    std::cout << "mapping written to " << out << "\n";
  }
  return 0;
}

/// `topomap top`: poll a running topomapd's metrics snapshot and render a
/// compact live view — request totals and rate, queue depth, pool hit
/// rate, and per-kind latency quantiles from the svc/<kind>/total_us
/// histograms.  On a terminal each snapshot repaints in place; redirected
/// output gets one block per poll (so scripts can grep a fixed iteration
/// count).
int cmd_top(int argc, const char* const* argv) {
  CliParser cli("live telemetry view of a running topomapd");
  cli.add_option("socket", "daemon unix socket path", "/tmp/topomapd.sock");
  cli.add_option("tcp",
                 "daemon TCP endpoint host:port (overrides --socket)", "");
  cli.add_option("interval-ms", "poll interval in milliseconds", "1000");
  cli.add_option("iterations", "snapshots to render (0 = until killed)",
                 "0");
  if (!cli.parse(argc, argv)) return 0;
  const auto interval =
      std::chrono::milliseconds(std::max<std::int64_t>(
          cli.integer("interval-ms"), 1));
  const std::int64_t iterations = cli.integer("iterations");
  const bool tty = ::isatty(STDOUT_FILENO) != 0;

  svc::Client client = [&] {
    if (const std::string tcp = cli.str("tcp"); !tcp.empty()) {
      const std::size_t colon = tcp.rfind(':');
      TOPOMAP_REQUIRE(colon != std::string::npos && colon > 0,
                      "--tcp wants host:port, got '" + tcp + "'");
      return svc::Client::connect_tcp(
          tcp.substr(0, colon), std::stoi(tcp.substr(colon + 1)));
    }
    return svc::Client::connect_unix(cli.str("socket"));
  }();

  double prev_served = -1.0;
  for (std::int64_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) std::this_thread::sleep_for(interval);
    svc::Request req;
    req.id = "top";
    req.kind = svc::RequestKind::kMetrics;
    const svc::Response resp = client.call(req);
    if (!resp.ok) {
      std::cerr << "error: " << resp.error.message << "\n";
      return svc::exit_code_for(resp.error.category);
    }
    svc::validate_metrics_snapshot(resp.result);
    const obs::json::Value& requests = resp.result.at("requests");
    const obs::json::Value& pool = resp.result.at("pool");
    const double served = requests.at("served").as_number();
    const double failed = requests.at("failed").as_number();
    const double hits = pool.at("hits").as_number();
    const double misses = pool.at("misses").as_number();
    const double lookups = hits + misses;
    const double rate =
        prev_served >= 0.0
            ? (served - prev_served) * 1000.0 /
                  static_cast<double>(interval.count())
            : 0.0;
    prev_served = served;

    if (tty) std::cout << "\x1b[2J\x1b[H";  // repaint in place
    std::cout << "topomapd  served " << static_cast<std::int64_t>(served)
              << "  failed " << static_cast<std::int64_t>(failed)
              << "  rate " << obs::json::format_number(rate) << "/s"
              << "  queue "
              << static_cast<std::int64_t>(
                     resp.result.at("queue_depth").as_number())
              << "  pool-hit "
              << (lookups > 0.0
                      ? obs::json::format_number(100.0 * hits / lookups)
                      : "-")
              << (lookups > 0.0 ? "%" : "") << "\n";
    Table table("per-kind latency (us)",
                {"kind", "count", "p50", "p90", "p99", "max"});
    for (const auto& [name, h] : resp.result.at("histograms").members()) {
      // svc/<kind>/total_us rows only — the stage histograms stay in the
      // JSON snapshot for obs_diff / offline analysis.
      const std::string prefix = "svc/";
      const std::string suffix = "/total_us";
      if (name.size() <= prefix.size() + suffix.size() ||
          name.compare(0, prefix.size(), prefix) != 0 ||
          name.compare(name.size() - suffix.size(), suffix.size(),
                       suffix) != 0)
        continue;
      const std::string kind = name.substr(
          prefix.size(), name.size() - prefix.size() - suffix.size());
      table.add_row({kind,
                     static_cast<std::int64_t>(h.at("count").as_number()),
                     h.at("p50").as_number(), h.at("p90").as_number(),
                     h.at("p99").as_number(), h.at("max").as_number()});
    }
    if (table.row_count() > 0) table.print(std::cout);
    else
      std::cout << "(no latency histograms yet — run the daemon with "
                   "TOPOMAP_OBS=1 and a -DTOPOMAP_OBS=ON build)\n";
    std::cout.flush();
  }
  return 0;
}

void usage() {
  std::cout <<
      "topomap — topology-aware task mapping (IPDPS'06 reproduction)\n"
      "\n"
      "usage: topomap <command> [options]   (--help per command)\n"
      "  map        map a workload onto a machine, report hop-bytes\n"
      "  simulate   map + discrete-event execution on the machine\n"
      "  partition  split a workload into balanced groups\n"
      "  pipeline   partition + map (more objects than processors)\n"
      "  evacuate   map, inject faults, migrate only stranded tasks\n"
      "  explain    per-link contention attribution, timeline, and diff\n"
      "  optimal    exact branch-and-bound optimum + strategy optimality gap\n"
      "  chaos      soak the dynamic runtime under seeded faults/recovery\n"
      "  client     send one request to a running topomapd daemon\n"
      "  top        live telemetry view of a running topomapd\n"
      "\n"
      "exit codes: 0 success, 1 usage, 2 invalid input (precondition),\n"
      "            3 internal invariant violation, 4 I/O failure\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv past the subcommand for the option parser.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "map") return cmd_map(sub_argc, sub_argv, false);
    if (command == "simulate") return cmd_map(sub_argc, sub_argv, true);
    if (command == "partition") return cmd_partition(sub_argc, sub_argv);
    if (command == "pipeline") return cmd_pipeline(sub_argc, sub_argv);
    if (command == "evacuate") return cmd_evacuate(sub_argc, sub_argv);
    if (command == "explain") return cmd_explain(sub_argc, sub_argv);
    if (command == "optimal") return cmd_optimal(sub_argc, sub_argv);
    if (command == "chaos") return cmd_chaos(sub_argc, sub_argv);
    if (command == "client") return cmd_client(sub_argc, sub_argv);
    if (command == "top") return cmd_top(sub_argc, sub_argv);
    if (command == "--help" || command == "help") {
      usage();
      return 0;
    }
    std::cerr << "unknown command: " << command << "\n";
    usage();
    return 1;
  } catch (const topomap::precondition_error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const topomap::invariant_error& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return 3;
  } catch (const topomap::io_error& e) {
    std::cerr << "I/O error: " << e.what() << "\n";
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
