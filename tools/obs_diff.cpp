// obs_diff — compare two obs::Report JSON artifacts.
//
//   obs_diff A.json B.json [--all] [--tolerance=R]
//
// Prints per-counter deltas (B - A), span-rollup total/mean shifts, and
// meta/series/table/histogram differences, so two runs (before/after an
// optimisation, two strategies, two thread counts) can be compared without
// spreadsheet work.  Series compare element-wise (the first diverging
// point is named — a length+final-value check would miss interior
// changes); tables compare by column set and row count.  Histograms
// compare per bucket: a bucket-array length mismatch is a structural
// difference and fails, as does any per-bucket count delta — except for
// timing-derived histograms (names suffixed _us/_ns/_ms/_wall), whose
// deltas print for inspection but never affect the exit status, exactly
// like span timings.  By default only changed entries print; --all prints
// every common entry too.  --tolerance=R (default 0) treats relative
// span-time changes within R as unchanged — wall-clock jitter, not signal.
//
// Exit status: 0 when the reports match (no differences outside tolerance;
// span timings and timing-derived histograms never affect the status),
// 1 when counters/meta/series/tables/histograms differ, 2 on usage or
// parse errors.
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "support/stats.hpp"

namespace {

using topomap::obs::json::Value;

Value load_report(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "error: cannot open " << path << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  Value doc = Value::parse(buf.str());
  const Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != topomap::obs::Report::kSchemaName) {
    std::cerr << "error: " << path << " is not a "
              << topomap::obs::Report::kSchemaName << " document\n";
    std::exit(2);
  }
  return doc;
}

/// The named object section as a sorted name -> Value map (empty when the
/// section is absent — consumers tolerate unknown/missing sections).
std::map<std::string, Value> section(const Value& doc, const char* name) {
  std::map<std::string, Value> out;
  const Value* sec = doc.find(name);
  if (sec == nullptr || !sec->is_object()) return out;
  for (const auto& [key, value] : sec->members()) out.emplace(key, value);
  return out;
}

std::string fmt(double x) { return topomap::obs::json::format_number(x); }

/// Timing-derived histograms (duration buckets) carry wall-clock payloads:
/// their deltas are inspection output, never exit status — the same rule
/// span rollups follow.
bool is_timing_histogram(const std::string& name) {
  for (const char* suffix : {"_us", "_ns", "_ms", "_wall"}) {
    const std::size_t n = std::string(suffix).size();
    if (name.size() >= n && name.compare(name.size() - n, n, suffix) == 0)
      return true;
  }
  return false;
}

/// Compare two histogram documents bucket by bucket; returns the number of
/// *status-affecting* differences (0 for timing-derived names).  Prints a
/// line per changed bucket either way.
int diff_histogram(const std::string& name, const Value& va, const Value& vb,
                   bool show_all) {
  const bool neutral = is_timing_histogram(name);
  const auto& ba = va.at("buckets").items();
  const auto& bb = vb.at("buckets").items();
  int changes = 0;
  if (ba.size() != bb.size()) {
    // Structural mismatch: different populated-bucket sets.
    std::cout << "hist    " << name << ": " << ba.size() << " -> "
              << bb.size() << " populated buckets\n";
    ++changes;
  }
  // Merge both bucket lists by lower bound so a bucket present on one side
  // only still prints.
  std::map<double, std::pair<double, double>> by_lo;
  for (const Value& t : ba)
    by_lo[t.items()[0].as_number()].first = t.items()[2].as_number();
  for (const Value& t : bb)
    by_lo[t.items()[0].as_number()].second = t.items()[2].as_number();
  for (const auto& [lo, counts] : by_lo) {
    const double delta = counts.second - counts.first;
    if (delta != 0.0) ++changes;
    if (delta == 0.0 && !show_all) continue;
    std::cout << "hist    " << name << " [" << fmt(lo) << ", ...): "
              << fmt(counts.first) << " -> " << fmt(counts.second) << "  ("
              << (delta >= 0.0 ? "+" : "") << fmt(delta) << ")\n";
  }
  if (changes > 0 && neutral)
    std::cout << "hist    " << name
              << ": timing-derived, not counted as a difference\n";
  return neutral ? 0 : changes;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path_a, path_b;
  bool show_all = false;
  double tolerance = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--all") {
      show_all = true;
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::stod(arg.substr(12));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: obs_diff A.json B.json [--all] [--tolerance=R]\n";
      return 0;
    } else if (path_a.empty()) {
      path_a = arg;
    } else if (path_b.empty()) {
      path_b = arg;
    } else {
      std::cerr << "error: unexpected argument " << arg << "\n";
      return 2;
    }
  }
  if (path_a.empty() || path_b.empty()) {
    std::cerr << "usage: obs_diff A.json B.json [--all] [--tolerance=R]\n";
    return 2;
  }

  int differences = 0;
  try {
    const Value a = load_report(path_a);
    const Value b = load_report(path_b);

    // --- meta ---
    const auto meta_a = section(a, "meta");
    const auto meta_b = section(b, "meta");
    for (const auto& [key, va] : meta_a) {
      const auto it = meta_b.find(key);
      if (it == meta_b.end()) {
        std::cout << "meta    " << key << ": only in A (" << va.dump()
                  << ")\n";
        ++differences;
      } else if (va.dump() != it->second.dump()) {
        std::cout << "meta    " << key << ": " << va.dump() << " -> "
                  << it->second.dump() << "\n";
        ++differences;
      }
    }
    for (const auto& [key, vb] : meta_b) {
      if (meta_a.find(key) == meta_a.end()) {
        std::cout << "meta    " << key << ": only in B (" << vb.dump()
                  << ")\n";
        ++differences;
      }
    }

    // --- counters: per-name delta B - A (absent counts as 0) ---
    const auto counters_a = section(a, "counters");
    const auto counters_b = section(b, "counters");
    std::map<std::string, std::pair<double, double>> counters;
    for (const auto& [name, v] : counters_a)
      counters[name].first = v.as_number();
    for (const auto& [name, v] : counters_b)
      counters[name].second = v.as_number();
    for (const auto& [name, ab] : counters) {
      const double delta = ab.second - ab.first;
      if (delta != 0.0) ++differences;
      if (delta == 0.0 && !show_all) continue;
      std::cout << "counter " << name << ": " << fmt(ab.first) << " -> "
                << fmt(ab.second) << "  (" << (delta >= 0.0 ? "+" : "")
                << fmt(delta) << ")\n";
    }

    // --- span rollups: total duration shift, tolerance-filtered ---
    const auto spans_a = section(a, "spans");
    const auto spans_b = section(b, "spans");
    for (const auto& [name, va] : spans_a) {
      const auto it = spans_b.find(name);
      if (it == spans_b.end()) {
        std::cout << "span    " << name << ": only in A\n";
        continue;
      }
      const double ta = va.at("sum").as_number();
      const double tb = it->second.at("sum").as_number();
      const double rel =
          ta > 0.0 ? std::abs(tb - ta) / ta : (tb > 0.0 ? 1.0 : 0.0);
      if (rel <= tolerance && !show_all) continue;
      std::cout << "span    " << name << ": total " << fmt(ta) << " -> "
                << fmt(tb) << " us ("
                << fmt(va.at("count").as_number()) << " -> "
                << fmt(it->second.at("count").as_number()) << " spans)\n";
    }
    for (const auto& [name, vb] : spans_b) {
      (void)vb;
      if (spans_a.find(name) == spans_a.end())
        std::cout << "span    " << name << ": only in B\n";
    }

    // --- series: element-wise (length + every value) ---
    const auto series_a = section(a, "series");
    const auto series_b = section(b, "series");
    for (const auto& [name, va] : series_a) {
      const auto it = series_b.find(name);
      if (it == series_b.end()) {
        std::cout << "series  " << name << ": only in A\n";
        ++differences;
        continue;
      }
      const auto& xs = va.items();
      const auto& ys = it->second.items();
      // First index where the series diverge (length mismatch counts from
      // the shorter one's end).
      std::size_t at = 0;
      const std::size_t common = std::min(xs.size(), ys.size());
      while (at < common && xs[at].as_number() == ys[at].as_number()) ++at;
      if (at == common && xs.size() == ys.size()) {
        if (show_all)
          std::cout << "series  " << name << ": unchanged (" << xs.size()
                    << " points)\n";
        continue;
      }
      ++differences;
      std::cout << "series  " << name << ": " << xs.size() << " -> "
                << ys.size() << " points";
      if (at < common)
        std::cout << ", first change at [" << at << "]: "
                  << fmt(xs[at].as_number()) << " -> "
                  << fmt(ys[at].as_number());
      std::cout << "\n";
    }
    for (const auto& [name, vb] : series_b) {
      (void)vb;
      if (series_a.find(name) == series_a.end()) {
        std::cout << "series  " << name << ": only in B\n";
        ++differences;
      }
    }

    // --- histograms: per-bucket deltas; timing-derived names are
    // status-neutral like span timings ---
    const auto hists_a = section(a, "histograms");
    const auto hists_b = section(b, "histograms");
    for (const auto& [name, va] : hists_a) {
      const auto it = hists_b.find(name);
      if (it == hists_b.end()) {
        std::cout << "hist    " << name << ": only in A\n";
        if (!is_timing_histogram(name)) ++differences;
        continue;
      }
      differences += diff_histogram(name, va, it->second, show_all);
    }
    for (const auto& [name, vb] : hists_b) {
      (void)vb;
      if (hists_a.find(name) == hists_a.end()) {
        std::cout << "hist    " << name << ": only in B\n";
        if (!is_timing_histogram(name)) ++differences;
      }
    }

    // --- tables: column sets + row counts (cell values carry benchmark
    // payloads with wall-clock columns, so they stay out of the status) ---
    const auto tables_a = section(a, "tables");
    const auto tables_b = section(b, "tables");
    for (const auto& [name, va] : tables_a) {
      const auto it = tables_b.find(name);
      if (it == tables_b.end()) {
        std::cout << "table   " << name << ": only in A\n";
        ++differences;
        continue;
      }
      const std::string cols_a = va.at("columns").dump();
      const std::string cols_b = it->second.at("columns").dump();
      const std::size_t rows_a = va.at("rows").size();
      const std::size_t rows_b = it->second.at("rows").size();
      if (cols_a != cols_b) {
        std::cout << "table   " << name << ": columns " << cols_a << " -> "
                  << cols_b << "\n";
        ++differences;
      } else if (rows_a != rows_b) {
        std::cout << "table   " << name << ": " << rows_a << " -> " << rows_b
                  << " rows\n";
        ++differences;
      } else if (show_all) {
        std::cout << "table   " << name << ": same columns, " << rows_a
                  << " rows\n";
      }
    }
    for (const auto& [name, vb] : tables_b) {
      (void)vb;
      if (tables_a.find(name) == tables_a.end()) {
        std::cout << "table   " << name << ": only in B\n";
        ++differences;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (differences == 0)
    std::cout << "reports match (span timings ignored)\n";
  return differences == 0 ? 0 : 1;
}
