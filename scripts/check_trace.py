#!/usr/bin/env python3
"""Validate the machine-readable obs:: artifacts.

Usage:
    scripts/check_trace.py --trace trace.json      # Chrome-trace array
    scripts/check_trace.py --stats stats.json      # obs::Report document
    scripts/check_trace.py --stats stats.json --require-series NAME
    scripts/check_trace.py --stats stats.json --require-counter NAME

A trace must be a JSON array of complete events: every entry needs a string
"name", "ph" == "X", numeric "ts"/"dur" >= 0, and "pid"/"tid".  A stats
file must carry the versioned report schema ("topomap.obs.report", version
1) with object-valued counters/distributions/series/spans sections.
--require-series additionally asserts the named series exists, is
non-empty, and is monotone non-decreasing (the shape of TopoLB's hop-bytes
trajectory); --require-counter asserts the named counter exists and is a
positive integer.  Exit 0 on success, 1 on validation failure, 2 on usage
or I/O errors.  Stdlib only — no third-party imports.
"""

import argparse
import json
import sys

SCHEMA_NAME = "topomap.obs.report"
SCHEMA_VERSION = 1


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: error reading {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check_trace(path: str) -> None:
    doc = load(path)
    if not isinstance(doc, list):
        fail(f"{path}: trace must be a JSON array of events")
    for i, event in enumerate(doc):
        if not isinstance(event, dict):
            fail(f"{path}: event {i} is not an object")
        if not isinstance(event.get("name"), str) or not event["name"]:
            fail(f"{path}: event {i} missing string 'name'")
        if event.get("ph") != "X":
            fail(f"{path}: event {i} has ph={event.get('ph')!r}, want 'X'")
        for key in ("ts", "dur"):
            v = event.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"{path}: event {i} has bad {key}={v!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                fail(f"{path}: event {i} missing integer '{key}'")
    print(f"check_trace: OK: {path} ({len(doc)} complete events)")


def check_stats(path: str, require_series, require_counters) -> None:
    doc = load(path)
    if not isinstance(doc, dict):
        fail(f"{path}: report must be a JSON object")
    if doc.get("schema") != SCHEMA_NAME:
        fail(f"{path}: schema={doc.get('schema')!r}, want {SCHEMA_NAME!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"{path}: schema_version={doc.get('schema_version')!r}, "
             f"want {SCHEMA_VERSION}")
    for section in ("meta", "counters", "distributions", "series", "spans"):
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: section '{section}' missing or not an object")
    for name, value in doc["counters"].items():
        if not isinstance(value, (int, float)) or value < 0:
            fail(f"{path}: counter {name} has bad value {value!r}")
    for name, d in doc["distributions"].items():
        for key in ("count", "sum", "min", "max", "mean"):
            if not isinstance(d.get(key), (int, float)):
                fail(f"{path}: distribution {name} missing '{key}'")
    for name in require_series:
        series = doc["series"].get(name)
        if not isinstance(series, list) or not series:
            fail(f"{path}: required series '{name}' missing or empty")
        if any(b < a - 1e-9 for a, b in zip(series, series[1:])):
            fail(f"{path}: series '{name}' is not monotone non-decreasing")
        print(f"check_trace: series '{name}': {len(series)} points, "
              f"final {series[-1]}")
    for name in require_counters:
        value = doc["counters"].get(name)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(f"{path}: required counter '{name}' missing or non-positive "
                 f"({value!r})")
        print(f"check_trace: counter '{name}' = {value}")
    print(f"check_trace: OK: {path} ({len(doc['counters'])} counters, "
          f"{len(doc['spans'])} span rollups, {len(doc['series'])} series)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome-trace JSON file to validate")
    parser.add_argument("--stats", help="obs::Report JSON file to validate")
    parser.add_argument("--require-series", action="append", default=[],
                        metavar="NAME",
                        help="assert this series exists in --stats and is "
                             "monotone non-decreasing")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="assert this counter exists in --stats and is "
                             "positive")
    args = parser.parse_args()
    if not args.trace and not args.stats:
        parser.error("give --trace and/or --stats")
    if (args.require_series or args.require_counter) and not args.stats:
        parser.error("--require-series/--require-counter need --stats")
    if args.trace:
        check_trace(args.trace)
    if args.stats:
        check_stats(args.stats, args.require_series, args.require_counter)


if __name__ == "__main__":
    main()
