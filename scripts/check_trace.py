#!/usr/bin/env python3
"""Validate the machine-readable obs:: artifacts.

Usage:
    scripts/check_trace.py --trace trace.json      # Chrome-trace array
    scripts/check_trace.py --stats stats.json      # obs::Report document
    scripts/check_trace.py --stats stats.json --require-series NAME
    scripts/check_trace.py --stats stats.json --require-counter NAME
    scripts/check_trace.py --trace trace.json --require-counter-track NAME
    scripts/check_trace.py --contention report.json  # explain artifact
    scripts/check_trace.py --svc metrics.json        # daemon telemetry

A trace must be a JSON array of events: complete spans ("ph" == "X" with
numeric "ts"/"dur" >= 0) or counter samples ("ph" == "C" with numeric "ts"
>= 0 and a numeric args.value) — netsim telemetry emits the latter on its
own pid so Perfetto renders counter tracks beside the wall-clock spans.
--require-counter-track asserts a named counter track exists in the trace.
A stats file must carry the versioned report schema ("topomap.obs.report",
version 1) with object-valued counters/distributions/series/spans
sections.  --require-series additionally asserts the named series exists,
is non-empty, and is monotone non-decreasing (the shape of TopoLB's
hop-bytes trajectory); --require-counter asserts the named counter exists
and is a positive integer.  --contention validates a `topomap explain`
artifact ("topomap.obs.contention", version 1): per-link contributor sums
must equal the link totals, the stats total must equal the links' sum,
timeline arrays must be parallel with ascending timestamps and utilization
in [0, 1], and any diff must satisfy delta == bytes_b - bytes_a.
--svc validates daemon telemetry by schema: a "topomap.svc.metrics"
snapshot (all request kinds present in by_kind, by_kind sums matching the
totals, ascending non-empty histogram buckets whose counts sum to each
histogram's count) or a "topomap.svc.flight" dump (ascending seqs plus
per-correlation lifecycle nesting — accept/enqueue precede the request
interval, every acquire nests inside its done/error interval, serialize
starts after it).  Exit 0 on success, 1 on validation failure, 2 on usage
or I/O errors.  Stdlib only — no third-party imports.
"""

import argparse
import json
import sys

SCHEMA_NAME = "topomap.obs.report"
SCHEMA_VERSION = 1
CONTENTION_SCHEMA_NAME = "topomap.obs.contention"
CONTENTION_SCHEMA_VERSION = 1
METRICS_SCHEMA_NAME = "topomap.svc.metrics"
FLIGHT_SCHEMA_NAME = "topomap.svc.flight"
SVC_SCHEMA_VERSION = 1
REQUEST_KINDS = ("map", "explain", "evacuate", "optimal", "status",
                 "metrics", "flight")
FLIGHT_STAGES = ("accept", "enqueue", "dequeue", "acquire", "serialize",
                 "done", "error")
EPS = 1e-9


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: error reading {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check_trace(path: str, require_counter_tracks) -> None:
    doc = load(path)
    if not isinstance(doc, list):
        fail(f"{path}: trace must be a JSON array of events")
    spans = 0
    counter_tracks = {}
    for i, event in enumerate(doc):
        if not isinstance(event, dict):
            fail(f"{path}: event {i} is not an object")
        if not isinstance(event.get("name"), str) or not event["name"]:
            fail(f"{path}: event {i} missing string 'name'")
        ph = event.get("ph")
        if ph not in ("X", "C"):
            fail(f"{path}: event {i} has ph={ph!r}, want 'X' or 'C'")
        keys = ("ts", "dur") if ph == "X" else ("ts",)
        for key in keys:
            v = event.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"{path}: event {i} has bad {key}={v!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                fail(f"{path}: event {i} missing integer '{key}'")
        if ph == "X":
            spans += 1
        else:
            args = event.get("args")
            if (not isinstance(args, dict)
                    or not isinstance(args.get("value"), (int, float))):
                fail(f"{path}: counter event {i} missing numeric args.value")
            counter_tracks[event["name"]] = \
                counter_tracks.get(event["name"], 0) + 1
    for name in require_counter_tracks:
        if name not in counter_tracks:
            fail(f"{path}: required counter track {name!r} missing "
                 f"(present: {sorted(counter_tracks)})")
        print(f"check_trace: counter track '{name}': "
              f"{counter_tracks[name]} samples")
    print(f"check_trace: OK: {path} ({spans} complete events, "
          f"{len(counter_tracks)} counter tracks)")


def check_stats(path: str, require_series, require_any_series,
                require_counters) -> None:
    doc = load(path)
    if not isinstance(doc, dict):
        fail(f"{path}: report must be a JSON object")
    if doc.get("schema") != SCHEMA_NAME:
        fail(f"{path}: schema={doc.get('schema')!r}, want {SCHEMA_NAME!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"{path}: schema_version={doc.get('schema_version')!r}, "
             f"want {SCHEMA_VERSION}")
    for section in ("meta", "counters", "distributions", "series", "spans"):
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: section '{section}' missing or not an object")
    for name, value in doc["counters"].items():
        if not isinstance(value, (int, float)) or value < 0:
            fail(f"{path}: counter {name} has bad value {value!r}")
    for name, d in doc["distributions"].items():
        for key in ("count", "sum", "min", "max", "mean"):
            if not isinstance(d.get(key), (int, float)):
                fail(f"{path}: distribution {name} missing '{key}'")
    for name in require_series:
        series = doc["series"].get(name)
        if not isinstance(series, list) or not series:
            fail(f"{path}: required series '{name}' missing or empty")
        if any(b < a - 1e-9 for a, b in zip(series, series[1:])):
            fail(f"{path}: series '{name}' is not monotone non-decreasing")
        print(f"check_trace: series '{name}': {len(series)} points, "
              f"final {series[-1]}")
    for name in require_any_series:
        series = doc["series"].get(name)
        if not isinstance(series, list) or not series:
            fail(f"{path}: required series '{name}' missing or empty")
        print(f"check_trace: series '{name}': {len(series)} points")
    for name in require_counters:
        value = doc["counters"].get(name)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(f"{path}: required counter '{name}' missing or non-positive "
                 f"({value!r})")
        print(f"check_trace: counter '{name}' = {value}")
    print(f"check_trace: OK: {path} ({len(doc['counters'])} counters, "
          f"{len(doc['spans'])} span rollups, {len(doc['series'])} series)")


def close(a: float, b: float) -> bool:
    return abs(a - b) <= EPS * max(1.0, abs(a), abs(b))


def check_link_entry(path: str, i: int, link) -> float:
    """Validate one entry of a contention report's links array; returns its
    byte total."""
    if not isinstance(link, dict):
        fail(f"{path}: links[{i}] is not an object")
    for key in ("from", "to"):
        if not isinstance(link.get(key), int):
            fail(f"{path}: links[{i}] missing integer '{key}'")
    bytes_total = link.get("bytes")
    if not isinstance(bytes_total, (int, float)) or bytes_total < 0:
        fail(f"{path}: links[{i}] has bad bytes={bytes_total!r}")
    contributors = link.get("contributors")
    if not isinstance(contributors, list) or not contributors:
        fail(f"{path}: links[{i}] missing contributors")
    contrib_sum = 0.0
    for j, c in enumerate(contributors):
        if (not isinstance(c, dict)
                or not isinstance(c.get("a"), int)
                or not isinstance(c.get("b"), int)
                or not isinstance(c.get("bytes"), (int, float))
                or c["bytes"] < 0):
            fail(f"{path}: links[{i}].contributors[{j}] malformed")
        contrib_sum += c["bytes"]
    if not close(contrib_sum, bytes_total):
        fail(f"{path}: links[{i}] ({link['from']},{link['to']}): "
             f"contributors sum {contrib_sum} != bytes {bytes_total}")
    return bytes_total


def check_contention(path: str) -> None:
    doc = load(path)
    if not isinstance(doc, dict):
        fail(f"{path}: contention report must be a JSON object")
    if doc.get("schema") != CONTENTION_SCHEMA_NAME:
        fail(f"{path}: schema={doc.get('schema')!r}, "
             f"want {CONTENTION_SCHEMA_NAME!r}")
    if doc.get("schema_version") != CONTENTION_SCHEMA_VERSION:
        fail(f"{path}: schema_version={doc.get('schema_version')!r}, "
             f"want {CONTENTION_SCHEMA_VERSION}")
    stats = doc.get("stats")
    if not isinstance(stats, dict):
        fail(f"{path}: missing 'stats' object")
    for key in ("total_bytes", "max_bytes", "mean_bytes", "l2", "gini",
                "links_used", "links_total"):
        if not isinstance(stats.get(key), (int, float)):
            fail(f"{path}: stats missing numeric '{key}'")
    links = doc.get("links")
    if not isinstance(links, list):
        fail(f"{path}: missing 'links' array")
    links_sum = sum(check_link_entry(path, i, l) for i, l in
                    enumerate(links))
    if not close(links_sum, stats["total_bytes"]):
        fail(f"{path}: per-link totals sum {links_sum} != "
             f"stats.total_bytes {stats['total_bytes']}")
    timeline = doc.get("timeline")
    if timeline is not None:
        for key in ("t_us", "util_max", "queue_depth"):
            if not isinstance(timeline.get(key), list):
                fail(f"{path}: timeline missing array '{key}'")
        n = len(timeline["t_us"])
        for key in ("util_max", "queue_depth"):
            if len(timeline[key]) != n:
                fail(f"{path}: timeline.{key} has {len(timeline[key])} "
                     f"entries, want {n} (parallel arrays)")
        ts = timeline["t_us"]
        if any(b <= a for a, b in zip(ts, ts[1:])):
            fail(f"{path}: timeline.t_us is not strictly ascending")
        if any(not 0.0 <= u <= 1.0 + EPS for u in timeline["util_max"]):
            fail(f"{path}: timeline.util_max outside [0, 1]")
    diff = doc.get("diff")
    if diff is not None:
        dlinks = diff.get("links")
        if not isinstance(dlinks, list):
            fail(f"{path}: diff missing 'links' array")
        for i, d in enumerate(dlinks):
            for key in ("bytes_a", "bytes_b", "delta"):
                if not isinstance(d.get(key), (int, float)):
                    fail(f"{path}: diff.links[{i}] missing '{key}'")
            if not close(d["bytes_b"] - d["bytes_a"], d["delta"]):
                fail(f"{path}: diff.links[{i}]: delta {d['delta']} != "
                     f"bytes_b - bytes_a "
                     f"({d['bytes_b']} - {d['bytes_a']})")
    print(f"check_trace: OK: {path} ({len(links)} attributed links"
          f"{', timeline' if timeline is not None else ''}"
          f"{', diff' if diff is not None else ''})")


def nonneg_int(doc: dict, key: str, path: str, where: str) -> float:
    v = doc.get(key)
    if not isinstance(v, (int, float)) or v < 0 or v != int(v):
        fail(f"{path}: {where}.{key} must be a non-negative integer, "
             f"got {v!r}")
    return v


def check_svc_metrics(path: str, doc: dict) -> None:
    requests = doc.get("requests")
    if not isinstance(requests, dict):
        fail(f"{path}: missing 'requests' object")
    served = nonneg_int(requests, "served", path, "requests")
    failed = nonneg_int(requests, "failed", path, "requests")
    by_kind = requests.get("by_kind")
    if not isinstance(by_kind, dict):
        fail(f"{path}: missing requests.by_kind object")
    # Every kind is always present — the key set is part of the contract
    # that makes snapshots from two runs comparable.
    if sorted(by_kind) != sorted(REQUEST_KINDS):
        fail(f"{path}: by_kind kinds {sorted(by_kind)} != "
             f"{sorted(REQUEST_KINDS)}")
    for kind, counts in by_kind.items():
        if not isinstance(counts, dict):
            fail(f"{path}: by_kind.{kind} is not an object")
        nonneg_int(counts, "served", path, f"by_kind.{kind}")
        nonneg_int(counts, "failed", path, f"by_kind.{kind}")
    if sum(c["served"] for c in by_kind.values()) != served:
        fail(f"{path}: by_kind served counts do not sum to "
             f"requests.served {served}")
    if sum(c["failed"] for c in by_kind.values()) != failed:
        fail(f"{path}: by_kind failed counts do not sum to "
             f"requests.failed {failed}")
    nonneg_int(doc, "queue_depth", path, "snapshot")
    pool = doc.get("pool")
    if not isinstance(pool, dict):
        fail(f"{path}: missing 'pool' object")
    for key in ("hits", "misses", "evictions", "entries", "capacity"):
        nonneg_int(pool, key, path, "pool")
    if pool["entries"] > pool["capacity"]:
        fail(f"{path}: pool.entries {pool['entries']} exceeds capacity "
             f"{pool['capacity']}")
    scheme = doc.get("bucket_scheme")
    if not isinstance(scheme, dict) or scheme.get("kind") != "log2-linear":
        fail(f"{path}: bucket_scheme missing or kind != 'log2-linear'")
    hists = doc.get("histograms")
    if not isinstance(hists, dict):
        fail(f"{path}: missing 'histograms' object")
    for name, h in hists.items():
        if not isinstance(h, dict):
            fail(f"{path}: histogram {name} is not an object")
        for key in ("count", "sum", "min", "max", "mean", "p50", "p90",
                    "p99"):
            if not isinstance(h.get(key), (int, float)):
                fail(f"{path}: histogram {name} missing numeric '{key}'")
        buckets = h.get("buckets")
        if not isinstance(buckets, list):
            fail(f"{path}: histogram {name} missing buckets array")
        total, prev_lo = 0, None
        for i, triple in enumerate(buckets):
            if (not isinstance(triple, list) or len(triple) != 3
                    or not all(isinstance(x, (int, float)) for x in triple)):
                fail(f"{path}: histogram {name} bucket {i} is not a "
                     f"[lo, hi, count] triple")
            lo, hi, count = triple
            if lo >= hi:
                fail(f"{path}: histogram {name} bucket {i}: lo {lo} >= "
                     f"hi {hi}")
            if count <= 0:
                fail(f"{path}: histogram {name} bucket {i} is empty — only "
                     f"populated buckets are serialized")
            if prev_lo is not None and lo <= prev_lo:
                fail(f"{path}: histogram {name} buckets not ascending "
                     f"at {i}")
            prev_lo = lo
            total += count
        if total != h["count"]:
            fail(f"{path}: histogram {name}: bucket counts sum {total} != "
                 f"count {h['count']}")
    print(f"check_trace: OK: {path} (metrics snapshot: {int(served)} "
          f"served, {int(failed)} failed, {len(hists)} histograms)")


def check_svc_flight(path: str, doc: dict) -> None:
    capacity = nonneg_int(doc, "capacity", path, "flight")
    nonneg_int(doc, "recorded", path, "flight")
    events = doc.get("events")
    if not isinstance(events, list):
        fail(f"{path}: missing 'events' array")
    if len(events) > capacity:
        fail(f"{path}: {len(events)} events exceed capacity {capacity}")
    prev_seq = -1
    by_corr = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: events[{i}] is not an object")
        seq = nonneg_int(ev, "seq", path, f"events[{i}]")
        nonneg_int(ev, "t_ns", path, f"events[{i}]")
        nonneg_int(ev, "dur_ns", path, f"events[{i}]")
        for key in ("corr", "kind", "stage"):
            if not isinstance(ev.get(key), str) or not ev[key]:
                fail(f"{path}: events[{i}] missing string '{key}'")
        if ev["stage"] not in FLIGHT_STAGES:
            fail(f"{path}: events[{i}] has unknown stage "
                 f"{ev['stage']!r}")
        if seq <= prev_seq:
            fail(f"{path}: events[{i}] seq {seq} not ascending")
        prev_seq = seq
        by_corr.setdefault(ev["corr"], []).append(ev)
    # Lifecycle nesting per correlation id.  The ring may have dropped
    # stages for a given request, so only pairs both present are checked:
    # accept/enqueue happen before the request interval (the done/error
    # event spans handle() start to end), every acquire nests inside it,
    # and serialize starts at or after its end.
    nested = 0
    for corr, evs in by_corr.items():
        finish = next((e for e in evs if e["stage"] in ("done", "error")),
                      None)
        if finish is None:
            continue
        t0, t1 = finish["t_ns"], finish["t_ns"] + finish["dur_ns"]
        for ev in evs:
            stage = ev["stage"]
            if stage in ("accept", "enqueue", "dequeue"):
                if ev["t_ns"] > t0:
                    fail(f"{path}: corr {corr}: {stage} at {ev['t_ns']} "
                         f"after request start {t0}")
            elif stage == "acquire":
                if ev["t_ns"] < t0 or ev["t_ns"] + ev["dur_ns"] > t1:
                    fail(f"{path}: corr {corr}: acquire "
                         f"[{ev['t_ns']}, {ev['t_ns'] + ev['dur_ns']}] "
                         f"not nested in request [{t0}, {t1}]")
                nested += 1
            elif stage == "serialize":
                if ev["t_ns"] < t1:
                    fail(f"{path}: corr {corr}: serialize at {ev['t_ns']} "
                         f"before request end {t1}")
    print(f"check_trace: OK: {path} (flight dump: {len(events)} events, "
          f"{len(by_corr)} correlation ids, {nested} nested acquires)")


def check_svc(path: str) -> None:
    """Dispatch a daemon telemetry document by its schema field."""
    doc = load(path)
    if not isinstance(doc, dict):
        fail(f"{path}: svc document must be a JSON object")
    # `topomap client` prints the whole response envelope; accept either
    # the envelope (unwrapping its result) or a bare snapshot document.
    if doc.get("schema") == "topomap.svc.response":
        if doc.get("status") != "ok":
            fail(f"{path}: response envelope has "
                 f"status={doc.get('status')!r}")
        doc = doc.get("result")
        if not isinstance(doc, dict):
            fail(f"{path}: response envelope has no result object")
    schema = doc.get("schema")
    if doc.get("schema_version") != SVC_SCHEMA_VERSION:
        fail(f"{path}: schema_version={doc.get('schema_version')!r}, "
             f"want {SVC_SCHEMA_VERSION}")
    if schema == METRICS_SCHEMA_NAME:
        check_svc_metrics(path, doc)
    elif schema == FLIGHT_SCHEMA_NAME:
        check_svc_flight(path, doc)
    else:
        fail(f"{path}: schema={schema!r}, want {METRICS_SCHEMA_NAME!r} or "
             f"{FLIGHT_SCHEMA_NAME!r}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome-trace JSON file to validate")
    parser.add_argument("--stats", help="obs::Report JSON file to validate")
    parser.add_argument("--contention",
                        help="topomap explain contention report to validate")
    parser.add_argument("--svc", action="append", default=[], metavar="FILE",
                        help="daemon telemetry document to validate "
                             "(metrics snapshot or flight dump, dispatched "
                             "by schema; repeatable)")
    parser.add_argument("--require-series", action="append", default=[],
                        metavar="NAME",
                        help="assert this series exists in --stats and is "
                             "monotone non-decreasing")
    parser.add_argument("--require-any-series", action="append", default=[],
                        metavar="NAME",
                        help="assert this series exists in --stats and is "
                             "non-empty (no shape constraint)")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="assert this counter exists in --stats and is "
                             "positive")
    parser.add_argument("--require-counter-track", action="append",
                        default=[], metavar="NAME",
                        help="assert this counter track exists in --trace")
    args = parser.parse_args()
    if (not args.trace and not args.stats and not args.contention
            and not args.svc):
        parser.error("give --trace, --stats, --contention, and/or --svc")
    if ((args.require_series or args.require_any_series
         or args.require_counter) and not args.stats):
        parser.error("--require-series/--require-any-series/"
                     "--require-counter need --stats")
    if args.require_counter_track and not args.trace:
        parser.error("--require-counter-track needs --trace")
    if args.trace:
        check_trace(args.trace, args.require_counter_track)
    if args.stats:
        check_stats(args.stats, args.require_series, args.require_any_series,
                    args.require_counter)
    if args.contention:
        check_contention(args.contention)
    for path in args.svc:
        check_svc(path)


if __name__ == "__main__":
    main()
