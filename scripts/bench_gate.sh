#!/usr/bin/env bash
# Bench regression gate: run the deterministic bench harness set and diff
# the resulting tables against the committed baseline (BENCH_mapping.json).
#
# Everything compared is seed-fixed and virtual-time — wall-clock columns
# (svc_load's p50/p99 latencies, per-run seconds) ride along in the
# baseline as informational context but never gate — so the gate flags
# changes to mapping quality (hop-bytes, max-link-load, L2, simulated
# completion) and cache-sharing invariants (svc_load hit_rate), never
# machine speed.  After an intentional algorithm change, regenerate the
# baseline and commit it:
#
#   scripts/bench_gate.sh <build-dir> --update
#
# Usage: scripts/bench_gate.sh <build-dir> [--update]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:?usage: scripts/bench_gate.sh <build-dir> [--update]}"
MODE="${2:-compare}"
REPO="$PWD"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

run() {
  local bin="$1"
  shift
  (cd "$TMP" && "$REPO/$BUILD/bench/$bin" "$@" >/dev/null)
}

# The gate set: fixed seeds, reduced iteration counts for CI speed.  The
# baseline must be generated with these exact flags (--update does).
run fig7_8_latency_vs_bw --iterations=50
run fig9_completion_time --iterations=200
run ablation_strategy_shootout
run ablation_soft_faults
run ablation_hier_scale --full=0
run ablation_chaos_soak --epochs=60
run ablation_optimality_gap
run svc_load

if [ "$MODE" = "--update" ]; then
  python3 scripts/bench_compare.py rollup --dir "$TMP/bench_results" \
    --out BENCH_mapping.json
else
  python3 scripts/bench_compare.py compare --baseline BENCH_mapping.json \
    --dir "$TMP/bench_results"
fi
