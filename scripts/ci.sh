#!/usr/bin/env bash
# CI driver: the full suite in release, then the labeled slices under
# ASan/UBSan (TOPOMAP_SANITIZE=ON).
#
# The sanitizer pass runs label by label — unit, property, fault, hier,
# chaos, oracle, svc — so a failure names the tier that broke, and the
# (slower) instrumented binaries only run the suites worth instrumenting
# instead of every sweep twice.
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== release: configure + build + full suite ==="
cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci-release -j "$JOBS"
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS"

echo "=== oracle slice (release): exact ground truth + optimality gaps ==="
# Brute-force/B&B agreement and every strategy's admissibility bound; fast
# enough to call out explicitly so an optimality regression names itself.
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" -L oracle

echo "=== svc slice (release): protocol, cache pool, daemon e2e ==="
# The topomapd service layer: framing/schema strictness, deterministic
# CachePool sharing, and the 64-in-flight byte-identity contract against
# one-shot CLI execution.
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" -L svc

echo "=== bench regression gate (deterministic tables vs baseline) ==="
# Non-timing gate: wall-clock columns (svc_load p50/p99, per-run seconds)
# ride along as informational baseline context but are skipped at compare,
# so only mapping-quality columns (hop-bytes, max-link-load, L2,
# virtual-time results) and deterministic service-cache counters can fail
# it.  scripts/bench_gate.sh <dir> --update regenerates.
scripts/bench_gate.sh build-ci-release

echo "=== obs (-DTOPOMAP_OBS=ON): unit slice + artifact validation ==="
cmake -B build-ci-obs -S . -DCMAKE_BUILD_TYPE=Release -DTOPOMAP_OBS=ON \
  >/dev/null
cmake --build build-ci-obs -j "$JOBS"
ctest --test-dir build-ci-obs --output-on-failure -j "$JOBS" -L unit
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
# One traced mapping; the artifacts must validate and the mapping must be
# byte-identical to the uninstrumented release build's.
build-ci-obs/tools/topomap map --strategy=topolb --tasks=stencil2d:16x16 \
  --topology=torus:16x16 --seed=7 --output="$OBS_TMP/obs.map" \
  --trace="$OBS_TMP/trace.json" --stats="$OBS_TMP/stats.json" >/dev/null
python3 scripts/check_trace.py --trace "$OBS_TMP/trace.json" \
  --stats "$OBS_TMP/stats.json" \
  --require-series topolb/hop_bytes_trajectory \
  --require-counter topolb/placements --require-counter distcache/builds
build-ci-release/tools/topomap map --strategy=topolb --tasks=stencil2d:16x16 \
  --topology=torus:16x16 --seed=7 --output="$OBS_TMP/plain.map" >/dev/null
diff "$OBS_TMP/plain.map" "$OBS_TMP/obs.map"
# Contention explainability: the explain artifact must carry the versioned
# schema with exact attribution sums, a diff, and netsim counter tracks in
# the trace (virtual-time telemetry next to the wall-clock spans).
build-ci-obs/tools/topomap explain --strategy=topolb --baseline=greedy \
  --tasks=stencil2d:8x8 --topology=torus:8x8 --seed=7 --iterations=30 \
  --report="$OBS_TMP/contention.json" --trace="$OBS_TMP/explain_trace.json" \
  --stats="$OBS_TMP/explain_stats.json" >/dev/null
python3 scripts/check_trace.py --contention "$OBS_TMP/contention.json"
python3 scripts/check_trace.py --trace "$OBS_TMP/explain_trace.json" \
  --require-counter-track netsim/util_max \
  --require-counter-track netsim/queue_depth \
  --stats "$OBS_TMP/explain_stats.json" \
  --require-any-series netsim/util_max \
  --require-any-series netsim/queue_depth
echo "obs slice ok: artifacts validate, mapping identical to release build"

echo "=== telemetry e2e (obs build): daemon metrics/flight/event-log ==="
# The service telemetry plane end to end: an instrumented daemon with the
# event log active serves requests, its metrics snapshot and flight dump
# validate against the strict schemas (including per-correlation lifecycle
# nesting), the Prometheus exposition carries the request counters, the
# latency histograms populate, SIGUSR1 dumps the flight recorder, the
# event log holds one line per request with unique correlation ids — and
# the served mapping bytes are identical to an uninstrumented daemon's.
SVC_SOCK="$OBS_TMP/topomapd.sock"
build-ci-obs/tools/topomapd --socket="$SVC_SOCK" --workers=4 \
  --event-log="$OBS_TMP/events.jsonl" --flight-capacity=64 \
  --stats="$OBS_TMP/svc_stats.json" 2>"$OBS_TMP/topomapd.log" &
SVC_PID=$!
for _ in $(seq 50); do [ -S "$SVC_SOCK" ] && break; sleep 0.1; done
for i in 1 2 3; do
  build-ci-obs/tools/topomap client --socket="$SVC_SOCK" --kind=map \
    --tasks=stencil2d:4x4 --topology=torus:4x4 --seed="$i" \
    > "$OBS_TMP/resp_obs_$i.json"
done
build-ci-obs/tools/topomap client --socket="$SVC_SOCK" --kind=metrics \
  > "$OBS_TMP/metrics.json"
build-ci-obs/tools/topomap client --socket="$SVC_SOCK" --kind=metrics \
  --prom > "$OBS_TMP/metrics.prom"
grep -q 'topomap_requests_by_kind_total{kind="map",outcome="served"} 3' \
  "$OBS_TMP/metrics.prom"
build-ci-obs/tools/topomap client --socket="$SVC_SOCK" --kind=flight \
  > "$OBS_TMP/flight.json"
python3 scripts/check_trace.py --svc "$OBS_TMP/metrics.json" \
  --svc "$OBS_TMP/flight.json"
# The instrumented daemon's snapshot must carry per-stage histograms.
python3 - "$OBS_TMP/metrics.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))["result"]
hists = doc["histograms"]
for name in ("svc/map/total_us", "svc/map/acquire_us", "svc/map/kernel_us"):
    assert name in hists and hists[name]["count"] == 3, \
        f"missing/short histogram {name}: {sorted(hists)}"
PYEOF
kill -USR1 "$SVC_PID"
sleep 0.5
grep -q "flight recorder" "$OBS_TMP/topomapd.log"
kill "$SVC_PID" && wait "$SVC_PID"
# One event-log line per request, every correlation id unique.
python3 - "$OBS_TMP/events.jsonl" <<'PYEOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
corrs = [l["corr"] for l in lines]
assert len(lines) >= 5 and len(set(corrs)) == len(corrs), corrs
PYEOF
python3 scripts/check_trace.py --stats "$OBS_TMP/svc_stats.json"
# Telemetry must not perturb served bytes: replay against an
# uninstrumented daemon and byte-compare the responses.
PLAIN_SOCK="$OBS_TMP/topomapd-plain.sock"
build-ci-release/tools/topomapd --socket="$PLAIN_SOCK" --workers=4 \
  2>/dev/null &
PLAIN_PID=$!
for _ in $(seq 50); do [ -S "$PLAIN_SOCK" ] && break; sleep 0.1; done
for i in 1 2 3; do
  build-ci-release/tools/topomap client --socket="$PLAIN_SOCK" --kind=map \
    --tasks=stencil2d:4x4 --topology=torus:4x4 --seed="$i" \
    > "$OBS_TMP/resp_plain_$i.json"
  diff "$OBS_TMP/resp_plain_$i.json" "$OBS_TMP/resp_obs_$i.json"
done
kill "$PLAIN_PID" && wait "$PLAIN_PID"
echo "telemetry e2e ok: schemas validate, bytes identical with obs on/off"

echo "=== sanitize (ASan/UBSan): labeled slices ==="
cmake -B build-ci-sanitize -S . -DTOPOMAP_SANITIZE=ON >/dev/null
cmake --build build-ci-sanitize -j "$JOBS"
for label in unit property fault hier chaos oracle svc; do
  echo "--- ctest -L $label ---"
  ctest --test-dir build-ci-sanitize --output-on-failure -j "$JOBS" -L "$label"
done
# Reduced-scale chaos soak under the sanitizers: the full event/recovery/
# quarantine/repair loop with every allocation and UB check armed.
build-ci-sanitize/tools/topomap chaos --tasks=stencil2d:12x12 \
  --topology=torus:6x6 --epochs=40 --chaos=7:0.8:0.2 >/dev/null
echo "sanitized chaos soak ok"

echo "=== sanitize + obs: svc slice with telemetry compiled in ==="
# The telemetry hot paths — registry histogram shards, the flight ring's
# seqlock, the event-log rotation — under ASan/UBSan with the obs macro
# sites live, driven by the svc suites (64 in-flight with metrics polling).
cmake -B build-ci-obs-sanitize -S . -DTOPOMAP_SANITIZE=ON \
  -DTOPOMAP_OBS=ON >/dev/null
cmake --build build-ci-obs-sanitize -j "$JOBS"
ctest --test-dir build-ci-obs-sanitize --output-on-failure -j "$JOBS" -L svc

echo "ci passed"
