#!/usr/bin/env bash
# CI driver: the full suite in release, then the labeled slices under
# ASan/UBSan (TOPOMAP_SANITIZE=ON).
#
# The sanitizer pass runs label by label — unit, property, fault — so a
# failure names the tier that broke, and the (slower) instrumented binaries
# only run the suites worth instrumenting instead of every sweep twice.
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== release: configure + build + full suite ==="
cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci-release -j "$JOBS"
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS"

echo "=== sanitize (ASan/UBSan): labeled slices ==="
cmake -B build-ci-sanitize -S . -DTOPOMAP_SANITIZE=ON >/dev/null
cmake --build build-ci-sanitize -j "$JOBS"
for label in unit property fault; do
  echo "--- ctest -L $label ---"
  ctest --test-dir build-ci-sanitize --output-on-failure -j "$JOBS" -L "$label"
done

echo "ci passed"
