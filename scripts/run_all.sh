#!/usr/bin/env sh
# Build, test, and regenerate every paper table/figure (CSVs land in
# bench_results/).  Usage: scripts/run_all.sh [build-dir]
set -e
BUILD=${1:-build}
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure
for b in "$BUILD"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done
