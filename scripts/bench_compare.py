#!/usr/bin/env python3
"""Bench regression gate: roll up bench tables, diff against a baseline.

The bench harnesses mirror every table into bench_results/<name>.json
(obs::Report documents).  This tool turns a directory of those into one
flat baseline artifact and compares a later run against it:

    scripts/bench_compare.py rollup --dir bench_results --out BENCH_mapping.json
    scripts/bench_compare.py compare --baseline BENCH_mapping.json \
        --dir bench_results [--tolerance 1e-6]

Only *deterministic* columns participate in the gate: wall-clock columns
(named "seconds", "*_sec", "*wall*") stay in the baseline as
informational context (e.g. the svc_load p50/p99 service latencies) but
are skipped during compare, so the gate never fails on machine speed —
it fails when mapping quality metrics (hop-bytes, max-link-load, L2,
simulated virtual-time results) move.  Numeric cells compare under a
relative tolerance; strings must match exactly.  Intentional algorithm
changes regenerate the baseline with `rollup`.

Exit 0 when every shared table matches, 1 on any regression or missing
table, 2 on usage/I-O errors.  Stdlib only.
"""

import argparse
import glob
import json
import os
import sys

SCHEMA_NAME = "topomap.bench.baseline"
SCHEMA_VERSION = 1

# Column names carrying wall-clock time: kept in the baseline for context
# but excluded from the compare, so the gate is independent of machine
# speed.  Virtual-time columns (simulated completion in ms/us) are
# deterministic and fully gated.
WALL_CLOCK_NAMES = ("seconds",)
WALL_CLOCK_SUFFIXES = ("_sec", "_seconds")
WALL_CLOCK_SUBSTRINGS = ("wall",)


def is_wall_clock(column: str) -> bool:
    low = column.lower()
    return (low in WALL_CLOCK_NAMES
            or any(low.endswith(s) for s in WALL_CLOCK_SUFFIXES)
            or any(s in low for s in WALL_CLOCK_SUBSTRINGS))


def die(msg: str, code: int = 2) -> None:
    print(f"bench_compare: error: {msg}", file=sys.stderr)
    sys.exit(code)


def load_json(path: str):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"reading {path}: {e}")


def collect_tables(directory: str) -> dict:
    """All tables from every bench_results/*.json, keyed by table name
    (table names are unique repo-wide).  Wall-clock columns are kept —
    compare_table() skips them cell-by-cell."""
    tables = {}
    paths = sorted(glob.glob(os.path.join(directory, "*.json")))
    if not paths:
        die(f"no *.json files under {directory!r}")
    for path in paths:
        doc = load_json(path)
        if not isinstance(doc, dict) or not isinstance(doc.get("tables"),
                                                       dict):
            continue  # not an obs::Report mirror (e.g. a contention report)
        source = os.path.basename(path)
        for name, table in doc["tables"].items():
            if name in tables:
                die(f"table {name!r} appears in both "
                    f"{tables[name]['source']} and {source}")
            tables[name] = {
                "source": source,
                "columns": table.get("columns", []),
                "rows": table.get("rows", []),
            }
    if not tables:
        die(f"no bench tables found under {directory!r}")
    return tables


def cmd_rollup(args) -> None:
    tables = collect_tables(args.dir)
    doc = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "benches": {name: tables[name] for name in sorted(tables)},
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    total_rows = sum(len(t["rows"]) for t in tables.values())
    wall = sorted({c for t in tables.values() for c in t["columns"]
                   if is_wall_clock(c)})
    print(f"bench_compare: wrote {args.out}: {len(tables)} tables, "
          f"{total_rows} rows (informational wall-clock columns: "
          f"{', '.join(wall) if wall else 'none'})")


def cells_match(a, b, tolerance: float) -> bool:
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    if a == b:
        return True
    scale = max(abs(a), abs(b))
    return abs(a - b) <= tolerance * scale


def compare_table(name: str, base: dict, cur: dict, tolerance: float) -> list:
    problems = []
    if base["columns"] != cur["columns"]:
        problems.append(f"{name}: columns changed "
                        f"{base['columns']} -> {cur['columns']}")
        return problems
    if len(base["rows"]) != len(cur["rows"]):
        problems.append(f"{name}: row count changed "
                        f"{len(base['rows'])} -> {len(cur['rows'])}")
        return problems
    for r, (brow, crow) in enumerate(zip(base["rows"], cur["rows"])):
        for c, (bval, cval) in enumerate(zip(brow, crow)):
            if is_wall_clock(base["columns"][c]):
                continue  # informational only — machine speed never gates
            if not cells_match(bval, cval, tolerance):
                problems.append(
                    f"{name} row {r} col {base['columns'][c]!r}: "
                    f"{bval!r} -> {cval!r}")
    return problems


def cmd_compare(args) -> None:
    baseline = load_json(args.baseline)
    if (not isinstance(baseline, dict)
            or baseline.get("schema") != SCHEMA_NAME
            or baseline.get("schema_version") != SCHEMA_VERSION):
        die(f"{args.baseline} is not a {SCHEMA_NAME} v{SCHEMA_VERSION} "
            "baseline (regenerate with `rollup`)")
    current = collect_tables(args.dir)
    problems = []
    compared = 0
    for name, base in sorted(baseline["benches"].items()):
        if name not in current:
            problems.append(f"{name}: missing from current run "
                            f"(baseline source {base['source']})")
            continue
        compared += 1
        problems.extend(compare_table(name, base, current[name],
                                      args.tolerance))
    for problem in problems:
        print(f"bench_compare: REGRESSION: {problem}", file=sys.stderr)
    if problems:
        print(f"bench_compare: FAIL: {len(problems)} difference(s) across "
              f"{len(baseline['benches'])} baseline tables "
              f"(tolerance {args.tolerance})", file=sys.stderr)
        sys.exit(1)
    print(f"bench_compare: OK: {compared} tables match the baseline "
          f"(tolerance {args.tolerance})")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_rollup = sub.add_parser(
        "rollup", help="collect bench_results/*.json into one baseline")
    p_rollup.add_argument("--dir", default="bench_results",
                          help="directory of bench JSON mirrors")
    p_rollup.add_argument("--out", default="BENCH_mapping.json",
                          help="baseline artifact to write")
    p_rollup.set_defaults(func=cmd_rollup)
    p_compare = sub.add_parser(
        "compare", help="diff a bench run against a committed baseline")
    p_compare.add_argument("--baseline", default="BENCH_mapping.json")
    p_compare.add_argument("--dir", default="bench_results")
    p_compare.add_argument("--tolerance", type=float, default=1e-6,
                           help="relative tolerance for numeric cells")
    p_compare.set_defaults(func=cmd_compare)
    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
