#!/usr/bin/env bash
# Tier-1 smoke: configure, build, run the test suite, then prove the
# parallel mapping kernels are deterministic end-to-end by diffing CLI
# mappings produced with 1 worker against 2 workers.
#
# Usage: scripts/smoke_test.sh [build-dir]   (default: build-smoke)
# Env:   TOPOMAP_SANITIZE=ON to build with ASan/UBSan.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-smoke}"
SANITIZE="${TOPOMAP_SANITIZE:-OFF}"

cmake -B "$BUILD_DIR" -S . -DTOPOMAP_SANITIZE="$SANITIZE" >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Thread-count invariance: the same map request must produce identical
# 'task processor' lines with a 1-worker and a 2-worker pool.
CLI="$BUILD_DIR/tools/topomap"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
for spec in \
  "--strategy=topolb   --tasks=stencil2d:16x16 --topology=torus:16x16" \
  "--strategy=topolb3  --tasks=stencil2d:8x8   --topology=mesh:8x8" \
  "--strategy=topocent --tasks=stencil2d:12x12 --topology=torus:12x12" \
  "--strategy=topolb+refine --tasks=stencil2d:10x10 --topology=torus:10x10"
do
  # shellcheck disable=SC2086
  TOPOMAP_THREADS=1 "$CLI" map $spec --seed=7 --output="$TMP/t1.map" >/dev/null
  # shellcheck disable=SC2086
  TOPOMAP_THREADS=2 "$CLI" map $spec --seed=7 --output="$TMP/t2.map" >/dev/null
  if ! diff -q "$TMP/t1.map" "$TMP/t2.map" >/dev/null; then
    echo "FAIL: mapping differs between 1 and 2 workers for: $spec" >&2
    diff "$TMP/t1.map" "$TMP/t2.map" >&2 || true
    exit 1
  fi
  echo "ok: thread-invariant  $spec"
done

# Hier scale path: a 100k-task graph must map onto a 4096-proc torus well
# inside the timeout, produce a complete in-range many-to-one mapping, and
# stay byte-identical across worker-pool widths.
HIER_SPEC="--strategy=hier --tasks=stencil3d:50x50x40 --topology=torus:16x16x16"
# shellcheck disable=SC2086
TOPOMAP_THREADS=1 timeout 300 "$CLI" map $HIER_SPEC --seed=7 \
  --output="$TMP/hier1.map" | tee "$TMP/hier.log" >/dev/null
# shellcheck disable=SC2086
TOPOMAP_THREADS=2 timeout 300 "$CLI" map $HIER_SPEC --seed=7 \
  --output="$TMP/hier2.map" >/dev/null
if ! diff -q "$TMP/hier1.map" "$TMP/hier2.map" >/dev/null; then
  echo "FAIL: hier mapping differs between 1 and 2 workers" >&2
  exit 1
fi
awk '
  NF == 2 {
    count++
    if ($2 < 0 || $2 >= 4096) { print "task " $1 " on bad proc " $2; exit 1 }
  }
  END { if (count != 100000) { print "expected 100000 lines, got " count; exit 1 } }
' "$TMP/hier1.map"
grep -Eq 'hop-bytes: *[0-9]+' "$TMP/hier.log"
echo "ok: hier scale         100k tasks -> torus:16x16x16, thread-invariant"

# Fault injection end-to-end: map around failed links/nodes, then evacuate
# stranded tasks after processor deaths.  Both must produce valid mappings
# (every task on a distinct alive processor) and finite hop-bytes.
check_mapping() {  # file, tasks, dead-procs...
  local file="$1" tasks="$2"
  shift 2
  awk -v tasks="$tasks" -v dead="$*" '
    BEGIN { n = split(dead, d, " ") }
    NF == 2 {
      count++
      for (i = 1; i <= n; i++)
        if ($2 == d[i]) { print "task " $1 " placed on dead proc " $2; exit 1 }
      if (seen[$2]++) { print "processor " $2 " used twice"; exit 1 }
    }
    END { if (count != tasks) { print "expected " tasks " lines, got " count; exit 1 } }
  ' "$file"
}

"$CLI" map --strategy=topolb --tasks=stencil2d:7x8 --topology=torus:8x8 \
  --fail-node=9,27 --fail-link=0:1 --seed=7 --output="$TMP/fault.map" \
  | tee "$TMP/fault.log" >/dev/null
check_mapping "$TMP/fault.map" 56 9 27
grep -Eq 'hop-bytes: *[0-9]+(\.[0-9]+)?' "$TMP/fault.log"
echo "ok: faulted map        --fail-node=9,27 --fail-link=0:1"

"$CLI" evacuate --strategy=topolb --tasks=stencil2d:7x8 --topology=torus:8x8 \
  --fail-node=3,12 --refine-passes=1 --seed=7 --output="$TMP/evac.map" \
  | tee "$TMP/evac.log" >/dev/null
check_mapping "$TMP/evac.map" 56 3 12
grep -Eq 'evacuate: *[0-9]+ stranded, [0-9]+ migrations' "$TMP/evac.log"
grep -Eq 'hop-bytes [0-9]+' "$TMP/evac.log"
echo "ok: evacuate           --fail-node=3,12"

# Soft faults end-to-end: degraded links engage the health-weighted
# distance plane (mapping) and slow the simulated links (netsim), while a
# health of 1.0 must change nothing at all.
"$CLI" simulate --strategy=topolb --tasks=stencil2d:8x8 --topology=torus:8x8 \
  --degrade-link=0:1:0.5,8:16:0.25 --random-degrades=2 --seed=7 \
  --iterations=10 | tee "$TMP/soft.log" >/dev/null
grep -q '4 degraded' "$TMP/soft.log"
grep -Eq 'completion: *[0-9]' "$TMP/soft.log"
"$CLI" map --strategy=topolb --tasks=stencil2d:8x8 --topology=torus:8x8 \
  --seed=7 --output="$TMP/plain.map" >/dev/null
"$CLI" map --strategy=topolb --tasks=stencil2d:8x8 --topology=torus:8x8 \
  --degrade-link=0:1:1.0 --seed=7 --output="$TMP/healthy.map" >/dev/null
if ! diff -q "$TMP/plain.map" "$TMP/healthy.map" >/dev/null; then
  echo "FAIL: a health-1.0 degrade changed the mapping" >&2
  exit 1
fi
echo "ok: soft faults        --degrade-link engages, health 1.0 is a no-op"

# Chaos soak end-to-end: the dynamic runtime survives a seeded 60-epoch
# fault/recovery timeline (bursts, degrades, transient partitions) with its
# self-validation on, and the final placement is thread-invariant.
TOPOMAP_THREADS=1 "$CLI" chaos --tasks=stencil2d:16x8 --topology=torus:8x8 \
  --epochs=60 --chaos=7:0.8:0.25 --seed=7 --output="$TMP/chaos1.map" \
  | tee "$TMP/chaos.log" >/dev/null
TOPOMAP_THREADS=2 "$CLI" chaos --tasks=stencil2d:16x8 --topology=torus:8x8 \
  --epochs=60 --chaos=7:0.8:0.25 --seed=7 --output="$TMP/chaos2.map" >/dev/null
if ! diff -q "$TMP/chaos1.map" "$TMP/chaos2.map" >/dev/null; then
  echo "FAIL: chaos final placement differs between 1 and 2 workers" >&2
  diff "$TMP/chaos1.map" "$TMP/chaos2.map" >&2 || true
  exit 1
fi
grep -Eq 'events: *[1-9][0-9]* applied' "$TMP/chaos.log"
grep -Eq '0 violations caught' "$TMP/chaos.log"
echo "ok: chaos soak         60 epochs, validated, thread-invariant"

# Exact oracle end-to-end: `topomap optimal` must solve an 8-task stencil
# on a same-shape mesh to the provable optimum (a perfect embedding: every
# edge one hop, hop-bytes == total bytes == 10 edges * 1024 B), and an
# independent topolb map of the same instance can never beat it.
"$CLI" optimal --tasks=stencil2d:4x2 --topology=mesh:4x2 --compare=topolb \
  --seed=7 --output="$TMP/opt.map" | tee "$TMP/opt.log" >/dev/null
check_mapping "$TMP/opt.map" 8
grep -Eq 'hop-bytes: *10240' "$TMP/opt.log"
grep -Eq 'optimality gap' "$TMP/opt.log"
"$CLI" map --strategy=topolb --tasks=stencil2d:4x2 --topology=mesh:4x2 \
  --seed=7 | tee "$TMP/optmap.log" >/dev/null
OPT_HB="$(sed -nE 's/^hop-bytes: *([0-9.]+).*/\1/p' "$TMP/opt.log")"
MAP_HB="$(sed -nE 's/^hop-bytes: *([0-9.]+).*/\1/p' "$TMP/optmap.log")"
awk -v opt="$OPT_HB" -v strat="$MAP_HB" 'BEGIN {
  if (opt == "" || strat == "" || opt + 0 > strat + 0) {
    print "FAIL: oracle hop-bytes " opt " vs topolb " strat
    exit 1
  }
}'
echo "ok: optimal oracle     stencil2d:4x2 solved exactly (<= topolb)"

# Exit-code taxonomy: 0 ok, 1 usage, 2 bad input (precondition), 3 internal
# invariant, 4 I/O failure — sweep scripts branch on these.
expect_rc() {  # expected-rc, description, command...
  local want="$1" what="$2" rc=0
  shift 2
  "$@" >/dev/null 2>&1 || rc=$?
  if [ "$rc" != "$want" ]; then
    echo "FAIL: $what exited $rc, expected $want" >&2
    exit 1
  fi
}
expect_rc 1 "unknown command" "$CLI" frobnicate
expect_rc 2 "malformed chaos spec" "$CLI" chaos --chaos=bogus
expect_rc 2 "malformed fault spec" "$CLI" map --tasks=stencil2d:4x4 \
  --topology=torus:4x4 --fail-link=0
expect_rc 2 "partitioned simulate" "$CLI" simulate --tasks=ring:4 \
  --topology=mesh:5 --fail-node=2
expect_rc 2 "oversized oracle instance" "$CLI" optimal \
  --tasks=stencil2d:4x4 --topology=torus:4x4
expect_rc 4 "unwritable output" "$CLI" map --tasks=stencil2d:4x4 \
  --topology=torus:4x4 --output=/nonexistent-dir/out.map
echo "ok: exit codes         1 usage / 2 precondition / 4 io"

# Self-validation drills: each documented corruption class must be caught
# by core::validate_state and surfaced as an invariant error — exit code 3
# with the violation named (the negative paths of tests/test_validate_state
# proven end to end through the CLI taxonomy).
expect_rc 3 "placement drill" "$CLI" chaos --drill=placement
expect_rc 3 "quarantine drill" "$CLI" chaos --drill=quarantine
expect_rc 3 "plane drill" "$CLI" chaos --drill=plane
expect_rc 2 "unknown drill kind" "$CLI" chaos --drill=bogus
"$CLI" chaos --drill=placement > "$TMP/drill.log" 2>&1 || true
grep -q 'placed on dead processor' "$TMP/drill.log"
"$CLI" chaos --drill=quarantine > "$TMP/drill.log" 2>&1 || true
grep -q 'is active but unplaced' "$TMP/drill.log"
"$CLI" chaos --drill=plane > "$TMP/drill.log" 2>&1 || true
grep -q 'plane scale' "$TMP/drill.log"
echo "ok: validation drills  placement/quarantine/plane caught, exit 3"

# Partition tolerance: a split machine maps what fits on the primary
# component and quarantines the rest instead of refusing.
"$CLI" map --tasks=ring:4 --topology=mesh:5 --fail-node=2 --seed=7 \
  | tee "$TMP/part.log" >/dev/null
grep -Eq 'quarantined: *2 of 4 tasks' "$TMP/part.log"
grep -q 'split into 2 components' "$TMP/part.log"
echo "ok: partition map      2 of 4 tasks quarantined on a split mesh:5"

# Observability: an instrumented build (-DTOPOMAP_OBS=ON, CLI target only —
# the rest of the suite already built above) must emit a schema-valid
# --stats report whose hop-bytes trajectory is monotone and whose counters
# fired, a parseable Chrome trace, and a mapping byte-identical to the
# uninstrumented build's (telemetry only observes).
OBS_DIR="${BUILD_DIR}-obs"
cmake -B "$OBS_DIR" -S . -DTOPOMAP_OBS=ON -DTOPOMAP_SANITIZE="$SANITIZE" \
  >/dev/null
cmake --build "$OBS_DIR" -j "$(nproc)" --target topomap_cli
OBS_CLI="$OBS_DIR/tools/topomap"
"$OBS_CLI" map --strategy=topolb --tasks=stencil2d:8x8 --topology=torus:8x8 \
  --seed=7 --output="$TMP/obs.map" --stats="$TMP/stats.json" \
  --trace="$TMP/trace.json" >/dev/null
python3 scripts/check_trace.py --trace "$TMP/trace.json" \
  --stats "$TMP/stats.json" --require-series topolb/hop_bytes_trajectory \
  --require-counter topolb/placements
if ! diff -q "$TMP/plain.map" "$TMP/obs.map" >/dev/null; then
  echo "FAIL: the instrumented build changed the mapping" >&2
  diff "$TMP/plain.map" "$TMP/obs.map" >&2 || true
  exit 1
fi
echo "ok: observability      --stats/--trace validate, mapping unchanged"

# Contention explainability: an A-vs-B explain run must emit a schema-valid
# contention report (exact attribution sums, a diff, a netsim timeline)
# and name the improvement in its terminal diff.
"$CLI" explain --strategy=topolb --baseline=greedy \
  --tasks=stencil2d:8x8 --topology=torus:8x8 --seed=7 --iterations=20 \
  --report="$TMP/contention.json" | tee "$TMP/explain.log" >/dev/null
python3 scripts/check_trace.py --contention "$TMP/contention.json"
grep -q 'hottest links:' "$TMP/explain.log"
grep -Eq 'mapping diff: *max link [0-9]+' "$TMP/explain.log"
# The instrumented build must put netsim counter tracks in the trace.
"$OBS_CLI" explain --strategy=topolb --tasks=stencil2d:8x8 \
  --topology=torus:8x8 --seed=7 --iterations=20 \
  --report="$TMP/obs_contention.json" --trace="$TMP/explain_trace.json" \
  >/dev/null
python3 scripts/check_trace.py --contention "$TMP/obs_contention.json"
python3 scripts/check_trace.py --trace "$TMP/explain_trace.json" \
  --require-counter-track netsim/util_max \
  --require-counter-track netsim/queue_depth
echo "ok: explain            A-vs-B diff, contention report, counter tracks"

# Mapping-as-a-service: start topomapd, round-trip a client map request
# (the served mapping must be byte-identical to the one-shot CLI's), check
# the status endpoint shows the cache pool working, prove the exit-code
# taxonomy survives the network hop, then shut down cleanly on SIGTERM.
DAEMON="$BUILD_DIR/tools/topomapd"
SOCK="$TMP/topomapd.sock"
"$DAEMON" --socket="$SOCK" --workers=2 --event-log="$TMP/events.jsonl" \
  --flight-capacity=64 > "$TMP/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.05; done
if [ ! -S "$SOCK" ]; then
  echo "FAIL: topomapd never bound $SOCK" >&2
  cat "$TMP/daemon.log" >&2
  exit 1
fi
"$CLI" client --socket="$SOCK" --kind=map --strategy=topolb \
  --tasks=stencil2d:8x8 --topology=torus:8x8 --seed=7 \
  --output="$TMP/svc.map" >/dev/null
if ! diff -q "$TMP/plain.map" "$TMP/svc.map" >/dev/null; then
  echo "FAIL: daemon-served mapping differs from the one-shot CLI" >&2
  diff "$TMP/plain.map" "$TMP/svc.map" >&2 || true
  exit 1
fi
"$CLI" client --socket="$SOCK" --kind=status | tee "$TMP/status.log" >/dev/null
grep -q '"requests_served"' "$TMP/status.log"
grep -Eq '"misses": *1' "$TMP/status.log"
expect_rc 2 "unknown strategy via daemon" "$CLI" client --socket="$SOCK" \
  --kind=map --strategy=frobnicate --tasks=stencil2d:4x4 --topology=torus:4x4
expect_rc 4 "client without a daemon" "$CLI" client --socket="$TMP/nope.sock" \
  --kind=status
# Telemetry surfaces: the metrics snapshot and flight dump validate
# against the strict schemas, the Prometheus exposition and `topomap top`
# render, --prom is rejected off the metrics kind, and SIGUSR1 makes the
# daemon dump its flight recorder to stderr.
"$CLI" client --socket="$SOCK" --kind=metrics > "$TMP/metrics.json"
python3 scripts/check_trace.py --svc "$TMP/metrics.json"
"$CLI" client --socket="$SOCK" --kind=metrics --prom > "$TMP/metrics.prom"
grep -q '^topomap_requests_served_total ' "$TMP/metrics.prom"
grep -q '^topomap_queue_depth ' "$TMP/metrics.prom"
# Two distinct machines by now: the served torus:8x8 map and the failed
# frobnicate request's torus:4x4 (the plane is acquired before the unknown
# strategy is rejected).
grep -q 'topomap_pool_events_total{event="misses"} 2' "$TMP/metrics.prom"
"$CLI" client --socket="$SOCK" --kind=flight > "$TMP/flight.json"
python3 scripts/check_trace.py --svc "$TMP/flight.json"
"$CLI" top --socket="$SOCK" --iterations=1 > "$TMP/top.log"
grep -q 'topomapd  served' "$TMP/top.log"
expect_rc 2 "--prom off the metrics kind" "$CLI" client --socket="$SOCK" \
  --kind=status --prom
kill -USR1 "$DAEMON_PID"
for _ in $(seq 1 50); do
  grep -q 'flight recorder' "$TMP/daemon.log" && break; sleep 0.05
done
grep -q 'flight recorder' "$TMP/daemon.log"
kill -TERM "$DAEMON_PID"
DAEMON_RC=0
wait "$DAEMON_PID" || DAEMON_RC=$?
if [ "$DAEMON_RC" != 0 ]; then
  echo "FAIL: topomapd exited $DAEMON_RC on SIGTERM, expected 0" >&2
  cat "$TMP/daemon.log" >&2
  exit 1
fi
grep -q 'clean shutdown' "$TMP/daemon.log"
if [ -S "$SOCK" ]; then
  echo "FAIL: topomapd left its socket behind after shutdown" >&2
  exit 1
fi
# The event log holds one JSONL line per completed request, every
# correlation id unique.
python3 - "$TMP/events.jsonl" <<'PYEOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
corrs = [l["corr"] for l in lines]
assert len(lines) >= 5, f"only {len(lines)} event-log lines"
assert len(set(corrs)) == len(corrs), f"duplicate correlation ids: {corrs}"
assert any(not l["ok"] for l in lines), "failed request missing from log"
PYEOF
echo "ok: topomapd           serve == one-shot bytes, taxonomy intact, clean stop"
echo "ok: telemetry          metrics/flight schemas, prom, top, SIGUSR1, event log"

echo "smoke test passed"
