// End-to-end scenario: measure a Jacobi application with the mini runtime,
// replay the load database through several mapping strategies (the paper's
// +LBDump/+LBSim workflow), then *simulate the actual execution* on a
// contended torus network to see hop-byte reductions turn into real time.
//
// Build & run:  ./build/examples/jacobi_simulation [--help]
#include <iostream>

#include "core/metrics.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "runtime/apps.hpp"
#include "runtime/lb_manager.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "topo/factory.hpp"
#include "topo/torus_mesh.hpp"

int main(int argc, char** argv) {
  using namespace topomap;

  CliParser cli("Jacobi: instrument -> dump -> map -> simulate execution");
  cli.add_option("side", "Jacobi grid side (tasks = side^2)", "8");
  cli.add_option("msg-kb", "boundary message size in KB", "16");
  cli.add_option("iterations", "simulated iterations", "500");
  cli.add_option("bandwidth", "link bandwidth MB/s", "200");
  cli.add_option("dump", "write the LB dump to this file (empty = skip)", "");
  cli.add_option("seed", "RNG seed", "7");
  if (!cli.parse(argc, argv)) return 0;

  const int side = static_cast<int>(cli.integer("side"));
  const int p = side * side;

  // --- 1. instrumented run on the mini message-driven runtime ---
  rts::JacobiConfig jacobi;
  jacobi.nx = side;
  jacobi.ny = side;
  jacobi.iterations = 10;  // a short measurement window is enough
  jacobi.message_bytes = cli.real("msg-kb") * 1024.0;
  const rts::LBDatabase db = rts::run_jacobi2d(jacobi);
  std::cout << "measured " << db.num_objects() << " chares, "
            << db.num_comm_records() << " communicating pairs, "
            << db.total_comm_bytes() / (1024 * 1024) << " MB traffic\n";

  if (const std::string dump = cli.str("dump"); !dump.empty()) {
    db.save_file(dump);
    std::cout << "LB dump written to " << dump << "\n";
  }

  // --- 2. replay through strategies on a (p/4, 4)-ish 3D torus ---
  const topo::TorusMesh machine =
      topo::TorusMesh::torus(topo::balanced_dims(p, 3));
  std::cout << "machine: " << machine.name() << "\n";

  // The measurement window scaled the edge weights by the iteration count;
  // hops-per-byte is scale-invariant, and the execution simulation below
  // uses per-iteration bytes directly.
  const graph::TaskGraph measured = db.to_task_graph();
  const graph::TaskGraph per_iter =
      graph::stencil_2d(side, side, 2.0 * jacobi.message_bytes);

  netsim::AppParams app;
  app.iterations = static_cast<int>(cli.integer("iterations"));
  app.compute_us = 20.0;
  netsim::NetworkParams net;
  net.bandwidth = cli.real("bandwidth");

  Table table("strategy comparison on the measured Jacobi database",
              {"strategy", "hops/byte", "completion_ms", "avg_latency_us",
               "busiest_link_ms"},
              2);
  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  for (const char* spec : {"random", "greedy", "topocent", "topolb",
                           "topolb+refine"}) {
    rts::PipelineConfig pipeline;
    pipeline.mapper = core::make_strategy(spec);
    const auto out = rts::replay_database(db, machine, pipeline, rng);
    const auto run = netsim::run_iterative_app(per_iter, machine,
                                               out.group_mapping, app, net);
    table.add_row({std::string(spec),
                   core::hops_per_byte(measured, machine, out.group_mapping),
                   run.completion_us / 1000.0, run.avg_message_latency_us,
                   run.max_link_busy_us / 1000.0});
  }
  table.print(std::cout);
  std::cout << "\nLower hops-per-byte -> lower link contention -> faster "
               "completion (paper §5.3).\n";
  return 0;
}
