// Quickstart: the 10-line topomap workflow.
//
//   1. describe your application as a task graph,
//   2. describe your machine as a topology,
//   3. ask a strategy for a mapping,
//   4. inspect hop-bytes / hops-per-byte.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/metrics.hpp"
#include "core/strategy.hpp"
#include "graph/builders.hpp"
#include "support/rng.hpp"
#include "topo/torus_mesh.hpp"

int main() {
  using namespace topomap;

  // A 16x16 Jacobi-style application: each task exchanges 64 KB with each
  // of its four grid neighbours per iteration.
  const graph::TaskGraph app = graph::stencil_2d(16, 16, 64 * 1024.0);

  // A 256-processor machine wired as a (16,16) 2D torus.
  const topo::TorusMesh machine = topo::TorusMesh::torus({16, 16});

  Rng rng(/*seed=*/42);

  // Baseline: random placement.
  const auto random = core::make_strategy("random");
  const core::Mapping random_map = random->map(app, machine, rng);

  // The paper's strategy: TopoLB (second-order estimation) + swap refiner.
  const auto topolb = core::make_strategy("topolb+refine");
  const core::Mapping topolb_map = topolb->map(app, machine, rng);

  std::cout << "workload:  " << app.label() << " ("
            << app.total_comm_bytes() / (1024.0 * 1024.0)
            << " MB per iteration)\n"
            << "machine:   " << machine.name() << "\n\n";
  std::cout << "hops-per-byte, random placement: "
            << core::hops_per_byte(app, machine, random_map) << "\n";
  std::cout << "hops-per-byte, TopoLB+refine:    "
            << core::hops_per_byte(app, machine, topolb_map) << "\n";
  std::cout << "(expected for random: sqrt(p)/2 = "
            << core::expected_random_hops(machine)
            << "; optimal here: 1.0 — the stencil embeds in the torus)\n\n";

  // Per-link view: contention is what hop-bytes is a proxy for.
  const auto random_links = core::link_loads(app, machine, random_map);
  const auto topolb_links = core::link_loads(app, machine, topolb_map);
  std::cout << "busiest link, random placement: "
            << random_links.max_bytes / 1024.0 << " KB/iteration\n"
            << "busiest link, TopoLB+refine:    "
            << topolb_links.max_bytes / 1024.0 << " KB/iteration\n";
  return 0;
}
