// Scenario: topology-aware rank reordering for a plain MPI application.
//
// Feed a measured rank-to-rank communication matrix (e.g. from mpiP or a
// PMPI byte counter) and a machine spec; get back the rank -> processor
// permutation to pass to the launcher (rankfile / MPICH_RANK_REORDER).
// Without --matrix it demonstrates on a synthetic 3D-halo communication
// matrix.
//
// Build & run:  ./build/examples/mpi_rank_reorder [--help]
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/metrics.hpp"
#include "graph/builders.hpp"
#include "runtime/rank_reorder.hpp"
#include "support/cli.hpp"
#include "topo/factory.hpp"

int main(int argc, char** argv) {
  using namespace topomap;

  CliParser cli("Produce a topology-aware MPI rank ordering");
  cli.add_option("matrix", "comm-matrix file ('ranks N' + NxN bytes; "
                 "empty = synthetic 3D halo demo)", "");
  cli.add_option("topology", "machine spec", "torus:4x4x4");
  cli.add_option("strategy", "mapping strategy", "topolb+refine");
  cli.add_option("output", "rank-mapping output file (empty = stdout)", "");
  cli.add_option("seed", "RNG seed", "1");
  if (!cli.parse(argc, argv)) return 0;

  const auto machine = topo::make_topology(cli.str("topology"));

  graph::TaskGraph ranks = [&] {
    if (const std::string path = cli.str("matrix"); !path.empty())
      return rts::read_comm_matrix_file(path);
    const auto dims = topo::balanced_dims(machine->size(), 3);
    std::cout << "# no --matrix given; using a synthetic " << dims[0] << "x"
              << dims[1] << "x" << dims[2] << " halo-exchange pattern\n";
    return graph::stencil_3d(dims[0], dims[1], dims[2], 64 * 1024.0);
  }();

  if (ranks.num_vertices() != machine->size()) {
    std::cerr << "error: " << ranks.num_vertices() << " ranks but "
              << machine->size() << " processors in " << machine->name()
              << "\n";
    return 1;
  }

  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const auto strategy = core::make_strategy(cli.str("strategy"));
  const core::Mapping m =
      rts::reorder_ranks(ranks, *machine, *strategy, rng);

  Rng rng2(rng.seed());
  const core::Mapping trivial = core::identity_mapping(machine->size());
  std::cout << "# machine:   " << machine->name() << "\n"
            << "# strategy:  " << strategy->name() << "\n"
            << "# hops/byte: " << core::hops_per_byte(ranks, *machine, m)
            << " (in-order binding: "
            << core::hops_per_byte(ranks, *machine, trivial)
            << ", random expectation: "
            << core::expected_random_hops(*machine) << ")\n";

  if (const std::string out = cli.str("output"); !out.empty()) {
    std::ofstream os(out);
    rts::write_rank_mapping(os, m);
    std::cout << "# mapping written to " << out << "\n";
  } else {
    rts::write_rank_mapping(std::cout, m);
  }
  return 0;
}
