// Scenario: irregular machines and workloads from files.
//
// topomap's algorithms work on arbitrary topology graphs (paper §3: "our
// algorithms work for arbitrary network topologies").  This example loads
// a machine description and a task graph from simple edge-list files (or
// generates a demo pair), maps with every strategy, and prints a summary —
// the shape of a batch-system integration.
//
// File formats (lines starting with '#' are comments):
//   machine file:  first line "nodes N", then one "a b" link per line
//   taskgraph:     first line "tasks N", then "a b bytes" per line
//
// Build & run:  ./build/examples/custom_topology [--machine=f --tasks=g]
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/metrics.hpp"
#include "core/strategy.hpp"
#include "graph/builders.hpp"
#include "graph/factory.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "topo/graph_topology.hpp"

namespace {

using namespace topomap;

topo::GraphTopology load_machine(const std::string& path) {
  std::ifstream in(path);
  TOPOMAP_REQUIRE(static_cast<bool>(in), "cannot open machine file: " + path);
  std::string line, keyword;
  int nodes = -1;
  std::vector<std::pair<int, int>> links;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    if (nodes < 0) {
      ls >> keyword >> nodes;
      TOPOMAP_REQUIRE(keyword == "nodes" && nodes > 0,
                      "machine file must start with 'nodes N'");
      continue;
    }
    int a = 0, b = 0;
    ls >> a >> b;
    TOPOMAP_REQUIRE(static_cast<bool>(ls), "bad link line: " + line);
    links.emplace_back(a, b);
  }
  return topo::GraphTopology(nodes, links, "file[" + path + "]");
}

/// Demo machine: two 3x3 mesh "racks" bridged by two cables — the kind of
/// irregular shape no closed-form topology covers.
topo::GraphTopology demo_machine() {
  std::vector<std::pair<int, int>> links;
  auto id = [](int rack, int x, int y) { return rack * 9 + x + 3 * y; };
  for (int rack = 0; rack < 2; ++rack) {
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < 3; ++x) {
        if (x + 1 < 3) links.emplace_back(id(rack, x, y), id(rack, x + 1, y));
        if (y + 1 < 3) links.emplace_back(id(rack, x, y), id(rack, x, y + 1));
      }
    }
  }
  links.emplace_back(id(0, 2, 0), id(1, 0, 0));  // bridge cables
  links.emplace_back(id(0, 2, 2), id(1, 0, 2));
  return topo::GraphTopology(18, links, "two-racks-demo");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Map a file-described task graph onto a file-described machine");
  cli.add_option("machine", "machine edge-list file (empty = built-in demo)",
                 "");
  cli.add_option("tasks", "task-graph edge-list file (empty = demo ring)", "");
  cli.add_option("seed", "RNG seed", "5");
  if (!cli.parse(argc, argv)) return 0;

  const topo::GraphTopology machine = cli.str("machine").empty()
                                          ? demo_machine()
                                          : load_machine(cli.str("machine"));
  Rng demo_rng(static_cast<std::uint64_t>(cli.integer("seed")));
  const graph::TaskGraph tasks =
      cli.str("tasks").empty()
          ? graph::random_geometric(machine.size(), 0.35, 4096.0, demo_rng)
          : graph::read_task_graph_file(cli.str("tasks"));

  TOPOMAP_REQUIRE(tasks.num_vertices() == machine.size(),
                  "task count must equal machine size for direct mapping "
                  "(use the two-phase pipeline otherwise)");

  std::cout << "machine: " << machine.name() << " (" << machine.size()
            << " nodes, diameter " << machine.diameter() << ")\n"
            << "tasks:   " << tasks.label() << " (" << tasks.num_edges()
            << " communicating pairs)\n";

  Table table("mapping strategies on the custom machine",
              {"strategy", "hops/byte", "hop_bytes_MB", "busiest_link_MB"},
              3);
  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  for (const char* spec :
       {"random", "topocent", "topolb", "topolb+refine"}) {
    const auto strategy = core::make_strategy(spec);
    const core::Mapping m = strategy->map(tasks, machine, rng);
    const auto links = core::link_loads(tasks, machine, m);
    table.add_row({std::string(spec), core::hops_per_byte(tasks, machine, m),
                   core::hop_bytes(tasks, machine, m) / (1024.0 * 1024.0),
                   links.max_bytes / (1024.0 * 1024.0)});
  }
  table.print(std::cout);
  std::cout << "\nTopoLB keeps heavy communicators inside racks and off the "
               "two bridge cables.\n";
  return 0;
}
