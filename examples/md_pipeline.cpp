// Domain scenario: a molecular-dynamics workload (LeanMD-style cell/pair
// decomposition) with far more objects than processors — the full
// two-phase pipeline of the paper:
//
//   instrumented run -> LB database -> multilevel partition into p groups
//   -> coalesce -> topology-aware mapping -> per-object placement.
//
// Build & run:  ./build/examples/md_pipeline [--help]
#include <iostream>

#include "graph/quotient.hpp"
#include "graph/synthetic_md.hpp"
#include "partition/partition.hpp"
#include "runtime/apps.hpp"
#include "runtime/lb_manager.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "topo/factory.hpp"

int main(int argc, char** argv) {
  using namespace topomap;

  CliParser cli("MD cell/pair workload through the two-phase LB pipeline");
  cli.add_option("topology", "machine spec (see topo::make_topology)",
                 "torus:8x8");
  cli.add_option("cells", "cell grid, e.g. 6x6x5", "6x6x5");
  cli.add_option("atoms", "mean atoms per cell", "200");
  cli.add_option("seed", "RNG seed", "11");
  if (!cli.parse(argc, argv)) return 0;

  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));

  // --- build the MD object pattern and measure it on the runtime ---
  graph::MdParams params;
  {
    const auto spec = cli.str("cells");
    if (3 != std::sscanf(spec.c_str(), "%dx%dx%d", &params.cells_x,
                         &params.cells_y, &params.cells_z)) {
      std::cerr << "bad --cells spec: " << spec << "\n";
      return 1;
    }
  }
  params.atoms_per_cell = cli.real("atoms");
  const graph::TaskGraph pattern = graph::synthetic_md(params, rng);
  const rts::LBDatabase db = rts::run_graph_exchange(pattern, /*iterations=*/3);
  const graph::TaskGraph objects = db.to_task_graph("md-measured");

  const auto machine = topo::make_topology(cli.str("topology"));
  std::cout << "objects: " << objects.num_vertices() << " ("
            << graph::md_cell_count(params) << " cells + "
            << objects.num_vertices() - graph::md_cell_count(params)
            << " pair computes)\n"
            << "machine: " << machine->name() << " (" << machine->size()
            << " processors, virtualization ratio "
            << static_cast<double>(objects.num_vertices()) / machine->size()
            << ")\n\n";

  // --- run the pipeline with each phase-2 strategy ---
  Table table("two-phase pipeline results",
              {"mapper", "edge_cut_MB", "imbalance", "quotient_deg",
               "hops/byte"},
              3);
  for (const char* spec : {"random", "topocent", "topolb", "topolb+refine"}) {
    rts::PipelineConfig pipeline;
    pipeline.partitioner = part::make_partitioner("multilevel");
    pipeline.mapper = core::make_strategy(spec);
    Rng run_rng(rng.seed());  // same partition seed for a fair comparison
    const auto out = rts::run_two_phase(objects, *machine, pipeline, run_rng);
    table.add_row({std::string(spec), out.edge_cut_bytes / (1024.0 * 1024.0),
                   out.load_imbalance, out.quotient_avg_degree,
                   out.hops_per_byte});
  }
  table.print(std::cout);

  // --- show a concrete object placement ---
  rts::PipelineConfig pipeline;
  pipeline.partitioner = part::make_partitioner("multilevel");
  pipeline.mapper = core::make_strategy("topolb+refine");
  Rng run_rng(rng.seed());
  const auto out = rts::run_two_phase(objects, *machine, pipeline, run_rng);
  std::cout << "\nfirst 10 object placements (object -> group -> processor):\n";
  for (int obj = 0; obj < std::min(10, objects.num_vertices()); ++obj)
    std::cout << "  object " << obj << " -> group "
              << out.group_of_object[obj] << " -> processor "
              << out.object_to_proc[obj] << "\n";
  return 0;
}
