// Seeded corpus of small mapping instances for the exact-optimal oracle
// (core/optimal_lb.hpp).  Shared by tests/test_optimal_oracle.cpp,
// tests/test_mapping_invariances.cpp, and bench/ablation_optimality_gap.cpp
// so the gap numbers in CI, the invariance properties, and the committed
// BENCH_mapping.json columns all talk about the same instances.
//
// Every edge weight is an integer number of bytes.  Distances are integer
// plane entries (or integer fixed-point units under soft faults), so each
// bytes * distance product and every partial sum is exact in double — the
// oracle's value, the brute-force enumeration's value, and every
// strategy's hop_bytes are comparable with operator== rather than a
// tolerance.
//
// Shapes: stencils, a ring, a clique, a butterfly, and a seeded
// integer-weight Erdős–Rényi graph, on torus/mesh/hypercube machines,
// pristine and with injected faults (degraded link, failed link, failed
// node).  `square` marks instances every bijective strategy can run
// (tasks == usable processors == total processors); `brute` marks
// instances small enough (n <= 8) for full permutation enumeration.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/builders.hpp"
#include "graph/task_graph.hpp"
#include "support/rng.hpp"
#include "topo/fault_overlay.hpp"
#include "topo/hypercube.hpp"
#include "topo/topology.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::oracle {

struct OracleInstance {
  std::string name;
  graph::TaskGraph g;
  topo::TopologyPtr machine;
  /// tasks == processors and none are dead: every bijective strategy runs.
  bool square = false;
  /// n <= 8: cross-checked against brute-force permutation enumeration.
  bool brute = false;
};

/// Seeded Erdős–Rényi graph with integer edge weights: each pair joins
/// with probability 1/2, bytes = 32 * (1 + roll in [0, 7]).  A fixed tour
/// 0-1-...-(n-1) keeps it connected without disturbing determinism.
inline graph::TaskGraph integer_er_graph(int n, std::uint64_t seed) {
  Rng rng(seed);
  graph::TaskGraph::Builder b("er-int:" + std::to_string(n));
  b.add_vertices(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) {
      const bool tour = v == u + 1;
      if (!tour && !rng.bernoulli(0.5)) continue;
      b.add_edge(u, v, 32.0 * static_cast<double>(1 + rng.uniform_int(0, 7)));
    }
  return std::move(b).build();
}

/// The corpus, rebuilt identically on every call (everything is seeded).
inline std::vector<OracleInstance> oracle_corpus() {
  using topo::FaultOverlay;
  using topo::Hypercube;
  using topo::TorusMesh;
  std::vector<OracleInstance> corpus;

  // --- pristine machines -------------------------------------------------
  corpus.push_back({"stencil3x2/torus3x2",
                    graph::stencil_2d(3, 2, 64.0),
                    std::make_shared<TorusMesh>(TorusMesh::torus({3, 2})),
                    /*square=*/true, /*brute=*/true});
  corpus.push_back({"stencil4x2/mesh4x2",
                    graph::stencil_2d(4, 2, 128.0),
                    std::make_shared<TorusMesh>(TorusMesh::mesh({4, 2})),
                    /*square=*/true, /*brute=*/true});
  corpus.push_back({"ring8/torus2x2x2",
                    graph::ring(8, 96.0),
                    std::make_shared<TorusMesh>(TorusMesh::torus({2, 2, 2})),
                    /*square=*/true, /*brute=*/true});
  corpus.push_back({"complete6/mesh3x2",
                    graph::complete(6, 256.0),
                    std::make_shared<TorusMesh>(TorusMesh::mesh({3, 2})),
                    /*square=*/true, /*brute=*/true});
  corpus.push_back({"butterfly8/hypercube3",
                    graph::butterfly(3, 512.0),
                    std::make_shared<Hypercube>(3),
                    /*square=*/true, /*brute=*/true});
  corpus.push_back({"er8/torus4x2",
                    integer_er_graph(8, 0xC0FFEEULL),
                    std::make_shared<TorusMesh>(TorusMesh::torus({4, 2})),
                    /*square=*/true, /*brute=*/true});
  // n in (8, 12]: oracle-sized but beyond brute-force enumeration.
  corpus.push_back({"stencil3x3/torus3x3",
                    graph::stencil_2d(3, 3, 64.0),
                    std::make_shared<TorusMesh>(TorusMesh::torus({3, 3})),
                    /*square=*/true, /*brute=*/false});
  corpus.push_back({"stencil4x3/mesh4x3",
                    graph::stencil_2d(4, 3, 64.0),
                    std::make_shared<TorusMesh>(TorusMesh::mesh({4, 3})),
                    /*square=*/true, /*brute=*/false});

  // --- degraded machines (FaultOverlay) ----------------------------------
  // Soft fault: one half-rate link.  Plane entries switch to fixed-point
  // units (kHealthCostOne per healthy hop) but stay integers, so exact
  // comparisons still hold.  No processor died: still square.
  {
    auto base = std::make_shared<TorusMesh>(TorusMesh::mesh({4, 2}));
    auto ov = std::make_shared<FaultOverlay>(base);
    ov->degrade_link(0, 1, 0.5);
    corpus.push_back({"stencil4x2/mesh4x2+degrade01",
                      graph::stencil_2d(4, 2, 128.0), std::move(ov),
                      /*square=*/true, /*brute=*/true});
  }
  // Hard link fault: the 0-1 link of the 2x2x2 torus is gone; detours
  // reroute around it.  Still square (all processors alive).
  {
    auto base = std::make_shared<TorusMesh>(TorusMesh::torus({2, 2, 2}));
    auto ov = std::make_shared<FaultOverlay>(base);
    ov->fail_link(0, 1);
    corpus.push_back({"ring8/torus2x2x2-link01",
                      graph::ring(8, 96.0), std::move(ov),
                      /*square=*/true, /*brute=*/true});
  }
  // Node fault: 6 tasks on an 8-processor mesh with one dead processor —
  // an injective (not bijective) instance only the oracle handles.
  {
    auto base = std::make_shared<TorusMesh>(TorusMesh::mesh({4, 2}));
    auto ov = std::make_shared<FaultOverlay>(base);
    ov->fail_node(5);
    corpus.push_back({"stencil3x2/mesh4x2-node5",
                      graph::stencil_2d(3, 2, 64.0), std::move(ov),
                      /*square=*/false, /*brute=*/true});
  }
  return corpus;
}

/// The 11 bijective strategy specs the oracle gates (the full spec list of
/// tests/test_core_strategies.cpp; hier variants are excluded because they
/// target oversubscription, not square instances).
inline const std::vector<std::string>& gated_strategy_specs() {
  static const std::vector<std::string> specs = {
      "random",    "greedy",         "topocent",
      "topolb",    "topolb1",        "topolb3",
      "recursive", "anneal",         "anneal-warm",
      "topolb+refine", "topolb+linkrefine"};
  return specs;
}

}  // namespace topomap::oracle
