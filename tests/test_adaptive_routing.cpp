// Minimal adaptive routing: path-length optimality, contention spreading,
// conservation, and app-level behaviour vs deterministic routing.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "netsim/network.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topo/fat_tree.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::netsim {
namespace {

using topo::TorusMesh;

class Recorder final : public SimulationClient {
 public:
  void on_delivery(SimTime now, const Message& msg) override {
    deliveries.emplace_back(now, msg);
  }
  void on_app_event(SimTime, std::uint64_t) override {}
  std::vector<std::pair<SimTime, Message>> deliveries;
};

NetworkParams adaptive_params() {
  NetworkParams p;
  p.bandwidth = 100.0;
  p.per_hop_latency_us = 1.0;
  p.injection_overhead_us = 2.0;
  p.routing = RoutingPolicy::kMinimalAdaptive;
  return p;
}

TEST(AdaptiveRouting, NoLoadLatencyMatchesDeterministic) {
  const TorusMesh t = TorusMesh::torus({4, 4});
  Recorder rec;
  Network net(t, adaptive_params(), ServiceModel::kWormhole, &rec);
  net.inject(0.0, 0, 10, 200.0, 0);  // distance 4 (2+2), 2 B/us ser
  net.run_until_idle();
  // Minimal adaptive still takes distance(0,10)=4 hops:
  // 2 + 4*1 + 2 = 8.0.
  EXPECT_NEAR(rec.deliveries[0].first, 8.0, 1e-9);
  EXPECT_NEAR(net.hop_stats().mean(), 4.0, 1e-9);
}

TEST(AdaptiveRouting, SpreadsContentionAcrossMinimalPaths) {
  // Two simultaneous messages 0 -> 3 on a 2x2 mesh have two disjoint
  // minimal paths (via 1 and via 2).  Deterministic routing serialises
  // them on one path; adaptive delivers both at the no-load latency.
  const TorusMesh t = TorusMesh::mesh({2, 2});
  NetworkParams det = adaptive_params();
  det.routing = RoutingPolicy::kDeterministic;

  Recorder rec_det;
  Network net_det(t, det, ServiceModel::kWormhole, &rec_det);
  net_det.inject(0.0, 0, 3, 300.0, 1);
  net_det.inject(0.0, 0, 3, 300.0, 2);
  net_det.run_until_idle();

  Recorder rec_ad;
  Network net_ad(t, adaptive_params(), ServiceModel::kWormhole, &rec_ad);
  net_ad.inject(0.0, 0, 3, 300.0, 1);
  net_ad.inject(0.0, 0, 3, 300.0, 2);
  net_ad.run_until_idle();

  // No-load: 2 + 2 hops + 3.0 ser = 7.0.
  EXPECT_NEAR(rec_ad.deliveries[0].first, 7.0, 1e-9);
  EXPECT_NEAR(rec_ad.deliveries[1].first, 7.0, 1e-9);
  // Deterministic: the second message queues a full serialisation behind.
  EXPECT_NEAR(rec_det.deliveries[0].first, 7.0, 1e-9);
  EXPECT_GT(rec_det.deliveries[1].first, 9.0);
}

TEST(AdaptiveRouting, ConservationUnderRandomTraffic) {
  const TorusMesh t = TorusMesh::torus({4, 4});
  Recorder rec;
  Network net(t, adaptive_params(), ServiceModel::kStoreForward, &rec);
  Rng rng(77);
  const int kMessages = 300;
  for (int i = 0; i < kMessages; ++i)
    net.inject(rng.uniform_double(0.0, 40.0),
               static_cast<int>(rng.uniform(16)),
               static_cast<int>(rng.uniform(16)),
               rng.uniform_double(10.0, 600.0),
               static_cast<std::uint64_t>(i));
  net.run_until_idle();
  ASSERT_EQ(rec.deliveries.size(), static_cast<std::size_t>(kMessages));
  std::vector<char> seen(kMessages, 0);
  for (const auto& [time, msg] : rec.deliveries) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(msg.tag)]);
    seen[static_cast<std::size_t>(msg.tag)] = 1;
  }
}

TEST(AdaptiveRouting, DeterministicGivenSameInputs) {
  const TorusMesh t = TorusMesh::torus({4, 4});
  auto run = [&] {
    Recorder rec;
    Network net(t, adaptive_params(), ServiceModel::kWormhole, &rec);
    for (int i = 0; i < 50; ++i)
      net.inject(static_cast<double>(i % 7), i % 16, (i * 5) % 16,
                 100.0 + i, static_cast<std::uint64_t>(i));
    net.run_until_idle();
    return rec.deliveries;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second.tag, b[i].second.tag);
  }
}

TEST(AdaptiveRouting, AppLevelNeverSlowerThanDeterministicHere) {
  // Congested random mapping: adaptive routing spreads load over the
  // torus's equivalent minimal paths and completes no later.
  const auto g = graph::stencil_2d(8, 8, 4000.0);
  const TorusMesh t = TorusMesh::torus({4, 4, 4});
  Rng rng(3);
  const core::Mapping random = rng.permutation(64);
  AppParams app;
  app.iterations = 30;
  NetworkParams det = adaptive_params();
  det.routing = RoutingPolicy::kDeterministic;
  const auto r_det = run_iterative_app(g, t, random, app, det);
  const auto r_ad = run_iterative_app(g, t, random, app, adaptive_params());
  EXPECT_LE(r_ad.completion_us, r_det.completion_us * 1.01);
  EXPECT_LE(r_ad.avg_message_latency_us,
            r_det.avg_message_latency_us * 1.01);
}

TEST(AdaptiveRouting, InconsistentTopologyDiagnosed) {
  // FatTree is a pure distance model: its links attach leaves to switches,
  // so it has no processor-level adjacency at all.  neighbors() now rejects
  // up front, which surfaces at Network construction instead of as a
  // confusing mid-simulation stall.
  const topo::FatTree f(2, 2);
  EXPECT_THROW(Network(f, adaptive_params(), ServiceModel::kWormhole, nullptr),
               precondition_error);
}

}  // namespace
}  // namespace topomap::netsim
