// Task-graph structure and generator tests.
#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "graph/quotient.hpp"
#include "graph/synthetic_md.hpp"
#include "graph/task_graph.hpp"
#include "support/error.hpp"

namespace topomap::graph {
namespace {

TEST(TaskGraph, BuilderAccumulatesParallelEdges) {
  TaskGraph::Builder b("t");
  b.add_vertices(3, 2.0);
  b.add_edge(0, 1, 10.0);
  b.add_edge(1, 0, 5.0);  // same undirected edge, reversed order
  b.add_edge(1, 2, 7.0);
  const TaskGraph g = std::move(b).build();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.edge_bytes(0, 1), 15.0);
  EXPECT_DOUBLE_EQ(g.edge_bytes(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(g.edge_bytes(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(g.comm_bytes(1), 22.0);
  EXPECT_DOUBLE_EQ(g.total_comm_bytes(), 22.0);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 6.0);
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(TaskGraph, BuilderRejectsBadInput) {
  TaskGraph::Builder b("t");
  b.add_vertices(2);
  EXPECT_THROW(b.add_edge(0, 0, 1.0), precondition_error);
  EXPECT_THROW(b.add_edge(0, 2, 1.0), precondition_error);
  EXPECT_THROW(b.add_edge(0, 1, 0.0), precondition_error);
  EXPECT_THROW(b.add_vertex(-1.0), precondition_error);
}

TEST(TaskGraph, CsrRowsSortedByNeighbor) {
  TaskGraph::Builder b("t");
  b.add_vertices(4);
  b.add_edge(2, 0, 1.0);
  b.add_edge(2, 3, 1.0);
  b.add_edge(2, 1, 1.0);
  const TaskGraph g = std::move(b).build();
  const auto row = g.edges_of(2);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].neighbor, 0);
  EXPECT_EQ(row[1].neighbor, 1);
  EXPECT_EQ(row[2].neighbor, 3);
}

TEST(Builders, Stencil2DShape) {
  const TaskGraph g = stencil_2d(4, 3, 100.0);
  EXPECT_EQ(g.num_vertices(), 12);
  // edges: horizontal 3*3=9, vertical 4*2=8
  EXPECT_EQ(g.num_edges(), 17);
  EXPECT_EQ(g.degree(0), 2);        // corner
  EXPECT_EQ(g.degree(1), 3);        // edge
  EXPECT_EQ(g.degree(5), 4);        // interior (x=1,y=1)
  EXPECT_DOUBLE_EQ(g.total_comm_bytes(), 1700.0);
  EXPECT_TRUE(is_connected(g));
}

TEST(Builders, Stencil2DPeriodicAllDegreeFour) {
  const TaskGraph g = stencil_2d(5, 4, 1.0, /*periodic=*/true);
  for (int v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_EQ(g.num_edges(), 2 * 20);
}

TEST(Builders, Stencil3DShape) {
  const TaskGraph g = stencil_3d(3, 3, 3, 1.0);
  EXPECT_EQ(g.num_vertices(), 27);
  EXPECT_EQ(g.num_edges(), 3 * (2 * 3 * 3));  // 54
  EXPECT_EQ(g.degree(13), 6);  // center
  EXPECT_EQ(g.degree(0), 3);   // corner
  const TaskGraph p = stencil_3d(4, 4, 4, 1.0, /*periodic=*/true);
  for (int v = 0; v < p.num_vertices(); ++v) EXPECT_EQ(p.degree(v), 6);
}

TEST(Builders, RingAndComplete) {
  const TaskGraph r = ring(6, 2.0);
  EXPECT_EQ(r.num_edges(), 6);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(r.degree(v), 2);
  const TaskGraph r2 = ring(2, 2.0);
  EXPECT_EQ(r2.num_edges(), 1);
  const TaskGraph c = complete(5, 1.0);
  EXPECT_EQ(c.num_edges(), 10);
}

TEST(Builders, RandomGraphConnectedAndSeeded) {
  Rng rng(42);
  const TaskGraph g = random_graph(40, 0.15, 1.0, 10.0, rng);
  EXPECT_EQ(g.num_vertices(), 40);
  EXPECT_TRUE(is_connected(g));
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.bytes, 1.0);
    EXPECT_LE(e.bytes, 10.0);
  }
  Rng rng2(42);
  const TaskGraph g2 = random_graph(40, 0.15, 1.0, 10.0, rng2);
  EXPECT_EQ(g.num_edges(), g2.num_edges());  // determinism by seed
}

TEST(Builders, RandomGeometricConnected) {
  Rng rng(7);
  const TaskGraph g = random_geometric(60, 0.25, 5.0, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GT(g.num_edges(), 0);
}

TEST(Builders, IsConnectedDetectsIsolation) {
  TaskGraph::Builder b("t");
  b.add_vertices(3);
  b.add_edge(0, 1, 1.0);
  EXPECT_FALSE(is_connected(std::move(b).build()));
}

TEST(SyntheticMd, ObjectCountsAndBipartiteStructure) {
  MdParams p;
  p.cells_x = 4;
  p.cells_y = 4;
  p.cells_z = 4;
  Rng rng(1);
  const TaskGraph g = synthetic_md(p, rng);
  const int ncells = md_cell_count(p);
  EXPECT_EQ(ncells, 64);
  // 26-neighbourhood, periodic, 64 cells -> 13 pairs per cell.
  const int npairs = g.num_vertices() - ncells;
  EXPECT_EQ(npairs, 13 * 64 / 1);
  // Every pair object has exactly two edges (to its two cells).
  for (int v = ncells; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 2);
  // Every cell connects to exactly 26 pair objects.
  for (int v = 0; v < ncells; ++v) EXPECT_EQ(g.degree(v), 26);
  EXPECT_TRUE(is_connected(g));
}

TEST(SyntheticMd, FaceOnlyNeighborhood) {
  MdParams p;
  p.cells_x = 3;
  p.cells_y = 3;
  p.cells_z = 3;
  p.full_neighborhood = false;
  Rng rng(1);
  const TaskGraph g = synthetic_md(p, rng);
  const int npairs = g.num_vertices() - 27;
  EXPECT_EQ(npairs, 3 * 27);  // 6-neighbourhood periodic: 3 pairs per cell
}

TEST(SyntheticMd, DeterministicBySeed) {
  MdParams p;
  Rng a(99), b(99);
  const TaskGraph ga = synthetic_md(p, a);
  const TaskGraph gb = synthetic_md(p, b);
  ASSERT_EQ(ga.num_vertices(), gb.num_vertices());
  for (int v = 0; v < ga.num_vertices(); ++v)
    EXPECT_DOUBLE_EQ(ga.vertex_weight(v), gb.vertex_weight(v));
}

TEST(Quotient, ContractsGroupsAndDropsInternalEdges) {
  // 4-task path graph 0-1-2-3, groups {0,1} and {2,3}.
  TaskGraph::Builder b("path");
  b.add_vertices(4, 1.5);
  b.add_edge(0, 1, 10.0);
  b.add_edge(1, 2, 20.0);
  b.add_edge(2, 3, 30.0);
  const TaskGraph g = std::move(b).build();
  const TaskGraph q = quotient_graph(g, {0, 0, 1, 1}, 2);
  EXPECT_EQ(q.num_vertices(), 2);
  EXPECT_EQ(q.num_edges(), 1);
  EXPECT_DOUBLE_EQ(q.edge_bytes(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(q.vertex_weight(0), 3.0);
  EXPECT_DOUBLE_EQ(q.vertex_weight(1), 3.0);
}

TEST(Quotient, EmptyGroupsAllowed) {
  TaskGraph::Builder b("pair");
  b.add_vertices(2);
  b.add_edge(0, 1, 5.0);
  const TaskGraph g = std::move(b).build();
  const TaskGraph q = quotient_graph(g, {0, 2}, 3);
  EXPECT_EQ(q.num_vertices(), 3);
  EXPECT_DOUBLE_EQ(q.vertex_weight(1), 0.0);
  EXPECT_DOUBLE_EQ(q.edge_bytes(0, 2), 5.0);
}

TEST(Quotient, AverageDegree) {
  const TaskGraph g = ring(10, 1.0);
  EXPECT_DOUBLE_EQ(average_degree(g), 2.0);
}

}  // namespace
}  // namespace topomap::graph
