// Service telemetry plane coverage: the topomap.svc.metrics /
// topomap.svc.flight schemas (round-trip + strict negatives), Prometheus
// exposition, flight-recorder wraparound, event-log rotation at the size
// boundary, and the daemon e2e contracts — correlation-id uniqueness under
// 64 in-flight requests with the event log and concurrent metrics polling
// active, while served mapping bytes stay byte-identical to a serial run.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "svc/client.hpp"
#include "svc/event_log.hpp"
#include "svc/flight.hpp"
#include "svc/metrics.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace {

using namespace topomap;
using svc::json::Value;

std::string unique_path(const char* tag, const char* suffix) {
  return "/tmp/topomap-telemetry-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + suffix;
}

/// The mixed request set from test_svc.cpp's concurrency suite: four kinds
/// over a handful of machines/seeds, all deterministic.
std::vector<svc::Request> mixed_requests(int count) {
  std::vector<svc::Request> reqs;
  reqs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    svc::Request req;
    req.id = "req-" + std::to_string(i);
    req.seed = static_cast<std::uint64_t>(1 + i % 3);
    switch (i % 4) {
      case 0:
        req.kind = svc::RequestKind::kMap;
        req.tasks = "stencil2d:4x4";
        req.topology = (i % 8 == 0) ? "torus:4x4" : "mesh:4x4";
        req.strategy = "topolb";
        break;
      case 1:
        req.kind = svc::RequestKind::kExplain;
        req.tasks = "stencil2d:4x4";
        req.topology = "torus:4x4";
        req.strategy = "topolb";
        req.baseline = "random";
        break;
      case 2:
        req.kind = svc::RequestKind::kEvacuate;
        req.tasks = "stencil2d:3x4";
        req.topology = "torus:4x4";
        req.strategy = "topolb";
        req.fail_node = "5";
        break;
      default:
        req.kind = svc::RequestKind::kOptimal;
        req.tasks = "stencil2d:3x3";
        req.topology = "torus:3x3";
        req.compare = "topolb";
        break;
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

// ---------------------------------------------------------------- metrics

TEST(SvcMetrics, SnapshotValidatesAndListsEveryRequestKind) {
  svc::Service service;
  svc::Request req;
  req.id = "m";
  req.kind = svc::RequestKind::kMap;
  req.tasks = "stencil2d:4x4";
  req.topology = "torus:4x4";
  ASSERT_TRUE(service.handle(req).ok);

  svc::Request metrics;
  metrics.id = "metrics";
  metrics.kind = svc::RequestKind::kMetrics;
  const svc::Response resp = service.handle(metrics);
  ASSERT_TRUE(resp.ok) << resp.error.message;
  svc::validate_metrics_snapshot(resp.result);  // strict schema round-trip

  const Value& by_kind = resp.result.at("requests").at("by_kind");
  // Every kind is always present, exercised or not — a deterministic key
  // set is what makes two runs' snapshots comparable.
  EXPECT_EQ(by_kind.members().size(),
            static_cast<std::size_t>(svc::kNumRequestKinds));
  EXPECT_EQ(by_kind.at("map").at("served").as_number(), 1.0);
  EXPECT_EQ(by_kind.at("flight").at("served").as_number(), 0.0);
  // The metrics request snapshots state *before* it completes itself.
  EXPECT_EQ(resp.result.at("requests").at("served").as_number(), 1.0);
  EXPECT_EQ(resp.result.at("pool").at("misses").as_number(), 1.0);
  EXPECT_EQ(resp.result.at("bucket_scheme").at("buckets").as_number(),
            static_cast<double>(obs::Histogram::kBucketCount));
}

TEST(SvcMetrics, DeterministicFieldsAreByteIdenticalAcrossSerialRuns) {
  auto run = [] {
    svc::Service service;
    for (const svc::Request& r : mixed_requests(16))
      EXPECT_TRUE(service.handle(r).ok);
    const Value snap = service.metrics_snapshot();
    svc::validate_metrics_snapshot(snap);
    // The deterministic slice: request counts, pool hit/miss/evict, and
    // the bucket-scheme descriptor.  queue_depth and the histogram
    // contents are timing-derived and excluded by contract.
    return snap.at("requests").dump() + "|" + snap.at("pool").dump() + "|" +
           snap.at("bucket_scheme").dump();
  };
  EXPECT_EQ(run(), run());
}

TEST(SvcMetrics, QueueDepthComesFromTheInstalledProbe) {
  svc::Service service;
  EXPECT_EQ(service.metrics_snapshot().at("queue_depth").as_number(), 0.0);
  service.set_queue_depth_probe([] { return std::size_t{3}; });
  EXPECT_EQ(service.metrics_snapshot().at("queue_depth").as_number(), 3.0);
}

TEST(SvcMetrics, ValidatorRejectsMalformedSnapshots) {
  svc::Service service;
  const Value good = service.metrics_snapshot();
  svc::validate_metrics_snapshot(good);

  {
    Value bad = good;
    bad.set("surprise", 1);  // unknown top-level key
    EXPECT_THROW(svc::validate_metrics_snapshot(bad), precondition_error);
  }
  {
    Value bad = good;
    bad.set("schema", "topomap.svc.other");
    EXPECT_THROW(svc::validate_metrics_snapshot(bad), precondition_error);
  }
  {
    Value bad = good;
    bad.set("queue_depth", -1);
    EXPECT_THROW(svc::validate_metrics_snapshot(bad), precondition_error);
  }
  {
    Value bad = good;
    Value pool = bad.at("pool");
    pool.set("hits", 1.5);  // non-integer count
    bad.set("pool", std::move(pool));
    EXPECT_THROW(svc::validate_metrics_snapshot(bad), precondition_error);
  }
  {
    // Histogram whose bucket counts do not sum to its count.
    Value bad = good;
    Value h = Value::object();
    h.set("count", 3);
    h.set("sum", 6.0);
    h.set("min", 2.0);
    h.set("max", 2.0);
    h.set("mean", 2.0);
    h.set("p50", 2.0);
    h.set("p90", 2.0);
    h.set("p99", 2.0);
    Value buckets = Value::array();
    Value triple = Value::array();
    triple.push_back(2.0);
    triple.push_back(2.25);
    triple.push_back(2);  // 2 != count 3
    buckets.push_back(std::move(triple));
    h.set("buckets", std::move(buckets));
    Value hists = Value::object();
    hists.set("svc/map/total_us", std::move(h));
    bad.set("histograms", std::move(hists));
    EXPECT_THROW(svc::validate_metrics_snapshot(bad), precondition_error);
  }
}

TEST(SvcMetrics, PrometheusExpositionCarriesCountersAndGauges) {
  svc::Service service;
  svc::Request req;
  req.id = "m";
  req.kind = svc::RequestKind::kMap;
  req.tasks = "stencil2d:4x4";
  req.topology = "torus:4x4";
  ASSERT_TRUE(service.handle(req).ok);

  const std::string text =
      svc::metrics_to_prometheus(service.metrics_snapshot());
  EXPECT_NE(text.find("topomap_requests_served_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("topomap_requests_by_kind_total{kind=\"map\","
                      "outcome=\"served\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE topomap_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("topomap_pool_events_total{event=\"misses\"} 1\n"),
            std::string::npos);

  Value bad = Value::object();
  bad.set("schema", "nope");
  EXPECT_THROW((void)svc::metrics_to_prometheus(bad), precondition_error);
}

// ----------------------------------------------------------------- flight

TEST(SvcFlight, RingWrapsAroundKeepingTheMostRecentEvents) {
  svc::FlightRecorder ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 20; ++i)
    ring.record("r-" + std::to_string(i), "map", "done",
                static_cast<std::uint64_t>(100 + i),
                static_cast<std::uint64_t>(i));
  EXPECT_EQ(ring.total_recorded(), 20u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);  // only the last capacity events survive
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12u + i);
    EXPECT_STREQ(events[i].stage, "done");
    EXPECT_EQ(std::string(events[i].corr),
              "r-" + std::to_string(12 + i));
  }
  const Value doc = ring.to_json();
  svc::validate_flight_snapshot(doc);  // schema round-trip
  EXPECT_EQ(doc.at("capacity").as_number(), 8.0);
  EXPECT_EQ(doc.at("recorded").as_number(), 20.0);
}

TEST(SvcFlight, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(svc::FlightRecorder(1).capacity(), 8u);  // floor
  EXPECT_EQ(svc::FlightRecorder(9).capacity(), 16u);
  EXPECT_EQ(svc::FlightRecorder(64).capacity(), 64u);
}

TEST(SvcFlight, OverlongFieldsAreTruncatedNotOverflowed) {
  svc::FlightRecorder ring(8);
  ring.record(std::string(100, 'c'), std::string(100, 'k'),
              std::string(100, 's'), 1, 2);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  // Fixed-size char arrays keep the record path allocation-free; long
  // names truncate with the NUL terminator intact.
  EXPECT_EQ(std::string(events[0].corr).size(),
            sizeof(events[0].corr) - 1);
  EXPECT_EQ(std::string(events[0].kind).size(),
            sizeof(events[0].kind) - 1);
}

TEST(SvcFlight, ValidatorRejectsMalformedSnapshots) {
  svc::FlightRecorder ring(8);
  ring.record("r-1", "map", "done", 10, 5);
  Value good = ring.to_json();
  svc::validate_flight_snapshot(good);

  {
    Value bad = good;
    bad.set("extra", 1);
    EXPECT_THROW(svc::validate_flight_snapshot(bad), precondition_error);
  }
  {
    Value bad = good;
    Value ev = Value::object();
    ev.set("seq", 0);
    ev.set("t_ns", 1);
    ev.set("dur_ns", 0);
    ev.set("corr", "");  // empty correlation id
    ev.set("kind", "map");
    ev.set("stage", "done");
    Value events = Value::array();
    events.push_back(std::move(ev));
    bad.set("events", std::move(events));
    EXPECT_THROW(svc::validate_flight_snapshot(bad), precondition_error);
  }
  {
    // Descending seq order.
    Value bad = good;
    Value events = Value::array();
    for (int seq : {5, 3}) {
      Value ev = Value::object();
      ev.set("seq", seq);
      ev.set("t_ns", 1);
      ev.set("dur_ns", 0);
      ev.set("corr", "r-1");
      ev.set("kind", "map");
      ev.set("stage", "done");
      events.push_back(std::move(ev));
    }
    bad.set("events", std::move(events));
    EXPECT_THROW(svc::validate_flight_snapshot(bad), precondition_error);
  }
}

TEST(SvcFlight, ServiceFlightRequestReturnsValidSnapshot) {
  svc::Service service;
  svc::Request req;
  req.id = "m";
  req.kind = svc::RequestKind::kMap;
  req.tasks = "stencil2d:4x4";
  req.topology = "torus:4x4";
  ASSERT_TRUE(service.handle(req).ok);

  svc::Request flight;
  flight.id = "f";
  flight.kind = svc::RequestKind::kFlight;
  const svc::Response resp = service.handle(flight);
  ASSERT_TRUE(resp.ok) << resp.error.message;
  svc::validate_flight_snapshot(resp.result);
  // Direct handle() calls record acquire + done; the map request must
  // appear with its minted correlation id.
  bool saw_map_done = false;
  for (const Value& ev : resp.result.at("events").items())
    if (ev.at("kind").as_string() == "map" &&
        ev.at("stage").as_string() == "done") {
      saw_map_done = true;
      EXPECT_EQ(ev.at("corr").as_string().rfind("r-", 0), 0u);
    }
  EXPECT_TRUE(saw_map_done);
}

// -------------------------------------------------------------- event log

TEST(SvcEventLog, RotatesExactlyAtTheSizeBoundary) {
  const std::string path = unique_path("rotate", ".jsonl");
  const std::string rotated = path + ".1";
  std::remove(path.c_str());
  std::remove(rotated.c_str());

  {
    svc::EventLog log;
    log.open(path, /*max_bytes=*/100);
    ASSERT_TRUE(log.active());
    const std::string line(60, 'a');  // 61 bytes with the newline
    log.append(line);
    EXPECT_EQ(log.rotations(), 0u);  // 61 <= 100: no rotation
    log.append(line);                // 61 + 61 > 100: rotate first
    EXPECT_EQ(log.rotations(), 1u);

    std::ifstream old_file(rotated);
    ASSERT_TRUE(old_file.good());
    std::string got;
    std::getline(old_file, got);
    EXPECT_EQ(got, line);  // the rotated file holds the pre-rotation line

    std::ifstream current(path);
    std::getline(current, got);
    EXPECT_EQ(got, line);
    EXPECT_FALSE(std::getline(current, got));  // exactly one line
  }
  std::remove(path.c_str());
  std::remove(rotated.c_str());
}

TEST(SvcEventLog, OversizedSingleLineIsStillWritten) {
  const std::string path = unique_path("oversize", ".jsonl");
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  {
    svc::EventLog log;
    log.open(path, /*max_bytes=*/10);
    log.append(std::string(50, 'x'));  // larger than max_bytes on its own
    EXPECT_EQ(log.rotations(), 0u);    // an empty log never rotates first
    std::ifstream f(path);
    std::string got;
    std::getline(f, got);
    EXPECT_EQ(got.size(), 50u);
  }
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(SvcEventLog, InactiveByDefaultAndOpenFailureThrows) {
  svc::EventLog log;
  EXPECT_FALSE(log.active());
  log.append("dropped");  // no-op, not a crash
  svc::EventLog bad;
  EXPECT_THROW(bad.open("/nonexistent-dir/x/y.jsonl", 1000), io_error);
}

// ----------------------------------------------------------------- daemon

// The tentpole e2e contract: 64 in-flight requests against the daemon with
// the event log enabled and a metrics poller running concurrently must (a)
// serve byte-identical responses to a serial single-threaded execution,
// and (b) log exactly one lifecycle line per request, every correlation id
// unique.
TEST(SvcServer, CorrelationIdsUniqueAndBytesIdenticalWithTelemetryActive) {
  const std::vector<svc::Request> reqs = mixed_requests(64);

  // Serial ground truth: a fresh Service, no telemetry options.
  std::vector<std::string> expected;
  {
    svc::Service serial;
    for (const svc::Request& r : reqs)
      expected.push_back(serial.handle(r).to_json().dump());
  }

  const std::string log_path = unique_path("corr", ".jsonl");
  std::remove(log_path.c_str());
  std::remove((log_path + ".1").c_str());

  svc::ServerOptions options;
  options.socket_path = unique_path("corr", ".sock");
  options.workers = 8;
  options.queue_capacity = 16;  // backpressure engages under the burst
  options.service.event_log_path = log_path;
  options.service.flight_capacity = 32;  // smaller than the event count:
                                         // the ring wraps mid-run
  svc::Server server(options);
  server.start();
  {
    constexpr int kClients = 8;
    std::vector<std::string> got(reqs.size());
    std::atomic<std::size_t> next{0};
    std::atomic<bool> polling{true};
    // Concurrent metrics poller: telemetry reads must never perturb
    // served bytes.
    std::thread poller([&] {
      svc::Client client = svc::Client::connect_unix(options.socket_path);
      svc::Request metrics;
      metrics.id = "poll";
      metrics.kind = svc::RequestKind::kMetrics;
      while (polling.load()) {
        const svc::Response resp = client.call(metrics);
        ASSERT_TRUE(resp.ok) << resp.error.message;
        svc::validate_metrics_snapshot(resp.result);
      }
    });
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        svc::Client client = svc::Client::connect_unix(options.socket_path);
        for (std::size_t i = next.fetch_add(1); i < reqs.size();
             i = next.fetch_add(1))
          got[i] = client.call(reqs[i]).to_json().dump();
      });
    }
    for (auto& t : clients) t.join();
    polling.store(false);
    poller.join();
    for (std::size_t i = 0; i < reqs.size(); ++i)
      EXPECT_EQ(got[i], expected[i]) << "request " << reqs[i].id;

    // The flight ring survived the wraparound and still validates.
    svc::Client client = svc::Client::connect_unix(options.socket_path);
    svc::Request flight;
    flight.id = "f";
    flight.kind = svc::RequestKind::kFlight;
    const svc::Response fresp = client.call(flight);
    ASSERT_TRUE(fresp.ok) << fresp.error.message;
    svc::validate_flight_snapshot(fresp.result);
    EXPECT_LE(fresp.result.at("events").size(), 32u);
  }
  server.stop();
  server.join();

  // One event-log line per request, every correlation id unique.
  std::ifstream log(log_path);
  ASSERT_TRUE(log.good());
  std::set<std::string> corrs;
  std::map<std::string, int> lines_per_id;
  std::string line;
  while (std::getline(log, line)) {
    const Value doc = Value::parse(line);
    const std::string corr = doc.at("corr").as_string();
    EXPECT_TRUE(corrs.insert(corr).second) << "duplicate corr " << corr;
    EXPECT_TRUE(doc.at("ok").as_bool());
    EXPECT_GE(doc.at("total_us").as_number(),
              doc.at("kernel_us").as_number());
    ++lines_per_id[doc.at("id").as_string()];
  }
  for (const svc::Request& r : reqs)
    EXPECT_EQ(lines_per_id[r.id], 1) << r.id;

  std::remove(log_path.c_str());
  std::remove((log_path + ".1").c_str());
}

}  // namespace
