// Task-graph factory: spec parsing, file round-trips, error diagnosis.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/builders.hpp"
#include "graph/factory.hpp"
#include "support/error.hpp"

namespace topomap::graph {
namespace {

TEST(GraphFactory, ParsesEveryKind) {
  Rng rng(1);
  EXPECT_EQ(make_task_graph("stencil2d:6x4", rng).num_vertices(), 24);
  EXPECT_EQ(make_task_graph("stencil3d:2x3x4", rng).num_vertices(), 24);
  EXPECT_EQ(make_task_graph("ring:9", rng).num_vertices(), 9);
  EXPECT_EQ(make_task_graph("complete:5", rng).num_edges(), 10);
  EXPECT_EQ(make_task_graph("transpose:4", rng).num_vertices(), 16);
  EXPECT_EQ(make_task_graph("butterfly:4", rng).num_vertices(), 16);
  EXPECT_EQ(make_task_graph("er:30:0.2", rng).num_vertices(), 30);
  EXPECT_EQ(make_task_graph("rgg:40:0.3", rng).num_vertices(), 40);
  EXPECT_GT(make_task_graph("md:3x3x3", rng).num_vertices(), 27);
}

TEST(GraphFactory, BytesParameterHonored) {
  Rng rng(1);
  const TaskGraph g = make_task_graph("stencil2d:4x4:512", rng);
  for (const auto& e : g.edges()) EXPECT_DOUBLE_EQ(e.bytes, 512.0);
  const TaskGraph d = make_task_graph("ring:5", rng);
  for (const auto& e : d.edges()) EXPECT_DOUBLE_EQ(e.bytes, 1024.0);
}

TEST(GraphFactory, MdAtomsParameter) {
  Rng rng(2);
  const TaskGraph g = make_task_graph("md:3x3x3:50", rng);
  // Cell weights ~ atoms; with 50 atoms/cell, cell loads are in
  // [35, 65] (spread 0.3).
  for (int c = 0; c < 27; ++c) {
    EXPECT_GE(g.vertex_weight(c), 35.0 - 1e-9);
    EXPECT_LE(g.vertex_weight(c), 65.0 + 1e-9);
  }
}

TEST(GraphFactory, RejectsMalformedSpecs) {
  Rng rng(1);
  EXPECT_THROW(make_task_graph("stencil2d", rng), precondition_error);
  EXPECT_THROW(make_task_graph("stencil2d:4", rng), precondition_error);
  EXPECT_THROW(make_task_graph("nope:4x4", rng), precondition_error);
  EXPECT_THROW(make_task_graph("er:30", rng), precondition_error);
  EXPECT_THROW(make_task_graph("stencil2d:axb", rng), precondition_error);
  EXPECT_THROW(make_task_graph("file:/does/not/exist", rng),
               precondition_error);
}

TEST(GraphFactory, FileRoundTrip) {
  Rng rng(5);
  const TaskGraph g = random_graph(20, 0.3, 1.0, 64.0, rng);
  std::stringstream ss;
  write_task_graph(ss, g);
  const TaskGraph back = read_task_graph(ss);
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (const auto& e : g.edges())
    EXPECT_NEAR(back.edge_bytes(e.a, e.b), e.bytes, 1e-9);
}

TEST(GraphFactory, ReadRejectsBadFiles) {
  std::stringstream missing_header("0 1 5\n");
  EXPECT_THROW(read_task_graph(missing_header), precondition_error);
  std::stringstream bad_edge("tasks 2\n0 oops 5\n");
  EXPECT_THROW(read_task_graph(bad_edge), precondition_error);
  std::stringstream comments_ok("# hello\ntasks 2\n# edge\n0 1 5\n");
  EXPECT_EQ(read_task_graph(comments_ok).num_edges(), 1);
}

TEST(GraphFactory, RandomFamiliesUseTheRng) {
  Rng a(1), b(1), c(2);
  const TaskGraph ga = make_task_graph("er:30:0.2", a);
  const TaskGraph gb = make_task_graph("er:30:0.2", b);
  const TaskGraph gc = make_task_graph("er:30:0.2", c);
  EXPECT_EQ(ga.num_edges(), gb.num_edges());
  bool differs = ga.num_edges() != gc.num_edges();
  if (!differs && ga.num_edges() > 0)
    differs = !(ga.edges()[0].a == gc.edges()[0].a &&
                ga.edges()[0].b == gc.edges()[0].b);
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace topomap::graph
