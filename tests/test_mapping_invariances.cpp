// Metamorphic invariance properties of every gated mapping strategy:
//
//  * task relabeling   running a strategy on a vertex-permuted copy of the
//                      graph and transporting its mapping back must give
//                      the same hop-bytes as evaluating the permuted pair
//                      directly — relabeling is pure renaming;
//  * machine automorphisms   composing any mapping with a distance-
//                      preserving processor permutation (torus translation,
//                      mesh reflection, square-grid axis swap) never
//                      changes hop-bytes;
//  * thread count      the same spec with the same seed produces the same
//                      mapping at 1 and at 4 pool threads;
//  * oracle invariance the exact optimum is invariant under task
//                      relabeling (the search order changes, the value
//                      cannot).
//
// All graphs carry integer byte weights against integer distances, so the
// equalities are exact (operator==, no tolerance).
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "core/metrics.hpp"
#include "core/optimal_lb.hpp"
#include "core/strategy.hpp"
#include "graph/builders.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "tests/oracle_corpus.hpp"
#include "topo/distance_cache.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::core {
namespace {

using oracle::gated_strategy_specs;
using topo::TorusMesh;

/// The same graph with vertex v renamed to perm[v].
graph::TaskGraph relabel(const graph::TaskGraph& g,
                         const std::vector<int>& perm) {
  graph::TaskGraph::Builder b(g.label() + "+relabel");
  b.add_vertices(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v)
    b.set_vertex_weight(perm[static_cast<std::size_t>(v)], g.vertex_weight(v));
  for (const graph::UndirectedEdge& e : g.edges())
    b.add_edge(perm[static_cast<std::size_t>(e.a)],
               perm[static_cast<std::size_t>(e.b)], e.bytes);
  return std::move(b).build();
}

/// Processor permutation from a per-coordinate map on a TorusMesh.
template <typename CoordMap>
std::vector<int> grid_automorphism(const TorusMesh& t, CoordMap&& f) {
  std::vector<int> sigma(static_cast<std::size_t>(t.size()));
  for (int p = 0; p < t.size(); ++p)
    sigma[static_cast<std::size_t>(p)] = t.index(f(t.coords(p)));
  return sigma;
}

/// A deterministic non-trivial permutation of [0, n).
std::vector<int> test_permutation(int n, std::uint64_t seed) {
  Rng rng(seed);
  return rng.permutation(n);
}

struct Fixture {
  graph::TaskGraph g;
  TorusMesh machine;
  std::string name;
};

std::vector<Fixture> fixtures() {
  std::vector<Fixture> f;
  f.push_back({graph::stencil_2d(4, 3, 64.0), TorusMesh::torus({4, 3}),
               "stencil4x3/torus4x3"});
  f.push_back({oracle::integer_er_graph(12, 0xBEEFULL),
               TorusMesh::mesh({4, 3}), "er12/mesh4x3"});
  return f;
}

TEST(MappingInvariances, TaskRelabelingIsPureRenaming) {
  const int saved = support::num_threads();
  for (int threads : {1, 4}) {
    support::set_num_threads(threads);
    for (const Fixture& fx : fixtures()) {
      const topo::DistanceCache plane(fx.machine);
      const std::vector<int> perm =
          test_permutation(fx.g.num_vertices(), 0xFACEULL);
      const graph::TaskGraph relabeled = relabel(fx.g, perm);
      for (const std::string& spec : gated_strategy_specs()) {
        SCOPED_TRACE(fx.name + " / " + spec + " @" + std::to_string(threads));
        Rng rng(99);
        const Mapping m = make_strategy(spec)->map(relabeled, fx.machine, rng);
        // Transport back: original task v is relabeled vertex perm[v].
        Mapping transported(m.size());
        for (int v = 0; v < fx.g.num_vertices(); ++v)
          transported[static_cast<std::size_t>(v)] =
              m[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])];
        EXPECT_EQ(hop_bytes(fx.g, plane, transported),
                  hop_bytes(relabeled, plane, m));
      }
    }
  }
  support::set_num_threads(saved);
}

TEST(MappingInvariances, MachineAutomorphismsPreserveHopBytes) {
  const int saved = support::num_threads();
  for (int threads : {1, 4}) {
    support::set_num_threads(threads);
    // Torus: translation along each wrapped axis.  Mesh: reflection of
    // each open axis.  Square torus: the two axes swap.
    const graph::TaskGraph g = graph::stencil_2d(3, 3, 64.0);
    const TorusMesh torus = TorusMesh::torus({3, 3});
    const TorusMesh mesh = TorusMesh::mesh({3, 3});
    std::vector<std::pair<std::string, std::vector<int>>> autos;
    autos.emplace_back("translate-x", grid_automorphism(torus, [](std::vector<int> c) {
      c[0] = (c[0] + 1) % 3;
      return c;
    }));
    autos.emplace_back("translate-y", grid_automorphism(torus, [](std::vector<int> c) {
      c[1] = (c[1] + 2) % 3;
      return c;
    }));
    autos.emplace_back("swap-axes", grid_automorphism(torus, [](std::vector<int> c) {
      std::swap(c[0], c[1]);
      return c;
    }));
    std::vector<std::pair<std::string, std::vector<int>>> mesh_autos;
    mesh_autos.emplace_back("reflect-x", grid_automorphism(mesh, [](std::vector<int> c) {
      c[0] = 2 - c[0];
      return c;
    }));
    mesh_autos.emplace_back("reflect-y", grid_automorphism(mesh, [](std::vector<int> c) {
      c[1] = 2 - c[1];
      return c;
    }));
    const auto check_machine =
        [&](const TorusMesh& machine,
            const std::vector<std::pair<std::string, std::vector<int>>>&
                machine_autos) {
          const topo::DistanceCache plane(machine);
          for (const std::string& spec : gated_strategy_specs()) {
            Rng rng(1234);
            const Mapping m = make_strategy(spec)->map(g, machine, rng);
            const double base = hop_bytes(g, plane, m);
            for (const auto& [aname, sigma] : machine_autos) {
              SCOPED_TRACE(machine.name() + " / " + spec + " / " + aname +
                           " @" + std::to_string(threads));
              Mapping composed(m.size());
              for (std::size_t v = 0; v < m.size(); ++v)
                composed[v] = sigma[static_cast<std::size_t>(m[v])];
              EXPECT_EQ(hop_bytes(g, plane, composed), base);
            }
          }
        };
    check_machine(torus, autos);
    check_machine(mesh, mesh_autos);
  }
  support::set_num_threads(saved);
}

TEST(MappingInvariances, MappingsAreIdenticalAtOneAndFourThreads) {
  const int saved = support::num_threads();
  for (const Fixture& fx : fixtures()) {
    for (const std::string& spec : gated_strategy_specs()) {
      SCOPED_TRACE(fx.name + " / " + spec);
      support::set_num_threads(1);
      Rng rng1(2026);
      const Mapping serial = make_strategy(spec)->map(fx.g, fx.machine, rng1);
      support::set_num_threads(4);
      Rng rng4(2026);
      const Mapping parallel = make_strategy(spec)->map(fx.g, fx.machine, rng4);
      EXPECT_EQ(serial, parallel);
    }
  }
  support::set_num_threads(saved);
}

TEST(MappingInvariances, OracleOptimumIsInvariantUnderTaskRelabeling) {
  for (const oracle::OracleInstance& inst : oracle::oracle_corpus()) {
    SCOPED_TRACE(inst.name);
    const std::vector<int> perm =
        test_permutation(inst.g.num_vertices(), 0xD00DULL);
    const OptimalResult direct = find_optimal_mapping(inst.g, *inst.machine);
    const OptimalResult renamed =
        find_optimal_mapping(relabel(inst.g, perm), *inst.machine);
    EXPECT_EQ(direct.hop_bytes, renamed.hop_bytes);
  }
}

}  // namespace
}  // namespace topomap::core
