// Negative-path coverage for core::validate_state: each of the documented
// corruption classes must be detected and named in the report, and a
// healthy system must validate clean.  The CLI surfaces these reports as
// invariant errors (exit code 3) via `topomap chaos --drill=...`, asserted
// end to end by scripts/smoke_test.sh.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "core/strategy.hpp"
#include "core/validate.hpp"
#include "graph/builders.hpp"
#include "support/rng.hpp"
#include "topo/distance_cache.hpp"
#include "topo/fault_overlay.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::core {
namespace {

bool mentions(const ValidationReport& report, const std::string& needle) {
  return report.summary().find(needle) != std::string::npos;
}

/// A healthy mapped 8-task system on a 4x2 mesh with a live plane.
struct Harness {
  graph::TaskGraph g = graph::stencil_2d(4, 2, 64.0);
  std::shared_ptr<topo::TorusMesh> base =
      std::make_shared<topo::TorusMesh>(topo::TorusMesh::mesh({4, 2}));
  topo::FaultOverlay overlay{base};
  topo::DistanceCache plane{overlay};
  Mapping placement;
  std::vector<char> quarantined;

  Harness() {
    Rng rng(11);
    placement = make_strategy("topolb")->map(g, overlay, rng);
    quarantined.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  }

  SystemState state() const {
    SystemState st;
    st.graph = &g;
    st.overlay = &overlay;
    st.placement = &placement;
    st.quarantined = &quarantined;
    st.plane = &plane;
    return st;
  }
};

TEST(ValidateState, HealthySystemValidatesClean) {
  Harness h;
  const ValidationReport report = validate_state(h.state());
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.summary(), "ok");
}

TEST(ValidateState, DetectsTaskPlacedOnDeadProcessor) {
  Harness h;
  // The processor dies and the plane is repaired faithfully, but the
  // placement was never migrated: exactly the corruption the dynamic
  // runtime's recovery path exists to prevent.
  const int victim = h.placement[0];
  h.overlay.fail_node(victim);
  h.plane.repair_node_failure(h.overlay, victim);
  const ValidationReport report = validate_state(h.state());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "placed on dead processor")) << report.summary();
}

TEST(ValidateState, DetectsActiveTaskLeftUnplaced) {
  Harness h;
  // Unassigning a task without quarantining it: an active task must
  // always have a seat.
  h.placement[0] = kUnassigned;
  const ValidationReport report = validate_state(h.state());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "is active but unplaced")) << report.summary();
}

TEST(ValidateState, QuarantinedTaskMayBeUnplaced) {
  Harness h;
  h.placement[0] = kUnassigned;
  h.quarantined[0] = 1;
  const ValidationReport report = validate_state(h.state());
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ValidateState, DetectsStaleQuarantineList) {
  Harness h;
  // A quarantine list sized for a previous epoch's task count.
  h.quarantined.resize(static_cast<std::size_t>(h.g.num_vertices()) - 2);
  const ValidationReport report = validate_state(h.state());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "quarantine flags have")) << report.summary();
}

TEST(ValidateState, DetectsPlaneScaleSkewAfterUnrepairedDegrade) {
  Harness h;
  // A soft fault flips the overlay into fixed-point units; a plane that
  // missed the repair event still carries hop units — version skew.
  h.overlay.degrade_link(0, 1, 0.5);
  const ValidationReport report = validate_state(h.state());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "plane scale")) << report.summary();
}

TEST(ValidateState, DetectsStalePlaneRowAfterUnrepairedLinkFailure) {
  Harness h;
  // Hard link fault with no plane repair: same scale, stale distances.
  h.overlay.fail_link(0, 1);
  // Keep the placement legal (all processors alive) — the only corruption
  // is the un-repaired plane.
  const ValidationReport report = validate_state(h.state());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "differs from a fresh rebuild"))
      << report.summary();
}

TEST(ValidateState, DetectsGroupCapacityViolation) {
  Harness h;
  // Two groups claiming one processor: capacity is one group per seat.
  std::vector<int> groups(static_cast<std::size_t>(h.g.num_vertices()));
  for (int t = 0; t < h.g.num_vertices(); ++t)
    groups[static_cast<std::size_t>(t)] = t;
  Mapping group_mapping = h.placement;
  group_mapping[1] = group_mapping[0];
  SystemState st = h.state();
  st.groups = &groups;
  st.group_mapping = &group_mapping;
  const ValidationReport report = validate_state(st);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "capacity violated")) << report.summary();
}

}  // namespace
}  // namespace topomap::core
