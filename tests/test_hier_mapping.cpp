// HierTopoLB tests: projection exactness of the multilevel pipeline,
// thread-count invariance of the scale-up path, empty-group quotient
// vertices under every strategy spec, and the overflow regressions for
// byte totals crossing 2^31 (DESIGN.md §12).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/hier_topo_lb.hpp"
#include "core/metrics.hpp"
#include "core/strategy.hpp"
#include "graph/builders.hpp"
#include "graph/quotient.hpp"
#include "partition/multilevel.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "topo/factory.hpp"

namespace topomap::core {
namespace {

using graph::TaskGraph;

HierOptions projection_only() {
  HierOptions o;
  o.refine_passes = 0;
  o.coarse_refine_passes = 0;
  return o;
}

/// With refinement disabled and no machine contraction, the fine mapping
/// is exactly the coarse mapping read through the composed assignment, and
/// the fine hop-bytes equal the quotient hop-bytes: bytes that vanish into
/// coarse vertices are precisely the intra-group bytes, which travel zero
/// hops.
TEST(HierProjection, ExactAcrossTopologies) {
  const TaskGraph g = graph::stencil_2d(32, 32, 1.0);
  for (const char* spec : {"torus:4x4x4", "mesh:8x8", "hypercube:6"}) {
    SCOPED_TRACE(spec);
    const auto t = topo::make_topology(spec);
    ASSERT_EQ(t->size(), 64);
    Rng rng(3);
    const HierResult r = hier_map(g, *t, rng, projection_only());

    ASSERT_EQ(static_cast<int>(r.mapping.size()), g.num_vertices());
    ASSERT_EQ(static_cast<int>(r.coarse_assignment.size()), g.num_vertices());
    ASSERT_EQ(static_cast<int>(r.coarse_mapping.size()), t->size());
    ASSERT_EQ(r.quotient.num_vertices(), t->size());
    EXPECT_GT(r.task_levels, 0);
    EXPECT_EQ(r.topo_levels, 0);

    // Pure projection: fine placement == coarse placement of the group.
    for (int v = 0; v < g.num_vertices(); ++v) {
      ASSERT_GE(r.coarse_assignment[v], 0);
      ASSERT_LT(r.coarse_assignment[v], t->size());
      ASSERT_EQ(r.mapping[v], r.coarse_mapping[r.coarse_assignment[v]]);
    }

    // Coarse hop-bytes == projected fine hop-bytes (exact: unit bytes).
    const double fine_hb = hop_bytes(g, *t, r.mapping);
    const double coarse_hb = hop_bytes(r.quotient, *t, r.coarse_mapping);
    EXPECT_DOUBLE_EQ(fine_hb, coarse_hb);
    EXPECT_DOUBLE_EQ(coarse_hb, r.coarse_hop_bytes);
    ASSERT_FALSE(r.trajectory.empty());
    EXPECT_DOUBLE_EQ(r.trajectory.back().hop_bytes, fine_hb);
    EXPECT_EQ(r.trajectory.back().vertices, g.num_vertices());

    // Vanished bytes == intra-group bytes.
    double intra = 0.0;
    for (const auto& e : g.edges())
      if (r.coarse_assignment[e.a] == r.coarse_assignment[e.b])
        intra += e.bytes;
    EXPECT_DOUBLE_EQ(g.total_comm_bytes() - r.quotient.total_comm_bytes(),
                     intra);
  }
}

TEST(HierProjection, BalancedManyToOne) {
  const TaskGraph g = graph::stencil_2d(32, 32, 1.0);
  const auto t = topo::make_topology("torus:4x4x4");
  Rng rng(3);
  const HierResult r = hier_map(g, *t, rng);
  std::vector<int> load(64, 0);
  for (int p : r.mapping) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 64);
    ++load[p];
  }
  const int ideal = g.num_vertices() / t->size();  // 16
  for (int p = 0; p < 64; ++p) {
    EXPECT_GT(load[p], 0) << "processor " << p << " left empty";
    EXPECT_LE(load[p], 2 * ideal) << "processor " << p << " overloaded";
  }
}

TEST(HierMapping, SquareBypassMatchesFlatQuality) {
  // n == p within flat_square_cap: the hierarchy must not engage, so the
  // result is a bijection whose hop-bytes never trail flat TopoLB's.
  const TaskGraph g = graph::stencil_3d(8, 8, 8, 1.0);
  const auto t = topo::make_topology("torus:8x8x8");
  Rng rng_h(3), rng_f(3);
  const HierResult r = hier_map(g, *t, rng_h);
  EXPECT_EQ(r.topo_levels, 0);
  EXPECT_EQ(r.task_levels, 0);
  std::vector<int> sorted = r.mapping;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < t->size(); ++i) ASSERT_EQ(sorted[i], i);
  const auto flat = make_strategy("topolb");
  const double flat_hb = hop_bytes(g, *t, flat->map(g, *t, rng_f));
  EXPECT_LE(hop_bytes(g, *t, r.mapping), flat_hb * 1.0 + 1e-9);
}

/// The full contracted pipeline (machine coarsening, quota splits, swap
/// passes) is byte-identical for any worker-pool width at a fixed seed.
TEST(HierMapping, ThreadInvarianceOnContractedPath) {
  const TaskGraph g = graph::stencil_3d(12, 12, 12, 1.0);
  const auto t = topo::make_topology("torus:8x8x8");
  HierOptions o;
  o.flat_proc_cap = 64;  // force machine contraction on a 512-proc torus
  o.flat_square_cap = 0;

  const auto run = [&](int threads) {
    support::set_num_threads(threads);
    Rng rng(11);
    return hier_map(g, *t, rng, o);
  };
  const HierResult one = run(1);
  const HierResult four = run(4);
  support::set_num_threads(1);

  EXPECT_GT(one.topo_levels, 0);
  EXPECT_EQ(one.mapping, four.mapping);
  EXPECT_EQ(one.coarse_assignment, four.coarse_assignment);
  EXPECT_EQ(one.coarse_mapping, four.coarse_mapping);
  EXPECT_EQ(one.swaps, four.swaps);
  ASSERT_EQ(one.trajectory.size(), four.trajectory.size());
  for (std::size_t i = 0; i < one.trajectory.size(); ++i)
    EXPECT_DOUBLE_EQ(one.trajectory[i].hop_bytes,
                     four.trajectory[i].hop_bytes);

  // And deterministic across repeated runs at the same width.
  const HierResult again = run(4);
  support::set_num_threads(1);
  EXPECT_EQ(four.mapping, again.mapping);
}

TEST(Coarsener, ThreadInvariantForFixedSeed) {
  const TaskGraph g = graph::stencil_2d(16, 16, 1.0);
  const auto run = [&](int threads) {
    support::set_num_threads(threads);
    Rng rng(7);
    part::CoarseLevel level;
    EXPECT_TRUE(part::coarsen_once(g, 1e9, rng, &level));
    return level;
  };
  const part::CoarseLevel one = run(1);
  const part::CoarseLevel four = run(4);
  support::set_num_threads(1);
  EXPECT_EQ(one.fine_to_coarse, four.fine_to_coarse);
  ASSERT_EQ(one.coarse.num_vertices(), four.coarse.num_vertices());
  ASSERT_EQ(one.coarse.num_edges(), four.coarse.num_edges());
  for (int i = 0; i < one.coarse.num_edges(); ++i) {
    EXPECT_EQ(one.coarse.edges()[i].a, four.coarse.edges()[i].a);
    EXPECT_EQ(one.coarse.edges()[i].b, four.coarse.edges()[i].b);
    EXPECT_DOUBLE_EQ(one.coarse.edges()[i].bytes, four.coarse.edges()[i].bytes);
  }
}

/// Empty quotient groups (isolated zero-weight vertices) must not skew or
/// crash any strategy: every spec still returns a bijection.
TEST(EmptyGroups, AllStrategySpecsMapThem) {
  const TaskGraph g = graph::stencil_2d(4, 4, 2.0);
  // 16 tasks into 8 groups, leaving groups 3 and 5 empty.
  std::vector<int> assignment(16);
  const int used[] = {0, 1, 2, 4, 6, 7};
  for (int v = 0; v < 16; ++v) assignment[v] = used[v % 6];
  const TaskGraph q = graph::quotient_graph(g, assignment, 8);
  ASSERT_EQ(q.num_vertices(), 8);
  EXPECT_DOUBLE_EQ(q.vertex_weight(3), 0.0);
  EXPECT_DOUBLE_EQ(q.vertex_weight(5), 0.0);
  EXPECT_DOUBLE_EQ(q.comm_bytes(3), 0.0);

  const auto t = topo::make_topology("mesh:2x4");
  for (const char* spec :
       {"random", "greedy", "topocent", "topolb", "topolb1", "topolb3",
        "recursive", "anneal", "anneal-warm", "hier", "hier+refine"}) {
    SCOPED_TRACE(spec);
    Rng rng(5);
    const Mapping m = make_strategy(spec)->map(q, *t, rng);
    std::vector<int> sorted = m;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 8; ++i) ASSERT_EQ(sorted[i], i);
  }
}

TEST(Overflow, BuilderProductsAreGuarded) {
  EXPECT_THROW(graph::stencil_2d(50000, 50000, 1.0), precondition_error);
  EXPECT_THROW(graph::stencil_3d(1300, 1300, 1300, 1.0), precondition_error);
  EXPECT_THROW(graph::transpose(46341, 1.0), precondition_error);
}

/// Byte totals past 2^31 stay exact end to end: graph totals, quotient
/// conservation, and crossing hop-bytes.  3e8 is integral, so double sums
/// of a few hundred terms are exact and the comparisons can be strict.
TEST(Overflow, ByteTotalsPastTwoPow31) {
  const double big = 3e8;
  const TaskGraph g = graph::stencil_2d(8, 8, big);
  const double expect_total = static_cast<double>(g.num_edges()) * big;
  EXPECT_GT(expect_total, 2147483648.0);
  EXPECT_DOUBLE_EQ(g.total_comm_bytes(), expect_total);

  std::vector<int> assignment(64);
  for (int v = 0; v < 64; ++v) assignment[v] = v % 4;
  const TaskGraph q = graph::quotient_graph(g, assignment, 4);
  double intra = 0.0;
  for (const auto& e : g.edges())
    if (assignment[e.a] == assignment[e.b]) intra += e.bytes;
  EXPECT_DOUBLE_EQ(q.total_comm_bytes() + intra, g.total_comm_bytes());

  // Hier end-to-end: crossing hop-bytes > 2^31, and the trajectory's
  // final entry agrees with the independent metrics sum.
  const auto t = topo::make_topology("mesh:2x2");
  Rng rng(3);
  const HierResult r = hier_map(g, *t, rng);
  const double hb = hop_bytes(g, *t, r.mapping);
  EXPECT_GT(hb, 2147483648.0);
  ASSERT_FALSE(r.trajectory.empty());
  EXPECT_NEAR(r.trajectory.back().hop_bytes, hb, hb * 1e-12);
}

TEST(HierStrategy, FactoryWiring) {
  const auto hier = make_strategy("hier");
  EXPECT_EQ(hier->name(), "HierTopoLB");
  EXPECT_TRUE(hier->supports_oversubscription());
  const auto refined = make_strategy("hier+refine");
  EXPECT_EQ(refined->name(), "HierTopoLB+refine");
  EXPECT_TRUE(refined->supports_oversubscription());
  // Flat strategies still refuse oversubscription.
  EXPECT_FALSE(make_strategy("topolb")->supports_oversubscription());

  const TaskGraph g = graph::stencil_2d(8, 8, 1.0);
  const auto t = topo::make_topology("torus:4x4");
  Rng rng(1);
  const Mapping m = refined->map(g, *t, rng);
  ASSERT_EQ(static_cast<int>(m.size()), 64);
  for (int p : m) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 16);
  }
}

TEST(HierMapping, RejectsFewerTasksThanProcs) {
  const TaskGraph g = graph::stencil_2d(2, 2, 1.0);
  const auto t = topo::make_topology("torus:4x4");
  Rng rng(1);
  EXPECT_THROW(hier_map(g, *t, rng), precondition_error);
}

}  // namespace
}  // namespace topomap::core
