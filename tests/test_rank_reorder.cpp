// AMPI-style rank-reordering facade: matrix parsing, round-trips, and
// end-to-end permutation quality.
#include <gtest/gtest.h>

#include <sstream>

#include "core/metrics.hpp"
#include "graph/builders.hpp"
#include "runtime/rank_reorder.hpp"
#include "support/error.hpp"
#include "topo/factory.hpp"

namespace topomap::rts {
namespace {

TEST(RankReorder, ParsesAndSymmetrisesMatrix) {
  std::stringstream ss(
      "ranks 3\n"
      "0 10 0\n"
      "5 0 2\n"
      "0 0 0\n");
  const graph::TaskGraph g = read_comm_matrix(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.edge_bytes(0, 1), 15.0);  // 10 + 5 symmetrised
  EXPECT_DOUBLE_EQ(g.edge_bytes(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_bytes(0, 2), 0.0);
}

TEST(RankReorder, DiagonalIgnored) {
  std::stringstream ss(
      "ranks 2\n"
      "99 1\n"
      "1 99\n");
  const graph::TaskGraph g = read_comm_matrix(ss);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_bytes(0, 1), 2.0);
}

TEST(RankReorder, RejectsMalformedMatrices) {
  std::stringstream bad_header("procs 3\n");
  EXPECT_THROW(read_comm_matrix(bad_header), precondition_error);
  std::stringstream truncated("ranks 2\n0 1\n");
  EXPECT_THROW(read_comm_matrix(truncated), precondition_error);
  std::stringstream negative("ranks 2\n0 -1\n1 0\n");
  EXPECT_THROW(read_comm_matrix(negative), precondition_error);
  EXPECT_THROW(read_comm_matrix_file("/nonexistent/matrix.txt"),
               precondition_error);
}

TEST(RankReorder, MatrixRoundTripPreservesGraph) {
  Rng rng(5);
  const graph::TaskGraph g = graph::random_graph(12, 0.4, 1.0, 99.0, rng);
  std::stringstream ss;
  write_comm_matrix(ss, g);
  const graph::TaskGraph back = read_comm_matrix(ss);
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (const auto& e : g.edges())
    EXPECT_NEAR(back.edge_bytes(e.a, e.b), e.bytes, 1e-9);
}

TEST(RankReorder, MappingFileRoundTrip) {
  const core::Mapping m{3, 1, 0, 2};
  std::stringstream ss;
  write_rank_mapping(ss, m);
  EXPECT_EQ(read_rank_mapping(ss), m);
  std::stringstream out_of_order("1 0\n0 1\n");
  EXPECT_THROW(read_rank_mapping(out_of_order), precondition_error);
  std::stringstream empty;
  EXPECT_THROW(read_rank_mapping(empty), precondition_error);
}

TEST(RankReorder, EndToEndBeatsInOrderBinding) {
  // A 2D halo pattern whose natural order is bad for a 3D torus.
  const graph::TaskGraph ranks = graph::stencil_2d(8, 8, 4096.0);
  const auto machine = topo::make_topology("torus:4x4x4");
  Rng rng(3);
  const core::Mapping m = reorder_ranks(
      ranks, *machine, *core::make_strategy("topolb"), rng);
  EXPECT_TRUE(core::is_one_to_one(m, *machine));
  EXPECT_LT(core::hops_per_byte(ranks, *machine, m),
            core::hops_per_byte(ranks, *machine,
                                core::identity_mapping(64)));
}

TEST(RankReorder, RequiresOneRankPerProcessor) {
  const graph::TaskGraph ranks = graph::stencil_2d(3, 3, 1.0);
  const auto machine = topo::make_topology("torus:4x4");
  Rng rng(1);
  EXPECT_THROW(
      reorder_ranks(ranks, *machine, *core::make_strategy("topolb"), rng),
      precondition_error);
}

}  // namespace
}  // namespace topomap::rts
