// Chaos-resilience coverage: restore-path plane repairs property-tested
// against from-scratch rebuilds, partition-tolerant mapping and quarantine,
// self-validation (validate_state), the seeded chaos generator, and the
// dynamic runtime's repair-or-rebuild soak loop — all byte-deterministic
// across thread counts.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/fault_aware.hpp"
#include "core/mapping.hpp"
#include "core/strategy.hpp"
#include "core/validate.hpp"
#include "graph/builders.hpp"
#include "graph/task_graph.hpp"
#include "partition/partition.hpp"
#include "runtime/chaos.hpp"
#include "runtime/dynamic_lb.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "topo/components.hpp"
#include "topo/distance_cache.hpp"
#include "topo/factory.hpp"
#include "topo/fault_overlay.hpp"

namespace topomap {
namespace {

using core::Mapping;
using topo::DistanceCache;
using topo::FaultOverlay;
using topo::make_topology;

// ---------------------------------------------------------------------------
// Restore-path plane repair == rebuild (the exactness property the
// repair-or-rebuild loop depends on)
// ---------------------------------------------------------------------------

void expect_plane_matches_rebuild(const DistanceCache& repaired,
                                  const FaultOverlay& overlay,
                                  const std::string& context) {
  DistanceCache fresh(overlay);
  const int n = repaired.size();
  ASSERT_EQ(fresh.size(), n) << context;
  EXPECT_EQ(repaired.scale(), fresh.scale()) << context;
  EXPECT_EQ(repaired.diameter(), fresh.diameter()) << context;
  EXPECT_EQ(std::memcmp(repaired.row(0), fresh.row(0),
                        static_cast<std::size_t>(n) *
                            static_cast<std::size_t>(n) * sizeof(std::uint16_t)),
            0)
      << context;
  for (int p = 0; p < n; ++p)
    EXPECT_DOUBLE_EQ(repaired.mean_distance_from(p),
                     fresh.mean_distance_from(p))
        << context << " row " << p;
}

/// A random, always-applicable event stream over all six kinds: faults when
/// there is something to break, restores when there is something to fix.
/// Link endpoints come from the *base* adjacency, so restores of failed
/// links are reachable and degrades target real wires.
rts::Event random_event(const topo::Topology& base,
                        const FaultOverlay& overlay, Rng& rng) {
  const int n = base.size();
  for (;;) {
    const int kind = static_cast<int>(rng.uniform(6));
    const int a = static_cast<int>(rng.uniform(n));
    const std::vector<int> nbrs = base.neighbors(a);
    const int b = nbrs.empty()
                      ? a
                      : nbrs[static_cast<std::size_t>(
                            rng.uniform(nbrs.size()))];
    switch (kind) {
      case 0:
        if (overlay.num_alive() <= 2) continue;
        return {0, rts::EventKind::kNodeFail, a, 0, 1.0, false};
      case 1:
        return {0, rts::EventKind::kNodeRestore, a, 0, 1.0, false};
      case 2:
        if (a == b) continue;
        return {0, rts::EventKind::kLinkFail, a, b, 1.0, false};
      case 3:
        if (a == b) continue;
        return {0, rts::EventKind::kLinkRestore, a, b, 1.0, false};
      case 4:
        if (a == b) continue;
        return {0, rts::EventKind::kLinkDegrade, a, b,
                0.25 * (1.0 + rng.uniform(3)), false};
      default:
        if (a == b) continue;
        return {0, rts::EventKind::kLinkRestoreHealth, a, b, 1.0, false};
    }
  }
}

TEST(RestoreRepair, RandomEventInterleavingMatchesRebuild) {
  for (int threads : {1, 4}) {
    support::set_num_threads(threads);
    const auto base = make_topology("torus:6x6");
    FaultOverlay overlay(base);
    DistanceCache plane(overlay);
    Rng rng(2024);
    int applied = 0;
    for (int step = 0; step < 120; ++step) {
      const rts::Event ev = random_event(*base, overlay, rng);
      if (rts::apply_event(overlay, &plane, ev).applied) ++applied;
      expect_plane_matches_rebuild(
          plane, overlay,
          "threads=" + std::to_string(threads) + " step=" +
              std::to_string(step));
      if (HasFatalFailure()) return;
    }
    // The stream must actually exercise mutations, not discard them all.
    EXPECT_GT(applied, 40) << "threads=" << threads;
  }
  support::set_num_threads(1);
}

TEST(RestoreRepair, NodeRestoreAfterIsolationIsExact) {
  // Kill every neighbor of a corner, then revive them one by one: the
  // revived row must come back exactly, including the previously
  // unreachable survivor entries.
  const auto base = make_topology("mesh:4x4");
  FaultOverlay overlay(base);
  DistanceCache plane(overlay);
  for (int p : {1, 4}) {  // isolate corner 0
    overlay.fail_node(p);
    plane.repair_node_failure(overlay, p);
  }
  expect_plane_matches_rebuild(plane, overlay, "after isolation");
  for (int p : {4, 1}) {
    overlay.restore_node(p);
    plane.repair_node_restore(overlay, p);
    expect_plane_matches_rebuild(plane, overlay,
                                 "after restoring " + std::to_string(p));
  }
  EXPECT_FALSE(overlay.has_faults());
}

TEST(RestoreRepair, LinkRestoreWithDeadEndpointIsInert) {
  const auto base = make_topology("torus:8");
  FaultOverlay overlay(base);
  DistanceCache plane(overlay);
  overlay.fail_link(2, 3);
  plane.repair_link_failure(overlay, 2, 3);
  overlay.fail_node(3);
  plane.repair_node_failure(overlay, 3);
  // The runtime skips the plane repair for a dead-endpoint restore; the
  // plane must already be correct without one.
  const rts::EventOutcome out = rts::apply_event(
      overlay, &plane, {0, rts::EventKind::kLinkRestore, 2, 3, 1.0, false});
  EXPECT_TRUE(out.applied);
  EXPECT_EQ(out.rows_repaired, 0);
  expect_plane_matches_rebuild(plane, overlay, "dead-endpoint restore");
}

// ---------------------------------------------------------------------------
// Connected components
// ---------------------------------------------------------------------------

TEST(Components, SplitLineMachineOrdersDeterministically) {
  FaultOverlay overlay(make_topology("mesh:5"));
  EXPECT_FALSE(topo::connected_components(overlay).partitioned());
  overlay.fail_node(2);
  const topo::ComponentSplit split = topo::connected_components(overlay);
  ASSERT_EQ(split.count(), 2);
  EXPECT_TRUE(split.partitioned());
  // Sizes tie at 2: the component holding processor 0 is primary.
  EXPECT_EQ(split.primary(), (std::vector<int>{0, 1}));
  EXPECT_EQ(split.components[1], (std::vector<int>{3, 4}));
  const std::string desc = topo::describe_partition(overlay, split);
  EXPECT_NE(desc.find("2 components"), std::string::npos) << desc;
}

TEST(Components, LinkCutsSplitToo) {
  FaultOverlay overlay(make_topology("torus:6"));
  overlay.fail_link(0, 5);
  overlay.fail_link(2, 3);
  const topo::ComponentSplit split = topo::connected_components(overlay);
  ASSERT_EQ(split.count(), 2);
  EXPECT_EQ(split.primary(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(split.components[1], (std::vector<int>{3, 4, 5}));
}

// ---------------------------------------------------------------------------
// Partition-tolerant mapping
// ---------------------------------------------------------------------------

TEST(PartitionMapping, MapOnAliveUsesPrimaryComponentWhenTasksFit) {
  const auto g = graph::ring(2, 8.0);
  FaultOverlay overlay(make_topology("mesh:5"));
  overlay.fail_node(2);  // {0,1} | {3,4}
  const auto strategy = core::make_strategy("topolb");
  Rng rng(3);
  const Mapping m = core::map_on_alive(*strategy, g, overlay, rng);
  ASSERT_EQ(m.size(), 2u);
  for (int proc : m) EXPECT_LT(proc, 2);  // primary = {0, 1}
}

TEST(PartitionMapping, QuarantineKeepsHeaviestCommunicators) {
  // Tasks 0-1 exchange 100 B, tasks 2-3 exchange 1 B; only two processors
  // remain in the primary component, so 2 and 3 must be quarantined.
  graph::TaskGraph::Builder b("quarantine");
  b.add_vertices(4);
  b.add_edge(0, 1, 100.0);
  b.add_edge(2, 3, 1.0);
  const graph::TaskGraph g = std::move(b).build();
  FaultOverlay overlay(make_topology("mesh:5"));
  overlay.fail_node(2);
  const auto strategy = core::make_strategy("topolb");
  Rng rng(3);
  const core::PartitionedMapResult r =
      core::map_on_largest_component(*strategy, g, overlay, rng);
  EXPECT_EQ(r.components, 2);
  EXPECT_EQ(r.primary_size, 2);
  EXPECT_EQ(r.quarantined, (std::vector<int>{2, 3}));
  EXPECT_EQ(r.mapping[2], core::kUnassigned);
  EXPECT_EQ(r.mapping[3], core::kUnassigned);
  for (int task : {0, 1}) EXPECT_LT(r.mapping[static_cast<std::size_t>(task)], 2);
}

// ---------------------------------------------------------------------------
// Self-validation
// ---------------------------------------------------------------------------

TEST(ValidateState, CatchesStalePlaneAndDeadPlacement) {
  const auto base = make_topology("torus:4x4");
  FaultOverlay overlay(base);
  DistanceCache plane(overlay);
  const graph::TaskGraph g = graph::ring(4, 8.0);
  core::SystemState st;
  st.graph = &g;
  st.overlay = &overlay;
  st.plane = &plane;
  EXPECT_TRUE(core::validate_state(st).ok());

  // Mutate the overlay WITHOUT repairing the plane: validation must notice.
  overlay.fail_node(5);
  EXPECT_FALSE(core::validate_state(st).ok());
  plane.rebuild(overlay);
  EXPECT_TRUE(core::validate_state(st).ok());

  const Mapping dead_placement{0, 1, 2, 5};  // task 3 on the dead processor
  st.placement = &dead_placement;
  const core::ValidationReport report = core::validate_state(st);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("5"), std::string::npos)
      << report.summary();
}

TEST(ValidateState, QuarantinedTasksAreExemptFromComponentCheck) {
  FaultOverlay overlay(make_topology("mesh:5"));
  overlay.fail_node(2);
  const graph::TaskGraph g = graph::ring(4, 8.0);
  const Mapping placement{0, 1, 3, 4};  // tasks 2,3 across the partition
  core::SystemState st;
  st.graph = &g;
  st.overlay = &overlay;
  st.placement = &placement;
  EXPECT_FALSE(core::validate_state(st).ok());  // two components, no ledger
  const std::vector<char> quarantined{0, 0, 1, 1};
  st.quarantined = &quarantined;
  EXPECT_TRUE(core::validate_state(st).ok());
}

// ---------------------------------------------------------------------------
// Chaos generator
// ---------------------------------------------------------------------------

bool same_event(const rts::Event& x, const rts::Event& y) {
  return x.epoch == y.epoch && x.kind == y.kind && x.a == y.a && x.b == y.b &&
         x.health == y.health && x.strict == y.strict;
}

TEST(ChaosSchedule, DeterministicSeededAndBounded) {
  const auto base = make_topology("torus:6x6");
  rts::ChaosConfig cfg;
  cfg.seed = 7;
  cfg.epochs = 60;
  cfg.event_rate = 0.8;
  cfg.burst_prob = 0.2;
  const rts::ChaosSchedule a = rts::make_chaos_schedule(*base, cfg);
  const rts::ChaosSchedule b = rts::make_chaos_schedule(*base, cfg);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i)
    EXPECT_TRUE(same_event(a.events[i], b.events[i])) << "event " << i;
  EXPECT_GT(a.failures, 0);
  EXPECT_GT(a.restores, 0);
  int prev_epoch = 0;
  for (const rts::Event& ev : a.events) {
    EXPECT_FALSE(ev.strict);
    EXPECT_GE(ev.epoch, prev_epoch);
    EXPECT_LT(ev.epoch, cfg.epochs);
    prev_epoch = ev.epoch;
  }
}

TEST(ChaosSchedule, ParseSpecRoundTripsAndRejectsGarbage) {
  const rts::ChaosConfig cfg = rts::parse_chaos_spec("7:0.5:0.1");
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_DOUBLE_EQ(cfg.event_rate, 0.5);
  EXPECT_DOUBLE_EQ(cfg.burst_prob, 0.1);
  EXPECT_THROW(rts::parse_chaos_spec("7:0.5"), precondition_error);
  EXPECT_THROW(rts::parse_chaos_spec("x:0.5:0.1"), precondition_error);
  EXPECT_THROW(rts::parse_chaos_spec("7:0.5:2.0"), precondition_error);
  EXPECT_THROW(rts::parse_chaos_spec("7:0.5:0.1x"), precondition_error);
}

// ---------------------------------------------------------------------------
// Dynamic runtime soak
// ---------------------------------------------------------------------------

rts::DynamicLBConfig soak_config(int epochs) {
  rts::DynamicLBConfig config;
  config.epochs = epochs;
  config.policy = rts::RemapPolicy::kIncremental;
  config.pipeline.partitioner = part::make_partitioner("multilevel");
  config.pipeline.mapper = core::make_strategy("topolb");
  return config;
}

rts::DynamicLBRun chaos_soak(int threads, std::vector<int> skip_repairs = {}) {
  support::set_num_threads(threads);
  const auto g = graph::stencil_2d(12, 12, 16.0);
  const auto t = make_topology("torus:6x6");
  rts::DynamicLBConfig config = soak_config(40);
  rts::ChaosConfig chaos;
  chaos.seed = 7;
  chaos.epochs = config.epochs;
  chaos.event_rate = 0.8;
  chaos.burst_prob = 0.2;
  config.events = rts::make_chaos_schedule(*t, chaos).events;
  config.resilience.skip_repairs = std::move(skip_repairs);
  Rng rng(11);
  rts::DynamicLBRun run = rts::run_dynamic_lb_detailed(g, *t, config, rng);
  support::set_num_threads(1);
  return run;
}

TEST(ChaosSoak, SurvivesValidatedAndThreadInvariant) {
  const rts::DynamicLBRun one = chaos_soak(1);
  ASSERT_EQ(one.history.size(), 40u);
  EXPECT_GT(one.events_applied, 0);
  EXPECT_EQ(one.violations, 0);
  EXPECT_EQ(one.plane_rebuilds, 0);
  ASSERT_EQ(one.final_placement.size(), 144u);

  const rts::DynamicLBRun four = chaos_soak(4);
  EXPECT_EQ(four.final_placement, one.final_placement);
  EXPECT_EQ(four.final_quarantined, one.final_quarantined);
  ASSERT_EQ(four.history.size(), one.history.size());
  for (std::size_t e = 0; e < one.history.size(); ++e) {
    EXPECT_EQ(four.history[e].migrations, one.history[e].migrations);
    EXPECT_DOUBLE_EQ(four.history[e].hops_per_byte,
                     one.history[e].hops_per_byte);
  }
}

TEST(ChaosSoak, SkippedRepairTriggersRebuildFallback) {
  // Drop the plane repair of one applied event on purpose: validation must
  // catch the stale plane, rebuild it (obs-counted), and converge to the
  // exact same final state as the honest run.  The timeline is a lone node
  // failure, so nothing else in the batch can mask the staleness (a chaos
  // batch may contain a scale-changing degrade whose own repair rebuilds
  // every row and silently heals the sabotage).
  const auto g = graph::stencil_2d(12, 12, 16.0);
  const auto t = make_topology("torus:6x6");
  auto config = soak_config(6);
  config.events = {{1, rts::EventKind::kNodeFail, 7},
                   {3, rts::EventKind::kNodeRestore, 7}};
  Rng rng_a(11);
  const rts::DynamicLBRun honest =
      rts::run_dynamic_lb_detailed(g, *t, config, rng_a);
  EXPECT_EQ(honest.plane_rebuilds, 0);
  EXPECT_EQ(honest.violations, 0);

  config.resilience.skip_repairs = {0};  // sabotage the node-fail repair
  Rng rng_b(11);
  const rts::DynamicLBRun sabotaged =
      rts::run_dynamic_lb_detailed(g, *t, config, rng_b);
  EXPECT_GE(sabotaged.plane_rebuilds, 1);
  EXPECT_GE(sabotaged.violations, 1);
  EXPECT_EQ(sabotaged.final_placement, honest.final_placement);
  EXPECT_EQ(sabotaged.final_quarantined, honest.final_quarantined);
}

TEST(DynamicLB, StrictEventThrowsWhereLenientSkips) {
  const auto g = graph::stencil_2d(4, 4, 8.0);
  const auto t = make_topology("torus:4x4");
  auto config = soak_config(3);
  config.events = {{0, rts::EventKind::kNodeFail, 5},
                   {1, rts::EventKind::kLinkDegrade, 5, 6, 0.5}};  // dead link
  Rng rng(1);
  EXPECT_THROW(rts::run_dynamic_lb_detailed(g, *t, config, rng),
               precondition_error);
  config.events[1].strict = false;
  Rng rng2(1);
  const rts::DynamicLBRun run = rts::run_dynamic_lb_detailed(g, *t, config, rng2);
  EXPECT_EQ(run.events_applied, 1);
  EXPECT_EQ(run.events_skipped, 1);
}

TEST(DynamicLB, PartitionQuarantinesThenRestoreReadmits) {
  // A line machine split in half: objects stranded on the minority side
  // freeze in place, and when the cut processor returns they are
  // re-admitted without a migration storm.
  const auto g = graph::stencil_2d(2, 6, 8.0);  // 12 objects on 6 procs
  const auto t = make_topology("mesh:6");
  auto config = soak_config(6);
  config.load_drift = 0.0;
  config.comm_drift = 0.0;
  config.events = {{1, rts::EventKind::kNodeFail, 2},
                   {4, rts::EventKind::kNodeRestore, 2}};
  Rng rng(5);
  const rts::DynamicLBRun run = rts::run_dynamic_lb_detailed(g, *t, config, rng);
  EXPECT_GE(run.partitioned_epochs, 1);
  EXPECT_GT(run.max_quarantined, 0);
  // After the restore the machine is whole again and everyone is active.
  for (char f : run.final_quarantined) EXPECT_EQ(f, 0);
  EXPECT_EQ(run.history.back().components, 1);
  EXPECT_EQ(run.history.back().quarantined, 0);
}

TEST(DynamicLB, EmptyTimelineMatchesLegacyRun) {
  // The resilience machinery must be invisible when nothing goes wrong:
  // an event-free detailed run reproduces the legacy wrapper bit-for-bit.
  const auto g = graph::stencil_2d(8, 8, 16.0);
  const auto t = make_topology("torus:4x4");
  Rng rng_a(13), rng_b(13);
  const auto legacy = rts::run_dynamic_lb(g, *t, soak_config(5), rng_a);
  const rts::DynamicLBRun detailed =
      rts::run_dynamic_lb_detailed(g, *t, soak_config(5), rng_b);
  ASSERT_EQ(detailed.history.size(), legacy.size());
  for (std::size_t e = 0; e < legacy.size(); ++e) {
    EXPECT_DOUBLE_EQ(detailed.history[e].hops_per_byte,
                     legacy[e].hops_per_byte);
    EXPECT_EQ(detailed.history[e].migrations, legacy[e].migrations);
  }
}

}  // namespace
}  // namespace topomap
