// Hop-bytes / hops-per-byte / link-load metric tests (paper §3).
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "graph/builders.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "topo/factory.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::core {
namespace {

using graph::stencil_2d;
using topo::TorusMesh;

TEST(Metrics, IdentityStencilOnMatchingMeshIsOneHopPerByte) {
  // stencil ids match TorusMesh::index, so identity maps neighbours to
  // neighbours: every byte travels exactly one hop.
  const auto g = stencil_2d(6, 5, 128.0);
  const TorusMesh t = TorusMesh::mesh({6, 5});
  const Mapping m = identity_mapping(g.num_vertices());
  EXPECT_DOUBLE_EQ(hop_bytes(g, t, m), g.total_comm_bytes());
  EXPECT_DOUBLE_EQ(hops_per_byte(g, t, m), 1.0);
}

TEST(Metrics, HopBytesMatchesHandComputedExample) {
  // Ring of 4 on a 4-node line mesh: identity gives edges 0-1,1-2,2-3 at
  // distance 1 and the closing edge 3-0 at distance 3.
  const auto g = graph::ring(4, 10.0);
  const TorusMesh line = TorusMesh::mesh({4});
  const Mapping m = identity_mapping(4);
  EXPECT_DOUBLE_EQ(hop_bytes(g, line, m), 10.0 * (1 + 1 + 1 + 3));
  EXPECT_DOUBLE_EQ(hops_per_byte(g, line, m), 60.0 / 40.0);
}

TEST(Metrics, TaskContributionsSumToTwiceHopBytes) {
  Rng rng(3);
  const auto g = graph::random_graph(30, 0.2, 1.0, 9.0, rng);
  const TorusMesh t = TorusMesh::torus({6, 5});
  const Mapping m = rng.permutation(30);
  double per_task = 0.0;
  for (int v = 0; v < g.num_vertices(); ++v)
    per_task += hop_bytes_of_task(g, t, m, v);
  EXPECT_NEAR(per_task, 2.0 * hop_bytes(g, t, m), 1e-6);
}

TEST(Metrics, ColocatedTasksContributeZero) {
  const auto g = graph::ring(4, 10.0);
  const TorusMesh t = TorusMesh::mesh({2, 2});
  const Mapping all_same{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(hop_bytes(g, t, all_same), 0.0);
}

TEST(Metrics, RejectsIncompleteOrMismatchedMappings) {
  const auto g = graph::ring(4, 1.0);
  const TorusMesh t = TorusMesh::mesh({2, 2});
  EXPECT_THROW(hop_bytes(g, t, Mapping{0, 1, 2}), precondition_error);
  EXPECT_THROW(hop_bytes(g, t, Mapping{0, 1, 2, 4}), precondition_error);
  EXPECT_THROW(hop_bytes(g, t, Mapping{0, 1, 2, kUnassigned}),
               precondition_error);
}

TEST(Metrics, ExpectedRandomHopsClosedForms) {
  // Paper §5.2: sqrt(p)/2 on square 2D tori, 3*cbrt(p)/4 on cubic 3D tori.
  EXPECT_NEAR(expected_random_hops(TorusMesh::torus({32, 32})), 16.0, 1e-12);
  EXPECT_NEAR(expected_random_hops(TorusMesh::torus({16, 16, 16})), 12.0,
              1e-12);
}

TEST(Metrics, RandomMappingMatchesExpectedHops) {
  // Statistical reproduction of the paper's random-placement observation.
  const int side = 24;
  const auto g = stencil_2d(side, side, 1.0);
  const TorusMesh t = TorusMesh::torus({side, side});
  Rng rng(1234);
  RunningStats hpb;
  for (int rep = 0; rep < 20; ++rep)
    hpb.add(hops_per_byte(g, t, rng.permutation(side * side)));
  const double expected = expected_random_hops(t);  // = side/2 = 12
  EXPECT_NEAR(hpb.mean(), expected, 0.05 * expected);
}

TEST(Metrics, LinkLoadTotalsEqualHopBytes) {
  Rng rng(9);
  const auto g = graph::random_graph(24, 0.25, 2.0, 20.0, rng);
  const TorusMesh t = TorusMesh::torus({4, 6});
  const Mapping m = rng.permutation(24);
  const LinkLoadStats stats = link_loads(g, t, m);
  EXPECT_NEAR(stats.total_bytes, hop_bytes(g, t, m), 1e-6);
  EXPECT_GE(stats.max_bytes, stats.mean_bytes);
  EXPECT_EQ(stats.links_total, t.directed_link_count());
  EXPECT_LE(stats.links_used, stats.links_total);
}

TEST(Metrics, BetterMappingLowersMaxLinkLoad) {
  // The identity mapping of a stencil spreads traffic one hop wide; a
  // random mapping concentrates far more bytes on the busiest link.
  const auto g = stencil_2d(8, 8, 100.0);
  const TorusMesh t = TorusMesh::torus({8, 8});
  Rng rng(5);
  const auto ideal = link_loads(g, t, identity_mapping(64));
  const auto random = link_loads(g, t, rng.permutation(64));
  EXPECT_LT(ideal.max_bytes, random.max_bytes);
  EXPECT_LT(ideal.total_bytes, random.total_bytes);
}

TEST(Metrics, MappingHelpers) {
  const TorusMesh t = TorusMesh::mesh({2, 2});
  EXPECT_TRUE(is_one_to_one(Mapping{0, 1, 2, 3}, t));
  EXPECT_FALSE(is_one_to_one(Mapping{0, 1, 2, 2}, t));
  EXPECT_TRUE(is_complete(Mapping{0, 0}, t));
  EXPECT_FALSE(is_complete(Mapping{0, kUnassigned}, t));
  const auto inv = inverse_mapping(Mapping{2, 0, 3, 1}, t);
  EXPECT_EQ(inv, (std::vector<int>{1, 3, 0, 2}));
  EXPECT_THROW(inverse_mapping(Mapping{0, 0, 1, 2}, t), precondition_error);
}

}  // namespace
}  // namespace topomap::core
