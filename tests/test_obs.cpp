// The obs:: subsystem: JSON round-trips, registry merge determinism across
// worker-pool sizes, span nesting and the Chrome-trace exporter, the
// schema-versioned Report, and — in instrumented builds — the contract that
// enabling telemetry never changes a mapping result.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "core/metrics.hpp"
#include "core/topo_lb.hpp"
#include "graph/builders.hpp"
#include "graph/task_graph.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/tracer.hpp"
#include "runtime/evacuate.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "topo/factory.hpp"
#include "topo/fault_overlay.hpp"

namespace topomap::obs {
namespace {

using json::Value;

// Every test starts and ends with a clean, disabled registry so suites can
// run in any order (and so the obs-off CI slice sees no stray state).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    Registry::instance().reset();
    Tracer::instance().reset();
  }
  void TearDown() override {
    set_enabled(false);
    Registry::instance().reset();
    Tracer::instance().reset();
    support::set_num_threads(1);
  }
};

// --- JSON -----------------------------------------------------------------

TEST_F(ObsTest, JsonRoundTripsScalarsArraysObjects) {
  const std::string text =
      R"({"a": 1, "b": -2.5, "c": "hi\nthere", "d": [true, false, null], )"
      R"("e": {"nested": [1, 2, 3]}})";
  const Value v = Value::parse(text);
  EXPECT_EQ(v.at("a").as_number(), 1.0);
  EXPECT_EQ(v.at("b").as_number(), -2.5);
  EXPECT_EQ(v.at("c").as_string(), "hi\nthere");
  EXPECT_TRUE(v.at("d").items()[0].as_bool());
  EXPECT_TRUE(v.at("d").items()[2].is_null());
  EXPECT_EQ(v.at("e").at("nested").items().size(), 3u);
  // dump -> parse -> dump is a fixed point.
  const std::string once = v.dump();
  EXPECT_EQ(Value::parse(once).dump(), once);
}

TEST_F(ObsTest, JsonPreservesMemberOrderAndShortNumbers) {
  Value obj = Value::object();
  obj.set("zulu", 1);
  obj.set("alpha", 0.25);
  EXPECT_EQ(obj.dump(), R"({"zulu":1,"alpha":0.25})");
  EXPECT_EQ(json::format_number(3.0), "3");
  EXPECT_EQ(json::format_number(0.1), "0.1");
}

TEST_F(ObsTest, JsonParseErrorsThrowWithOffset) {
  EXPECT_THROW((void)Value::parse("{\"a\": }"), precondition_error);
  EXPECT_THROW((void)Value::parse("[1, 2"), precondition_error);
  EXPECT_THROW((void)Value::parse("{} trailing"), precondition_error);
  EXPECT_THROW((void)Value::parse(""), precondition_error);
}

// --- Registry -------------------------------------------------------------

TEST_F(ObsTest, RegistryCountsRecordsAndResets) {
  Registry& reg = Registry::instance();
  reg.add("x/count", 2);
  reg.add("x/count", 3);
  reg.record("x/value", 4.0);
  reg.record("x/value", 8.0);
  reg.append_series("x/series", 1.0);
  reg.append_series("x/series", 2.0);

  EXPECT_EQ(reg.counter("x/count"), 5u);
  EXPECT_EQ(reg.counter("never/touched"), 0u);
  const auto dists = reg.distributions();
  ASSERT_EQ(dists.count("x/value"), 1u);
  EXPECT_EQ(dists.at("x/value").count, 2u);
  EXPECT_EQ(dists.at("x/value").mean(), 6.0);
  const auto series = reg.series();
  ASSERT_EQ(series.count("x/series"), 1u);
  EXPECT_EQ(series.at("x/series"), (std::vector<double>{1.0, 2.0}));

  reg.reset();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.distributions().empty());
  EXPECT_TRUE(reg.series().empty());
}

// The same parallel workload must produce the same merged snapshot no
// matter how many worker threads recorded it — counters sum exactly, and
// integral-valued distribution samples keep FP sums order-free.
TEST_F(ObsTest, RegistryMergeIsDeterministicAcrossThreadCounts) {
  constexpr int kN = 10'000;
  auto run = [&] {
    Registry::instance().reset();
    support::parallel_for(kN, /*grain=*/64, [](int begin, int end) {
      for (int i = begin; i < end; ++i) {
        Registry::instance().add("merge/count", 1);
        Registry::instance().record("merge/value",
                                    static_cast<double>(i % 7));
      }
    });
    return std::pair{Registry::instance().counters(),
                     Registry::instance().distributions()};
  };

  support::set_num_threads(1);
  const auto base = run();
  EXPECT_EQ(base.first.at("merge/count"), static_cast<std::uint64_t>(kN));
  for (int threads : {2, 8}) {
    support::set_num_threads(threads);
    const auto got = run();
    EXPECT_EQ(got.first, base.first) << threads << " threads";
    const Distribution& d = got.second.at("merge/value");
    const Distribution& b = base.second.at("merge/value");
    EXPECT_EQ(d.count, b.count) << threads << " threads";
    EXPECT_EQ(d.sum, b.sum) << threads << " threads";
    EXPECT_EQ(d.min, b.min) << threads << " threads";
    EXPECT_EQ(d.max, b.max) << threads << " threads";
  }
}

// --- Histogram ------------------------------------------------------------

TEST_F(ObsTest, HistogramBucketBoundariesAreFixedAndCoverTheLine) {
  // Bucket 0 absorbs sub-1.0 values and NaN; above it the layout is
  // log2-linear with kSubBuckets per octave.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(0.999), 0);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0);
  EXPECT_EQ(Histogram::bucket_index(1.0), 1);
  // Every bucket boundary lands in its own bucket, boundaries ascend, and
  // [lo, hi) tiles the line with no gaps.
  for (int i = 1; i < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lo(i)), i) << i;
    EXPECT_LT(Histogram::bucket_lo(i), Histogram::bucket_hi(i)) << i;
    EXPECT_EQ(Histogram::bucket_hi(i - 1), Histogram::bucket_lo(i)) << i;
  }
  // Values beyond the top octave clamp into the last bucket.
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBucketCount - 1);
}

TEST_F(ObsTest, HistogramIsInsertOrderFreeAndMergesExactly) {
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i)
    samples.push_back(static_cast<double>((i * 37) % 1000));
  Histogram forward, backward, merged_a, merged_b;
  for (double v : samples) forward.add(v);
  for (auto it = samples.rbegin(); it != samples.rend(); ++it)
    backward.add(*it);
  for (std::size_t i = 0; i < samples.size(); ++i)
    (i % 2 == 0 ? merged_a : merged_b).add(samples[i]);
  merged_a.merge(merged_b);
  EXPECT_TRUE(forward == backward);
  EXPECT_TRUE(forward == merged_a);
  EXPECT_EQ(forward.count(), 500u);
  // Integral samples keep the sum exact, so even sum() compares equal.
  EXPECT_EQ(forward.sum(), merged_a.sum());
}

TEST_F(ObsTest, HistogramQuantilesAreDeterministicAndBracketed) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty reports 0
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.quantile(0.0), 1.0);
  EXPECT_EQ(h.quantile(1.0), 1000.0);
  const double p50 = h.quantile(0.5);
  const double p99 = h.quantile(0.99);
  // Log-bucketed estimates: within one bucket's relative resolution.
  EXPECT_NEAR(p50, 500.0, 500.0 / Histogram::kSubBuckets);
  EXPECT_NEAR(p99, 990.0, 990.0 / Histogram::kSubBuckets);
  EXPECT_LE(p50, p99);
  // Same multiset -> identical estimate, regardless of insert order.
  Histogram r;
  for (int i = 1000; i >= 1; --i) r.add(static_cast<double>(i));
  EXPECT_EQ(r.quantile(0.5), p50);
  EXPECT_EQ(r.quantile(0.99), p99);
}

// Sharded histograms must merge to the same snapshot no matter how many
// worker threads recorded the samples — the counter contract, extended.
TEST_F(ObsTest, RegistryHistogramMergeIsDeterministicAcrossThreadCounts) {
  constexpr int kN = 10'000;
  auto run = [&] {
    Registry::instance().reset();
    support::parallel_for(kN, /*grain=*/64, [](int begin, int end) {
      for (int i = begin; i < end; ++i)
        Registry::instance().observe("merge/hist",
                                     static_cast<double>(i % 97));
    });
    return Registry::instance().histograms();
  };

  support::set_num_threads(1);
  const auto base = run();
  ASSERT_EQ(base.count("merge/hist"), 1u);
  EXPECT_EQ(base.at("merge/hist").count(), static_cast<std::uint64_t>(kN));
  for (int threads : {2, 8}) {
    support::set_num_threads(threads);
    const auto got = run();
    ASSERT_EQ(got.count("merge/hist"), 1u) << threads << " threads";
    EXPECT_TRUE(got.at("merge/hist") == base.at("merge/hist"))
        << threads << " threads";
  }
}

// --- Tracer ---------------------------------------------------------------

TEST_F(ObsTest, TracerRecordsNestedSpansInOrder) {
  set_enabled(true);
  {
    ScopedSpan outer("outer");
    { ScopedSpan inner("inner"); }
    { ScopedSpan inner("inner"); }
  }
  const auto spans = Tracer::instance().spans();
  ASSERT_EQ(spans.size(), 3u);
  // Sorted by start time: outer opened first, then the two inner slices.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "inner");
  EXPECT_LE(spans[1].start_ns + spans[1].dur_ns,
            spans[2].start_ns + spans[2].dur_ns);
  // Both inner spans sit inside the outer interval.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[2].start_ns + spans[2].dur_ns,
            spans[0].start_ns + spans[0].dur_ns);

  const auto rollup = Tracer::instance().rollup();
  ASSERT_EQ(rollup.count("inner"), 1u);
  EXPECT_EQ(rollup.at("inner").count, 2u);
  EXPECT_NE(Tracer::instance().summary().find("outer"), std::string::npos);
}

TEST_F(ObsTest, TracerRecordsNothingWhileDisabled) {
  { ScopedSpan span("ghost"); }
  EXPECT_TRUE(Tracer::instance().spans().empty());
}

// Regression: a span opened while enabled but closing after
// set_enabled(false) must be dropped, not recorded — "disabled records
// nothing" holds at the record point, not the open point.  The depth
// counter still balances so later spans nest correctly.
TEST_F(ObsTest, SpanOutlivingDisableIsDroppedAndDepthStaysBalanced) {
  set_enabled(true);
  {
    ScopedSpan span("outliver");
    set_enabled(false);
  }
  EXPECT_TRUE(Tracer::instance().spans().empty());

  set_enabled(true);
  { ScopedSpan span("after"); }
  const auto spans = Tracer::instance().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "after");
  EXPECT_EQ(spans[0].depth, 0);  // the dropped span's depth slot was freed
}

TEST_F(ObsTest, ChromeTraceExportIsParseableCompleteEvents) {
  set_enabled(true);
  {
    ScopedSpan a("phase/a");
    { ScopedSpan b("phase/b"); }
  }
  std::ostringstream os;
  Tracer::instance().write_chrome_trace(os);
  const Value doc = Value::parse(os.str());
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.items().size(), 2u);
  for (const Value& event : doc.items()) {
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_TRUE(event.at("name").is_string());
    EXPECT_GE(event.at("ts").as_number(), 0.0);
    EXPECT_GE(event.at("dur").as_number(), 0.0);
    EXPECT_EQ(event.at("pid").as_number(), 1.0);
    EXPECT_GE(event.at("tid").as_number(), 0.0);
  }
}

// --- Report ---------------------------------------------------------------

TEST_F(ObsTest, ReportCarriesSchemaAndCapturedState) {
  set_enabled(true);
  Registry::instance().add("report/count", 7);
  Registry::instance().record("report/value", 3.0);
  Registry::instance().append_series("report/series", 1.0);
  { ScopedSpan span("report/span"); }

  Report report;
  report.set_meta("workload", "unit-test");
  report.add_series("explicit", {1.0, 2.0, 3.0});
  report.capture();
  const Value doc = report.to_json();

  EXPECT_EQ(doc.at("schema").as_string(), Report::kSchemaName);
  EXPECT_EQ(doc.at("schema_version").as_number(),
            static_cast<double>(Report::kSchemaVersion));
  EXPECT_EQ(doc.at("meta").at("workload").as_string(), "unit-test");
  EXPECT_EQ(doc.at("counters").at("report/count").as_number(), 7.0);
  EXPECT_EQ(doc.at("distributions").at("report/value").at("mean").as_number(),
            3.0);
  EXPECT_EQ(doc.at("series").at("explicit").items().size(), 3u);
  EXPECT_EQ(doc.at("series").at("report/series").items().size(), 1u);
  EXPECT_GE(doc.at("spans").at("report/span").at("count").as_number(), 1.0);

  // The artifact round-trips through its own parser.
  std::ostringstream os;
  report.write(os);
  EXPECT_EQ(Value::parse(os.str()).at("schema").as_string(),
            Report::kSchemaName);
}

TEST_F(ObsTest, ReportCapturesHistogramsWithNonEmptyBucketsOnly) {
  Registry& reg = Registry::instance();
  for (int i = 0; i < 10; ++i) reg.observe("report/hist", 4.0);
  reg.observe("report/hist", 100.0);
  Report report;
  report.capture();
  const Value doc = report.to_json();
  const Value& h = doc.at("histograms").at("report/hist");
  EXPECT_EQ(h.at("count").as_number(), 11.0);
  EXPECT_EQ(h.at("min").as_number(), 4.0);
  EXPECT_EQ(h.at("max").as_number(), 100.0);
  // Two distinct values -> exactly two populated [lo, hi, count] triples.
  ASSERT_EQ(h.at("buckets").items().size(), 2u);
  double total = 0.0;
  for (const Value& triple : h.at("buckets").items()) {
    ASSERT_EQ(triple.items().size(), 3u);
    EXPECT_LT(triple.items()[0].as_number(), triple.items()[1].as_number());
    total += triple.items()[2].as_number();
  }
  EXPECT_EQ(total, 11.0);
  EXPECT_LE(h.at("p50").as_number(), h.at("p99").as_number());
}

TEST_F(ObsTest, ReportExplicitSeriesShadowsCapturedSeries) {
  Registry::instance().append_series("same/name", 9.0);
  Report report;
  report.add_series("same/name", {1.0, 2.0});
  report.capture();
  EXPECT_EQ(report.to_json().at("series").at("same/name").items().size(), 2u);
}

TEST_F(ObsTest, ReportRejectsRaggedTableRows) {
  Report report;
  report.add_table("t", {"a", "b"}, {{Value(1.0)}});
  EXPECT_THROW((void)report.to_json(), precondition_error);
}

TEST_F(ObsTest, ReportTableMixesStringsAndNumbers) {
  Report report;
  report.add_table("t", {"strategy", "hpb"},
                   {{Value(std::string("topolb")), Value(1.5)}});
  const Value doc = report.to_json();
  const Value& row = doc.at("tables").at("t").at("rows").items()[0];
  EXPECT_EQ(row.items()[0].as_string(), "topolb");
  EXPECT_EQ(row.items()[1].as_number(), 1.5);
}

// --- Instrumented kernels (macro sites compiled in) -----------------------

#if defined(TOPOMAP_OBS_ENABLED)

// Telemetry only observes: the mapping with recording on must be
// byte-identical to the mapping with recording off.
TEST_F(ObsTest, EnablingObsDoesNotChangeTopoLBMapping) {
  const auto g = graph::stencil_2d(6, 6, 1.0);
  const auto topo = topo::make_topology("torus:6x6");
  Rng rng_off(42);
  set_enabled(false);
  const core::Mapping off = core::TopoLB().map(g, *topo, rng_off);
  Rng rng_on(42);
  set_enabled(true);
  const core::Mapping on = core::TopoLB().map(g, *topo, rng_on);
  EXPECT_EQ(off, on);
}

TEST_F(ObsTest, TopoLBRecordsCountersAndHopBytesTrajectory) {
  const auto g = graph::stencil_2d(6, 6, 1.0);
  const auto topo = topo::make_topology("torus:6x6");
  set_enabled(true);
  Rng rng(1);
  const core::Mapping m = core::TopoLB().map(g, *topo, rng);

  Registry& reg = Registry::instance();
  EXPECT_EQ(reg.counter("topolb/placements"), 36u);
  EXPECT_GT(reg.counter("topolb/f_est_evals"), 0u);
  EXPECT_GT(reg.counter("topolb/row_rescans"), 0u);
  EXPECT_GT(reg.counter("distcache/builds"), 0u);

  // The incremental trajectory converges to the exact final hop-bytes.
  const auto series = reg.series();
  ASSERT_EQ(series.count("topolb/hop_bytes_trajectory"), 1u);
  const auto& traj = series.at("topolb/hop_bytes_trajectory");
  ASSERT_EQ(traj.size(), 36u);
  EXPECT_NEAR(traj.back(), core::hop_bytes(g, *topo, m), 1e-6);
  // Monotone non-decreasing: each placement can only add hop-bytes.
  for (std::size_t i = 1; i < traj.size(); ++i)
    EXPECT_GE(traj[i], traj[i - 1] - 1e-9);

  // The span tree covers the run.
  const auto rollup = Tracer::instance().rollup();
  EXPECT_EQ(rollup.count("topolb/map"), 1u);
  ASSERT_EQ(rollup.count("topolb/select_task"), 1u);
  EXPECT_EQ(rollup.at("topolb/select_task").count, 36u);
}

TEST_F(ObsTest, InstrumentedMappingIsThreadCountInvariant) {
  const auto g = graph::stencil_2d(6, 6, 1.0);
  const auto topo = topo::make_topology("torus:6x6");
  set_enabled(true);

  auto run = [&] {
    Registry::instance().reset();
    Rng rng(7);
    const core::Mapping m = core::TopoLB().map(g, *topo, rng);
    return std::pair{m, Registry::instance().counters()};
  };
  support::set_num_threads(1);
  const auto base = run();
  for (int threads : {2, 8}) {
    support::set_num_threads(threads);
    const auto got = run();
    EXPECT_EQ(got.first, base.first) << threads << " threads";
    EXPECT_EQ(got.second, base.second) << threads << " threads";
  }
}

#endif  // TOPOMAP_OBS_ENABLED

// --- Load-aware evacuation (satellite of this PR) -------------------------

TEST_F(ObsTest, EvacuateZeroLoadWeightMatchesLegacyOverload) {
  const auto g = graph::stencil_2d(3, 4, 1.0);
  auto overlay = topo::FaultOverlay(topo::make_topology("torus:4x4"));
  const core::Mapping previous = core::identity_mapping(12);
  overlay.fail_node(2);
  overlay.fail_node(7);

  const rts::EvacuationResult legacy =
      rts::evacuate(g, overlay, previous, /*refine_passes=*/2);
  rts::EvacuateOptions options;
  options.refine_passes = 2;
  options.load_weight = 0.0;
  const rts::EvacuationResult r = rts::evacuate(g, overlay, previous, options);
  EXPECT_EQ(r.mapping, legacy.mapping);
  EXPECT_EQ(r.migrations, legacy.migrations);
  EXPECT_GE(r.load_imbalance, 1.0);
}

TEST_F(ObsTest, EvacuateLoadWeightYieldsValidMappingAndImbalance) {
  // Heavy tasks stranded on failed processors: the load-aware score must
  // still produce an injective all-alive mapping, and report imbalance.
  graph::TaskGraph::Builder b("heavy");
  b.add_vertices(12, 1.0);
  b.set_vertex_weight(2, 8.0);
  b.set_vertex_weight(7, 8.0);
  for (int i = 0; i + 1 < 12; ++i) b.add_edge(i, i + 1, 1.0);
  const auto g = std::move(b).build();

  auto overlay = topo::FaultOverlay(topo::make_topology("torus:4x4"));
  const core::Mapping previous = core::identity_mapping(12);
  overlay.fail_node(2);
  overlay.fail_node(7);

  rts::EvacuateOptions options;
  options.refine_passes = 2;
  options.load_weight = 0.5;
  const rts::EvacuationResult r = rts::evacuate(g, overlay, previous, options);
  ASSERT_EQ(r.mapping.size(), 12u);
  std::vector<char> used(16, 0);
  for (int proc : r.mapping) {
    ASSERT_GE(proc, 0);
    ASSERT_LT(proc, 16);
    EXPECT_TRUE(overlay.is_alive(proc));
    EXPECT_FALSE(used[static_cast<std::size_t>(proc)]);
    used[static_cast<std::size_t>(proc)] = 1;
  }
  EXPECT_GE(r.load_imbalance, 1.0);
  EXPECT_GT(r.hop_bytes, 0.0);
  // Deterministic.
  EXPECT_EQ(rts::evacuate(g, overlay, previous, options).mapping, r.mapping);
}

TEST_F(ObsTest, EvacuateRejectsNegativeLoadWeight) {
  const auto g = graph::stencil_2d(2, 2, 1.0);
  auto overlay = topo::FaultOverlay(topo::make_topology("torus:2x2"));
  rts::EvacuateOptions options;
  options.load_weight = -1.0;
  EXPECT_THROW(
      (void)rts::evacuate(g, overlay, core::identity_mapping(4), options),
      precondition_error);
}

}  // namespace
}  // namespace topomap::obs
