// Ground-truth tests for the exact-optimal oracle (core/optimal_lb.hpp):
// brute-force agreement on every n <= 8 corpus instance, thread-count
// determinism, symmetry-pruning equivalence, admissibility of every gated
// strategy's optimality gap, and the oracle's failure taxonomy.
//
// Everything compares with operator== on doubles: the corpus uses integer
// byte weights against integer plane distances, so every hop-bytes value
// is an exactly-representable sum of exact products.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "core/mapping.hpp"
#include "core/metrics.hpp"
#include "core/optimal_lb.hpp"
#include "core/strategy.hpp"
#include "graph/builders.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "tests/oracle_corpus.hpp"
#include "topo/distance_cache.hpp"
#include "topo/fault_overlay.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::core {
namespace {

using oracle::gated_strategy_specs;
using oracle::oracle_corpus;
using oracle::OracleInstance;

OracleInstance corpus_instance(const std::string& name) {
  for (OracleInstance& inst : oracle_corpus())
    if (inst.name == name) return std::move(inst);
  ADD_FAILURE() << "no corpus instance named " << name;
  return {};
}

/// Exhaustive minimum over every injective task -> usable-processor
/// assignment, via next_permutation over the usable processor list (each
/// assignment revisited (usable - n)! times — harmless at these sizes).
double brute_force_min(const graph::TaskGraph& g, const topo::Topology& t) {
  const topo::DistanceCache plane(t);
  std::vector<int> procs;
  for (int q = 0; q < t.size(); ++q) procs.push_back(q);
  if (const auto* ov = dynamic_cast<const topo::FaultOverlay*>(&t))
    procs = ov->alive_procs();
  const int n = g.num_vertices();
  EXPECT_LE(n, static_cast<int>(procs.size()));
  double best = std::numeric_limits<double>::infinity();
  std::sort(procs.begin(), procs.end());
  Mapping m(static_cast<std::size_t>(n));
  do {
    for (int task = 0; task < n; ++task)
      m[static_cast<std::size_t>(task)] = procs[static_cast<std::size_t>(task)];
    best = std::min(best, hop_bytes(g, plane, m));
  } while (std::next_permutation(procs.begin(), procs.end()));
  return best;
}

/// Injectivity onto usable processors — the oracle's output contract.
void expect_injective_and_alive(const Mapping& m, const topo::Topology& t) {
  std::vector<char> used(static_cast<std::size_t>(t.size()), 0);
  const auto* ov = dynamic_cast<const topo::FaultOverlay*>(&t);
  for (int q : m) {
    ASSERT_GE(q, 0);
    ASSERT_LT(q, t.size());
    EXPECT_FALSE(used[static_cast<std::size_t>(q)]) << "processor reused";
    used[static_cast<std::size_t>(q)] = 1;
    if (ov != nullptr) {
      EXPECT_TRUE(ov->is_alive(q));
    }
  }
}

TEST(OptimalOracle, MatchesBruteForceByteForByteOnEveryBruteInstance) {
  for (const OracleInstance& inst : oracle_corpus()) {
    if (!inst.brute) continue;
    SCOPED_TRACE(inst.name);
    const OptimalResult r = find_optimal_mapping(inst.g, *inst.machine);
    expect_injective_and_alive(r.mapping, *inst.machine);
    // Exact equality — same edge order, integer products, no tolerance.
    EXPECT_EQ(r.hop_bytes, brute_force_min(inst.g, *inst.machine));
    const topo::DistanceCache plane(*inst.machine);
    EXPECT_EQ(r.hop_bytes, hop_bytes(inst.g, plane, r.mapping));
  }
}

TEST(OptimalOracle, ResultIsByteIdenticalAtAnyThreadCount) {
  const int saved = support::num_threads();
  for (const OracleInstance& inst : oracle_corpus()) {
    SCOPED_TRACE(inst.name);
    support::set_num_threads(1);
    const OptimalResult serial = find_optimal_mapping(inst.g, *inst.machine);
    support::set_num_threads(4);
    const OptimalResult parallel = find_optimal_mapping(inst.g, *inst.machine);
    EXPECT_EQ(serial.mapping, parallel.mapping);
    EXPECT_EQ(serial.hop_bytes, parallel.hop_bytes);
    EXPECT_EQ(serial.nodes, parallel.nodes);
    EXPECT_EQ(serial.pruned, parallel.pruned);
    EXPECT_EQ(serial.root_candidates, parallel.root_candidates);
  }
  support::set_num_threads(saved);
}

TEST(OptimalOracle, SymmetryPruningNeverChangesTheOptimum) {
  for (const OracleInstance& inst : oracle_corpus()) {
    SCOPED_TRACE(inst.name);
    OptimalOptions with;
    OptimalOptions without;
    without.symmetry = false;
    const OptimalResult pruned = find_optimal_mapping(inst.g, *inst.machine, with);
    const OptimalResult full = find_optimal_mapping(inst.g, *inst.machine, without);
    EXPECT_EQ(pruned.hop_bytes, full.hop_bytes);
    EXPECT_LE(pruned.root_candidates, full.root_candidates);
    expect_injective_and_alive(full.mapping, *inst.machine);
  }
}

TEST(OptimalOracle, EveryGatedStrategyIsBoundedBelowByTheOracle) {
  for (const OracleInstance& inst : oracle_corpus()) {
    if (!inst.square) continue;  // bijective strategies need tasks == procs
    SCOPED_TRACE(inst.name);
    const OptimalResult r = find_optimal_mapping(inst.g, *inst.machine);
    const topo::DistanceCache plane(*inst.machine);
    for (const std::string& spec : gated_strategy_specs()) {
      SCOPED_TRACE(spec);
      Rng rng(42);
      const Mapping m = make_strategy(spec)->map(inst.g, *inst.machine, rng);
      EXPECT_GE(hop_bytes(inst.g, plane, m), r.hop_bytes)
          << spec << " beat the provable optimum — the oracle is broken";
    }
  }
}

TEST(OptimalOracle, FindsPerfectEmbeddingsOfStencilsOntoMatchingGrids) {
  // A 2D stencil on a same-shape grid embeds with every edge at distance 1,
  // so the optimum is exactly the total byte volume (hops-per-byte == 1).
  for (const OracleInstance& inst : oracle_corpus()) {
    if (inst.name.rfind("stencil", 0) != 0) continue;
    if (const auto* ov =
            dynamic_cast<const topo::FaultOverlay*>(inst.machine.get());
        ov != nullptr && ov->has_faults())
      continue;
    SCOPED_TRACE(inst.name);
    const OptimalResult r = find_optimal_mapping(inst.g, *inst.machine);
    EXPECT_EQ(r.hop_bytes, inst.g.total_comm_bytes());
  }
}

TEST(OptimalOracle, RejectsInstancesBeyondTheFactorialCap) {
  const auto g = graph::stencil_2d(4, 4, 64.0);  // 16 tasks
  const auto t = topo::TorusMesh::torus({4, 4});
  EXPECT_THROW(find_optimal_mapping(g, t), precondition_error);
}

TEST(OptimalOracle, ExhaustedNodeBudgetThrowsInsteadOfLying) {
  const OracleInstance inst = corpus_instance("er8/torus4x2");
  OptimalOptions opts;
  opts.node_budget = 4;
  EXPECT_THROW(find_optimal_mapping(inst.g, *inst.machine, opts),
               precondition_error);
}

TEST(OptimalOracle, MoreTasksThanUsableProcessorsIsAPreconditionError) {
  auto base = std::make_shared<topo::TorusMesh>(topo::TorusMesh::mesh({3, 2}));
  topo::FaultOverlay ov(base);
  ov.fail_node(0);
  const auto g = graph::ring(6, 32.0);  // 6 tasks, 5 alive processors
  EXPECT_THROW(find_optimal_mapping(g, ov), precondition_error);
}

TEST(OptimalOracle, PartitionedMachineThrowsNoFeasiblePlacement) {
  // Killing the middle of a 1x3 path splits {0} from {2}: two communicating
  // tasks cannot be hosted even though two processors are alive.
  auto base = std::make_shared<topo::TorusMesh>(topo::TorusMesh::mesh({3}));
  topo::FaultOverlay ov(base);
  ov.fail_node(1);
  graph::TaskGraph::Builder b("pair");
  b.add_vertices(2);
  b.add_edge(0, 1, 64.0);
  const auto g = std::move(b).build();
  try {
    find_optimal_mapping(g, ov);
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("no feasible placement"),
              std::string::npos);
  }
}

TEST(OptimalOracle, StrategyFacadeMatchesTheDirectCall) {
  const OracleInstance inst = corpus_instance("stencil3x2/torus3x2");
  Rng rng(7);
  const Mapping via_spec =
      make_strategy("optimal")->map(inst.g, *inst.machine, rng);
  const OptimalResult direct = find_optimal_mapping(inst.g, *inst.machine);
  EXPECT_EQ(via_spec, direct.mapping);
  EXPECT_EQ(make_strategy("optimal")->name(), "OptimalLB");
}

TEST(OptimalOracle, EmptyGraphMapsToNothing) {
  graph::TaskGraph g;
  const auto t = topo::TorusMesh::torus({2, 2});
  const OptimalResult r = find_optimal_mapping(g, t);
  EXPECT_TRUE(r.mapping.empty());
  EXPECT_EQ(r.hop_bytes, 0.0);
}

}  // namespace
}  // namespace topomap::core
