// support::parallel pool tests: exact index coverage, thread-count-
// independent chunk layout, exception propagation, nested-call inlining.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/error.hpp"
#include "support/parallel.hpp"

namespace topomap::support {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_num_threads(1); }
};

TEST_F(ParallelTest, ChunkCountMatchesCeilDiv) {
  EXPECT_EQ(parallel_chunk_count(0, 8), 0);
  EXPECT_EQ(parallel_chunk_count(1, 8), 1);
  EXPECT_EQ(parallel_chunk_count(8, 8), 1);
  EXPECT_EQ(parallel_chunk_count(9, 8), 2);
  EXPECT_EQ(parallel_chunk_count(100, 1), 100);
  EXPECT_EQ(parallel_chunk_count(5, 0), 5);  // grain clamps to 1
}

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4}) {
    set_num_threads(threads);
    for (const int n : {1, 7, 64, 1000}) {
      std::vector<int> hits(static_cast<std::size_t>(n), 0);
      parallel_for(n, 13, [&](int begin, int end) {
        for (int i = begin; i < end; ++i) ++hits[static_cast<std::size_t>(i)];
      });
      EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), n);
      for (int h : hits) EXPECT_EQ(h, 1);
    }
  }
}

TEST_F(ParallelTest, ChunkBoundariesIndependentOfThreadCount) {
  std::vector<std::vector<int>> layouts;
  for (const int threads : {1, 3}) {
    set_num_threads(threads);
    std::vector<int> bounds(static_cast<std::size_t>(
                                parallel_chunk_count(100, 7) * 2),
                            -1);
    parallel_for_chunks(100, 7, [&](int chunk, int begin, int end) {
      bounds[static_cast<std::size_t>(2 * chunk)] = begin;
      bounds[static_cast<std::size_t>(2 * chunk + 1)] = end;
    });
    layouts.push_back(bounds);
  }
  EXPECT_EQ(layouts[0], layouts[1]);
}

TEST_F(ParallelTest, PropagatesFirstException) {
  set_num_threads(2);
  EXPECT_THROW(parallel_for(100, 4,
                            [&](int begin, int) {
                              if (begin >= 48) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> sum{0};
  parallel_for(10, 2, [&](int begin, int end) { sum += end - begin; });
  EXPECT_EQ(sum.load(), 10);
}

TEST_F(ParallelTest, NestedCallsRunInline) {
  set_num_threads(4);
  std::vector<int> hits(64, 0);
  parallel_for(8, 1, [&](int outer_begin, int outer_end) {
    for (int o = outer_begin; o < outer_end; ++o) {
      parallel_for(8, 1, [&](int begin, int end) {
        for (int i = begin; i < end; ++i)
          ++hits[static_cast<std::size_t>(o * 8 + i)];
      });
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST_F(ParallelTest, SetNumThreadsValidatesAndApplies) {
  EXPECT_THROW(set_num_threads(0), precondition_error);
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
}

}  // namespace
}  // namespace topomap::support
