// Mini-runtime tests: message-driven scheduling, instrumentation fidelity,
// LB-database dump/replay round-trips, and the two-phase pipeline.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/metrics.hpp"
#include "graph/builders.hpp"
#include "graph/synthetic_md.hpp"
#include "runtime/apps.hpp"
#include "runtime/chare.hpp"
#include "runtime/lb_database.hpp"
#include "runtime/lb_manager.hpp"
#include "support/error.hpp"
#include "topo/factory.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::rts {
namespace {

using graph::TaskGraph;

// ---------------------------------------------------------------------------
// LBDatabase
// ---------------------------------------------------------------------------

TEST(LBDatabase, AccumulatesLoadsAndComm) {
  LBDatabase db(3);
  db.add_load(0, 2.0);
  db.add_load(0, 3.0);
  db.add_comm(0, 1, 100.0);
  db.add_comm(1, 0, 50.0);  // same pair, reversed
  EXPECT_DOUBLE_EQ(db.load(0), 5.0);
  EXPECT_DOUBLE_EQ(db.comm(0, 1), 150.0);
  EXPECT_DOUBLE_EQ(db.comm(1, 0), 150.0);
  EXPECT_DOUBLE_EQ(db.comm(0, 2), 0.0);
  EXPECT_EQ(db.num_comm_records(), 1);
  EXPECT_DOUBLE_EQ(db.total_comm_bytes(), 150.0);
  EXPECT_DOUBLE_EQ(db.total_load(), 5.0);
}

TEST(LBDatabase, RejectsBadRecords) {
  LBDatabase db(2);
  EXPECT_THROW(db.add_comm(0, 0, 10.0), precondition_error);
  EXPECT_THROW(db.add_comm(0, 2, 10.0), precondition_error);
  EXPECT_THROW(db.add_comm(0, 1, 0.0), precondition_error);
  EXPECT_THROW(db.add_load(0, -1.0), precondition_error);
  EXPECT_THROW(db.add_load(5, 1.0), precondition_error);
}

TEST(LBDatabase, ToTaskGraphMatches) {
  LBDatabase db(4);
  db.add_load(2, 7.0);
  db.add_comm(0, 1, 10.0);
  db.add_comm(2, 3, 20.0);
  const TaskGraph g = db.to_task_graph();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.vertex_weight(2), 7.0);
  EXPECT_DOUBLE_EQ(g.edge_bytes(2, 3), 20.0);
}

TEST(LBDatabase, DumpReplayRoundTrip) {
  LBDatabase db(5);
  db.add_load(0, 1.25);
  db.add_load(4, 0.0625);
  db.add_comm(0, 4, 1234.5);
  db.add_comm(1, 2, 6.75);
  std::stringstream ss;
  db.save(ss);
  const LBDatabase back = LBDatabase::load_stream(ss);
  EXPECT_EQ(db, back);
}

TEST(LBDatabase, FileRoundTripAndErrors) {
  const auto path =
      (std::filesystem::temp_directory_path() / "topomap_lb.dump").string();
  LBDatabase db(3);
  db.add_comm(0, 2, 99.0);
  db.save_file(path);
  EXPECT_EQ(LBDatabase::load_file(path), db);
  std::filesystem::remove(path);
  EXPECT_THROW(LBDatabase::load_file(path), precondition_error);
  std::stringstream bad("not-a-dump 1\n");
  EXPECT_THROW(LBDatabase::load_stream(bad), precondition_error);
}

TEST(LBDatabase, MergeAddsWindows) {
  LBDatabase a(2), b(2);
  a.add_load(0, 1.0);
  a.add_comm(0, 1, 5.0);
  b.add_load(0, 2.0);
  b.add_comm(0, 1, 7.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.load(0), 3.0);
  EXPECT_DOUBLE_EQ(a.comm(0, 1), 12.0);
  LBDatabase wrong(3);
  EXPECT_THROW(a.merge(wrong), precondition_error);
}

// ---------------------------------------------------------------------------
// ChareRuntime
// ---------------------------------------------------------------------------

/// Ping-pong pair used to exercise the scheduler directly.
class PingPong final : public Chare {
 public:
  PingPong(int peer, int rounds) : peer_(peer), rounds_(rounds) {}
  void on_message(int src, double, std::uint64_t count) override {
    charge(1.0);
    if (src < 0) {
      send(peer_, 8.0, 1);
      return;
    }
    if (static_cast<int>(count) >= rounds_) {
      contribute_done();
      return;
    }
    send(peer_, 8.0, count + 1);
  }

 private:
  int peer_;
  int rounds_;
};

TEST(ChareRuntime, PingPongTerminatesWithExactCounts) {
  ChareRuntime rt;
  rt.insert(std::make_unique<PingPong>(1, 10));
  rt.insert(std::make_unique<PingPong>(0, 10));
  rt.start(0);
  rt.run_to_quiescence();
  // Chare 0 bootstraps and sends count 1; messages bounce until count 10.
  EXPECT_EQ(rt.messages_processed(), 1u + 10u);
  EXPECT_DOUBLE_EQ(rt.database().comm(0, 1), 10 * 8.0);
}

TEST(ChareRuntime, GuardsAgainstRunaway) {
  // A chare that replies to itself forever.
  class Loop final : public Chare {
   public:
    void on_message(int, double, std::uint64_t) override { send(0, 1.0, 0); }
  };
  ChareRuntime rt;
  rt.insert(std::make_unique<Loop>());
  rt.start(0);
  EXPECT_THROW(rt.run_to_quiescence(/*max_messages=*/1000), invariant_error);
}

TEST(ChareRuntime, InsertAfterStartRejected) {
  ChareRuntime rt;
  rt.insert(std::make_unique<PingPong>(0, 1));
  rt.start(0);
  EXPECT_THROW(rt.insert(std::make_unique<PingPong>(0, 1)),
               precondition_error);
}

// ---------------------------------------------------------------------------
// Instrumented applications
// ---------------------------------------------------------------------------

TEST(Apps, Jacobi2DDatabaseMatchesStencilGraph) {
  JacobiConfig cfg;
  cfg.nx = 6;
  cfg.ny = 4;
  cfg.iterations = 15;
  cfg.message_bytes = 512.0;
  cfg.work_per_iteration = 2.0;
  const LBDatabase db = run_jacobi2d(cfg);
  ASSERT_EQ(db.num_objects(), 24);
  // The measured graph must equal the analytic stencil pattern scaled by
  // the iteration count: each undirected edge carries 2*bytes per iter.
  const TaskGraph expected = graph::stencil_2d(6, 4, 2.0 * 512.0 * 15);
  const TaskGraph measured = db.to_task_graph();
  ASSERT_EQ(measured.num_edges(), expected.num_edges());
  for (const auto& e : expected.edges())
    EXPECT_DOUBLE_EQ(measured.edge_bytes(e.a, e.b), e.bytes);
  for (int v = 0; v < 24; ++v)
    EXPECT_DOUBLE_EQ(db.load(v), 2.0 * 15);
}

TEST(Apps, GraphExchangeReproducesInputScaledByIterations) {
  Rng rng(17);
  const TaskGraph g = graph::random_graph(30, 0.2, 16.0, 256.0, rng);
  const int iters = 7;
  const LBDatabase db = run_graph_exchange(g, iters);
  const TaskGraph measured = db.to_task_graph();
  ASSERT_EQ(measured.num_edges(), g.num_edges());
  for (const auto& e : g.edges())
    EXPECT_NEAR(measured.edge_bytes(e.a, e.b), e.bytes * iters, 1e-6);
  for (int v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(db.load(v), g.vertex_weight(v) * iters, 1e-9);
}

TEST(Apps, GraphExchangeHandlesIsolatedVertices) {
  graph::TaskGraph::Builder b("iso");
  b.add_vertices(4, 1.0);
  b.add_edge(0, 1, 8.0);
  const TaskGraph g = std::move(b).build();
  const LBDatabase db = run_graph_exchange(g, 3);
  EXPECT_DOUBLE_EQ(db.load(3), 3.0);  // isolated chare still computes
  EXPECT_DOUBLE_EQ(db.comm(0, 1), 8.0 * 3);
}

// ---------------------------------------------------------------------------
// Two-phase pipeline
// ---------------------------------------------------------------------------

TEST(Pipeline, SquareCaseSkipsPartitioning) {
  const TaskGraph g = graph::stencil_2d(6, 6, 100.0);
  const auto topo = topo::make_topology("torus:6x6");
  PipelineConfig cfg;
  cfg.mapper = core::make_strategy("topolb");
  Rng rng(1);
  const auto r = run_two_phase(g, *topo, cfg, rng);
  EXPECT_DOUBLE_EQ(r.edge_cut_bytes, g.total_comm_bytes());  // all inter-group
  EXPECT_TRUE(core::is_one_to_one(r.group_mapping, *topo));
  EXPECT_EQ(r.object_to_proc, r.group_mapping);  // identity groups
  EXPECT_LT(r.hops_per_byte, 2.0);
}

TEST(Pipeline, MdWorkloadEndToEnd) {
  graph::MdParams params;
  params.cells_x = 4;
  params.cells_y = 3;
  params.cells_z = 3;
  Rng rng(21);
  const TaskGraph md = graph::synthetic_md(params, rng);
  const auto topo = topo::make_topology("torus:4x4");
  PipelineConfig cfg;
  cfg.partitioner = part::make_partitioner("multilevel");
  cfg.mapper = core::make_strategy("topolb");
  cfg.refine_passes = 4;
  const auto r = run_two_phase(md, *topo, cfg, rng);
  ASSERT_EQ(static_cast<int>(r.object_to_proc.size()), md.num_vertices());
  EXPECT_TRUE(core::is_one_to_one(r.group_mapping, *topo));
  EXPECT_LT(r.load_imbalance, 1.4);
  EXPECT_GT(r.quotient_avg_degree, 0.0);
  // Object placement composes group-of-object with group mapping.
  for (int obj = 0; obj < md.num_vertices(); ++obj)
    EXPECT_EQ(r.object_to_proc[obj], r.group_mapping[r.group_of_object[obj]]);
  // TopoLB+refine must beat random placement on the same partition.
  PipelineConfig rnd_cfg = cfg;
  rnd_cfg.mapper = core::make_strategy("random");
  rnd_cfg.refine_passes = 0;
  Rng rng2(21);
  const auto rnd = run_two_phase(md, *topo, rnd_cfg, rng2);
  EXPECT_LT(r.hops_per_byte, rnd.hops_per_byte);
}

TEST(Pipeline, ReplayFromDumpMatchesDirectRun) {
  // +LBDump / +LBSim: strategy results computed from a reloaded dump are
  // identical to results from the live database.
  JacobiConfig cfg;
  cfg.nx = 8;
  cfg.ny = 8;
  cfg.iterations = 5;
  const LBDatabase db = run_jacobi2d(cfg);
  const auto path =
      (std::filesystem::temp_directory_path() / "topomap_replay.dump")
          .string();
  db.save_file(path);
  const LBDatabase replayed = LBDatabase::load_file(path);
  std::filesystem::remove(path);

  const auto topo = topo::make_topology("torus:8x8");
  PipelineConfig pipeline;
  pipeline.mapper = core::make_strategy("topolb");
  Rng rng1(3), rng2(3);
  const auto live = replay_database(db, *topo, pipeline, rng1);
  const auto replay = replay_database(replayed, *topo, pipeline, rng2);
  EXPECT_EQ(live.group_mapping, replay.group_mapping);
  EXPECT_DOUBLE_EQ(live.hop_bytes, replay.hop_bytes);
}

TEST(Pipeline, RequiresEnoughObjects) {
  const TaskGraph g = graph::stencil_2d(2, 2, 1.0);
  const auto topo = topo::make_topology("torus:3x3");
  PipelineConfig cfg;
  cfg.mapper = core::make_strategy("topolb");
  Rng rng(1);
  EXPECT_THROW(run_two_phase(g, *topo, cfg, rng), precondition_error);
}

TEST(Pipeline, MissingPartitionerDiagnosed) {
  const TaskGraph g = graph::stencil_2d(4, 4, 1.0);
  const auto topo = topo::make_topology("torus:2x2");
  PipelineConfig cfg;
  cfg.mapper = core::make_strategy("topolb");  // partitioner left null
  Rng rng(1);
  EXPECT_THROW(run_two_phase(g, *topo, cfg, rng), precondition_error);
}

}  // namespace
}  // namespace topomap::rts
