// Cross-cutting property suites (TEST_P): invariants that must hold for
// every combination of strategy x topology x workload x seed, plus
// simulator laws on random workloads.  These sweeps are the repository's
// regression net: they assert structural truths, not tuned constants.
#include <gtest/gtest.h>

#include <tuple>

#include "core/link_refine.hpp"
#include "core/metrics.hpp"
#include "core/refine_topo_lb.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "partition/partition.hpp"
#include "support/error.hpp"
#include "topo/factory.hpp"

namespace topomap {
namespace {

using core::Mapping;

// ---------------------------------------------------------------------------
// Strategy x topology x workload x seed
// ---------------------------------------------------------------------------

struct WorkloadFactory {
  const char* name;
  graph::TaskGraph (*build)(int n, Rng& rng);
};

graph::TaskGraph make_stencilish(int n, Rng&) {
  const auto dims = topo::balanced_dims(n, 2);
  return graph::stencil_2d(dims[0], dims[1], 256.0);
}
graph::TaskGraph make_er(int n, Rng& rng) {
  return graph::random_graph(n, 0.1, 1.0, 128.0, rng,
                             /*require_connected=*/false);
}
graph::TaskGraph make_heavy_hub(int n, Rng& rng) {
  // A hub-and-spoke pattern with random extra edges: stresses tie-breaking
  // and the criticality ordering (the hub must be placed early).
  graph::TaskGraph::Builder b("hub");
  b.add_vertices(n, 1.0);
  for (int i = 1; i < n; ++i) b.add_edge(0, i, 512.0);
  for (int i = 1; i < n; ++i) {
    const int j = 1 + static_cast<int>(rng.uniform(n - 1));
    if (j != i) b.add_edge(std::min(i, j), std::max(i, j), 16.0);
  }
  return std::move(b).build();
}

const WorkloadFactory kWorkloads[] = {
    {"stencil", make_stencilish},
    {"er", make_er},
    {"hub", make_heavy_hub},
};

class StrategyUniversalTest
    : public ::testing::TestWithParam<
          std::tuple<const char*, const char*, int, int>> {};

TEST_P(StrategyUniversalTest, BijectiveBoundedDeterministic) {
  const auto [strategy_spec, topo_spec, workload_idx, seed] = GetParam();
  const auto topo = topo::make_topology(topo_spec);
  Rng graph_rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  const graph::TaskGraph g =
      kWorkloads[workload_idx].build(topo->size(), graph_rng);
  const auto strategy = core::make_strategy(strategy_spec);

  Rng rng_a(static_cast<std::uint64_t>(seed));
  const Mapping a = strategy->map(g, *topo, rng_a);
  ASSERT_TRUE(core::is_one_to_one(a, *topo))
      << strategy_spec << " on " << topo_spec;

  // Hop-bytes bounded by [0, total_bytes * diameter].
  const double hb = core::hop_bytes(g, *topo, a);
  EXPECT_GE(hb, 0.0);
  EXPECT_LE(hb, g.total_comm_bytes() * topo->diameter() + 1e-6);

  // Identical seed => identical mapping (full determinism).
  Rng rng_b(static_cast<std::uint64_t>(seed));
  EXPECT_EQ(a, strategy->map(g, *topo, rng_b));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategyUniversalTest,
    ::testing::Combine(
        ::testing::Values("random", "topocent", "topolb", "recursive",
                          "anneal", "topolb+refine", "topolb+linkrefine"),
        ::testing::Values("torus:6x6", "mesh:4x3x3", "hypercube:5",
                          "dragonfly:5"),
        ::testing::Values(0, 1, 2),
        ::testing::Values(1, 2)));

// Topology-aware strategies beat the random expectation on structured
// workloads across all routed topologies.
class StructuredAdvantageTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(StructuredAdvantageTest, BeatsRandomExpectation) {
  const auto [strategy_spec, topo_spec] = GetParam();
  const auto topo = topo::make_topology(topo_spec);
  Rng rng(5);
  const graph::TaskGraph g = make_stencilish(topo->size(), rng);
  const auto strategy = core::make_strategy(strategy_spec);
  const double hpb = core::hops_per_byte(g, *topo, strategy->map(g, *topo, rng));
  EXPECT_LT(hpb, core::expected_random_hops(*topo))
      << strategy_spec << " on " << topo_spec;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StructuredAdvantageTest,
    ::testing::Combine(::testing::Values("topocent", "topolb", "recursive",
                                         "topolb+refine"),
                       ::testing::Values("torus:8x8", "mesh:8x8",
                                         "torus:4x4x4", "hypercube:6",
                                         "dragonfly:8")));

// ---------------------------------------------------------------------------
// Refiner composition laws
// ---------------------------------------------------------------------------

class RefinerLawTest : public ::testing::TestWithParam<int> {};

TEST_P(RefinerLawTest, RefineMonotoneAndLinkRefineL2Monotone) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto topo = topo::make_topology("torus:5x4");
  const graph::TaskGraph g =
      graph::random_graph(20, 0.25, 1.0, 64.0, rng);
  const Mapping start = rng.permutation(20);

  const auto refined = core::refine_mapping(g, *topo, start, 8);
  EXPECT_LE(refined.hop_bytes_after, refined.hop_bytes_before);
  // A second application is a no-op (fixed point).
  const auto again = core::refine_mapping(g, *topo, refined.mapping, 8);
  EXPECT_EQ(again.swaps, 0);

  const auto link = core::refine_link_load(g, *topo, refined.mapping, 4);
  EXPECT_LE(link.l2_after, link.l2_before * (1.0 + 1e-9));
  EXPECT_TRUE(core::is_one_to_one(link.mapping, *topo));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinerLawTest, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Partitioner laws on random inputs
// ---------------------------------------------------------------------------

class PartitionLawTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionLawTest, MultilevelNeverLosesBadlyToRandomCut) {
  const auto [k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 977);
  const graph::TaskGraph g = graph::random_geometric(120, 0.14, 32.0, rng);
  const auto ml = part::make_partitioner("multilevel")->partition(g, k, rng);
  const auto rd = part::make_partitioner("random")->partition(g, k, rng);
  EXPECT_LE(part::edge_cut(g, ml.assignment),
            part::edge_cut(g, rd.assignment) * 1.02)
      << "k=" << k;
  EXPECT_LT(part::load_imbalance(g, ml.assignment, k), 1.6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionLawTest,
                         ::testing::Combine(::testing::Values(2, 6, 24),
                                            ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Simulator laws on random workloads
// ---------------------------------------------------------------------------

class SimulatorLawTest
    : public ::testing::TestWithParam<std::tuple<netsim::ServiceModel, int>> {
};

TEST_P(SimulatorLawTest, LatencyBoundedBelowByNoLoadAndConserved) {
  const auto [model, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 13);
  const auto topo = topo::make_topology("torus:4x4");
  const graph::TaskGraph g = graph::random_graph(
      16, 0.3, 64.0, 2048.0, rng, /*require_connected=*/false);

  netsim::NetworkParams net;
  net.bandwidth = 300.0;
  net.per_hop_latency_us = 0.2;
  net.injection_overhead_us = 1.0;
  netsim::AppParams app;
  app.iterations = 6;
  const Mapping m = rng.permutation(16);
  const auto r = netsim::run_iterative_app(g, *topo, m, app, net, model);

  // Conservation: two messages per edge per iteration.
  EXPECT_EQ(r.messages,
            static_cast<std::uint64_t>(2 * g.num_edges() * app.iterations));
  // Latency can never beat injection overhead.
  EXPECT_GE(r.avg_message_latency_us, net.injection_overhead_us);
  EXPECT_GE(r.max_message_latency_us, r.avg_message_latency_us);
  // Completion must cover the per-task serial compute.
  EXPECT_GE(r.completion_us, app.iterations * app.compute_us);
  // Busiest link is at least the mean.
  EXPECT_GE(r.max_link_busy_us, r.mean_link_busy_us);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulatorLawTest,
    ::testing::Combine(::testing::Values(netsim::ServiceModel::kWormhole,
                                         netsim::ServiceModel::kStoreForward),
                       ::testing::Values(1, 2, 3, 4)));

}  // namespace
}  // namespace topomap
