// Topology unit + property tests: closed-form distances vs a BFS oracle,
// coordinate round-trips, routing invariants, analytic mean distances.
#include <gtest/gtest.h>

#include <memory>

#include "support/error.hpp"
#include "topo/factory.hpp"
#include "topo/fat_tree.hpp"
#include "topo/graph_topology.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::topo {
namespace {

TEST(TorusMesh, SizeAndCoordsRoundTrip) {
  const TorusMesh t = TorusMesh::torus({4, 3, 5});
  EXPECT_EQ(t.size(), 60);
  for (int p = 0; p < t.size(); ++p) EXPECT_EQ(t.index(t.coords(p)), p);
}

TEST(TorusMesh, DistanceBasics2DTorus) {
  const TorusMesh t = TorusMesh::torus({8, 8});
  EXPECT_EQ(t.distance(0, 0), 0);
  EXPECT_EQ(t.distance(0, 1), 1);
  EXPECT_EQ(t.distance(0, 7), 1);   // wraparound in x
  EXPECT_EQ(t.distance(0, 8), 1);   // +1 in y
  EXPECT_EQ(t.distance(0, 4), 4);   // antipodal in x
  EXPECT_EQ(t.diameter(), 8);
}

TEST(TorusMesh, DistanceBasics2DMesh) {
  const TorusMesh m = TorusMesh::mesh({8, 8});
  EXPECT_EQ(m.distance(0, 7), 7);  // no wraparound
  EXPECT_EQ(m.distance(0, 63), 14);
  EXPECT_EQ(m.diameter(), 14);
}

TEST(TorusMesh, DistanceSymmetryAndTriangleInequality) {
  const TorusMesh t = TorusMesh::torus({5, 4, 3});
  for (int a = 0; a < t.size(); ++a) {
    for (int b = 0; b < t.size(); ++b) {
      EXPECT_EQ(t.distance(a, b), t.distance(b, a));
      // spot-check triangle inequality through node 0
      EXPECT_LE(t.distance(a, b), t.distance(a, 0) + t.distance(0, b));
    }
  }
}

TEST(TorusMesh, NeighborsDegree) {
  const TorusMesh torus = TorusMesh::torus({4, 4, 4});
  for (int p = 0; p < torus.size(); ++p)
    EXPECT_EQ(torus.neighbors(p).size(), 6u);  // 3D torus: 6 links each

  const TorusMesh mesh = TorusMesh::mesh({4, 4});
  EXPECT_EQ(mesh.neighbors(0).size(), 2u);    // corner
  EXPECT_EQ(mesh.neighbors(1).size(), 3u);    // edge
  EXPECT_EQ(mesh.neighbors(5).size(), 4u);    // interior
}

TEST(TorusMesh, WrapWithSpanTwoHasSingleNeighborPerDim) {
  const TorusMesh t = TorusMesh::torus({2, 2});
  for (int p = 0; p < 4; ++p) EXPECT_EQ(t.neighbors(p).size(), 2u);
  EXPECT_EQ(t.distance(0, 3), 2);
}

TEST(TorusMesh, RouteIsShortestAndDimensionOrdered) {
  const TorusMesh t = TorusMesh::torus({4, 4, 4});
  for (int a = 0; a < t.size(); a += 7) {
    for (int b = 0; b < t.size(); b += 5) {
      const auto path = t.route(a, b);
      ASSERT_EQ(static_cast<int>(path.size()), t.distance(a, b) + 1);
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_EQ(t.distance(path[i], path[i + 1]), 1);
    }
  }
}

TEST(TorusMesh, MeanDistanceMatchesBruteForce) {
  for (const auto& spec : {"torus:6x6", "torus:5x7", "mesh:6x4", "torus:4x4x4",
                           "mesh:3x5x2", "hybrid:6wx5o"}) {
    const TopologyPtr t = make_topology(spec);
    for (int p = 0; p < t->size(); p += 3) {
      double brute = 0;
      for (int q = 0; q < t->size(); ++q) brute += t->distance(p, q);
      brute /= t->size();
      EXPECT_NEAR(t->mean_distance_from(p), brute, 1e-9) << spec;
    }
  }
}

TEST(TorusMesh, MeanPairwiseDistanceClosedForm) {
  // Paper §5.2.1: square 2D torus E[d] = sqrt(p)/2; cubic 3D: 3*cbrt(p)/4.
  const TorusMesh t2 = TorusMesh::torus({16, 16});
  EXPECT_NEAR(t2.mean_pairwise_distance(), 16.0 / 2.0, 1e-12);
  const TorusMesh t3 = TorusMesh::torus({8, 8, 8});
  EXPECT_NEAR(t3.mean_pairwise_distance(), 3.0 * 8.0 / 4.0, 1e-12);
}

TEST(TorusMesh, RejectsBadArguments) {
  EXPECT_THROW(TorusMesh::torus({}), precondition_error);
  EXPECT_THROW(TorusMesh::torus({0, 4}), precondition_error);
  EXPECT_THROW(TorusMesh({4, 4}, {true}), precondition_error);
  const TorusMesh t = TorusMesh::torus({4, 4});
  EXPECT_THROW(t.distance(-1, 0), precondition_error);
  EXPECT_THROW(t.distance(0, 16), precondition_error);
}

TEST(Hypercube, DistanceIsHammingAndRouteIsEcube) {
  const Hypercube h(4);
  EXPECT_EQ(h.size(), 16);
  EXPECT_EQ(h.distance(0b0000, 0b1111), 4);
  EXPECT_EQ(h.distance(5, 5), 0);
  EXPECT_EQ(h.diameter(), 4);
  const auto path = h.route(0b0000, 0b1010);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0b0000);
  EXPECT_EQ(path[1], 0b0010);
  EXPECT_EQ(path[2], 0b1010);
  EXPECT_NEAR(h.mean_pairwise_distance(), 2.0, 1e-12);
}

TEST(FatTree, DistanceByCommonSwitch) {
  const FatTree f(4, 3);  // 64 leaves
  EXPECT_EQ(f.size(), 64);
  EXPECT_EQ(f.distance(0, 0), 0);
  EXPECT_EQ(f.distance(0, 1), 2);    // siblings
  EXPECT_EQ(f.distance(0, 5), 4);    // cousins
  EXPECT_EQ(f.distance(0, 63), 6);   // through the root
  EXPECT_EQ(f.diameter(), 6);
  EXPECT_THROW(f.route(0, 1), precondition_error);
  // Oracle for the mean: brute force.
  double brute = 0;
  for (int a = 0; a < f.size(); ++a)
    for (int b = 0; b < f.size(); ++b) brute += f.distance(a, b);
  brute /= static_cast<double>(f.size()) * f.size();
  EXPECT_NEAR(f.mean_pairwise_distance(), brute, 1e-9);
}

TEST(GraphTopology, MatchesClosedFormOracle) {
  // BFS distances on an explicit copy must agree with closed forms.
  for (const auto& spec :
       {"torus:5x5", "mesh:4x6", "torus:3x3x3", "hypercube:4"}) {
    const TopologyPtr t = make_topology(spec);
    const GraphTopology g = GraphTopology::from_topology(*t);
    ASSERT_EQ(g.size(), t->size()) << spec;
    for (int a = 0; a < t->size(); ++a)
      for (int b = 0; b < t->size(); ++b)
        EXPECT_EQ(g.distance(a, b), t->distance(a, b))
            << spec << " a=" << a << " b=" << b;
    EXPECT_EQ(g.diameter(), t->diameter()) << spec;
  }
}

TEST(GraphTopology, RejectsDisconnectedAndMalformed) {
  EXPECT_THROW(GraphTopology(3, {{0, 1}}), precondition_error);        // node 2 unreachable
  EXPECT_THROW(GraphTopology(2, {{0, 0}}), precondition_error);        // self loop
  EXPECT_THROW(GraphTopology(2, {{0, 1}, {1, 0}}), precondition_error);// duplicate
  EXPECT_THROW(GraphTopology(2, {{0, 2}}), precondition_error);        // out of range
}

TEST(Factory, ParsesAllKinds) {
  EXPECT_EQ(make_topology("torus:8x8")->size(), 64);
  EXPECT_EQ(make_topology("mesh:2x3x4")->size(), 24);
  EXPECT_EQ(make_topology("hypercube:5")->size(), 32);
  EXPECT_EQ(make_topology("fattree:2x4")->size(), 16);
  EXPECT_EQ(make_topology("hybrid:4wx4o")->size(), 16);
  EXPECT_THROW(make_topology("ring:5"), precondition_error);
  EXPECT_THROW(make_topology("torus"), precondition_error);
  EXPECT_THROW(make_topology("torus:axb"), precondition_error);
}

TEST(Factory, BalancedDims) {
  EXPECT_EQ(balanced_dims(64, 3), (std::vector<int>{4, 4, 4}));
  EXPECT_EQ(balanced_dims(64, 2), (std::vector<int>{8, 8}));
  EXPECT_EQ(balanced_dims(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(balanced_dims(7, 2), (std::vector<int>{7, 1}));
  int prod = 1;
  for (int d : balanced_dims(360, 3)) prod *= d;
  EXPECT_EQ(prod, 360);
}

TEST(Factory, PerfectPowers) {
  EXPECT_TRUE(is_perfect_square(0));
  EXPECT_TRUE(is_perfect_square(1024));
  EXPECT_FALSE(is_perfect_square(1023));
  EXPECT_TRUE(is_perfect_cube(512));
  EXPECT_FALSE(is_perfect_cube(100));
}

// Property sweep: closed-form torus/mesh distance equals BFS oracle over a
// family of shapes.
class TorusOracleTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TorusOracleTest, ClosedFormEqualsBfs) {
  const TopologyPtr t = make_topology(GetParam());
  const GraphTopology oracle = GraphTopology::from_topology(*t);
  for (int a = 0; a < t->size(); ++a)
    for (int b = a; b < t->size(); ++b)
      ASSERT_EQ(t->distance(a, b), oracle.distance(a, b))
          << GetParam() << " a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Shapes, TorusOracleTest,
                         ::testing::Values("torus:2x2", "torus:3x2", "torus:7x3",
                                           "torus:2x2x2", "torus:5x4x3",
                                           "mesh:7x3", "mesh:2x2x2",
                                           "mesh:10x1", "hybrid:5wx4o",
                                           "hybrid:3ox3wx2o", "torus:9x9",
                                           "mesh:6x6x2"));

}  // namespace
}  // namespace topomap::topo
