// Network-simulator tests: analytic no-load latencies, link serialisation,
// conservation, FIFO determinism, and congestion behaviour under both
// service models.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/metrics.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "netsim/event_queue.hpp"
#include "netsim/network.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::netsim {
namespace {

using topo::TorusMesh;

/// Collects deliveries for inspection.
class Recorder final : public SimulationClient {
 public:
  void on_delivery(SimTime now, const Message& msg) override {
    deliveries.emplace_back(now, msg);
  }
  void on_app_event(SimTime now, std::uint64_t payload) override {
    app_events.emplace_back(now, payload);
  }
  std::vector<std::pair<SimTime, Message>> deliveries;
  std::vector<std::pair<SimTime, std::uint64_t>> app_events;
};

NetworkParams test_params() {
  NetworkParams p;
  p.bandwidth = 100.0;          // 100 B/us
  p.per_hop_latency_us = 1.0;
  p.injection_overhead_us = 2.0;
  p.packet_bytes = 50.0;
  return p;
}

TEST(EventQueue, OrdersByTimeThenSequence) {
  EventQueue q;
  q.push(5.0, Event::Kind::kApp, 1);
  q.push(3.0, Event::Kind::kApp, 2);
  q.push(5.0, Event::Kind::kApp, 3);  // same time: FIFO after id 1
  EXPECT_EQ(q.pop().id, 2u);
  EXPECT_EQ(q.pop().id, 1u);
  EXPECT_EQ(q.pop().id, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(Network, WormholeNoLoadLatencyClosedForm) {
  const TorusMesh t = TorusMesh::mesh({8});
  Recorder rec;
  Network net(t, test_params(), ServiceModel::kWormhole, &rec);
  net.inject(0.0, 0, 5, 200.0, 7);  // 5 hops, 200 bytes
  net.run_until_idle();
  ASSERT_EQ(rec.deliveries.size(), 1u);
  // injection 2.0 + 5 hops * 1.0 + 200/100 serialisation = 9.0
  EXPECT_NEAR(rec.deliveries[0].first, 2.0 + 5.0 * 1.0 + 2.0, 1e-9);
  EXPECT_EQ(rec.deliveries[0].second.tag, 7u);
  EXPECT_NEAR(net.latency_stats().mean(), 9.0, 1e-9);
  EXPECT_NEAR(net.hop_stats().mean(), 5.0, 1e-9);
}

TEST(Network, StoreForwardNoLoadLatencyClosedForm) {
  const TorusMesh t = TorusMesh::mesh({8});
  Recorder rec;
  Network net(t, test_params(), ServiceModel::kStoreForward, &rec);
  net.inject(0.0, 0, 3, 150.0, 0);  // 3 hops, 3 packets (50/50/50)
  net.run_until_idle();
  ASSERT_EQ(rec.deliveries.size(), 1u);
  // Per packet per hop: 50/100 + 1.0 = 1.5; pipelined packets:
  // injection 2 + hops*1.5 + (npkts-1)*0.5 = 2 + 4.5 + 1.0 = 7.5
  EXPECT_NEAR(rec.deliveries[0].first, 7.5, 1e-9);
}

TEST(Network, StoreForwardPartialLastPacket) {
  const TorusMesh t = TorusMesh::mesh({4});
  Recorder rec;
  Network net(t, test_params(), ServiceModel::kStoreForward, &rec);
  net.inject(0.0, 0, 1, 60.0, 0);  // 2 packets: 50 + 10 bytes, 1 hop
  net.run_until_idle();
  // First packet occupies the link [2.0, 2.5); second [2.5, 2.6);
  // delivery at 2.6 + 1.0 hop delay.
  EXPECT_NEAR(rec.deliveries[0].first, 3.6, 1e-9);
}

TEST(Network, ZeroHopMessageOnlyPaysInjection) {
  const TorusMesh t = TorusMesh::mesh({4});
  Recorder rec;
  Network net(t, test_params(), ServiceModel::kWormhole, &rec);
  net.inject(1.0, 2, 2, 1000.0, 0);
  net.run_until_idle();
  EXPECT_NEAR(rec.deliveries[0].first, 3.0, 1e-9);
  EXPECT_NEAR(net.hop_stats().mean(), 0.0, 1e-9);
}

TEST(Network, SharedLinkSerializesMessages) {
  // Two same-time messages over the same single link: the second waits a
  // full serialisation behind the first.
  const TorusMesh t = TorusMesh::mesh({2});
  Recorder rec;
  Network net(t, test_params(), ServiceModel::kWormhole, &rec);
  net.inject(0.0, 0, 1, 300.0, 1);
  net.inject(0.0, 0, 1, 300.0, 2);
  net.run_until_idle();
  ASSERT_EQ(rec.deliveries.size(), 2u);
  // msg1: 2 + 1 + 3 = 6; msg2 head waits until 5.0: 5 + 1 + 3 = 9.
  EXPECT_NEAR(rec.deliveries[0].first, 6.0, 1e-9);
  EXPECT_NEAR(rec.deliveries[1].first, 9.0, 1e-9);
  EXPECT_EQ(rec.deliveries[0].second.tag, 1u);  // FIFO order preserved
}

TEST(Network, OppositeDirectionsDoNotContend) {
  // Links are unidirectional: 0->1 and 1->0 are distinct resources.
  const TorusMesh t = TorusMesh::mesh({2});
  Recorder rec;
  Network net(t, test_params(), ServiceModel::kWormhole, &rec);
  net.inject(0.0, 0, 1, 300.0, 1);
  net.inject(0.0, 1, 0, 300.0, 2);
  net.run_until_idle();
  EXPECT_NEAR(rec.deliveries[0].first, 6.0, 1e-9);
  EXPECT_NEAR(rec.deliveries[1].first, 6.0, 1e-9);
}

TEST(Network, DisjointPathsDeliverInParallel) {
  const TorusMesh t = TorusMesh::torus({4, 4});
  Recorder rec;
  Network net(t, test_params(), ServiceModel::kWormhole, &rec);
  net.inject(0.0, 0, 1, 100.0, 1);
  net.inject(0.0, 10, 11, 100.0, 2);
  net.run_until_idle();
  EXPECT_NEAR(rec.deliveries[0].first, 4.0, 1e-9);
  EXPECT_NEAR(rec.deliveries[1].first, 4.0, 1e-9);
}

TEST(Network, EveryInjectedMessageIsDeliveredExactlyOnce) {
  const TorusMesh t = TorusMesh::torus({4, 4});
  Recorder rec;
  Network net(t, test_params(), ServiceModel::kStoreForward, &rec);
  Rng rng(31);
  const int kMessages = 500;
  for (int i = 0; i < kMessages; ++i) {
    const int src = static_cast<int>(rng.uniform(16));
    const int dst = static_cast<int>(rng.uniform(16));
    net.inject(rng.uniform_double(0.0, 50.0), src, dst,
               rng.uniform_double(10.0, 400.0), static_cast<std::uint64_t>(i));
  }
  net.run_until_idle();
  ASSERT_EQ(rec.deliveries.size(), static_cast<std::size_t>(kMessages));
  std::vector<char> seen(kMessages, 0);
  for (const auto& [time, msg] : rec.deliveries) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(msg.tag)]);
    seen[static_cast<std::size_t>(msg.tag)] = 1;
    EXPECT_GE(time, msg.inject_time);
  }
}

TEST(Network, SlotRecyclingKeepsMemoryBounded) {
  // Sequential messages reuse the same slot; run a long chain and check
  // statistics still count every message.
  const TorusMesh t = TorusMesh::mesh({2});
  Network net(t, test_params(), ServiceModel::kWormhole, nullptr);
  for (int i = 0; i < 1000; ++i) {
    net.inject(net.now() + 100.0 * i, 0, 1, 50.0, 0);
    net.run_until_idle();
  }
  EXPECT_EQ(net.messages_delivered(), 1000u);
}

TEST(Network, RejectsPastInjectionAndBadParams) {
  const TorusMesh t = TorusMesh::mesh({2});
  Network net(t, test_params(), ServiceModel::kWormhole, nullptr);
  net.inject(10.0, 0, 1, 10.0, 0);
  net.run_until_idle();
  EXPECT_THROW(net.inject(1.0, 0, 1, 10.0, 0), precondition_error);
  NetworkParams bad = test_params();
  bad.bandwidth = 0.0;
  EXPECT_THROW(Network(t, bad, ServiceModel::kWormhole, nullptr),
               precondition_error);
}

TEST(Network, AppEventsFireInOrder) {
  const TorusMesh t = TorusMesh::mesh({2});
  Recorder rec;
  Network net(t, test_params(), ServiceModel::kWormhole, &rec);
  net.schedule_app(5.0, 50);
  net.schedule_app(1.0, 10);
  net.run_until_idle();
  ASSERT_EQ(rec.app_events.size(), 2u);
  EXPECT_EQ(rec.app_events[0].second, 10u);
  EXPECT_EQ(rec.app_events[1].second, 50u);
}

// ---------------------------------------------------------------------------
// Iterative application
// ---------------------------------------------------------------------------

TEST(IterativeApp, SingleTaskPairProgressesInLockstep) {
  // Two tasks exchanging one message per iteration over one link.
  graph::TaskGraph::Builder b("pair");
  b.add_vertices(2);
  b.add_edge(0, 1, 200.0);  // 100 bytes each way
  const auto g = std::move(b).build();
  const TorusMesh t = TorusMesh::mesh({2});
  AppParams app;
  app.iterations = 3;
  app.compute_us = 10.0;
  const auto r = run_iterative_app(g, t, core::identity_mapping(2), app,
                                   test_params());
  EXPECT_EQ(r.messages, 2u * 3u);
  // Iteration period: compute 10 + inject 2 + 1 hop + 1.0 serialisation.
  // Completion is bounded below by iterations * (compute + latency).
  EXPECT_GT(r.completion_us, 3 * 10.0);
  EXPECT_LT(r.completion_us, 3 * (10.0 + 2.0 + 1.0 + 1.0) + 10.0);
  EXPECT_NEAR(r.mean_hops, 1.0, 1e-9);
}

TEST(IterativeApp, MessageCountMatchesPattern) {
  const auto g = graph::stencil_2d(4, 4, 100.0);
  const TorusMesh t = TorusMesh::torus({4, 4});
  AppParams app;
  app.iterations = 5;
  const auto r = run_iterative_app(g, t, core::identity_mapping(16), app,
                                   test_params());
  EXPECT_EQ(r.messages, static_cast<std::uint64_t>(2 * g.num_edges() * 5));
  EXPECT_GT(r.completion_us, 0.0);
}

TEST(IterativeApp, BetterMappingRunsFasterUnderContention) {
  // The paper's core claim end-to-end: identity (1-hop) mapping of a
  // stencil completes faster than a random mapping once bandwidth is the
  // bottleneck.
  const auto g = graph::stencil_2d(8, 8, 8000.0);  // 4 KB per direction
  const TorusMesh t = TorusMesh::torus({8, 8});
  AppParams app;
  app.iterations = 10;
  app.compute_us = 5.0;
  NetworkParams net = test_params();
  net.bandwidth = 200.0;  // heavily constrained
  Rng rng(3);
  const auto ideal =
      run_iterative_app(g, t, core::identity_mapping(64), app, net);
  const auto random = run_iterative_app(g, t, rng.permutation(64), app, net);
  EXPECT_LT(ideal.completion_us, 0.75 * random.completion_us);
  EXPECT_LT(ideal.avg_message_latency_us, random.avg_message_latency_us);
  EXPECT_LT(ideal.max_link_busy_us, random.max_link_busy_us);
}

TEST(IterativeApp, LatencyGrowsAsBandwidthShrinks) {
  // Monotone congestion response (shape of paper Fig. 7).
  const auto g = graph::stencil_2d(4, 4, 2000.0);
  const TorusMesh t = TorusMesh::torus({4, 4});
  Rng rng(5);
  const core::Mapping m = rng.permutation(16);
  AppParams app;
  app.iterations = 20;
  double last = 0.0;
  bool decreasing = true;
  for (double bw : {100.0, 300.0, 1000.0}) {
    NetworkParams net = test_params();
    net.bandwidth = bw;
    const auto r = run_iterative_app(g, t, m, app, net);
    if (last != 0.0 && r.avg_message_latency_us >= last) decreasing = false;
    last = r.avg_message_latency_us;
  }
  EXPECT_TRUE(decreasing);
}

TEST(IterativeApp, DeterministicAcrossRuns) {
  const auto g = graph::stencil_2d(4, 4, 500.0);
  const TorusMesh t = TorusMesh::torus({4, 4});
  Rng rng(8);
  const core::Mapping m = rng.permutation(16);
  AppParams app;
  app.iterations = 7;
  const auto a = run_iterative_app(g, t, m, app, test_params());
  const auto b2 = run_iterative_app(g, t, m, app, test_params());
  EXPECT_DOUBLE_EQ(a.completion_us, b2.completion_us);
  EXPECT_DOUBLE_EQ(a.avg_message_latency_us, b2.avg_message_latency_us);
}

TEST(IterativeApp, RejectsNonBijectiveMapping) {
  const auto g = graph::stencil_2d(2, 2, 10.0);
  const TorusMesh t = TorusMesh::mesh({2, 2});
  AppParams app;
  EXPECT_THROW(
      run_iterative_app(g, t, core::Mapping{0, 0, 1, 2}, app, test_params()),
      precondition_error);
}

// Both service models agree on ordering of mappings (ablation backstop).
class ServiceModelTest : public ::testing::TestWithParam<ServiceModel> {};

TEST_P(ServiceModelTest, HopByteOrderingPreserved) {
  const auto g = graph::stencil_2d(4, 4, 1000.0);
  const TorusMesh t = TorusMesh::torus({4, 4});
  AppParams app;
  app.iterations = 8;
  NetworkParams net = test_params();
  net.bandwidth = 150.0;
  Rng rng(2);
  const auto ideal = run_iterative_app(g, t, core::identity_mapping(16), app,
                                       net, GetParam());
  const auto random =
      run_iterative_app(g, t, rng.permutation(16), app, net, GetParam());
  EXPECT_LE(ideal.completion_us, random.completion_us);
}

INSTANTIATE_TEST_SUITE_P(Models, ServiceModelTest,
                         ::testing::Values(ServiceModel::kWormhole,
                                           ServiceModel::kStoreForward));

}  // namespace
}  // namespace topomap::netsim
