// Tests for the extension features: AnnealingLB, link-load refinement,
// RecursiveBisectionLB, the dragonfly topology, and dynamic re-mapping.
#include <gtest/gtest.h>

#include "core/annealing_lb.hpp"
#include "core/link_refine.hpp"
#include "core/metrics.hpp"
#include "core/recursive_map.hpp"
#include "core/refine_topo_lb.hpp"
#include "graph/builders.hpp"
#include "runtime/dynamic_lb.hpp"
#include "support/error.hpp"
#include "topo/dragonfly.hpp"
#include "topo/factory.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap {
namespace {

using core::Mapping;
using graph::stencil_2d;
using topo::TorusMesh;

// ---------------------------------------------------------------------------
// AnnealingLB
// ---------------------------------------------------------------------------

TEST(AnnealingLB, ImprovesFarBeyondRandom) {
  const auto g = stencil_2d(6, 6, 1.0);
  const TorusMesh t = TorusMesh::torus({6, 6});
  Rng rng(3);
  const Mapping m = core::AnnealingLB().map(g, t, rng);
  EXPECT_TRUE(core::is_one_to_one(m, t));
  EXPECT_LT(core::hops_per_byte(g, t, m),
            0.6 * core::expected_random_hops(t));
}

TEST(AnnealingLB, WarmStartNeverWorseThanItsSeed) {
  const auto g = stencil_2d(5, 5, 1.0);
  const TorusMesh t = TorusMesh::torus({5, 5});
  core::AnnealingOptions options;
  options.warm_start = core::make_strategy("topolb");
  options.epochs = 20;
  Rng rng(1), rng2(1);
  const Mapping seed = core::make_strategy("topolb")->map(g, t, rng2);
  const Mapping annealed = core::AnnealingLB(options).map(g, t, rng);
  // AnnealingLB returns the best-ever mapping, which includes the seed.
  EXPECT_LE(core::hop_bytes(g, t, annealed), core::hop_bytes(g, t, seed));
}

TEST(AnnealingLB, SeededDeterminism) {
  const auto g = stencil_2d(4, 4, 1.0);
  const TorusMesh t = TorusMesh::torus({4, 4});
  Rng a(9), b(9);
  EXPECT_EQ(core::AnnealingLB().map(g, t, a), core::AnnealingLB().map(g, t, b));
}

TEST(AnnealingLB, RejectsBadOptions) {
  core::AnnealingOptions bad;
  bad.cooling = 1.5;
  EXPECT_THROW(core::AnnealingLB{bad}, precondition_error);
  bad = {};
  bad.epochs = 0;
  EXPECT_THROW(core::AnnealingLB{bad}, precondition_error);
}

// ---------------------------------------------------------------------------
// Link-load refinement
// ---------------------------------------------------------------------------

TEST(LinkRefine, L2NeverIncreasesAndMaxUsuallyDrops) {
  const auto g = stencil_2d(8, 8, 100.0);
  const TorusMesh t = TorusMesh::torus({8, 8});
  Rng rng(4);
  const Mapping random = rng.permutation(64);
  const auto r = core::refine_link_load(g, t, random, 6);
  EXPECT_LE(r.l2_after, r.l2_before);
  EXPECT_LE(r.max_after, r.max_before);
  EXPECT_GT(r.swaps, 0);
  EXPECT_TRUE(core::is_one_to_one(r.mapping, t));
}

TEST(LinkRefine, FixesTheFig11MeshHotspot) {
  // The scenario from our Fig-11 reproduction: TopoLB's hop-optimal
  // embedding of an 8x8 stencil in a (4,4,4) MESH doubles messages up on
  // some links; link refinement must reduce the busiest link.
  const auto g = stencil_2d(8, 8, 100.0);
  const TorusMesh mesh = TorusMesh::mesh({4, 4, 4});
  Rng rng(1);
  const Mapping topolb = core::make_strategy("topolb")->map(g, mesh, rng);
  const auto before = core::link_loads(g, mesh, topolb);
  const auto refined = core::refine_link_load(g, mesh, topolb, 6);
  const auto after = core::link_loads(g, mesh, refined.mapping);
  EXPECT_LE(after.max_bytes, before.max_bytes);
}

TEST(LinkRefine, IdempotentOnBalancedOptimum) {
  // Identity mapping of a periodic stencil on the matching torus loads
  // every link identically; no swap can reduce the L2 norm.
  const auto g = stencil_2d(4, 4, 10.0, /*periodic=*/true);
  const TorusMesh t = TorusMesh::torus({4, 4});
  const auto r = core::refine_link_load(g, t, core::identity_mapping(16), 3);
  EXPECT_EQ(r.swaps, 0);
  EXPECT_DOUBLE_EQ(r.l2_after, r.l2_before);
}

TEST(LinkRefine, StrategyAdaptorComposes) {
  const auto g = stencil_2d(4, 4, 1.0);
  const TorusMesh t = TorusMesh::torus({4, 4});
  Rng rng(2);
  const auto s = core::make_strategy("topolb+linkrefine");
  EXPECT_EQ(s->name(), "TopoLB+LinkRefine");
  EXPECT_TRUE(core::is_one_to_one(s->map(g, t, rng), t));
  const auto chained = core::make_strategy("topolb+refine+linkrefine");
  EXPECT_TRUE(core::is_one_to_one(chained->map(g, t, rng), t));
}

// ---------------------------------------------------------------------------
// RecursiveBisectionLB
// ---------------------------------------------------------------------------

TEST(RecursiveBisectionLB, ValidAndStrongOnStencils) {
  const auto g = stencil_2d(8, 8, 1.0);
  const TorusMesh t = TorusMesh::torus({8, 8});
  Rng rng(5);
  const Mapping m = core::RecursiveBisectionLB().map(g, t, rng);
  EXPECT_TRUE(core::is_one_to_one(m, t));
  EXPECT_LT(core::hops_per_byte(g, t, m),
            0.5 * core::expected_random_hops(t));
}

TEST(RecursiveBisectionLB, HandlesOddSizesAndIrregularTopologies) {
  Rng rng(6);
  for (const char* spec : {"torus:5x3", "mesh:7x2", "hypercube:4"}) {
    const auto t = topo::make_topology(spec);
    const auto g = graph::random_graph(t->size(), 0.15, 1.0, 16.0, rng);
    const Mapping m = core::RecursiveBisectionLB().map(g, *t, rng);
    EXPECT_TRUE(core::is_one_to_one(m, *t)) << spec;
  }
}

TEST(RecursiveBisectionLB, KeepsCliquesLocal) {
  // Two 8-cliques on a 4x4 torus: each clique should occupy a compact
  // half, so intra-clique distances stay small.
  graph::TaskGraph::Builder b("cliques");
  b.add_vertices(16, 1.0);
  for (int base : {0, 8})
    for (int i = 0; i < 8; ++i)
      for (int j = i + 1; j < 8; ++j)
        b.add_edge(base + i, base + j, 10.0);
  const auto g = std::move(b).build();
  const TorusMesh t = TorusMesh::torus({4, 4});
  Rng rng(7);
  const Mapping m = core::RecursiveBisectionLB().map(g, t, rng);
  EXPECT_LT(core::hops_per_byte(g, t, m), core::expected_random_hops(t));
}

// ---------------------------------------------------------------------------
// Dragonfly topology
// ---------------------------------------------------------------------------

TEST(Dragonfly, ShapeInvariants) {
  for (int a : {2, 4, 8}) {
    const auto d = topo::make_dragonfly(a);
    EXPECT_EQ(d.size(), a * (a + 1));
    EXPECT_LE(d.diameter(), 3);
    for (int v = 0; v < d.size(); ++v)
      EXPECT_EQ(d.neighbors(v).size(), static_cast<std::size_t>(a))
          << "a=" << a << " v=" << v;  // (a-1) local + 1 global
  }
}

TEST(Dragonfly, IntraGroupDistanceIsOne) {
  const auto d = topo::make_dragonfly(4);
  for (int grp = 0; grp < 5; ++grp)
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        if (i != j) {
          EXPECT_EQ(d.distance(grp * 4 + i, grp * 4 + j), 1);
        }
}

TEST(Dragonfly, FactorySpecAndMappingWorks) {
  const auto d = topo::make_topology("dragonfly:3");
  EXPECT_EQ(d->size(), 12);
  Rng rng(8);
  const auto g = graph::random_graph(12, 0.3, 1.0, 8.0, rng);
  const Mapping m = core::make_strategy("topolb")->map(g, *d, rng);
  EXPECT_TRUE(core::is_one_to_one(m, *d));
  // Rich wiring: even random placement costs < 3 hops/byte.
  EXPECT_LE(core::expected_random_hops(*d), 3.0);
}

// ---------------------------------------------------------------------------
// Dynamic re-mapping
// ---------------------------------------------------------------------------

rts::DynamicLBConfig dynamic_config(rts::RemapPolicy policy) {
  rts::DynamicLBConfig config;
  config.epochs = 5;
  config.policy = policy;
  config.pipeline.partitioner = part::make_partitioner("multilevel");
  config.pipeline.mapper = core::make_strategy("topolb");
  return config;
}

TEST(DynamicLB, ZeroDriftIncrementalHasZeroMigrations) {
  const auto g = stencil_2d(8, 8, 16.0);
  const auto t = topo::make_topology("torus:4x4");
  auto config = dynamic_config(rts::RemapPolicy::kIncremental);
  config.load_drift = 0.0;
  config.comm_drift = 0.0;
  Rng rng(11);
  const auto history = rts::run_dynamic_lb(g, *t, config, rng);
  ASSERT_EQ(history.size(), 5u);
  for (const auto& epoch : history) EXPECT_EQ(epoch.migrations, 0);
}

TEST(DynamicLB, IncrementalMigratesLessThanScratch) {
  const auto g = stencil_2d(10, 10, 16.0);
  const auto t = topo::make_topology("torus:5x5");
  Rng rng_a(13), rng_b(13);
  const auto scratch =
      rts::run_dynamic_lb(g, *t, dynamic_config(rts::RemapPolicy::kScratch),
                          rng_a);
  const auto incremental = rts::run_dynamic_lb(
      g, *t, dynamic_config(rts::RemapPolicy::kIncremental), rng_b);
  long scratch_moves = 0, incr_moves = 0;
  for (const auto& e : scratch) scratch_moves += e.migrations;
  for (const auto& e : incremental) incr_moves += e.migrations;
  EXPECT_LT(incr_moves, scratch_moves);
  // Quality stays sane in both modes.
  for (const auto& e : incremental)
    EXPECT_LT(e.hops_per_byte, core::expected_random_hops(*t));
}

TEST(DynamicLB, FirstEpochHasNoMigrationsByDefinition) {
  const auto g = stencil_2d(4, 4, 4.0);
  const auto t = topo::make_topology("torus:4x4");
  Rng rng(17);
  const auto history =
      rts::run_dynamic_lb(g, *t, dynamic_config(rts::RemapPolicy::kScratch),
                          rng);
  EXPECT_EQ(history.front().migrations, 0);
}

TEST(DynamicLB, RejectsBadConfig) {
  const auto g = stencil_2d(4, 4, 4.0);
  const auto t = topo::make_topology("torus:4x4");
  Rng rng(1);
  auto config = dynamic_config(rts::RemapPolicy::kScratch);
  config.load_drift = 1.0;
  EXPECT_THROW(rts::run_dynamic_lb(g, *t, config, rng), precondition_error);
  config = dynamic_config(rts::RemapPolicy::kScratch);
  config.pipeline.mapper = nullptr;
  EXPECT_THROW(rts::run_dynamic_lb(g, *t, config, rng), precondition_error);
}

// ---------------------------------------------------------------------------
// Strategy factory round-trip for the new specs
// ---------------------------------------------------------------------------

TEST(Factory, NewStrategySpecs) {
  const auto g = stencil_2d(4, 4, 1.0);
  const TorusMesh t = TorusMesh::torus({4, 4});
  Rng rng(1);
  for (const char* spec : {"recursive", "anneal", "anneal-warm",
                           "topolb+linkrefine", "recursive+refine"}) {
    const auto s = core::make_strategy(spec);
    EXPECT_TRUE(core::is_one_to_one(s->map(g, t, rng), t)) << spec;
  }
}

}  // namespace
}  // namespace topomap
