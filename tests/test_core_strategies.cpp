// Mapping-strategy tests: bijectivity invariants across families (TEST_P),
// paper-shape quality checks, refiner monotonicity, factory parsing.
#include <gtest/gtest.h>

#include <tuple>

#include "core/baseline_lb.hpp"
#include "core/fault_aware.hpp"
#include "core/metrics.hpp"
#include "core/refine_topo_lb.hpp"
#include "core/topo_cent_lb.hpp"
#include "core/topo_lb.hpp"
#include "graph/builders.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topo/factory.hpp"
#include "topo/fault_overlay.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::core {
namespace {

using graph::stencil_2d;
using graph::TaskGraph;
using topo::make_topology;
using topo::TorusMesh;

TEST(TopoLB, MapsStencilOntoMatchingTorusNearOptimally) {
  // Paper Fig. 2: TopoLB maps a 2D-mesh pattern onto a 2D-torus of the same
  // size almost optimally (hops-per-byte ~= 1).
  const auto g = stencil_2d(8, 8, 1.0);
  const TorusMesh t = TorusMesh::torus({8, 8});
  Rng rng(1);
  const Mapping m = TopoLB().map(g, t, rng);
  EXPECT_TRUE(is_one_to_one(m, t));
  const double hpb = hops_per_byte(g, t, m);
  EXPECT_LT(hpb, 1.6);  // near-optimal; random would be ~4.0
  EXPECT_LT(hpb, expected_random_hops(t) / 2.0);
}

TEST(TopoLB, SubgraphCaseMeshIntoLargerTorus) {
  // Paper Fig. 4: an (8,8) 2D-mesh is a subgraph of a (4,4,4) 3D-torus, so
  // hops-per-byte can reach 1; TopoLB gets close.
  const auto g = stencil_2d(8, 8, 1.0);
  const auto t = make_topology("torus:4x4x4");
  Rng rng(1);
  const Mapping m = TopoLB().map(g, *t, rng);
  const double hpb = hops_per_byte(g, *t, m);
  EXPECT_LT(hpb, 1.8);
  EXPECT_LT(hpb, expected_random_hops(*t) / 1.5);
}

TEST(TopoLB, AllOrdersProduceValidMappings) {
  const auto g = stencil_2d(6, 6, 1.0);
  const TorusMesh t = TorusMesh::torus({6, 6});
  Rng rng(1);
  for (EstimationOrder order : {EstimationOrder::kFirst,
                                EstimationOrder::kSecond,
                                EstimationOrder::kThird}) {
    const Mapping m = TopoLB(order).map(g, t, rng);
    EXPECT_TRUE(is_one_to_one(m, t));
    EXPECT_LT(hops_per_byte(g, t, m), expected_random_hops(t));
  }
}

TEST(TopoLB, DeterministicAcrossCalls) {
  const auto g = stencil_2d(5, 5, 1.0);
  const TorusMesh t = TorusMesh::torus({5, 5});
  Rng r1(1), r2(999);  // rng is unused by TopoLB; results must match anyway
  EXPECT_EQ(TopoLB().map(g, t, r1), TopoLB().map(g, t, r2));
}

TEST(TopoLB, SymmetricTiesBreakDeterministically) {
  // A bidirectional ring on a torus: every task has the same degree, edge
  // weight, and total communication, so the selection gains are
  // *mathematically* equal for whole orbits of tasks — exactly the regime
  // where the old bit-exact `==` tie test silently depended on FP rounding
  // of the incrementally-maintained F_sum.  With the relative-epsilon
  // comparison the documented rule (comm bytes, then lowest id) decides,
  // so repeated runs, different seeds, and both estimation extremes must
  // agree with themselves.
  const TaskGraph g = graph::ring(16, 4.0);
  const TorusMesh t = TorusMesh::torus({4, 4});
  for (EstimationOrder order : {EstimationOrder::kFirst,
                                EstimationOrder::kSecond,
                                EstimationOrder::kThird}) {
    Rng r1(1), r2(12345);
    const Mapping m1 = TopoLB(order).map(g, t, r1);
    const Mapping m2 = TopoLB(order).map(g, t, r2);
    EXPECT_EQ(m1, m2);
    EXPECT_TRUE(is_one_to_one(m1, t));
    // A ring embeds into a torus with all-neighbour distances <= 2.
    EXPECT_LE(hops_per_byte(g, t, m1), 2.0);
  }
  // The ring is vertex-transitive, so the first selection is a pure tie
  // orbit: the lowest-id task must win and land on processor 0 (lowest-id
  // free processor of a node-transitive torus).
  Rng rng(7);
  const Mapping m = TopoLB().map(g, t, rng);
  EXPECT_EQ(m[0], 0);
}

TEST(TopoLB, RequiresSquareProblem) {
  const auto g = stencil_2d(3, 3, 1.0);
  const TorusMesh t = TorusMesh::torus({4, 4});
  Rng rng(1);
  EXPECT_THROW(TopoLB().map(g, t, rng), precondition_error);
}

TEST(TopoLB, HandlesGraphWithIsolatedVertices) {
  TaskGraph::Builder b("sparse");
  b.add_vertices(9);
  b.add_edge(0, 1, 5.0);
  b.add_edge(1, 2, 5.0);
  const TaskGraph g = std::move(b).build();
  const TorusMesh t = TorusMesh::torus({3, 3});
  Rng rng(1);
  const Mapping m = TopoLB().map(g, t, rng);
  EXPECT_TRUE(is_one_to_one(m, t));
  // The two communicating edges should land at distance 1.
  EXPECT_DOUBLE_EQ(hops_per_byte(g, t, m), 1.0);
}

TEST(TopoCentLB, QualityBetweenRandomAndTopoLB) {
  // Paper: TopoCentLB also produces small hops-per-byte, ~10% above TopoLB.
  const auto g = stencil_2d(10, 10, 1.0);
  const TorusMesh t = TorusMesh::torus({10, 10});
  Rng rng(1);
  const double cent = hops_per_byte(g, t, TopoCentLB().map(g, t, rng));
  const double rand = expected_random_hops(t);  // 5.0
  EXPECT_LT(cent, rand / 2.0);
}

TEST(TopoCentLB, PlacesHeaviestCommunicatorFirstSensibly) {
  // A star graph: the hub must end adjacent to all placed leaves early on;
  // every leaf of a 5-node star fits within distance 1 on a 5-node ring? No
  // — just assert validity and that hop-bytes beat the worst case.
  TaskGraph::Builder b("star");
  b.add_vertices(9);
  for (int leaf = 1; leaf < 9; ++leaf) b.add_edge(0, leaf, 10.0);
  const TaskGraph g = std::move(b).build();
  const TorusMesh t = TorusMesh::torus({3, 3});
  Rng rng(1);
  const Mapping m = TopoCentLB().map(g, t, rng);
  EXPECT_TRUE(is_one_to_one(m, t));
  // On a 3x3 torus every node pair is within 2 hops; a star hub with its 4
  // direct neighbours occupied by leaves gives hop-bytes 4*1 + 4*2 = 12
  // edges-bytes... just require better than the 2-hops-everywhere bound.
  EXPECT_LT(hop_bytes(g, t, m), 2.0 * g.total_comm_bytes());
}

TEST(Baselines, RandomLBIsSeededBijection) {
  const auto g = stencil_2d(6, 6, 1.0);
  const TorusMesh t = TorusMesh::torus({6, 6});
  Rng a(7), b(7), c(8);
  const Mapping ma = RandomLB().map(g, t, a);
  EXPECT_TRUE(is_one_to_one(ma, t));
  EXPECT_EQ(ma, RandomLB().map(g, t, b));
  EXPECT_NE(ma, RandomLB().map(g, t, c));
}

TEST(Baselines, GreedyLBBalancesOneTaskPerProcessor) {
  const auto g = stencil_2d(4, 4, 1.0);
  const TorusMesh t = TorusMesh::torus({4, 4});
  Rng rng(3);
  EXPECT_TRUE(is_one_to_one(GreedyLB().map(g, t, rng), t));
}

TEST(Refine, NeverWorsensAndFixesObviousSwap) {
  // Ring of 4 on a 2x2 torus mapped crosswise; refinement must reach the
  // optimum where every ring edge is one hop.
  const auto g = graph::ring(4, 10.0);
  const TorusMesh t = TorusMesh::torus({2, 2});
  const Mapping bad{0, 3, 1, 2};  // neighbours placed diagonally
  const RefineResult r = refine_mapping(g, t, bad);
  EXPECT_LE(r.hop_bytes_after, r.hop_bytes_before);
  EXPECT_DOUBLE_EQ(r.hop_bytes_after, g.total_comm_bytes());  // all 1 hop
  EXPECT_GT(r.swaps, 0);
}

TEST(Refine, SwapDeltaMatchesBruteForce) {
  Rng rng(11);
  const auto g = graph::random_graph(20, 0.3, 1.0, 8.0, rng);
  const TorusMesh t = TorusMesh::torus({4, 5});
  Mapping m = rng.permutation(20);
  const double before = hop_bytes(g, t, m);
  for (int a = 0; a < 20; ++a) {
    for (int b = a + 1; b < 20; ++b) {
      const double delta = swap_delta(g, t, m, a, b);
      Mapping swapped = m;
      std::swap(swapped[a], swapped[b]);
      EXPECT_NEAR(before + delta, hop_bytes(g, t, swapped), 1e-6)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Refine, ImprovesRandomSubstantially) {
  const auto g = stencil_2d(8, 8, 1.0);
  const TorusMesh t = TorusMesh::torus({8, 8});
  Rng rng(2);
  const Mapping random = RandomLB().map(g, t, rng);
  const RefineResult r = refine_mapping(g, t, random, 16);
  EXPECT_LT(r.hop_bytes_after, 0.7 * r.hop_bytes_before);
}

TEST(Factory, BuildsEveryStrategyAndRefinedVariants) {
  const auto g = stencil_2d(4, 4, 1.0);
  const TorusMesh t = TorusMesh::torus({4, 4});
  Rng rng(1);
  for (const char* spec : {"random", "greedy", "topocent", "topolb",
                           "topolb1", "topolb3", "topolb+refine",
                           "topocent+refine", "random+refine"}) {
    const StrategyPtr s = make_strategy(spec);
    ASSERT_NE(s, nullptr) << spec;
    EXPECT_TRUE(is_one_to_one(s->map(g, t, rng), t)) << spec;
    EXPECT_FALSE(s->name().empty());
  }
  EXPECT_THROW(make_strategy("does-not-exist"), precondition_error);
}

// ---------------------------------------------------------------------------
// Property sweep: every strategy yields a bijection on every (graph,
// topology, seed) combination, and the topology-aware strategies never lose
// to the expected random placement on stencil workloads.
// ---------------------------------------------------------------------------
class StrategyPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*, int>> {
};

TEST_P(StrategyPropertyTest, ProducesBijectionAndSaneQuality) {
  const auto [strategy_spec, topo_spec, seed] = GetParam();
  const auto t = make_topology(topo_spec);
  Rng graph_rng(static_cast<std::uint64_t>(seed));
  // A mixed workload with the same vertex count as the topology.
  const TaskGraph g =
      graph::random_graph(t->size(), 3.0 / t->size() + 0.08, 1.0, 64.0,
                          graph_rng, /*require_connected=*/false);
  const StrategyPtr s = make_strategy(strategy_spec);
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const Mapping m = s->map(g, *t, rng);
  ASSERT_TRUE(is_one_to_one(m, *t));
  const double hpb = hops_per_byte(g, *t, m);
  EXPECT_GE(hpb, 0.0);
  EXPECT_LE(hpb, static_cast<double>(t->diameter()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategyPropertyTest,
    ::testing::Combine(
        ::testing::Values("random", "greedy", "topocent", "topolb", "topolb1",
                          "topolb3", "topolb+refine"),
        ::testing::Values("torus:4x4", "mesh:5x3", "torus:3x3x3",
                          "hypercube:4", "fattree:3x2"),
        ::testing::Values(1, 2, 3)));

// Topology-aware strategies must clearly beat random placement on stencil
// communication across torus shapes (the paper's central claim).
class BeatsRandomTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(BeatsRandomTest, TopologyAwareBeatsRandomOnStencils) {
  const auto [strategy_spec, side] = GetParam();
  const auto g = stencil_2d(side, side, 1.0);
  const TorusMesh t = TorusMesh::torus({side, side});
  Rng rng(42);
  const StrategyPtr s = make_strategy(strategy_spec);
  const double hpb = hops_per_byte(g, t, s->map(g, t, rng));
  EXPECT_LT(hpb, 0.55 * expected_random_hops(t))
      << strategy_spec << " side=" << side;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BeatsRandomTest,
    ::testing::Combine(::testing::Values("topocent", "topolb", "topolb1",
                                         "topolb3", "topolb+refine"),
                       ::testing::Values(6, 8, 10)));

// Every strategy degrades gracefully under processor faults: mapping
// directly onto a machine with dead processors is rejected up front
// (precondition_error, not a crash or a dead placement), and map_on_alive
// yields a valid alive-only injective mapping for the same strategy.
class FaultToleranceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultToleranceTest, RejectsDeadProcessorsAndMapsOnAliveSubset) {
  const StrategyPtr s = make_strategy(GetParam());
  auto overlay = std::make_shared<topo::FaultOverlay>(make_topology("torus:4x4"));
  overlay->fail_node(6);
  overlay->fail_node(12);  // 14 alive

  // Direct mapping onto a machine with dead processors must fail fast.
  const auto square = stencil_2d(4, 4, 1.0);  // 16 tasks
  Rng rng(1);
  EXPECT_THROW(s->map(square, *overlay, rng), precondition_error);

  // Too many tasks for the alive subset must fail fast too.
  EXPECT_THROW(map_on_alive(*s, square, *overlay, rng), precondition_error);

  // The alive subset works and never places on a dead processor.
  const auto g = stencil_2d(3, 4, 1.0);  // 12 tasks <= 14 alive
  const Mapping m = map_on_alive(*s, g, *overlay, rng);
  ASSERT_EQ(m.size(), 12u);
  std::vector<char> used(16, 0);
  for (int proc : m) {
    ASSERT_GE(proc, 0);
    ASSERT_LT(proc, 16);
    EXPECT_TRUE(overlay->is_alive(proc)) << GetParam();
    EXPECT_FALSE(used[static_cast<std::size_t>(proc)]) << GetParam();
    used[static_cast<std::size_t>(proc)] = 1;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, FaultToleranceTest,
    ::testing::Values("random", "greedy", "topocent", "topolb", "topolb1",
                      "topolb3", "recursive", "anneal", "anneal-warm",
                      "topolb+refine", "topolb+linkrefine"));

}  // namespace
}  // namespace topomap::core
