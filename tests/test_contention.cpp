// Contention-explainability properties (core::attribute_link_loads).
//
// The attribution layer's claims are all exactness claims, so the tests
// cross-check three independent implementations of "bytes per link":
//
//  * attribute_link_loads — sequential routed attribution (the explainer),
//  * core::link_loads     — the parallel aggregate accounting,
//  * netsim::Network      — what a store-and-forward simulation actually
//    pushes over every link under deterministic routing.
//
// All three must agree per link and in aggregate, on every routed topology
// family, at any mapping thread count.  On top of that: contributor sums
// equal link totals (also through the JSON top-K folding), diffs are
// antisymmetric, and the soft-fault ablation's 8000 -> 1000 B hot-link
// shift is reproduced end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/contention.hpp"
#include "core/fault_aware.hpp"
#include "core/metrics.hpp"
#include "core/strategy.hpp"
#include "graph/builders.hpp"
#include "graph/factory.hpp"
#include "netsim/app.hpp"
#include "obs/json.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "topo/factory.hpp"
#include "topo/fault_overlay.hpp"

namespace topomap {
namespace {

using core::ContentionDiff;
using core::ContentionReport;
using core::Mapping;

/// Directed-link byte map (from, to) -> bytes from an attribution.
std::map<std::pair<int, int>, double> to_link_map(
    const ContentionReport& report) {
  std::map<std::pair<int, int>, double> out;
  for (const auto& link : report.links)
    out[{link.from, link.to}] = link.bytes;
  return out;
}

TEST(ContentionAttribution, AgreesWithLinkLoadsAggregates) {
  for (const std::string& topo_spec :
       {std::string("torus:6x6"), std::string("mesh:4x5"),
        std::string("torus:3x3x4"), std::string("hypercube:5"),
        std::string("dragonfly:8")}) {
    const auto topo = topo::make_topology(topo_spec);
    Rng rng(7);
    // Integral byte weights: every addend is exactly representable, so all
    // three accountings must agree bit for bit, not just approximately.
    const auto dims = topo::balanced_dims(topo->size(), 2);
    const auto g = graph::stencil_2d(dims[0], dims[1], 640.0);
    const Mapping m =
        core::make_strategy("greedy")->map(g, *topo, rng);

    const ContentionReport report = core::attribute_link_loads(g, *topo, m);
    const core::LinkLoadStats agg = core::link_loads(g, *topo, m);
    EXPECT_DOUBLE_EQ(report.stats.total_bytes, agg.total_bytes) << topo_spec;
    EXPECT_DOUBLE_EQ(report.stats.max_bytes, agg.max_bytes) << topo_spec;
    EXPECT_EQ(report.stats.links_used, agg.links_used) << topo_spec;
    EXPECT_EQ(report.stats.links_total, agg.links_total) << topo_spec;
    // The headline exactness claim: per-link totals sum to hop-bytes.
    EXPECT_DOUBLE_EQ(report.stats.total_bytes,
                     core::hop_bytes(g, *topo, m)) << topo_spec;
    // contention_stats is the same accumulation without the breakdown.
    const core::ContentionStats stats = core::contention_stats(g, *topo, m);
    EXPECT_DOUBLE_EQ(stats.total_bytes, report.stats.total_bytes);
    EXPECT_DOUBLE_EQ(stats.l2, report.stats.l2);
    EXPECT_DOUBLE_EQ(stats.gini, report.stats.gini);
  }
}

TEST(ContentionAttribution, ContributorSumsEqualLinkTotals) {
  const auto topo = topo::make_topology("torus:6x6");
  Rng rng(11);
  const auto g = graph::stencil_2d(6, 6, 96.0);
  const Mapping m = core::make_strategy("random")->map(g, *topo, rng);
  const ContentionReport report = core::attribute_link_loads(g, *topo, m);
  ASSERT_FALSE(report.links.empty());
  for (const auto& link : report.links) {
    double sum = 0.0;
    ASSERT_FALSE(link.contributors.empty());
    double prev = link.contributors.front().bytes;
    for (const auto& c : link.contributors) {
      EXPECT_LE(c.bytes, prev);  // sorted by descending bytes
      EXPECT_LT(c.a, c.b);       // canonical pair orientation
      prev = c.bytes;
      sum += c.bytes;
    }
    EXPECT_DOUBLE_EQ(sum, link.bytes);
  }
}

TEST(ContentionAttribution, StatsInvariantsUnderRandomMappings) {
  const auto topo = topo::make_topology("mesh:5x5");
  Rng rng(3);
  const auto g = graph::stencil_2d(5, 5, 64.0);
  for (int trial = 0; trial < 8; ++trial) {
    const Mapping m = core::make_strategy("random")->map(g, *topo, rng);
    const core::ContentionStats s = core::contention_stats(g, *topo, m);
    EXPECT_GE(s.max_bytes, s.mean_bytes);
    EXPECT_DOUBLE_EQ(s.mean_bytes * s.links_total, s.total_bytes);
    EXPECT_GE(s.gini, 0.0);
    EXPECT_LT(s.gini, 1.0);
    EXPECT_LE(s.max_bytes, s.l2 + 1e-9);   // l2 dominates the max
    EXPECT_LE(s.l2, s.total_bytes + 1e-9); // and is dominated by the sum
    EXPECT_LE(s.links_used, s.links_total);
  }
}

TEST(ContentionAttribution, MatchesNetsimDeliveredBytesPerLink) {
  // Store-and-forward, deterministic routes: over `iters` iterations the
  // simulator pushes exactly iters * (routed bytes) over every link, so
  // netsim::AppResult::link_flows must reproduce the attribution per link.
  const int iters = 3;
  for (const std::string& topo_spec :
       {std::string("torus:4x4"), std::string("mesh:4x4"),
        std::string("torus:2x2x4")}) {
    const auto topo = topo::make_topology(topo_spec);
    Rng rng(5);
    const auto g = graph::stencil_2d(4, 4, 512.0);
    const Mapping m = core::make_strategy("topolb")->map(g, *topo, rng);
    const ContentionReport report = core::attribute_link_loads(g, *topo, m);

    netsim::AppParams app;
    app.iterations = iters;
    netsim::NetworkParams net;
    net.routing = netsim::RoutingPolicy::kDeterministic;
    const netsim::AppResult r = netsim::run_iterative_app(
        g, *topo, m, app, net, netsim::ServiceModel::kStoreForward);

    const auto predicted = to_link_map(report);
    std::map<std::pair<int, int>, double> observed;
    for (const netsim::LinkFlow& f : r.link_flows)
      observed[{f.from, f.to}] = f.bytes;
    EXPECT_EQ(observed.size(), predicted.size()) << topo_spec;
    for (const auto& [link, bytes] : predicted) {
      const auto it = observed.find(link);
      ASSERT_NE(it, observed.end())
          << topo_spec << " link (" << link.first << "," << link.second
          << ") predicted but never used by the simulator";
      EXPECT_DOUBLE_EQ(it->second, bytes * iters)
          << topo_spec << " link (" << link.first << "," << link.second
          << ")";
    }
  }
}

TEST(ContentionAttribution, WormholeModelPushesTheSameBytes) {
  // The service model changes timing, never payload accounting.
  const auto topo = topo::make_topology("torus:4x4");
  Rng rng(5);
  const auto g = graph::stencil_2d(4, 4, 512.0);
  const Mapping m = core::make_strategy("topolb")->map(g, *topo, rng);
  netsim::AppParams app;
  app.iterations = 2;
  const auto wormhole = netsim::run_iterative_app(
      g, *topo, m, app, netsim::NetworkParams{},
      netsim::ServiceModel::kWormhole);
  const auto sf = netsim::run_iterative_app(
      g, *topo, m, app, netsim::NetworkParams{},
      netsim::ServiceModel::kStoreForward);
  ASSERT_EQ(wormhole.link_flows.size(), sf.link_flows.size());
  for (std::size_t i = 0; i < sf.link_flows.size(); ++i) {
    EXPECT_EQ(wormhole.link_flows[i].from, sf.link_flows[i].from);
    EXPECT_EQ(wormhole.link_flows[i].to, sf.link_flows[i].to);
    EXPECT_DOUBLE_EQ(wormhole.link_flows[i].bytes, sf.link_flows[i].bytes);
  }
}

TEST(ContentionAttribution, ThreadCountNeverChangesTheReport) {
  // Mapping kernels are thread-count deterministic and the attribution is
  // sequential, so the whole JSON artifact must be byte-identical.
  const auto topo = topo::make_topology("torus:8x8");
  const auto g = graph::stencil_2d(8, 8, 256.0);
  std::string dumps[2];
  int i = 0;
  for (const int threads : {1, 4}) {
    support::set_num_threads(threads);
    Rng rng(9);
    const Mapping m =
        core::make_strategy("topolb+refine")->map(g, *topo, rng);
    const ContentionReport report = core::attribute_link_loads(g, *topo, m);
    obs::json::Value doc = obs::json::Value::object();
    doc.set("stats", core::contention_stats_to_json(report.stats));
    doc.set("links", core::contention_links_to_json(report, 3));
    dumps[i++] = doc.dump();
  }
  support::set_num_threads(1);
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(ContentionAttribution, FatTreeHasNoRoutesToAttribute) {
  const auto topo = topo::make_topology("fattree:4x3");
  ASSERT_FALSE(topo->has_adjacency());
  Rng rng(1);
  const auto g = graph::make_task_graph(
      "er:" + std::to_string(topo->size()) + ":0.2", rng);
  const Mapping m = core::make_strategy("greedy")->map(g, *topo, rng);
  EXPECT_THROW(core::attribute_link_loads(g, *topo, m), precondition_error);
  EXPECT_THROW(core::contention_stats(g, *topo, m), precondition_error);
  EXPECT_THROW(core::link_loads(g, *topo, m), precondition_error);
}

TEST(ContentionDiffProps, SelfDiffIsEmpty) {
  const auto topo = topo::make_topology("torus:6x6");
  Rng rng(2);
  const auto g = graph::stencil_2d(6, 6, 128.0);
  const Mapping m = core::make_strategy("topolb")->map(g, *topo, rng);
  const ContentionReport report = core::attribute_link_loads(g, *topo, m);
  const ContentionDiff diff = core::diff_contention(report, report);
  EXPECT_TRUE(diff.links.empty());
  EXPECT_DOUBLE_EQ(diff.stats_a.total_bytes, diff.stats_b.total_bytes);
}

TEST(ContentionDiffProps, Antisymmetry) {
  const auto topo = topo::make_topology("torus:6x6");
  Rng rng(4);
  const auto g = graph::stencil_2d(6, 6, 128.0);
  const Mapping ma = core::make_strategy("greedy")->map(g, *topo, rng);
  const Mapping mb = core::make_strategy("topolb")->map(g, *topo, rng);
  const ContentionReport ra = core::attribute_link_loads(g, *topo, ma);
  const ContentionReport rb = core::attribute_link_loads(g, *topo, mb);
  const ContentionDiff ab = core::diff_contention(ra, rb);
  const ContentionDiff ba = core::diff_contention(rb, ra);
  ASSERT_EQ(ab.links.size(), ba.links.size());
  ASSERT_FALSE(ab.links.empty());
  // Same |delta| ordering with identical tie-breaks: entries correspond
  // index by index with deltas negated and off/on swapped.
  for (std::size_t i = 0; i < ab.links.size(); ++i) {
    const core::LinkDelta& f = ab.links[i];
    const core::LinkDelta& r = ba.links[i];
    EXPECT_EQ(f.from, r.from);
    EXPECT_EQ(f.to, r.to);
    EXPECT_DOUBLE_EQ(f.delta, -r.delta);
    EXPECT_DOUBLE_EQ(f.bytes_a, r.bytes_b);
    EXPECT_DOUBLE_EQ(f.bytes_b, r.bytes_a);
    ASSERT_EQ(f.moved_off.size(), r.moved_on.size());
    ASSERT_EQ(f.moved_on.size(), r.moved_off.size());
    for (std::size_t j = 0; j < f.moved_off.size(); ++j) {
      EXPECT_EQ(f.moved_off[j].a, r.moved_on[j].a);
      EXPECT_EQ(f.moved_off[j].b, r.moved_on[j].b);
      EXPECT_DOUBLE_EQ(f.moved_off[j].bytes, r.moved_on[j].bytes);
    }
  }
}

TEST(ContentionDiffProps, RejectsMismatchedMachines) {
  Rng rng(6);
  const auto g4 = graph::stencil_2d(4, 4, 64.0);
  const auto g5 = graph::stencil_2d(5, 5, 64.0);
  const auto t4 = topo::make_topology("torus:4x4");
  const auto t5 = topo::make_topology("torus:5x5");
  const Mapping m4 = core::make_strategy("greedy")->map(g4, *t4, rng);
  const Mapping m5 = core::make_strategy("greedy")->map(g5, *t5, rng);
  const ContentionReport r4 = core::attribute_link_loads(g4, *t4, m4);
  const ContentionReport r5 = core::attribute_link_loads(g5, *t5, m5);
  EXPECT_THROW(core::diff_contention(r4, r5), precondition_error);
}

TEST(ContentionJson, TopKFoldingKeepsSumsExact) {
  // contention_links_to_json truncates each link to its top-K contributors
  // but folds the tail into a sentinel {a:-1, b:-1} entry, so the parsed
  // artifact still satisfies sum(contributors) == bytes exactly.
  const auto topo = topo::make_topology("torus:6x6");
  Rng rng(8);
  const auto g = graph::make_task_graph("er:36:0.2", rng);
  const Mapping m = core::make_strategy("random")->map(g, *topo, rng);
  const ContentionReport report = core::attribute_link_loads(g, *topo, m);
  const obs::json::Value links = core::contention_links_to_json(report, 2);
  const obs::json::Value parsed = obs::json::Value::parse(links.dump());
  ASSERT_EQ(parsed.size(), report.links.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const obs::json::Value& link = parsed.items()[i];
    double sum = 0.0;
    for (const obs::json::Value& c : link.at("contributors").items())
      sum += c.at("bytes").as_number();
    EXPECT_DOUBLE_EQ(sum, link.at("bytes").as_number());
    EXPECT_LE(link.at("contributors").size(),
              std::size_t{3});  // top 2 + at most one fold entry
  }
}

TEST(ContentionSoftFaults, ReproducesTheAblationHotLinkShift) {
  // The ablation_soft_faults torus scenario, replayed through the
  // attribution layer: a health-blind topolb+refine placement pushes
  // 8000 B/iter across the degraded column cut, the health-aware one
  // 1000 B, and the diff names the shift per directed link.
  const int nx = 8, ny = 8, cut_x = 3;
  const double health = 0.25;
  const graph::TaskGraph g = graph::stencil_2d(nx, ny, 1000.0);
  const auto base = topo::make_topology("torus:8x8");
  auto overlay = std::make_shared<topo::FaultOverlay>(base);
  std::vector<std::pair<int, int>> cut;
  for (int y = 0; y < ny; ++y) {
    overlay->degrade_link(cut_x + nx * y, cut_x + 1 + nx * y, health);
    cut.emplace_back(cut_x + nx * y, cut_x + 1 + nx * y);
    cut.emplace_back(cut_x + 1 + nx * y, cut_x + nx * y);
  }

  const auto strategy = core::make_strategy("topolb+refine");
  Rng blind_rng(1);
  const Mapping blind = strategy->map(g, *base, blind_rng);
  Rng aware_rng(1);
  const Mapping aware = core::map_on_alive(*strategy, g, *overlay, aware_rng);

  const ContentionReport r_blind =
      core::attribute_link_loads(g, *overlay, blind);
  const ContentionReport r_aware =
      core::attribute_link_loads(g, *overlay, aware);
  auto cut_bytes = [&cut](const ContentionReport& r) {
    double sum = 0.0;
    const auto loads = to_link_map(r);
    for (const auto& link : cut) {
      const auto it = loads.find(link);
      if (it != loads.end()) sum += it->second;
    }
    return sum;
  };
  EXPECT_DOUBLE_EQ(cut_bytes(r_blind), 8000.0);
  EXPECT_DOUBLE_EQ(cut_bytes(r_aware), 1000.0);

  // The diff blind -> aware must carry the full -7000 B shift off the cut.
  const ContentionDiff diff = core::diff_contention(r_blind, r_aware);
  double cut_delta = 0.0;
  for (const core::LinkDelta& d : diff.links)
    for (const auto& link : cut)
      if (d.from == link.first && d.to == link.second) cut_delta += d.delta;
  EXPECT_DOUBLE_EQ(cut_delta, -7000.0);
}

}  // namespace
}  // namespace topomap
