// Runtime placement/migration accounting and the simulator's per-iteration
// timeline, plus metamorphic invariances of the mapping strategies.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/strategy.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "runtime/apps.hpp"
#include "runtime/chare.hpp"
#include "runtime/lb_manager.hpp"
#include "support/error.hpp"
#include "topo/factory.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap {
namespace {

// ---------------------------------------------------------------------------
// ChareRuntime placement & migration accounting
// ---------------------------------------------------------------------------

/// Simple chare that fires one message to a fixed peer on bootstrap.
class OneShot final : public rts::Chare {
 public:
  OneShot(int peer, double bytes) : peer_(peer), bytes_(bytes) {}
  void on_message(int src, double, std::uint64_t) override {
    if (src < 0) send(peer_, bytes_, 0);
    contribute_done();
  }

 private:
  int peer_;
  double bytes_;
};

TEST(Placement, IntraVsInterBytesFollowPlacement) {
  rts::ChareRuntime rt;
  rt.insert(std::make_unique<OneShot>(1, 100.0));
  rt.insert(std::make_unique<OneShot>(0, 50.0));
  rt.insert(std::make_unique<OneShot>(0, 25.0));
  // 0,1 colocated on proc 0; 2 on proc 1.
  EXPECT_EQ(rt.apply_placement({0, 0, 1}), 1);  // only chare 2 moved
  EXPECT_EQ(rt.processor_of(2), 1);
  for (int c = 0; c < 3; ++c) rt.start(c);
  rt.run_to_quiescence();
  EXPECT_DOUBLE_EQ(rt.intra_processor_bytes(), 150.0);  // 0<->1 both ways
  EXPECT_DOUBLE_EQ(rt.inter_processor_bytes(), 25.0);   // 2 -> 0
}

TEST(Placement, MigrationCountAndValidation) {
  rts::ChareRuntime rt;
  rt.insert(std::make_unique<OneShot>(1, 1.0));
  rt.insert(std::make_unique<OneShot>(0, 1.0));
  EXPECT_EQ(rt.apply_placement({0, 0}), 0);  // default is proc 0
  EXPECT_EQ(rt.apply_placement({3, 4}), 2);
  EXPECT_EQ(rt.apply_placement({3, 4}), 0);  // idempotent
  EXPECT_THROW(rt.apply_placement({1}), precondition_error);
  EXPECT_THROW(rt.apply_placement({-1, 0}), precondition_error);
}

/// Chare that sends half of each incident edge's bytes to its neighbours
/// once — enough to exercise the runtime's intra/inter accounting under a
/// placement.
class EdgeBurst final : public rts::Chare {
 public:
  EdgeBurst(const graph::TaskGraph& g, int vertex) : g_(g), vertex_(vertex) {}
  void on_message(int src, double, std::uint64_t) override {
    if (src < 0)
      for (const auto& e : g_.edges_of(vertex_))
        send(e.neighbor, e.bytes / 2.0, 0);
    if (src >= 0) ++received_;
    if (received_ == g_.degree(vertex_)) contribute_done();
  }

 private:
  const graph::TaskGraph& g_;
  const int vertex_;
  int received_ = 0;
};

TEST(Placement, GoodMappingTurnsTrafficIntra) {
  // Full loop: LB pipeline produces a placement; applying it to the live
  // runtime and re-running the app must localise most traffic
  // on-processor compared with a random grouping.
  const graph::TaskGraph pattern = graph::stencil_2d(8, 8, 800.0);
  const auto machine = topo::make_topology("torus:4x4");
  rts::PipelineConfig pipeline;
  pipeline.partitioner = part::make_partitioner("multilevel");
  pipeline.mapper = core::make_strategy("topolb");
  Rng rng(3);
  const auto good = rts::run_two_phase(pattern, *machine, pipeline, rng);
  const auto random_groups =
      part::make_partitioner("random")->partition(pattern, 16, rng);

  auto inter_bytes_under = [&](const std::vector<int>& placement) {
    rts::ChareRuntime rt;
    for (int v = 0; v < pattern.num_vertices(); ++v)
      rt.insert(std::make_unique<EdgeBurst>(pattern, v));
    EXPECT_GT(rt.apply_placement(placement), 0);
    for (int c = 0; c < rt.num_chares(); ++c) rt.start(c);
    rt.run_to_quiescence();
    EXPECT_TRUE(rt.all_done());
    // Every edge carries its full bytes (half each way).
    EXPECT_NEAR(rt.intra_processor_bytes() + rt.inter_processor_bytes(),
                pattern.total_comm_bytes(), 1e-6);
    return rt.inter_processor_bytes();
  };
  const double inter_good = inter_bytes_under(good.object_to_proc);
  const double inter_random = inter_bytes_under(random_groups.assignment);
  EXPECT_LT(inter_good, 0.7 * inter_random);
}

// ---------------------------------------------------------------------------
// Per-iteration timeline
// ---------------------------------------------------------------------------

TEST(IterationTimeline, MonotoneAndConsistentWithCompletion) {
  const auto g = graph::stencil_2d(4, 4, 1000.0);
  const topo::TorusMesh t = topo::TorusMesh::torus({4, 4});
  netsim::AppParams app;
  app.iterations = 12;
  app.compute_us = 5.0;
  netsim::NetworkParams net;
  net.bandwidth = 200.0;
  Rng rng(9);
  const auto r = netsim::run_iterative_app(g, t, rng.permutation(16), app, net);
  ASSERT_EQ(r.iteration_complete_us.size(), 12u);
  for (std::size_t k = 1; k < r.iteration_complete_us.size(); ++k)
    EXPECT_GE(r.iteration_complete_us[k], r.iteration_complete_us[k - 1]);
  EXPECT_GE(r.iteration_complete_us.front(), app.compute_us);
  EXPECT_LE(r.iteration_complete_us.back(), r.completion_us);
}

TEST(IterationTimeline, SteadyStateIterationPeriodStabilises) {
  const auto g = graph::stencil_2d(4, 4, 2000.0);
  const topo::TorusMesh t = topo::TorusMesh::torus({4, 4});
  netsim::AppParams app;
  app.iterations = 40;
  app.compute_us = 5.0;
  netsim::NetworkParams net;
  net.bandwidth = 150.0;
  const auto r = netsim::run_iterative_app(g, t, core::identity_mapping(16),
                                           app, net);
  // After warm-up the per-iteration period is constant for a symmetric
  // workload on a symmetric mapping.
  const auto& ts = r.iteration_complete_us;
  const double p1 = ts[20] - ts[19];
  const double p2 = ts[30] - ts[29];
  EXPECT_NEAR(p1, p2, 1e-6);
}

// ---------------------------------------------------------------------------
// Metamorphic strategy invariances
// ---------------------------------------------------------------------------

TEST(Metamorphic, TopoLBInvariantUnderUniformByteScaling) {
  // All estimation quantities scale linearly with edge bytes, so scaling
  // every edge by the same constant must not change any decision.  A
  // power-of-two scale keeps the floating-point comparisons bit-exact
  // (multiplying by 2^k is exact and order-preserving, ties included);
  // arbitrary scales could flip near-ties through rounding.
  Rng rng(5);
  const graph::TaskGraph g = graph::random_graph(36, 0.15, 1.0, 64.0, rng);
  graph::TaskGraph::Builder scaled_b("scaled");
  scaled_b.add_vertices(36);
  for (const auto& e : g.edges()) scaled_b.add_edge(e.a, e.b, e.bytes * 1024.0);
  const graph::TaskGraph scaled = std::move(scaled_b).build();
  const topo::TorusMesh t = topo::TorusMesh::torus({6, 6});
  Rng r1(1), r2(1);
  for (const char* spec : {"topolb", "topolb1", "topolb3", "topocent"}) {
    const auto s = core::make_strategy(spec);
    EXPECT_EQ(s->map(g, t, r1), s->map(scaled, t, r2)) << spec;
  }
}

TEST(Metamorphic, HopBytesLinearInByteScaling) {
  Rng rng(6);
  const graph::TaskGraph g = graph::random_graph(20, 0.3, 1.0, 9.0, rng);
  graph::TaskGraph::Builder scaled_b("scaled");
  scaled_b.add_vertices(20);
  for (const auto& e : g.edges()) scaled_b.add_edge(e.a, e.b, e.bytes * 7.0);
  const graph::TaskGraph scaled = std::move(scaled_b).build();
  const topo::TorusMesh t = topo::TorusMesh::torus({4, 5});
  const core::Mapping m = rng.permutation(20);
  EXPECT_NEAR(core::hop_bytes(scaled, t, m), 7.0 * core::hop_bytes(g, t, m),
              1e-6);
  EXPECT_NEAR(core::hops_per_byte(scaled, t, m), core::hops_per_byte(g, t, m),
              1e-9);
}

}  // namespace
}  // namespace topomap
