// Edge-case sweep across all modules: degenerate sizes, extreme shapes,
// boundary parameters — the inputs a downstream user will eventually feed.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/refine_topo_lb.hpp"
#include "core/strategy.hpp"
#include "graph/builders.hpp"
#include "graph/quotient.hpp"
#include "netsim/app.hpp"
#include "partition/partition.hpp"
#include "support/error.hpp"
#include "topo/factory.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap {
namespace {

using core::Mapping;
using topo::TorusMesh;

// ---------------------------------------------------------------------------
// Degenerate topologies
// ---------------------------------------------------------------------------

TEST(EdgeCases, SingleProcessorMachine) {
  const TorusMesh t = TorusMesh::torus({1});
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.diameter(), 0);
  EXPECT_TRUE(t.neighbors(0).empty());
  EXPECT_DOUBLE_EQ(t.mean_pairwise_distance(), 0.0);

  graph::TaskGraph::Builder b("one");
  b.add_vertex(1.0);
  const auto g = std::move(b).build();
  Rng rng(1);
  for (const char* spec : {"random", "topocent", "topolb", "recursive"}) {
    const Mapping m = core::make_strategy(spec)->map(g, t, rng);
    EXPECT_EQ(m, Mapping{0}) << spec;
  }
}

TEST(EdgeCases, OneDimensionalLineAndRing) {
  const TorusMesh line = TorusMesh::mesh({16});
  const TorusMesh ringt = TorusMesh::torus({16});
  EXPECT_EQ(line.diameter(), 15);
  EXPECT_EQ(ringt.diameter(), 8);
  const auto g = graph::ring(16, 10.0);
  Rng rng(2);
  // On the ring topology, the ring workload embeds at exactly 1 hop/byte.
  const Mapping m = core::make_strategy("topolb+refine")->map(g, ringt, rng);
  EXPECT_DOUBLE_EQ(core::hops_per_byte(g, ringt, m), 1.0);
}

TEST(EdgeCases, ExtremeAspectRatioTorus) {
  const TorusMesh t = TorusMesh::torus({64, 2});
  const auto g = graph::stencil_2d(64, 2, 1.0);
  Rng rng(3);
  const Mapping m = core::make_strategy("topolb")->map(g, t, rng);
  EXPECT_TRUE(core::is_one_to_one(m, t));
  EXPECT_LT(core::hops_per_byte(g, t, m), core::expected_random_hops(t));
}

TEST(EdgeCases, UnitExtentDimensionsCollapse) {
  // A (4,1,4) torus behaves exactly like a (4,4) torus.
  const TorusMesh squeezed = TorusMesh::torus({4, 1, 4});
  const TorusMesh flat = TorusMesh::torus({4, 4});
  ASSERT_EQ(squeezed.size(), flat.size());
  for (int a = 0; a < 16; ++a)
    for (int b = 0; b < 16; ++b)
      EXPECT_EQ(squeezed.distance(a, b), flat.distance(a, b));
}

// ---------------------------------------------------------------------------
// Degenerate workloads
// ---------------------------------------------------------------------------

TEST(EdgeCases, EdgelessWorkloadMapsWithZeroHopBytes) {
  graph::TaskGraph::Builder b("silent");
  b.add_vertices(16, 2.0);
  const auto g = std::move(b).build();
  const TorusMesh t = TorusMesh::torus({4, 4});
  Rng rng(4);
  for (const char* spec : {"topolb", "topocent", "recursive", "anneal"}) {
    const Mapping m = core::make_strategy(spec)->map(g, t, rng);
    EXPECT_TRUE(core::is_one_to_one(m, t)) << spec;
    EXPECT_DOUBLE_EQ(core::hop_bytes(g, t, m), 0.0) << spec;
  }
  EXPECT_DOUBLE_EQ(core::hops_per_byte(g, t, core::identity_mapping(16)), 0.0);
}

TEST(EdgeCases, CompleteGraphEveryMappingEquallyGood) {
  // All-to-all uniform traffic: hop-bytes is mapping-invariant, so any
  // bijection is optimal and equals bytes * mean pairwise distance over
  // distinct pairs.
  const auto g = graph::complete(16, 3.0);
  const TorusMesh t = TorusMesh::torus({4, 4});
  Rng rng(5);
  const double a = core::hop_bytes(g, t, core::identity_mapping(16));
  const double b = core::hop_bytes(g, t, rng.permutation(16));
  EXPECT_DOUBLE_EQ(a, b);
  const Mapping m = core::make_strategy("topolb")->map(g, t, rng);
  EXPECT_DOUBLE_EQ(core::hop_bytes(g, t, m), a);
}

TEST(EdgeCases, TwoTaskProblems) {
  graph::TaskGraph::Builder b("pair");
  b.add_vertices(2, 1.0);
  b.add_edge(0, 1, 100.0);
  const auto g = std::move(b).build();
  const TorusMesh t = TorusMesh::mesh({2});
  Rng rng(6);
  for (const char* spec : {"topolb", "topocent", "recursive", "anneal"}) {
    const Mapping m = core::make_strategy(spec)->map(g, t, rng);
    EXPECT_DOUBLE_EQ(core::hops_per_byte(g, t, m), 1.0) << spec;
  }
}

TEST(EdgeCases, RefinersAcceptAlreadyOptimalInput) {
  const auto g = graph::stencil_2d(4, 4, 1.0);
  const TorusMesh t = TorusMesh::torus({4, 4});
  const auto r = core::refine_mapping(g, t, core::identity_mapping(16), 4);
  EXPECT_EQ(r.swaps, 0);
  EXPECT_EQ(r.passes, 1);
  EXPECT_DOUBLE_EQ(r.hop_bytes_after, r.hop_bytes_before);
}

// ---------------------------------------------------------------------------
// Partitioning extremes
// ---------------------------------------------------------------------------

TEST(EdgeCases, PartitionSingleVertexGraph) {
  graph::TaskGraph::Builder b("solo");
  b.add_vertex(5.0);
  const auto g = std::move(b).build();
  Rng rng(7);
  const auto r = part::make_partitioner("multilevel")->partition(g, 1, rng);
  EXPECT_EQ(r.assignment, std::vector<int>{0});
}

TEST(EdgeCases, PartitionStarGraphKeepsBalance) {
  // A star: the hub is heavy; every bisection cuts hub edges.  Balance
  // must still hold on counts.
  graph::TaskGraph::Builder b("star");
  b.add_vertices(33, 1.0);
  for (int leaf = 1; leaf < 33; ++leaf) b.add_edge(0, leaf, 4.0);
  const auto g = std::move(b).build();
  Rng rng(8);
  const auto r = part::make_partitioner("multilevel")->partition(g, 4, rng);
  const auto weights = part::part_weights(g, r.assignment, 4);
  for (double w : weights) EXPECT_GE(w, 4.0);  // no starved part
}

TEST(EdgeCases, QuotientOfIdentityPartitionIsIsomorphic) {
  Rng rng(9);
  const auto g = graph::random_graph(12, 0.4, 1.0, 9.0, rng);
  std::vector<int> identity(12);
  for (int i = 0; i < 12; ++i) identity[static_cast<std::size_t>(i)] = i;
  const auto q = graph::quotient_graph(g, identity, 12);
  ASSERT_EQ(q.num_edges(), g.num_edges());
  for (const auto& e : g.edges())
    EXPECT_DOUBLE_EQ(q.edge_bytes(e.a, e.b), e.bytes);
}

// ---------------------------------------------------------------------------
// Simulator extremes
// ---------------------------------------------------------------------------

TEST(EdgeCases, SingleIterationApp) {
  const auto g = graph::stencil_2d(3, 3, 50.0);
  const TorusMesh t = TorusMesh::torus({3, 3});
  netsim::AppParams app;
  app.iterations = 1;
  netsim::NetworkParams net;
  const auto r = netsim::run_iterative_app(g, t, core::identity_mapping(9),
                                           app, net);
  EXPECT_EQ(r.messages, static_cast<std::uint64_t>(2 * g.num_edges()));
  ASSERT_EQ(r.iteration_complete_us.size(), 1u);
}

TEST(EdgeCases, ZeroComputeApp) {
  const auto g = graph::ring(8, 64.0);
  const TorusMesh t = TorusMesh::torus({8});
  netsim::AppParams app;
  app.iterations = 5;
  app.compute_us = 0.0;
  netsim::NetworkParams net;
  const auto r = netsim::run_iterative_app(g, t, core::identity_mapping(8),
                                           app, net);
  EXPECT_GT(r.completion_us, 0.0);  // still bounded by message latency
}

TEST(EdgeCases, TinyPacketsManyPerMessage) {
  const auto g = graph::ring(4, 1000.0);
  const TorusMesh t = TorusMesh::torus({4});
  netsim::AppParams app;
  app.iterations = 2;
  netsim::NetworkParams net;
  net.packet_bytes = 16.0;  // ~32 packets per 500 B message
  const auto r = netsim::run_iterative_app(g, t, core::identity_mapping(4),
                                           app, net,
                                           netsim::ServiceModel::kStoreForward);
  EXPECT_EQ(r.messages, static_cast<std::uint64_t>(2 * 4 * 2));
}

TEST(EdgeCases, WeightScaledCompute) {
  graph::TaskGraph::Builder b("skew");
  const int heavy = b.add_vertex(10.0);
  const int light = b.add_vertex(1.0);
  b.add_edge(heavy, light, 8.0);
  const auto g = std::move(b).build();
  const TorusMesh t = TorusMesh::mesh({2});
  netsim::AppParams app;
  app.iterations = 3;
  app.compute_us = 10.0;
  app.scale_compute_by_weight = true;
  netsim::NetworkParams net;
  const auto r = netsim::run_iterative_app(g, t, core::identity_mapping(2),
                                           app, net);
  // The heavy task (100 us/iter) gates every iteration.
  EXPECT_GE(r.completion_us, 3 * 100.0);
}

}  // namespace
}  // namespace topomap
