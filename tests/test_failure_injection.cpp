// Failure injection: degraded links in the network simulator, the new
// adversarial communication patterns (transpose, butterfly), hard faults
// through topo::FaultOverlay end-to-end (netsim rerouting, evacuation,
// dynamic LB with mid-run processor deaths).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/fault_aware.hpp"
#include "core/metrics.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "netsim/network.hpp"
#include "partition/partition.hpp"
#include "runtime/dynamic_lb.hpp"
#include "runtime/evacuate.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topo/factory.hpp"
#include "topo/fault_overlay.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::netsim {
namespace {

using topo::TorusMesh;

class Recorder final : public SimulationClient {
 public:
  void on_delivery(SimTime now, const Message& msg) override {
    deliveries.emplace_back(now, msg);
  }
  void on_app_event(SimTime, std::uint64_t) override {}
  std::vector<std::pair<SimTime, Message>> deliveries;
};

NetworkParams params() {
  NetworkParams p;
  p.bandwidth = 100.0;
  p.per_hop_latency_us = 1.0;
  p.injection_overhead_us = 2.0;
  return p;
}

TEST(DegradedLinks, SlowsOnlyTrafficCrossingTheLink) {
  const TorusMesh t = TorusMesh::mesh({4});
  Recorder rec;
  Network net(t, params(), ServiceModel::kWormhole, &rec);
  net.degrade_link(1, 2, 0.25);  // quarter bandwidth on 1 -> 2
  net.inject(0.0, 0, 3, 100.0, /*tag=*/1);  // crosses 0->1->2->3
  net.inject(0.0, 3, 0, 100.0, /*tag=*/2);  // reverse direction: unaffected
  net.run_until_idle();
  ASSERT_EQ(rec.deliveries.size(), 2u);
  // Unaffected: 2 + 3 hops + 1.0 serialisation = 6.0.
  // Degraded link: last link still nominal, but the head leaves hop 1 on
  // schedule — with wormhole semantics the head is unaffected and only the
  // reservation grows; the tail still arrives a nominal serialisation
  // after the head, so latency is unchanged for an isolated message...
  // unless a second message queues behind the 4x reservation.
  const double t1 = rec.deliveries[0].second.tag == 1
                        ? rec.deliveries[0].first
                        : rec.deliveries[1].first;
  const double t2 = rec.deliveries[0].second.tag == 2
                        ? rec.deliveries[0].first
                        : rec.deliveries[1].first;
  EXPECT_NEAR(t2, 6.0, 1e-9);
  EXPECT_GE(t1, t2 - 1e-9);

  // Now send two messages across the degraded link: the second must wait
  // the full 4x serialisation (4 us instead of 1 us).
  Recorder rec2;
  Network net2(t, params(), ServiceModel::kWormhole, &rec2);
  net2.degrade_link(1, 2, 0.25);
  net2.inject(0.0, 1, 2, 100.0, 1);
  net2.inject(0.0, 1, 2, 100.0, 2);
  net2.run_until_idle();
  // The degraded link serialises at 4x: first message delivers at
  // 2 (inject) + 1 (hop) + 4 (slow serialisation) = 7.0; the second queues
  // behind the 4 us reservation (head starts at 6): 6 + 1 + 4 = 11.0.
  EXPECT_NEAR(rec2.deliveries[0].first, 7.0, 1e-9);
  EXPECT_NEAR(rec2.deliveries[1].first, 11.0, 1e-9);
}

TEST(DegradedLinks, StoreForwardPacketsSlowDirectly) {
  const TorusMesh t = TorusMesh::mesh({2});
  Recorder rec;
  Network net(t, params(), ServiceModel::kStoreForward, &rec);
  net.degrade_link(0, 1, 0.5);
  net.inject(0.0, 0, 1, 100.0, 0);  // one 100B packet... packet_bytes=256
  net.run_until_idle();
  // Single packet of 100 bytes at half bandwidth: 2 + 100/100*2 + 1 = 5.0.
  EXPECT_NEAR(rec.deliveries[0].first, 5.0, 1e-9);
}

TEST(DegradedLinks, RejectsBadFactor) {
  const TorusMesh t = TorusMesh::mesh({2});
  Network net(t, params(), ServiceModel::kWormhole, nullptr);
  EXPECT_THROW(net.degrade_link(0, 1, 0.0), precondition_error);
  EXPECT_THROW(net.degrade_link(0, 1, 1.5), precondition_error);
}

TEST(DegradedLinks, AppLevelResilienceOfGoodMappings) {
  // Degrade a handful of links: the identity mapping of a stencil uses
  // each link lightly, so it degrades gracefully; the random mapping
  // funnels many routes through hot links and suffers more.
  const auto g = graph::stencil_2d(8, 8, 4000.0);
  const TorusMesh t = TorusMesh::torus({8, 8});
  AppParams app;
  app.iterations = 20;
  NetworkParams net = params();
  net.bandwidth = 400.0;
  std::vector<DegradedLink> degraded;
  for (int i = 0; i < 8; ++i) degraded.push_back({i, (i + 1) % 8, 0.25});

  Rng rng(7);
  const core::Mapping ideal = core::identity_mapping(64);
  const core::Mapping random = rng.permutation(64);
  const auto ideal_clean = run_iterative_app(g, t, ideal, app, net);
  const auto ideal_degraded = run_iterative_app(
      g, t, ideal, app, net, ServiceModel::kWormhole, degraded);
  const auto random_degraded = run_iterative_app(
      g, t, random, app, net, ServiceModel::kWormhole, degraded);
  EXPECT_GE(ideal_degraded.completion_us, ideal_clean.completion_us);
  EXPECT_GT(random_degraded.completion_us, ideal_degraded.completion_us);
}

}  // namespace
}  // namespace topomap::netsim

namespace topomap::graph {
namespace {

TEST(Patterns, TransposeShape) {
  const TaskGraph g = transpose(4, 10.0);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 6);  // n*(n-1)/2 off-diagonal pairs
  EXPECT_TRUE(g.has_edge(1, 4));   // (0,1) <-> (1,0)
  EXPECT_TRUE(g.has_edge(7, 13));  // (1,3) <-> (3,1)
  EXPECT_FALSE(g.has_edge(0, 5));  // diagonal tasks are isolated
  EXPECT_EQ(g.degree(0), 0);
  EXPECT_EQ(g.degree(5), 0);
}

TEST(Patterns, ButterflyShape) {
  const TaskGraph g = butterfly(3, 8.0);
  EXPECT_EQ(g.num_vertices(), 8);
  EXPECT_EQ(g.num_edges(), 3 * 4);  // stages * n/2
  for (int v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_TRUE(is_connected(g));
}

TEST(Patterns, ButterflyMapsPerfectlyOntoHypercube) {
  // The butterfly pattern *is* the hypercube adjacency: identity mapping
  // onto hypercube:3 gives exactly 1 hop per byte.
  const TaskGraph g = butterfly(3, 8.0);
  const topo::Hypercube h(3);
  EXPECT_DOUBLE_EQ(
      core::hops_per_byte(g, h, core::identity_mapping(8)), 1.0);
}

TEST(Patterns, RejectsBadArguments) {
  EXPECT_THROW(transpose(1, 1.0), precondition_error);
  EXPECT_THROW(butterfly(0, 1.0), precondition_error);
}

}  // namespace
}  // namespace topomap::graph

namespace topomap::netsim {
namespace {

using topo::FaultOverlay;
using topo::TorusMesh;

TEST(FaultedNetwork, FailedLinkVanishesAndTrafficReroutes) {
  // Building a Network from an overlay drops the failed link, so the
  // simulator's dimension-ordered routes follow the overlay's reroutes.
  const auto base = topo::make_topology("torus:4");
  auto overlay = std::make_shared<FaultOverlay>(base);
  overlay->fail_link(1, 2);

  Recorder rec;
  Network net(*overlay, params(), ServiceModel::kWormhole, &rec);
  net.inject(0.0, 1, 2, 100.0, /*tag=*/1);
  net.run_until_idle();
  ASSERT_EQ(rec.deliveries.size(), 1u);
  // Direct link is gone: the message takes 1 -> 0 -> 3 -> 2 (3 hops):
  // 2 (inject) + 3 (hops) + 1 (serialisation) = 6.0 instead of 4.0.
  EXPECT_NEAR(rec.deliveries[0].first, 6.0, 1e-9);
}

TEST(FaultedNetwork, AppCompletesOnFaultedMachine) {
  const auto base = topo::make_topology("torus:4x4");
  auto overlay = std::make_shared<FaultOverlay>(base);
  overlay->fail_link(0, 1);
  overlay->fail_link(5, 9);

  const auto g = graph::stencil_2d(4, 4, 2000.0);
  AppParams app;
  app.iterations = 5;
  Rng rng(3);
  const core::Mapping m = core::identity_mapping(16);
  const auto clean = run_iterative_app(g, *base, m, app, params());
  const auto faulted = run_iterative_app(g, *overlay, m, app, params());
  EXPECT_GT(faulted.completion_us, 0.0);
  EXPECT_TRUE(std::isfinite(faulted.completion_us));
  // Losing two links can only lengthen routes and add contention.
  EXPECT_GE(faulted.completion_us, clean.completion_us - 1e-9);
}

}  // namespace
}  // namespace topomap::netsim

namespace topomap::rts {
namespace {

using topo::FaultOverlay;

TEST(Evacuate, ZeroRefineMovesExactlyTheStrandedTasks) {
  const auto g = graph::stencil_2d(3, 4, 1.0);  // 12 tasks
  auto overlay =
      std::make_shared<FaultOverlay>(topo::make_topology("torus:4x4"));
  // Place tasks 0..11 on processors 0..11, then kill 3 occupied processors.
  const core::Mapping previous = core::identity_mapping(12);
  overlay->fail_node(2);
  overlay->fail_node(7);
  overlay->fail_node(11);

  const EvacuationResult r = evacuate(g, *overlay, previous, /*refine=*/0);
  EXPECT_EQ(r.stranded, 3);
  EXPECT_EQ(r.migrations, 3);  // exactly the stranded tasks, nothing else
  EXPECT_EQ(r.refine_swaps, 0);
  EXPECT_GT(r.hop_bytes, 0.0);
  ASSERT_EQ(r.mapping.size(), 12u);
  std::vector<char> used(16, 0);
  for (std::size_t task = 0; task < 12; ++task) {
    const int proc = r.mapping[task];
    ASSERT_GE(proc, 0);
    ASSERT_LT(proc, 16);
    EXPECT_TRUE(overlay->is_alive(proc));
    EXPECT_FALSE(used[static_cast<std::size_t>(proc)]);
    used[static_cast<std::size_t>(proc)] = 1;
    if (overlay->is_alive(previous[task]))
      EXPECT_EQ(proc, previous[task]) << "survivor " << task << " moved";
  }
  // Deterministic.
  EXPECT_EQ(evacuate(g, *overlay, previous, 0).mapping, r.mapping);
}

TEST(Evacuate, RefinementNeverWorsensHopBytes) {
  const auto g = graph::stencil_2d(3, 4, 1.0);
  auto overlay =
      std::make_shared<FaultOverlay>(topo::make_topology("torus:4x4"));
  const core::Mapping previous = core::identity_mapping(12);
  overlay->fail_node(5);
  overlay->fail_node(6);
  const EvacuationResult r0 = evacuate(g, *overlay, previous, 0);
  const EvacuationResult r2 = evacuate(g, *overlay, previous, 2);
  EXPECT_LE(r2.hop_bytes, r0.hop_bytes + 1e-9);
  EXPECT_GE(r2.migrations, r2.stranded);
  EXPECT_LE(r2.migrations, r2.stranded + 2 * r2.refine_swaps + 12);
}

TEST(Evacuate, FailsFastWhenStrandedCannotFit) {
  const auto g = graph::stencil_2d(4, 4, 1.0);  // 16 tasks on 16 procs
  auto overlay =
      std::make_shared<FaultOverlay>(topo::make_topology("torus:4x4"));
  const core::Mapping previous = core::identity_mapping(16);
  overlay->fail_node(9);  // zero free alive processors remain
  EXPECT_THROW(evacuate(g, *overlay, previous, 0), precondition_error);
}

TEST(Evacuate, ComparisonMigratesFarLessThanFullRemap) {
  const auto g = graph::stencil_2d(7, 8, 1.0);  // 56 tasks
  auto overlay =
      std::make_shared<FaultOverlay>(topo::make_topology("torus:8x8"));
  Rng rng(1);
  const auto strategy = core::make_strategy("topolb");
  const core::Mapping previous =
      core::map_on_alive(*strategy, g, *overlay, rng);
  overlay->fail_node(previous[10]);
  overlay->fail_node(previous[30]);

  const EvacuateComparison cmp =
      compare_evacuate_vs_remap(g, *overlay, previous, *strategy, rng);
  EXPECT_EQ(cmp.evac.stranded, 2);
  EXPECT_LT(cmp.evac.migrations, cmp.full_migrations / 4);
  EXPECT_GT(cmp.full_hop_bytes, 0.0);
  // Acceptance: patching stays within 10% of the full remap's hop-bytes.
  EXPECT_LE(cmp.evac.hop_bytes, 1.10 * cmp.full_hop_bytes);
}

TEST(DynamicLBFaults, ShrinksMachineAndKeepsPlacementsAlive) {
  const auto g = graph::stencil_2d(6, 6, 1.0);  // 36 objects
  const auto topo = topo::make_topology("torus:6x6");
  for (const RemapPolicy policy :
       {RemapPolicy::kScratch, RemapPolicy::kIncremental}) {
    DynamicLBConfig config;
    config.epochs = 6;
    config.policy = policy;
    config.pipeline.partitioner = part::make_partitioner("multilevel");
    config.pipeline.mapper = core::make_strategy("topolb");
    config.faults = {{2, 7}, {2, 8}, {4, 20}};
    Rng rng(11);
    const auto history = run_dynamic_lb(g, *topo, config, rng);
    ASSERT_EQ(history.size(), 6u);
    EXPECT_EQ(history[0].alive_procs, 36);
    EXPECT_EQ(history[1].alive_procs, 36);
    EXPECT_EQ(history[2].alive_procs, 34);
    EXPECT_EQ(history[3].alive_procs, 34);
    EXPECT_EQ(history[4].alive_procs, 33);
    EXPECT_EQ(history[5].alive_procs, 33);
    for (const DynamicEpochStats& s : history) {
      EXPECT_GT(s.hops_per_byte, 0.0);
      EXPECT_TRUE(std::isfinite(s.hops_per_byte));
      EXPECT_GE(s.load_imbalance, 1.0 - 1e-9);
    }
    // The fault epoch forces migrations off the dead processors.
    EXPECT_GT(history[2].migrations, 0);
  }
}

TEST(DynamicLBFaults, ValidatesFaultEvents) {
  const auto g = graph::stencil_2d(4, 4, 1.0);
  const auto topo = topo::make_topology("torus:4x4");
  DynamicLBConfig config;
  config.epochs = 3;
  config.pipeline.mapper = core::make_strategy("topolb");
  config.faults = {{1, 5}};
  Rng rng(1);
  // Faults require a partitioner (objects outnumber alive processors).
  EXPECT_THROW(run_dynamic_lb(g, *topo, config, rng), precondition_error);
  config.pipeline.partitioner = part::make_partitioner("multilevel");
  config.faults = {{7, 5}};  // epoch out of range
  EXPECT_THROW(run_dynamic_lb(g, *topo, config, rng), precondition_error);
  config.faults = {{1, 99}};  // processor out of range
  EXPECT_THROW(run_dynamic_lb(g, *topo, config, rng), precondition_error);
}

}  // namespace
}  // namespace topomap::rts
