// Failure injection: degraded links in the network simulator, and the new
// adversarial communication patterns (transpose, butterfly).
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "graph/builders.hpp"
#include "netsim/app.hpp"
#include "netsim/network.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::netsim {
namespace {

using topo::TorusMesh;

class Recorder final : public SimulationClient {
 public:
  void on_delivery(SimTime now, const Message& msg) override {
    deliveries.emplace_back(now, msg);
  }
  void on_app_event(SimTime, std::uint64_t) override {}
  std::vector<std::pair<SimTime, Message>> deliveries;
};

NetworkParams params() {
  NetworkParams p;
  p.bandwidth = 100.0;
  p.per_hop_latency_us = 1.0;
  p.injection_overhead_us = 2.0;
  return p;
}

TEST(DegradedLinks, SlowsOnlyTrafficCrossingTheLink) {
  const TorusMesh t = TorusMesh::mesh({4});
  Recorder rec;
  Network net(t, params(), ServiceModel::kWormhole, &rec);
  net.degrade_link(1, 2, 0.25);  // quarter bandwidth on 1 -> 2
  net.inject(0.0, 0, 3, 100.0, /*tag=*/1);  // crosses 0->1->2->3
  net.inject(0.0, 3, 0, 100.0, /*tag=*/2);  // reverse direction: unaffected
  net.run_until_idle();
  ASSERT_EQ(rec.deliveries.size(), 2u);
  // Unaffected: 2 + 3 hops + 1.0 serialisation = 6.0.
  // Degraded link: last link still nominal, but the head leaves hop 1 on
  // schedule — with wormhole semantics the head is unaffected and only the
  // reservation grows; the tail still arrives a nominal serialisation
  // after the head, so latency is unchanged for an isolated message...
  // unless a second message queues behind the 4x reservation.
  const double t1 = rec.deliveries[0].second.tag == 1
                        ? rec.deliveries[0].first
                        : rec.deliveries[1].first;
  const double t2 = rec.deliveries[0].second.tag == 2
                        ? rec.deliveries[0].first
                        : rec.deliveries[1].first;
  EXPECT_NEAR(t2, 6.0, 1e-9);
  EXPECT_GE(t1, t2 - 1e-9);

  // Now send two messages across the degraded link: the second must wait
  // the full 4x serialisation (4 us instead of 1 us).
  Recorder rec2;
  Network net2(t, params(), ServiceModel::kWormhole, &rec2);
  net2.degrade_link(1, 2, 0.25);
  net2.inject(0.0, 1, 2, 100.0, 1);
  net2.inject(0.0, 1, 2, 100.0, 2);
  net2.run_until_idle();
  // The degraded link serialises at 4x: first message delivers at
  // 2 (inject) + 1 (hop) + 4 (slow serialisation) = 7.0; the second queues
  // behind the 4 us reservation (head starts at 6): 6 + 1 + 4 = 11.0.
  EXPECT_NEAR(rec2.deliveries[0].first, 7.0, 1e-9);
  EXPECT_NEAR(rec2.deliveries[1].first, 11.0, 1e-9);
}

TEST(DegradedLinks, StoreForwardPacketsSlowDirectly) {
  const TorusMesh t = TorusMesh::mesh({2});
  Recorder rec;
  Network net(t, params(), ServiceModel::kStoreForward, &rec);
  net.degrade_link(0, 1, 0.5);
  net.inject(0.0, 0, 1, 100.0, 0);  // one 100B packet... packet_bytes=256
  net.run_until_idle();
  // Single packet of 100 bytes at half bandwidth: 2 + 100/100*2 + 1 = 5.0.
  EXPECT_NEAR(rec.deliveries[0].first, 5.0, 1e-9);
}

TEST(DegradedLinks, RejectsBadFactor) {
  const TorusMesh t = TorusMesh::mesh({2});
  Network net(t, params(), ServiceModel::kWormhole, nullptr);
  EXPECT_THROW(net.degrade_link(0, 1, 0.0), precondition_error);
  EXPECT_THROW(net.degrade_link(0, 1, 1.5), precondition_error);
}

TEST(DegradedLinks, AppLevelResilienceOfGoodMappings) {
  // Degrade a handful of links: the identity mapping of a stencil uses
  // each link lightly, so it degrades gracefully; the random mapping
  // funnels many routes through hot links and suffers more.
  const auto g = graph::stencil_2d(8, 8, 4000.0);
  const TorusMesh t = TorusMesh::torus({8, 8});
  AppParams app;
  app.iterations = 20;
  NetworkParams net = params();
  net.bandwidth = 400.0;
  std::vector<DegradedLink> degraded;
  for (int i = 0; i < 8; ++i) degraded.push_back({i, (i + 1) % 8, 0.25});

  Rng rng(7);
  const core::Mapping ideal = core::identity_mapping(64);
  const core::Mapping random = rng.permutation(64);
  const auto ideal_clean = run_iterative_app(g, t, ideal, app, net);
  const auto ideal_degraded = run_iterative_app(
      g, t, ideal, app, net, ServiceModel::kWormhole, degraded);
  const auto random_degraded = run_iterative_app(
      g, t, random, app, net, ServiceModel::kWormhole, degraded);
  EXPECT_GE(ideal_degraded.completion_us, ideal_clean.completion_us);
  EXPECT_GT(random_degraded.completion_us, ideal_degraded.completion_us);
}

}  // namespace
}  // namespace topomap::netsim

namespace topomap::graph {
namespace {

TEST(Patterns, TransposeShape) {
  const TaskGraph g = transpose(4, 10.0);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 6);  // n*(n-1)/2 off-diagonal pairs
  EXPECT_TRUE(g.has_edge(1, 4));   // (0,1) <-> (1,0)
  EXPECT_TRUE(g.has_edge(7, 13));  // (1,3) <-> (3,1)
  EXPECT_FALSE(g.has_edge(0, 5));  // diagonal tasks are isolated
  EXPECT_EQ(g.degree(0), 0);
  EXPECT_EQ(g.degree(5), 0);
}

TEST(Patterns, ButterflyShape) {
  const TaskGraph g = butterfly(3, 8.0);
  EXPECT_EQ(g.num_vertices(), 8);
  EXPECT_EQ(g.num_edges(), 3 * 4);  // stages * n/2
  for (int v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_TRUE(is_connected(g));
}

TEST(Patterns, ButterflyMapsPerfectlyOntoHypercube) {
  // The butterfly pattern *is* the hypercube adjacency: identity mapping
  // onto hypercube:3 gives exactly 1 hop per byte.
  const TaskGraph g = butterfly(3, 8.0);
  const topo::Hypercube h(3);
  EXPECT_DOUBLE_EQ(
      core::hops_per_byte(g, h, core::identity_mapping(8)), 1.0);
}

TEST(Patterns, RejectsBadArguments) {
  EXPECT_THROW(transpose(1, 1.0), precondition_error);
  EXPECT_THROW(butterfly(0, 1.0), precondition_error);
}

}  // namespace
}  // namespace topomap::graph
