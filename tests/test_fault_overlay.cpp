// Fault-tolerance layer: FaultOverlay semantics, SubTopology re-indexing,
// incremental DistanceCache repair (property-tested against from-scratch
// rebuilds), alive-subset mapping, and evacuation determinism.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/fault_aware.hpp"
#include "core/mapping.hpp"
#include "core/strategy.hpp"
#include "graph/builders.hpp"
#include "runtime/evacuate.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "topo/distance_cache.hpp"
#include "topo/factory.hpp"
#include "topo/fault_overlay.hpp"
#include "topo/sub_topology.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::topo {
namespace {

TopologyPtr ring8() { return make_topology("torus:8"); }

TEST(FaultOverlay, PristineOverlayDelegatesToBase) {
  const auto base = make_topology("torus:4x4");
  FaultOverlay overlay(base);
  EXPECT_EQ(overlay.size(), base->size());
  EXPECT_FALSE(overlay.has_faults());
  EXPECT_EQ(overlay.num_alive(), 16);
  EXPECT_EQ(overlay.version(), 0);
  for (int a = 0; a < 16; ++a) {
    EXPECT_EQ(overlay.neighbors(a), base->neighbors(a));
    EXPECT_DOUBLE_EQ(overlay.mean_distance_from(a),
                     base->mean_distance_from(a));
    for (int b = 0; b < 16; ++b)
      EXPECT_EQ(overlay.distance(a, b), base->distance(a, b));
  }
  EXPECT_EQ(overlay.diameter(), base->diameter());
}

TEST(FaultOverlay, FailedLinkDisappearsAndTrafficReroutes) {
  FaultOverlay overlay(ring8());
  EXPECT_EQ(overlay.distance(0, 1), 1);
  overlay.fail_link(0, 1);
  EXPECT_TRUE(overlay.link_failed(0, 1));
  EXPECT_TRUE(overlay.link_failed(1, 0));  // undirected
  EXPECT_EQ(overlay.version(), 1);
  // The ring's only alternative runs all the way around.
  EXPECT_EQ(overlay.distance(0, 1), 7);
  const auto nb0 = overlay.neighbors(0);
  EXPECT_EQ(nb0, (std::vector<int>{7}));
  const auto path = overlay.route(0, 1);
  ASSERT_EQ(path.size(), 8u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 1);
  // Unaffected pairs keep the base's route.
  EXPECT_EQ(overlay.route(2, 4), ring8()->route(2, 4));
}

TEST(FaultOverlay, FailedNodeIsIsolatedAndRejected) {
  FaultOverlay overlay(make_topology("torus:4x4"));
  overlay.fail_node(5);
  EXPECT_FALSE(overlay.is_alive(5));
  EXPECT_EQ(overlay.num_alive(), 15);
  EXPECT_TRUE(overlay.neighbors(5).empty());
  for (int q : overlay.neighbors(4))
    EXPECT_NE(q, 5);  // dead processors vanish from neighbor lists
  EXPECT_THROW(overlay.distance(5, 0), precondition_error);
  EXPECT_THROW(overlay.distance(0, 5), precondition_error);
  EXPECT_THROW(overlay.route(5, 0), precondition_error);
  EXPECT_DOUBLE_EQ(overlay.mean_distance_from(5), 0.0);
  const auto alive = overlay.alive_procs();
  EXPECT_EQ(alive.size(), 15u);
  for (int p : alive) EXPECT_NE(p, 5);
}

TEST(FaultOverlay, DisconnectionFailsFastNotUndefined) {
  // 1D mesh 0-1-2: killing the middle node splits the machine.
  const auto base = std::make_shared<TorusMesh>(TorusMesh::mesh({3}));
  FaultOverlay overlay(base);
  overlay.fail_node(1);
  EXPECT_THROW(overlay.distance(0, 2), precondition_error);
  EXPECT_THROW(overlay.route(0, 2), precondition_error);
  // write_distance_row reports the disconnect as kUnreachable instead.
  std::vector<std::uint16_t> row(3);
  overlay.write_distance_row(0, row.data());
  EXPECT_EQ(row[0], 0);
  EXPECT_EQ(row[1], FaultOverlay::kUnreachable);
  EXPECT_EQ(row[2], FaultOverlay::kUnreachable);
}

TEST(FaultOverlay, ValidatesFaultRequests) {
  FaultOverlay overlay(make_topology("torus:4x4"));
  EXPECT_THROW(overlay.fail_link(0, 5), precondition_error);   // not a link
  EXPECT_THROW(overlay.fail_link(0, 0), precondition_error);   // self
  EXPECT_THROW(overlay.fail_link(0, 99), precondition_error);  // range
  EXPECT_THROW(overlay.fail_node(-1), precondition_error);
  // Idempotent faults do not bump the version.
  overlay.fail_node(3);
  const int v = overlay.version();
  overlay.fail_node(3);
  EXPECT_EQ(overlay.version(), v);
}

TEST(FaultOverlay, FatTreeSupportsNodeFaultsOnly) {
  const auto base = make_topology("fattree:3x2");  // 9 leaves
  FaultOverlay overlay(base);
  EXPECT_FALSE(overlay.has_adjacency());
  EXPECT_THROW(overlay.fail_link(0, 1), precondition_error);
  overlay.fail_node(4);
  EXPECT_EQ(overlay.num_alive(), 8);
  // Survivor distances are untouched: fat-tree links attach leaves to
  // switches, so removing a leaf removes no inter-leaf capacity.
  for (int a = 0; a < 9; ++a) {
    if (!overlay.is_alive(a)) continue;
    for (int b = 0; b < 9; ++b) {
      if (!overlay.is_alive(b)) continue;
      EXPECT_EQ(overlay.distance(a, b), base->distance(a, b));
    }
  }
  EXPECT_THROW(overlay.distance(4, 0), precondition_error);
}

TEST(FaultOverlay, NameEncodesVersionForCacheKeys) {
  FaultOverlay overlay(ring8());
  const std::string before = overlay.name();
  overlay.fail_link(2, 3);
  EXPECT_NE(overlay.name(), before);
}

TEST(SubTopology, ReindexesAndPreservesMetric) {
  const auto base = make_topology("torus:4x4");
  SubTopology sub(base, {0, 1, 2, 5, 9, 10});
  EXPECT_EQ(sub.size(), 6);
  EXPECT_EQ(sub.node_of(3), 5);
  EXPECT_EQ(sub.distance(0, 3), base->distance(0, 5));
  // Adjacent subset members route entirely inside the subset...
  EXPECT_EQ(sub.route(0, 1), (std::vector<int>{0, 1}));
  // ...but a route forced through an excluded hop (2 -> 6 -> 10, with base
  // node 6 excluded) cannot be expressed in compact ids.
  EXPECT_THROW(sub.route(2, 5), precondition_error);
  EXPECT_EQ(sub.route_in_base(0, 3), base->route(0, 5));
  std::vector<std::uint16_t> row(6);
  sub.write_distance_row(1, row.data());
  for (int j = 0; j < 6; ++j)
    EXPECT_EQ(row[static_cast<std::size_t>(j)],
              base->distance(1, sub.node_of(j)));
}

TEST(SubTopology, RejectsDisconnectedSubsets) {
  const auto base = std::make_shared<TorusMesh>(TorusMesh::mesh({5}));
  auto overlay = std::make_shared<FaultOverlay>(base);
  overlay->fail_node(2);  // splits {0,1} from {3,4}
  EXPECT_THROW(SubTopology(overlay, overlay->alive_procs()),
               precondition_error);
  EXPECT_THROW(SubTopology(base, {}), precondition_error);
  EXPECT_THROW(SubTopology(base, {1, 0}), precondition_error);  // unsorted
}

// ---------------------------------------------------------------------------
// Property: after every fault — hard link failures, node deaths, and soft
// degrades (including health-1.0 restores) interleaved at random — the
// incrementally repaired cache is byte-identical to a cache rebuilt from
// scratch on the faulted overlay — matrix bytes, stored means, and
// diameter — under 1 and 4 threads.
// ---------------------------------------------------------------------------

struct FaultStep {
  enum class Kind { kLinkFail, kNodeFail, kDegrade };
  Kind kind = Kind::kLinkFail;
  int a = 0;
  int b = 0;
  double health = 1.0;
};

/// Apply `steps` faults drawn from rng, repairing after each, and check the
/// repaired cache against a rebuild.  Writes the final matrix bytes into
/// `out_matrix` for cross-thread-count comparison.
void run_fault_sequence(const TopologyPtr& base, std::uint64_t seed, int steps,
                        std::vector<std::uint16_t>* out_matrix) {
  auto overlay = std::make_shared<FaultOverlay>(base);
  DistanceCache repaired(*overlay);
  Rng rng(seed);
  const int p = base->size();
  const bool links_ok = base->has_adjacency();
  // Degrade healths cycle through worsenings and a full restore, so the
  // sequence also crosses the weighted<->unweighted plane transitions.
  const double healths[] = {0.5, 0.25, 0.75, 1.0};
  for (int step = 0; step < steps; ++step) {
    // Draw a fault that is actually applicable (alive node / alive link).
    FaultStep f;
    bool found = false;
    for (int tries = 0; tries < 256 && !found; ++tries) {
      const int a =
          static_cast<int>(rng.uniform(static_cast<std::uint64_t>(p)));
      if (!overlay->is_alive(a)) continue;
      const std::uint64_t kind = links_ok ? rng.uniform(4) : 3;
      if (kind < 3) {  // link fail or degrade
        const auto nb = overlay->neighbors(a);
        if (nb.empty()) continue;
        f.a = a;
        f.b = nb[static_cast<std::size_t>(
            rng.uniform(static_cast<std::uint64_t>(nb.size())))];
        if (kind == 0) {
          f.kind = FaultStep::Kind::kLinkFail;
        } else {
          f.kind = FaultStep::Kind::kDegrade;
          f.health = healths[rng.uniform(4)];
        }
        found = true;
      } else {
        if (overlay->num_alive() <= 2) continue;  // keep survivors around
        f = {FaultStep::Kind::kNodeFail, a, 0, 1.0};
        found = true;
      }
    }
    if (!found) break;

    switch (f.kind) {
      case FaultStep::Kind::kLinkFail: {
        const int prev = overlay->fail_link(f.a, f.b);
        repaired.repair_link_failure(*overlay, f.a, f.b, prev);
        break;
      }
      case FaultStep::Kind::kNodeFail:
        overlay->fail_node(f.a);
        repaired.repair_node_failure(*overlay, f.a);
        break;
      case FaultStep::Kind::kDegrade: {
        const int prev = overlay->degrade_link(f.a, f.b, f.health);
        repaired.repair_link_degrade(*overlay, f.a, f.b, prev);
        break;
      }
    }

    const DistanceCache fresh(*overlay);
    ASSERT_EQ(repaired.size(), fresh.size());
    ASSERT_EQ(repaired.scale(), fresh.scale())
        << "plane units diverged after step " << step << " on "
        << overlay->name();
    const std::size_t bytes = static_cast<std::size_t>(p) *
                              static_cast<std::size_t>(p) *
                              sizeof(std::uint16_t);
    ASSERT_EQ(std::memcmp(repaired.row(0), fresh.row(0), bytes), 0)
        << "matrix diverged after step " << step << " on " << overlay->name();
    for (int q = 0; q < p; ++q)
      ASSERT_EQ(repaired.mean_distance_from(q), fresh.mean_distance_from(q))
          << "mean diverged for row " << q << " after step " << step << " on "
          << overlay->name();
    ASSERT_EQ(repaired.diameter(), fresh.diameter())
        << "diameter diverged after step " << step;
  }
  const auto n2 = static_cast<std::size_t>(p) * static_cast<std::size_t>(p);
  out_matrix->assign(repaired.row(0), repaired.row(0) + n2);
}

TEST(DistanceCacheRepair, RepairedEqualsRebuiltAcrossRandomFaultSequences) {
  const std::vector<std::string> specs = {"torus:6x6", "mesh:4x5",
                                          "hypercube:5", "fattree:3x2"};
  for (const std::string& spec : specs) {
    const auto base = make_topology(spec);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      std::vector<std::uint16_t> matrix_1thread;
      for (const int threads : {1, 4}) {
        support::set_num_threads(threads);
        std::vector<std::uint16_t> matrix;
        run_fault_sequence(base, seed, 6, &matrix);
        if (HasFatalFailure()) {
          support::set_num_threads(1);
          return;
        }
        if (threads == 1)
          matrix_1thread = matrix;
        else
          EXPECT_EQ(matrix, matrix_1thread)
              << spec << " seed " << seed
              << ": repaired matrix depends on thread count";
      }
      support::set_num_threads(1);
    }
  }
}

TEST(DistanceCacheRepair, LinkRepairTouchesOnlyAffectedRows) {
  // On an odd (non-bipartite) torus, sources equidistant from both link
  // endpoints cannot have the link on any shortest path: the repair must
  // BFS-recompute a strict subset of rows, not all of them.
  const auto base = make_topology("torus:9x9");
  auto overlay = std::make_shared<FaultOverlay>(base);
  DistanceCache cache(*overlay);
  overlay->fail_link(0, 1);
  const int recomputed = cache.repair_link_failure(*overlay, 0, 1);
  EXPECT_GT(recomputed, 0);
  EXPECT_LT(recomputed, base->size());
}

TEST(DistanceCacheRepair, FatTreeNodeRepairIsPatchOnly) {
  // Leaf removal never perturbs survivor distances on a distance model:
  // zero rows should be BFS-recomputed.
  const auto base = make_topology("fattree:3x2");
  auto overlay = std::make_shared<FaultOverlay>(base);
  DistanceCache cache(*overlay);
  overlay->fail_node(4);
  EXPECT_EQ(cache.repair_node_failure(*overlay, 4), 0);
}

TEST(DistanceCacheRepair, ValidatesRepairRequests) {
  const auto base = make_topology("torus:4x4");
  auto overlay = std::make_shared<FaultOverlay>(base);
  DistanceCache cache(*overlay);
  // Repair of a fault that was never injected is a contract violation.
  EXPECT_THROW(cache.repair_link_failure(*overlay, 0, 1), precondition_error);
  EXPECT_THROW(cache.repair_node_failure(*overlay, 3), precondition_error);
}

}  // namespace
}  // namespace topomap::topo

namespace topomap::core {
namespace {

using topo::FaultOverlay;
using topo::make_topology;

TEST(MapOnAlive, ProducesValidAliveOnlyInjectiveMapping) {
  const auto g = graph::stencil_2d(3, 4, 1.0);  // 12 tasks
  auto overlay = std::make_shared<FaultOverlay>(make_topology("torus:4x4"));
  overlay->fail_node(0);
  overlay->fail_node(7);
  overlay->fail_node(10);  // 13 alive
  const auto strategy = make_strategy("topolb");
  Rng rng(1);
  const Mapping m = map_on_alive(*strategy, g, *overlay, rng);
  ASSERT_EQ(m.size(), 12u);
  std::vector<char> used(16, 0);
  for (int proc : m) {
    ASSERT_GE(proc, 0);
    ASSERT_LT(proc, 16);
    EXPECT_TRUE(overlay->is_alive(proc));
    EXPECT_FALSE(used[static_cast<std::size_t>(proc)]);
    used[static_cast<std::size_t>(proc)] = 1;
  }
  // Deterministic strategy => deterministic alive-subset mapping.
  Rng rng2(999);
  EXPECT_EQ(map_on_alive(*strategy, g, *overlay, rng2), m);
}

TEST(MapOnAlive, RejectsOverfullAndDisconnectedMachines) {
  const auto g = graph::stencil_2d(4, 4, 1.0);  // 16 tasks
  auto overlay = std::make_shared<FaultOverlay>(make_topology("torus:4x4"));
  overlay->fail_node(2);
  const auto strategy = make_strategy("topolb");
  Rng rng(1);
  EXPECT_THROW(map_on_alive(*strategy, g, *overlay, rng), precondition_error);

  const auto small = graph::stencil_2d(1, 3, 1.0);  // 3 tasks
  auto split = std::make_shared<FaultOverlay>(make_topology("mesh:5"));
  split->fail_node(2);  // {0,1} | {3,4}
  EXPECT_THROW(map_on_alive(*strategy, small, *split, rng),
               precondition_error);
}

TEST(MapOnAlive, LinkFaultsSteerPlacementAwayFromTheCut) {
  // With heavy traffic and a severed ring link, mapping on the overlay must
  // still produce a valid bijection and respect rerouted distances.
  const auto g = graph::ring(8, 16.0);
  auto overlay = std::make_shared<FaultOverlay>(make_topology("torus:8"));
  overlay->fail_link(3, 4);
  const auto strategy = make_strategy("topolb");
  Rng rng(1);
  const Mapping m = map_on_alive(*strategy, g, *overlay, rng);
  EXPECT_TRUE(is_one_to_one(m, *overlay));
}

}  // namespace
}  // namespace topomap::core

namespace topomap::rts {
namespace {

using topo::FaultOverlay;
using topo::make_topology;

TEST(Evacuate, TieBreaksToLowestProcessorId) {
  // Ring of 4 heavy tasks on alternate processors of an 8-ring; killing
  // proc 2 strands task 1, whose neighbours sit on procs 0 and 4.  The
  // death cuts the ring, so on the rerouted metric the free processors
  // cost 6 (procs 1, 3 — walled off from one neighbour) or 4 (procs 5, 7,
  // equidistant).  The documented tie-break — lowest processor id among
  // the tied best — must pick proc 5, every run, any thread count.
  const auto g = graph::ring(4, 8.0);
  auto overlay = std::make_shared<FaultOverlay>(make_topology("torus:8"));
  const core::Mapping previous{0, 2, 4, 6};
  overlay->fail_node(2);
  const EvacuationResult r = evacuate(g, *overlay, previous, 0);
  EXPECT_EQ(r.stranded, 1);
  EXPECT_EQ(r.migrations, 1);
  ASSERT_EQ(r.mapping.size(), 4u);
  EXPECT_EQ(r.mapping[1], 5);
  // Survivors keep their seats.
  EXPECT_EQ(r.mapping[0], 0);
  EXPECT_EQ(r.mapping[2], 4);
  EXPECT_EQ(r.mapping[3], 6);
}

TEST(Evacuate, CompareEvacuateVsRemapIsThreadCountInvariant) {
  // Same faults (two deaths + one soft degrade, so the weighted plane is
  // active), same seed: the evacuation and the full remap must be
  // byte-identical under 1 and 4 mapping threads.
  const auto g = graph::stencil_2d(5, 6, 1000.0);  // 30 tasks
  const auto base = make_topology("torus:6x6");
  const auto strategy = core::make_strategy("topolb");
  FaultOverlay healthy(base);
  Rng seed_rng(7);
  const core::Mapping previous =
      core::map_on_alive(*strategy, g, healthy, seed_rng);

  auto overlay = std::make_shared<FaultOverlay>(base);
  overlay->fail_node(previous[4]);
  overlay->fail_node(previous[17]);
  overlay->degrade_link(0, 1, 0.5);

  support::set_num_threads(1);
  Rng rng1(3);
  const EvacuateComparison c1 =
      compare_evacuate_vs_remap(g, *overlay, previous, *strategy, rng1, 1);
  support::set_num_threads(4);
  Rng rng4(3);
  const EvacuateComparison c4 =
      compare_evacuate_vs_remap(g, *overlay, previous, *strategy, rng4, 1);
  support::set_num_threads(1);

  EXPECT_EQ(c1.evac.mapping, c4.evac.mapping);
  EXPECT_EQ(c1.evac.stranded, c4.evac.stranded);
  EXPECT_EQ(c1.evac.migrations, c4.evac.migrations);
  EXPECT_EQ(c1.evac.refine_swaps, c4.evac.refine_swaps);
  EXPECT_EQ(c1.evac.hop_bytes, c4.evac.hop_bytes);
  EXPECT_EQ(c1.full_mapping, c4.full_mapping);
  EXPECT_EQ(c1.full_migrations, c4.full_migrations);
  EXPECT_EQ(c1.full_hop_bytes, c4.full_hop_bytes);
}

}  // namespace
}  // namespace topomap::rts
