// Golden byte-identity property of the soft-fault plane: an overlay whose
// every link health is 1.0 must be indistinguishable — to the byte — from
// no overlay at all.  Degrading to health 1.0 is a no-op (the quantized
// cost equals the healthy cost, so the entry erases and the weighted mode
// never engages): the distance plane, every mapping strategy's output, and
// the network simulation must match the unweighted path exactly, on every
// topology family and under 1 and 4 mapping threads.  This is what lets
// the weighted machinery ship inside the default path without a flag.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/fault_aware.hpp"
#include "core/strategy.hpp"
#include "graph/builders.hpp"
#include "graph/factory.hpp"
#include "netsim/app.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "topo/distance_cache.hpp"
#include "topo/factory.hpp"
#include "topo/fault_overlay.hpp"

namespace topomap {
namespace {

using topo::DistanceCache;
using topo::FaultOverlay;
using topo::make_topology;

/// Degrade every link of `overlay` that touches the first few processors
/// to health 1.0 — which must leave the overlay pristine.
void degrade_everything_to_healthy(FaultOverlay& overlay) {
  const int probes = std::min(overlay.size(), 8);
  for (int p = 0; p < probes; ++p)
    for (int q : overlay.neighbors(p)) overlay.degrade_link(p, q, 1.0);
}

TEST(SoftFaultIdentity, HealthOneDegradesAreInvisible) {
  for (const std::string& spec :
       {std::string("torus:6x6"), std::string("mesh:4x5"),
        std::string("hypercube:5")}) {
    const auto base = make_topology(spec);
    FaultOverlay overlay(base);
    degrade_everything_to_healthy(overlay);
    EXPECT_EQ(overlay.version(), 0) << spec;
    EXPECT_FALSE(overlay.has_soft_faults()) << spec;
    EXPECT_FALSE(overlay.has_faults()) << spec;
    EXPECT_EQ(overlay.distance_scale(), 1) << spec;
    EXPECT_EQ(overlay.num_degraded_links(), 0) << spec;
    for (int q : overlay.neighbors(0)) {
      EXPECT_DOUBLE_EQ(overlay.link_health(0, q), 1.0) << spec;
      EXPECT_EQ(overlay.link_cost(0, q), 1) << spec;
    }
  }
}

TEST(SoftFaultIdentity, DistancePlaneIsByteIdenticalToBase) {
  for (const std::string& spec :
       {std::string("torus:6x6"), std::string("mesh:4x5"),
        std::string("hypercube:5"), std::string("fattree:3x2")}) {
    const auto base = make_topology(spec);
    auto overlay = std::make_shared<FaultOverlay>(base);
    if (base->has_adjacency()) degrade_everything_to_healthy(*overlay);
    const DistanceCache from_base(*base);
    const DistanceCache from_overlay(*overlay);
    ASSERT_EQ(from_base.size(), from_overlay.size());
    EXPECT_EQ(from_base.scale(), from_overlay.scale()) << spec;
    const std::size_t n = static_cast<std::size_t>(from_base.size());
    EXPECT_EQ(std::memcmp(from_base.row(0), from_overlay.row(0),
                          n * n * sizeof(std::uint16_t)),
              0)
        << spec << ": plane bytes diverged";
    for (int p = 0; p < from_base.size(); ++p)
      EXPECT_EQ(from_base.mean_distance_from(p),
                from_overlay.mean_distance_from(p))
          << spec << " row " << p;
    EXPECT_EQ(from_base.diameter(), from_overlay.diameter()) << spec;
  }
}

TEST(SoftFaultIdentity, EveryStrategyMapsIdenticallyAcrossThreads) {
  const std::vector<std::string> strategies = {
      "random", "topocent",      "topolb",           "recursive",
      "anneal", "topolb+refine", "topolb+linkrefine"};
  for (const std::string& spec :
       {std::string("torus:6x6"), std::string("mesh:4x5"),
        std::string("hypercube:5")}) {
    const auto base = make_topology(spec);
    Rng graph_rng(11);
    const graph::TaskGraph g =
        graph::random_graph(base->size(), 0.15, 500.0, 2000.0, graph_rng);
    auto overlay = std::make_shared<FaultOverlay>(base);
    degrade_everything_to_healthy(*overlay);
    for (const std::string& sname : strategies) {
      const auto strategy = core::make_strategy(sname);
      core::Mapping reference;
      for (const int threads : {1, 4}) {
        support::set_num_threads(threads);
        Rng plain_rng(5);
        const core::Mapping on_base = strategy->map(g, *base, plain_rng);
        Rng overlay_rng(5);
        const core::Mapping on_overlay =
            core::map_on_alive(*strategy, g, *overlay, overlay_rng);
        EXPECT_EQ(on_base, on_overlay)
            << sname << " on " << spec << " with " << threads
            << " threads: healthy overlay changed the mapping";
        if (threads == 1)
          reference = on_base;
        else
          EXPECT_EQ(on_base, reference)
              << sname << " on " << spec << ": mapping depends on threads";
      }
      support::set_num_threads(1);
    }
  }
}

TEST(SoftFaultIdentity, SimulationResultsMatchTheUnwrappedMachine) {
  const auto base = make_topology("torus:4x4");
  auto overlay = std::make_shared<FaultOverlay>(base);
  degrade_everything_to_healthy(*overlay);
  const graph::TaskGraph g = graph::stencil_2d(4, 4, 2000.0);
  const auto strategy = core::make_strategy("topolb");
  Rng rng(3);
  const core::Mapping m = strategy->map(g, *base, rng);
  netsim::AppParams app;
  app.iterations = 10;
  const netsim::NetworkParams net;
  for (const auto model :
       {netsim::ServiceModel::kWormhole, netsim::ServiceModel::kStoreForward}) {
    const auto on_base = netsim::run_iterative_app(g, *base, m, app, net, model);
    const auto on_overlay =
        netsim::run_iterative_app(g, *overlay, m, app, net, model);
    EXPECT_EQ(on_base.completion_us, on_overlay.completion_us);
    EXPECT_EQ(on_base.avg_message_latency_us, on_overlay.avg_message_latency_us);
    EXPECT_EQ(on_base.max_link_busy_us, on_overlay.max_link_busy_us);
    EXPECT_EQ(on_base.messages, on_overlay.messages);
  }
}

TEST(SoftFaultIdentity, FatTreeRejectsDegradesAndStaysPristine) {
  const auto base = make_topology("fattree:3x2");
  FaultOverlay overlay(base);
  // No processor-level links: soft faults are as unrepresentable as hard
  // link faults, and the failed attempt must leave no trace.
  EXPECT_THROW(overlay.degrade_link(0, 1, 0.5), precondition_error);
  EXPECT_EQ(overlay.version(), 0);
  EXPECT_FALSE(overlay.has_soft_faults());
  EXPECT_EQ(overlay.distance_scale(), 1);
  for (int a = 0; a < base->size(); ++a)
    for (int b = 0; b < base->size(); ++b)
      EXPECT_EQ(overlay.distance(a, b), base->distance(a, b));
}

// ---------------------------------------------------------------------------
// Sanity of the engaged weighted mode (the identity's counterpart): one
// genuinely sick link flips the plane into weighted units and back.
// ---------------------------------------------------------------------------

TEST(SoftFaultWeighted, DegradeAndRestoreRoundTripsThePlane) {
  const auto base = make_topology("torus:6x6");
  FaultOverlay overlay(base);
  const DistanceCache before(overlay);

  const int prev = overlay.degrade_link(0, 1, 0.5);
  EXPECT_EQ(prev, 1);  // was one healthy hop in scale-1 units
  EXPECT_TRUE(overlay.has_soft_faults());
  EXPECT_EQ(overlay.distance_scale(), FaultOverlay::kHealthCostOne);
  EXPECT_EQ(overlay.link_cost(0, 1), 2 * FaultOverlay::kHealthCostOne);
  EXPECT_DOUBLE_EQ(overlay.link_health(0, 1), 0.5);
  // A neighbouring healthy pair now reads one hop in weighted units.
  EXPECT_EQ(overlay.distance(1, 2), FaultOverlay::kHealthCostOne);
  // Crossing the sick link costs two hops, so the cheapest 0 -> 1 path may
  // go around; it must never cost more than the sick link itself.
  EXPECT_LE(overlay.distance(0, 1), 2 * FaultOverlay::kHealthCostOne);
  EXPECT_GT(overlay.distance(0, 1), FaultOverlay::kHealthCostOne);

  const int degraded_cost = overlay.degrade_link(0, 1, 1.0);
  EXPECT_EQ(degraded_cost, 2 * FaultOverlay::kHealthCostOne);
  EXPECT_FALSE(overlay.has_soft_faults());
  EXPECT_EQ(overlay.distance_scale(), 1);
  const DistanceCache after(overlay);
  const std::size_t n = static_cast<std::size_t>(before.size());
  EXPECT_EQ(std::memcmp(before.row(0), after.row(0),
                        n * n * sizeof(std::uint16_t)),
            0)
      << "restore did not round-trip the plane";
}

}  // namespace
}  // namespace topomap
