// topomapd service coverage: framing (round-trip, truncation, oversize,
// garbage), protocol schema validation, CachePool determinism and
// invalidation, and end-to-end daemon runs over a real unix socket where
// concurrent clients must observe byte-identical responses to a serial,
// single-threaded execution of the same requests.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cache_handle.hpp"
#include "core/fault_aware.hpp"
#include "core/strategy.hpp"
#include "graph/factory.hpp"
#include "gtest/gtest.h"
#include "runtime/rank_reorder.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "svc/cache_pool.hpp"
#include "svc/client.hpp"
#include "svc/frame.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "topo/distance_cache.hpp"
#include "topo/factory.hpp"
#include "topo/fault_overlay.hpp"

namespace {

using namespace topomap;

// ---------------------------------------------------------------- framing

TEST(SvcFrame, EncodeDecodeRoundTrip) {
  const std::string payload = R"({"hello":"world"})";
  const std::string frame = svc::encode_frame(payload);
  ASSERT_EQ(frame.size(), svc::kFrameHeaderSize + payload.size());
  EXPECT_EQ(frame.substr(0, 4), "TMP1");

  svc::FrameDecoder dec;
  dec.feed(frame);
  const auto got = dec.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_TRUE(dec.idle());
  EXPECT_FALSE(dec.next().has_value());
}

TEST(SvcFrame, DecoderHandlesByteDribbleAndPipelining) {
  const std::string a = svc::encode_frame("first");
  const std::string b = svc::encode_frame("");
  const std::string c = svc::encode_frame(std::string(1000, 'x'));
  const std::string wire = a + b + c;
  svc::FrameDecoder dec;
  std::vector<std::string> out;
  for (char byte : wire) {
    dec.feed(std::string_view(&byte, 1));
    while (auto p = dec.next()) out.push_back(*p);
  }
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "first");
  EXPECT_EQ(out[1], "");
  EXPECT_EQ(out[2], std::string(1000, 'x'));
  EXPECT_TRUE(dec.idle());
}

TEST(SvcFrame, DecoderRejectsGarbageImmediately) {
  svc::FrameDecoder dec;
  EXPECT_THROW(dec.feed("GET / HTTP/1.1\r\n"), precondition_error);
  svc::FrameDecoder dec2;
  // Even a single wrong byte is enough — no length is ever trusted.
  EXPECT_THROW(dec2.feed("X"), precondition_error);
}

TEST(SvcFrame, DecoderRejectsOversizedDeclaration) {
  svc::FrameDecoder dec(/*max_payload=*/16);
  std::string header = "TMP1";
  header += '\x00';
  header += '\x00';
  header += '\x00';
  header += '\x11';  // 17 > 16
  EXPECT_THROW(dec.feed(header), precondition_error);
}

TEST(SvcFrame, DecoderTruncationIsVisibleAsNotIdle) {
  svc::FrameDecoder dec;
  const std::string frame = svc::encode_frame("abcdef");
  dec.feed(frame.substr(0, frame.size() - 2));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.idle());  // mid-frame: a close here is a protocol error
}

TEST(SvcFrame, SocketReadRejectsTruncatedAndGarbageFrames) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Clean EOF at a frame boundary -> false.
  {
    const std::string frame = svc::encode_frame("payload");
    ASSERT_EQ(::send(fds[0], frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
    std::string payload;
    EXPECT_TRUE(svc::read_frame(fds[1], payload));
    EXPECT_EQ(payload, "payload");
    ::close(fds[0]);
    EXPECT_FALSE(svc::read_frame(fds[1], payload));
    ::close(fds[1]);
  }
  // Mid-payload EOF -> io_error.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  {
    const std::string frame = svc::encode_frame("payload");
    ASSERT_EQ(::send(fds[0], frame.data(), frame.size() - 3, 0),
              static_cast<ssize_t>(frame.size() - 3));
    ::close(fds[0]);
    std::string payload;
    EXPECT_THROW(svc::read_frame(fds[1], payload), io_error);
    ::close(fds[1]);
  }
  // Garbage magic -> precondition_error.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  {
    std::string junk = "NOPE";
    junk.append(3, '\0');
    junk += '\x04';
    junk += "abcd";
    ASSERT_EQ(::send(fds[0], junk.data(), junk.size(), 0),
              static_cast<ssize_t>(junk.size()));
    std::string payload;
    EXPECT_THROW(svc::read_frame(fds[1], payload), precondition_error);
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

// --------------------------------------------------------------- protocol

TEST(SvcProtocol, RequestRoundTripsThroughJson) {
  svc::Request req;
  req.id = "r-42";
  req.kind = svc::RequestKind::kExplain;
  req.tasks = "stencil2d:4x4";
  req.topology = "torus:4x4";
  req.strategy = "topolb+refine";
  req.seed = 9;
  req.baseline = "random";
  req.top_k = 5;
  req.degrade_link = "0:1:0.5";
  const svc::Request back = svc::Request::from_json(req.to_json());
  EXPECT_EQ(back.id, "r-42");
  EXPECT_EQ(back.kind, svc::RequestKind::kExplain);
  EXPECT_EQ(back.tasks, "stencil2d:4x4");
  EXPECT_EQ(back.strategy, "topolb+refine");
  EXPECT_EQ(back.seed, 9u);
  EXPECT_EQ(back.baseline, "random");
  EXPECT_EQ(back.top_k, 5);
  EXPECT_EQ(back.degrade_link, "0:1:0.5");
  // Full fidelity: re-serialization is byte-identical.
  EXPECT_EQ(req.to_json().dump(), back.to_json().dump());
}

TEST(SvcProtocol, StrictValidationRejectsMalformedRequests) {
  auto parse = [](const std::string& text) {
    return svc::Request::from_json(svc::json::Value::parse(text));
  };
  // Wrong schema name / version, missing id, unknown kind.
  EXPECT_THROW(parse(R"({"schema":"nope","schema_version":1})"),
               precondition_error);
  EXPECT_THROW(
      parse(R"({"schema":"topomap.svc.request","schema_version":2,)"
            R"("id":"x","kind":"status"})"),
      precondition_error);
  EXPECT_THROW(parse(R"({"schema":"topomap.svc.request","schema_version":1,)"
                     R"("kind":"status"})"),
               precondition_error);
  EXPECT_THROW(parse(R"({"schema":"topomap.svc.request","schema_version":1,)"
                     R"("id":"x","kind":"frobnicate"})"),
               precondition_error);
  // Unknown parameter key and mistyped values must not pass silently.
  EXPECT_THROW(parse(R"({"schema":"topomap.svc.request","schema_version":1,)"
                     R"("id":"x","kind":"map","params":{"tasx":"y"}})"),
               precondition_error);
  EXPECT_THROW(parse(R"({"schema":"topomap.svc.request","schema_version":1,)"
                     R"("id":"x","kind":"map","params":{"seed":"one"}})"),
               precondition_error);
  EXPECT_THROW(parse(R"({"schema":"topomap.svc.request","schema_version":1,)"
                     R"("id":"x","kind":"map","params":{"top_k":1.5}})"),
               precondition_error);
}

TEST(SvcProtocol, ErrorMappingFollowsExitCodeTaxonomy) {
  auto category_of = [](std::exception_ptr e) {
    return svc::make_error_response("id", e).error.category;
  };
  EXPECT_EQ(category_of(std::make_exception_ptr(svc::usage_error("u"))),
            "usage");
  EXPECT_EQ(category_of(std::make_exception_ptr(precondition_error("p"))),
            "precondition");
  EXPECT_EQ(category_of(std::make_exception_ptr(invariant_error("i"))),
            "invariant");
  EXPECT_EQ(category_of(std::make_exception_ptr(io_error("o"))), "io");
  EXPECT_EQ(svc::exit_code_for("usage"), 1);
  EXPECT_EQ(svc::exit_code_for("precondition"), 2);
  EXPECT_EQ(svc::exit_code_for("invariant"), 3);
  EXPECT_EQ(svc::exit_code_for("io"), 4);
  // A response survives its own wire round-trip.
  const svc::Response err =
      svc::make_error_response("id", std::make_exception_ptr(io_error("x")));
  const svc::Response back =
      svc::Response::from_json(svc::json::Value::parse(err.to_json().dump()));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error.category, "io");
  EXPECT_EQ(back.error.message, "x");
}

TEST(SvcProtocol, MachineKeySeparatesMachinesNotSeeds) {
  auto key = [](const char* topo, const svc::Request& r) {
    return svc::machine_key(topo, r.fault_spec());
  };
  svc::Request plain;
  // No faults: the key is the topology spec itself, seed-independent.
  svc::Request other_seed = plain;
  other_seed.fault_seed = 7;
  EXPECT_EQ(key("torus:4x4", plain), key("torus:4x4", other_seed));
  EXPECT_NE(key("torus:4x4", plain), key("mesh:4x4", plain));
  // Explicit faults change the key; the fault seed still does not.
  svc::Request failed = plain;
  failed.fail_node = "3";
  svc::Request failed_other_seed = failed;
  failed_other_seed.fault_seed = 7;
  EXPECT_NE(key("torus:4x4", plain), key("torus:4x4", failed));
  EXPECT_EQ(key("torus:4x4", failed), key("torus:4x4", failed_other_seed));
  // Random draws make the seed part of the machine identity.
  svc::Request random = plain;
  random.random_link_faults = 2;
  svc::Request random_other_seed = random;
  random_other_seed.fault_seed = 7;
  EXPECT_NE(key("torus:4x4", random), key("torus:4x4", random_other_seed));
}

// -------------------------------------------------------------- CachePool

TEST(SvcCachePool, HitsMissesAndEvictionsAreDeterministic) {
  svc::CachePool pool(/*capacity=*/2);
  const topo::FaultSpec none;
  const auto a1 = pool.acquire("torus:4x4", none);
  const auto a2 = pool.acquire("torus:4x4", none);
  EXPECT_EQ(a1.get(), a2.get());  // shared, not rebuilt
  ASSERT_TRUE(a1->plane != nullptr);
  EXPECT_EQ(a1->plane->size(), 16);
  const auto b = pool.acquire("mesh:4x4", none);
  EXPECT_NE(a1.get(), b.get());
  svc::CachePoolStats s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 2u);
  // Third distinct machine evicts the LRU one (torus was touched last by
  // a2's hit... order: torus MRU after hit, then mesh MRU; LRU is torus?
  // No: touch order is torus(a1), torus(a2 hit), mesh(b) -> LRU = torus.
  const auto c = pool.acquire("hypercube:4", none);
  s = pool.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  // The evicted machine rebuilds on next acquire; survivors still hit.
  const auto b2 = pool.acquire("mesh:4x4", none);
  EXPECT_EQ(b.get(), b2.get());
  const auto a3 = pool.acquire("torus:4x4", none);
  EXPECT_NE(a1.get(), a3.get());
  s = pool.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 4u);
  // Evicted entries stay alive for holders (shared_ptr semantics).
  EXPECT_EQ(a1->plane->size(), 16);
}

TEST(SvcCachePool, FaultSpecsKeySeparateEntriesAndFaultedPlanes) {
  svc::CachePool pool(8);
  const topo::FaultSpec none;
  svc::Request failed;
  failed.fail_node = "5";
  const auto healthy = pool.acquire("torus:4x4", none);
  const auto faulted = pool.acquire("torus:4x4", failed.fault_spec());
  EXPECT_NE(healthy.get(), faulted.get());
  ASSERT_TRUE(faulted->overlay != nullptr);
  EXPECT_EQ(faulted->overlay->num_failed_nodes(), 1);
  EXPECT_EQ(faulted->machine().size(), 16);
  // The faulted plane was built over the overlay metric, not the base.
  ASSERT_TRUE(faulted->plane != nullptr);
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(SvcCachePool, ConcurrentAcquiresCoalesceIntoOneBuild) {
  svc::CachePool pool(4);
  const topo::FaultSpec none;
  constexpr int kThreads = 8;
  std::vector<svc::MachineEntryPtr> got(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
      threads.emplace_back([&pool, &got, &none, i] {
        got[static_cast<std::size_t>(i)] = pool.acquire("torus:6x6", none);
      });
    for (auto& t : threads) t.join();
  }
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(got[0].get(), got[i].get());
  const svc::CachePoolStats s = pool.stats();
  // Exactly one build ever, no matter the interleaving: misses counts the
  // distinct keys, everything else coalesced into hits.
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(SvcCachePool, FailedBuildsAreNotCachedAndRetryCleanly) {
  svc::CachePool pool(4);
  const topo::FaultSpec none;
  EXPECT_THROW(pool.acquire("not-a-topology:9", none), precondition_error);
  EXPECT_THROW(pool.acquire("not-a-topology:9", none), precondition_error);
  const svc::CachePoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 2u);  // the failure was not poisoned into the pool
  EXPECT_EQ(s.entries, 0u);
  // The pool still works after failures.
  EXPECT_EQ(pool.acquire("torus:4x4", none)->machine().size(), 16);
}

TEST(SvcCachePool, FaultVersionInvalidatesSeededHandle) {
  // The per-request CacheHandle is seeded with the pooled plane; a fault
  // injected afterwards changes the overlay's name() (version counter) and
  // must force a rebuild instead of serving the stale metric.
  auto base = topo::make_topology("torus:4x4");
  topo::FaultOverlay overlay(base);
  auto plane = std::make_shared<const topo::DistanceCache>(overlay);
  core::CacheHandle handle;
  handle.seed(overlay, plane);
  EXPECT_EQ(handle.get(overlay).get(), plane.get());
  overlay.degrade_link(0, 1, 0.5);
  const auto rebuilt = handle.get(overlay);
  EXPECT_NE(rebuilt.get(), plane.get());
  EXPECT_EQ(rebuilt->size(), 16);
}

// ------------------------------------------------------------ service e2e

/// The mixed request set used by the concurrency tests: four kinds over a
/// handful of machines/seeds, all deterministic.
std::vector<svc::Request> mixed_requests(int count) {
  std::vector<svc::Request> reqs;
  reqs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    svc::Request req;
    req.id = "req-" + std::to_string(i);
    req.seed = static_cast<std::uint64_t>(1 + i % 3);
    switch (i % 4) {
      case 0:
        req.kind = svc::RequestKind::kMap;
        req.tasks = "stencil2d:4x4";
        req.topology = (i % 8 == 0) ? "torus:4x4" : "mesh:4x4";
        req.strategy = "topolb";
        break;
      case 1:
        req.kind = svc::RequestKind::kExplain;
        req.tasks = "stencil2d:4x4";
        req.topology = "torus:4x4";
        req.strategy = "topolb";
        req.baseline = "random";
        break;
      case 2:
        req.kind = svc::RequestKind::kEvacuate;
        req.tasks = "stencil2d:3x4";
        req.topology = "torus:4x4";
        req.strategy = "topolb";
        req.fail_node = "5";
        break;
      default:
        req.kind = svc::RequestKind::kOptimal;
        req.tasks = "stencil2d:3x3";
        req.topology = "torus:3x3";
        req.compare = "topolb";
        break;
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

std::string unique_socket_path(const char* tag) {
  return "/tmp/topomap-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

TEST(SvcService, MapResponseMatchesDirectLibraryExecution) {
  svc::Service service;
  svc::Request req;
  req.id = "m";
  req.kind = svc::RequestKind::kMap;
  req.tasks = "stencil2d:4x4";
  req.topology = "torus:4x4";
  req.strategy = "topolb+refine";
  req.seed = 3;
  const svc::Response resp = service.handle(req);
  ASSERT_TRUE(resp.ok) << resp.error.message;

  // The same computation straight through the library, no svc:: involved.
  Rng rng(3);
  const graph::TaskGraph g = graph::make_task_graph("stencil2d:4x4", rng);
  const auto topo = topo::make_topology("torus:4x4");
  const core::Mapping m =
      core::make_strategy("topolb+refine")->map(g, *topo, rng);
  std::ostringstream os;
  rts::write_rank_mapping(os, m);
  EXPECT_EQ(resp.result.at("mapping").as_string(), os.str());
  EXPECT_EQ(resp.result.at("strategy").as_string(), "TopoLB+RefineTopoLB");
}

TEST(SvcService, UsageErrorsKeepCliExitCodeSemantics) {
  svc::Service service;
  svc::Request req;
  req.id = "bad";
  req.kind = svc::RequestKind::kMap;
  req.tasks = "stencil2d:3x3";  // 9 tasks on 16 processors: CLI exits 1
  req.topology = "torus:4x4";
  const svc::Response resp = service.handle(req);
  ASSERT_FALSE(resp.ok);
  EXPECT_EQ(resp.error.category, "usage");
  EXPECT_EQ(svc::exit_code_for(resp.error.category), 1);

  svc::Request bad_spec = req;
  bad_spec.tasks = "stencil2d:4x4";
  bad_spec.strategy = "frobnicate";  // CLI exits 2
  const svc::Response resp2 = service.handle(bad_spec);
  ASSERT_FALSE(resp2.ok);
  EXPECT_EQ(resp2.error.category, "precondition");
}

TEST(SvcServer, ConcurrentClientsAreByteIdenticalToSerialExecution) {
  const std::vector<svc::Request> reqs = mixed_requests(64);

  // Serial ground truth: a fresh single-threaded Service.
  std::vector<std::string> expected;
  {
    svc::Service serial;
    for (const svc::Request& r : reqs)
      expected.push_back(serial.handle(r).to_json().dump());
  }

  svc::ServerOptions options;
  options.socket_path = unique_socket_path("e2e");
  options.workers = 8;
  options.queue_capacity = 16;  // smaller than the request count:
                                // backpressure engages under the burst
  svc::Server server(options);
  server.start();
  {
    constexpr int kClients = 8;
    std::vector<std::string> got(reqs.size());
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        svc::Client client = svc::Client::connect_unix(options.socket_path);
        for (std::size_t i = next.fetch_add(1); i < reqs.size();
             i = next.fetch_add(1))
          got[i] = client.call(reqs[i]).to_json().dump();
      });
    }
    for (auto& t : clients) t.join();
    for (std::size_t i = 0; i < reqs.size(); ++i)
      EXPECT_EQ(got[i], expected[i]) << "request " << reqs[i].id;
  }
  // The shared pool must actually have been shared: far fewer fills than
  // requests, and a deterministic miss count (one per distinct machine:
  // torus:4x4, mesh:4x4, torus:4x4+fault, torus:3x3).
  const svc::CachePoolStats s = server.cache_stats();
  EXPECT_EQ(s.misses, 4u);
  EXPECT_GT(s.hits, 0u);
  server.stop();
  server.join();
}

TEST(SvcServer, MalformedTrafficGetsStructuredErrorsNotHangs) {
  svc::ServerOptions options;
  options.socket_path = unique_socket_path("err");
  options.workers = 2;
  svc::Server server(options);
  server.start();
  {
    svc::Client client = svc::Client::connect_unix(options.socket_path);
    // Valid frame, invalid JSON -> error response, connection stays alive.
    svc::Request ping;
    ping.id = "ok";
    ping.kind = svc::RequestKind::kStatus;
    const svc::Response r1 = client.call(ping);
    EXPECT_TRUE(r1.ok);
  }
  {
    // Raw socket speaking garbage framing: one error response, then EOF.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  options.socket_path.c_str());
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string junk = "HELO topomapd\n";
    ASSERT_EQ(::send(fd, junk.data(), junk.size(), 0),
              static_cast<ssize_t>(junk.size()));
    std::string payload;
    ASSERT_TRUE(svc::read_frame(fd, payload));
    const svc::Response resp =
        svc::Response::from_json(svc::json::Value::parse(payload));
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.error.category, "precondition");
    // The server hangs up after a framing desync: next read is EOF.
    EXPECT_FALSE(svc::read_frame(fd, payload));
    ::close(fd);
  }
  {
    // Well-framed JSON that fails schema validation: error response with
    // the offending id echoed, connection still usable afterwards.
    svc::Client client = svc::Client::connect_unix(options.socket_path);
    svc::Request bad;
    bad.id = "schema-bad";
    svc::json::Value doc = bad.to_json();
    doc.set("kind", "frobnicate");
    // Hand-roll the call: Client::call() would reject client-side.
    const svc::Response resp = [&] {
      const int cfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                    options.socket_path.c_str());
      EXPECT_EQ(::connect(cfd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)),
                0);
      svc::write_frame(cfd, doc.dump());
      std::string payload;
      EXPECT_TRUE(svc::read_frame(cfd, payload));
      ::close(cfd);
      return svc::Response::from_json(svc::json::Value::parse(payload));
    }();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.id, "schema-bad");
    EXPECT_EQ(resp.error.category, "precondition");
    // The first client connection still works.
    svc::Request ping;
    ping.id = "still-alive";
    ping.kind = svc::RequestKind::kStatus;
    EXPECT_TRUE(client.call(ping).ok);
  }
  server.stop();
  server.join();
}

TEST(SvcServer, OptionalTcpListenerSpeaksTheSameFraming) {
  svc::ServerOptions options;
  options.socket_path = unique_socket_path("tcp");
  options.workers = 2;
  options.tcp_port = 38461;  // fixed test port; skip if taken
  svc::Server server(options);
  try {
    server.start();
  } catch (const io_error& e) {
    GTEST_SKIP() << "TCP port unavailable: " << e.what();
  }
  {
    svc::Client tcp = svc::Client::connect_tcp("127.0.0.1", options.tcp_port);
    svc::Client unixc = svc::Client::connect_unix(options.socket_path);
    svc::Request req;
    req.id = "t";
    req.kind = svc::RequestKind::kMap;
    req.tasks = "stencil2d:4x4";
    req.topology = "torus:4x4";
    const svc::Response a = tcp.call(req);
    const svc::Response b = unixc.call(req);
    ASSERT_TRUE(a.ok) << a.error.message;
    // Byte-identical across transports.
    EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  }
  server.stop();
  server.join();
}

}  // namespace
