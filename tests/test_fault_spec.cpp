// CLI fault/degrade flag family: strict parsing and overlay construction
// (topo/fault_spec.hpp — the library behind topomap's --fail-link /
// --fail-node / --degrade-link / --random-* options).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "support/error.hpp"
#include "topo/factory.hpp"
#include "topo/fault_spec.hpp"

namespace topomap::topo {
namespace {

FaultSpec parse(const std::string& fail_links, const std::string& fail_nodes,
                const std::string& degrades) {
  return parse_fault_spec(fail_links, fail_nodes, degrades, 0, 0, 0, 42);
}

TEST(FaultSpecParse, AcceptsTheFullFlagFamily) {
  const FaultSpec spec =
      parse_fault_spec("0:1,4:5", "7,9", "2:3:0.5,10:11:0.25", 2, 1, 3, 99);
  ASSERT_EQ(spec.fail_links.size(), 2u);
  EXPECT_EQ(spec.fail_links[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(spec.fail_links[1], (std::pair<int, int>{4, 5}));
  ASSERT_EQ(spec.fail_nodes.size(), 2u);
  EXPECT_EQ(spec.fail_nodes[1], 9);
  ASSERT_EQ(spec.degrades.size(), 2u);
  EXPECT_EQ(spec.degrades[0].a, 2);
  EXPECT_EQ(spec.degrades[0].b, 3);
  EXPECT_DOUBLE_EQ(spec.degrades[0].health, 0.5);
  EXPECT_DOUBLE_EQ(spec.degrades[1].health, 0.25);
  EXPECT_EQ(spec.random_link_faults, 2);
  EXPECT_EQ(spec.random_node_faults, 1);
  EXPECT_EQ(spec.random_degrades, 3);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_FALSE(spec.empty());
  EXPECT_TRUE(parse("", "", "").empty());
}

TEST(FaultSpecParse, RejectsMalformedEntries) {
  // Wrong field counts.
  EXPECT_THROW(parse("0", "", ""), precondition_error);
  EXPECT_THROW(parse("0:1:2", "", ""), precondition_error);
  EXPECT_THROW(parse("", "", "0:1"), precondition_error);
  EXPECT_THROW(parse("", "", "0:1:0.5:9"), precondition_error);
  // Non-numeric fields and partially-consumed tokens ("1x" is not 1).
  EXPECT_THROW(parse("a:1", "", ""), precondition_error);
  EXPECT_THROW(parse("1x:2", "", ""), precondition_error);
  EXPECT_THROW(parse("", "three", ""), precondition_error);
  EXPECT_THROW(parse("", "", "0:1:abc"), precondition_error);
  EXPECT_THROW(parse("", "", "0:1:0.5z"), precondition_error);
  // Empty entries from stray commas.
  EXPECT_THROW(parse("0:1,", "", ""), precondition_error);
  EXPECT_THROW(parse("", ",3", ""), precondition_error);
}

TEST(FaultSpecParse, RejectsOutOfRangeHealth) {
  EXPECT_THROW(parse("", "", "0:1:1.5"), precondition_error);
  EXPECT_THROW(parse("", "", "0:1:-0.25"), precondition_error);
  // The boundary values parse: 1 is a no-op degrade, 0 a hard fault.
  EXPECT_DOUBLE_EQ(parse("", "", "0:1:1").degrades[0].health, 1.0);
  EXPECT_DOUBLE_EQ(parse("", "", "0:1:0").degrades[0].health, 0.0);
}

TEST(FaultSpecParse, RejectsDuplicatesAndOverlaps) {
  // The same link twice — also in reversed orientation.
  EXPECT_THROW(parse("0:1,0:1", "", ""), precondition_error);
  EXPECT_THROW(parse("0:1,1:0", "", ""), precondition_error);
  EXPECT_THROW(parse("", "3,3", ""), precondition_error);
  EXPECT_THROW(parse("", "", "0:1:0.5,1:0:0.25"), precondition_error);
  // One link both hard-failed and degraded is contradictory.
  EXPECT_THROW(parse("0:1", "", "1:0:0.5"), precondition_error);
  EXPECT_THROW(parse_fault_spec("", "", "", -1, 0, 0, 42),
               precondition_error);
  EXPECT_THROW(parse_fault_spec("", "", "", 0, -2, 0, 42),
               precondition_error);
  EXPECT_THROW(parse_fault_spec("", "", "", 0, 0, -3, 42),
               precondition_error);
}

TEST(FaultSpecBuild, AppliesExplicitAndRandomFaults) {
  const auto base = make_topology("torus:6x6");
  const FaultSpec spec =
      parse_fault_spec("0:1", "20", "2:3:0.5,6:7:0", 0, 0, 4, 13);
  const auto overlay = build_fault_overlay(base, spec);
  ASSERT_NE(overlay, nullptr);
  EXPECT_TRUE(overlay->link_failed(0, 1));
  EXPECT_FALSE(overlay->is_alive(20));
  EXPECT_DOUBLE_EQ(overlay->link_health(2, 3), 0.5);
  // Health 0 is routed to a hard link failure, not a zero-cost entry.
  EXPECT_TRUE(overlay->link_failed(6, 7));
  // Random degrades land on distinct pristine links: the count is exact.
  EXPECT_EQ(overlay->num_degraded_links(), 5);  // 2:3 plus 4 random
  EXPECT_TRUE(overlay->has_soft_faults());

  // Same seed, same machine -> byte-identical fault set (name encodes the
  // full mutation history).
  const auto again = build_fault_overlay(base, spec);
  EXPECT_EQ(overlay->name(), again->name());

  EXPECT_EQ(build_fault_overlay(base, FaultSpec{}), nullptr);
}

FaultSpec parse_with_restores(const std::string& fail_links,
                              const std::string& fail_nodes,
                              const std::string& restore_nodes,
                              const std::string& restore_links) {
  return parse_fault_spec(fail_links, fail_nodes, "", 0, 0, 0, 42,
                          restore_nodes, restore_links);
}

TEST(FaultSpecParse, AcceptsRestoreEntriesWithAndWithoutEpochs) {
  const FaultSpec spec =
      parse_with_restores("0:1,4:5", "7,9", "7@3,2", "0:1@5,8:9");
  ASSERT_EQ(spec.restore_nodes.size(), 2u);
  EXPECT_EQ(spec.restore_nodes[0].p, 7);
  EXPECT_EQ(spec.restore_nodes[0].epoch, 3);
  EXPECT_EQ(spec.restore_nodes[1].p, 2);
  EXPECT_EQ(spec.restore_nodes[1].epoch, 0);
  ASSERT_EQ(spec.restore_links.size(), 2u);
  EXPECT_EQ(spec.restore_links[0].a, 0);
  EXPECT_EQ(spec.restore_links[0].b, 1);
  EXPECT_EQ(spec.restore_links[0].epoch, 5);
  EXPECT_EQ(spec.restore_links[1].epoch, 0);
  EXPECT_TRUE(spec.has_timed_restores());
  EXPECT_FALSE(parse_with_restores("0:1", "", "", "2:3").has_timed_restores());
  EXPECT_FALSE(spec.empty());
  // Restores alone make the spec non-empty: a pristine machine plus a
  // timed recovery is still a timeline.
  EXPECT_FALSE(parse_with_restores("", "", "3@2", "").empty());
}

TEST(FaultSpecParse, RejectsMalformedRestores) {
  // Field-count and token errors mirror the fault flags.
  EXPECT_THROW(parse_with_restores("", "", "x", ""), precondition_error);
  EXPECT_THROW(parse_with_restores("", "", "3@", ""), precondition_error);
  EXPECT_THROW(parse_with_restores("", "", "3@-1", ""), precondition_error);
  EXPECT_THROW(parse_with_restores("", "", "3@2x", ""), precondition_error);
  EXPECT_THROW(parse_with_restores("", "", "", "0@2"), precondition_error);
  EXPECT_THROW(parse_with_restores("", "", "", "0:1:2@2"), precondition_error);
  // Duplicates (same target, same epoch) and reversed-orientation links.
  EXPECT_THROW(parse_with_restores("", "", "3@2,3@2", ""),
               precondition_error);
  EXPECT_THROW(parse_with_restores("0:1", "", "", "0:1,1:0"),
               precondition_error);
  // Epoch-0 restore of an epoch-0 failure is contradictory.
  EXPECT_THROW(parse_with_restores("", "3", "3", ""), precondition_error);
  EXPECT_THROW(parse_with_restores("0:1", "", "", "1:0"), precondition_error);
  // ... but the same target with an epoch is a fine recovery timeline.
  EXPECT_EQ(parse_with_restores("", "3", "3@1", "").restore_nodes[0].epoch, 1);
}

TEST(FaultSpecBuild, EpochZeroRestoresPinTargetsAliveAndTimedAreRejected) {
  const auto base = make_topology("torus:6x6");
  // Epoch-0 restores apply after the random draws: whatever the random
  // node faults hit, processor 10 must end up alive.
  const FaultSpec dice = parse_fault_spec("", "", "", 0, 6, 0, 13, "", "");
  const auto rolled = build_fault_overlay(base, dice);
  ASSERT_NE(rolled, nullptr);
  EXPECT_EQ(rolled->num_failed_nodes(), 6);
  const FaultSpec pinned = parse_fault_spec("", "", "", 0, 6, 0, 13, "10", "");
  const auto overlay = build_fault_overlay(base, pinned);
  ASSERT_NE(overlay, nullptr);
  EXPECT_TRUE(overlay->is_alive(10));
  // Same seed, same draws: only the pin can differ between the two runs.
  EXPECT_EQ(overlay->num_failed_nodes(),
            rolled->is_alive(10) ? 6 : 5);
  // A restore of an untouched target is an accepted no-op...
  const auto noop =
      build_fault_overlay(base, parse_with_restores("0:1", "", "", "2:3"));
  ASSERT_NE(noop, nullptr);
  EXPECT_TRUE(noop->link_failed(0, 1));
  EXPECT_FALSE(noop->link_failed(2, 3));
  // ... and a timed restore needs an epoch-running command.
  EXPECT_THROW(
      build_fault_overlay(base, parse_with_restores("", "3", "3@4", "")),
      precondition_error);
}

TEST(FaultSpecBuild, FatTreeRejectsLinkOperations) {
  const auto base = make_topology("fattree:3x2");
  // Processor-level link faults and degrades are unrepresentable on a
  // distance-model topology; the overlay's rejection propagates.
  EXPECT_THROW(build_fault_overlay(base, parse("0:1", "", "")),
               precondition_error);
  EXPECT_THROW(build_fault_overlay(base, parse("", "", "0:1:0.5")),
               precondition_error);
  // Node faults remain fine.
  const auto overlay = build_fault_overlay(base, parse("", "4", ""));
  ASSERT_NE(overlay, nullptr);
  EXPECT_FALSE(overlay->is_alive(4));
  EXPECT_EQ(overlay->num_alive(), 8);
}

}  // namespace
}  // namespace topomap::topo
