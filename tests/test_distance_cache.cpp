// Distance-plane engine tests: the dense cache must agree exactly with
// virtual Topology dispatch, every strategy must produce byte-identical
// mappings in cached and virtual modes, results must not depend on the
// worker-pool size, and known-good hop-bytes goldens pin the TopoLB /
// TopoCentLB outputs against silent drift.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/metrics.hpp"
#include "core/strategy.hpp"
#include "graph/builders.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "topo/distance_cache.hpp"
#include "topo/factory.hpp"
#include "topo/fat_tree.hpp"

namespace topomap {
namespace {

using core::Mapping;
using graph::TaskGraph;
using topo::DistanceCache;
using topo::make_topology;

const char* const kTopoSpecs[] = {
    "torus:6x6",   "mesh:5x5",  "torus:3x3x3", "mesh:4x3x2",
    "hypercube:5", "fattree:3x3", "dragonfly:5",
};

TEST(DistanceCache, MatchesVirtualDistanceExactly) {
  for (const char* spec : kTopoSpecs) {
    const auto t = make_topology(spec);
    const DistanceCache cache(*t);
    ASSERT_EQ(cache.size(), t->size());
    int max_seen = 0;
    for (int a = 0; a < t->size(); ++a) {
      const std::uint16_t* row = cache.row(a);
      for (int b = 0; b < t->size(); ++b) {
        ASSERT_EQ(static_cast<int>(row[b]), t->distance(a, b))
            << spec << " (" << a << "," << b << ")";
        max_seen = std::max(max_seen, static_cast<int>(row[b]));
      }
      // The determinism contract: the *virtual* mean, bit for bit.
      ASSERT_EQ(cache.mean_distance_from(a), t->mean_distance_from(a)) << spec;
    }
    EXPECT_EQ(cache.diameter(), max_seen) << spec;
  }
}

TEST(DistanceCache, RejectsOversizedTopology) {
  // Beyond the 20000-node dense-matrix cap the cache must refuse instead of
  // silently allocating ~GBs.  The topology itself stays cheap to build.
  EXPECT_NO_THROW(DistanceCache(*make_topology("mesh:16x16")));
  EXPECT_THROW(DistanceCache(*make_topology("fattree:2x15")),  // 32768 leaves
               precondition_error);
}

// Every strategy the factory can build, in cached vs virtual mode, on a
// mixed random workload: the mappings must be byte-identical.  This is the
// property that lets production default to kCached without re-validating
// any paper experiment.
class CacheEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(CacheEquivalenceTest, CachedAndVirtualMappingsAreByteIdentical) {
  const auto [strategy_spec, topo_spec] = GetParam();
  const auto t = make_topology(topo_spec);
  Rng graph_rng(7);
  const TaskGraph g =
      graph::random_graph(t->size(), 3.0 / t->size() + 0.08, 1.0, 64.0,
                          graph_rng, /*require_connected=*/false);
  const auto cached = core::make_strategy(strategy_spec,
                                          core::DistanceMode::kCached);
  const auto virt = core::make_strategy(strategy_spec,
                                        core::DistanceMode::kVirtual);
  Rng rng_c(1234), rng_v(1234);
  const Mapping mc = cached->map(g, *t, rng_c);
  const Mapping mv = virt->map(g, *t, rng_v);
  EXPECT_EQ(mc, mv);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheEquivalenceTest,
    ::testing::Combine(
        ::testing::Values("topolb", "topolb1", "topolb3", "topocent",
                          "topolb+refine", "topocent+refine", "anneal",
                          "anneal-warm"),
        ::testing::Values("torus:5x5", "mesh:4x4", "torus:3x3x3",
                          "hypercube:4", "fattree:2x4", "dragonfly:4")));

// The parallel kernels must give the same answer for any pool size — the
// chunk layout depends only on (n, grain), and reductions combine in fixed
// chunk order.
TEST(DistanceCache, MappingsInvariantUnderThreadCount) {
  const auto t = make_topology("torus:6x6");
  const TaskGraph g = graph::stencil_2d(6, 6, 3.0);
  std::vector<Mapping> results;
  for (const int threads : {1, 2, 4}) {
    support::set_num_threads(threads);
    for (const char* spec : {"topolb", "topolb3", "topocent",
                             "topolb+refine"}) {
      Rng rng(42);
      results.push_back(core::make_strategy(spec)->map(g, *t, rng));
    }
  }
  support::set_num_threads(1);
  const std::size_t per_round = 4;
  for (std::size_t r = 1; r < 3; ++r)
    for (std::size_t i = 0; i < per_round; ++i)
      EXPECT_EQ(results[i], results[r * per_round + i]) << "strategy " << i;
}

// Golden hop-bytes for the deterministic strategies on stencil workloads.
// These pin the exact tie-break behaviour (including the relative-epsilon
// gain comparison in TopoLB::select_task); an unintended change to any
// kernel shows up here as a hop-bytes shift.
struct Golden {
  const char* strategy;
  const char* topo;
  int side;
  double hop_bytes;
};

TEST(DistanceCache, GoldenHopBytesOnStencils) {
  const Golden goldens[] = {
      {"topolb", "torus:6x6", 6, 180.0},   {"topolb", "mesh:5x5", 5, 144.0},
      {"topolb", "torus:4x4", 4, 72.0},    {"topolb1", "torus:6x6", 6, 180.0},
      {"topolb1", "mesh:5x5", 5, 216.0},   {"topolb1", "torus:4x4", 4, 72.0},
      {"topolb3", "torus:6x6", 6, 273.0},  {"topolb3", "mesh:5x5", 5, 144.0},
      {"topolb3", "torus:4x4", 4, 84.0},   {"topocent", "torus:6x6", 6, 294.0},
      {"topocent", "mesh:5x5", 5, 219.0},  {"topocent", "torus:4x4", 4, 72.0},
      {"topolb+refine", "torus:6x6", 6, 180.0},
      {"topolb+refine", "mesh:5x5", 5, 120.0},
      {"topolb+refine", "torus:4x4", 4, 72.0},
  };
  for (const Golden& gold : goldens) {
    const auto t = make_topology(gold.topo);
    const TaskGraph g = graph::stencil_2d(gold.side, gold.side, 3.0);
    Rng rng(42);
    const Mapping m = core::make_strategy(gold.strategy)->map(g, *t, rng);
    EXPECT_EQ(core::hop_bytes(g, *t, m), gold.hop_bytes)
        << gold.strategy << " on " << gold.topo;
  }
}

// hop_bytes read through a cache is bit-identical to the virtual overload.
TEST(DistanceCache, HopBytesOverloadsAgree) {
  for (const char* spec : kTopoSpecs) {
    const auto t = make_topology(spec);
    const DistanceCache cache(*t);
    Rng rng(3);
    const TaskGraph g =
        graph::random_graph(t->size(), 0.2, 1.0, 32.0, rng,
                            /*require_connected=*/false);
    Mapping m = core::identity_mapping(t->size());
    EXPECT_EQ(core::hop_bytes(g, *t, m), core::hop_bytes(g, cache, m)) << spec;
  }
}

// FatTree is a distance model with no processor-level adjacency; the
// regression here is that it used to *return* a disconnected sibling
// adjacency, which made GraphTopology::from_topology fail with a misleading
// "disconnected" diagnosis and undercounted directed_link_count.
TEST(FatTreeAdjacency, NeighborsRejectsUpFront) {
  const topo::FatTree f(2, 3);
  EXPECT_THROW(f.neighbors(0), precondition_error);
  EXPECT_THROW(f.route(0, 5), precondition_error);
  // Distances stay fully supported (that is the model's whole job).
  EXPECT_EQ(f.distance(0, 1), 2);
  EXPECT_EQ(f.distance(0, 7), 6);
  EXPECT_NO_THROW(DistanceCache{f});
}

}  // namespace
}  // namespace topomap
