// Partitioner tests: cover/balance invariants, cut quality vs random,
// multilevel bisection behaviour, quotient-pipeline integration.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "graph/builders.hpp"
#include "graph/quotient.hpp"
#include "graph/synthetic_md.hpp"
#include "partition/greedy_partition.hpp"
#include "partition/multilevel.hpp"
#include "partition/partition.hpp"
#include "support/error.hpp"

namespace topomap::part {
namespace {

using graph::stencil_2d;
using graph::TaskGraph;

void expect_valid_partition(const TaskGraph& g, const PartitionResult& r,
                            int k) {
  ASSERT_EQ(r.num_parts, k);
  ASSERT_EQ(static_cast<int>(r.assignment.size()), g.num_vertices());
  for (int part : r.assignment) {
    EXPECT_GE(part, 0);
    EXPECT_LT(part, k);
  }
}

TEST(Metrics, EdgeCutAndImbalance) {
  TaskGraph::Builder b("t");
  b.add_vertices(4, 1.0);
  b.add_edge(0, 1, 10.0);
  b.add_edge(2, 3, 20.0);
  b.add_edge(1, 2, 5.0);
  const TaskGraph g = std::move(b).build();
  const std::vector<int> a{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(edge_cut(g, a), 5.0);
  EXPECT_DOUBLE_EQ(load_imbalance(g, a, 2), 1.0);
  const std::vector<int> skew{0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(load_imbalance(g, skew, 2), 1.5);
  EXPECT_EQ(part_weights(g, skew, 2), (std::vector<double>{3.0, 1.0}));
}

TEST(GreedyPartitioner, BalancesHeterogeneousLoads) {
  TaskGraph::Builder b("t");
  for (int i = 0; i < 40; ++i) b.add_vertex(1.0 + (i % 7));
  const TaskGraph g = std::move(b).build();
  Rng rng(5);
  const auto r = GreedyPartitioner().partition(g, 8, rng);
  expect_valid_partition(g, r, 8);
  EXPECT_LT(load_imbalance(g, r.assignment, 8), 1.15);
}

TEST(RandomPartitioner, UsesAllPartsRoundRobin) {
  const TaskGraph g = stencil_2d(6, 6, 1.0);
  Rng rng(2);
  const auto r = RandomPartitioner().partition(g, 6, rng);
  expect_valid_partition(g, r, 6);
  std::set<int> used(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(used.size(), 6u);
  EXPECT_DOUBLE_EQ(load_imbalance(g, r.assignment, 6), 1.0);
}

TEST(Multilevel, BisectionBalancedAndLowCut) {
  // A 16x8 stencil split in half should cut near the 8-edge waistline,
  // far below a random split's expectation (~half of 232 edges).
  const TaskGraph g = stencil_2d(16, 8, 1.0);
  Rng rng(7);
  MultilevelPartitioner ml;
  const auto side = ml.bisect(g, 0.5, rng);
  double left = 0;
  for (int s : side) left += (s == 0) ? 1 : 0;
  EXPECT_NEAR(left, 64.0, 64.0 * 0.1);
  std::vector<int> assignment(side.begin(), side.end());
  EXPECT_LE(edge_cut(g, assignment), 24.0);  // optimal 8, allow slack
}

TEST(Multilevel, UnevenTargetFraction) {
  const TaskGraph g = stencil_2d(12, 12, 1.0);
  Rng rng(3);
  MultilevelPartitioner ml;
  const auto side = ml.bisect(g, 1.0 / 3.0, rng);
  double left = 0;
  for (int s : side) left += (s == 0) ? 1 : 0;
  EXPECT_NEAR(left, 48.0, 48.0 * 0.15);
}

TEST(Multilevel, BeatsRandomCutOnStencil) {
  const TaskGraph g = stencil_2d(16, 16, 1.0);
  Rng rng(11);
  const auto ml = MultilevelPartitioner().partition(g, 8, rng);
  const auto rnd = RandomPartitioner().partition(g, 8, rng);
  expect_valid_partition(g, ml, 8);
  EXPECT_LT(edge_cut(g, ml.assignment), 0.5 * edge_cut(g, rnd.assignment));
  EXPECT_LT(load_imbalance(g, ml.assignment, 8), 1.25);
}

TEST(Multilevel, DegenerateCases) {
  const TaskGraph g = stencil_2d(3, 3, 1.0);
  Rng rng(1);
  // k == 1: everything in part 0.
  const auto one = MultilevelPartitioner().partition(g, 1, rng);
  for (int part : one.assignment) EXPECT_EQ(part, 0);
  // k == n: every vertex its own part.
  const auto all = MultilevelPartitioner().partition(g, 9, rng);
  std::set<int> used(all.assignment.begin(), all.assignment.end());
  EXPECT_EQ(used.size(), 9u);
  // k > n is allowed; parts beyond n stay empty.
  const auto more = MultilevelPartitioner().partition(g, 12, rng);
  expect_valid_partition(g, more, 12);
}

TEST(Multilevel, ZeroWeightGraphBalancesOnCounts) {
  TaskGraph::Builder b("zero");
  b.add_vertices(24, 0.0);
  for (int i = 0; i + 1 < 24; ++i) b.add_edge(i, i + 1, 1.0);
  const TaskGraph g = std::move(b).build();
  Rng rng(4);
  const auto r = MultilevelPartitioner().partition(g, 4, rng);
  expect_valid_partition(g, r, 4);
  // Each part should hold roughly 6 vertices.
  std::vector<int> counts(4, 0);
  for (int part : r.assignment) ++counts[static_cast<std::size_t>(part)];
  for (int c : counts) EXPECT_NEAR(c, 6, 2);
}

TEST(Multilevel, HandlesDisconnectedGraphs) {
  TaskGraph::Builder b("two-cliques");
  b.add_vertices(16, 1.0);
  for (int i = 0; i < 8; ++i)
    for (int j = i + 1; j < 8; ++j) {
      b.add_edge(i, j, 4.0);
      b.add_edge(8 + i, 8 + j, 4.0);
    }
  const TaskGraph g = std::move(b).build();
  Rng rng(6);
  const auto r = MultilevelPartitioner().partition(g, 2, rng);
  expect_valid_partition(g, r, 2);
  // The natural split keeps each clique whole: zero cut.
  EXPECT_DOUBLE_EQ(edge_cut(g, r.assignment), 0.0);
}

TEST(Multilevel, MdPipelineProducesUsableQuotient) {
  // The paper's phase-1 pipeline: partition the MD object graph into p
  // groups, coalesce, and check the quotient is balanced and far cheaper
  // to communicate than the random grouping.
  graph::MdParams params;
  params.cells_x = 4;
  params.cells_y = 4;
  params.cells_z = 3;
  Rng rng(9);
  const TaskGraph md = graph::synthetic_md(params, rng);
  const int p = 32;
  const auto ml = MultilevelPartitioner().partition(md, p, rng);
  const auto rnd = RandomPartitioner().partition(md, p, rng);
  EXPECT_LT(load_imbalance(md, ml.assignment, p), 1.35);
  EXPECT_LT(edge_cut(md, ml.assignment), 0.75 * edge_cut(md, rnd.assignment));
  const TaskGraph q = graph::quotient_graph(md, ml.assignment, p);
  EXPECT_EQ(q.num_vertices(), p);
  EXPECT_GT(q.num_edges(), 0);
  EXPECT_NEAR(q.total_vertex_weight(), md.total_vertex_weight(), 1e-6);
}

TEST(Factory, BuildsByName) {
  EXPECT_EQ(make_partitioner("multilevel")->name(), "MultilevelPartition");
  EXPECT_EQ(make_partitioner("greedy")->name(), "GreedyPartition");
  EXPECT_EQ(make_partitioner("random")->name(), "RandomPartition");
  EXPECT_THROW(make_partitioner("metis"), precondition_error);
}

// Property sweep: every partitioner covers all vertices with in-range parts
// and respects a loose balance bound across graph families and k.
class PartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, int, int>> {};

TEST_P(PartitionPropertyTest, CoverAndBalance) {
  const auto [spec, k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const TaskGraph g = graph::random_graph(96, 0.08, 1.0, 40.0, rng);
  const PartitionerPtr p = make_partitioner(spec);
  const auto r = p->partition(g, k, rng);
  expect_valid_partition(g, r, k);
  if (std::string(spec) != "random") {
    EXPECT_LT(load_imbalance(g, r.assignment, k), 1.6) << spec << " k=" << k;
  }
  std::set<int> used(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(static_cast<int>(used.size()), std::min(k, g.num_vertices()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionPropertyTest,
    ::testing::Combine(::testing::Values("multilevel", "greedy", "random"),
                       ::testing::Values(2, 5, 16, 48),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace topomap::part
