// Support-library tests: deterministic RNG, statistics, table/CSV, CLI.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace topomap {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  bool any_diff = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) any_diff |= (a2() != c());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_THROW(rng.uniform(0), precondition_error);
  EXPECT_THROW(rng.uniform_int(3, 2), precondition_error);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, PermutationIsBijection) {
  Rng rng(5);
  const auto p = rng.permutation(200);
  std::vector<char> seen(200, 0);
  for (int v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 200);
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(1);
  Rng child = parent.split();
  EXPECT_NE(parent(), child());
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  Rng rng(3);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_double(-3, 9);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleStats, Percentiles) {
  SampleStats s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_THROW(s.percentile(1.5), precondition_error);
}

TEST(Table, PrintsAlignedAndWritesCsv) {
  Table t("demo", {"name", "count", "ratio"}, 2);
  t.add_row({std::string("alpha"), std::int64_t{42}, 1.234});
  t.add_row({std::string("b,\"x\""), std::int64_t{7}, 0.5});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("demo"), std::string::npos);
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);

  const auto path = std::filesystem::temp_directory_path() / "topomap_t.csv";
  ASSERT_TRUE(t.write_csv(path.string()));
  std::ifstream in(path);
  std::string header, row1, row2;
  std::getline(in, header);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(header, "name,count,ratio");
  EXPECT_EQ(row1, "alpha,42,1.23");
  EXPECT_EQ(row2, "\"b,\"\"x\"\"\",7,0.50");
  std::filesystem::remove(path);
}

TEST(Table, RejectsMismatchedRows) {
  Table t("demo", {"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), precondition_error);
}

TEST(Cli, ParsesFlagsOptionsAndLists) {
  CliParser cli("test");
  cli.add_flag("fast", "run fast");
  cli.add_option("iters", "iterations", "100");
  cli.add_option("sizes", "sweep sizes", "1,2,3");
  cli.add_option("bw", "bandwidth", "2.5");
  const char* argv[] = {"prog", "--fast", "--iters=250", "--bw", "7.5"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_TRUE(cli.flag("fast"));
  EXPECT_EQ(cli.integer("iters"), 250);
  EXPECT_DOUBLE_EQ(cli.real("bw"), 7.5);
  EXPECT_EQ(cli.int_list("sizes"), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(Cli, RejectsUnknownAndMalformed) {
  CliParser cli("test");
  cli.add_option("iters", "iterations", "100");
  const char* bad1[] = {"prog", "--nope=1"};
  EXPECT_FALSE(CliParser(cli).parse(2, bad1));
  const char* bad2[] = {"prog", "positional"};
  CliParser cli2("test");
  EXPECT_FALSE(cli2.parse(2, bad2));
}

}  // namespace
}  // namespace topomap
