// obs::Tracer — scoped phase spans with nesting, steady-clock timing, a
// Chrome-trace exporter, and a compact text summary.
//
// A span is opened with OBS_SPAN("topolb/select") (obs/obs.hpp) and closed
// by scope exit; nesting is tracked per thread with a depth counter, so a
// trace of a TopoLB run shows "cli/map" enclosing "topolb/map" enclosing
// thousands of "topolb/select" slices.  Span begin/ends never synchronize
// with other threads while the span is open — each thread appends completed
// spans to its own buffer (one uncontended lock per close, as in
// obs::Registry) — so tracing cannot serialize the parallel kernels it
// measures, and (like all obs recording) it only observes: mapping results
// are byte-identical with tracing on or off.
//
// Counter tracks: alongside spans, the tracer records named *counter*
// samples (record_counter) — time-stamped values such as the network
// simulator's per-interval busiest-link utilization.  Counter timestamps
// live on a separate clock domain (netsim samples carry *virtual*
// microseconds), so the exporter puts them on their own pid and Perfetto
// renders them as counter tracks next to — not interleaved with — the
// wall-clock phase spans.
//
// Exports:
//  * write_chrome_trace() — the chrome://tracing / Perfetto "JSON array of
//    complete events" format: one {"name","ph":"X","ts","dur","pid","tid"}
//    object per span (ts/dur in microseconds) plus one
//    {"name","ph":"C","ts","pid","args":{"value":v}} object per counter
//    sample.  Load the file in chrome://tracing or ui.perfetto.dev.
//  * rollup() — per-name Distribution of span durations (microseconds),
//    the form obs::Report embeds.
//  * summary() — an aligned text table of the rollup (count, total, mean,
//    min, max), for --help-free terminal reading.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "support/stats.hpp"

namespace topomap::obs {

struct SpanRecord {
  std::string name;
  std::uint64_t start_ns = 0;  ///< obs::now_ns() at open
  std::uint64_t dur_ns = 0;
  int depth = 0;  ///< nesting depth on the recording thread (0 = top level)
  int tid = 0;    ///< recording thread's trace id (registration order)
};

/// One sample of a named counter track.  The timestamp is whatever clock
/// the producer uses (netsim: virtual microseconds); samples of one name
/// must be appended in non-decreasing timestamp order by a single thread.
struct CounterRecord {
  std::string name;
  double ts_us = 0.0;
  double value = 0.0;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Record a completed span (called by ScopedSpan; any thread).
  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
              int depth);

  /// All completed spans, sorted by (start_ns, tid, depth).
  std::vector<SpanRecord> spans() const;

  /// Append one counter sample (single producer per name, sequential
  /// drivers only — netsim's sampling loop, not the parallel kernels).
  void record_counter(const char* name, double ts_us, double value);

  /// All counter samples, in recording order.
  std::vector<CounterRecord> counters() const;

  /// Per-name duration distributions in microseconds.
  std::map<std::string, Distribution> rollup() const;

  /// Chrome-trace JSON array of every completed span.
  void write_chrome_trace(std::ostream& os) const;

  /// Aligned text table of rollup(), one line per span name.
  std::string summary() const;

  /// Drop every recorded span.
  void reset();

  /// Current thread's nesting depth (exposed for ScopedSpan).
  static int& thread_depth();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Internal (public only for the thread-exit hook in tracer.cpp).
  struct Buffer;
  void retire_buffer(Buffer* buffer);

 private:
  Tracer() = default;
  Buffer& local_buffer();

  struct Impl;
  Impl* impl();
};

/// RAII span: captures the clock on entry when obs::enabled(), records on
/// exit.  A span that outlives a set_enabled(false) is dropped at close —
/// the depth counter still balances, but nothing is recorded, so
/// "disabled" means no sample lands after the switch flips.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  ///< null when the span is inactive
  std::uint64_t start_ns_ = 0;
  int depth_ = 0;
};

}  // namespace topomap::obs
