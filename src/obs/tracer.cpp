#include "obs/tracer.hpp"

#include <algorithm>
#include <mutex>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace topomap::obs {

struct Tracer::Buffer {
  std::mutex mu;
  int tid = 0;
  std::vector<SpanRecord> spans;
};

struct Tracer::Impl {
  std::mutex mu;
  std::vector<Buffer*> buffers;
  std::vector<SpanRecord> retired;
  std::vector<CounterRecord> counters;
  int next_tid = 0;
};

namespace {

struct BufferHandle {
  Tracer::Buffer* buffer = nullptr;
  ~BufferHandle();
};

thread_local BufferHandle t_buffer;
thread_local int t_depth = 0;

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer();  // leaked: outlives thread dtors
  return *t;
}

Tracer::Impl* Tracer::impl() {
  static Impl* i = new Impl();
  return i;
}

int& Tracer::thread_depth() { return t_depth; }

Tracer::Buffer& Tracer::local_buffer() {
  if (t_buffer.buffer == nullptr) {
    auto* buffer = new Buffer();
    {
      std::lock_guard<std::mutex> lock(impl()->mu);
      buffer->tid = impl()->next_tid++;
      impl()->buffers.push_back(buffer);
    }
    t_buffer.buffer = buffer;
  }
  return *t_buffer.buffer;
}

void Tracer::retire_buffer(Buffer* buffer) {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    im->retired.insert(im->retired.end(), buffer->spans.begin(),
                       buffer->spans.end());
  }
  std::erase(im->buffers, buffer);
  delete buffer;
}

namespace {
BufferHandle::~BufferHandle() {
  if (buffer != nullptr) Tracer::instance().retire_buffer(buffer);
}
}  // namespace

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, int depth) {
  Buffer& b = local_buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  b.spans.push_back(SpanRecord{name, start_ns, dur_ns, depth, b.tid});
}

void Tracer::record_counter(const char* name, double ts_us, double value) {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  im->counters.push_back(CounterRecord{name, ts_us, value});
}

std::vector<CounterRecord> Tracer::counters() const {
  Impl* im = const_cast<Tracer*>(this)->impl();
  std::lock_guard<std::mutex> lock(im->mu);
  return im->counters;
}

std::vector<SpanRecord> Tracer::spans() const {
  Impl* im = const_cast<Tracer*>(this)->impl();
  std::lock_guard<std::mutex> lock(im->mu);
  std::vector<SpanRecord> out = im->retired;
  for (Buffer* buffer : im->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.depth < b.depth;
                   });
  return out;
}

std::map<std::string, Distribution> Tracer::rollup() const {
  std::map<std::string, Distribution> out;
  for (const SpanRecord& s : spans())
    out[s.name].add(static_cast<double>(s.dur_ns) / 1000.0);
  return out;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  json::Value events = json::Value::array();
  for (const SpanRecord& s : spans()) {
    json::Value e = json::Value::object();
    e.set("name", s.name);
    e.set("ph", "X");
    e.set("ts", static_cast<double>(s.start_ns) / 1000.0);
    e.set("dur", static_cast<double>(s.dur_ns) / 1000.0);
    e.set("pid", 1);
    e.set("tid", s.tid);
    events.push_back(std::move(e));
  }
  // Counter tracks go on their own pid: their timestamps are the
  // producer's clock (netsim: virtual time), not the span wall clock.
  for (const CounterRecord& c : counters()) {
    json::Value e = json::Value::object();
    e.set("name", c.name);
    e.set("ph", "C");
    e.set("ts", c.ts_us);
    e.set("pid", 2);
    e.set("tid", 0);
    json::Value args = json::Value::object();
    args.set("value", c.value);
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  }
  os << events.dump() << "\n";
}

std::string Tracer::summary() const {
  const auto roll = rollup();
  std::size_t name_width = 4;  // "span"
  for (const auto& [name, dist] : roll)
    name_width = std::max(name_width, name.size());
  std::ostringstream os;
  os << "span";
  os << std::string(name_width - 4, ' ')
     << "  count   total_ms    mean_us     min_us     max_us\n";
  for (const auto& [name, dist] : roll) {
    os << name << std::string(name_width - name.size(), ' ');
    auto cell = [&](const std::string& s, std::size_t w) {
      os << "  " << std::string(w > s.size() ? w - s.size() : 0, ' ') << s;
    };
    cell(std::to_string(dist.count), 5);
    cell(format_fixed(dist.sum / 1000.0, 3), 9);
    cell(format_fixed(dist.mean(), 3), 9);
    cell(format_fixed(dist.min_or_zero(), 3), 9);
    cell(format_fixed(dist.max_or_zero(), 3), 9);
    os << "\n";
  }
  return os.str();
}

void Tracer::reset() {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  im->retired.clear();
  im->counters.clear();
  for (Buffer* buffer : im->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->spans.clear();
  }
}

ScopedSpan::ScopedSpan(const char* name) {
  if (!enabled()) return;
  name_ = name;
  depth_ = Tracer::thread_depth()++;
  start_ns_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  const std::uint64_t dur = now_ns() - start_ns_;
  --Tracer::thread_depth();
  // Dropped, not recorded, when recording was switched off while the span
  // was open: the depth counter must still balance, but a sample landing
  // after set_enabled(false) would violate "disabled records nothing".
  if (!enabled()) return;
  Tracer::instance().record(name_, start_ns_, dur, depth_);
}

}  // namespace topomap::obs
