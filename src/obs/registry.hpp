// obs::Registry — named monotonic counters, value distributions,
// log-bucketed histograms, and ordered numeric series for the whole stack.
//
// Instrumentation sites (mapping kernels, DistanceCache repairs, the
// network simulator, the runtime drivers) record through the OBS_* macros
// in obs/obs.hpp.  The macros compile to nothing unless the build sets
// TOPOMAP_OBS=ON, and when compiled in they are guarded by one relaxed
// atomic-bool load (obs::enabled()), so the disabled path never perturbs
// the hot loops.  Recording only *observes* — no instrumented kernel reads
// anything back from the registry — so enabling telemetry can never change
// a mapping result or break support::parallel's byte-identity contract.
//
// Concurrency & determinism: counters, distributions, and histograms are
// recorded into *thread-local shards* (one uncontended mutex lock per
// record; the mutex exists only so snapshots can read a live shard
// safely).  A snapshot merges every shard per name into one sorted map.
// Counter sums are integers, distribution merges are count/sum/min/max,
// and histogram merges are per-bucket count additions over *fixed* bucket
// boundaries (obs/histogram.hpp), so the merged
// snapshot is independent of which worker thread happened to run which
// parallel_for chunk: the same run records the same multiset of values per
// name no matter the thread count, and the merge is order-free for every
// field except FP sums — which instrumentation keeps integral-valued for
// exactly this reason (tests/test_obs.cpp asserts snapshot equality across
// 1/2/8-thread pools).  Worker threads destroyed by set_num_threads()
// retire their shard into the registry on exit, so no sample is ever lost.
//
// Series (ordered trajectories, e.g. TopoLB's per-iteration hop-bytes) are
// append-only and must be fed from one thread at a time per name — true of
// every current site, which all append from the sequential driver loop.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"
#include "support/stats.hpp"

namespace topomap::obs {

/// Runtime switch.  Starts true iff the TOPOMAP_OBS environment variable is
/// set to a value other than "0"/"" — so an instrumented build records
/// nothing until a CLI flag, a bench hook, or the environment asks for it.
bool enabled();
void set_enabled(bool on);

/// Monotonic nanoseconds from a process-local steady_clock epoch.  All span
/// timestamps and ad-hoc timings share this base.
std::uint64_t now_ns();

class Registry {
 public:
  /// The process-wide registry.  Deliberately leaked so worker-thread
  /// shard destructors can retire into it at any point of shutdown.
  static Registry& instance();

  // --- recording (any thread) ---
  void add(std::string_view name, std::uint64_t delta);
  void record(std::string_view name, double value);
  void observe(std::string_view name, double value);  ///< histogram sample

  // --- recording (one thread per name) ---
  void append_series(std::string_view name, double value);

  // --- snapshots (any thread; merge all shards) ---
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, Distribution> distributions() const;
  std::map<std::string, Histogram> histograms() const;
  std::map<std::string, std::vector<double>> series() const;

  /// Single counter value, 0 when never touched.  Snapshot-priced; for
  /// tests and tools, not hot paths.
  std::uint64_t counter(std::string_view name) const;

  /// Drop every counter, distribution, and series (all shards included).
  void reset();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Internal (public only for the thread-exit hook in registry.cpp).
  struct Shard;
  void retire_shard(Shard* shard);

 private:
  Registry() = default;
  Shard& local_shard();

  struct Impl;
  Impl* impl();  // lazily built; storage lives in registry.cpp
};

}  // namespace topomap::obs
