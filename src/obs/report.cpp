#include "obs/report.hpp"

#include <fstream>
#include <ostream>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "support/error.hpp"

namespace topomap::obs {

namespace {

json::Value dist_json(const Distribution& d) {
  json::Value v = json::Value::object();
  v.set("count", d.count);
  v.set("sum", d.sum);
  v.set("min", d.min_or_zero());
  v.set("max", d.max_or_zero());
  v.set("mean", d.mean());
  return v;
}

}  // namespace

json::Value histogram_to_json(const Histogram& h) {
  json::Value v = json::Value::object();
  v.set("count", h.count());
  v.set("sum", h.sum());
  v.set("min", h.min_or_zero());
  v.set("max", h.max_or_zero());
  v.set("mean", h.mean());
  v.set("p50", h.quantile(0.5));
  v.set("p90", h.quantile(0.9));
  v.set("p99", h.quantile(0.99));
  json::Value buckets = json::Value::array();
  for (int i : h.nonempty_buckets()) {
    json::Value triple = json::Value::array();
    triple.push_back(Histogram::bucket_lo(i));
    triple.push_back(Histogram::bucket_hi(i));
    triple.push_back(h.bucket(i));
    buckets.push_back(std::move(triple));
  }
  v.set("buckets", std::move(buckets));
  return v;
}

void Report::set_meta(const std::string& key, const std::string& value) {
  meta_[key] = value;
}

void Report::add_series(const std::string& name, std::vector<double> values) {
  series_[name] = std::move(values);
}

void Report::add_table(const std::string& name,
                       std::vector<std::string> columns,
                       std::vector<std::vector<json::Value>> rows) {
  tables_[name] = Table{std::move(columns), std::move(rows)};
}

void Report::capture() {
  Registry& reg = Registry::instance();
  counters_ = reg.counters();
  distributions_ = reg.distributions();
  histograms_ = reg.histograms();
  spans_ = Tracer::instance().rollup();
  // Explicit add_series() entries shadow same-named captured series.
  auto captured = reg.series();
  for (auto& [name, values] : captured)
    series_.emplace(name, std::move(values));
}

json::Value Report::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("schema", kSchemaName);
  doc.set("schema_version", kSchemaVersion);

  json::Value meta = json::Value::object();
  for (const auto& [k, v] : meta_) meta.set(k, v);
  doc.set("meta", std::move(meta));

  json::Value counters = json::Value::object();
  for (const auto& [name, v] : counters_) counters.set(name, v);
  doc.set("counters", std::move(counters));

  json::Value dists = json::Value::object();
  for (const auto& [name, d] : distributions_) dists.set(name, dist_json(d));
  doc.set("distributions", std::move(dists));

  // A new section, not a version bump: consumers tolerate unknown
  // sections within a schema version.
  json::Value hists = json::Value::object();
  for (const auto& [name, h] : histograms_)
    hists.set(name, histogram_to_json(h));
  doc.set("histograms", std::move(hists));

  json::Value series = json::Value::object();
  for (const auto& [name, values] : series_) {
    json::Value arr = json::Value::array();
    for (double x : values) arr.push_back(x);
    series.set(name, std::move(arr));
  }
  doc.set("series", std::move(series));

  json::Value spans = json::Value::object();
  for (const auto& [name, d] : spans_) spans.set(name, dist_json(d));
  doc.set("spans", std::move(spans));

  json::Value tables = json::Value::object();
  for (const auto& [name, table] : tables_) {
    json::Value t = json::Value::object();
    json::Value columns = json::Value::array();
    for (const std::string& c : table.columns) columns.push_back(c);
    t.set("columns", std::move(columns));
    json::Value rows = json::Value::array();
    for (const auto& row : table.rows) {
      TOPOMAP_REQUIRE(row.size() == table.columns.size(),
                      "report table '" + name + "': row width " +
                          std::to_string(row.size()) + " != " +
                          std::to_string(table.columns.size()) + " columns");
      json::Value r = json::Value::array();
      for (const json::Value& x : row) r.push_back(x);
      rows.push_back(std::move(r));
    }
    t.set("rows", std::move(rows));
    tables.set(name, std::move(t));
  }
  doc.set("tables", std::move(tables));

  return doc;
}

void Report::write(std::ostream& os) const { os << to_json().dump(2) << "\n"; }

void Report::write_file(const std::string& path) const {
  std::ofstream os(path);
  TOPOMAP_REQUIRE(os.good(), "report: cannot open '" + path + "' for writing");
  write(os);
  os.flush();
  TOPOMAP_REQUIRE(os.good(), "report: failed writing '" + path + "'");
}

}  // namespace topomap::obs
