// obs — instrumentation macro front-end for the whole stack.
//
// Hot-path code includes only this header and records through macros:
//
//   OBS_COUNTER_ADD("topolb/f_est_evals", nf);   // monotonic counter
//   OBS_VALUE("distcache/rows_repaired", rows);  // count/sum/min/max dist
//   OBS_HISTOGRAM("svc/map/kernel_us", us);      // log-bucketed histogram
//   OBS_SERIES_APPEND("topolb/hop_bytes_trajectory", hb);  // ordered series
//   OBS_SPAN("topolb/map");                      // RAII phase span
//   OBS_ONLY(<statements>);                      // arbitrary obs-only code
//
// Build gate: the macros compile to nothing unless the build defines
// TOPOMAP_OBS_ENABLED (cmake -DTOPOMAP_OBS=ON).  In the default OFF build
// no argument expression is evaluated and no obs symbol is referenced —
// the disabled path is zero-overhead by construction, and instrumented
// translation units are byte-for-byte re-creatable without the subsystem.
//
// Runtime gate: when compiled in, every macro first checks obs::enabled()
// (one relaxed atomic load).  Instrumented builds therefore run cold paths
// at ~zero cost too until --trace/--stats, bench hooks, or TOPOMAP_OBS=1
// in the environment switch recording on.
//
// Determinism contract: recording only observes.  No instrumented kernel
// reads registry or tracer state, so mappings, simulations, and
// support::parallel byte-identity are unchanged whether obs is compiled
// out, compiled in but disabled, or fully recording — tests/test_obs.cpp
// and scripts/ci.sh hold the line.
//
// The class APIs (obs::Registry, obs::Tracer, obs::Report) exist in every
// build; only the macro call sites are gated.  Tools and tests may use the
// classes directly without any #if.
#pragma once

#include "obs/registry.hpp"
#include "obs/tracer.hpp"

#if defined(TOPOMAP_OBS_ENABLED)

#define TOPOMAP_OBS_CONCAT_IMPL(a, b) a##b
#define TOPOMAP_OBS_CONCAT(a, b) TOPOMAP_OBS_CONCAT_IMPL(a, b)

/// Add `delta` to the named monotonic counter.
#define OBS_COUNTER_ADD(name, delta)                                     \
  do {                                                                   \
    if (::topomap::obs::enabled())                                       \
      ::topomap::obs::Registry::instance().add((name),                   \
                                               static_cast<std::uint64_t>(delta)); \
  } while (false)

/// Record one sample into the named value distribution.
#define OBS_VALUE(name, value)                                     \
  do {                                                             \
    if (::topomap::obs::enabled())                                 \
      ::topomap::obs::Registry::instance().record(                 \
          (name), static_cast<double>(value));                     \
  } while (false)

/// Record one sample into the named log-bucketed histogram
/// (obs/histogram.hpp: fixed boundaries, exact thread-shard merges).
#define OBS_HISTOGRAM(name, value)                                  \
  do {                                                              \
    if (::topomap::obs::enabled())                                  \
      ::topomap::obs::Registry::instance().observe(                 \
          (name), static_cast<double>(value));                      \
  } while (false)

/// Append one point to the named ordered series (single writer per name).
#define OBS_SERIES_APPEND(name, value)                             \
  do {                                                             \
    if (::topomap::obs::enabled())                                 \
      ::topomap::obs::Registry::instance().append_series(          \
          (name), static_cast<double>(value));                     \
  } while (false)

/// Open a scoped phase span closed at end of the enclosing block.
#define OBS_SPAN(name)                                          \
  ::topomap::obs::ScopedSpan TOPOMAP_OBS_CONCAT(obs_span_,      \
                                                __LINE__)(name)

/// Compile the enclosed statements only in instrumented builds.  Wrap the
/// body in its own `if (::topomap::obs::enabled())` when it does real work.
#define OBS_ONLY(...) __VA_ARGS__

#else  // !TOPOMAP_OBS_ENABLED

#define OBS_COUNTER_ADD(name, delta) \
  do {                               \
  } while (false)
#define OBS_VALUE(name, value) \
  do {                         \
  } while (false)
#define OBS_HISTOGRAM(name, value) \
  do {                             \
  } while (false)
#define OBS_SERIES_APPEND(name, value) \
  do {                                 \
  } while (false)
#define OBS_SPAN(name) \
  do {                 \
  } while (false)
#define OBS_ONLY(...)

#endif  // TOPOMAP_OBS_ENABLED
