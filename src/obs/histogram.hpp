// obs::Histogram — deterministic log-bucketed (HDR-style) value/latency
// histogram with *fixed* bucket boundaries and exact merge semantics.
//
// Bucket layout: bucket 0 absorbs everything below 1.0 (and NaN); above
// that, each power-of-two octave [2^e, 2^(e+1)) is split into kSubBuckets
// linear sub-buckets, for a relative resolution of 1/kSubBuckets (12.5%
// at the default 8).  The layout is a pure function of the value — no
// data-dependent resizing, no rank estimation state — so two histograms
// of the same multiset of samples are bit-identical no matter the insert
// order, and merge() (per-bucket count addition plus a Distribution
// merge) is exact and order-free.  That is what lets obs::Registry shard
// histograms per thread exactly like counters: the merged snapshot is
// independent of which worker recorded which sample, provided the samples
// themselves are (the repo-wide thread-count-invariance contract).
//
// Quantiles interpolate linearly inside the target bucket and clamp to
// the observed [min, max]; they are deterministic for a given multiset,
// so the daemon's metrics snapshot and bench/svc_load report identical
// quantile semantics by construction.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "support/stats.hpp"

namespace topomap::obs {

class Histogram {
 public:
  /// Linear sub-buckets per power-of-two octave (12.5% resolution).
  static constexpr int kSubBuckets = 8;
  /// Octaves covered before clamping into the top bucket (values to 2^64).
  static constexpr int kOctaves = 64;
  /// Fixed total bucket count: the sub-1.0 bucket plus every sub-bucket.
  static constexpr int kBucketCount = 1 + kOctaves * kSubBuckets;

  /// The bucket a value lands in.  Values below 1.0 (and NaN) go to
  /// bucket 0; values at or above 2^64 clamp into the last bucket.
  static int bucket_index(double v) {
    if (!(v >= 1.0)) return 0;
    int e = 0;
    double scaled = v;
    while (scaled >= 2.0 && e < kOctaves - 1) {
      scaled *= 0.5;  // exact: power-of-two scaling
      ++e;
    }
    if (scaled >= 2.0) return kBucketCount - 1;
    int sub = static_cast<int>((scaled - 1.0) * kSubBuckets);
    sub = std::min(sub, kSubBuckets - 1);
    return 1 + e * kSubBuckets + sub;
  }

  /// Inclusive lower boundary of a bucket (bucket 0 reports 0.0).
  static double bucket_lo(int index) {
    if (index <= 0) return 0.0;
    const int e = (index - 1) / kSubBuckets;
    const int s = (index - 1) % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(s) / kSubBuckets, e);
  }

  /// Exclusive upper boundary of a bucket.
  static double bucket_hi(int index) {
    if (index <= 0) return 1.0;
    const int e = (index - 1) / kSubBuckets;
    const int s = (index - 1) % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(s + 1) / kSubBuckets, e);
  }

  void add(double v) {
    if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
    ++buckets_[static_cast<std::size_t>(bucket_index(v))];
    base_.add(v);
  }

  /// Exact, order-free merge: per-bucket count addition plus the
  /// Distribution merge (integral-valued samples keep sums exact).
  void merge(const Histogram& other) {
    if (other.base_.count == 0) return;
    if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
    for (int i = 0; i < kBucketCount; ++i)
      buckets_[static_cast<std::size_t>(i)] += other.bucket(i);
    base_.merge(other.base_);
  }

  std::uint64_t count() const { return base_.count; }
  double sum() const { return base_.sum; }
  double min_or_zero() const { return base_.min_or_zero(); }
  double max_or_zero() const { return base_.max_or_zero(); }
  double mean() const { return base_.mean(); }

  std::uint64_t bucket(int index) const {
    return buckets_.empty() ? 0
                            : buckets_[static_cast<std::size_t>(index)];
  }

  /// Indices of every non-empty bucket, ascending.
  std::vector<int> nonempty_buckets() const {
    std::vector<int> out;
    for (int i = 0; i < kBucketCount; ++i)
      if (bucket(i) > 0) out.push_back(i);
    return out;
  }

  /// Deterministic quantile estimate: walk to the bucket holding the
  /// 0-based rank floor(q*(count-1)), interpolate linearly by in-bucket
  /// position, clamp to the observed range.  q<=0 is the min, q>=1 the
  /// max, and an empty histogram reports 0.
  double quantile(double q) const {
    if (base_.count == 0) return 0.0;
    if (q <= 0.0) return base_.min_or_zero();
    if (q >= 1.0) return base_.max_or_zero();
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(base_.count - 1));
    std::uint64_t before = 0;
    for (int i = 0; i < kBucketCount; ++i) {
      const std::uint64_t c = bucket(i);
      if (c == 0) continue;
      if (before + c > rank) {
        const double within = (static_cast<double>(rank - before) + 0.5) /
                              static_cast<double>(c);
        const double v =
            bucket_lo(i) + (bucket_hi(i) - bucket_lo(i)) * within;
        return std::clamp(v, base_.min_or_zero(), base_.max_or_zero());
      }
      before += c;
    }
    return base_.max_or_zero();
  }

  friend bool operator==(const Histogram& a, const Histogram& b) {
    if (a.base_.count != b.base_.count || a.base_.sum != b.base_.sum ||
        a.min_or_zero() != b.min_or_zero() ||
        a.max_or_zero() != b.max_or_zero())
      return false;
    for (int i = 0; i < kBucketCount; ++i)
      if (a.bucket(i) != b.bucket(i)) return false;
    return true;
  }

 private:
  /// Lazily sized to kBucketCount on first add, so an unrecorded
  /// Histogram costs three words, not 4 KiB.
  std::vector<std::uint64_t> buckets_;
  Distribution base_;
};

}  // namespace topomap::obs
