// Back-compat alias: the JSON value model moved to support/json.hpp so the
// svc:: protocol layer and the observability artifacts share one
// parser/serializer.  Existing obs::json:: call sites compile unchanged
// through this namespace alias; new code should include support/json.hpp
// directly.
#pragma once

#include "support/json.hpp"

namespace topomap::obs {
namespace json = ::topomap::support::json;
}  // namespace topomap::obs
