#include "obs/registry.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>

namespace topomap::obs {

namespace {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("TOPOMAP_OBS");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}()};

/// Process-local steady epoch, captured on first use.
std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

// Transparent comparator so string_view lookups never allocate on the
// found path.
using CounterMap = std::map<std::string, std::uint64_t, std::less<>>;
using DistMap = std::map<std::string, Distribution, std::less<>>;
using HistMap = std::map<std::string, Histogram, std::less<>>;

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

/// One thread's private slice of the registry.  The owning thread records
/// under mu without contention; snapshots lock the same mutex briefly.
struct Registry::Shard {
  std::mutex mu;
  CounterMap counters;
  DistMap dists;
  HistMap hists;
};

struct Registry::Impl {
  std::mutex mu;  // guards shards list, retired aggregates, and series
  std::vector<Shard*> shards;
  CounterMap retired_counters;
  DistMap retired_dists;
  HistMap retired_hists;
  std::map<std::string, std::vector<double>, std::less<>> series;
};

namespace {

/// Ties a shard to its thread: registered on first record, retired (merged
/// into the registry and freed) when the thread exits — worker pools are
/// resized by set_num_threads(), so shards genuinely come and go.
struct ShardHandle {
  Registry::Shard* shard = nullptr;
  ~ShardHandle();
};

thread_local ShardHandle t_shard;

}  // namespace

Registry& Registry::instance() {
  static Registry* r = new Registry();  // leaked: outlives thread dtors
  return *r;
}

Registry::Impl* Registry::impl() {
  static Impl* i = new Impl();
  return i;
}

Registry::Shard& Registry::local_shard() {
  if (t_shard.shard == nullptr) {
    auto* shard = new Shard();
    {
      std::lock_guard<std::mutex> lock(impl()->mu);
      impl()->shards.push_back(shard);
    }
    t_shard.shard = shard;
  }
  return *t_shard.shard;
}

void Registry::retire_shard(Shard* shard) {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (const auto& [name, v] : shard->counters)
      im->retired_counters[name] += v;
    for (const auto& [name, d] : shard->dists) im->retired_dists[name].merge(d);
    for (const auto& [name, h] : shard->hists) im->retired_hists[name].merge(h);
  }
  std::erase(im->shards, shard);
  delete shard;
}

namespace {
ShardHandle::~ShardHandle() {
  if (shard != nullptr) Registry::instance().retire_shard(shard);
}
}  // namespace

void Registry::add(std::string_view name, std::uint64_t delta) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.counters.find(name);
  if (it != s.counters.end())
    it->second += delta;
  else
    s.counters.emplace(std::string(name), delta);
}

void Registry::record(std::string_view name, double value) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.dists.find(name);
  if (it != s.dists.end())
    it->second.add(value);
  else
    s.dists.emplace(std::string(name), Distribution{}).first->second.add(value);
}

void Registry::observe(std::string_view name, double value) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.hists.find(name);
  if (it != s.hists.end())
    it->second.add(value);
  else
    s.hists.emplace(std::string(name), Histogram{}).first->second.add(value);
}

void Registry::append_series(std::string_view name, double value) {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  const auto it = im->series.find(name);
  if (it != im->series.end())
    it->second.push_back(value);
  else
    im->series.emplace(std::string(name), std::vector<double>{value});
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  Impl* im = const_cast<Registry*>(this)->impl();
  std::lock_guard<std::mutex> lock(im->mu);
  std::map<std::string, std::uint64_t> out(im->retired_counters.begin(),
                                           im->retired_counters.end());
  for (Shard* shard : im->shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (const auto& [name, v] : shard->counters) out[name] += v;
  }
  return out;
}

std::map<std::string, Distribution> Registry::distributions() const {
  Impl* im = const_cast<Registry*>(this)->impl();
  std::lock_guard<std::mutex> lock(im->mu);
  std::map<std::string, Distribution> out(im->retired_dists.begin(),
                                          im->retired_dists.end());
  for (Shard* shard : im->shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (const auto& [name, d] : shard->dists) out[name].merge(d);
  }
  return out;
}

std::map<std::string, Histogram> Registry::histograms() const {
  Impl* im = const_cast<Registry*>(this)->impl();
  std::lock_guard<std::mutex> lock(im->mu);
  std::map<std::string, Histogram> out(im->retired_hists.begin(),
                                       im->retired_hists.end());
  for (Shard* shard : im->shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (const auto& [name, h] : shard->hists) out[name].merge(h);
  }
  return out;
}

std::map<std::string, std::vector<double>> Registry::series() const {
  Impl* im = const_cast<Registry*>(this)->impl();
  std::lock_guard<std::mutex> lock(im->mu);
  return {im->series.begin(), im->series.end()};
}

std::uint64_t Registry::counter(std::string_view name) const {
  const auto all = counters();
  const auto it = all.find(std::string(name));
  return it == all.end() ? 0 : it->second;
}

void Registry::reset() {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  im->retired_counters.clear();
  im->retired_dists.clear();
  im->retired_hists.clear();
  im->series.clear();
  for (Shard* shard : im->shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->counters.clear();
    shard->dists.clear();
    shard->hists.clear();
  }
}

}  // namespace topomap::obs
