// obs::Report — the machine-readable perf artifact every tool emits.
//
// One Report bundles, under a stable schema:
//   * meta          — free-form run metadata (workload, machine, strategy,
//                     seed, thread count, ...), string → string
//   * counters      — name → integer, from obs::Registry
//   * distributions — name → {count,sum,min,max,mean}, from obs::Registry
//   * histograms    — name → {count,sum,min,max,mean,p50,p90,p99,
//                     buckets:[[lo,hi,count],...]} log-bucketed latency/
//                     value histograms (obs/histogram.hpp), non-empty
//                     buckets only, from obs::Registry
//   * series        — name → [numbers], ordered trajectories (e.g. TopoLB's
//                     per-iteration hop-bytes), from the Registry plus any
//                     add_series() calls
//   * spans         — name → duration rollup in microseconds, from
//                     obs::Tracer
//   * tables        — named row-oriented result tables (bench sweeps):
//                     {"columns": [...], "rows": [[...], ...]}
//
// The JSON layout is versioned ("schema": "topomap.obs.report",
// "schema_version": 1); consumers (tools/obs_diff, scripts/check_trace.py,
// external dashboards) key on those two fields and must tolerate unknown
// sections within a version.  Bump kSchemaVersion only for breaking layout
// changes.
//
// Typical producer flow (topomap_cli --stats, bench/common.hpp):
//
//   obs::Report report;
//   report.set_meta("workload", "stencil3d");
//   ... run ...
//   report.capture();            // snapshot Registry + Tracer rollup
//   report.write_file(path);
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "support/stats.hpp"

namespace topomap::obs {

/// The one JSON rendering of a Histogram, shared by obs::Report and the
/// svc metrics snapshot: summary fields plus the non-empty buckets as
/// [lo, hi, count] triples (boundaries are deterministic by construction).
json::Value histogram_to_json(const Histogram& h);

class Report {
 public:
  static constexpr const char* kSchemaName = "topomap.obs.report";
  static constexpr int kSchemaVersion = 1;

  /// Attach one run-metadata entry (last write per key wins).
  void set_meta(const std::string& key, const std::string& value);

  /// Attach an ordered numeric series under `name` (overwrites a captured
  /// series of the same name).
  void add_series(const std::string& name, std::vector<double> values);

  /// Attach a row-oriented table (cells may mix strings and numbers).
  /// Every row must have columns.size() entries (REQUIREd at to_json()
  /// time).
  void add_table(const std::string& name, std::vector<std::string> columns,
                 std::vector<std::vector<json::Value>> rows);

  /// Snapshot the process-wide Registry (counters, distributions, series)
  /// and Tracer (span rollups) into this report.  Explicit series added via
  /// add_series() shadow captured ones of the same name.
  void capture();

  /// Serialize to the schema-versioned JSON document.
  json::Value to_json() const;

  /// Pretty-printed JSON + trailing newline.
  void write(std::ostream& os) const;
  void write_file(const std::string& path) const;

 private:
  struct Table {
    std::vector<std::string> columns;
    std::vector<std::vector<json::Value>> rows;
  };

  std::map<std::string, std::string> meta_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Distribution> distributions_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::vector<double>> series_;
  std::map<std::string, Distribution> spans_;
  std::map<std::string, Table> tables_;
};

}  // namespace topomap::obs
