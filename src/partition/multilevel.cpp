#include "partition/multilevel.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "support/error.hpp"

namespace topomap::part {

namespace {

using graph::Edge;
using graph::TaskGraph;
using graph::UndirectedEdge;

/// Balancing weights: vertex weights, or all-ones when the graph carries no
/// compute load (balance on counts instead of dividing by zero).
std::vector<double> balance_weights(const TaskGraph& g) {
  std::vector<double> w(static_cast<std::size_t>(g.num_vertices()));
  if (g.total_vertex_weight() <= 0.0) {
    std::fill(w.begin(), w.end(), 1.0);
  } else {
    for (int v = 0; v < g.num_vertices(); ++v)
      w[static_cast<std::size_t>(v)] = g.vertex_weight(v);
  }
  return w;
}

double cut_of(const TaskGraph& g, const std::vector<int>& side) {
  double cut = 0.0;
  for (const UndirectedEdge& e : g.edges())
    if (side[static_cast<std::size_t>(e.a)] !=
        side[static_cast<std::size_t>(e.b)])
      cut += e.bytes;
  return cut;
}

}  // namespace

// ---------------------------------------------------------------------------
// Coarsening: heavy-edge matching (public — shared with core::HierTopoLB).
// ---------------------------------------------------------------------------

bool coarsen_once(const TaskGraph& g, double weight_cap, Rng& rng,
                  CoarseLevel* out) {
  const int n = g.num_vertices();
  std::vector<int> match(static_cast<std::size_t>(n), -1);
  const std::vector<int> order = rng.permutation(n);
  int coarse_count = 0;
  for (int v : order) {
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    int best = -1;
    double best_bytes = -1.0;
    for (const Edge& e : g.edges_of(v)) {
      if (match[static_cast<std::size_t>(e.neighbor)] != -1) continue;
      if (g.vertex_weight(v) + g.vertex_weight(e.neighbor) > weight_cap)
        continue;
      if (e.bytes > best_bytes) {
        best_bytes = e.bytes;
        best = e.neighbor;
      }
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // matched with itself
    }
  }

  std::vector<int> fine_to_coarse(static_cast<std::size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    if (fine_to_coarse[static_cast<std::size_t>(v)] != -1) continue;
    const int partner = match[static_cast<std::size_t>(v)];
    fine_to_coarse[static_cast<std::size_t>(v)] = coarse_count;
    fine_to_coarse[static_cast<std::size_t>(partner)] = coarse_count;
    ++coarse_count;
  }
  if (coarse_count > static_cast<int>(0.95 * n)) return false;

  TaskGraph::Builder b("coarse");
  b.add_vertices(coarse_count, 0.0);
  std::vector<double> cw(static_cast<std::size_t>(coarse_count), 0.0);
  for (int v = 0; v < n; ++v)
    cw[static_cast<std::size_t>(fine_to_coarse[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  for (int c = 0; c < coarse_count; ++c)
    b.set_vertex_weight(c, cw[static_cast<std::size_t>(c)]);
  for (const UndirectedEdge& e : g.edges()) {
    const int ca = fine_to_coarse[static_cast<std::size_t>(e.a)];
    const int cb = fine_to_coarse[static_cast<std::size_t>(e.b)];
    if (ca != cb) b.add_edge(ca, cb, e.bytes);
  }
  out->coarse = std::move(b).build();
  out->fine_to_coarse = std::move(fine_to_coarse);
  return true;
}

namespace {

// ---------------------------------------------------------------------------
// FM-style bisection refinement with rollback.
// ---------------------------------------------------------------------------

struct FmContext {
  const TaskGraph& g;
  const std::vector<double>& w;
  double max_side[2];  // allowed weight per side
};

/// One FM pass.  Returns true if the cut strictly improved.
bool fm_pass(const FmContext& ctx, std::vector<int>& side) {
  const int n = ctx.g.num_vertices();
  std::vector<double> gain(static_cast<std::size_t>(n), 0.0);
  double side_weight[2] = {0.0, 0.0};
  for (int v = 0; v < n; ++v)
    side_weight[side[static_cast<std::size_t>(v)]] +=
        ctx.w[static_cast<std::size_t>(v)];
  for (int v = 0; v < n; ++v)
    for (const Edge& e : ctx.g.edges_of(v))
      gain[static_cast<std::size_t>(v)] +=
          (side[static_cast<std::size_t>(e.neighbor)] !=
           side[static_cast<std::size_t>(v)])
              ? e.bytes
              : -e.bytes;

  std::vector<char> locked(static_cast<std::size_t>(n), 0);
  std::vector<int> moved;
  moved.reserve(static_cast<std::size_t>(n));
  double cum = 0.0, best_cum = 0.0;
  int best_prefix = 0;

  for (int step = 0; step < n; ++step) {
    int best = -1;
    double best_gain = -std::numeric_limits<double>::infinity();
    for (int v = 0; v < n; ++v) {
      if (locked[static_cast<std::size_t>(v)]) continue;
      const int to = 1 - side[static_cast<std::size_t>(v)];
      if (side_weight[to] + ctx.w[static_cast<std::size_t>(v)] >
          ctx.max_side[to])
        continue;  // would overload the receiving side
      if (gain[static_cast<std::size_t>(v)] > best_gain) {
        best_gain = gain[static_cast<std::size_t>(v)];
        best = v;
      }
    }
    if (best < 0) break;

    const int from = side[static_cast<std::size_t>(best)];
    side[static_cast<std::size_t>(best)] = 1 - from;
    side_weight[from] -= ctx.w[static_cast<std::size_t>(best)];
    side_weight[1 - from] += ctx.w[static_cast<std::size_t>(best)];
    locked[static_cast<std::size_t>(best)] = 1;
    moved.push_back(best);
    cum += best_gain;
    for (const Edge& e : ctx.g.edges_of(best)) {
      if (locked[static_cast<std::size_t>(e.neighbor)]) continue;
      // `best` switched sides: edges to its old side become cut (gain up
      // by 2*bytes for those neighbours), edges to the new side uncut.
      const int nb_side = side[static_cast<std::size_t>(e.neighbor)];
      gain[static_cast<std::size_t>(e.neighbor)] +=
          (nb_side == from) ? 2.0 * e.bytes : -2.0 * e.bytes;
    }
    if (cum > best_cum + 1e-12) {
      best_cum = cum;
      best_prefix = static_cast<int>(moved.size());
    }
    // Hill-climbing: keep moving past zero-gain plateaus; rollback handles
    // the rest.
  }

  // Roll back the moves after the best prefix.
  for (int i = static_cast<int>(moved.size()) - 1; i >= best_prefix; --i) {
    const int v = moved[static_cast<std::size_t>(i)];
    side[static_cast<std::size_t>(v)] = 1 - side[static_cast<std::size_t>(v)];
  }
  return best_cum > 1e-12;
}

void fm_refine(const TaskGraph& g, const std::vector<double>& w,
               std::vector<int>& side, double target_left, double eps,
               int passes) {
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  FmContext ctx{g, w,
                {target_left * total * (1.0 + eps),
                 (1.0 - target_left) * total * (1.0 + eps)}};
  for (int pass = 0; pass < passes; ++pass)
    if (!fm_pass(ctx, side)) break;
}

// ---------------------------------------------------------------------------
// Initial bisection by greedy graph growing.
// ---------------------------------------------------------------------------

std::vector<int> grow_bisection(const TaskGraph& g,
                                const std::vector<double>& w,
                                double target_left, double eps, int trials,
                                int fm_passes, Rng& rng) {
  const int n = g.num_vertices();
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  const double target_weight = target_left * total;

  std::vector<int> best_side;
  double best_cut = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < std::max(1, trials); ++trial) {
    std::vector<int> side(static_cast<std::size_t>(n), 1);
    // conn[v]: bytes from v into the growing region minus bytes outward.
    std::vector<double> conn(static_cast<std::size_t>(n), 0.0);
    double grown = 0.0;
    int seed = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    while (grown < target_weight) {
      // Prefer frontier vertices (positive connectivity); fall back to the
      // seed / any remaining vertex for disconnected graphs.
      int pick = -1;
      double best_conn = -std::numeric_limits<double>::infinity();
      for (int v = 0; v < n; ++v) {
        if (side[static_cast<std::size_t>(v)] == 0) continue;
        if (conn[static_cast<std::size_t>(v)] > best_conn) {
          best_conn = conn[static_cast<std::size_t>(v)];
          pick = v;
        }
      }
      if (pick < 0) break;  // everything absorbed
      if (grown == 0.0) pick = seed;
      // Overshoot control: stop before adding if that lands closer to the
      // target than adding would.
      const double wv = w[static_cast<std::size_t>(pick)];
      if (grown > 0.0 && grown + wv - target_weight > target_weight - grown)
        break;
      side[static_cast<std::size_t>(pick)] = 0;
      grown += wv;
      for (const Edge& e : g.edges_of(pick))
        conn[static_cast<std::size_t>(e.neighbor)] += 2.0 * e.bytes;
    }
    fm_refine(g, w, side, target_left, eps, fm_passes);
    const double cut = cut_of(g, side);
    if (cut < best_cut) {
      best_cut = cut;
      best_side = std::move(side);
    }
  }
  return best_side;
}

// ---------------------------------------------------------------------------
// Induced subgraph extraction (keeps a local -> parent vertex map).
// ---------------------------------------------------------------------------

struct Subgraph {
  TaskGraph graph;
  std::vector<int> local_to_parent;
};

Subgraph extract_side(const TaskGraph& g, const std::vector<int>& side,
                      int which) {
  Subgraph out;
  std::vector<int> parent_to_local(static_cast<std::size_t>(g.num_vertices()),
                                   -1);
  TaskGraph::Builder b("sub");
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (side[static_cast<std::size_t>(v)] != which) continue;
    parent_to_local[static_cast<std::size_t>(v)] =
        b.add_vertex(g.vertex_weight(v));
    out.local_to_parent.push_back(v);
  }
  for (const UndirectedEdge& e : g.edges()) {
    const int la = parent_to_local[static_cast<std::size_t>(e.a)];
    const int lb = parent_to_local[static_cast<std::size_t>(e.b)];
    if (la >= 0 && lb >= 0) b.add_edge(la, lb, e.bytes);
  }
  out.graph = std::move(b).build();
  return out;
}

}  // namespace

MultilevelPartitioner::MultilevelPartitioner(MultilevelOptions options)
    : options_(options) {
  TOPOMAP_REQUIRE(options_.coarsen_target >= 8, "coarsen_target too small");
  TOPOMAP_REQUIRE(options_.epsilon >= 0.0, "epsilon must be non-negative");
  TOPOMAP_REQUIRE(options_.fm_passes >= 1, "need at least one FM pass");
  TOPOMAP_REQUIRE(options_.initial_trials >= 1, "need at least one trial");
}

std::vector<int> MultilevelPartitioner::bisect(const graph::TaskGraph& g,
                                               double left_fraction,
                                               Rng& rng) const {
  TOPOMAP_REQUIRE(left_fraction > 0.0 && left_fraction < 1.0,
                  "left_fraction must be in (0,1)");
  const int n = g.num_vertices();
  if (n == 0) return {};

  // Build the coarsening hierarchy.
  std::vector<CoarseLevel> levels;
  const TaskGraph* cur = &g;
  const double side_fraction = std::min(left_fraction, 1.0 - left_fraction);
  while (cur->num_vertices() > options_.coarsen_target) {
    const std::vector<double> cur_w = balance_weights(*cur);
    const double total = std::accumulate(cur_w.begin(), cur_w.end(), 0.0);
    CoarseLevel level;
    // No coarse vertex may exceed ~half of the smaller side's target, so
    // balance stays achievable after contraction.
    if (!coarsen_once(*cur, 0.5 * side_fraction * total, rng, &level)) break;
    levels.push_back(std::move(level));
    cur = &levels.back().coarse;
  }

  // Initial bisection on the coarsest graph.
  std::vector<double> w = balance_weights(*cur);
  std::vector<int> side =
      grow_bisection(*cur, w, left_fraction, options_.epsilon,
                     options_.initial_trials, options_.fm_passes, rng);

  // Uncoarsen with refinement at every level.
  for (int li = static_cast<int>(levels.size()) - 1; li >= 0; --li) {
    const TaskGraph& finer = (li == 0) ? g : levels[static_cast<std::size_t>(li - 1)].coarse;
    std::vector<int> fine_side(static_cast<std::size_t>(finer.num_vertices()));
    const auto& map = levels[static_cast<std::size_t>(li)].fine_to_coarse;
    for (int v = 0; v < finer.num_vertices(); ++v)
      fine_side[static_cast<std::size_t>(v)] =
          side[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])];
    side = std::move(fine_side);
    const std::vector<double> fw = balance_weights(finer);
    fm_refine(finer, fw, side, left_fraction, options_.epsilon,
              options_.fm_passes);
  }
  return side;
}

namespace {

void recurse(const MultilevelPartitioner& partitioner, const TaskGraph& g,
             const std::vector<int>& to_original, int k, int part_offset,
             Rng& rng, std::vector<int>& out) {
  const int n = g.num_vertices();
  if (k <= 1) {
    for (int v = 0; v < n; ++v)
      out[static_cast<std::size_t>(to_original[static_cast<std::size_t>(v)])] =
          part_offset;
    return;
  }
  if (n <= k) {
    // Degenerate: at most one vertex per part.
    for (int v = 0; v < n; ++v)
      out[static_cast<std::size_t>(to_original[static_cast<std::size_t>(v)])] =
          part_offset + v;
    return;
  }
  const int k_left = k / 2;
  const double left_fraction =
      static_cast<double>(k_left) / static_cast<double>(k);
  const std::vector<int> side = partitioner.bisect(g, left_fraction, rng);

  for (int which : {0, 1}) {
    Subgraph sub = extract_side(g, side, which);
    std::vector<int> sub_to_original(sub.local_to_parent.size());
    for (std::size_t i = 0; i < sub.local_to_parent.size(); ++i)
      sub_to_original[i] = to_original[static_cast<std::size_t>(
          sub.local_to_parent[i])];
    recurse(partitioner, sub.graph, sub_to_original,
            which == 0 ? k_left : k - k_left,
            which == 0 ? part_offset : part_offset + k_left, rng, out);
  }
}

}  // namespace

PartitionResult MultilevelPartitioner::partition(const graph::TaskGraph& g,
                                                 int k, Rng& rng) const {
  TOPOMAP_REQUIRE(k >= 1, "need at least one part");
  PartitionResult result;
  result.num_parts = k;
  result.assignment.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<int> identity(static_cast<std::size_t>(g.num_vertices()));
  std::iota(identity.begin(), identity.end(), 0);
  recurse(*this, g, identity, k, 0, rng, result.assignment);
  return result;
}

}  // namespace topomap::part
