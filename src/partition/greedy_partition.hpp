// Topology- and communication-oblivious partitioners.
//
// GreedyPartitioner is the Charm++ GreedyLB analogue the paper mentions as
// an alternative to METIS for phase 1: longest-processing-time-first load
// balancing, which bounds imbalance but ignores communication entirely.
// RandomPartitioner deals vertices round-robin after a shuffle; it is the
// worst-reasonable baseline for tests and ablations.
#pragma once

#include "partition/partition.hpp"

namespace topomap::part {

class GreedyPartitioner final : public Partitioner {
 public:
  PartitionResult partition(const graph::TaskGraph& g, int k,
                            Rng& rng) const override;
  std::string name() const override { return "GreedyPartition"; }
};

class RandomPartitioner final : public Partitioner {
 public:
  PartitionResult partition(const graph::TaskGraph& g, int k,
                            Rng& rng) const override;
  std::string name() const override { return "RandomPartition"; }
};

}  // namespace topomap::part
