#include "partition/partition.hpp"

#include <algorithm>

#include "partition/greedy_partition.hpp"
#include "partition/multilevel.hpp"
#include "support/error.hpp"

namespace topomap::part {

double edge_cut(const graph::TaskGraph& g,
                const std::vector<int>& assignment) {
  TOPOMAP_REQUIRE(static_cast<int>(assignment.size()) == g.num_vertices(),
                  "assignment size mismatch");
  double cut = 0.0;
  for (const graph::UndirectedEdge& e : g.edges())
    if (assignment[static_cast<std::size_t>(e.a)] !=
        assignment[static_cast<std::size_t>(e.b)])
      cut += e.bytes;
  return cut;
}

std::vector<double> part_weights(const graph::TaskGraph& g,
                                 const std::vector<int>& assignment, int k) {
  TOPOMAP_REQUIRE(static_cast<int>(assignment.size()) == g.num_vertices(),
                  "assignment size mismatch");
  TOPOMAP_REQUIRE(k >= 1, "need at least one part");
  std::vector<double> weights(static_cast<std::size_t>(k), 0.0);
  for (int v = 0; v < g.num_vertices(); ++v) {
    const int part = assignment[static_cast<std::size_t>(v)];
    TOPOMAP_REQUIRE(part >= 0 && part < k, "part id out of range");
    weights[static_cast<std::size_t>(part)] += g.vertex_weight(v);
  }
  return weights;
}

double load_imbalance(const graph::TaskGraph& g,
                      const std::vector<int>& assignment, int k) {
  const auto weights = part_weights(g, assignment, k);
  const double total = g.total_vertex_weight();
  if (total <= 0.0) return 1.0;
  const double ideal = total / static_cast<double>(k);
  const double max_w = *std::max_element(weights.begin(), weights.end());
  return max_w / ideal;
}

PartitionerPtr make_partitioner(const std::string& spec) {
  if (spec == "multilevel") return std::make_shared<MultilevelPartitioner>();
  if (spec == "greedy") return std::make_shared<GreedyPartitioner>();
  if (spec == "random") return std::make_shared<RandomPartitioner>();
  throw precondition_error("unknown partitioner spec: " + spec);
}

}  // namespace topomap::part
