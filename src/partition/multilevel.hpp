// Multilevel graph partitioner — the METIS substitute (DESIGN.md S3).
//
// k-way partitioning by recursive bisection.  Each bisection is multilevel:
//
//   1. COARSEN   — heavy-edge matching: visit vertices in random order and
//                  match each with the unmatched neighbour sharing the
//                  heaviest edge (subject to a weight cap that keeps
//                  balance achievable); contract matched pairs.  Repeat
//                  until the graph is small or stops shrinking.
//   2. INITIAL   — greedy graph growing on the coarsest graph: grow a
//                  region from a random seed, always absorbing the frontier
//                  vertex with the best cut gain, until the target side
//                  weight is reached.  Several trials, best cut wins.
//   3. UNCOARSEN — project the bisection one level up and improve it with
//                  Fiduccia–Mattheyses-style passes: move boundary vertices
//                  by best gain under the balance constraint, with
//                  hill-climbing and rollback to the best seen prefix.
//
// The same family of techniques as METIS (Karypis & Kumar), which is what
// the paper uses for phase 1.
#pragma once

#include "partition/partition.hpp"

namespace topomap::part {

/// One level of a coarsening hierarchy: the contracted graph plus the
/// fine-vertex -> coarse-vertex map that produced it.
struct CoarseLevel {
  graph::TaskGraph coarse;
  std::vector<int> fine_to_coarse;
};

/// One round of heavy-edge-matching contraction (the partitioner's COARSEN
/// step, also the task-side coarsener of core::HierTopoLB).  Vertices are
/// visited in rng-permutation order and matched with the unmatched
/// neighbour sharing the heaviest edge, subject to `weight_cap` on the
/// combined vertex weight.  Returns false (and leaves `out` untouched)
/// when matching stalls (< 5% shrinkage).  Fully sequential and therefore
/// byte-identical for any TOPOMAP_THREADS given a fixed rng state.
bool coarsen_once(const graph::TaskGraph& g, double weight_cap, Rng& rng,
                  CoarseLevel* out);

struct MultilevelOptions {
  /// Stop coarsening once a bisection's working graph has at most this
  /// many vertices.
  int coarsen_target = 64;
  /// Independent greedy-growing trials for the initial bisection.
  int initial_trials = 6;
  /// Maximum FM passes per uncoarsening level.
  int fm_passes = 4;
  /// Per-side balance tolerance: a side may exceed its target weight by
  /// this fraction.
  double epsilon = 0.08;
};

class MultilevelPartitioner final : public Partitioner {
 public:
  explicit MultilevelPartitioner(MultilevelOptions options = {});

  PartitionResult partition(const graph::TaskGraph& g, int k,
                            Rng& rng) const override;
  std::string name() const override { return "MultilevelPartition"; }

  /// One balanced 2-way split: returns 0/1 sides with side 0 targeting
  /// `left_fraction` of the total vertex weight.  Exposed for tests.
  std::vector<int> bisect(const graph::TaskGraph& g, double left_fraction,
                          Rng& rng) const;

 private:
  MultilevelOptions options_;
};

}  // namespace topomap::part
