// Partitioning interfaces and quality metrics (phase 1 of the paper's
// two-phase approach): split the object graph into p balanced groups with
// low inter-group communication, before the mapping phase places groups on
// processors.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "support/rng.hpp"

namespace topomap::part {

/// assignment[v] = part id in [0, num_parts).
struct PartitionResult {
  std::vector<int> assignment;
  int num_parts = 0;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Partition g into k groups.  Every part id in [0, k) is used when
  /// k <= |V_t| (empty parts only if k > |V_t|).
  virtual PartitionResult partition(const graph::TaskGraph& g, int k,
                                    Rng& rng) const = 0;

  virtual std::string name() const = 0;
};

using PartitionerPtr = std::shared_ptr<const Partitioner>;

/// Total bytes on edges whose endpoints lie in different parts.
double edge_cut(const graph::TaskGraph& g, const std::vector<int>& assignment);

/// max part weight / (total weight / k): 1.0 is perfect balance.
double load_imbalance(const graph::TaskGraph& g,
                      const std::vector<int>& assignment, int k);

/// Per-part total vertex weights.
std::vector<double> part_weights(const graph::TaskGraph& g,
                                 const std::vector<int>& assignment, int k);

/// Construct by name: "multilevel" (METIS substitute, default),
/// "greedy" (load-only, Charm++ GreedyLB analogue), "random".
PartitionerPtr make_partitioner(const std::string& spec);

}  // namespace topomap::part
