#include "partition/greedy_partition.hpp"

#include <algorithm>
#include <queue>

#include "support/error.hpp"

namespace topomap::part {

PartitionResult GreedyPartitioner::partition(const graph::TaskGraph& g, int k,
                                             Rng& rng) const {
  TOPOMAP_REQUIRE(k >= 1, "need at least one part");
  const int n = g.num_vertices();
  PartitionResult result;
  result.num_parts = k;
  result.assignment.assign(static_cast<std::size_t>(n), 0);

  // Longest-processing-time-first: heaviest vertex to the lightest part.
  std::vector<int> order = rng.permutation(n);
  std::stable_sort(order.begin(), order.end(), [&g](int a, int b) {
    return g.vertex_weight(a) > g.vertex_weight(b);
  });

  using Entry = std::pair<double, int>;  // (part weight, part id)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int part = 0; part < k; ++part) heap.emplace(0.0, part);
  for (int v : order) {
    auto [weight, part] = heap.top();
    heap.pop();
    result.assignment[static_cast<std::size_t>(v)] = part;
    heap.emplace(weight + g.vertex_weight(v), part);
  }
  return result;
}

PartitionResult RandomPartitioner::partition(const graph::TaskGraph& g, int k,
                                             Rng& rng) const {
  TOPOMAP_REQUIRE(k >= 1, "need at least one part");
  const int n = g.num_vertices();
  PartitionResult result;
  result.num_parts = k;
  result.assignment.assign(static_cast<std::size_t>(n), 0);
  const std::vector<int> order = rng.permutation(n);
  for (int i = 0; i < n; ++i)
    result.assignment[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
        i % k;
  return result;
}

}  // namespace topomap::part
