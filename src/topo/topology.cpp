#include "topo/topology.hpp"

#include <algorithm>
#include <deque>

#include "support/error.hpp"

namespace topomap::topo {

void Topology::check_node(int p) const {
  TOPOMAP_REQUIRE(p >= 0 && p < size(), "processor index out of range");
}

double Topology::mean_distance_from(int p) const {
  check_node(p);
  const int n = size();
  long long total = 0;
  for (int q = 0; q < n; ++q) total += distance(p, q);
  return static_cast<double>(total) / static_cast<double>(n);
}

double Topology::mean_pairwise_distance() const {
  const int n = size();
  double total = 0.0;
  for (int p = 0; p < n; ++p) total += mean_distance_from(p);
  return total / static_cast<double>(n);
}

int Topology::diameter() const {
  const int n = size();
  int best = 0;
  for (int p = 0; p < n; ++p)
    for (int q = p + 1; q < n; ++q) best = std::max(best, distance(p, q));
  return best;
}

std::vector<int> Topology::route(int a, int b) const { return bfs_route(a, b); }

std::vector<int> Topology::bfs_route(int a, int b) const {
  check_node(a);
  check_node(b);
  if (a == b) return {a};
  std::vector<int> parent(static_cast<std::size_t>(size()), -1);
  std::deque<int> frontier{a};
  parent[static_cast<std::size_t>(a)] = a;
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop_front();
    for (int v : neighbors(u)) {
      if (parent[static_cast<std::size_t>(v)] != -1) continue;
      parent[static_cast<std::size_t>(v)] = u;
      if (v == b) {
        std::vector<int> path{b};
        for (int cur = b; cur != a;) {
          cur = parent[static_cast<std::size_t>(cur)];
          path.push_back(cur);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(v);
    }
  }
  TOPOMAP_UNREACHABLE("topology graph is disconnected");
}

void Topology::write_distance_row(int p, std::uint16_t* out) const {
  check_node(p);
  const int n = size();
  for (int q = 0; q < n; ++q)
    out[q] = static_cast<std::uint16_t>(distance(p, q));
}

int Topology::directed_link_count() const {
  int count = 0;
  for (int p = 0; p < size(); ++p)
    count += static_cast<int>(neighbors(p).size());
  return count;
}

}  // namespace topomap::topo
