// k-ary fat-tree distance model.
//
// Processors are the k^L leaves of a complete k-ary switch tree; the
// distance between two leaves is 2*(L - lcp) where lcp is the length of the
// common prefix of their base-k addresses (hops up to the lowest common
// switch and back down).  This is a *distance model*: intermediate switches
// are not processors, so route() and neighbors() — which speak in processor
// sequences / processor adjacency — are unsupported and throw.
// Mapping strategies only require distance(), which is the
// point the paper makes: on fat-trees wiring grows as p log p and mapping
// matters far less, which our benches can quantify.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace topomap::topo {

class FatTree final : public Topology {
 public:
  /// @param arity   k, children per switch (>= 2)
  /// @param levels  L, tree depth (>= 1); size() = k^L
  FatTree(int arity, int levels);

  int size() const override { return size_; }
  int distance(int a, int b) const override;

  /// Unsupported — every fat-tree link attaches a leaf to a *switch*, so no
  /// processor-level adjacency is consistent with distance() (the closest
  /// leaves are already 2 switch-hops apart).  An earlier version returned
  /// the same-edge-switch leaves, which left the adjacency graph
  /// disconnected while distance() reported finite cross-subtree values —
  /// GraphTopology::from_topology then failed with a misleading
  /// "disconnected" error and directed_link_count() undercounted.  Like
  /// route(), this now throws precondition_error up front.
  std::vector<int> neighbors(int p) const override;

  std::string name() const override;

  /// Distance model only: no processor-level adjacency exists (see
  /// neighbors()), so link-level consumers must check this before routing.
  bool has_adjacency() const override { return false; }

  double mean_distance_from(int p) const override;
  double mean_pairwise_distance() const override;
  int diameter() const override { return 2 * levels_; }

  /// Unsupported — fat-tree routes traverse switches, not processors.
  /// Throws precondition_error.
  std::vector<int> route(int a, int b) const override;

  int arity() const { return arity_; }
  int levels() const { return levels_; }

 private:
  int arity_;
  int levels_;
  int size_;
};

}  // namespace topomap::topo
