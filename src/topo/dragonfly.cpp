#include "topo/dragonfly.hpp"

#include <sstream>

#include "support/error.hpp"

namespace topomap::topo {

GraphTopology make_dragonfly(int routers_per_group) {
  const int a = routers_per_group;
  TOPOMAP_REQUIRE(a >= 2, "dragonfly needs at least two routers per group");
  const int groups = a + 1;
  const int n = a * groups;
  TOPOMAP_REQUIRE(n <= 20000, "dragonfly too large");

  auto node = [a](int group, int router) { return group * a + router; };
  std::vector<std::pair<int, int>> links;
  // Intra-group all-to-all.
  for (int grp = 0; grp < groups; ++grp)
    for (int i = 0; i < a; ++i)
      for (int j = i + 1; j < a; ++j)
        links.emplace_back(node(grp, i), node(grp, j));
  // One global link per group pair; router slot chosen so every router
  // terminates exactly one global link: group i reaches group k (k != i)
  // through its local router (k - i - 1) mod groups, which ranges over
  // exactly {0, ..., a-1} as k runs over the other a groups.
  for (int i = 0; i < groups; ++i) {
    for (int k = i + 1; k < groups; ++k) {
      const int ri = ((k - i - 1) % groups + groups) % groups;
      const int rk = ((i - k - 1) % groups + groups) % groups;
      links.emplace_back(node(i, ri), node(k, rk));
    }
  }
  std::ostringstream label;
  label << "dragonfly(a=" << a << ",g=" << groups << ')';
  return GraphTopology(n, links, label.str());
}

}  // namespace topomap::topo
