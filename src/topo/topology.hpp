// Abstract network-topology interface.
//
// A topology is the undirected "topology graph" G_p = (V_p, E_p) of the
// paper: vertices are processors 0..size()-1, edges are physical links.
// Mapping strategies only need shortest-path hop distances; the network
// simulator and link-load metrics additionally need concrete routes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace topomap::topo {

class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of processors p = |V_p|.
  virtual int size() const = 0;

  /// Shortest-path distance in hops between processors a and b.
  /// distance(a, a) == 0 for all a.
  virtual int distance(int a, int b) const = 0;

  /// Directly linked processors of p (the adjacency of G_p).
  virtual std::vector<int> neighbors(int p) const = 0;

  /// Human-readable shape, e.g. "torus(8,8,8)".
  virtual std::string name() const = 0;

  /// True when neighbors()/route() describe a real processor-level link
  /// graph consistent with distance().  Distance-model topologies (FatTree,
  /// whose links attach leaves to switches) return false: their neighbors()
  /// and route() throw, and link-level operations — link loads, the network
  /// simulator, FaultOverlay link failures — are unsupported on them.
  virtual bool has_adjacency() const { return true; }

  /// Units of distance(): 1 when distances are plain hop counts (every
  /// topology here except a soft-faulted FaultOverlay).  A topology whose
  /// links carry non-uniform costs reports its fixed-point denominator —
  /// one healthy hop then costs distance_scale() units — so consumers can
  /// convert back to hop-equivalents.  The value changes only when the
  /// underlying link-cost set changes (see FaultOverlay::distance_scale),
  /// which topo::DistanceCache uses to detect that a whole plane must be
  /// re-expressed rather than incrementally repaired.
  virtual int distance_scale() const { return 1; }

  /// Cost of traversing the base link a-b, in distance_scale() units.  Only
  /// meaningful for pairs joined by a physical link; the default — uniform
  /// cost, one hop — is distance_scale().  FaultOverlay overrides this with
  /// per-link health-derived costs.
  virtual int link_cost(int, int) const { return distance_scale(); }

  /// Health of the directed link a-b in (0, 1]: the fraction of nominal
  /// bandwidth it still delivers.  1.0 everywhere by default; FaultOverlay
  /// reports degraded links' quantized health so the network simulator can
  /// derive per-link service rates from the same overlay that shapes the
  /// mapping distances.
  virtual double link_health(int, int) const { return 1.0; }

  /// Mean hop distance from p to every processor, self included:
  /// (1/|V_p|) * sum_q d(p, q).  This is the second-order expected-distance
  /// term of TopoLB.  Concrete topologies override with closed forms; the
  /// default loops over all processors.
  virtual double mean_distance_from(int p) const;

  /// Mean distance between two independently-uniform processors (self pairs
  /// included) — the paper's E[hops] for random placement.
  virtual double mean_pairwise_distance() const;

  /// Maximum distance between any pair of processors.
  virtual int diameter() const;

  /// The route a message from a to b takes, as the node sequence
  /// [a, ..., b] (length distance(a,b)+1).  Deterministic; grid topologies
  /// use dimension-ordered routing.  Used for per-link load accounting and
  /// by the network simulator.
  virtual std::vector<int> route(int a, int b) const;

  /// Number of directed links (each undirected link counts twice).
  int directed_link_count() const;

  /// Fill out[q] = distance(p, q) for every processor q — one row of the
  /// dense distance matrix.  The default loops over the virtual distance();
  /// concrete topologies override with batch closed forms (no per-element
  /// division/virtual dispatch), which is what makes building a
  /// topo::DistanceCache cheap.  `out` must hold size() entries; distances
  /// must fit in uint16_t (guaranteed by the 20000-node cache cap).
  virtual void write_distance_row(int p, std::uint16_t* out) const;

 protected:
  /// BFS shortest path from a to b over neighbors(); default route() impl.
  std::vector<int> bfs_route(int a, int b) const;
  void check_node(int p) const;
};

using TopologyPtr = std::shared_ptr<const Topology>;

}  // namespace topomap::topo
