#include "topo/components.hpp"

#include <algorithm>
#include <sstream>

#include "topo/fault_overlay.hpp"

namespace topomap::topo {

ComponentSplit connected_components(const FaultOverlay& overlay) {
  const int n = overlay.size();
  ComponentSplit split;
  if (!overlay.base().has_adjacency()) {
    // Distance model: every alive pair remains connected at the switch
    // level, so the alive set is one component (or none).
    std::vector<int> alive = overlay.alive_procs();
    if (!alive.empty()) split.components.push_back(std::move(alive));
    return split;
  }
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<int> frontier, next;
  for (int seed = 0; seed < n; ++seed) {
    if (seen[static_cast<std::size_t>(seed)] || !overlay.is_alive(seed))
      continue;
    // BFS in ascending discovery order; the member list is sorted after so
    // the output is independent of traversal order anyway.
    std::vector<int> members{seed};
    seen[static_cast<std::size_t>(seed)] = 1;
    frontier.assign(1, seed);
    while (!frontier.empty()) {
      next.clear();
      for (int u : frontier) {
        for (int v : overlay.neighbors(u)) {
          if (seen[static_cast<std::size_t>(v)]) continue;
          seen[static_cast<std::size_t>(v)] = 1;
          members.push_back(v);
          next.push_back(v);
        }
      }
      frontier.swap(next);
    }
    std::sort(members.begin(), members.end());
    split.components.push_back(std::move(members));
  }
  // Primary first: largest component, ties to the lowest member id.  The
  // seed loop already yields ascending first-member ids, so a stable sort
  // on size alone keeps the tie-break.
  std::stable_sort(split.components.begin(), split.components.end(),
                   [](const std::vector<int>& x, const std::vector<int>& y) {
                     return x.size() > y.size();
                   });
  return split;
}

std::string describe_partition(const FaultOverlay& overlay,
                               const ComponentSplit& split) {
  std::ostringstream os;
  os << "the alive machine is split into " << split.count()
     << " components (sizes";
  for (const auto& c : split.components) os << ' ' << c.size();
  os << ") by " << overlay.num_failed_nodes() << " dead processors and "
     << overlay.num_failed_links() << " failed links on " << overlay.name();
  return os.str();
}

}  // namespace topomap::topo
