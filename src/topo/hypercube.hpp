// Binary hypercube topology: p = 2^d processors, links between nodes whose
// indices differ in exactly one bit.  Included as the classic "rich" network
// the paper contrasts with torus/mesh (contention is far less of an issue
// because wiring grows as p log p).
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace topomap::topo {

class Hypercube final : public Topology {
 public:
  /// @param dim  number of dimensions d (>= 0); size() = 2^d
  explicit Hypercube(int dim);

  int size() const override { return 1 << dim_; }
  int distance(int a, int b) const override;
  std::vector<int> neighbors(int p) const override;
  std::string name() const override;
  double mean_distance_from(int p) const override;
  double mean_pairwise_distance() const override;
  int diameter() const override { return dim_; }

  /// E-cube route: corrects differing bits from least to most significant.
  std::vector<int> route(int a, int b) const override;

  /// Batch row fill for DistanceCache: one popcount per entry.
  void write_distance_row(int p, std::uint16_t* out) const override;

  int dimensions() const { return dim_; }

 private:
  int dim_;
};

}  // namespace topomap::topo
