// Fault-injection decorator over any Topology: failed links and failed
// processors.
//
// Real machines run for weeks while links and nodes drop out; the overlay
// models the degraded machine without rebuilding the base topology.
// Processor ids are stable — size() stays the base size and dead processors
// keep their numbers — so mappings, caches, and traces taken before a fault
// remain addressable after it.  Semantics:
//
//  * neighbors()/route()/distance() see only the *alive* subgraph: links in
//    the failed set and links touching dead processors do not exist.
//    Distances and routes are recomputed by BFS on that subgraph, so traffic
//    reroutes around faults (a failed link carries nothing, ever).
//  * Asking for the distance/route of a pair the faults disconnected — or
//    of a dead endpoint — throws precondition_error.  Never UB, never a
//    hang, never a silent wrong answer.
//  * write_distance_row() writes kUnreachable (0xFFFF) for unreachable or
//    dead entries, which is how topo::DistanceCache represents and
//    incrementally repairs faulted metrics (DistanceCache::repair_*).
//  * Distance-model topologies without processor-level links (FatTree,
//    has_adjacency() == false) support processor failures only: removing a
//    leaf never changes switch-level distances between the survivors, so
//    alive-pair distances are the base's; fail_link() on them throws.
//
// The overlay is cheap to mutate (a set insert) and stateless about
// distances: every query recomputes from the base adjacency, so concurrent
// const use from the parallel mapping kernels is safe and results are
// byte-identical for any thread count.  version() increments on every
// mutation and is embedded in name(), letting caches key on it.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "topo/topology.hpp"

namespace topomap::topo {

class FaultOverlay final : public Topology {
 public:
  /// Distance value marking "no alive path" in write_distance_row() output.
  static constexpr std::uint16_t kUnreachable = 0xFFFF;

  explicit FaultOverlay(TopologyPtr base);

  // --- fault injection (idempotent) ---

  /// Remove the undirected link a-b.  Requires a base-topology link between
  /// a and b (and a routed base: has_adjacency()).
  void fail_link(int a, int b);

  /// Remove processor p and every link touching it.
  void fail_node(int p);

  // --- fault inspection ---

  bool link_failed(int a, int b) const;
  bool node_failed(int p) const { return dead_[static_cast<std::size_t>(p)] != 0; }
  bool is_alive(int p) const;
  int num_alive() const { return size_ - dead_count_; }
  int num_failed_nodes() const { return dead_count_; }
  int num_failed_links() const { return static_cast<int>(failed_links_.size()); }
  bool has_faults() const { return dead_count_ > 0 || !failed_links_.empty(); }
  /// Alive processor ids, ascending.
  std::vector<int> alive_procs() const;
  /// Monotonic mutation counter (0 for a pristine overlay).
  int version() const { return version_; }

  const Topology& base() const { return *base_; }

  // --- Topology interface ---

  int size() const override { return size_; }
  /// Hop distance on the alive subgraph.  Throws precondition_error when an
  /// endpoint is dead or the pair is disconnected by faults.
  int distance(int a, int b) const override;
  /// Alive adjacency: failed links and dead endpoints are absent; a dead
  /// processor has no neighbors.
  std::vector<int> neighbors(int p) const override;
  std::string name() const override;
  bool has_adjacency() const override { return base_->has_adjacency(); }
  /// Mean distance from p to the alive processors it can still reach (self
  /// included).  Integer-sum based when any fault is active, so incremental
  /// DistanceCache repair reproduces it bit-exactly; 0.0 for a dead p.
  double mean_distance_from(int p) const override;
  /// Mean of mean_distance_from over the alive processors.
  double mean_pairwise_distance() const override;
  /// Largest finite alive-pair distance.
  int diameter() const override;
  /// Shortest alive route.  Keeps the base's deterministic route whenever
  /// the faults do not touch it; otherwise reroutes by BFS.  Throws
  /// precondition_error on dead endpoints or disconnection.
  std::vector<int> route(int a, int b) const override;
  void write_distance_row(int p, std::uint16_t* out) const override;

 private:
  /// BFS distances from src over the alive subgraph; kUnreachable elsewhere.
  void bfs_row(int src, std::uint16_t* out) const;
  bool route_intact(const std::vector<int>& path) const;

  TopologyPtr base_;
  int size_ = 0;
  std::vector<char> dead_;
  int dead_count_ = 0;
  std::set<std::pair<int, int>> failed_links_;  // normalized a < b
  int version_ = 0;
};

}  // namespace topomap::topo
