// Fault-injection decorator over any Topology: failed links, failed
// processors, and *degraded* (soft-faulted) links.
//
// Real machines run for weeks while links and nodes drop out — and degrade
// long before they die: a flaky cable retrains to half rate, a congested
// adaptive route delivers a fraction of nominal bandwidth.  The overlay
// models the whole spectrum with one description.  Every link carries a
// health in (0, 1]; health 1 is the pristine link, lower health is a soft
// fault, and the hard link/node faults of the original overlay are the
// health-0 limit.  Processor ids are stable — size() stays the base size
// and dead processors keep their numbers — so mappings, caches, and traces
// taken before a fault remain addressable after it.  Semantics:
//
//  * neighbors()/route()/distance() see only the *alive* subgraph: links in
//    the failed set and links touching dead processors do not exist.
//    Degraded links still exist but cost more to cross (below).
//  * Hard faults only: distances and routes are recomputed by BFS on the
//    alive subgraph, exactly as before soft faults existed.
//  * Any link health < 1: the metric switches to a weighted-Dijkstra mode.
//    Health is quantized to a fixed-point integer link cost
//    cost = round(kHealthCostOne / health) (so a healthy link costs
//    kHealthCostOne units — one hop — and a half-rate link about twice
//    that), distances become minimal path costs, and routes follow the
//    cheapest (not fewest-hop) path, repelling traffic from sick links the
//    same way longer paths do.  With every health == 1 the weighted mode
//    never engages and the overlay is byte-identical to the hard-fault
//    BFS plane — property-tested.
//  * Asking for the distance/route of a pair the faults disconnected — or
//    of a dead endpoint — throws precondition_error.  Never UB, never a
//    hang, never a silent wrong answer.
//  * write_distance_row() writes kUnreachable (0xFFFF) for unreachable or
//    dead entries, which is how topo::DistanceCache represents and
//    incrementally repairs faulted metrics (DistanceCache::repair_*).
//  * Distance-model topologies without processor-level links (FatTree,
//    has_adjacency() == false) support processor failures only: removing a
//    leaf never changes switch-level distances between the survivors, so
//    alive-pair distances are the base's; fail_link()/degrade_link() on
//    them throws.
//
// The overlay is cheap to mutate (a set/map insert) and stateless about
// distances: every query recomputes from the base adjacency, so concurrent
// const use from the parallel mapping kernels is safe and results are
// byte-identical for any thread count.  version() increments on every
// mutation and is embedded in name(), letting caches key on it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "topo/topology.hpp"

namespace topomap::topo {

class FaultOverlay final : public Topology {
 public:
  /// Distance value marking "no alive path" in write_distance_row() output.
  static constexpr std::uint16_t kUnreachable = 0xFFFF;
  /// Fixed-point denominator of the weighted metric: a fully-healthy link
  /// costs this many units when any soft fault is active (3 fractional
  /// bits — health resolves to ~12% steps near 1 and finer below).
  static constexpr int kHealthCostOne = 8;
  /// Largest finite plane entry; weighted path costs beyond it throw.
  static constexpr int kMaxFiniteDistance = 0xFFFE;

  explicit FaultOverlay(TopologyPtr base);

  // --- fault injection (idempotent) ---

  /// Remove the undirected link a-b.  Requires a base-topology link between
  /// a and b (and a routed base: has_adjacency()).  Supersedes any soft
  /// fault on the link; returns the cost (in the *pre-mutation*
  /// distance_scale() units) the link had while alive, which
  /// DistanceCache::repair_link_failure needs for its affected-row test.
  int fail_link(int a, int b);

  /// Remove processor p and every link touching it.  Health records of
  /// links into p are retained (they are inert while p is dead) so the
  /// plane's fixed-point units stay stable across node deaths.
  void fail_node(int p);

  /// Set the health of link a-b to `health` in (0, 1]: the link keeps
  /// existing but costs round(kHealthCostOne / health) units to cross in
  /// the weighted metric.  health == 1 restores the link to pristine.
  /// Requires an alive base link on a routed base; degrading a hard-failed
  /// link throws.  Returns the link's previous cost in the pre-mutation
  /// distance_scale() units — pass it to DistanceCache::repair_link_degrade.
  int degrade_link(int a, int b, double health);

  // --- recovery (idempotent, the inverses of the fault mutations) ---

  /// Revive dead processor p.  Its base links come back except those in
  /// the hard-failed set; health records of links into p survived the death
  /// and re-engage as-is.  Restoring an alive processor is a no-op.  Pair
  /// with DistanceCache::repair_node_restore.
  void restore_node(int p);

  /// Re-install hard-failed link a-b at full health (the hard fault
  /// destroyed any degrade record when it superseded it).  Restoring a
  /// link that is not failed is a no-op.  A dead endpoint is allowed — the
  /// restored link stays inert until the processor comes back.  Returns
  /// the link's cost in the *post-mutation* distance_scale() units, for
  /// DistanceCache::repair_link_restore.
  int restore_link(int a, int b);

  /// Restore link a-b to full health: exactly degrade_link(a, b, 1.0).
  /// Returns the previous cost in pre-mutation units, for
  /// DistanceCache::repair_link_degrade.
  int restore_link_health(int a, int b);

  // --- fault inspection ---

  bool link_failed(int a, int b) const;
  bool node_failed(int p) const { return dead_[static_cast<std::size_t>(p)] != 0; }
  bool is_alive(int p) const;
  int num_alive() const { return size_ - dead_count_; }
  int num_failed_nodes() const { return dead_count_; }
  int num_failed_links() const { return static_cast<int>(failed_links_.size()); }
  int num_degraded_links() const { return static_cast<int>(degraded_.size()); }
  bool has_faults() const {
    return dead_count_ > 0 || !failed_links_.empty() || !degraded_.empty();
  }
  /// Any link with health < 1 (the weighted-metric switch).
  bool has_soft_faults() const { return !degraded_.empty(); }
  /// Quantized health of link a-b: 1.0 when pristine, kHealthCostOne / cost
  /// for a degraded link, 0.0 when the link is hard-failed or an endpoint
  /// is dead.  This is exactly the service-rate fraction netsim derives its
  /// per-link slowdowns from, so simulation and mapping see one machine.
  double link_health(int a, int b) const override;
  /// Alive processor ids, ascending.
  std::vector<int> alive_procs() const;
  /// Monotonic mutation counter (0 for a pristine overlay).
  int version() const { return version_; }

  const Topology& base() const { return *base_; }

  // --- Topology interface ---

  int size() const override { return size_; }
  /// Path cost on the alive subgraph, in distance_scale() units: hop count
  /// without soft faults, minimal health-weighted cost with them.  Throws
  /// precondition_error when an endpoint is dead or the pair is
  /// disconnected by faults.
  int distance(int a, int b) const override;
  /// kHealthCostOne while any soft fault is active, else 1.
  int distance_scale() const override {
    return degraded_.empty() ? 1 : kHealthCostOne;
  }
  /// Cost of crossing base link a-b in current distance_scale() units,
  /// whether or not the link is currently alive (callers own aliveness
  /// checks; DistanceCache's repairs probe links around dead processors).
  int link_cost(int a, int b) const override;
  /// Alive adjacency: failed links and dead endpoints are absent; a dead
  /// processor has no neighbors.  Degraded links remain present.
  std::vector<int> neighbors(int p) const override;
  std::string name() const override;
  bool has_adjacency() const override { return base_->has_adjacency(); }
  /// Mean distance from p to the alive processors it can still reach (self
  /// included).  Integer-sum based when any fault is active, so incremental
  /// DistanceCache repair reproduces it bit-exactly; 0.0 for a dead p.
  double mean_distance_from(int p) const override;
  /// Mean of mean_distance_from over the alive processors.
  double mean_pairwise_distance() const override;
  /// Largest finite alive-pair distance (in distance_scale() units).
  int diameter() const override;
  /// Cheapest alive route.  Keeps the base's deterministic route whenever
  /// the faults (hard or soft) do not touch it — such a route is still
  /// weighted-optimal, since every alternative crosses at least as many
  /// links at at least the healthy cost.  Otherwise reroutes by BFS
  /// (hard faults only) or Dijkstra (weighted mode).  Throws
  /// precondition_error on dead endpoints or disconnection.
  std::vector<int> route(int a, int b) const override;
  void write_distance_row(int p, std::uint16_t* out) const override;

 private:
  /// BFS distances from src over the alive subgraph; kUnreachable elsewhere.
  void bfs_row(int src, std::uint16_t* out) const;
  /// Weighted (fixed-point) Dijkstra distances from src; kUnreachable
  /// elsewhere.  When `parent` is non-null also records a deterministic
  /// shortest-path tree (ties resolve to the predecessor that was settled
  /// first, i.e. lowest (cost, id)).  Throws when a finite path cost
  /// exceeds kMaxFiniteDistance.
  void dijkstra_row(int src, std::uint16_t* out, std::vector<int>* parent) const;
  bool route_intact(const std::vector<int>& path) const;
  /// Cost of alive base link u-v in weighted units (degraded or healthy).
  int weighted_cost(int u, int v) const;

  TopologyPtr base_;
  int size_ = 0;
  std::vector<char> dead_;
  int dead_count_ = 0;
  std::set<std::pair<int, int>> failed_links_;       // normalized a < b
  std::map<std::pair<int, int>, int> degraded_;      // normalized -> cost
  int version_ = 0;
};

}  // namespace topomap::topo
