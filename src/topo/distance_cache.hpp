// Distance-plane engine: a dense, non-virtual view of a topology's metric.
//
// Every mapping hot loop in src/core — TopoLB's row rescans, TopoCentLB's
// free-processor scan, RefineTopoLB's swap-delta sweep, AnnealingLB's
// Metropolis chain — funnels through Topology::distance(a, b).  Through the
// vtable that is a call + (for grids) a div/mod chain per lookup, repeated
// billions of times per mapping run.  DistanceCache materializes the whole
// p x p hop-distance matrix once (row-major uint16_t, built via the batch
// Topology::write_distance_row hook, rows filled in parallel) plus the
// per-source mean distances, and hands the kernels raw row pointers.
//
// Memory: 2 bytes per pair — 800 MB at the 20000-node cap shared with
// GraphTopology, 2 MB for a 1024-node BlueGene partition.  Construction is
// O(p^2) with a small constant (closed-form batch fills for grids and
// hypercubes, memcpy for GraphTopology).
//
// Determinism contract: distance(a, b) returns exactly the virtual
// Topology::distance(a, b), and mean_distance_from(p) stores *the virtual
// method's value* (not a matrix-derived re-computation), so kernels running
// on the cache produce results byte-identical to virtual dispatch — the
// property tests assert this for every strategy.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace topomap::topo {

class DistanceCache {
 public:
  /// Build the dense matrix for `topo`.  Requires size() <= 20000 (the
  /// dense-matrix cap); throws precondition_error beyond it.
  explicit DistanceCache(const Topology& topo);

  int size() const { return n_; }

  /// Row pointer: row(a)[b] == distance(a, b).  The fastest access path —
  /// hoist it out of inner loops over b.
  const std::uint16_t* row(int a) const {
    return dist_.data() + static_cast<std::size_t>(a) * static_cast<std::size_t>(n_);
  }

  /// Bounds-unchecked scalar lookup.
  int distance(int a, int b) const { return row(a)[b]; }

  /// The topology's mean_distance_from(p), captured at build time.
  double mean_distance_from(int p) const {
    return mean_dist_[static_cast<std::size_t>(p)];
  }

  int diameter() const { return diameter_; }

 private:
  int n_ = 0;
  int diameter_ = 0;
  std::vector<std::uint16_t> dist_;  // row-major n x n
  std::vector<double> mean_dist_;    // virtual mean_distance_from values
};

}  // namespace topomap::topo
