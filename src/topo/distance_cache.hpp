// Distance-plane engine: a dense, non-virtual view of a topology's metric.
//
// Every mapping hot loop in src/core — TopoLB's row rescans, TopoCentLB's
// free-processor scan, RefineTopoLB's swap-delta sweep, AnnealingLB's
// Metropolis chain — funnels through Topology::distance(a, b).  Through the
// vtable that is a call + (for grids) a div/mod chain per lookup, repeated
// billions of times per mapping run.  DistanceCache materializes the whole
// p x p hop-distance matrix once (row-major uint16_t, built via the batch
// Topology::write_distance_row hook, rows filled in parallel) plus the
// per-source mean distances, and hands the kernels raw row pointers.
//
// Memory: 2 bytes per pair — 800 MB at the 20000-node cap shared with
// GraphTopology, 2 MB for a 1024-node BlueGene partition.  Construction is
// O(p^2) with a small constant (closed-form batch fills for grids and
// hypercubes, memcpy for GraphTopology).
//
// Determinism contract: distance(a, b) returns exactly the virtual
// Topology::distance(a, b), and mean_distance_from(p) stores *the virtual
// method's value* (not a matrix-derived re-computation), so kernels running
// on the cache produce results byte-identical to virtual dispatch — the
// property tests assert this for every strategy.
//
// Fault repair: when the topology is wrapped in a topo::FaultOverlay, the
// cache can follow fault injections *incrementally* instead of the O(p^2)
// all-rows rebuild the ROADMAP flagged.  repair_link_failure(a, b) re-runs
// BFS only for source rows whose shortest-path DAG used link a-b — detected
// in O(1) per row from the cached values themselves: link a-b lies on some
// shortest path from s iff |d(s,a) - d(s,b)| == 1 (BFS level property), so
// no per-row touched-link bitset needs to be maintained.  Similarly
// repair_node_failure(p) fully recomputes a row only when p was *interior*
// to its DAG (p has an alive DAG successor); rows where p was a leaf are
// patched in place (entry -> unreachable, integer row sum/count adjusted).
// Unreachable and dead entries hold FaultOverlay::kUnreachable (0xFFFF,
// distances are capped far below by the 20000-node limit).  The repaired
// cache is byte-identical to a from-scratch rebuild on the faulted overlay
// — matrix, means, and diameter — which the property tests assert for
// random fault sequences under 1 and 4 threads.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace topomap::topo {

class FaultOverlay;

class DistanceCache {
 public:
  /// Build the dense matrix for `topo`.  Requires size() <= 20000 (the
  /// dense-matrix cap); throws precondition_error beyond it.
  explicit DistanceCache(const Topology& topo);

  int size() const { return n_; }

  /// Row pointer: row(a)[b] == distance(a, b).  The fastest access path —
  /// hoist it out of inner loops over b.  Rows are contiguous: row(0) is
  /// the whole n x n matrix.
  const std::uint16_t* row(int a) const {
    return dist_.data() + static_cast<std::size_t>(a) * static_cast<std::size_t>(n_);
  }

  /// Bounds-unchecked scalar lookup.
  int distance(int a, int b) const { return row(a)[b]; }

  /// The topology's mean_distance_from(p), captured at build time and kept
  /// exact across repairs.
  double mean_distance_from(int p) const {
    return mean_dist_[static_cast<std::size_t>(p)];
  }

  int diameter() const { return diameter_; }

  /// Incorporate overlay.fail_link(a, b) — call once, immediately after the
  /// overlay mutation.  Recomputes only the source rows whose shortest-path
  /// DAG crossed the failed link; refreshes means and diameter.  The
  /// overlay's base must be the topology this cache was built on (or the
  /// overlay itself).  Returns the number of rows recomputed by BFS.
  int repair_link_failure(const FaultOverlay& overlay, int a, int b);

  /// Incorporate overlay.fail_node(p) — call once, immediately after the
  /// overlay mutation.  Blanks p's row, patches rows where p was a DAG
  /// leaf, BFS-recomputes rows where p was interior.  Returns the number of
  /// rows recomputed by BFS (excluding p's own blanked row).
  int repair_node_failure(const FaultOverlay& overlay, int p);

 private:
  void recompute_row_stats(int p);
  void refresh_means_and_diameter();

  int n_ = 0;
  int diameter_ = 0;
  std::vector<std::uint16_t> dist_;  // row-major n x n
  std::vector<double> mean_dist_;    // virtual mean_distance_from values
  // Exact per-row aggregates (finite entries only, self included) letting
  // repairs reproduce the overlay's integer mean arithmetic bit-for-bit.
  std::vector<long long> row_sum_;
  std::vector<int> row_reach_;
  std::vector<int> row_max_;
};

}  // namespace topomap::topo
