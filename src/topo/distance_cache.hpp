// Distance-plane engine: a dense, non-virtual view of a topology's metric.
//
// Every mapping hot loop in src/core — TopoLB's row rescans, TopoCentLB's
// free-processor scan, RefineTopoLB's swap-delta sweep, AnnealingLB's
// Metropolis chain — funnels through Topology::distance(a, b).  Through the
// vtable that is a call + (for grids) a div/mod chain per lookup, repeated
// billions of times per mapping run.  DistanceCache materializes the whole
// p x p matrix once (row-major uint16_t, built via the batch
// Topology::write_distance_row hook, rows filled in parallel) plus the
// per-source mean distances, and hands the kernels raw row pointers.
//
// Memory: 2 bytes per pair — 800 MB at the 20000-node cap shared with
// GraphTopology, 2 MB for a 1024-node BlueGene partition.  Construction is
// O(p^2) with a small constant (closed-form batch fills for grids and
// hypercubes, memcpy for GraphTopology).
//
// Determinism contract: distance(a, b) returns exactly the virtual
// Topology::distance(a, b), and mean_distance_from(p) stores *the virtual
// method's value* (not a matrix-derived re-computation), so kernels running
// on the cache produce results byte-identical to virtual dispatch — the
// property tests assert this for every strategy.
//
// Weighted plane: the cache is metric-agnostic — it stores whatever
// write_distance_row produces, in the topology's distance_scale() units.
// For a soft-faulted topo::FaultOverlay that is the fixed-point
// health-weighted plane (healthy hop = kHealthCostOne units); with every
// link healthy the scale is 1 and the plane is byte-identical to the plain
// hop plane.  The scale captured at build time is how repairs detect a
// *unit change* (first degrade, or last degraded link disappearing): the
// whole plane then re-expresses in the new units, so the repair falls back
// to an all-rows rebuild exactly once per transition.
//
// Fault repair: when the topology is wrapped in a topo::FaultOverlay, the
// cache can follow fault injections *incrementally* instead of the O(p^2)
// all-rows rebuild the ROADMAP flagged.  repair_link_failure(a, b) re-runs
// BFS/Dijkstra only for source rows whose shortest-path DAG used link a-b —
// detected in O(1) per row from the cached values themselves: a link of
// cost c lies on some shortest path from s iff |d(s,a) - d(s,b)| == c (the
// BFS level property generalized to weighted planes), so no per-row
// touched-link bitset needs to be maintained.  repair_link_degrade(a, b)
// uses the same oracle in both directions: a cost increase can only affect
// rows that had the link tight (|d(s,a) - d(s,b)| == old cost); a decrease
// only rows where the cheaper link now undercuts the stored distances
// (|d(s,a) - d(s,b)| > new cost).  Similarly repair_node_failure(p) fully
// recomputes a row only when p was *interior* to its DAG (p has an alive
// DAG successor q with d(s,q) == d(s,p) + cost(p,q)); rows where p was a
// leaf are patched in place (entry -> unreachable, integer row sum/count
// adjusted).  Unreachable and dead entries hold FaultOverlay::kUnreachable
// (0xFFFF, distances are capped far below by the 20000-node limit and the
// overlay's weighted-overflow check).  The repaired cache is byte-identical
// to a from-scratch rebuild on the faulted overlay — matrix, means, and
// diameter — which the property tests assert for random interleaved
// degrade/fail sequences under 1 and 4 threads.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace topomap::topo {

class FaultOverlay;

class DistanceCache {
 public:
  /// Build the dense matrix for `topo`.  Requires size() <= 20000 (the
  /// dense-matrix cap); throws precondition_error beyond it.
  explicit DistanceCache(const Topology& topo);

  int size() const { return n_; }

  /// distance_scale() of the topology at build/last-repair time: the units
  /// of every matrix entry (1 = plain hops).
  int scale() const { return scale_; }

  /// Row pointer: row(a)[b] == distance(a, b).  The fastest access path —
  /// hoist it out of inner loops over b.  Rows are contiguous: row(0) is
  /// the whole n x n matrix.
  const std::uint16_t* row(int a) const {
    return dist_.data() + static_cast<std::size_t>(a) * static_cast<std::size_t>(n_);
  }

  /// Bounds-unchecked scalar lookup.
  int distance(int a, int b) const { return row(a)[b]; }

  /// The topology's mean_distance_from(p), captured at build time and kept
  /// exact across repairs.
  double mean_distance_from(int p) const {
    return mean_dist_[static_cast<std::size_t>(p)];
  }

  int diameter() const { return diameter_; }

  /// Incorporate overlay.fail_link(a, b) — call once, immediately after the
  /// overlay mutation.  Recomputes only the source rows whose shortest-path
  /// DAG crossed the failed link; refreshes means and diameter.
  /// `prev_cost` is the cost the link carried while alive in the
  /// pre-mutation plane units (fail_link's return value); 0 means "it was
  /// healthy" (one hop — the only possibility before soft faults existed).
  /// The overlay's base must be the topology this cache was built on (or
  /// the overlay itself).  Returns the number of rows recomputed.
  int repair_link_failure(const FaultOverlay& overlay, int a, int b,
                          int prev_cost = 0);

  /// Incorporate overlay.fail_node(p) — call once, immediately after the
  /// overlay mutation.  Blanks p's row, patches rows where p was a DAG
  /// leaf, recomputes rows where p was interior.  Returns the number of
  /// rows recomputed (excluding p's own blanked row).
  int repair_node_failure(const FaultOverlay& overlay, int p);

  /// Incorporate overlay.degrade_link(a, b, health) — call once,
  /// immediately after the overlay mutation, passing degrade_link's return
  /// value as `prev_cost`.  When the mutation changed the plane's units
  /// (first soft fault, or the last one restored) every row rebuilds;
  /// otherwise only rows whose shortest paths the cost change can touch
  /// are recomputed.  Returns the number of rows recomputed.
  /// restore_link_health is degrade_link(a, b, 1.0), so this repair also
  /// covers health recoveries.
  int repair_link_degrade(const FaultOverlay& overlay, int a, int b,
                          int prev_cost);

  /// Incorporate overlay.restore_node(p) — call once, immediately after
  /// the overlay mutation.  Computes p's fresh row once, then patches every
  /// survivor row in place: a revived processor can only *shorten* paths,
  /// and a shortest path crosses p at most once, so
  /// new_d(s, q) = min(old_d(s, q), d(p, s) + d(p, q)) is exact.  Returns
  /// the number of survivor rows whose entries changed.
  int repair_node_restore(const FaultOverlay& overlay, int p);

  /// Incorporate overlay.restore_link(a, b) — call once, immediately after
  /// the overlay mutation, passing restore_link's return value as `cost`.
  /// A returning link of cost c can only shorten paths, and a shortest path
  /// crosses it at most once, so rows are patched in place with
  /// new_d(s, q) = min(old, d(s,a) + c + d(b,q), d(s,b) + c + d(a,q)),
  /// touching only rows the oracle |d(s,a) - d(s,b)| > c (or exactly one
  /// endpoint reachable) flags.  A dead endpoint makes the restore inert:
  /// no distances change.  Returns the number of rows patched.
  int repair_link_restore(const FaultOverlay& overlay, int a, int b,
                          int cost);

  /// Full from-scratch rebuild on `topo` — the graceful-fallback path when
  /// core::validate_state finds the incrementally-repaired plane out of
  /// step with the overlay.  Also the exactness anchor the repairs fall
  /// back to when a restore returns the overlay to a pristine state (a
  /// fresh build on a fault-free overlay stores the base topology's
  /// closed-form means, which the integer aggregates cannot reproduce
  /// bit-for-bit).
  void rebuild(const Topology& topo);

 private:
  void rebuild_all(const Topology& topo);
  /// All-rows rebuild when the overlay's distance_scale() no longer matches
  /// the plane's units.  Returns true when it rebuilt (repair is done).
  bool rescale_if_needed(const FaultOverlay& overlay);
  /// Recompute the given source rows from the overlay, in parallel.
  void recompute_rows(const FaultOverlay& overlay,
                      const std::vector<int>& rows);
  void recompute_row_stats(int p);
  void refresh_means_and_diameter();

  int n_ = 0;
  int scale_ = 1;
  int diameter_ = 0;
  std::vector<std::uint16_t> dist_;  // row-major n x n
  std::vector<double> mean_dist_;    // virtual mean_distance_from values
  // Exact per-row aggregates (finite entries only, self included) letting
  // repairs reproduce the overlay's integer mean arithmetic bit-for-bit.
  std::vector<long long> row_sum_;
  std::vector<int> row_reach_;
  std::vector<int> row_max_;
};

}  // namespace topomap::topo
