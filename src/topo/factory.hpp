// String-spec topology factory, used by benches/examples so sweeps can name
// machines on the command line, plus shape helpers for building square tori
// and near-cubic meshes of a given processor count.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace topomap::topo {

/// Parse a topology spec and construct it:
///   "torus:8x8x8"     3D torus with those extents
///   "mesh:16x16"      2D mesh
///   "hybrid:8wx8o"    per-dimension wrap (w) / open (o) suffixes
///   "hypercube:6"     2^6-node hypercube
///   "fattree:4x3"     arity-4, 3-level fat tree (64 leaves)
///   "dragonfly:8"     8 routers/group, 9 groups (72 nodes)
/// Throws precondition_error on malformed specs.
TopologyPtr make_topology(const std::string& spec);

/// Factor p into the most-cubic d-dimensional box (extents sorted
/// descending, product exactly p).  Throws if p < 1.
std::vector<int> balanced_dims(int p, int num_dims);

/// True if p has an integral square / cube root.
bool is_perfect_square(int p);
bool is_perfect_cube(int p);

}  // namespace topomap::topo
