#include "topo/torus_mesh.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "support/error.hpp"

namespace topomap::topo {

TorusMesh::TorusMesh(std::vector<int> dims, std::vector<bool> wrap)
    : dims_(std::move(dims)), wrap_(std::move(wrap)) {
  TOPOMAP_REQUIRE(!dims_.empty(), "torus/mesh needs at least one dimension");
  TOPOMAP_REQUIRE(dims_.size() == wrap_.size(),
                  "dims and wrap flags differ in length");
  size_ = 1;
  stride_.resize(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    TOPOMAP_REQUIRE(dims_[d] >= 1, "dimension extent must be >= 1");
    stride_[d] = size_;
    TOPOMAP_REQUIRE(size_ <= (1 << 30) / dims_[d], "topology too large");
    size_ *= dims_[d];
  }
}

TorusMesh TorusMesh::torus(std::vector<int> dims) {
  std::vector<bool> wrap(dims.size(), true);
  return TorusMesh(std::move(dims), std::move(wrap));
}

TorusMesh TorusMesh::mesh(std::vector<int> dims) {
  std::vector<bool> wrap(dims.size(), false);
  return TorusMesh(std::move(dims), std::move(wrap));
}

std::vector<int> TorusMesh::coords(int p) const {
  check_node(p);
  std::vector<int> c(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    c[d] = p % dims_[d];
    p /= dims_[d];
  }
  return c;
}

int TorusMesh::index(const std::vector<int>& c) const {
  TOPOMAP_REQUIRE(c.size() == dims_.size(), "coordinate arity mismatch");
  int p = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    TOPOMAP_REQUIRE(c[d] >= 0 && c[d] < dims_[d], "coordinate out of range");
    p += c[d] * stride_[d];
  }
  return p;
}

int TorusMesh::dim_distance(int dim, int x, int y) const {
  const int s = dims_[static_cast<std::size_t>(dim)];
  const int direct = std::abs(x - y);
  return wrap_[static_cast<std::size_t>(dim)] ? std::min(direct, s - direct)
                                              : direct;
}

int TorusMesh::dim_step(int dim, int x, int y) const {
  const int s = dims_[static_cast<std::size_t>(dim)];
  if (!wrap_[static_cast<std::size_t>(dim)]) return y > x ? 1 : -1;
  const int fwd = ((y - x) % s + s) % s;  // steps in +1 direction
  const int bwd = s - fwd;
  if (fwd < bwd) return 1;
  if (fwd > bwd) return -1;
  return -1;  // tie on even spans: deterministic choice
}

int TorusMesh::distance(int a, int b) const {
  check_node(a);
  check_node(b);
  int total = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const int s = dims_[d];
    const int xa = (a / stride_[d]) % s;
    const int xb = (b / stride_[d]) % s;
    total += dim_distance(static_cast<int>(d), xa, xb);
  }
  return total;
}

std::vector<int> TorusMesh::neighbors(int p) const {
  check_node(p);
  std::vector<int> out;
  out.reserve(2 * dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const int s = dims_[d];
    if (s == 1) continue;
    const int x = (p / stride_[d]) % s;
    const int base = p - x * stride_[d];
    // -1 direction
    if (x > 0)
      out.push_back(base + (x - 1) * stride_[d]);
    else if (wrap_[d] && s > 2)
      out.push_back(base + (s - 1) * stride_[d]);
    // +1 direction
    if (x < s - 1)
      out.push_back(base + (x + 1) * stride_[d]);
    else if (wrap_[d] && s > 2)
      out.push_back(base + 0 * stride_[d]);
    // Note: wrapped spans of 2 naturally yield a single neighbour in this
    // dimension (the wraparound link coincides with the direct one).
  }
  return out;
}

std::string TorusMesh::name() const {
  std::ostringstream os;
  bool all_wrap = true, none_wrap = true;
  for (bool w : wrap_) (w ? none_wrap : all_wrap) = false;
  os << (all_wrap ? "torus" : none_wrap ? "mesh" : "hybrid") << '(';
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (d) os << ',';
    os << dims_[d];
    if (!all_wrap && !none_wrap) os << (wrap_[d] ? 'w' : 'o');
  }
  os << ')';
  return os.str();
}

double TorusMesh::mean_distance_from(int p) const {
  check_node(p);
  double total = 0.0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const double s = dims_[d];
    if (wrap_[d]) {
      // Independent of position: (1/s) * sum_k min(k, s-k).
      const auto si = dims_[d];
      total += (si % 2 == 0) ? s / 4.0 : (s * s - 1.0) / (4.0 * s);
    } else {
      const int x = (p / stride_[d]) % dims_[d];
      const double left = static_cast<double>(x) * (x + 1) / 2.0;
      const double right =
          static_cast<double>(dims_[d] - 1 - x) * (dims_[d] - x) / 2.0;
      total += (left + right) / s;
    }
  }
  return total;
}

double TorusMesh::mean_pairwise_distance() const {
  double total = 0.0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const double s = dims_[d];
    const int si = dims_[d];
    if (wrap_[d])
      total += (si % 2 == 0) ? s / 4.0 : (s * s - 1.0) / (4.0 * s);
    else
      total += (s * s - 1.0) / (3.0 * s);  // E|X-Y| for iid uniform
  }
  return total;
}

int TorusMesh::diameter() const {
  int total = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d)
    total += wrap_[d] ? dims_[d] / 2 : dims_[d] - 1;
  return total;
}

void TorusMesh::write_distance_row(int p, std::uint16_t* out) const {
  check_node(p);
  const auto ndims = dims_.size();
  // dim_table[d][y] = distance along dimension d from p's coordinate to y.
  std::vector<std::vector<int>> dim_table(ndims);
  {
    int rest = p;
    for (std::size_t d = 0; d < ndims; ++d) {
      const int s = dims_[d];
      const int x = rest % s;
      rest /= s;
      dim_table[d].resize(static_cast<std::size_t>(s));
      for (int y = 0; y < s; ++y)
        dim_table[d][static_cast<std::size_t>(y)] =
            dim_distance(static_cast<int>(d), x, y);
    }
  }
  // Build the row by block replication: fill the innermost dimension's
  // stretch once (plus every outer dimension's contribution at coordinate
  // 0), then for each outer dimension copy the block s-1 times shifted by
  // that dimension's delta against coordinate 0.  One add per entry with
  // sequential stores — this runs inside the DistanceCache build over all
  // p, so the constant matters.
  {
    int outer0 = 0;
    for (std::size_t d = 1; d < ndims; ++d) outer0 += dim_table[d][0];
    const auto& t0 = dim_table[0];
    const int s0 = dims_[0];
    for (int y = 0; y < s0; ++y)
      out[y] = static_cast<std::uint16_t>(t0[static_cast<std::size_t>(y)] +
                                          outer0);
  }
  int len = dims_[0];
  for (std::size_t d = 1; d < ndims; ++d) {
    const auto& table = dim_table[d];
    const int s = dims_[d];
    for (int y = 1; y < s; ++y) {
      const int delta = table[static_cast<std::size_t>(y)] - table[0];
      std::uint16_t* dst = out + static_cast<std::ptrdiff_t>(y) * len;
      for (int i = 0; i < len; ++i)
        dst[i] = static_cast<std::uint16_t>(out[i] + delta);
    }
    len *= s;
  }
}

std::vector<int> TorusMesh::route(int a, int b) const {
  check_node(a);
  check_node(b);
  std::vector<int> path{a};
  std::vector<int> cur = coords(a);
  const std::vector<int> dst = coords(b);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const int s = dims_[d];
    while (cur[d] != dst[d]) {
      const int step = dim_step(static_cast<int>(d), cur[d], dst[d]);
      cur[d] = ((cur[d] + step) % s + s) % s;
      path.push_back(index(cur));
    }
  }
  TOPOMAP_ASSERT(static_cast<int>(path.size()) == distance(a, b) + 1,
                 "dimension-ordered route is not shortest");
  return path;
}

}  // namespace topomap::topo
