// Connected components of a faulted machine's alive subgraph.
//
// Faults do not only shrink a machine — enough of them split it.  A
// partition-tolerant runtime needs to know the pieces: which survivors can
// still talk, which component is worth mapping onto, and how to describe
// the split when a caller asked for something the partition makes
// impossible.  Everything here is deterministic: components are discovered
// in ascending processor-id order, members are listed ascending, and the
// primary component is the largest one (ties break to the component
// containing the lowest processor id), so every thread count and every run
// agrees on which tasks get quarantined.
//
// Distance-model topologies without processor-level links (fat-tree,
// has_adjacency() == false) only lose leaves to node faults, never split:
// their alive set is always a single component.
#pragma once

#include <string>
#include <vector>

namespace topomap::topo {

class FaultOverlay;

struct ComponentSplit {
  /// Alive components; each member list ascending.  Ordered by
  /// (size descending, lowest member id ascending), so components[0] is
  /// the primary component.  Empty only when every processor is dead.
  std::vector<std::vector<int>> components;

  int count() const { return static_cast<int>(components.size()); }
  bool partitioned() const { return components.size() > 1; }
  /// The primary (largest, lowest-id tie-break) component's members.
  const std::vector<int>& primary() const { return components.front(); }
};

/// Components of the overlay's alive subgraph (dead processors and failed
/// links absent; degraded links present — a sick link still connects).
ComponentSplit connected_components(const FaultOverlay& overlay);

/// One-line description of a split machine for error messages and logs:
/// component count, sizes, and the fault set that caused the split.
std::string describe_partition(const FaultOverlay& overlay,
                               const ComponentSplit& split);

}  // namespace topomap::topo
