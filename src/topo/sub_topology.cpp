#include "topo/sub_topology.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace topomap::topo {

SubTopology::SubTopology(TopologyPtr base, std::vector<int> nodes)
    : base_(std::move(base)), nodes_(std::move(nodes)) {
  TOPOMAP_REQUIRE(base_ != nullptr, "SubTopology: base topology is null");
  TOPOMAP_REQUIRE(!nodes_.empty(), "SubTopology: empty node subset");
  TOPOMAP_REQUIRE(std::is_sorted(nodes_.begin(), nodes_.end()) &&
                      std::adjacent_find(nodes_.begin(), nodes_.end()) ==
                          nodes_.end(),
                  "SubTopology: node subset must be ascending and unique");
  TOPOMAP_REQUIRE(nodes_.front() >= 0 && nodes_.back() < base_->size(),
                  "SubTopology: node id out of range for " + base_->name());
  compact_of_.assign(static_cast<std::size_t>(base_->size()), -1);
  for (int i = 0; i < size(); ++i)
    compact_of_[static_cast<std::size_t>(nodes_[static_cast<std::size_t>(i)])] =
        i;
  // Verify pairwise connectivity up front: one base row per subset member,
  // rejecting unreachable entries so strategies never see a disconnected
  // pair mid-kernel.
  std::vector<std::uint16_t> row(static_cast<std::size_t>(base_->size()));
  for (int i = 0; i < size(); ++i) {
    base_->write_distance_row(node_of(i), row.data());
    for (int j = 0; j < size(); ++j) {
      TOPOMAP_REQUIRE(
          row[static_cast<std::size_t>(node_of(j))] != 0xFFFF,
          "SubTopology: processors " + std::to_string(node_of(i)) + " and " +
              std::to_string(node_of(j)) + " are disconnected in " +
              base_->name());
    }
  }
}

int SubTopology::node_of(int i) const {
  check_node(i);
  return nodes_[static_cast<std::size_t>(i)];
}

int SubTopology::distance(int a, int b) const {
  return base_->distance(node_of(a), node_of(b));
}

std::vector<int> SubTopology::neighbors(int p) const {
  std::vector<int> out;
  for (int q : base_->neighbors(node_of(p))) {
    const int c = compact_of_[static_cast<std::size_t>(q)];
    if (c >= 0) out.push_back(c);
  }
  return out;
}

std::string SubTopology::name() const {
  std::ostringstream os;
  os << "sub(" << size() << "/" << base_->size() << ") of " << base_->name();
  return os.str();
}

double SubTopology::mean_distance_from(int p) const {
  std::vector<std::uint16_t> row(static_cast<std::size_t>(size()));
  write_distance_row(p, row.data());
  long long sum = 0;
  for (int q = 0; q < size(); ++q) sum += row[static_cast<std::size_t>(q)];
  return static_cast<double>(sum) / static_cast<double>(size());
}

int SubTopology::diameter() const {
  int best = 0;
  std::vector<std::uint16_t> row(static_cast<std::size_t>(size()));
  for (int p = 0; p < size(); ++p) {
    write_distance_row(p, row.data());
    for (int q = 0; q < size(); ++q)
      best = std::max(best, static_cast<int>(row[static_cast<std::size_t>(q)]));
  }
  return best;
}

std::vector<int> SubTopology::route(int a, int b) const {
  // Expressible only when the base route stays inside the subset — true by
  // construction when the base is a FaultOverlay over the alive processors
  // (routes never visit dead nodes).  Excluded intermediate hops mean the
  // compact ids cannot describe the path; callers then need route_in_base().
  const std::vector<int> base_path = route_in_base(a, b);
  std::vector<int> out;
  out.reserve(base_path.size());
  for (int hop : base_path) {
    const int c = compact_of_[static_cast<std::size_t>(hop)];
    TOPOMAP_REQUIRE(c >= 0,
                    "SubTopology::route: base route passes through excluded "
                    "processor " + std::to_string(hop) +
                        "; use route_in_base()");
    out.push_back(c);
  }
  return out;
}

std::vector<int> SubTopology::route_in_base(int a, int b) const {
  return base_->route(node_of(a), node_of(b));
}

void SubTopology::write_distance_row(int p, std::uint16_t* out) const {
  std::vector<std::uint16_t> row(static_cast<std::size_t>(base_->size()));
  base_->write_distance_row(node_of(p), row.data());
  for (int q = 0; q < size(); ++q)
    out[q] = row[static_cast<std::size_t>(
        nodes_[static_cast<std::size_t>(q)])];
}

}  // namespace topomap::topo
