// Canonical 1D dragonfly topology builder (extension beyond the paper).
//
// a routers per group, all-to-all within a group; g = a+1 groups; exactly
// one global link between every pair of groups, attached so that each
// router carries exactly one global link.  Diameter 3 (local, global,
// local).  Dragonflies are the modern counterpoint to the paper's
// torus-centric argument: with rich global wiring, random placement costs
// far less — which our strategy benches can now quantify directly.
//
// Returned as a GraphTopology (BFS distances, generic routes), so every
// strategy and the network simulator work on it unchanged.
#pragma once

#include "topo/graph_topology.hpp"

namespace topomap::topo {

/// @param routers_per_group  a >= 2; size() = a * (a + 1)
GraphTopology make_dragonfly(int routers_per_group);

}  // namespace topomap::topo
