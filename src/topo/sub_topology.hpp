// Compact re-indexed view of a subset of another topology's processors.
//
// Strategies require |V_t| == |V_p| and processor ids 0..p-1, so mapping
// onto the alive subset of a FaultOverlay needs a topology whose size() is
// the number of survivors.  SubTopology presents nodes_[0..k-1] of the base
// as processors 0..k-1; distances/routes/adjacency are the base's, filtered
// and re-labelled (routes may pass through base nodes outside the subset —
// they are physical paths, reported in *base* ids via route_in_base()).
// Construction requires every pair in the subset to be connected in the
// base (precondition_error otherwise), so downstream code never sees an
// unreachable pair.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace topomap::topo {

class SubTopology final : public Topology {
 public:
  /// @param base   underlying topology (kept alive via shared_ptr)
  /// @param nodes  base processor ids to expose, ascending & unique
  SubTopology(TopologyPtr base, std::vector<int> nodes);

  int size() const override { return static_cast<int>(nodes_.size()); }
  int distance(int a, int b) const override;
  /// Base adjacency restricted to the subset, in compact ids.  Processors
  /// whose base neighbors all lie outside the subset have no neighbors here
  /// even though distance() to them is finite (paths run through excluded
  /// nodes) — link-level consumers should use the base/overlay directly.
  std::vector<int> neighbors(int p) const override;
  std::string name() const override;
  bool has_adjacency() const override { return base_->has_adjacency(); }
  /// Metric units and per-link costs/health are the base's (a soft-faulted
  /// FaultOverlay keeps its weighted fixed-point plane through the compact
  /// view, so alive-subset mapping also avoids sick links).
  int distance_scale() const override { return base_->distance_scale(); }
  int link_cost(int a, int b) const override {
    return base_->link_cost(node_of(a), node_of(b));
  }
  double link_health(int a, int b) const override {
    return base_->link_health(node_of(a), node_of(b));
  }
  double mean_distance_from(int p) const override;
  int diameter() const override;
  /// The base route translated to compact ids.  Succeeds whenever the base
  /// route stays inside the subset (always true over a FaultOverlay's alive
  /// set); throws precondition_error if an intermediate hop is excluded —
  /// use route_in_base() for the physical path in that case.
  std::vector<int> route(int a, int b) const override;
  void write_distance_row(int p, std::uint16_t* out) const override;

  /// The base's route between compact processors a and b, in base ids.
  std::vector<int> route_in_base(int a, int b) const;

  /// Base id of compact processor i.
  int node_of(int i) const;
  const std::vector<int>& nodes() const { return nodes_; }
  const Topology& base() const { return *base_; }

 private:
  TopologyPtr base_;
  std::vector<int> nodes_;       // compact id -> base id, ascending
  std::vector<int> compact_of_;  // base id -> compact id, -1 if excluded
};

}  // namespace topomap::topo
