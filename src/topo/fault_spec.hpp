// Parsing and application of the CLI fault/degrade flag family.
//
// topomap's map/simulate/evacuate subcommands accept
//   --fail-link=a:b[,c:d...]        hard link failures
//   --fail-node=p[,q...]            processor deaths
//   --degrade-link=a:b:h[,...]      soft faults: link health h in (0, 1]
//                                   (h == 0 is accepted as the hard-fault
//                                   limit and routed to fail_link)
//   --random-link-faults=K / --random-node-faults=K / --random-degrades=K
//   --fault-seed=S                  RNG stream for the random draws
//   --restore-node=p[@epoch]        recovery: processor p comes back
//   --restore-link=a:b[@epoch]      recovery: hard-failed link a-b returns
//
// Restores without an @epoch (epoch 0) are part of the static fault set:
// they apply after the random draws, pinning a target alive that a
// --random-* flag may have hit.  Epoch-0 restore of an *explicitly* failed
// target is a contradiction and rejected ("give the restore an @epoch").
// Restores with an epoch > 0 are *timed* — they describe a recovery
// timeline and only make sense to commands that run epochs (the chaos
// soak); static commands reject them loudly.
//
// The parser used to live inside tools/topomap_cli.cpp where nothing could
// test it; it is a library now so malformed specs, out-of-range healths,
// duplicates, and topology-capability rejections (fat-tree has no
// processor-level links) are covered directly.  Parsing is strict: every
// token must consume entirely ("1x" is not 1), every entry must have the
// exact field count, and duplicate link/node entries are an error rather
// than a silent overwrite — sweep-script typos fail loudly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "topo/fault_overlay.hpp"

namespace topomap::topo {

/// One --degrade-link entry: link a-b at `health` of nominal bandwidth.
struct LinkDegradeSpec {
  int a = 0;
  int b = 0;
  double health = 1.0;
};

/// One --restore-node entry: processor p recovers at `epoch` (0 = part of
/// the static fault set, applied after the failures).
struct NodeRestoreSpec {
  int p = 0;
  int epoch = 0;
};

/// One --restore-link entry: hard-failed link a-b returns at `epoch`.
struct LinkRestoreSpec {
  int a = 0;
  int b = 0;
  int epoch = 0;
};

/// The parsed fault request of one CLI invocation.
struct FaultSpec {
  std::vector<std::pair<int, int>> fail_links;
  std::vector<int> fail_nodes;
  std::vector<LinkDegradeSpec> degrades;
  std::vector<NodeRestoreSpec> restore_nodes;
  std::vector<LinkRestoreSpec> restore_links;
  int random_link_faults = 0;
  int random_node_faults = 0;
  int random_degrades = 0;
  std::uint64_t seed = 42;

  bool empty() const {
    return fail_links.empty() && fail_nodes.empty() && degrades.empty() &&
           restore_nodes.empty() && restore_links.empty() &&
           random_link_faults == 0 && random_node_faults == 0 &&
           random_degrades == 0;
  }
  /// Any restore with an epoch > 0 (needs an epoch-running command).
  bool has_timed_restores() const;
};

/// Parse the raw flag values.  Empty strings / zero counts mean "none".
/// Throws precondition_error naming the offending token on malformed
/// entries, non-integer fields, health outside [0, 1], duplicate link or
/// node entries, a link listed as both failed and degraded, or negative
/// random counts.
FaultSpec parse_fault_spec(const std::string& fail_links,
                           const std::string& fail_nodes,
                           const std::string& degrade_links,
                           std::int64_t random_link_faults,
                           std::int64_t random_node_faults,
                           std::int64_t random_degrades,
                           std::uint64_t fault_seed);

/// As above, plus the recovery flags.  Restore entries reject duplicates
/// (same target at the same epoch), negative epochs, and the epoch-0
/// contradiction of failing and restoring the same target in one static
/// set.
FaultSpec parse_fault_spec(const std::string& fail_links,
                           const std::string& fail_nodes,
                           const std::string& degrade_links,
                           std::int64_t random_link_faults,
                           std::int64_t random_node_faults,
                           std::int64_t random_degrades,
                           std::uint64_t fault_seed,
                           const std::string& restore_nodes,
                           const std::string& restore_links);

/// Build the overlay described by `spec` over `base`, or nullptr when the
/// spec is empty.  Explicit entries apply first (degrades with health 0
/// become hard link failures), then random node faults, link faults, and
/// degrades are drawn from a dedicated Rng(seed) so the mapping seed's
/// stream is unaffected; random degrade healths are uniform in [0.1, 0.9].
/// Epoch-0 restores apply last.  Timed restores (epoch > 0) are rejected —
/// this builds one static machine state; epoch timelines belong to the
/// dynamic runtime.  Propagates the overlay's own rejections (nonexistent
/// links, fat-tree link operations, out-of-range processors).
std::shared_ptr<FaultOverlay> build_fault_overlay(const TopologyPtr& base,
                                                  const FaultSpec& spec);

}  // namespace topomap::topo
