#include "topo/factory.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "support/error.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fat_tree.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::topo {

namespace {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, delim)) out.push_back(item);
  return out;
}

int parse_int(const std::string& s, const std::string& what) {
  TOPOMAP_REQUIRE(!s.empty(), "empty " + what + " in topology spec");
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(s, &pos);
  } catch (const std::exception&) {
    throw precondition_error("bad " + what + " in topology spec: " + s);
  }
  TOPOMAP_REQUIRE(pos == s.size(), "bad " + what + " in topology spec: " + s);
  return v;
}

}  // namespace

TopologyPtr make_topology(const std::string& spec) {
  const auto colon = spec.find(':');
  TOPOMAP_REQUIRE(colon != std::string::npos,
                  "topology spec must look like kind:params, got: " + spec);
  const std::string kind = spec.substr(0, colon);
  const std::string params = spec.substr(colon + 1);

  if (kind == "torus" || kind == "mesh") {
    std::vector<int> dims;
    for (const auto& part : split(params, 'x'))
      dims.push_back(parse_int(part, "extent"));
    return kind == "torus"
               ? std::make_shared<TorusMesh>(TorusMesh::torus(dims))
               : std::make_shared<TorusMesh>(TorusMesh::mesh(dims));
  }
  if (kind == "hybrid") {
    std::vector<int> dims;
    std::vector<bool> wrap;
    for (auto part : split(params, 'x')) {
      TOPOMAP_REQUIRE(!part.empty(), "empty extent in hybrid spec");
      const char suffix = part.back();
      TOPOMAP_REQUIRE(suffix == 'w' || suffix == 'o',
                      "hybrid extents need a w/o suffix: " + part);
      wrap.push_back(suffix == 'w');
      part.pop_back();
      dims.push_back(parse_int(part, "extent"));
    }
    return std::make_shared<TorusMesh>(dims, wrap);
  }
  if (kind == "hypercube")
    return std::make_shared<Hypercube>(parse_int(params, "dimension"));
  if (kind == "dragonfly")
    return std::make_shared<GraphTopology>(
        make_dragonfly(parse_int(params, "routers-per-group")));
  if (kind == "fattree") {
    const auto parts = split(params, 'x');
    TOPOMAP_REQUIRE(parts.size() == 2, "fattree spec is fattree:<k>x<L>");
    return std::make_shared<FatTree>(parse_int(parts[0], "arity"),
                                     parse_int(parts[1], "levels"));
  }
  throw precondition_error("unknown topology kind: " + kind);
}

std::vector<int> balanced_dims(int p, int num_dims) {
  TOPOMAP_REQUIRE(p >= 1, "processor count must be positive");
  TOPOMAP_REQUIRE(num_dims >= 1, "need at least one dimension");
  // Greedy: repeatedly peel off the largest factor <= ceil(p^(1/k)).
  std::vector<int> dims;
  int remaining = p;
  for (int d = num_dims; d >= 1; --d) {
    if (d == 1) {
      dims.push_back(remaining);
      break;
    }
    const double target =
        std::pow(static_cast<double>(remaining), 1.0 / static_cast<double>(d));
    int best = 1;
    const int hi = std::max(1, static_cast<int>(std::ceil(target)) + 1);
    for (int f = 1; f <= std::min(hi, remaining); ++f)
      if (remaining % f == 0) best = f;
    dims.push_back(best);
    remaining /= best;
  }
  std::sort(dims.begin(), dims.end(), std::greater<int>());
  return dims;
}

bool is_perfect_square(int p) {
  if (p < 0) return false;
  const int r = static_cast<int>(std::lround(std::sqrt(double(p))));
  return r * r == p;
}

bool is_perfect_cube(int p) {
  if (p < 0) return false;
  const int r = static_cast<int>(std::lround(std::cbrt(double(p))));
  return r * r * r == p;
}

}  // namespace topomap::topo
