#include "topo/fault_spec.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace topomap::topo {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

/// Strict integer parse: the whole token must be one base-10 integer.
int parse_int(const std::string& token, const std::string& what) {
  std::size_t pos = 0;
  int value = 0;
  try {
    value = std::stoi(token, &pos);
  } catch (const std::exception&) {
    throw precondition_error(what + ": '" + token + "' is not an integer");
  }
  TOPOMAP_REQUIRE(pos == token.size(),
                  what + ": trailing characters in '" + token + "'");
  return value;
}

/// Strict double parse: the whole token must be one number.
double parse_double(const std::string& token, const std::string& what) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw precondition_error(what + ": '" + token + "' is not a number");
  }
  TOPOMAP_REQUIRE(pos == token.size(),
                  what + ": trailing characters in '" + token + "'");
  return value;
}

std::pair<int, int> norm_link(int a, int b) {
  return a < b ? std::pair<int, int>{a, b} : std::pair<int, int>{b, a};
}

/// Split one "target[@epoch]" restore entry; epoch 0 when absent.
std::pair<std::string, int> parse_timed(const std::string& entry,
                                        const std::string& what) {
  const auto at = split(entry, '@');
  TOPOMAP_REQUIRE(at.size() <= 2,
                  what + ": more than one '@' in '" + entry + "'");
  int epoch = 0;
  if (at.size() == 2) {
    epoch = parse_int(at[1], what + " epoch");
    TOPOMAP_REQUIRE(epoch >= 0, what + ": negative epoch in '" + entry + "'");
  }
  return {at[0], epoch};
}

}  // namespace

bool FaultSpec::has_timed_restores() const {
  for (const NodeRestoreSpec& r : restore_nodes)
    if (r.epoch > 0) return true;
  for (const LinkRestoreSpec& r : restore_links)
    if (r.epoch > 0) return true;
  return false;
}

FaultSpec parse_fault_spec(const std::string& fail_links,
                           const std::string& fail_nodes,
                           const std::string& degrade_links,
                           std::int64_t random_link_faults,
                           std::int64_t random_node_faults,
                           std::int64_t random_degrades,
                           std::uint64_t fault_seed) {
  return parse_fault_spec(fail_links, fail_nodes, degrade_links,
                          random_link_faults, random_node_faults,
                          random_degrades, fault_seed, "", "");
}

FaultSpec parse_fault_spec(const std::string& fail_links,
                           const std::string& fail_nodes,
                           const std::string& degrade_links,
                           std::int64_t random_link_faults,
                           std::int64_t random_node_faults,
                           std::int64_t random_degrades,
                           std::uint64_t fault_seed,
                           const std::string& restore_nodes,
                           const std::string& restore_links) {
  TOPOMAP_REQUIRE(random_link_faults >= 0,
                  "--random-link-faults must be >= 0");
  TOPOMAP_REQUIRE(random_node_faults >= 0,
                  "--random-node-faults must be >= 0");
  TOPOMAP_REQUIRE(random_degrades >= 0, "--random-degrades must be >= 0");

  FaultSpec spec;
  spec.random_link_faults = static_cast<int>(random_link_faults);
  spec.random_node_faults = static_cast<int>(random_node_faults);
  spec.random_degrades = static_cast<int>(random_degrades);
  spec.seed = fault_seed;

  std::set<std::pair<int, int>> seen_links;
  if (!fail_links.empty()) {
    for (const std::string& pair : split(fail_links, ',')) {
      const auto ends = split(pair, ':');
      TOPOMAP_REQUIRE(ends.size() == 2,
                      "--fail-link entries must look like a:b, got '" + pair +
                          "'");
      const int a = parse_int(ends[0], "--fail-link");
      const int b = parse_int(ends[1], "--fail-link");
      TOPOMAP_REQUIRE(seen_links.insert(norm_link(a, b)).second,
                      "--fail-link lists link " + pair + " twice");
      spec.fail_links.emplace_back(a, b);
    }
  }

  if (!fail_nodes.empty()) {
    std::set<int> seen_nodes;
    for (const std::string& node : split(fail_nodes, ',')) {
      const int p = parse_int(node, "--fail-node");
      TOPOMAP_REQUIRE(seen_nodes.insert(p).second,
                      "--fail-node lists processor " + node + " twice");
      spec.fail_nodes.push_back(p);
    }
  }

  if (!degrade_links.empty()) {
    std::set<std::pair<int, int>> seen_degrades;
    for (const std::string& entry : split(degrade_links, ',')) {
      const auto fields = split(entry, ':');
      TOPOMAP_REQUIRE(fields.size() == 3,
                      "--degrade-link entries must look like a:b:health, "
                      "got '" + entry + "'");
      LinkDegradeSpec d;
      d.a = parse_int(fields[0], "--degrade-link");
      d.b = parse_int(fields[1], "--degrade-link");
      d.health = parse_double(fields[2], "--degrade-link");
      TOPOMAP_REQUIRE(d.health >= 0.0 && d.health <= 1.0,
                      "--degrade-link health must be in [0, 1], got '" +
                          fields[2] + "'");
      const auto key = norm_link(d.a, d.b);
      TOPOMAP_REQUIRE(seen_degrades.insert(key).second,
                      "--degrade-link lists link " + fields[0] + ":" +
                          fields[1] + " twice");
      TOPOMAP_REQUIRE(seen_links.count(key) == 0,
                      "link " + fields[0] + ":" + fields[1] +
                          " appears in both --fail-link and --degrade-link");
      spec.degrades.push_back(d);
    }
  }

  if (!restore_nodes.empty()) {
    std::set<std::pair<int, int>> seen;  // (processor, epoch)
    for (const std::string& entry : split(restore_nodes, ',')) {
      const auto [target, epoch] = parse_timed(entry, "--restore-node");
      NodeRestoreSpec r;
      r.p = parse_int(target, "--restore-node");
      r.epoch = epoch;
      TOPOMAP_REQUIRE(seen.insert({r.p, r.epoch}).second,
                      "--restore-node lists '" + entry + "' twice");
      TOPOMAP_REQUIRE(
          r.epoch > 0 ||
              std::find(spec.fail_nodes.begin(), spec.fail_nodes.end(),
                        r.p) == spec.fail_nodes.end(),
          "processor " + target + " appears in both --fail-node and an "
          "epoch-0 --restore-node; give the restore an @epoch");
      spec.restore_nodes.push_back(r);
    }
  }

  if (!restore_links.empty()) {
    std::set<std::pair<std::pair<int, int>, int>> seen;  // (link, epoch)
    for (const std::string& entry : split(restore_links, ',')) {
      const auto [target, epoch] = parse_timed(entry, "--restore-link");
      const auto ends = split(target, ':');
      TOPOMAP_REQUIRE(ends.size() == 2,
                      "--restore-link entries must look like a:b[@epoch], "
                      "got '" + entry + "'");
      LinkRestoreSpec r;
      r.a = parse_int(ends[0], "--restore-link");
      r.b = parse_int(ends[1], "--restore-link");
      r.epoch = epoch;
      const auto key = norm_link(r.a, r.b);
      TOPOMAP_REQUIRE(seen.insert({key, r.epoch}).second,
                      "--restore-link lists '" + entry + "' twice");
      TOPOMAP_REQUIRE(r.epoch > 0 || seen_links.count(key) == 0,
                      "link " + target + " appears in both --fail-link and "
                      "an epoch-0 --restore-link; give the restore an "
                      "@epoch");
      spec.restore_links.push_back(r);
    }
  }
  return spec;
}

std::shared_ptr<FaultOverlay> build_fault_overlay(const TopologyPtr& base,
                                                  const FaultSpec& spec) {
  TOPOMAP_REQUIRE(base != nullptr, "build_fault_overlay: null base topology");
  if (spec.empty()) return nullptr;
  TOPOMAP_REQUIRE(!spec.has_timed_restores(),
                  "timed restores (@epoch > 0) describe a recovery timeline; "
                  "this command applies one static fault set — use the chaos "
                  "subcommand or drop the @epoch");

  auto overlay = std::make_shared<FaultOverlay>(base);
  for (const auto& [a, b] : spec.fail_links) overlay->fail_link(a, b);
  for (int p : spec.fail_nodes) overlay->fail_node(p);
  for (const LinkDegradeSpec& d : spec.degrades) {
    // Health 0 is the hard-fault limit of the soft-fault model.
    if (d.health == 0.0)
      overlay->fail_link(d.a, d.b);
    else
      overlay->degrade_link(d.a, d.b, d.health);
  }

  Rng fault_rng(spec.seed);
  const int p = base->size();
  for (int k = 0; k < spec.random_node_faults; ++k) {
    // Draw until an alive processor comes up (kills are idempotent, so a
    // bounded retry keeps the fault count exact).
    for (int tries = 0; tries < 64 * p; ++tries) {
      const int cand =
          static_cast<int>(fault_rng.uniform(static_cast<std::uint64_t>(p)));
      if (!overlay->is_alive(cand)) continue;
      overlay->fail_node(cand);
      break;
    }
  }
  for (int k = 0; k < spec.random_link_faults; ++k) {
    for (int tries = 0; tries < 64 * p; ++tries) {
      const int a =
          static_cast<int>(fault_rng.uniform(static_cast<std::uint64_t>(p)));
      if (!overlay->is_alive(a)) continue;
      const auto nb = overlay->neighbors(a);
      if (nb.empty()) continue;
      const int b = nb[static_cast<std::size_t>(
          fault_rng.uniform(static_cast<std::uint64_t>(nb.size())))];
      overlay->fail_link(a, b);
      break;
    }
  }
  for (int k = 0; k < spec.random_degrades; ++k) {
    for (int tries = 0; tries < 64 * p; ++tries) {
      const int a =
          static_cast<int>(fault_rng.uniform(static_cast<std::uint64_t>(p)));
      if (!overlay->is_alive(a)) continue;
      const auto nb = overlay->neighbors(a);
      if (nb.empty()) continue;
      const int b = nb[static_cast<std::size_t>(
          fault_rng.uniform(static_cast<std::uint64_t>(nb.size())))];
      if (overlay->link_health(a, b) < 1.0) continue;  // keep count exact
      overlay->degrade_link(a, b, fault_rng.uniform_double(0.1, 0.9));
      break;
    }
  }

  // Epoch-0 recoveries close the static set: failures first, then repairs,
  // so "--fail-node=3,4 --restore-node=3" leaves exactly processor 4 dead.
  for (const NodeRestoreSpec& r : spec.restore_nodes)
    overlay->restore_node(r.p);
  for (const LinkRestoreSpec& r : spec.restore_links)
    overlay->restore_link(r.a, r.b);
  return overlay;
}

}  // namespace topomap::topo
