#include "topo/fault_spec.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace topomap::topo {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

/// Strict integer parse: the whole token must be one base-10 integer.
int parse_int(const std::string& token, const std::string& what) {
  std::size_t pos = 0;
  int value = 0;
  try {
    value = std::stoi(token, &pos);
  } catch (const std::exception&) {
    throw precondition_error(what + ": '" + token + "' is not an integer");
  }
  TOPOMAP_REQUIRE(pos == token.size(),
                  what + ": trailing characters in '" + token + "'");
  return value;
}

/// Strict double parse: the whole token must be one number.
double parse_double(const std::string& token, const std::string& what) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw precondition_error(what + ": '" + token + "' is not a number");
  }
  TOPOMAP_REQUIRE(pos == token.size(),
                  what + ": trailing characters in '" + token + "'");
  return value;
}

std::pair<int, int> norm_link(int a, int b) {
  return a < b ? std::pair<int, int>{a, b} : std::pair<int, int>{b, a};
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& fail_links,
                           const std::string& fail_nodes,
                           const std::string& degrade_links,
                           std::int64_t random_link_faults,
                           std::int64_t random_node_faults,
                           std::int64_t random_degrades,
                           std::uint64_t fault_seed) {
  TOPOMAP_REQUIRE(random_link_faults >= 0,
                  "--random-link-faults must be >= 0");
  TOPOMAP_REQUIRE(random_node_faults >= 0,
                  "--random-node-faults must be >= 0");
  TOPOMAP_REQUIRE(random_degrades >= 0, "--random-degrades must be >= 0");

  FaultSpec spec;
  spec.random_link_faults = static_cast<int>(random_link_faults);
  spec.random_node_faults = static_cast<int>(random_node_faults);
  spec.random_degrades = static_cast<int>(random_degrades);
  spec.seed = fault_seed;

  std::set<std::pair<int, int>> seen_links;
  if (!fail_links.empty()) {
    for (const std::string& pair : split(fail_links, ',')) {
      const auto ends = split(pair, ':');
      TOPOMAP_REQUIRE(ends.size() == 2,
                      "--fail-link entries must look like a:b, got '" + pair +
                          "'");
      const int a = parse_int(ends[0], "--fail-link");
      const int b = parse_int(ends[1], "--fail-link");
      TOPOMAP_REQUIRE(seen_links.insert(norm_link(a, b)).second,
                      "--fail-link lists link " + pair + " twice");
      spec.fail_links.emplace_back(a, b);
    }
  }

  if (!fail_nodes.empty()) {
    std::set<int> seen_nodes;
    for (const std::string& node : split(fail_nodes, ',')) {
      const int p = parse_int(node, "--fail-node");
      TOPOMAP_REQUIRE(seen_nodes.insert(p).second,
                      "--fail-node lists processor " + node + " twice");
      spec.fail_nodes.push_back(p);
    }
  }

  if (!degrade_links.empty()) {
    std::set<std::pair<int, int>> seen_degrades;
    for (const std::string& entry : split(degrade_links, ',')) {
      const auto fields = split(entry, ':');
      TOPOMAP_REQUIRE(fields.size() == 3,
                      "--degrade-link entries must look like a:b:health, "
                      "got '" + entry + "'");
      LinkDegradeSpec d;
      d.a = parse_int(fields[0], "--degrade-link");
      d.b = parse_int(fields[1], "--degrade-link");
      d.health = parse_double(fields[2], "--degrade-link");
      TOPOMAP_REQUIRE(d.health >= 0.0 && d.health <= 1.0,
                      "--degrade-link health must be in [0, 1], got '" +
                          fields[2] + "'");
      const auto key = norm_link(d.a, d.b);
      TOPOMAP_REQUIRE(seen_degrades.insert(key).second,
                      "--degrade-link lists link " + fields[0] + ":" +
                          fields[1] + " twice");
      TOPOMAP_REQUIRE(seen_links.count(key) == 0,
                      "link " + fields[0] + ":" + fields[1] +
                          " appears in both --fail-link and --degrade-link");
      spec.degrades.push_back(d);
    }
  }
  return spec;
}

std::shared_ptr<FaultOverlay> build_fault_overlay(const TopologyPtr& base,
                                                  const FaultSpec& spec) {
  TOPOMAP_REQUIRE(base != nullptr, "build_fault_overlay: null base topology");
  if (spec.empty()) return nullptr;

  auto overlay = std::make_shared<FaultOverlay>(base);
  for (const auto& [a, b] : spec.fail_links) overlay->fail_link(a, b);
  for (int p : spec.fail_nodes) overlay->fail_node(p);
  for (const LinkDegradeSpec& d : spec.degrades) {
    // Health 0 is the hard-fault limit of the soft-fault model.
    if (d.health == 0.0)
      overlay->fail_link(d.a, d.b);
    else
      overlay->degrade_link(d.a, d.b, d.health);
  }

  Rng fault_rng(spec.seed);
  const int p = base->size();
  for (int k = 0; k < spec.random_node_faults; ++k) {
    // Draw until an alive processor comes up (kills are idempotent, so a
    // bounded retry keeps the fault count exact).
    for (int tries = 0; tries < 64 * p; ++tries) {
      const int cand =
          static_cast<int>(fault_rng.uniform(static_cast<std::uint64_t>(p)));
      if (!overlay->is_alive(cand)) continue;
      overlay->fail_node(cand);
      break;
    }
  }
  for (int k = 0; k < spec.random_link_faults; ++k) {
    for (int tries = 0; tries < 64 * p; ++tries) {
      const int a =
          static_cast<int>(fault_rng.uniform(static_cast<std::uint64_t>(p)));
      if (!overlay->is_alive(a)) continue;
      const auto nb = overlay->neighbors(a);
      if (nb.empty()) continue;
      const int b = nb[static_cast<std::size_t>(
          fault_rng.uniform(static_cast<std::uint64_t>(nb.size())))];
      overlay->fail_link(a, b);
      break;
    }
  }
  for (int k = 0; k < spec.random_degrades; ++k) {
    for (int tries = 0; tries < 64 * p; ++tries) {
      const int a =
          static_cast<int>(fault_rng.uniform(static_cast<std::uint64_t>(p)));
      if (!overlay->is_alive(a)) continue;
      const auto nb = overlay->neighbors(a);
      if (nb.empty()) continue;
      const int b = nb[static_cast<std::size_t>(
          fault_rng.uniform(static_cast<std::uint64_t>(nb.size())))];
      if (overlay->link_health(a, b) < 1.0) continue;  // keep count exact
      overlay->degrade_link(a, b, fault_rng.uniform_double(0.1, 0.9));
      break;
    }
  }
  return overlay;
}

}  // namespace topomap::topo
