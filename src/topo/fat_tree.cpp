#include "topo/fat_tree.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace topomap::topo {

FatTree::FatTree(int arity, int levels) : arity_(arity), levels_(levels) {
  TOPOMAP_REQUIRE(arity >= 2, "fat-tree arity must be >= 2");
  TOPOMAP_REQUIRE(levels >= 1, "fat-tree needs at least one level");
  double sz = std::pow(static_cast<double>(arity), levels);
  TOPOMAP_REQUIRE(sz <= (1 << 24), "fat-tree too large");
  size_ = 1;
  for (int i = 0; i < levels; ++i) size_ *= arity;
}

int FatTree::distance(int a, int b) const {
  check_node(a);
  check_node(b);
  if (a == b) return 0;
  // Find the number of *trailing-to-leading* base-k digits that agree,
  // starting from the most significant digit.  Equivalently: divide both
  // addresses by k until they land under the same switch subtree.
  int up = 0;
  while (a != b) {
    a /= arity_;
    b /= arity_;
    ++up;
  }
  return 2 * up;
}

std::vector<int> FatTree::neighbors(int p) const {
  check_node(p);
  throw precondition_error(
      "FatTree::neighbors: fat-tree links attach leaves to switches, which "
      "are not processors, so no processor-level adjacency can realise the "
      "2*(L-lcp) switch-hop distances (leaves under one edge switch are "
      "already 2 hops apart); use a grid or graph topology for "
      "adjacency-level experiments");
}

std::string FatTree::name() const {
  std::ostringstream os;
  os << "fattree(k=" << arity_ << ",L=" << levels_ << ')';
  return os.str();
}

double FatTree::mean_distance_from(int) const {
  return mean_pairwise_distance();  // leaf-transitive: same from every node
}

double FatTree::mean_pairwise_distance() const {
  // E[dist] = 2 * sum_{j=1}^{L} P(lowest common switch is at level >= j)
  //         = 2 * sum_{j=1}^{L} (1 - k^{-j}) ... computed directly instead:
  // P(lcp >= j) = k^{-j}; E[lcp] = sum_{j=1}^{L} k^{-j}.
  double e_lcp = 0.0, pow_k = 1.0;
  for (int j = 1; j <= levels_; ++j) {
    pow_k *= arity_;
    e_lcp += 1.0 / pow_k;
  }
  return 2.0 * (static_cast<double>(levels_) - e_lcp);
}

std::vector<int> FatTree::route(int, int) const {
  throw precondition_error(
      "FatTree::route: fat-tree paths traverse switches, which are not "
      "processors; use a grid topology for link-level experiments");
}

}  // namespace topomap::topo
