#include "topo/graph_topology.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>

#include "support/error.hpp"

namespace topomap::topo {

namespace {
constexpr std::uint16_t kUnreached = std::numeric_limits<std::uint16_t>::max();
}  // namespace

GraphTopology::GraphTopology(int num_nodes,
                             const std::vector<std::pair<int, int>>& edges,
                             std::string label)
    : num_nodes_(num_nodes), label_(std::move(label)) {
  TOPOMAP_REQUIRE(num_nodes >= 1, "graph topology needs >= 1 node");
  TOPOMAP_REQUIRE(num_nodes <= 20000,
                  "graph topology too large for dense distance matrix");
  adj_.resize(static_cast<std::size_t>(num_nodes));
  std::set<std::pair<int, int>> seen;
  for (auto [a, b] : edges) {
    TOPOMAP_REQUIRE(a >= 0 && a < num_nodes && b >= 0 && b < num_nodes,
                    "edge endpoint out of range");
    TOPOMAP_REQUIRE(a != b, "self-loop links are not allowed");
    auto key = std::minmax(a, b);
    TOPOMAP_REQUIRE(seen.insert(key).second, "duplicate link");
    adj_[static_cast<std::size_t>(a)].push_back(b);
    adj_[static_cast<std::size_t>(b)].push_back(a);
  }
  for (auto& nbrs : adj_) std::sort(nbrs.begin(), nbrs.end());
  build_distances();
}

GraphTopology GraphTopology::from_topology(const Topology& other) {
  std::vector<std::pair<int, int>> edges;
  for (int p = 0; p < other.size(); ++p)
    for (int q : other.neighbors(p))
      if (p < q) edges.emplace_back(p, q);
  return GraphTopology(other.size(), edges, "graph[" + other.name() + "]");
}

void GraphTopology::build_distances() {
  const auto n = static_cast<std::size_t>(num_nodes_);
  dist_.assign(n * n, kUnreached);
  mean_dist_.assign(n, 0.0);
  std::deque<int> frontier;
  for (std::size_t src = 0; src < n; ++src) {
    auto* row = &dist_[src * n];
    row[src] = 0;
    frontier.clear();
    frontier.push_back(static_cast<int>(src));
    long long total = 0;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop_front();
      const int du = row[static_cast<std::size_t>(u)];
      for (int v : adj_[static_cast<std::size_t>(u)]) {
        if (row[static_cast<std::size_t>(v)] != kUnreached) continue;
        row[static_cast<std::size_t>(v)] = static_cast<std::uint16_t>(du + 1);
        total += du + 1;
        diameter_ = std::max(diameter_, du + 1);
        frontier.push_back(v);
      }
    }
    for (std::size_t q = 0; q < n; ++q)
      TOPOMAP_REQUIRE(row[q] != kUnreached, "topology graph is disconnected");
    mean_dist_[src] = static_cast<double>(total) / static_cast<double>(n);
  }
}

int GraphTopology::distance(int a, int b) const {
  check_node(a);
  check_node(b);
  return dist_[static_cast<std::size_t>(a) *
                   static_cast<std::size_t>(num_nodes_) +
               static_cast<std::size_t>(b)];
}

std::vector<int> GraphTopology::neighbors(int p) const {
  check_node(p);
  return adj_[static_cast<std::size_t>(p)];
}

double GraphTopology::mean_distance_from(int p) const {
  check_node(p);
  return mean_dist_[static_cast<std::size_t>(p)];
}

void GraphTopology::write_distance_row(int p, std::uint16_t* out) const {
  check_node(p);
  const auto n = static_cast<std::size_t>(num_nodes_);
  std::copy_n(dist_.data() + static_cast<std::size_t>(p) * n, n, out);
}

}  // namespace topomap::topo
