#include "topo/distance_cache.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "topo/fault_overlay.hpp"

namespace topomap::topo {

namespace {
constexpr std::uint16_t kUnreachable = FaultOverlay::kUnreachable;
}  // namespace

DistanceCache::DistanceCache(const Topology& topo) : n_(topo.size()) {
  TOPOMAP_REQUIRE(n_ >= 1, "distance cache needs >= 1 processor");
  TOPOMAP_REQUIRE(n_ <= 20000,
                  "topology too large for a dense distance matrix");
  const auto un = static_cast<std::size_t>(n_);
  dist_.resize(un * un);
  mean_dist_.resize(un);
  row_sum_.resize(un);
  row_reach_.resize(un);
  row_max_.resize(un);
  rebuild_all(topo);
}

void DistanceCache::rebuild_all(const Topology& topo) {
  OBS_SPAN("distcache/rebuild_all");
  OBS_COUNTER_ADD("distcache/builds", 1);
  OBS_COUNTER_ADD("distcache/rows_built", n_);
  scale_ = topo.distance_scale();
  const auto un = static_cast<std::size_t>(n_);
  // Rows are independent: fill in parallel, reduce per-chunk diameters in
  // ascending chunk order (max is order-free; kept ordered for form).
  const int grain = 16;
  const int chunks = support::parallel_chunk_count(n_, grain);
  std::vector<int> chunk_max(static_cast<std::size_t>(chunks), 0);
  support::parallel_for_chunks(n_, grain, [&](int chunk, int begin, int end) {
    int mx = 0;
    for (int p = begin; p < end; ++p) {
      std::uint16_t* row = dist_.data() + static_cast<std::size_t>(p) * un;
      topo.write_distance_row(p, row);
      mean_dist_[static_cast<std::size_t>(p)] = topo.mean_distance_from(p);
      recompute_row_stats(p);
      mx = std::max(mx, row_max_[static_cast<std::size_t>(p)]);
    }
    chunk_max[static_cast<std::size_t>(chunk)] = mx;
  });
  diameter_ = 0;
  for (int c = 0; c < chunks; ++c)
    diameter_ = std::max(diameter_, chunk_max[static_cast<std::size_t>(c)]);
}

bool DistanceCache::rescale_if_needed(const FaultOverlay& overlay) {
  if (overlay.distance_scale() == scale_) return false;
  OBS_COUNTER_ADD("distcache/rescale_rebuilds", 1);
  // The plane's units changed (first soft fault engaged the weighted
  // metric, or the last degraded link vanished): every finite entry
  // re-expresses, so an all-rows rebuild is the incremental repair.  No
  // aggregate-based mean refresh afterwards — rebuild_all stores the
  // overlay's own mean values, exactly like a fresh build.
  rebuild_all(overlay);
  return true;
}

void DistanceCache::recompute_rows(const FaultOverlay& overlay,
                                   const std::vector<int>& rows) {
  const int m = static_cast<int>(rows.size());
  OBS_COUNTER_ADD("distcache/repairs", 1);
  OBS_COUNTER_ADD("distcache/rows_repaired", m);
  const auto un = static_cast<std::size_t>(n_);
  support::parallel_for(m, 4, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      const int s = rows[static_cast<std::size_t>(i)];
      overlay.write_distance_row(s, dist_.data() +
                                        static_cast<std::size_t>(s) * un);
      recompute_row_stats(s);
    }
  });
}

void DistanceCache::recompute_row_stats(int p) {
  const std::uint16_t* r = row(p);
  long long sum = 0;
  int reach = 0;
  int mx = 0;
  for (int q = 0; q < n_; ++q) {
    const std::uint16_t d = r[q];
    if (d == kUnreachable) continue;
    sum += d;
    ++reach;
    mx = std::max(mx, static_cast<int>(d));
  }
  row_sum_[static_cast<std::size_t>(p)] = sum;
  row_reach_[static_cast<std::size_t>(p)] = reach;
  row_max_[static_cast<std::size_t>(p)] = mx;
}

void DistanceCache::refresh_means_and_diameter() {
  // A fresh build on the faulted overlay stores
  // FaultOverlay::mean_distance_from = row_sum / row_reach (one integer sum,
  // one division), so recomputing every mean from the exact aggregates makes
  // the repaired cache bit-identical to that rebuild — including rows whose
  // matrix entries did not change but whose stored mean predates the first
  // fault (closed-form base means).
  for (int p = 0; p < n_; ++p) {
    const auto up = static_cast<std::size_t>(p);
    mean_dist_[up] = row_reach_[up] > 0
                         ? static_cast<double>(row_sum_[up]) /
                               static_cast<double>(row_reach_[up])
                         : 0.0;
  }
  diameter_ = 0;
  for (int p = 0; p < n_; ++p)
    diameter_ = std::max(diameter_, row_max_[static_cast<std::size_t>(p)]);
}

int DistanceCache::repair_link_failure(const FaultOverlay& overlay, int a,
                                       int b, int prev_cost) {
  TOPOMAP_REQUIRE(overlay.size() == n_,
                  "repair_link_failure: overlay size mismatch");
  TOPOMAP_REQUIRE(a >= 0 && a < n_ && b >= 0 && b < n_ && a != b,
                  "repair_link_failure: bad link endpoints");
  TOPOMAP_REQUIRE(overlay.link_failed(a, b),
                  "repair_link_failure: link " + std::to_string(a) + "-" +
                      std::to_string(b) + " is not failed in the overlay");
  if (rescale_if_needed(overlay)) return n_;
  // The cost the link carried while alive, in this plane's units (a healthy
  // hop by default).  A link of cost c lies on a shortest path from s iff
  // d(s,a) and d(s,b) are both finite and differ by exactly c — the BFS
  // level property, generalized to the weighted plane.  Rows failing that
  // test cannot change; the test reads two cached values per row.
  const int cost = prev_cost > 0 ? prev_cost : scale_;
  std::vector<int> affected;
  for (int s = 0; s < n_; ++s) {
    const std::uint16_t* r = row(s);
    const std::uint16_t da = r[a];
    const std::uint16_t db = r[b];
    if (da == kUnreachable || db == kUnreachable) continue;
    const int diff = da > db ? da - db : db - da;
    if (diff == cost) affected.push_back(s);
  }
  recompute_rows(overlay, affected);
  refresh_means_and_diameter();
  return static_cast<int>(affected.size());
}

int DistanceCache::repair_node_failure(const FaultOverlay& overlay, int p) {
  TOPOMAP_REQUIRE(overlay.size() == n_,
                  "repair_node_failure: overlay size mismatch");
  TOPOMAP_REQUIRE(p >= 0 && p < n_, "repair_node_failure: bad processor id");
  TOPOMAP_REQUIRE(overlay.node_failed(p),
                  "repair_node_failure: processor " + std::to_string(p) +
                      " is not failed in the overlay");
  if (rescale_if_needed(overlay)) return n_;
  const auto un = static_cast<std::size_t>(n_);
  const auto up = static_cast<std::size_t>(p);

  // p's surviving DAG-successor candidates: its base neighbors that are
  // still alive over still-present links, with the cost each link carries
  // in this plane (the overlay retains health records of links into dead
  // processors precisely so this probe sees pre-death costs).  Empty for
  // distance-model bases (fat-tree), where removing a leaf never perturbs
  // survivor distances.
  std::vector<int> succ;
  std::vector<int> succ_cost;
  if (overlay.base().has_adjacency()) {
    for (int q : overlay.base().neighbors(p)) {
      if (!overlay.is_alive(q) || overlay.link_failed(p, q)) continue;
      succ.push_back(q);
      succ_cost.push_back(overlay.link_cost(p, q));
    }
  }

  std::vector<int> recompute;  // rows where p was interior to the SP DAG
  for (int s = 0; s < n_; ++s) {
    if (s == p) continue;
    std::uint16_t* r = dist_.data() + static_cast<std::size_t>(s) * un;
    const std::uint16_t dp = r[up];
    if (dp == kUnreachable) continue;  // p was never reachable: row unchanged
    bool interior = false;
    for (std::size_t i = 0; i < succ.size(); ++i) {
      const int q = succ[i];
      if (static_cast<int>(r[q]) == static_cast<int>(dp) + succ_cost[i]) {
        interior = true;
        break;
      }
    }
    if (interior) {
      recompute.push_back(s);
    } else {
      // p was a leaf of s's shortest-path DAG: no survivor's distance ran
      // through it, so only s's entry for p goes away.
      r[up] = kUnreachable;
      const auto us = static_cast<std::size_t>(s);
      row_sum_[us] -= dp;
      row_reach_[us] -= 1;
      if (static_cast<int>(dp) == row_max_[us]) recompute_row_stats(s);
    }
  }

  // p's own row: dead source, everything unreachable.
  std::fill(dist_.begin() + up * un, dist_.begin() + (up + 1) * un,
            kUnreachable);
  row_sum_[up] = 0;
  row_reach_[up] = 0;
  row_max_[up] = 0;

  recompute_rows(overlay, recompute);
  refresh_means_and_diameter();
  return static_cast<int>(recompute.size());
}

int DistanceCache::repair_link_degrade(const FaultOverlay& overlay, int a,
                                       int b, int prev_cost) {
  TOPOMAP_REQUIRE(overlay.size() == n_,
                  "repair_link_degrade: overlay size mismatch");
  TOPOMAP_REQUIRE(a >= 0 && a < n_ && b >= 0 && b < n_ && a != b,
                  "repair_link_degrade: bad link endpoints");
  TOPOMAP_REQUIRE(!overlay.link_failed(a, b),
                  "repair_link_degrade: link " + std::to_string(a) + "-" +
                      std::to_string(b) +
                      " has hard-failed; use repair_link_failure");
  TOPOMAP_REQUIRE(prev_cost > 0, "repair_link_degrade: prev_cost must be the "
                                 "value degrade_link returned");
  if (rescale_if_needed(overlay)) return n_;
  const int new_cost = overlay.link_cost(a, b);
  if (new_cost == prev_cost) return 0;  // quantized to the same cost: no-op
  // Affected-row oracle, O(1) per row from the cached plane:
  //  * cost increase — only rows that had the link on a shortest path
  //    (|d(s,a) - d(s,b)| == prev_cost) can worsen;
  //  * cost decrease — only rows where the cheaper link now undercuts the
  //    stored metric (|d(s,a) - d(s,b)| > new_cost; equality would only add
  //    an alternative equal-cost path, leaving distances unchanged).
  std::vector<int> affected;
  for (int s = 0; s < n_; ++s) {
    const std::uint16_t* r = row(s);
    const std::uint16_t da = r[a];
    const std::uint16_t db = r[b];
    if (da == kUnreachable || db == kUnreachable) continue;
    const int diff = da > db ? da - db : db - da;
    const bool hit = new_cost > prev_cost ? diff == prev_cost
                                          : diff > new_cost;
    if (hit) affected.push_back(s);
  }
  recompute_rows(overlay, affected);
  refresh_means_and_diameter();
  return static_cast<int>(affected.size());
}

int DistanceCache::repair_node_restore(const FaultOverlay& overlay, int p) {
  TOPOMAP_REQUIRE(overlay.size() == n_,
                  "repair_node_restore: overlay size mismatch");
  TOPOMAP_REQUIRE(p >= 0 && p < n_, "repair_node_restore: bad processor id");
  TOPOMAP_REQUIRE(overlay.is_alive(p),
                  "repair_node_restore: processor " + std::to_string(p) +
                      " is still failed in the overlay");
  if (rescale_if_needed(overlay)) return n_;
  if (!overlay.has_faults()) {
    // The restore returned the overlay to pristine: a fresh build stores the
    // base topology's closed-form means, which the integer aggregates cannot
    // reproduce bit-for-bit — rebuild instead of patching.
    rebuild_all(overlay);
    return n_;
  }
  OBS_COUNTER_ADD("distcache/repairs", 1);
  const auto un = static_cast<std::size_t>(n_);
  const auto up = static_cast<std::size_t>(p);

  // One fresh row for the revived processor; every other change derives
  // from it: a path gained by the restore crosses p (at most once — costs
  // are positive), so new_d(s, q) = min(old, d(p, s) + d(p, q)) exactly.
  std::vector<std::uint16_t> row_p(un);
  overlay.write_distance_row(p, row_p.data());
  std::copy(row_p.begin(), row_p.end(), dist_.begin() + up * un);
  recompute_row_stats(p);

  const int grain = 16;
  const int chunks = support::parallel_chunk_count(n_, grain);
  std::vector<int> chunk_changed(static_cast<std::size_t>(chunks), 0);
  support::parallel_for_chunks(n_, grain, [&](int chunk, int begin, int end) {
    int rows_changed = 0;
    for (int s = begin; s < end; ++s) {
      if (s == p) continue;
      const int dp = row_p[static_cast<std::size_t>(s)];
      if (dp == kUnreachable) continue;  // s cannot reach p: row unchanged
      std::uint16_t* r = dist_.data() + static_cast<std::size_t>(s) * un;
      bool changed = false;
      for (int q = 0; q < n_; ++q) {
        const int dq = row_p[static_cast<std::size_t>(q)];
        if (dq == kUnreachable) continue;
        const int cand = dp + dq;
        const int old = r[q];
        if (cand < old) {
          r[q] = static_cast<std::uint16_t>(cand);
          changed = true;
        } else if (old == kUnreachable) {
          TOPOMAP_REQUIRE(false,
                          "repair_node_restore: path cost overflows the "
                          "fixed-point uint16 plane");
        }
      }
      if (changed) {
        recompute_row_stats(s);
        ++rows_changed;
      }
    }
    chunk_changed[static_cast<std::size_t>(chunk)] = rows_changed;
  });
  int total = 0;
  for (int c : chunk_changed) total += c;
  OBS_COUNTER_ADD("distcache/rows_repaired", total + 1);
  refresh_means_and_diameter();
  return total;
}

int DistanceCache::repair_link_restore(const FaultOverlay& overlay, int a,
                                       int b, int cost) {
  TOPOMAP_REQUIRE(overlay.size() == n_,
                  "repair_link_restore: overlay size mismatch");
  TOPOMAP_REQUIRE(a >= 0 && a < n_ && b >= 0 && b < n_ && a != b,
                  "repair_link_restore: bad link endpoints");
  TOPOMAP_REQUIRE(!overlay.link_failed(a, b),
                  "repair_link_restore: link " + std::to_string(a) + "-" +
                      std::to_string(b) + " is still failed in the overlay");
  TOPOMAP_REQUIRE(cost > 0, "repair_link_restore: cost must be the value "
                            "restore_link returned");
  if (rescale_if_needed(overlay)) return n_;
  // A restored link with a dead endpoint is inert until the processor
  // returns; no distance can change.
  if (!overlay.is_alive(a) || !overlay.is_alive(b)) return 0;
  if (!overlay.has_faults()) {
    rebuild_all(overlay);  // pristine again: see repair_node_restore
    return n_;
  }
  OBS_COUNTER_ADD("distcache/repairs", 1);
  const auto un = static_cast<std::size_t>(n_);

  // Pre-restore endpoint rows: a path gained by the restore crosses the new
  // edge exactly once (positive costs), so with the *old* metric
  //   new_d(s, q) = min(old, d(s,a) + c + d(b,q), d(s,b) + c + d(a,q)).
  // Affected-row oracle from two cached reads: rows with both endpoints
  // reachable and |d(s,a) - d(s,b)| <= c gain nothing (triangle inequality
  // makes both candidates >= old); rows reaching exactly one endpoint may
  // gain entries across the edge.
  const std::vector<std::uint16_t> old_ra(row(a), row(a) + n_);
  const std::vector<std::uint16_t> old_rb(row(b), row(b) + n_);

  const int grain = 16;
  const int chunks = support::parallel_chunk_count(n_, grain);
  std::vector<int> chunk_changed(static_cast<std::size_t>(chunks), 0);
  support::parallel_for_chunks(n_, grain, [&](int chunk, int begin, int end) {
    int rows_changed = 0;
    for (int s = begin; s < end; ++s) {
      const int da = old_ra[static_cast<std::size_t>(s)];
      const int db = old_rb[static_cast<std::size_t>(s)];
      const bool fa = da != kUnreachable;
      const bool fb = db != kUnreachable;
      if (!fa && !fb) continue;  // s reaches neither endpoint
      if (fa && fb) {
        const int diff = da > db ? da - db : db - da;
        if (diff <= cost) continue;
      }
      std::uint16_t* r = dist_.data() + static_cast<std::size_t>(s) * un;
      bool changed = false;
      for (int q = 0; q < n_; ++q) {
        int cand = kUnreachable;
        const int qa = old_ra[static_cast<std::size_t>(q)];
        const int qb = old_rb[static_cast<std::size_t>(q)];
        if (fa && qb != kUnreachable) cand = da + cost + qb;
        if (fb && qa != kUnreachable) cand = std::min(cand, db + cost + qa);
        const int old = r[q];
        if (cand < old) {
          r[q] = static_cast<std::uint16_t>(cand);
          changed = true;
        } else if (old == kUnreachable && cand != kUnreachable &&
                   cand > static_cast<int>(FaultOverlay::kMaxFiniteDistance)) {
          TOPOMAP_REQUIRE(false,
                          "repair_link_restore: path cost overflows the "
                          "fixed-point uint16 plane");
        }
      }
      if (changed) {
        recompute_row_stats(s);
        ++rows_changed;
      }
    }
    chunk_changed[static_cast<std::size_t>(chunk)] = rows_changed;
  });
  int total = 0;
  for (int c : chunk_changed) total += c;
  OBS_COUNTER_ADD("distcache/rows_repaired", total);
  refresh_means_and_diameter();
  return total;
}

void DistanceCache::rebuild(const Topology& topo) {
  TOPOMAP_REQUIRE(topo.size() == n_, "rebuild: topology size mismatch");
  rebuild_all(topo);
}

}  // namespace topomap::topo
