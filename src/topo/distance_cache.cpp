#include "topo/distance_cache.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/parallel.hpp"
#include "topo/fault_overlay.hpp"

namespace topomap::topo {

namespace {
constexpr std::uint16_t kUnreachable = FaultOverlay::kUnreachable;
}  // namespace

DistanceCache::DistanceCache(const Topology& topo) : n_(topo.size()) {
  TOPOMAP_REQUIRE(n_ >= 1, "distance cache needs >= 1 processor");
  TOPOMAP_REQUIRE(n_ <= 20000,
                  "topology too large for a dense distance matrix");
  const auto un = static_cast<std::size_t>(n_);
  dist_.resize(un * un);
  mean_dist_.resize(un);
  row_sum_.resize(un);
  row_reach_.resize(un);
  row_max_.resize(un);

  // Rows are independent: fill in parallel, reduce per-chunk diameters in
  // ascending chunk order (max is order-free; kept ordered for form).
  const int grain = 16;
  const int chunks = support::parallel_chunk_count(n_, grain);
  std::vector<int> chunk_max(static_cast<std::size_t>(chunks), 0);
  support::parallel_for_chunks(n_, grain, [&](int chunk, int begin, int end) {
    int mx = 0;
    for (int p = begin; p < end; ++p) {
      std::uint16_t* row = dist_.data() + static_cast<std::size_t>(p) * un;
      topo.write_distance_row(p, row);
      mean_dist_[static_cast<std::size_t>(p)] = topo.mean_distance_from(p);
      recompute_row_stats(p);
      mx = std::max(mx, row_max_[static_cast<std::size_t>(p)]);
    }
    chunk_max[static_cast<std::size_t>(chunk)] = mx;
  });
  for (int c = 0; c < chunks; ++c)
    diameter_ = std::max(diameter_, chunk_max[static_cast<std::size_t>(c)]);
}

void DistanceCache::recompute_row_stats(int p) {
  const std::uint16_t* r = row(p);
  long long sum = 0;
  int reach = 0;
  int mx = 0;
  for (int q = 0; q < n_; ++q) {
    const std::uint16_t d = r[q];
    if (d == kUnreachable) continue;
    sum += d;
    ++reach;
    mx = std::max(mx, static_cast<int>(d));
  }
  row_sum_[static_cast<std::size_t>(p)] = sum;
  row_reach_[static_cast<std::size_t>(p)] = reach;
  row_max_[static_cast<std::size_t>(p)] = mx;
}

void DistanceCache::refresh_means_and_diameter() {
  // A fresh build on the faulted overlay stores
  // FaultOverlay::mean_distance_from = row_sum / row_reach (one integer sum,
  // one division), so recomputing every mean from the exact aggregates makes
  // the repaired cache bit-identical to that rebuild — including rows whose
  // matrix entries did not change but whose stored mean predates the first
  // fault (closed-form base means).
  for (int p = 0; p < n_; ++p) {
    const auto up = static_cast<std::size_t>(p);
    mean_dist_[up] = row_reach_[up] > 0
                         ? static_cast<double>(row_sum_[up]) /
                               static_cast<double>(row_reach_[up])
                         : 0.0;
  }
  diameter_ = 0;
  for (int p = 0; p < n_; ++p)
    diameter_ = std::max(diameter_, row_max_[static_cast<std::size_t>(p)]);
}

int DistanceCache::repair_link_failure(const FaultOverlay& overlay, int a,
                                       int b) {
  TOPOMAP_REQUIRE(overlay.size() == n_,
                  "repair_link_failure: overlay size mismatch");
  TOPOMAP_REQUIRE(a >= 0 && a < n_ && b >= 0 && b < n_ && a != b,
                  "repair_link_failure: bad link endpoints");
  TOPOMAP_REQUIRE(overlay.link_failed(a, b),
                  "repair_link_failure: link " + std::to_string(a) + "-" +
                      std::to_string(b) + " is not failed in the overlay");
  // Link a-b lies on a shortest path from s iff d(s,a) and d(s,b) are both
  // finite and differ by exactly 1 (consecutive BFS levels).  Rows failing
  // that test cannot change; the test reads two cached values per row.
  std::vector<int> affected;
  for (int s = 0; s < n_; ++s) {
    const std::uint16_t* r = row(s);
    const std::uint16_t da = r[a];
    const std::uint16_t db = r[b];
    if (da == kUnreachable || db == kUnreachable) continue;
    const int diff = da > db ? da - db : db - da;
    if (diff == 1) affected.push_back(s);
  }
  const int m = static_cast<int>(affected.size());
  const auto un = static_cast<std::size_t>(n_);
  support::parallel_for(m, 4, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      const int s = affected[static_cast<std::size_t>(i)];
      overlay.write_distance_row(s, dist_.data() +
                                        static_cast<std::size_t>(s) * un);
      recompute_row_stats(s);
    }
  });
  refresh_means_and_diameter();
  return m;
}

int DistanceCache::repair_node_failure(const FaultOverlay& overlay, int p) {
  TOPOMAP_REQUIRE(overlay.size() == n_,
                  "repair_node_failure: overlay size mismatch");
  TOPOMAP_REQUIRE(p >= 0 && p < n_, "repair_node_failure: bad processor id");
  TOPOMAP_REQUIRE(overlay.node_failed(p),
                  "repair_node_failure: processor " + std::to_string(p) +
                      " is not failed in the overlay");
  const auto un = static_cast<std::size_t>(n_);
  const auto up = static_cast<std::size_t>(p);

  // p's surviving DAG-successor candidates: its base neighbors that are
  // still alive over still-present links.  Empty for distance-model bases
  // (fat-tree), where removing a leaf never perturbs survivor distances.
  std::vector<int> succ;
  if (overlay.base().has_adjacency()) {
    for (int q : overlay.base().neighbors(p))
      if (overlay.is_alive(q) && !overlay.link_failed(p, q)) succ.push_back(q);
  }

  std::vector<int> recompute;  // rows where p was interior to the SP DAG
  for (int s = 0; s < n_; ++s) {
    if (s == p) continue;
    std::uint16_t* r = dist_.data() + static_cast<std::size_t>(s) * un;
    const std::uint16_t dp = r[up];
    if (dp == kUnreachable) continue;  // p was never reachable: row unchanged
    bool interior = false;
    for (int q : succ) {
      if (r[q] == static_cast<std::uint16_t>(dp + 1)) {
        interior = true;
        break;
      }
    }
    if (interior) {
      recompute.push_back(s);
    } else {
      // p was a leaf of s's shortest-path DAG: no survivor's distance ran
      // through it, so only s's entry for p goes away.
      r[up] = kUnreachable;
      const auto us = static_cast<std::size_t>(s);
      row_sum_[us] -= dp;
      row_reach_[us] -= 1;
      if (static_cast<int>(dp) == row_max_[us]) recompute_row_stats(s);
    }
  }

  // p's own row: dead source, everything unreachable.
  std::fill(dist_.begin() + up * un, dist_.begin() + (up + 1) * un,
            kUnreachable);
  row_sum_[up] = 0;
  row_reach_[up] = 0;
  row_max_[up] = 0;

  const int m = static_cast<int>(recompute.size());
  support::parallel_for(m, 4, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      const int s = recompute[static_cast<std::size_t>(i)];
      overlay.write_distance_row(s, dist_.data() +
                                        static_cast<std::size_t>(s) * un);
      recompute_row_stats(s);
    }
  });
  refresh_means_and_diameter();
  return m;
}

}  // namespace topomap::topo
