#include "topo/distance_cache.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/parallel.hpp"

namespace topomap::topo {

DistanceCache::DistanceCache(const Topology& topo) : n_(topo.size()) {
  TOPOMAP_REQUIRE(n_ >= 1, "distance cache needs >= 1 processor");
  TOPOMAP_REQUIRE(n_ <= 20000,
                  "topology too large for a dense distance matrix");
  const auto un = static_cast<std::size_t>(n_);
  dist_.resize(un * un);
  mean_dist_.resize(un);

  // Rows are independent: fill in parallel, reduce per-chunk diameters in
  // ascending chunk order (max is order-free; kept ordered for form).
  const int grain = 16;
  const int chunks = support::parallel_chunk_count(n_, grain);
  std::vector<int> chunk_max(static_cast<std::size_t>(chunks), 0);
  support::parallel_for_chunks(n_, grain, [&](int chunk, int begin, int end) {
    int mx = 0;
    for (int p = begin; p < end; ++p) {
      std::uint16_t* row = dist_.data() + static_cast<std::size_t>(p) * un;
      topo.write_distance_row(p, row);
      mean_dist_[static_cast<std::size_t>(p)] = topo.mean_distance_from(p);
      for (std::size_t q = 0; q < un; ++q)
        mx = std::max(mx, static_cast<int>(row[q]));
    }
    chunk_max[static_cast<std::size_t>(chunk)] = mx;
  });
  for (int c = 0; c < chunks; ++c)
    diameter_ = std::max(diameter_, chunk_max[static_cast<std::size_t>(c)]);
}

}  // namespace topomap::topo
