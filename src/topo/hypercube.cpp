#include "topo/hypercube.hpp"

#include <bit>
#include <sstream>

#include "support/error.hpp"

namespace topomap::topo {

Hypercube::Hypercube(int dim) : dim_(dim) {
  TOPOMAP_REQUIRE(dim >= 0 && dim <= 24, "hypercube dimension out of range");
}

int Hypercube::distance(int a, int b) const {
  check_node(a);
  check_node(b);
  return std::popcount(static_cast<unsigned>(a ^ b));
}

std::vector<int> Hypercube::neighbors(int p) const {
  check_node(p);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(dim_));
  for (int d = 0; d < dim_; ++d) out.push_back(p ^ (1 << d));
  return out;
}

std::string Hypercube::name() const {
  std::ostringstream os;
  os << "hypercube(" << dim_ << ')';
  return os.str();
}

double Hypercube::mean_distance_from(int) const {
  // By symmetry every node sees the same distribution: expected Hamming
  // distance to a uniform node is d/2.
  return static_cast<double>(dim_) / 2.0;
}

double Hypercube::mean_pairwise_distance() const {
  return static_cast<double>(dim_) / 2.0;
}

void Hypercube::write_distance_row(int p, std::uint16_t* out) const {
  check_node(p);
  const int n = size();
  for (int q = 0; q < n; ++q)
    out[q] = static_cast<std::uint16_t>(
        std::popcount(static_cast<unsigned>(p ^ q)));
}

std::vector<int> Hypercube::route(int a, int b) const {
  check_node(a);
  check_node(b);
  std::vector<int> path{a};
  int cur = a;
  for (int d = 0; d < dim_; ++d) {
    const int bit = 1 << d;
    if ((cur & bit) != (b & bit)) {
      cur ^= bit;
      path.push_back(cur);
    }
  }
  return path;
}

}  // namespace topomap::topo
