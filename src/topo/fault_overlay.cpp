#include "topo/fault_overlay.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>
#include <sstream>

#include "obs/obs.hpp"
#include "support/error.hpp"

namespace topomap::topo {

namespace {

std::pair<int, int> norm_link(int a, int b) {
  return a < b ? std::pair<int, int>{a, b} : std::pair<int, int>{b, a};
}

}  // namespace

FaultOverlay::FaultOverlay(TopologyPtr base)
    : base_(std::move(base)) {
  TOPOMAP_REQUIRE(base_ != nullptr, "FaultOverlay: base topology is null");
  size_ = base_->size();
  dead_.assign(static_cast<std::size_t>(size_), 0);
}

int FaultOverlay::fail_link(int a, int b) {
  check_node(a);
  check_node(b);
  TOPOMAP_REQUIRE(a != b, "fail_link: self-link " + std::to_string(a));
  TOPOMAP_REQUIRE(base_->has_adjacency(),
                  "fail_link: " + base_->name() +
                      " is a distance model without processor-level links; "
                      "only processor failures are supported on it");
  const auto nb = base_->neighbors(a);
  TOPOMAP_REQUIRE(std::find(nb.begin(), nb.end(), b) != nb.end(),
                  "fail_link: no link " + std::to_string(a) + "-" +
                      std::to_string(b) + " in " + base_->name());
  const auto key = norm_link(a, b);
  // Cost the link carried while alive, in pre-mutation plane units.
  const int pre_scale = distance_scale();
  int prev = pre_scale;
  if (const auto it = degraded_.find(key); it != degraded_.end()) {
    prev = it->second;
    degraded_.erase(it);  // the hard fault supersedes the soft one
    ++version_;
    failed_links_.insert(key);
    OBS_COUNTER_ADD("faultoverlay/link_failures", 1);
    return prev;
  }
  if (failed_links_.insert(key).second) {
    ++version_;
    OBS_COUNTER_ADD("faultoverlay/link_failures", 1);
  }
  return prev;
}

void FaultOverlay::fail_node(int p) {
  check_node(p);
  if (dead_[static_cast<std::size_t>(p)]) return;
  dead_[static_cast<std::size_t>(p)] = 1;
  ++dead_count_;
  ++version_;
  OBS_COUNTER_ADD("faultoverlay/node_failures", 1);
}

int FaultOverlay::degrade_link(int a, int b, double health) {
  check_node(a);
  check_node(b);
  TOPOMAP_REQUIRE(a != b, "degrade_link: self-link " + std::to_string(a));
  TOPOMAP_REQUIRE(base_->has_adjacency(),
                  "degrade_link: " + base_->name() +
                      " is a distance model without processor-level links; "
                      "link health is undefined on it");
  const auto nb = base_->neighbors(a);
  TOPOMAP_REQUIRE(std::find(nb.begin(), nb.end(), b) != nb.end(),
                  "degrade_link: no link " + std::to_string(a) + "-" +
                      std::to_string(b) + " in " + base_->name());
  TOPOMAP_REQUIRE(!link_failed(a, b),
                  "degrade_link: link " + std::to_string(a) + "-" +
                      std::to_string(b) + " has hard-failed (health 0); "
                      "links cannot be revived");
  TOPOMAP_REQUIRE(is_alive(a) && is_alive(b),
                  "degrade_link: an endpoint of " + std::to_string(a) + "-" +
                      std::to_string(b) + " has failed");
  TOPOMAP_REQUIRE(health > 0.0 && health <= 1.0,
                  "degrade_link: health must be in (0, 1], got " +
                      std::to_string(health));
  // Quantize to the fixed-point cost.  Costs rounding back to one healthy
  // hop (health above ~0.94) are normalized to pristine, so the weighted
  // mode only engages when some link is measurably sick.
  const long long cost_ll =
      std::llround(static_cast<double>(kHealthCostOne) / health);
  TOPOMAP_REQUIRE(cost_ll <= kMaxFiniteDistance,
                  "degrade_link: health " + std::to_string(health) +
                      " is too low to represent; use fail_link");
  const int cost = std::max(kHealthCostOne, static_cast<int>(cost_ll));

  const auto key = norm_link(a, b);
  const int pre_scale = distance_scale();
  const auto it = degraded_.find(key);
  const int prev = it != degraded_.end() ? it->second : pre_scale;
  if (cost == kHealthCostOne) {
    // Restored to full health.
    if (it != degraded_.end()) {
      degraded_.erase(it);
      ++version_;
    }
    return prev;
  }
  if (it != degraded_.end()) {
    if (it->second != cost) {
      it->second = cost;
      ++version_;
      OBS_COUNTER_ADD("faultoverlay/link_degrades", 1);
    }
  } else {
    degraded_.emplace(key, cost);
    ++version_;
    OBS_COUNTER_ADD("faultoverlay/link_degrades", 1);
  }
  return prev;
}

void FaultOverlay::restore_node(int p) {
  check_node(p);
  if (!dead_[static_cast<std::size_t>(p)]) return;
  dead_[static_cast<std::size_t>(p)] = 0;
  --dead_count_;
  ++version_;
  OBS_COUNTER_ADD("faultoverlay/node_restores", 1);
}

int FaultOverlay::restore_link(int a, int b) {
  check_node(a);
  check_node(b);
  TOPOMAP_REQUIRE(a != b, "restore_link: self-link " + std::to_string(a));
  TOPOMAP_REQUIRE(base_->has_adjacency(),
                  "restore_link: " + base_->name() +
                      " is a distance model without processor-level links");
  const auto nb = base_->neighbors(a);
  TOPOMAP_REQUIRE(std::find(nb.begin(), nb.end(), b) != nb.end(),
                  "restore_link: no link " + std::to_string(a) + "-" +
                      std::to_string(b) + " in " + base_->name());
  if (failed_links_.erase(norm_link(a, b)) != 0) {
    ++version_;
    OBS_COUNTER_ADD("faultoverlay/link_restores", 1);
  }
  return link_cost(a, b);
}

int FaultOverlay::restore_link_health(int a, int b) {
  return degrade_link(a, b, 1.0);
}

bool FaultOverlay::link_failed(int a, int b) const {
  return failed_links_.count(norm_link(a, b)) != 0;
}

double FaultOverlay::link_health(int a, int b) const {
  if (link_failed(a, b) || dead_[static_cast<std::size_t>(a)] ||
      dead_[static_cast<std::size_t>(b)])
    return 0.0;
  const auto it = degraded_.find(norm_link(a, b));
  if (it == degraded_.end()) return 1.0;
  return static_cast<double>(kHealthCostOne) /
         static_cast<double>(it->second);
}

int FaultOverlay::link_cost(int a, int b) const {
  if (degraded_.empty()) return 1;
  const auto it = degraded_.find(norm_link(a, b));
  return it != degraded_.end() ? it->second : kHealthCostOne;
}

int FaultOverlay::weighted_cost(int u, int v) const {
  const auto it = degraded_.find(norm_link(u, v));
  return it != degraded_.end() ? it->second : kHealthCostOne;
}

bool FaultOverlay::is_alive(int p) const {
  check_node(p);
  return dead_[static_cast<std::size_t>(p)] == 0;
}

std::vector<int> FaultOverlay::alive_procs() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(num_alive()));
  for (int p = 0; p < size_; ++p)
    if (!dead_[static_cast<std::size_t>(p)]) out.push_back(p);
  return out;
}

int FaultOverlay::distance(int a, int b) const {
  TOPOMAP_REQUIRE(is_alive(a), "distance: processor " + std::to_string(a) +
                                   " has failed");
  TOPOMAP_REQUIRE(is_alive(b), "distance: processor " + std::to_string(b) +
                                   " has failed");
  if (!has_faults() || !base_->has_adjacency()) return base_->distance(a, b);
  if (a == b) return 0;
  if (!degraded_.empty()) {
    // Weighted mode: early-exit Dijkstra (settle b, return its cost).
    using Item = std::pair<std::uint32_t, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    std::vector<std::uint16_t> dist(static_cast<std::size_t>(size_),
                                    kUnreachable);
    dist[static_cast<std::size_t>(a)] = 0;
    pq.push({0, a});
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d != dist[static_cast<std::size_t>(u)]) continue;
      if (u == b) return static_cast<int>(d);
      for (int v : base_->neighbors(u)) {
        if (dead_[static_cast<std::size_t>(v)]) continue;
        if (link_failed(u, v)) continue;
        const std::uint32_t nd = d + static_cast<std::uint32_t>(
                                         weighted_cost(u, v));
        TOPOMAP_REQUIRE(nd <= kMaxFiniteDistance,
                        "distance: weighted path cost overflows the "
                        "fixed-point uint16 plane on " + name());
        if (nd < dist[static_cast<std::size_t>(v)]) {
          dist[static_cast<std::size_t>(v)] = static_cast<std::uint16_t>(nd);
          pq.push({nd, v});
        }
      }
    }
    TOPOMAP_REQUIRE(false, "distance: processors " + std::to_string(a) +
                               " and " + std::to_string(b) +
                               " are disconnected by faults in " + name());
  }
  // Early-exit BFS from a; stateless so concurrent use is safe.
  std::vector<std::uint16_t> dist(static_cast<std::size_t>(size_),
                                  kUnreachable);
  std::vector<int> frontier{a}, next;
  dist[static_cast<std::size_t>(a)] = 0;
  int depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (int u : frontier) {
      for (int v : base_->neighbors(u)) {
        if (dead_[static_cast<std::size_t>(v)]) continue;
        if (dist[static_cast<std::size_t>(v)] != kUnreachable) continue;
        if (link_failed(u, v)) continue;
        if (v == b) return depth;
        dist[static_cast<std::size_t>(v)] = static_cast<std::uint16_t>(depth);
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }
  TOPOMAP_REQUIRE(false, "distance: processors " + std::to_string(a) + " and " +
                             std::to_string(b) +
                             " are disconnected by faults in " + name());
  return -1;  // unreachable
}

std::vector<int> FaultOverlay::neighbors(int p) const {
  check_node(p);
  if (dead_[static_cast<std::size_t>(p)]) return {};
  std::vector<int> out = base_->neighbors(p);
  if (dead_count_ == 0 && failed_links_.empty()) return out;
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](int q) {
                             return dead_[static_cast<std::size_t>(q)] != 0 ||
                                    link_failed(p, q);
                           }),
            out.end());
  return out;
}

std::string FaultOverlay::name() const {
  std::ostringstream os;
  os << "faults(nodes=" << dead_count_ << ",links=" << failed_links_.size()
     << ",deg=" << degraded_.size() << ",v=" << version_ << ") over "
     << base_->name();
  return os.str();
}

double FaultOverlay::mean_distance_from(int p) const {
  check_node(p);
  if (dead_[static_cast<std::size_t>(p)]) return 0.0;
  if (!has_faults()) return base_->mean_distance_from(p);
  // Integer sum over reachable alive processors (self included), divided
  // once — exactly the arithmetic DistanceCache repair maintains, so a
  // repaired cache and a fresh build agree bit-for-bit.
  std::vector<std::uint16_t> row(static_cast<std::size_t>(size_));
  write_distance_row(p, row.data());
  long long sum = 0;
  int reach = 0;
  for (int q = 0; q < size_; ++q) {
    if (row[static_cast<std::size_t>(q)] == kUnreachable) continue;
    sum += row[static_cast<std::size_t>(q)];
    ++reach;
  }
  return reach > 0 ? static_cast<double>(sum) / static_cast<double>(reach)
                   : 0.0;
}

double FaultOverlay::mean_pairwise_distance() const {
  if (!has_faults()) return base_->mean_pairwise_distance();
  const int alive = num_alive();
  if (alive == 0) return 0.0;
  double total = 0.0;
  for (int p = 0; p < size_; ++p)
    if (!dead_[static_cast<std::size_t>(p)]) total += mean_distance_from(p);
  return total / static_cast<double>(alive);
}

int FaultOverlay::diameter() const {
  if (!has_faults()) return base_->diameter();
  int best = 0;
  std::vector<std::uint16_t> row(static_cast<std::size_t>(size_));
  for (int p = 0; p < size_; ++p) {
    if (dead_[static_cast<std::size_t>(p)]) continue;
    write_distance_row(p, row.data());
    for (int q = 0; q < size_; ++q) {
      const std::uint16_t d = row[static_cast<std::size_t>(q)];
      if (d != kUnreachable && static_cast<int>(d) > best)
        best = static_cast<int>(d);
    }
  }
  return best;
}

bool FaultOverlay::route_intact(const std::vector<int>& path) const {
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (dead_[static_cast<std::size_t>(path[i])]) return false;
    if (i > 0 && link_failed(path[i - 1], path[i])) return false;
    // In weighted mode a route touching a degraded link may no longer be
    // cheapest; a degrade-free min-hop route always is (every alternative
    // crosses at least as many links, each at least the healthy cost).
    if (i > 0 && !degraded_.empty() &&
        degraded_.count(norm_link(path[i - 1], path[i])) != 0)
      return false;
  }
  return true;
}

std::vector<int> FaultOverlay::route(int a, int b) const {
  TOPOMAP_REQUIRE(is_alive(a),
                  "route: processor " + std::to_string(a) + " has failed");
  TOPOMAP_REQUIRE(is_alive(b),
                  "route: processor " + std::to_string(b) + " has failed");
  if (!has_faults()) return base_->route(a, b);
  // Keep the base's deterministic (e.g. dimension-ordered) route whenever
  // the faults do not touch it, so fault-free pairs see unchanged paths.
  {
    std::vector<int> path = base_->route(a, b);
    if (route_intact(path)) return path;
  }
  if (a == b) return {a};
  if (!degraded_.empty()) {
    // Cheapest route by Dijkstra with a deterministic parent tree.
    std::vector<std::uint16_t> dist(static_cast<std::size_t>(size_));
    std::vector<int> parent(static_cast<std::size_t>(size_), -1);
    dijkstra_row(a, dist.data(), &parent);
    TOPOMAP_REQUIRE(dist[static_cast<std::size_t>(b)] != kUnreachable,
                    "route: processors " + std::to_string(a) + " and " +
                        std::to_string(b) +
                        " are disconnected by faults in " + name());
    std::vector<int> path;
    for (int v = b; v != a; v = parent[static_cast<std::size_t>(v)])
      path.push_back(v);
    path.push_back(a);
    std::reverse(path.begin(), path.end());
    return path;
  }
  // BFS with parent tracking over the alive subgraph.
  std::vector<int> parent(static_cast<std::size_t>(size_), -1);
  std::vector<int> frontier{a}, next;
  parent[static_cast<std::size_t>(a)] = a;
  bool found = false;
  while (!frontier.empty() && !found) {
    next.clear();
    for (int u : frontier) {
      for (int v : base_->neighbors(u)) {
        if (dead_[static_cast<std::size_t>(v)]) continue;
        if (parent[static_cast<std::size_t>(v)] != -1) continue;
        if (link_failed(u, v)) continue;
        parent[static_cast<std::size_t>(v)] = u;
        if (v == b) {
          found = true;
          break;
        }
        next.push_back(v);
      }
      if (found) break;
    }
    frontier.swap(next);
  }
  TOPOMAP_REQUIRE(found, "route: processors " + std::to_string(a) + " and " +
                             std::to_string(b) +
                             " are disconnected by faults in " + name());
  std::vector<int> path;
  for (int v = b; v != a; v = parent[static_cast<std::size_t>(v)])
    path.push_back(v);
  path.push_back(a);
  std::reverse(path.begin(), path.end());
  return path;
}

void FaultOverlay::write_distance_row(int p, std::uint16_t* out) const {
  check_node(p);
  if (dead_[static_cast<std::size_t>(p)]) {
    std::fill(out, out + size_, kUnreachable);
    return;
  }
  if (!has_faults()) {
    base_->write_distance_row(p, out);
    return;
  }
  if (!base_->has_adjacency()) {
    // Distance model (no links to fail): alive-pair distances are the
    // base's; dead columns become unreachable.
    base_->write_distance_row(p, out);
    for (int q = 0; q < size_; ++q)
      if (dead_[static_cast<std::size_t>(q)]) out[q] = kUnreachable;
    return;
  }
  if (!degraded_.empty()) {
    dijkstra_row(p, out, nullptr);
    return;
  }
  bfs_row(p, out);
}

void FaultOverlay::bfs_row(int src, std::uint16_t* out) const {
  std::fill(out, out + size_, kUnreachable);
  std::vector<int> frontier{src}, next;
  out[src] = 0;
  std::uint16_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (int u : frontier) {
      for (int v : base_->neighbors(u)) {
        if (dead_[static_cast<std::size_t>(v)]) continue;
        if (out[v] != kUnreachable) continue;
        if (link_failed(u, v)) continue;
        out[v] = depth;
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }
}

void FaultOverlay::dijkstra_row(int src, std::uint16_t* out,
                                std::vector<int>* parent) const {
  std::fill(out, out + size_, kUnreachable);
  if (parent != nullptr)
    std::fill(parent->begin(), parent->end(), -1);
  using Item = std::pair<std::uint32_t, int>;  // (cost, node): deterministic
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  out[src] = 0;
  if (parent != nullptr) (*parent)[static_cast<std::size_t>(src)] = src;
  pq.push({0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != out[u]) continue;  // stale heap entry
    for (int v : base_->neighbors(u)) {
      if (dead_[static_cast<std::size_t>(v)]) continue;
      if (link_failed(u, v)) continue;
      const std::uint32_t nd =
          d + static_cast<std::uint32_t>(weighted_cost(u, v));
      TOPOMAP_REQUIRE(nd <= kMaxFiniteDistance,
                      "weighted path cost overflows the fixed-point uint16 "
                      "plane on " + name());
      if (nd < out[v]) {
        out[v] = static_cast<std::uint16_t>(nd);
        if (parent != nullptr) (*parent)[static_cast<std::size_t>(v)] = u;
        pq.push({nd, v});
      }
    }
  }
}

}  // namespace topomap::topo
