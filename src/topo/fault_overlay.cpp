#include "topo/fault_overlay.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace topomap::topo {

namespace {

std::pair<int, int> norm_link(int a, int b) {
  return a < b ? std::pair<int, int>{a, b} : std::pair<int, int>{b, a};
}

}  // namespace

FaultOverlay::FaultOverlay(TopologyPtr base)
    : base_(std::move(base)) {
  TOPOMAP_REQUIRE(base_ != nullptr, "FaultOverlay: base topology is null");
  size_ = base_->size();
  dead_.assign(static_cast<std::size_t>(size_), 0);
}

void FaultOverlay::fail_link(int a, int b) {
  check_node(a);
  check_node(b);
  TOPOMAP_REQUIRE(a != b, "fail_link: self-link " + std::to_string(a));
  TOPOMAP_REQUIRE(base_->has_adjacency(),
                  "fail_link: " + base_->name() +
                      " is a distance model without processor-level links; "
                      "only processor failures are supported on it");
  const auto nb = base_->neighbors(a);
  TOPOMAP_REQUIRE(std::find(nb.begin(), nb.end(), b) != nb.end(),
                  "fail_link: no link " + std::to_string(a) + "-" +
                      std::to_string(b) + " in " + base_->name());
  if (failed_links_.insert(norm_link(a, b)).second) ++version_;
}

void FaultOverlay::fail_node(int p) {
  check_node(p);
  if (dead_[static_cast<std::size_t>(p)]) return;
  dead_[static_cast<std::size_t>(p)] = 1;
  ++dead_count_;
  ++version_;
}

bool FaultOverlay::link_failed(int a, int b) const {
  return failed_links_.count(norm_link(a, b)) != 0;
}

bool FaultOverlay::is_alive(int p) const {
  check_node(p);
  return dead_[static_cast<std::size_t>(p)] == 0;
}

std::vector<int> FaultOverlay::alive_procs() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(num_alive()));
  for (int p = 0; p < size_; ++p)
    if (!dead_[static_cast<std::size_t>(p)]) out.push_back(p);
  return out;
}

int FaultOverlay::distance(int a, int b) const {
  TOPOMAP_REQUIRE(is_alive(a), "distance: processor " + std::to_string(a) +
                                   " has failed");
  TOPOMAP_REQUIRE(is_alive(b), "distance: processor " + std::to_string(b) +
                                   " has failed");
  if (!has_faults() || !base_->has_adjacency()) return base_->distance(a, b);
  if (a == b) return 0;
  // Early-exit BFS from a; stateless so concurrent use is safe.
  std::vector<std::uint16_t> dist(static_cast<std::size_t>(size_),
                                  kUnreachable);
  std::vector<int> frontier{a}, next;
  dist[static_cast<std::size_t>(a)] = 0;
  int depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (int u : frontier) {
      for (int v : base_->neighbors(u)) {
        if (dead_[static_cast<std::size_t>(v)]) continue;
        if (dist[static_cast<std::size_t>(v)] != kUnreachable) continue;
        if (link_failed(u, v)) continue;
        if (v == b) return depth;
        dist[static_cast<std::size_t>(v)] = static_cast<std::uint16_t>(depth);
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }
  TOPOMAP_REQUIRE(false, "distance: processors " + std::to_string(a) + " and " +
                             std::to_string(b) +
                             " are disconnected by faults in " + name());
  return -1;  // unreachable
}

std::vector<int> FaultOverlay::neighbors(int p) const {
  check_node(p);
  if (dead_[static_cast<std::size_t>(p)]) return {};
  std::vector<int> out = base_->neighbors(p);
  if (!has_faults()) return out;
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](int q) {
                             return dead_[static_cast<std::size_t>(q)] != 0 ||
                                    link_failed(p, q);
                           }),
            out.end());
  return out;
}

std::string FaultOverlay::name() const {
  std::ostringstream os;
  os << "faults(nodes=" << dead_count_ << ",links=" << failed_links_.size()
     << ",v=" << version_ << ") over " << base_->name();
  return os.str();
}

double FaultOverlay::mean_distance_from(int p) const {
  check_node(p);
  if (dead_[static_cast<std::size_t>(p)]) return 0.0;
  if (!has_faults()) return base_->mean_distance_from(p);
  // Integer sum over reachable alive processors (self included), divided
  // once — exactly the arithmetic DistanceCache repair maintains, so a
  // repaired cache and a fresh build agree bit-for-bit.
  std::vector<std::uint16_t> row(static_cast<std::size_t>(size_));
  write_distance_row(p, row.data());
  long long sum = 0;
  int reach = 0;
  for (int q = 0; q < size_; ++q) {
    if (row[static_cast<std::size_t>(q)] == kUnreachable) continue;
    sum += row[static_cast<std::size_t>(q)];
    ++reach;
  }
  return reach > 0 ? static_cast<double>(sum) / static_cast<double>(reach)
                   : 0.0;
}

double FaultOverlay::mean_pairwise_distance() const {
  if (!has_faults()) return base_->mean_pairwise_distance();
  const int alive = num_alive();
  if (alive == 0) return 0.0;
  double total = 0.0;
  for (int p = 0; p < size_; ++p)
    if (!dead_[static_cast<std::size_t>(p)]) total += mean_distance_from(p);
  return total / static_cast<double>(alive);
}

int FaultOverlay::diameter() const {
  if (!has_faults()) return base_->diameter();
  int best = 0;
  std::vector<std::uint16_t> row(static_cast<std::size_t>(size_));
  for (int p = 0; p < size_; ++p) {
    if (dead_[static_cast<std::size_t>(p)]) continue;
    write_distance_row(p, row.data());
    for (int q = 0; q < size_; ++q) {
      const std::uint16_t d = row[static_cast<std::size_t>(q)];
      if (d != kUnreachable && static_cast<int>(d) > best)
        best = static_cast<int>(d);
    }
  }
  return best;
}

bool FaultOverlay::route_intact(const std::vector<int>& path) const {
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (dead_[static_cast<std::size_t>(path[i])]) return false;
    if (i > 0 && link_failed(path[i - 1], path[i])) return false;
  }
  return true;
}

std::vector<int> FaultOverlay::route(int a, int b) const {
  TOPOMAP_REQUIRE(is_alive(a),
                  "route: processor " + std::to_string(a) + " has failed");
  TOPOMAP_REQUIRE(is_alive(b),
                  "route: processor " + std::to_string(b) + " has failed");
  if (!has_faults()) return base_->route(a, b);
  // Keep the base's deterministic (e.g. dimension-ordered) route whenever
  // the faults do not touch it, so fault-free pairs see unchanged paths.
  {
    std::vector<int> path = base_->route(a, b);
    if (route_intact(path)) return path;
  }
  if (a == b) return {a};
  // BFS with parent tracking over the alive subgraph.
  std::vector<int> parent(static_cast<std::size_t>(size_), -1);
  std::vector<int> frontier{a}, next;
  parent[static_cast<std::size_t>(a)] = a;
  bool found = false;
  while (!frontier.empty() && !found) {
    next.clear();
    for (int u : frontier) {
      for (int v : base_->neighbors(u)) {
        if (dead_[static_cast<std::size_t>(v)]) continue;
        if (parent[static_cast<std::size_t>(v)] != -1) continue;
        if (link_failed(u, v)) continue;
        parent[static_cast<std::size_t>(v)] = u;
        if (v == b) {
          found = true;
          break;
        }
        next.push_back(v);
      }
      if (found) break;
    }
    frontier.swap(next);
  }
  TOPOMAP_REQUIRE(found, "route: processors " + std::to_string(a) + " and " +
                             std::to_string(b) +
                             " are disconnected by faults in " + name());
  std::vector<int> path;
  for (int v = b; v != a; v = parent[static_cast<std::size_t>(v)])
    path.push_back(v);
  path.push_back(a);
  std::reverse(path.begin(), path.end());
  return path;
}

void FaultOverlay::write_distance_row(int p, std::uint16_t* out) const {
  check_node(p);
  if (dead_[static_cast<std::size_t>(p)]) {
    std::fill(out, out + size_, kUnreachable);
    return;
  }
  if (!has_faults()) {
    base_->write_distance_row(p, out);
    return;
  }
  if (!base_->has_adjacency()) {
    // Distance model (no links to fail): alive-pair distances are the
    // base's; dead columns become unreachable.
    base_->write_distance_row(p, out);
    for (int q = 0; q < size_; ++q)
      if (dead_[static_cast<std::size_t>(q)]) out[q] = kUnreachable;
    return;
  }
  bfs_row(p, out);
}

void FaultOverlay::bfs_row(int src, std::uint16_t* out) const {
  std::fill(out, out + size_, kUnreachable);
  std::vector<int> frontier{src}, next;
  out[src] = 0;
  std::uint16_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (int u : frontier) {
      for (int v : base_->neighbors(u)) {
        if (dead_[static_cast<std::size_t>(v)]) continue;
        if (out[v] != kUnreachable) continue;
        if (link_failed(u, v)) continue;
        out[v] = depth;
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }
}

}  // namespace topomap::topo
