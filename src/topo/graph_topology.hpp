// Arbitrary-graph topology backed by an explicit adjacency list.
//
// Distances come from an all-pairs BFS matrix built at construction
// (O(p*(p+|E|)) time, O(p^2) * 2 bytes memory), so it is intended for
// irregular or user-supplied networks of up to a few thousand processors.
// Also serves as the oracle against which closed-form topologies are tested.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace topomap::topo {

class GraphTopology final : public Topology {
 public:
  /// @param num_nodes  processor count
  /// @param edges      undirected links (a, b); duplicates and self-loops
  ///                   are rejected. The graph must be connected.
  /// @param label      name() for diagnostics
  GraphTopology(int num_nodes, const std::vector<std::pair<int, int>>& edges,
                std::string label = "graph");

  /// Deep-copy any topology into an explicit graph (adjacency taken from
  /// neighbors()); distances are recomputed by BFS.
  static GraphTopology from_topology(const Topology& other);

  int size() const override { return num_nodes_; }
  int distance(int a, int b) const override;
  std::vector<int> neighbors(int p) const override;
  std::string name() const override { return label_; }
  int diameter() const override { return diameter_; }
  double mean_distance_from(int p) const override;

  /// Batch row fill for DistanceCache: memcpy from the stored BFS matrix.
  void write_distance_row(int p, std::uint16_t* out) const override;

 private:
  void build_distances();

  int num_nodes_;
  std::string label_;
  std::vector<std::vector<int>> adj_;
  std::vector<std::uint16_t> dist_;  // row-major p x p
  std::vector<double> mean_dist_;    // per-node mean distance
  int diameter_ = 0;
};

}  // namespace topomap::topo
