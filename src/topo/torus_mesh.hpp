// N-dimensional torus / mesh topology with closed-form distances and
// dimension-ordered routing.
//
// Each dimension independently either wraps around (torus) or not (mesh),
// so a single class models 2D/3D meshes, tori, and mixed shapes like the
// BlueGene/L partitions the paper evaluates on.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace topomap::topo {

class TorusMesh final : public Topology {
 public:
  /// @param dims  per-dimension extents, each >= 1; size() = prod(dims)
  /// @param wrap  per-dimension wraparound flags (same length as dims)
  TorusMesh(std::vector<int> dims, std::vector<bool> wrap);

  /// All dimensions wrap (a k-ary n-cube).
  static TorusMesh torus(std::vector<int> dims);
  /// No dimension wraps.
  static TorusMesh mesh(std::vector<int> dims);

  int size() const override { return size_; }
  int distance(int a, int b) const override;
  std::vector<int> neighbors(int p) const override;
  std::string name() const override;
  double mean_distance_from(int p) const override;
  double mean_pairwise_distance() const override;
  int diameter() const override;

  /// Dimension-ordered route: correct dimension 0 first (taking the short
  /// way around on wrapped dimensions, lower direction on ties), then 1, ...
  std::vector<int> route(int a, int b) const override;

  /// Batch row fill for DistanceCache: per-dimension distance tables plus a
  /// mixed-radix odometer make it O(1) per entry, no division.
  void write_distance_row(int p, std::uint16_t* out) const override;

  int dimensions() const { return static_cast<int>(dims_.size()); }
  const std::vector<int>& dims() const { return dims_; }
  bool wraps(int dim) const { return wrap_[static_cast<std::size_t>(dim)]; }

  /// Mixed-radix coordinate <-> linear index conversions.  Dimension 0 is
  /// the fastest-varying (least-significant) coordinate.
  std::vector<int> coords(int p) const;
  int index(const std::vector<int>& coords) const;

 private:
  /// Distance along one dimension between coordinates x and y.
  int dim_distance(int dim, int x, int y) const;
  /// Signed step (+1/-1) that moves x toward y along `dim` on the shortest
  /// way (ties broken toward -1 on wrapped even spans).
  int dim_step(int dim, int x, int y) const;

  std::vector<int> dims_;
  std::vector<bool> wrap_;
  std::vector<int> stride_;
  int size_ = 0;
};

}  // namespace topomap::topo
