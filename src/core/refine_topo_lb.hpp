// RefineTopoLB (paper §5.2.3) — pairwise-swap refinement.
//
// Given an existing one-to-one mapping, repeatedly sweep over task pairs
// and swap their processors whenever that strictly reduces hop-bytes; stop
// when a full sweep finds no improving swap or after max_passes sweeps.
// The paper applies it after TopoLB for a further ~12% reduction on the
// LeanMD workloads.
#pragma once

#include "core/strategy.hpp"

namespace topomap::topo {
class DistanceCache;
}

namespace topomap::core {

struct RefineResult {
  Mapping mapping;
  int swaps = 0;          ///< accepted swaps across all sweeps
  int passes = 0;         ///< sweeps performed (including the final clean one)
  double hop_bytes_before = 0.0;
  double hop_bytes_after = 0.0;
};

/// Refine `m` in place-semantics (returns the improved copy).  The result's
/// hop-bytes are monotonically non-increasing in the number of sweeps.
/// The O(p^2) swap-delta sweep is parallelised speculatively (see the
/// implementation note in refine_topo_lb.cpp); results are byte-identical
/// to the sequential first-improvement sweep for any thread count and for
/// either distance mode.
/// `cache` (optional) is a prebuilt distance matrix for `topo`; when given
/// with kCached mode the sweep reuses it instead of building its own.
RefineResult refine_mapping(const graph::TaskGraph& g,
                            const topo::Topology& topo, const Mapping& m,
                            int max_passes = 8,
                            DistanceMode mode = DistanceMode::kCached,
                            const topo::DistanceCache* cache = nullptr);

/// Change in hop-bytes if tasks a and b exchanged processors under m
/// (negative = improvement).  Exposed for tests.
double swap_delta(const graph::TaskGraph& g, const topo::Topology& topo,
                  const Mapping& m, int a, int b);

/// Strategy adaptor: run `base`, then RefineTopoLB.
class RefinedStrategy final : public MappingStrategy {
 public:
  RefinedStrategy(StrategyPtr base, int max_passes = 8,
                  DistanceMode mode = DistanceMode::kCached,
                  CacheHandlePtr cache = nullptr);

  Mapping map(const graph::TaskGraph& g, const topo::Topology& topo,
              Rng& rng) const override;
  std::string name() const override;

 private:
  StrategyPtr base_;
  int max_passes_;
  DistanceMode mode_;
  CacheHandlePtr cache_;  // shared across a composition; may be null
};

}  // namespace topomap::core
