// Shared DistanceCache across a strategy composition.
//
// A composed strategy like "topolb+refine" or warm-started annealing runs
// two or three kernels over the *same* topology inside one map() call; each
// used to build its own O(p^2) DistanceCache.  make_strategy now creates a
// single CacheHandle per top-level composition and threads it through every
// stage, so the matrix is built once per (topology, name) and reused.
//
// The handle keys on the topology's address *and* its name(): address alone
// is unsafe (a mutated FaultOverlay keeps its address), but FaultOverlay
// embeds a version counter in name(), so injecting a fault between map()
// calls invalidates the entry and the next get() rebuilds on the faulted
// metric.  get() hands out shared_ptrs, so a rebuild never invalidates a
// cache an in-flight kernel still holds.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "topo/distance_cache.hpp"
#include "topo/topology.hpp"

namespace topomap::core {

class CacheHandle {
 public:
  /// The cache for `topo`, built on first use and whenever the keyed
  /// (address, name) pair changes.
  std::shared_ptr<const topo::DistanceCache> get(const topo::Topology& topo) {
    std::lock_guard<std::mutex> lock(mu_);
    std::string name = topo.name();
    if (cache_ && key_ == &topo && key_name_ == name) {
      OBS_COUNTER_ADD("distcache/handle_hits", 1);
      return cache_;
    }
    OBS_COUNTER_ADD("distcache/handle_misses", 1);
    cache_ = std::make_shared<const topo::DistanceCache>(topo);
    key_ = &topo;
    key_name_ = std::move(name);
    return cache_;
  }

  /// Pre-key the handle with an externally built cache for `topo`
  /// (svc::CachePool shares one DistanceCache across requests on the same
  /// machine).  The next get(topo) hits as long as the identity+name key
  /// still matches; a fault injected in between changes name() and falls
  /// back to a rebuild as usual.  Requires cache->size() == topo.size().
  void seed(const topo::Topology& topo,
            std::shared_ptr<const topo::DistanceCache> cache) {
    TOPOMAP_REQUIRE(cache && cache->size() == topo.size(),
                    "seeded cache does not match the topology");
    std::lock_guard<std::mutex> lock(mu_);
    key_ = &topo;
    key_name_ = topo.name();
    cache_ = std::move(cache);
  }

 private:
  std::mutex mu_;
  const topo::Topology* key_ = nullptr;
  std::string key_name_;
  std::shared_ptr<const topo::DistanceCache> cache_;
};

using CacheHandlePtr = std::shared_ptr<CacheHandle>;

/// The cache a kernel should use: the handle's shared one when present,
/// otherwise a private single-use build (strategies constructed directly,
/// without make_strategy).
inline std::shared_ptr<const topo::DistanceCache> obtain_cache(
    const CacheHandlePtr& handle, const topo::Topology& topo) {
  if (handle) return handle->get(topo);
  return std::make_shared<const topo::DistanceCache>(topo);
}

}  // namespace topomap::core
