#include "core/metrics.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"
#include "support/parallel.hpp"

namespace topomap::core {

namespace {

constexpr int kEdgeGrain = 64;  // routed task-graph edges per chunk

}  // namespace

double hop_bytes(const graph::TaskGraph& g, const topo::Topology& topo,
                 const Mapping& m) {
  TOPOMAP_REQUIRE(static_cast<int>(m.size()) == g.num_vertices(),
                  "mapping size does not match task graph");
  TOPOMAP_REQUIRE(is_complete(m, topo), "mapping is incomplete");
  double total = 0.0;
  for (const graph::UndirectedEdge& e : g.edges())
    total += e.bytes * topo.distance(m[static_cast<std::size_t>(e.a)],
                                     m[static_cast<std::size_t>(e.b)]);
  return total;
}

double hop_bytes(const graph::TaskGraph& g, const topo::DistanceCache& cache,
                 const Mapping& m) {
  TOPOMAP_REQUIRE(static_cast<int>(m.size()) == g.num_vertices(),
                  "mapping size does not match task graph");
  for (const int p : m)
    TOPOMAP_REQUIRE(p >= 0 && p < cache.size(), "mapping is incomplete");
  double total = 0.0;
  for (const graph::UndirectedEdge& e : g.edges())
    total += e.bytes * cache.distance(m[static_cast<std::size_t>(e.a)],
                                      m[static_cast<std::size_t>(e.b)]);
  return total;
}

double hop_bytes_of_task(const graph::TaskGraph& g, const topo::Topology& topo,
                         const Mapping& m, int task) {
  TOPOMAP_REQUIRE(static_cast<int>(m.size()) == g.num_vertices(),
                  "mapping size does not match task graph");
  TOPOMAP_REQUIRE(is_complete(m, topo), "mapping is incomplete");
  double total = 0.0;
  const int pt = m[static_cast<std::size_t>(task)];
  for (const graph::Edge& e : g.edges_of(task))
    total += e.bytes * topo.distance(pt, m[static_cast<std::size_t>(e.neighbor)]);
  return total;
}

double hops_per_byte(const graph::TaskGraph& g, const topo::Topology& topo,
                     const Mapping& m) {
  const double bytes = g.total_comm_bytes();
  return bytes > 0.0 ? hop_bytes(g, topo, m) / bytes : 0.0;
}

double expected_random_hops(const topo::Topology& topo) {
  return topo.mean_pairwise_distance();
}

LinkLoadStats link_loads(const graph::TaskGraph& g, const topo::Topology& topo,
                         const Mapping& m) {
  TOPOMAP_REQUIRE(static_cast<int>(m.size()) == g.num_vertices(),
                  "mapping size does not match task graph");
  TOPOMAP_REQUIRE(is_complete(m, topo), "mapping is incomplete");
  const auto p = static_cast<std::uint64_t>(topo.size());
  const std::vector<graph::UndirectedEdge>& edges = g.edges();
  const int num_edges = static_cast<int>(edges.size());

  // Route edges in parallel: each chunk accumulates into its own map, then
  // the chunk maps are merged in ascending chunk order.  Which links carry
  // traffic (and the integer routing itself) is exact; only the FP addition
  // grouping can differ from sequential, at the ulp level.
  const int chunks = support::parallel_chunk_count(num_edges, kEdgeGrain);
  std::vector<std::unordered_map<std::uint64_t, double>> chunk_load(
      static_cast<std::size_t>(chunks));
  support::parallel_for_chunks(
      num_edges, kEdgeGrain, [&](int chunk, int begin, int end) {
        auto& load = chunk_load[static_cast<std::size_t>(chunk)];
        auto add_route = [&](int from, int to, double bytes) {
          const std::vector<int> path = topo.route(from, to);
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const auto key = static_cast<std::uint64_t>(path[i]) * p +
                             static_cast<std::uint64_t>(path[i + 1]);
            load[key] += bytes;
          }
        };
        for (int i = begin; i < end; ++i) {
          const graph::UndirectedEdge& e = edges[static_cast<std::size_t>(i)];
          const int pa = m[static_cast<std::size_t>(e.a)];
          const int pb = m[static_cast<std::size_t>(e.b)];
          if (pa == pb) continue;
          add_route(pa, pb, e.bytes / 2.0);
          add_route(pb, pa, e.bytes / 2.0);
        }
      });
  std::unordered_map<std::uint64_t, double> load;
  for (int c = 0; c < chunks; ++c)
    for (const auto& [key, bytes] : chunk_load[static_cast<std::size_t>(c)])
      load[key] += bytes;

  LinkLoadStats stats;
  stats.links_total = topo.directed_link_count();
  for (const auto& [key, bytes] : load) {
    stats.total_bytes += bytes;
    stats.max_bytes = std::max(stats.max_bytes, bytes);
    ++stats.links_used;
  }
  stats.mean_bytes = stats.links_total > 0
                         ? stats.total_bytes / stats.links_total
                         : 0.0;
  return stats;
}

}  // namespace topomap::core
