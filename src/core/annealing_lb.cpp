#include "core/annealing_lb.hpp"

#include <cmath>

#include "core/baseline_lb.hpp"
#include "core/cache_handle.hpp"
#include "core/metrics.hpp"
#include "core/swap_kernel.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "topo/distance_cache.hpp"

namespace topomap::core {

namespace {

/// The Metropolis chain proper, templated on the distance provider.  Swap
/// deltas are identical integers-times-bytes for either provider and the
/// rng draw sequence does not depend on the provider, so cached and virtual
/// modes walk the same chain and return the same mapping.
template <class Dist>
Mapping run_chain(const graph::TaskGraph& g, const Dist& dist,
                  Mapping current, double energy, Rng& rng,
                  const AnnealingOptions& options) {
  const int n = g.num_vertices();
  Mapping best = current;
  double best_energy = energy;

  // Calibrate T0 from the magnitude of random move deltas.
  double mean_abs_delta = 0.0;
  const int probes = std::min(256, n * (n - 1) / 2);
  for (int i = 0; i < probes; ++i) {
    const int a = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    int b = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n - 1)));
    if (b >= a) ++b;
    mean_abs_delta += std::abs(detail::swap_delta_dist(g, dist, current, a, b));
  }
  mean_abs_delta /= static_cast<double>(probes);
  double temperature = options.t0_factor * std::max(mean_abs_delta, 1e-9);

  const auto moves =
      static_cast<int>(options.moves_per_task * static_cast<double>(n));
  OBS_SPAN("anneal/chain");
  OBS_COUNTER_ADD("anneal/moves",
                  static_cast<std::uint64_t>(moves) *
                      static_cast<std::uint64_t>(options.epochs));
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (int move = 0; move < moves; ++move) {
      const int a =
          static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      int b = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n - 1)));
      if (b >= a) ++b;
      const double delta = detail::swap_delta_dist(g, dist, current, a, b);
      const bool accept =
          delta < 0.0 ||
          rng.uniform_double() < std::exp(-delta / temperature);
      if (accept) {
        OBS_COUNTER_ADD("anneal/accepts", 1);
        std::swap(current[static_cast<std::size_t>(a)],
                  current[static_cast<std::size_t>(b)]);
        energy += delta;
        if (energy < best_energy) {
          best_energy = energy;
          best = current;
        }
      }
    }
    temperature *= options.cooling;
  }
  return best;
}

}  // namespace

AnnealingLB::AnnealingLB(AnnealingOptions options, DistanceMode mode,
                         CacheHandlePtr cache)
    : options_(std::move(options)), mode_(mode), cache_(std::move(cache)) {
  TOPOMAP_REQUIRE(options_.moves_per_task > 0.0, "need positive move budget");
  TOPOMAP_REQUIRE(options_.cooling > 0.0 && options_.cooling < 1.0,
                  "cooling factor must be in (0,1)");
  TOPOMAP_REQUIRE(options_.epochs >= 1, "need at least one epoch");
  TOPOMAP_REQUIRE(options_.t0_factor > 0.0, "t0_factor must be positive");
}

std::string AnnealingLB::name() const {
  return options_.warm_start ? "AnnealingLB[" + options_.warm_start->name() + "]"
                             : "AnnealingLB";
}

Mapping AnnealingLB::map(const graph::TaskGraph& g,
                         const topo::Topology& topo, Rng& rng) const {
  require_square(g, topo);
  const int n = g.num_vertices();
  if (n <= 1) return identity_mapping(n);

  Mapping current = options_.warm_start
                        ? options_.warm_start->map(g, topo, rng)
                        : RandomLB().map(g, topo, rng);
  if (mode_ == DistanceMode::kVirtual) {
    const double energy = hop_bytes(g, topo, current);
    return run_chain(g, detail::VirtualDistance{topo}, std::move(current),
                     energy, rng, options_);
  }
  const auto cache = obtain_cache(cache_, topo);
  const double energy = hop_bytes(g, *cache, current);
  return run_chain(g, detail::CachedDistance{*cache}, std::move(current),
                   energy, rng, options_);
}

}  // namespace topomap::core
