// Recursive dual-bisection mapping (extension; the paper's future-work
// direction of hierarchical/distributed mapping, and the family of Ercal
// et al.'s Allocation-by-Recursive-Mincut and Berman & Snyder's coalesce-
// then-map).
//
// Simultaneously bisect the task graph (minimizing cut bytes) and the
// processor set (minimizing cut links), assign task halves to processor
// halves, and recurse until singleton sets.  Communication locality is
// enforced top-down: the heaviest cut is paid once at the top level, so
// most bytes stay inside small processor neighbourhoods — without ever
// holding a p x p estimation table, which makes it the scalable
// alternative to TopoLB (O(n log n · bisect) vs O(p^2) memory/time).
//
// Which half of the tasks goes to which half of the processors is decided
// by the cheaper of the two pairings under a sampled hop-bytes estimate.
#pragma once

#include "core/strategy.hpp"

namespace topomap::core {

class RecursiveBisectionLB final : public MappingStrategy {
 public:
  Mapping map(const graph::TaskGraph& g, const topo::Topology& topo,
              Rng& rng) const override;
  std::string name() const override { return "RecursiveBisectionLB"; }
};

}  // namespace topomap::core
