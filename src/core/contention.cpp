#include "core/contention.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace topomap::core {

namespace {

/// Per-link accumulator: pair key (a * n + b) -> bytes.
using PairLoads = std::unordered_map<std::uint64_t, double>;

/// Walk every task-graph edge's routes (both directions, bytes/2 each — the
/// core::link_loads convention) and hand (link key, pair key, bytes) to
/// `sink`.  Sequential and in edge-list order: deterministic by
/// construction.
template <typename Sink>
void for_each_link_crossing(const graph::TaskGraph& g,
                            const topo::Topology& topo, const Mapping& m,
                            Sink&& sink) {
  TOPOMAP_REQUIRE(static_cast<int>(m.size()) == g.num_vertices(),
                  "mapping size does not match task graph");
  TOPOMAP_REQUIRE(is_complete(m, topo), "mapping is incomplete");
  const auto p = static_cast<std::uint64_t>(topo.size());
  const auto n = static_cast<std::uint64_t>(g.num_vertices());
  for (const graph::UndirectedEdge& e : g.edges()) {
    const int pa = m[static_cast<std::size_t>(e.a)];
    const int pb = m[static_cast<std::size_t>(e.b)];
    if (pa == pb) continue;
    const std::uint64_t pair_key =
        static_cast<std::uint64_t>(e.a) * n + static_cast<std::uint64_t>(e.b);
    const double half = e.bytes / 2.0;
    for (const auto& [src, dst] : {std::pair{pa, pb}, std::pair{pb, pa}}) {
      const std::vector<int> path = topo.route(src, dst);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto link_key = static_cast<std::uint64_t>(path[i]) * p +
                              static_cast<std::uint64_t>(path[i + 1]);
        sink(link_key, pair_key, half);
      }
    }
  }
}

ContentionStats stats_from_loads(std::vector<double> loads, int links_total) {
  ContentionStats stats;
  stats.links_total = links_total;
  std::sort(loads.begin(), loads.end());
  double sum_sq = 0.0;
  // Ascending-sorted accumulation: deterministic, and exact for the
  // integral-valued byte weights the benches and tests use.
  for (const double x : loads) {
    stats.total_bytes += x;
    sum_sq += x * x;
    if (x > 0.0) ++stats.links_used;
  }
  stats.max_bytes = loads.empty() ? 0.0 : loads.back();
  stats.mean_bytes =
      links_total > 0 ? stats.total_bytes / links_total : 0.0;
  stats.l2 = std::sqrt(sum_sq);
  // Gini over *all* directed links (unused links are zero-load samples):
  // G = sum_i (2i - n + 1) x_(i) / (n * total) with x ascending.
  if (stats.total_bytes > 0.0 && links_total > 0) {
    const auto used = static_cast<std::int64_t>(loads.size());
    const auto n = static_cast<std::int64_t>(links_total);
    const std::int64_t pad = n - used;  // implicit leading zeros
    double weighted = 0.0;
    for (std::int64_t i = 0; i < used; ++i)
      weighted +=
          static_cast<double>(2 * (pad + i) - n + 1) * loads[static_cast<std::size_t>(i)];
    stats.gini = weighted / (static_cast<double>(n) * stats.total_bytes);
  }
  return stats;
}

struct PairKeyed {
  std::uint64_t key;
  double bytes;
};

std::vector<LinkContributor> sorted_contributors(const PairLoads& pairs,
                                                 std::uint64_t n) {
  std::vector<PairKeyed> flat;
  flat.reserve(pairs.size());
  for (const auto& [key, bytes] : pairs) flat.push_back({key, bytes});
  std::sort(flat.begin(), flat.end(), [](const PairKeyed& x, const PairKeyed& y) {
    if (x.bytes != y.bytes) return x.bytes > y.bytes;
    return x.key < y.key;
  });
  std::vector<LinkContributor> out;
  out.reserve(flat.size());
  for (const PairKeyed& f : flat)
    out.push_back({static_cast<int>(f.key / n), static_cast<int>(f.key % n),
                   f.bytes});
  return out;
}

std::string pair_list(const std::vector<LinkContributor>& contributors,
                      int limit, bool with_bytes) {
  std::ostringstream os;
  const int shown =
      std::min<int>(limit, static_cast<int>(contributors.size()));
  for (int i = 0; i < shown; ++i) {
    if (i > 0) os << ", ";
    os << "(" << contributors[static_cast<std::size_t>(i)].a << ","
       << contributors[static_cast<std::size_t>(i)].b << ")";
    if (with_bytes)
      os << " " << obs::json::format_number(
                       contributors[static_cast<std::size_t>(i)].bytes)
         << " B";
  }
  if (static_cast<int>(contributors.size()) > shown)
    os << ", +" << contributors.size() - static_cast<std::size_t>(shown)
       << " more";
  return os.str();
}

}  // namespace

ContentionReport attribute_link_loads(const graph::TaskGraph& g,
                                      const topo::Topology& topo,
                                      const Mapping& m) {
  const auto p = static_cast<std::uint64_t>(topo.size());
  const auto n = static_cast<std::uint64_t>(g.num_vertices());
  std::unordered_map<std::uint64_t, PairLoads> per_link;
  for_each_link_crossing(
      g, topo, m,
      [&](std::uint64_t link_key, std::uint64_t pair_key, double bytes) {
        per_link[link_key][pair_key] += bytes;
      });

  ContentionReport report;
  report.links.reserve(per_link.size());
  std::vector<double> loads;
  loads.reserve(per_link.size());
  for (const auto& [link_key, pairs] : per_link) {
    LinkAttribution link;
    link.from = static_cast<int>(link_key / p);
    link.to = static_cast<int>(link_key % p);
    link.contributors = sorted_contributors(pairs, n);
    // The link total is *defined* as the sum of its contributors, in their
    // sorted order, so the sum-of-contributors invariant holds bit-exactly.
    for (const LinkContributor& c : link.contributors) link.bytes += c.bytes;
    loads.push_back(link.bytes);
    report.links.push_back(std::move(link));
  }
  std::sort(report.links.begin(), report.links.end(),
            [](const LinkAttribution& x, const LinkAttribution& y) {
              if (x.bytes != y.bytes) return x.bytes > y.bytes;
              if (x.from != y.from) return x.from < y.from;
              return x.to < y.to;
            });
  report.stats = stats_from_loads(std::move(loads), topo.directed_link_count());
  return report;
}

ContentionStats contention_stats(const graph::TaskGraph& g,
                                 const topo::Topology& topo,
                                 const Mapping& m) {
  std::unordered_map<std::uint64_t, double> load;
  for_each_link_crossing(g, topo, m,
                         [&](std::uint64_t link_key, std::uint64_t,
                             double bytes) { load[link_key] += bytes; });
  std::vector<double> loads;
  loads.reserve(load.size());
  for (const auto& [key, bytes] : load) loads.push_back(bytes);
  return stats_from_loads(std::move(loads), topo.directed_link_count());
}

ContentionDiff diff_contention(const ContentionReport& a,
                               const ContentionReport& b) {
  ContentionDiff diff;
  diff.stats_a = a.stats;
  diff.stats_b = b.stats;
  TOPOMAP_REQUIRE(a.stats.links_total == b.stats.links_total,
                  "contention diff: reports describe different machines");

  // Align by (from, to); links absent on one side count as zero-load.
  std::map<std::pair<int, int>, std::pair<const LinkAttribution*,
                                          const LinkAttribution*>>
      by_link;
  for (const LinkAttribution& link : a.links)
    by_link[{link.from, link.to}].first = &link;
  for (const LinkAttribution& link : b.links)
    by_link[{link.from, link.to}].second = &link;

  static const std::vector<LinkContributor> kNone;
  for (const auto& [key, ab] : by_link) {
    const auto& ca = ab.first != nullptr ? ab.first->contributors : kNone;
    const auto& cb = ab.second != nullptr ? ab.second->contributors : kNone;
    LinkDelta d;
    d.from = key.first;
    d.to = key.second;
    d.bytes_a = ab.first != nullptr ? ab.first->bytes : 0.0;
    d.bytes_b = ab.second != nullptr ? ab.second->bytes : 0.0;
    d.delta = d.bytes_b - d.bytes_a;
    auto pair_in = [](const std::vector<LinkContributor>& list, int pa,
                      int pb) {
      for (const LinkContributor& c : list)
        if (c.a == pa && c.b == pb) return true;
      return false;
    };
    for (const LinkContributor& c : ca)
      if (!pair_in(cb, c.a, c.b)) d.moved_off.push_back(c);
    for (const LinkContributor& c : cb)
      if (!pair_in(ca, c.a, c.b)) d.moved_on.push_back(c);
    if (d.delta != 0.0 || !d.moved_off.empty() || !d.moved_on.empty())
      diff.links.push_back(std::move(d));
  }
  std::sort(diff.links.begin(), diff.links.end(),
            [](const LinkDelta& x, const LinkDelta& y) {
              const double ax = std::abs(x.delta), ay = std::abs(y.delta);
              if (ax != ay) return ax > ay;
              if (x.from != y.from) return x.from < y.from;
              return x.to < y.to;
            });
  return diff;
}

obs::json::Value contention_stats_to_json(const ContentionStats& stats) {
  obs::json::Value v = obs::json::Value::object();
  v.set("total_bytes", stats.total_bytes);
  v.set("max_bytes", stats.max_bytes);
  v.set("mean_bytes", stats.mean_bytes);
  v.set("l2", stats.l2);
  v.set("gini", stats.gini);
  v.set("links_used", stats.links_used);
  v.set("links_total", stats.links_total);
  return v;
}

namespace {

obs::json::Value contributor_json(const LinkContributor& c) {
  obs::json::Value v = obs::json::Value::object();
  v.set("a", c.a);
  v.set("b", c.b);
  v.set("bytes", c.bytes);
  return v;
}

}  // namespace

obs::json::Value contention_links_to_json(const ContentionReport& report,
                                          int top_k) {
  TOPOMAP_REQUIRE(top_k >= 1, "top_k must be >= 1");
  obs::json::Value links = obs::json::Value::array();
  for (const LinkAttribution& link : report.links) {
    obs::json::Value v = obs::json::Value::object();
    v.set("from", link.from);
    v.set("to", link.to);
    v.set("bytes", link.bytes);
    v.set("pairs", static_cast<std::int64_t>(link.contributors.size()));
    obs::json::Value contributors = obs::json::Value::array();
    const auto shown = std::min<std::size_t>(
        static_cast<std::size_t>(top_k), link.contributors.size());
    for (std::size_t i = 0; i < shown; ++i)
      contributors.push_back(contributor_json(link.contributors[i]));
    // The tail beyond top-K is folded into one "rest" bucket so the JSON
    // contributors still sum to the link total exactly.
    if (shown < link.contributors.size()) {
      double rest = 0.0;
      for (std::size_t i = shown; i < link.contributors.size(); ++i)
        rest += link.contributors[i].bytes;
      obs::json::Value other = obs::json::Value::object();
      other.set("a", -1);
      other.set("b", -1);
      other.set("bytes", rest);
      contributors.push_back(std::move(other));
    }
    v.set("contributors", std::move(contributors));
    links.push_back(std::move(v));
  }
  return links;
}

obs::json::Value contention_diff_to_json(const ContentionDiff& diff,
                                         int top_k) {
  TOPOMAP_REQUIRE(top_k >= 1, "top_k must be >= 1");
  obs::json::Value links = obs::json::Value::array();
  for (const LinkDelta& d : diff.links) {
    obs::json::Value v = obs::json::Value::object();
    v.set("from", d.from);
    v.set("to", d.to);
    v.set("bytes_a", d.bytes_a);
    v.set("bytes_b", d.bytes_b);
    v.set("delta", d.delta);
    auto moved = [&](const std::vector<LinkContributor>& list) {
      obs::json::Value arr = obs::json::Value::array();
      const auto shown =
          std::min<std::size_t>(static_cast<std::size_t>(top_k), list.size());
      for (std::size_t i = 0; i < shown; ++i)
        arr.push_back(contributor_json(list[i]));
      return arr;
    };
    v.set("moved_off", moved(d.moved_off));
    v.set("moved_on", moved(d.moved_on));
    links.push_back(std::move(v));
  }
  return links;
}

std::string render_contention_summary(const ContentionReport& report,
                                      int top_links, int top_k) {
  std::ostringstream os;
  const ContentionStats& s = report.stats;
  os << "link loads:     max " << obs::json::format_number(s.max_bytes)
     << " B, mean " << obs::json::format_number(s.mean_bytes) << " B, L2 "
     << obs::json::format_number(s.l2) << ", gini "
     << format_fixed(s.gini, 3) << " over " << s.links_total
     << " directed links (" << s.links_used << " used)\n";
  if (report.links.empty() || s.max_bytes <= 0.0) return os.str();

  // Heatmap strip: one ramp character per loaded link, hottest = '@',
  // ordered by (from, to) so the strip is stable across runs.  Unloaded
  // links are omitted (their count is in the stats line above).
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kRampMax = 9;   // last index of kRamp
  constexpr int kPerRow = 64;
  constexpr int kMaxRows = 16;  // cap the strip on very large machines
  std::vector<const LinkAttribution*> by_id;
  by_id.reserve(report.links.size());
  for (const LinkAttribution& link : report.links) by_id.push_back(&link);
  std::sort(by_id.begin(), by_id.end(),
            [](const LinkAttribution* x, const LinkAttribution* y) {
              if (x->from != y->from) return x->from < y->from;
              return x->to < y->to;
            });
  os << "heatmap (loaded links by id, ' '=0 '@'=max):\n";
  const int rows = std::min<int>(
      kMaxRows,
      static_cast<int>((by_id.size() + kPerRow - 1) / kPerRow));
  for (int r = 0; r < rows; ++r) {
    os << "  [";
    for (int i = r * kPerRow;
         i < (r + 1) * kPerRow && i < static_cast<int>(by_id.size()); ++i) {
      const double frac = by_id[static_cast<std::size_t>(i)]->bytes / s.max_bytes;
      const int level = std::min(
          kRampMax, static_cast<int>(std::ceil(frac * kRampMax)));
      os << kRamp[level];
    }
    os << "]\n";
  }
  if (static_cast<int>(by_id.size()) > rows * kPerRow)
    os << "  ... " << by_id.size() - static_cast<std::size_t>(rows * kPerRow)
       << " more links\n";

  os << "hottest links:\n";
  const int shown =
      std::min<int>(top_links, static_cast<int>(report.links.size()));
  for (int i = 0; i < shown; ++i) {
    const LinkAttribution& link = report.links[static_cast<std::size_t>(i)];
    os << "  (" << link.from << "," << link.to << ")  "
       << obs::json::format_number(link.bytes) << " B  pairs: "
       << pair_list(link.contributors, top_k, true) << "\n";
  }
  return os.str();
}

std::string render_contention_diff(const ContentionDiff& diff, int top_links,
                                   int top_k) {
  std::ostringstream os;
  os << "mapping diff:   max link "
     << obs::json::format_number(diff.stats_a.max_bytes) << " -> "
     << obs::json::format_number(diff.stats_b.max_bytes) << " B, L2 "
     << obs::json::format_number(diff.stats_a.l2) << " -> "
     << obs::json::format_number(diff.stats_b.l2) << ", "
     << diff.links.size() << " links changed\n";
  const int shown =
      std::min<int>(top_links, static_cast<int>(diff.links.size()));
  for (int i = 0; i < shown; ++i) {
    const LinkDelta& d = diff.links[static_cast<std::size_t>(i)];
    os << "  link (" << d.from << "," << d.to << "): "
       << obs::json::format_number(d.bytes_a) << " -> "
       << obs::json::format_number(d.bytes_b) << " B";
    if (!d.moved_off.empty())
      os << "; moved off: " << pair_list(d.moved_off, top_k, false);
    if (!d.moved_on.empty())
      os << "; moved on: " << pair_list(d.moved_on, top_k, false);
    os << "\n";
  }
  if (static_cast<int>(diff.links.size()) > shown)
    os << "  ... " << diff.links.size() - static_cast<std::size_t>(shown)
       << " more links changed\n";
  return os.str();
}

}  // namespace topomap::core
