#include "core/mapping.hpp"

#include "support/error.hpp"

namespace topomap::core {

bool is_complete(const Mapping& m, const topo::Topology& topo) {
  for (int p : m)
    if (p < 0 || p >= topo.size()) return false;
  return true;
}

bool is_one_to_one(const Mapping& m, const topo::Topology& topo) {
  if (!is_complete(m, topo)) return false;
  std::vector<char> used(static_cast<std::size_t>(topo.size()), 0);
  for (int p : m) {
    if (used[static_cast<std::size_t>(p)]) return false;
    used[static_cast<std::size_t>(p)] = 1;
  }
  return true;
}

Mapping identity_mapping(int n) {
  TOPOMAP_REQUIRE(n >= 0, "negative task count");
  Mapping m(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) m[static_cast<std::size_t>(i)] = i;
  return m;
}

std::vector<int> inverse_mapping(const Mapping& m, const topo::Topology& topo) {
  TOPOMAP_REQUIRE(is_one_to_one(m, topo), "mapping is not one-to-one");
  std::vector<int> inv(static_cast<std::size_t>(topo.size()), kUnassigned);
  for (std::size_t t = 0; t < m.size(); ++t)
    inv[static_cast<std::size_t>(m[t])] = static_cast<int>(t);
  return inv;
}

}  // namespace topomap::core
