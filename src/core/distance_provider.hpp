// Internal: uniform, non-virtual distance access for the mapping kernels.
//
// Every kernel in src/core is written once against a `Dist` template
// parameter and instantiated twice — with CachedDistance (dense uint16 rows
// from a topo::DistanceCache) and VirtualDistance (plain
// Topology::distance dispatch).  Both providers expose the same three
// operations, perform the same integer distance math, and return the same
// mean-distance doubles, so the two instantiations are byte-identical in
// behaviour; only the lookup cost differs.  row(a) returns something
// indexable by processor id — a raw pointer for the cache, a thin adapter
// for the virtual path — and should be hoisted out of inner loops.
#pragma once

#include <cstdint>

#include "topo/distance_cache.hpp"
#include "topo/topology.hpp"

namespace topomap::core::detail {

struct VirtualDistance {
  const topo::Topology& topo;

  struct Row {
    const topo::Topology& topo;
    int a;
    int operator[](int b) const { return topo.distance(a, b); }
  };

  int operator()(int a, int b) const { return topo.distance(a, b); }
  Row row(int a) const { return Row{topo, a}; }
  double mean_distance_from(int p) const { return topo.mean_distance_from(p); }
};

struct CachedDistance {
  const topo::DistanceCache& cache;

  int operator()(int a, int b) const { return cache.distance(a, b); }
  const std::uint16_t* row(int a) const { return cache.row(a); }
  double mean_distance_from(int p) const { return cache.mean_distance_from(p); }
};

}  // namespace topomap::core::detail
