// Link-load-aware swap refinement (extension beyond the paper).
//
// Hop-bytes is a *sum* over links: it cannot distinguish a mapping that
// spreads traffic evenly from one that piles the same hop-bytes onto a few
// hot links.  Our Fig-11 reproduction surfaces exactly this (see
// EXPERIMENTS.md): TopoLB's hop-optimal embedding of an 8x8 stencil in a
// (4,4,4) *mesh* doubles up messages on some links.  LinkRefine fixes such
// cases by hill-climbing on the L2 norm of per-link loads (sum of squared
// link bytes under deterministic routing), which preferentially unloads
// the hottest links while leaving total hop-bytes approximately conserved.
#pragma once

#include "core/strategy.hpp"

namespace topomap::core {

struct LinkRefineResult {
  Mapping mapping;
  int swaps = 0;
  int passes = 0;
  double l2_before = 0.0;   ///< sum of squared per-link bytes
  double l2_after = 0.0;
  double max_before = 0.0;  ///< busiest-link bytes
  double max_after = 0.0;
};

/// Sweep task pairs, accepting swaps that strictly reduce the L2 link-load
/// norm.  Requires a one-to-one mapping and a routed topology.
/// The L2 norm is monotonically non-increasing; the busiest-link load
/// usually (not provably) drops with it.
LinkRefineResult refine_link_load(const graph::TaskGraph& g,
                                  const topo::Topology& topo,
                                  const Mapping& m, int max_passes = 4);

/// Strategy adaptor: run `base`, then link-load refinement.
class LinkRefinedStrategy final : public MappingStrategy {
 public:
  explicit LinkRefinedStrategy(StrategyPtr base, int max_passes = 4);

  Mapping map(const graph::TaskGraph& g, const topo::Topology& topo,
              Rng& rng) const override;
  std::string name() const override;

 private:
  StrategyPtr base_;
  int max_passes_;
};

}  // namespace topomap::core
