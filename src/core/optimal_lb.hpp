// Exact-optimal mapping oracle: branch-and-bound minimization of hop-bytes
// over injective task -> processor assignments.
//
// Every heuristic in src/core is sold on *relative* wins (vs. random, vs.
// the previous strategy).  This solver supplies the missing ground truth on
// small instances: the provably minimal hop-bytes, against which CI bounds
// each strategy's optimality gap (tests/test_optimal_oracle.cpp,
// bench/ablation_optimality_gap.cpp, scripts/bench_gate.sh).
//
// Search.  Tasks are ordered once, by descending total communication (ties
// to the lower id), and placed depth-first; at each depth the free
// processors are tried in ascending order of the exact incremental cost to
// the already-placed neighbours (ties to the lower processor id).  A node
// is cut when an *admissible* lower bound on any completion reaches the
// incumbent:
//
//   bound = cost(placed edges)                              (exact)
//         + sum over unplaced tasks u with placed neighbours of
//             min over free q of  sum_nb bytes(u,nb) * d(P(nb), q)
//         + sorted-pair bound on edges with both endpoints unplaced
//
// The middle (cross) term is the larger of two admissible prices: each
// frontier task at its individually cheapest free processor (tasks may
// share a processor), or the k smallest per-processor column minima for k
// frontier tasks (the frontier occupies k distinct processors).  The last
// term is the sorted partial-assignment bound: an injective assignment
// sends distinct edges to distinct processor pairs, so pairing the
// suffix's byte weights in descending order with the smallest pairwise
// distances in ascending order (rearrangement inequality) bounds any
// completion from below — priced against the free processors when the free
// set is small, the whole machine otherwise.  On a clique mapped onto the
// whole machine both terms are exact, so the cost plateau prunes at the
// root instead of exploding factorially.
//
// Symmetry.  The root branching (first task's processor) is restricted to
// canonical representatives under the machine's automorphism group:
// vertex-transitive machines (torus, hypercube) pin the first task to
// processor 0, meshes restrict each open dimension's coordinate to the
// lower half (reflection), wrapped dimensions to 0 (translation).  A
// pristine FaultOverlay is unwrapped to its base for seed detection; any
// real fault disables the pruning (faults break the symmetry).
//
// Determinism.  Root subtrees are searched independently (each with its own
// incumbent seeded from a deterministic greedy upper bound) on the
// support::parallel pool and merged in ascending root order with a strict
// comparison, so the mapping, the optimal value, and the node counts are
// byte-identical at any thread count.  All distances come from one
// topo::DistanceCache plane.
//
// Limits.  Instances beyond OptimalOptions::max_tasks (default 12) throw
// precondition_error up front; a search that exhausts its node budget
// throws precondition_error instead of silently returning a non-optimum.
// Unreachable processor pairs (faulted overlays) price as +infinity, so a
// partitioned machine that cannot host the communication graph throws
// "no feasible placement" rather than returning a broken mapping.
#pragma once

#include "core/mapping.hpp"
#include "core/strategy.hpp"
#include "graph/task_graph.hpp"
#include "support/rng.hpp"
#include "topo/topology.hpp"

namespace topomap::core {

struct OptimalOptions {
  /// Hard instance-size cap: more tasks throw precondition_error.  The
  /// factorial search space makes ~12 the practical ceiling.
  int max_tasks = 12;
  /// Total branch-and-bound node budget (task->processor assignments
  /// tried), split evenly across the root branches.  Exhausting a root's
  /// share throws precondition_error — never a silent non-optimum.
  long long node_budget = 20'000'000;
  /// Restrict the first task's placement to automorphism representatives
  /// (tori/meshes/hypercubes on pristine machines).  Off explores every
  /// usable root — the equivalence the oracle tests assert.
  bool symmetry = true;
};

struct OptimalResult {
  /// Injective task -> processor assignment attaining the minimum.
  Mapping mapping;
  /// The provably minimal hop-bytes, recomputed over the task-graph edge
  /// list in its canonical order (comparable to core::hop_bytes).
  double hop_bytes = 0.0;
  /// Assignments tried across all root subtrees (thread-count invariant).
  long long nodes = 0;
  /// Subtrees cut by the admissible bound.
  long long pruned = 0;
  /// First-task placements after symmetry pruning.
  int root_candidates = 0;
};

/// Exact minimum-hop-bytes assignment of g onto `topo` (or onto the alive
/// processors when `topo` is a topo::FaultOverlay).  Requires
/// 1 <= g.num_vertices() <= usable processors and
/// g.num_vertices() <= options.max_tasks.
OptimalResult find_optimal_mapping(const graph::TaskGraph& g,
                                   const topo::Topology& topo,
                                   const OptimalOptions& options = {});

/// MappingStrategy facade over find_optimal_mapping so the oracle can ride
/// every spec-driven harness (make_strategy("optimal"), the CLI, the
/// invariance suites).  Accepts n <= p (injective; bijective at n == p).
/// The oracle always reads a dense distance plane, so it takes no
/// DistanceMode: it is not part of the cached-vs-virtual equivalence suite.
class OptimalLB final : public MappingStrategy {
 public:
  explicit OptimalLB(OptimalOptions options = {})
      : options_(options) {}

  Mapping map(const graph::TaskGraph& g, const topo::Topology& topo,
              Rng& rng) const override;
  std::string name() const override { return "OptimalLB"; }

 private:
  OptimalOptions options_;
};

}  // namespace topomap::core
