#include "core/fault_aware.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>

#include "graph/quotient.hpp"
#include "support/error.hpp"
#include "topo/components.hpp"
#include "topo/sub_topology.hpp"

namespace topomap::core {

namespace {

/// Map g (padded with zero-weight tasks up to the view size) onto the
/// given alive processors of `overlay`, translating back to original ids.
Mapping map_on_procs(const MappingStrategy& strategy, const graph::TaskGraph& g,
                     const topo::FaultOverlay& overlay,
                     const std::vector<int>& procs, Rng& rng) {
  const int n = g.num_vertices();
  const int slots = static_cast<int>(procs.size());
  // Non-owning view: the SubTopology lives only inside this call, strictly
  // shorter than the caller's overlay.
  topo::TopologyPtr view(topo::TopologyPtr{}, &overlay);
  const auto sub = std::make_shared<const topo::SubTopology>(view, procs);

  const graph::TaskGraph* run_g = &g;
  graph::TaskGraph padded;
  if (n < slots) {
    graph::TaskGraph::Builder b(g.label() + "+pad");
    for (int v = 0; v < n; ++v) b.add_vertex(g.vertex_weight(v));
    b.add_vertices(slots - n, 0.0);
    for (const graph::UndirectedEdge& e : g.edges())
      b.add_edge(e.a, e.b, e.bytes);
    padded = std::move(b).build();
    run_g = &padded;
  }

  const Mapping compact = strategy.map(*run_g, *sub, rng);
  Mapping out(static_cast<std::size_t>(n), kUnassigned);
  for (int t = 0; t < n; ++t)
    out[static_cast<std::size_t>(t)] =
        sub->node_of(compact[static_cast<std::size_t>(t)]);
  return out;
}

}  // namespace

Mapping map_on_alive(const MappingStrategy& strategy,
                     const graph::TaskGraph& g,
                     const topo::FaultOverlay& overlay, Rng& rng) {
  const int n = g.num_vertices();
  const int alive = overlay.num_alive();
  TOPOMAP_REQUIRE(n >= 1, "map_on_alive: empty task graph");
  TOPOMAP_REQUIRE(n <= alive,
                  "map_on_alive: " + std::to_string(n) + " tasks exceed " +
                      std::to_string(alive) + " alive processors on " +
                      overlay.name());

  const topo::ComponentSplit split = topo::connected_components(overlay);
  if (!split.partitioned()) return map_on_procs(strategy, g, overlay,
                                                split.primary(), rng);
  // A split machine still serves requests that fit its primary component;
  // only genuine overflow is an error, and it names the partition.
  TOPOMAP_REQUIRE(
      n <= static_cast<int>(split.primary().size()),
      "map_on_alive: " + std::to_string(n) + " tasks exceed the " +
          std::to_string(split.primary().size()) +
          "-processor primary component — " +
          topo::describe_partition(overlay, split) +
          "; restore connectivity or use map_on_largest_component to "
          "quarantine the overflow");
  return map_on_procs(strategy, g, overlay, split.primary(), rng);
}

PartitionedMapResult map_on_largest_component(const MappingStrategy& strategy,
                                              const graph::TaskGraph& g,
                                              const topo::FaultOverlay& overlay,
                                              Rng& rng) {
  const int n = g.num_vertices();
  TOPOMAP_REQUIRE(n >= 1, "map_on_largest_component: empty task graph");
  TOPOMAP_REQUIRE(overlay.num_alive() >= 1,
                  "map_on_largest_component: no alive processors on " +
                      overlay.name());
  const topo::ComponentSplit split = topo::connected_components(overlay);

  PartitionedMapResult out;
  out.components = split.count();
  out.primary_size = static_cast<int>(split.primary().size());
  if (n <= out.primary_size) {
    out.mapping = map_on_procs(strategy, g, overlay, split.primary(), rng);
    return out;
  }

  // Overflow: keep the heaviest communicators (total incident bytes, ties
  // to the lower id), quarantine the rest unplaced.
  std::vector<double> volume(static_cast<std::size_t>(n), 0.0);
  for (const graph::UndirectedEdge& e : g.edges()) {
    volume[static_cast<std::size_t>(e.a)] += e.bytes;
    volume[static_cast<std::size_t>(e.b)] += e.bytes;
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
    return volume[static_cast<std::size_t>(x)] >
           volume[static_cast<std::size_t>(y)];
  });
  std::vector<int> kept(order.begin(), order.begin() + out.primary_size);
  std::sort(kept.begin(), kept.end());
  out.quarantined.assign(order.begin() + out.primary_size, order.end());
  std::sort(out.quarantined.begin(), out.quarantined.end());

  const graph::Subgraph active = graph::induced_subgraph(g, kept);
  const Mapping placed =
      map_on_procs(strategy, active.graph, overlay, split.primary(), rng);
  out.mapping.assign(static_cast<std::size_t>(n), kUnassigned);
  for (std::size_t i = 0; i < kept.size(); ++i)
    out.mapping[static_cast<std::size_t>(kept[i])] = placed[i];
  return out;
}

}  // namespace topomap::core
