#include "core/fault_aware.hpp"

#include <string>
#include <utility>

#include "support/error.hpp"
#include "topo/sub_topology.hpp"

namespace topomap::core {

Mapping map_on_alive(const MappingStrategy& strategy,
                     const graph::TaskGraph& g,
                     const topo::FaultOverlay& overlay, Rng& rng) {
  const int n = g.num_vertices();
  const int alive = overlay.num_alive();
  TOPOMAP_REQUIRE(n >= 1, "map_on_alive: empty task graph");
  TOPOMAP_REQUIRE(n <= alive,
                  "map_on_alive: " + std::to_string(n) + " tasks exceed " +
                      std::to_string(alive) + " alive processors on " +
                      overlay.name());

  // Non-owning view: the SubTopology lives only inside this call, strictly
  // shorter than the caller's overlay.  The constructor rejects a
  // disconnected alive set with precondition_error.
  topo::TopologyPtr view(topo::TopologyPtr{}, &overlay);
  const auto sub =
      std::make_shared<const topo::SubTopology>(view, overlay.alive_procs());

  const graph::TaskGraph* run_g = &g;
  graph::TaskGraph padded;
  if (n < alive) {
    graph::TaskGraph::Builder b(g.label() + "+pad");
    for (int v = 0; v < n; ++v) b.add_vertex(g.vertex_weight(v));
    b.add_vertices(alive - n, 0.0);
    for (const graph::UndirectedEdge& e : g.edges())
      b.add_edge(e.a, e.b, e.bytes);
    padded = std::move(b).build();
    run_g = &padded;
  }

  const Mapping compact = strategy.map(*run_g, *sub, rng);
  Mapping out(static_cast<std::size_t>(n), kUnassigned);
  for (int t = 0; t < n; ++t)
    out[static_cast<std::size_t>(t)] =
        sub->node_of(compact[static_cast<std::size_t>(t)]);
  return out;
}

}  // namespace topomap::core
