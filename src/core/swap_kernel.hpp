// Internal: templated pair-swap hop-bytes delta, shared by RefineTopoLB's
// sweep and AnnealingLB's Metropolis chain.  `Dist` is one of the
// core/distance_provider.hpp providers; both instantiations compute
// identical terms in identical order (integer distance difference, then one
// multiply-accumulate per edge), matching the public swap_delta() exactly.
#pragma once

#include "core/distance_provider.hpp"
#include "core/mapping.hpp"
#include "graph/task_graph.hpp"

namespace topomap::core::detail {

template <class Dist>
double swap_delta_dist(const graph::TaskGraph& g, const Dist& dist,
                       const Mapping& m, int a, int b) {
  const int pa = m[static_cast<std::size_t>(a)];
  const int pb = m[static_cast<std::size_t>(b)];
  if (pa == pb) return 0.0;
  const auto row_a = dist.row(pa);
  const auto row_b = dist.row(pb);
  double delta = 0.0;
  for (const graph::Edge& e : g.edges_of(a)) {
    if (e.neighbor == b) continue;  // the (a,b) edge length is unchanged
    const int pj = m[static_cast<std::size_t>(e.neighbor)];
    delta += e.bytes * static_cast<double>(row_b[pj] - row_a[pj]);
  }
  for (const graph::Edge& e : g.edges_of(b)) {
    if (e.neighbor == a) continue;
    const int pj = m[static_cast<std::size_t>(e.neighbor)];
    delta += e.bytes * static_cast<double>(row_a[pj] - row_b[pj]);
  }
  return delta;
}

}  // namespace topomap::core::detail
