#include "core/recursive_map.hpp"

#include <algorithm>
#include <limits>

#include "graph/quotient.hpp"
#include "partition/multilevel.hpp"
#include "support/error.hpp"

namespace topomap::core {

namespace {

using graph::TaskGraph;

/// Balanced 2-way split with an *exact* left-side count: run the
/// multilevel bisection, then repair the count by moving the cheapest
/// (least cut-increasing) vertices across.
std::vector<int> bisect_exact(const TaskGraph& g, int left_count, Rng& rng) {
  const int n = g.num_vertices();
  TOPOMAP_ASSERT(left_count >= 0 && left_count <= n, "bad split size");
  part::MultilevelPartitioner bisector;
  std::vector<int> side =
      (left_count == 0 || left_count == n)
          ? std::vector<int>(static_cast<std::size_t>(n),
                             left_count == n ? 0 : 1)
          : bisector.bisect(g, static_cast<double>(left_count) /
                                   static_cast<double>(n),
                            rng);

  auto count_left = [&side] {
    int c = 0;
    for (int s : side) c += (s == 0);
    return c;
  };
  // Move gain of flipping v: cut-reduction (positive = cut shrinks).
  auto flip_gain = [&](int v) {
    double gain = 0.0;
    for (const graph::Edge& e : g.edges_of(v))
      gain += (side[static_cast<std::size_t>(e.neighbor)] !=
               side[static_cast<std::size_t>(v)])
                  ? e.bytes
                  : -e.bytes;
    return gain;
  };
  int have = count_left();
  while (have != left_count) {
    const int donor = have > left_count ? 0 : 1;
    int best = -1;
    double best_gain = -std::numeric_limits<double>::infinity();
    for (int v = 0; v < n; ++v) {
      if (side[static_cast<std::size_t>(v)] != donor) continue;
      const double gain = flip_gain(v);
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    TOPOMAP_ASSERT(best >= 0, "no vertex available to rebalance");
    side[static_cast<std::size_t>(best)] = 1 - donor;
    have += donor == 0 ? -1 : 1;
  }
  return side;
}

/// Processor-adjacency graph of a processor subset (unit weights, unit
/// link weights), for topology-side bisection.
TaskGraph proc_graph(const topo::Topology& topo,
                     const std::vector<int>& procs) {
  std::vector<int> global_to_local(static_cast<std::size_t>(topo.size()), -1);
  TaskGraph::Builder b("procs");
  for (std::size_t i = 0; i < procs.size(); ++i) {
    global_to_local[static_cast<std::size_t>(procs[i])] =
        static_cast<int>(i);
    b.add_vertex(1.0);
  }
  for (std::size_t i = 0; i < procs.size(); ++i) {
    for (int nbr : topo.neighbors(procs[i])) {
      const int lj = global_to_local[static_cast<std::size_t>(nbr)];
      if (lj > static_cast<int>(i)) b.add_edge(static_cast<int>(i), lj, 1.0);
    }
  }
  return std::move(b).build();
}

struct Solver {
  const TaskGraph& g;            // original task graph
  const topo::Topology& topo;
  Rng& rng;
  Mapping mapping;               // filled in as recursion bottoms out

  /// Estimated cost of placing task half `tasks` on processor half
  /// `procs`, counting only edges to already-assigned tasks (first-order,
  /// sampled over a few representative processors of the half).
  double pairing_cost(const std::vector<int>& tasks,
                      const std::vector<int>& procs) const {
    double cost = 0.0;
    const std::size_t samples = std::min<std::size_t>(procs.size(), 4);
    for (int t : tasks) {
      for (const graph::Edge& e : g.edges_of(t)) {
        const int pj = mapping[static_cast<std::size_t>(e.neighbor)];
        if (pj == kUnassigned) continue;
        double dist = 0.0;
        for (std::size_t s = 0; s < samples; ++s)
          dist += topo.distance(procs[s * (procs.size() - 1) /
                                      std::max<std::size_t>(1, samples - 1)],
                                pj);
        cost += e.bytes * dist / static_cast<double>(samples);
      }
    }
    return cost;
  }

  void recurse(const std::vector<int>& tasks, const std::vector<int>& procs) {
    const int n = static_cast<int>(tasks.size());
    TOPOMAP_ASSERT(n == static_cast<int>(procs.size()),
                   "task/processor subset size mismatch");
    if (n == 0) return;
    if (n == 1) {
      mapping[static_cast<std::size_t>(tasks[0])] = procs[0];
      return;
    }
    const int n_left = n / 2;

    // Bisect tasks by communication (unit weights: one task per processor)
    // and processors by links.
    const graph::Subgraph tsub =
        graph::induced_subgraph(g, tasks, /*unit_weights=*/true);
    const std::vector<int> tside = bisect_exact(tsub.graph, n_left, rng);
    const TaskGraph pgraph = proc_graph(topo, procs);
    const std::vector<int> pside = bisect_exact(pgraph, n_left, rng);

    std::vector<int> t_half[2], p_half[2];
    for (int i = 0; i < n; ++i) {
      t_half[tside[static_cast<std::size_t>(i)]].push_back(
          tasks[static_cast<std::size_t>(i)]);
      p_half[pside[static_cast<std::size_t>(i)]].push_back(
          procs[static_cast<std::size_t>(i)]);
    }
    TOPOMAP_ASSERT(t_half[0].size() == p_half[0].size(),
                   "bisection halves disagree");

    // Pick the cheaper of the two half-pairings w.r.t. already-placed
    // neighbours outside this subproblem.  Crossing is only well-formed
    // when the halves have equal sizes (even n).
    bool cross = false;
    if (t_half[0].size() == t_half[1].size()) {
      const double straight = pairing_cost(t_half[0], p_half[0]) +
                              pairing_cost(t_half[1], p_half[1]);
      const double crossed = pairing_cost(t_half[0], p_half[1]) +
                             pairing_cost(t_half[1], p_half[0]);
      cross = crossed < straight;
    }
    recurse(t_half[0], cross ? p_half[1] : p_half[0]);
    recurse(t_half[1], cross ? p_half[0] : p_half[1]);
  }
};

}  // namespace

Mapping RecursiveBisectionLB::map(const graph::TaskGraph& g,
                                  const topo::Topology& topo,
                                  Rng& rng) const {
  require_square(g, topo);
  const int n = g.num_vertices();
  Solver solver{g, topo, rng,
                Mapping(static_cast<std::size_t>(n), kUnassigned)};
  std::vector<int> all_tasks(static_cast<std::size_t>(n));
  std::vector<int> all_procs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    all_tasks[static_cast<std::size_t>(i)] = i;
    all_procs[static_cast<std::size_t>(i)] = i;
  }
  solver.recurse(all_tasks, all_procs);
  TOPOMAP_ASSERT(is_one_to_one(solver.mapping, topo),
                 "recursive bisection produced an invalid mapping");
  return solver.mapping;
}

}  // namespace topomap::core
