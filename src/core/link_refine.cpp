#include "core/link_refine.hpp"

#include <unordered_map>

#include "support/error.hpp"

namespace topomap::core {

namespace {

/// Per-link byte loads with an incrementally-maintained L2 norm.
class LinkLoadState {
 public:
  LinkLoadState(const graph::TaskGraph& g, const topo::Topology& topo,
                const Mapping& m)
      : topo_(topo), p_(static_cast<std::uint64_t>(topo.size())) {
    for (const graph::UndirectedEdge& e : g.edges()) {
      const int pa = m[static_cast<std::size_t>(e.a)];
      const int pb = m[static_cast<std::size_t>(e.b)];
      add_route(pa, pb, e.bytes / 2.0);
      add_route(pb, pa, e.bytes / 2.0);
    }
  }

  /// Move one endpoint of every incident edge of `task` (except the edge
  /// to `exclude`) from `old_proc` to `new_proc`.
  void shift_edges(const graph::TaskGraph& g, const Mapping& m, int task,
                   int exclude, int old_proc, int new_proc) {
    for (const graph::Edge& e : g.edges_of(task)) {
      if (e.neighbor == exclude) continue;
      const int pj = m[static_cast<std::size_t>(e.neighbor)];
      add_route(old_proc, pj, -e.bytes / 2.0);
      add_route(pj, old_proc, -e.bytes / 2.0);
      add_route(new_proc, pj, e.bytes / 2.0);
      add_route(pj, new_proc, e.bytes / 2.0);
    }
  }

  double l2() const { return l2_; }

  double max_load() const {
    double mx = 0.0;
    for (const auto& [key, bytes] : load_)
      if (bytes > mx) mx = bytes;
    return mx;
  }

 private:
  void add_route(int from, int to, double bytes) {
    if (from == to) return;
    const std::vector<int> path = topo_.route(from, to);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto key = static_cast<std::uint64_t>(path[i]) * p_ +
                       static_cast<std::uint64_t>(path[i + 1]);
      double& slot = load_[key];
      const double old = slot;
      slot += bytes;
      l2_ += slot * slot - old * old;
    }
  }

  const topo::Topology& topo_;
  std::uint64_t p_;
  std::unordered_map<std::uint64_t, double> load_;
  double l2_ = 0.0;
};

}  // namespace

LinkRefineResult refine_link_load(const graph::TaskGraph& g,
                                  const topo::Topology& topo,
                                  const Mapping& m, int max_passes) {
  TOPOMAP_REQUIRE(max_passes >= 1, "need at least one sweep");
  TOPOMAP_REQUIRE(is_one_to_one(m, topo),
                  "link refiner needs a one-to-one mapping");
  TOPOMAP_REQUIRE(static_cast<int>(m.size()) == g.num_vertices(),
                  "mapping size mismatch");

  LinkRefineResult result;
  result.mapping = m;
  LinkLoadState state(g, topo, result.mapping);
  result.l2_before = state.l2();
  result.max_before = state.max_load();
  const int n = g.num_vertices();

  for (int pass = 0; pass < max_passes; ++pass) {
    ++result.passes;
    bool improved = false;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        // Only swaps touching at least one communicating task can help.
        if (g.degree(a) == 0 && g.degree(b) == 0) continue;
        Mapping& map = result.mapping;
        const int pa = map[static_cast<std::size_t>(a)];
        const int pb = map[static_cast<std::size_t>(b)];
        const double before = state.l2();
        state.shift_edges(g, map, a, b, pa, pb);
        state.shift_edges(g, map, b, a, pb, pa);
        if (state.l2() < before - 1e-6) {
          std::swap(map[static_cast<std::size_t>(a)],
                    map[static_cast<std::size_t>(b)]);
          ++result.swaps;
          improved = true;
        } else {
          state.shift_edges(g, map, a, b, pb, pa);  // revert
          state.shift_edges(g, map, b, a, pa, pb);
        }
      }
    }
    if (!improved) break;
  }
  // Recompute the final norm from scratch: the accept/revert cycles above
  // leave tiny floating-point drift in the incremental accumulator.
  const LinkLoadState final_state(g, topo, result.mapping);
  result.l2_after = final_state.l2();
  result.max_after = final_state.max_load();
  TOPOMAP_ASSERT(result.l2_after <=
                     result.l2_before * (1.0 + 1e-9) + 1e-9,
                 "link refinement must not increase the L2 norm");
  return result;
}

LinkRefinedStrategy::LinkRefinedStrategy(StrategyPtr base, int max_passes)
    : base_(std::move(base)), max_passes_(max_passes) {
  TOPOMAP_REQUIRE(base_ != nullptr, "base strategy is null");
  TOPOMAP_REQUIRE(max_passes_ >= 1, "need at least one sweep");
}

Mapping LinkRefinedStrategy::map(const graph::TaskGraph& g,
                                 const topo::Topology& topo, Rng& rng) const {
  const Mapping base = base_->map(g, topo, rng);
  return refine_link_load(g, topo, base, max_passes_).mapping;
}

std::string LinkRefinedStrategy::name() const {
  return base_->name() + "+LinkRefine";
}

}  // namespace topomap::core
