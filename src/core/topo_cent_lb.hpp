// TopoCentLB (paper §4.5) — the simpler greedy comparator to TopoLB,
// equivalent to Baba et al.'s (P3, P4) heuristic pair:
//
//   * first iteration: select the most-communicating task;
//   * every later iteration: select the unplaced task with maximum total
//     communication to the already-placed set;
//   * place the selected task on the free processor where its hop-byte
//     cost to the placed set (first-order estimation) is minimal.
//
// Running time O(p * |E_t|) (paper's analysis), dominated by scanning free
// processors against the selected task's placed neighbours.
#pragma once

#include "core/strategy.hpp"

namespace topomap::core {

class TopoCentLB final : public MappingStrategy {
 public:
  explicit TopoCentLB(DistanceMode mode = DistanceMode::kCached)
      : mode_(mode) {}

  Mapping map(const graph::TaskGraph& g, const topo::Topology& topo,
              Rng& rng) const override;
  std::string name() const override { return "TopoCentLB"; }
  DistanceMode mode() const { return mode_; }

 private:
  DistanceMode mode_;
};

}  // namespace topomap::core
