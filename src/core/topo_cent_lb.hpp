// TopoCentLB (paper §4.5) — the simpler greedy comparator to TopoLB,
// equivalent to Baba et al.'s (P3, P4) heuristic pair:
//
//   * first iteration: select the most-communicating task;
//   * every later iteration: select the unplaced task with maximum total
//     communication to the already-placed set;
//   * place the selected task on the free processor where its hop-byte
//     cost to the placed set (first-order estimation) is minimal.
//
// Running time O(p * |E_t|) (paper's analysis), dominated by scanning free
// processors against the selected task's placed neighbours.
#pragma once

#include <utility>

#include "core/strategy.hpp"

namespace topomap::core {

class TopoCentLB final : public MappingStrategy {
 public:
  explicit TopoCentLB(DistanceMode mode = DistanceMode::kCached,
                      CacheHandlePtr cache = nullptr)
      : mode_(mode), cache_(std::move(cache)) {}

  Mapping map(const graph::TaskGraph& g, const topo::Topology& topo,
              Rng& rng) const override;
  std::string name() const override { return "TopoCentLB"; }
  DistanceMode mode() const { return mode_; }

 private:
  DistanceMode mode_;
  CacheHandlePtr cache_;  // shared across a composition; may be null
};

}  // namespace topomap::core
