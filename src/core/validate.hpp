// Self-validation of a running mapping system: are the invariants that the
// incremental machinery is supposed to preserve actually holding?
//
// The dynamic runtime repairs its distance plane event by event, quarantines
// tasks across partitions, and reuses groupings across epochs.  Each of
// those shortcuts has an exactness argument — and a bug in any of them used
// to mean silently degraded mappings or a crash several epochs later.
// validate_state() re-derives the ground truth the slow way and compares:
//
//  * every placed task sits on an alive processor, active (non-quarantined)
//    tasks all inside one connected component;
//  * the group structure respects capacity: the group -> processor mapping
//    is injective (one group per processor) and every active task's
//    placement equals its group's processor;
//  * the incrementally-repaired distance plane matches rows recomputed
//    fresh from the overlay (byte compare), same scale, same means;
//  * route-based link attribution sums back to hop-bytes (on routed,
//    soft-fault-free machines with every task placed).
//
// The report lists violations as human-readable strings; callers decide the
// response.  rts::run_dynamic_lb treats any violation as "repair lied":
// it falls back from incremental repair to a full rebuild (obs-counted)
// instead of crashing — the repair-or-rebuild loop.
#pragma once

#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "graph/task_graph.hpp"
#include "topo/distance_cache.hpp"
#include "topo/fault_overlay.hpp"

namespace topomap::core {

/// A view of the pieces to cross-check.  graph/overlay are required;
/// everything else is optional and only validated when present.
/// `groups`/`active_tasks`/`group_mapping` come as a triple: active_tasks[i]
/// is the original id of the task whose group is groups[i].  When
/// active_tasks is null but groups is set, groups[i] belongs to task i.
struct SystemState {
  const graph::TaskGraph* graph = nullptr;
  const topo::FaultOverlay* overlay = nullptr;
  const Mapping* placement = nullptr;
  const std::vector<char>* quarantined = nullptr;  // per-task, 1 = frozen
  const std::vector<int>* groups = nullptr;
  const std::vector<int>* active_tasks = nullptr;
  const Mapping* group_mapping = nullptr;  // group -> original processor id
  const topo::DistanceCache* plane = nullptr;
};

struct ValidateOptions {
  /// Plane rows to verify: 0 checks every alive row (exhaustive — the
  /// default, affordable at dynamic-runtime machine sizes), k > 0 checks k
  /// evenly-spaced alive rows (spot check for big planes).
  int plane_rows = 0;
  /// Cross-check attribution totals against hop-bytes where the machine
  /// supports routing and every task is placed.
  bool check_attribution = true;
};

struct ValidationReport {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
  /// Violations joined with "; " ("ok" when none).
  std::string summary() const;
};

ValidationReport validate_state(const SystemState& state,
                                const ValidateOptions& opts = {});

}  // namespace topomap::core
