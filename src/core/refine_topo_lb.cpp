#include "core/refine_topo_lb.hpp"

#include "core/metrics.hpp"
#include "support/error.hpp"

namespace topomap::core {

double swap_delta(const graph::TaskGraph& g, const topo::Topology& topo,
                  const Mapping& m, int a, int b) {
  const int pa = m[static_cast<std::size_t>(a)];
  const int pb = m[static_cast<std::size_t>(b)];
  if (pa == pb) return 0.0;
  double delta = 0.0;
  for (const graph::Edge& e : g.edges_of(a)) {
    if (e.neighbor == b) continue;  // the (a,b) edge length is unchanged
    const int pj = m[static_cast<std::size_t>(e.neighbor)];
    delta += e.bytes * static_cast<double>(topo.distance(pb, pj) -
                                           topo.distance(pa, pj));
  }
  for (const graph::Edge& e : g.edges_of(b)) {
    if (e.neighbor == a) continue;
    const int pj = m[static_cast<std::size_t>(e.neighbor)];
    delta += e.bytes * static_cast<double>(topo.distance(pa, pj) -
                                           topo.distance(pb, pj));
  }
  return delta;
}

RefineResult refine_mapping(const graph::TaskGraph& g,
                            const topo::Topology& topo, const Mapping& m,
                            int max_passes) {
  TOPOMAP_REQUIRE(max_passes >= 1, "need at least one sweep");
  TOPOMAP_REQUIRE(is_one_to_one(m, topo), "refiner needs a one-to-one mapping");
  TOPOMAP_REQUIRE(static_cast<int>(m.size()) == g.num_vertices(),
                  "mapping size mismatch");

  RefineResult result;
  result.mapping = m;
  result.hop_bytes_before = hop_bytes(g, topo, m);
  const int n = g.num_vertices();

  for (int pass = 0; pass < max_passes; ++pass) {
    ++result.passes;
    bool improved = false;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        const double delta = swap_delta(g, topo, result.mapping, a, b);
        if (delta < -1e-12) {
          std::swap(result.mapping[static_cast<std::size_t>(a)],
                    result.mapping[static_cast<std::size_t>(b)]);
          ++result.swaps;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  result.hop_bytes_after = hop_bytes(g, topo, result.mapping);
  TOPOMAP_ASSERT(result.hop_bytes_after <= result.hop_bytes_before + 1e-6,
                 "refinement must never worsen hop-bytes");
  return result;
}

RefinedStrategy::RefinedStrategy(StrategyPtr base, int max_passes)
    : base_(std::move(base)), max_passes_(max_passes) {
  TOPOMAP_REQUIRE(base_ != nullptr, "base strategy is null");
  TOPOMAP_REQUIRE(max_passes_ >= 1, "need at least one sweep");
}

Mapping RefinedStrategy::map(const graph::TaskGraph& g,
                             const topo::Topology& topo, Rng& rng) const {
  const Mapping base = base_->map(g, topo, rng);
  return refine_mapping(g, topo, base, max_passes_).mapping;
}

std::string RefinedStrategy::name() const {
  return base_->name() + "+RefineTopoLB";
}

}  // namespace topomap::core
