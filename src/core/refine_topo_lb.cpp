#include "core/refine_topo_lb.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/cache_handle.hpp"
#include "core/distance_provider.hpp"
#include "core/metrics.hpp"
#include "core/swap_kernel.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "topo/distance_cache.hpp"

namespace topomap::core {

namespace {

constexpr int kPairGrain = 256;    // swap-delta evaluations per chunk
constexpr int kMaxBlockRows = 64;  // speculation window cap (see sweep below)

/// One first-improvement sweep over all pairs (a, b), a < b, exactly
/// reproducing the sequential visit order and accept decisions.
///
/// The sweep is parallelised *speculatively*: deltas for a block of rows
/// are evaluated concurrently against the current mapping (each pair writes
/// only its own slot), then the pairs are walked in sequential order.  An
/// accepted swap invalidates every not-yet-visited delta conservatively, so
/// the remaining suffix of the block is re-evaluated in parallel before the
/// walk continues — every delta that is *acted on* was therefore computed
/// against the exact mapping the sequential algorithm would see, and the
/// arithmetic inside swap_delta_dist is a fixed sequential loop, so accept
/// decisions (and the final mapping) are byte-identical to the sequential
/// sweep for any thread count.
///
/// The block height adapts to the swap rate: it starts at one row, doubles
/// after every swap-free block (capped at kMaxBlockRows) and resets to one
/// row when a block accepts a swap.  Late passes — where swaps are rare and
/// the sweep is pure evaluation — run at full width; early swap-dense
/// passes pay at most one wasted evaluation per accepted swap.  The
/// schedule depends only on accept decisions, never on thread count.
template <class Dist>
bool sweep_once(const graph::TaskGraph& g, const Dist& dist, Mapping& m,
                int* swaps) {
  const int n = static_cast<int>(m.size());
  struct PairAB {
    int a, b;
  };
  std::vector<PairAB> pairs;
  std::vector<double> deltas;

  const auto evaluate = [&](int lo, int hi) {
    support::parallel_for(hi - lo, kPairGrain, [&](int begin, int end) {
      for (int i = begin; i < end; ++i) {
        const PairAB& pr = pairs[static_cast<std::size_t>(lo + i)];
        deltas[static_cast<std::size_t>(lo + i)] =
            detail::swap_delta_dist(g, dist, m, pr.a, pr.b);
      }
    });
  };

  bool improved = false;
  int block = 1;
  int a = 0;
  while (a < n) {
    const int hi = std::min(a + block, n);
    pairs.clear();
    for (int r = a; r < hi; ++r)
      for (int b = r + 1; b < n; ++b) pairs.push_back({r, b});
    deltas.assign(pairs.size(), 0.0);
    OBS_COUNTER_ADD("refine/swap_attempts", pairs.size());
    evaluate(0, static_cast<int>(pairs.size()));

    bool block_swapped = false;
    for (int i = 0; i < static_cast<int>(pairs.size()); ++i) {
      if (!(deltas[static_cast<std::size_t>(i)] < -1e-12)) continue;
      const PairAB& pr = pairs[static_cast<std::size_t>(i)];
      std::swap(m[static_cast<std::size_t>(pr.a)],
                m[static_cast<std::size_t>(pr.b)]);
      ++*swaps;
      OBS_COUNTER_ADD("refine/swap_accepts", 1);
      improved = true;
      block_swapped = true;
      evaluate(i + 1, static_cast<int>(pairs.size()));
    }
    a = hi;
    block = block_swapped ? 1 : std::min(block * 2, kMaxBlockRows);
  }
  return improved;
}

template <class Dist>
RefineResult run_refine(const graph::TaskGraph& g, const Dist& dist,
                        double hb_before, const Mapping& m, int max_passes) {
  OBS_SPAN("refine/run");
  RefineResult result;
  result.mapping = m;
  result.hop_bytes_before = hb_before;
  for (int pass = 0; pass < max_passes; ++pass) {
    ++result.passes;
    if (!sweep_once(g, dist, result.mapping, &result.swaps)) break;
  }
  return result;
}

}  // namespace

double swap_delta(const graph::TaskGraph& g, const topo::Topology& topo,
                  const Mapping& m, int a, int b) {
  return detail::swap_delta_dist(g, detail::VirtualDistance{topo}, m, a, b);
}

RefineResult refine_mapping(const graph::TaskGraph& g,
                            const topo::Topology& topo, const Mapping& m,
                            int max_passes, DistanceMode mode,
                            const topo::DistanceCache* cache) {
  TOPOMAP_REQUIRE(max_passes >= 1, "need at least one sweep");
  TOPOMAP_REQUIRE(is_one_to_one(m, topo), "refiner needs a one-to-one mapping");
  TOPOMAP_REQUIRE(static_cast<int>(m.size()) == g.num_vertices(),
                  "mapping size mismatch");
  TOPOMAP_REQUIRE(cache == nullptr || cache->size() == topo.size(),
                  "prebuilt distance cache does not match the topology");

  RefineResult result;
  if (mode == DistanceMode::kVirtual) {
    result = run_refine(g, detail::VirtualDistance{topo},
                        hop_bytes(g, topo, m), m, max_passes);
    result.hop_bytes_after = hop_bytes(g, topo, result.mapping);
  } else {
    std::shared_ptr<const topo::DistanceCache> owned;
    if (cache == nullptr) {
      owned = std::make_shared<const topo::DistanceCache>(topo);
      cache = owned.get();
    }
    result = run_refine(g, detail::CachedDistance{*cache},
                        hop_bytes(g, *cache, m), m, max_passes);
    result.hop_bytes_after = hop_bytes(g, *cache, result.mapping);
  }
  TOPOMAP_ASSERT(result.hop_bytes_after <= result.hop_bytes_before + 1e-6,
                 "refinement must never worsen hop-bytes");
  return result;
}

RefinedStrategy::RefinedStrategy(StrategyPtr base, int max_passes,
                                 DistanceMode mode, CacheHandlePtr cache)
    : base_(std::move(base)),
      max_passes_(max_passes),
      mode_(mode),
      cache_(std::move(cache)) {
  TOPOMAP_REQUIRE(base_ != nullptr, "base strategy is null");
  TOPOMAP_REQUIRE(max_passes_ >= 1, "need at least one sweep");
}

Mapping RefinedStrategy::map(const graph::TaskGraph& g,
                             const topo::Topology& topo, Rng& rng) const {
  const Mapping base = base_->map(g, topo, rng);
  if (mode_ == DistanceMode::kCached && cache_) {
    const auto shared = cache_->get(topo);
    return refine_mapping(g, topo, base, max_passes_, mode_, shared.get())
        .mapping;
  }
  return refine_mapping(g, topo, base, max_passes_, mode_).mapping;
}

std::string RefinedStrategy::name() const {
  return base_->name() + "+RefineTopoLB";
}

}  // namespace topomap::core
