// Simulated-annealing mapper — the "physical optimization" comparator
// class from the paper's related work (Bollinger & Midkiff's process
// annealing; Orduña et al.'s randomized search).
//
// The paper's position is that such methods "produce high-quality
// solutions (better than heuristic algorithms)" but "tend to be very
// slow"; AnnealingLB lets the repository reproduce that trade-off
// quantitatively (see bench/ablation_physical_opt).
//
// Standard Metropolis scheme over pair-swaps of the mapping:
//   energy  E(P)    = hop-bytes(P)
//   move            = swap the processors of two random tasks
//   accept          = delta < 0, or with probability exp(-delta / T)
//   schedule        = geometric cooling from T0 (set adaptively from the
//                     mean |delta| of random moves) by `cooling` per epoch
// Keeps the best mapping ever visited.
#pragma once

#include "core/strategy.hpp"

namespace topomap::core {

struct AnnealingOptions {
  /// Swap proposals per temperature epoch, as a multiple of n.
  double moves_per_task = 8.0;
  /// Geometric cooling factor per epoch, in (0, 1).
  double cooling = 0.9;
  /// Epoch count.
  int epochs = 60;
  /// Initial temperature = t0_factor * mean |delta| of random swaps.
  double t0_factor = 1.5;
  /// Start from this strategy's result instead of a random mapping
  /// (null = random start).
  StrategyPtr warm_start;
};

class AnnealingLB final : public MappingStrategy {
 public:
  explicit AnnealingLB(AnnealingOptions options = {},
                       DistanceMode mode = DistanceMode::kCached,
                       CacheHandlePtr cache = nullptr);

  Mapping map(const graph::TaskGraph& g, const topo::Topology& topo,
              Rng& rng) const override;
  std::string name() const override;

 private:
  AnnealingOptions options_;
  DistanceMode mode_;
  CacheHandlePtr cache_;  // shared across a composition; may be null
};

}  // namespace topomap::core
