#include "core/validate.hpp"

#include <cmath>
#include <cstring>
#include <set>
#include <sstream>

#include "core/contention.hpp"
#include "core/metrics.hpp"
#include "support/error.hpp"
#include "topo/components.hpp"

namespace topomap::core {

namespace {

std::string at_task(int t) { return "task " + std::to_string(t); }

void check_placement(const SystemState& st, const topo::ComponentSplit& split,
                     std::vector<std::string>& out) {
  const graph::TaskGraph& g = *st.graph;
  const topo::FaultOverlay& overlay = *st.overlay;
  const Mapping& m = *st.placement;
  const int n = g.num_vertices();
  if (static_cast<int>(m.size()) != n) {
    out.push_back("placement has " + std::to_string(m.size()) +
                  " entries for " + std::to_string(n) + " tasks");
    return;
  }
  if (st.quarantined != nullptr &&
      static_cast<int>(st.quarantined->size()) != n) {
    out.push_back("quarantine flags have " +
                  std::to_string(st.quarantined->size()) + " entries for " +
                  std::to_string(n) + " tasks");
    return;
  }
  // Component id per alive processor, for the one-component check.
  std::vector<int> comp_of(static_cast<std::size_t>(overlay.size()), -1);
  for (int c = 0; c < split.count(); ++c)
    for (int p : split.components[static_cast<std::size_t>(c)])
      comp_of[static_cast<std::size_t>(p)] = c;

  int active_comp = -1;
  for (int t = 0; t < n; ++t) {
    const int p = m[static_cast<std::size_t>(t)];
    const bool frozen =
        st.quarantined != nullptr && (*st.quarantined)[static_cast<std::size_t>(t)] != 0;
    if (p == kUnassigned) {
      // Only a quarantined task may be unplaced.
      if (!frozen) out.push_back(at_task(t) + " is active but unplaced");
      continue;
    }
    if (p < 0 || p >= overlay.size()) {
      out.push_back(at_task(t) + " placed on out-of-range processor " +
                    std::to_string(p));
      continue;
    }
    if (!overlay.is_alive(p)) {
      out.push_back(at_task(t) + " placed on dead processor " +
                    std::to_string(p));
      continue;
    }
    if (frozen) continue;  // quarantined: any alive processor is legal
    const int c = comp_of[static_cast<std::size_t>(p)];
    if (active_comp == -1) active_comp = c;
    if (c != active_comp)
      out.push_back(at_task(t) + " is active on processor " +
                    std::to_string(p) + " in component " + std::to_string(c) +
                    " while other active tasks sit in component " +
                    std::to_string(active_comp));
  }
}

void check_groups(const SystemState& st, std::vector<std::string>& out) {
  const topo::FaultOverlay& overlay = *st.overlay;
  const std::vector<int>& groups = *st.groups;
  const Mapping& gm = *st.group_mapping;
  const int num_groups = static_cast<int>(gm.size());
  // Capacity is structural: one group per processor.  The group mapping
  // must be injective over alive processors, and every active task must
  // sit exactly where its group does.
  std::set<int> used;
  for (int gidx = 0; gidx < num_groups; ++gidx) {
    const int p = gm[static_cast<std::size_t>(gidx)];
    if (p < 0 || p >= overlay.size() || !overlay.is_alive(p)) {
      out.push_back("group " + std::to_string(gidx) +
                    " mapped to dead/out-of-range processor " +
                    std::to_string(p));
      continue;
    }
    if (!used.insert(p).second)
      out.push_back("processor " + std::to_string(p) +
                    " hosts more than one group (capacity violated)");
  }
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const int t = st.active_tasks != nullptr
                      ? (*st.active_tasks)[i]
                      : static_cast<int>(i);
    const int gidx = groups[i];
    if (gidx < 0 || gidx >= num_groups) {
      out.push_back(at_task(t) + " in out-of-range group " +
                    std::to_string(gidx));
      continue;
    }
    if (st.placement != nullptr &&
        t < static_cast<int>(st.placement->size())) {
      const int p = (*st.placement)[static_cast<std::size_t>(t)];
      if (p != gm[static_cast<std::size_t>(gidx)])
        out.push_back(at_task(t) + " placed on processor " +
                      std::to_string(p) + " but its group " +
                      std::to_string(gidx) + " lives on " +
                      std::to_string(gm[static_cast<std::size_t>(gidx)]));
    }
  }
}

void check_plane(const SystemState& st, const ValidateOptions& opts,
                 std::vector<std::string>& out) {
  const topo::FaultOverlay& overlay = *st.overlay;
  const topo::DistanceCache& plane = *st.plane;
  if (plane.size() != overlay.size()) {
    out.push_back("plane size " + std::to_string(plane.size()) +
                  " != machine size " + std::to_string(overlay.size()));
    return;
  }
  if (plane.scale() != overlay.distance_scale()) {
    out.push_back("plane scale " + std::to_string(plane.scale()) +
                  " != overlay scale " +
                  std::to_string(overlay.distance_scale()));
    return;
  }
  const std::vector<int> alive = overlay.alive_procs();
  std::vector<int> rows;
  if (opts.plane_rows <= 0 ||
      opts.plane_rows >= static_cast<int>(alive.size())) {
    rows = alive;
  } else {
    // Evenly-spaced alive rows, deterministic.
    const int k = opts.plane_rows;
    const int m = static_cast<int>(alive.size());
    for (int i = 0; i < k; ++i)
      rows.push_back(alive[static_cast<std::size_t>(
          k == 1 ? 0 : static_cast<long long>(i) * (m - 1) / (k - 1))]);
  }
  std::vector<std::uint16_t> fresh(static_cast<std::size_t>(overlay.size()));
  for (int p : rows) {
    overlay.write_distance_row(p, fresh.data());
    if (std::memcmp(fresh.data(), plane.row(p),
                    fresh.size() * sizeof(std::uint16_t)) != 0) {
      out.push_back("plane row " + std::to_string(p) +
                    " differs from a fresh rebuild (stale repair?)");
      continue;
    }
    const double want = overlay.mean_distance_from(p);
    if (plane.mean_distance_from(p) != want)
      out.push_back("plane mean for row " + std::to_string(p) +
                    " differs from a fresh rebuild");
  }
}

void check_attribution(const SystemState& st, std::vector<std::string>& out) {
  const graph::TaskGraph& g = *st.graph;
  const topo::FaultOverlay& overlay = *st.overlay;
  const Mapping& m = *st.placement;
  // Applicable only where routes exist and mean "hops": routed base, no
  // weighted metric, every task placed, no quarantine (an edge between an
  // active task and one frozen on a minority component has no route).
  if (!overlay.base().has_adjacency() || overlay.has_soft_faults()) return;
  if (st.quarantined != nullptr)
    for (char f : *st.quarantined)
      if (f != 0) return;
  for (int p : m)
    if (p == kUnassigned) return;
  const double hb = hop_bytes(g, overlay, m);
  const ContentionStats stats = contention_stats(g, overlay, m);
  const double tol = 1e-9 * std::max(1.0, std::abs(hb));
  if (std::abs(stats.total_bytes - hb) > tol)
    out.push_back("link attribution total " +
                  std::to_string(stats.total_bytes) +
                  " does not sum to hop-bytes " + std::to_string(hb));
}

}  // namespace

std::string ValidationReport::summary() const {
  if (violations.empty()) return "ok";
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << "; ";
    os << violations[i];
  }
  return os.str();
}

ValidationReport validate_state(const SystemState& state,
                                const ValidateOptions& opts) {
  TOPOMAP_REQUIRE(state.graph != nullptr && state.overlay != nullptr,
                  "validate_state: graph and overlay are required");
  TOPOMAP_REQUIRE(state.groups == nullptr || state.group_mapping != nullptr,
                  "validate_state: groups need a group_mapping");
  ValidationReport report;
  const topo::ComponentSplit split = topo::connected_components(*state.overlay);
  if (split.count() == 0) {
    report.violations.push_back("no alive processors");
    return report;
  }
  if (state.placement != nullptr) check_placement(state, split, report.violations);
  if (state.groups != nullptr) check_groups(state, report.violations);
  if (state.plane != nullptr) check_plane(state, opts, report.violations);
  if (state.placement != nullptr && opts.check_attribution &&
      report.violations.empty())
    check_attribution(state, report.violations);
  return report;
}

}  // namespace topomap::core
