#include "core/annealing_lb.hpp"
#include "core/baseline_lb.hpp"
#include "core/link_refine.hpp"
#include "core/recursive_map.hpp"
#include "core/refine_topo_lb.hpp"
#include "core/strategy.hpp"
#include "core/topo_cent_lb.hpp"
#include "core/topo_lb.hpp"
#include "support/error.hpp"

namespace topomap::core {

namespace {

bool consume_suffix(std::string& spec, std::string_view suffix) {
  if (spec.size() > suffix.size() &&
      spec.compare(spec.size() - suffix.size(), suffix.size(), suffix) == 0) {
    spec.resize(spec.size() - suffix.size());
    return true;
  }
  return false;
}

}  // namespace

StrategyPtr make_strategy(const std::string& spec_in, DistanceMode mode) {
  std::string spec = spec_in;
  if (consume_suffix(spec, "+linkrefine"))
    return std::make_shared<LinkRefinedStrategy>(make_strategy(spec, mode));
  if (consume_suffix(spec, "+refine"))
    return std::make_shared<RefinedStrategy>(make_strategy(spec, mode), 8,
                                             mode);
  if (spec == "random") return std::make_shared<RandomLB>();
  if (spec == "greedy") return std::make_shared<GreedyLB>();
  if (spec == "topocent") return std::make_shared<TopoCentLB>(mode);
  if (spec == "topolb")
    return std::make_shared<TopoLB>(EstimationOrder::kSecond, mode);
  if (spec == "topolb1")
    return std::make_shared<TopoLB>(EstimationOrder::kFirst, mode);
  if (spec == "topolb3")
    return std::make_shared<TopoLB>(EstimationOrder::kThird, mode);
  if (spec == "recursive") return std::make_shared<RecursiveBisectionLB>();
  if (spec == "anneal") return std::make_shared<AnnealingLB>(AnnealingOptions{}, mode);
  if (spec == "anneal-warm") {
    AnnealingOptions options;
    options.warm_start = std::make_shared<TopoLB>(EstimationOrder::kSecond, mode);
    return std::make_shared<AnnealingLB>(options, mode);
  }
  throw precondition_error("unknown strategy spec: " + spec_in);
}

}  // namespace topomap::core
