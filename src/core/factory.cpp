#include "core/annealing_lb.hpp"
#include "core/baseline_lb.hpp"
#include "core/cache_handle.hpp"
#include "core/hier_topo_lb.hpp"
#include "core/link_refine.hpp"
#include "core/optimal_lb.hpp"
#include "core/recursive_map.hpp"
#include "core/refine_topo_lb.hpp"
#include "core/strategy.hpp"
#include "core/topo_cent_lb.hpp"
#include "core/topo_lb.hpp"
#include "support/error.hpp"

namespace topomap::core {

namespace {

bool consume_suffix(std::string& spec, std::string_view suffix) {
  if (spec.size() > suffix.size() &&
      spec.compare(spec.size() - suffix.size(), suffix.size(), suffix) == 0) {
    spec.resize(spec.size() - suffix.size());
    return true;
  }
  return false;
}

// Every stage of a composition receives the same CacheHandle, so stacked
// strategies ("topolb+refine", warm-started annealing) build the O(p^2)
// distance matrix once per map() call instead of once per stage.
StrategyPtr make_with_handle(const std::string& spec_in, DistanceMode mode,
                             const CacheHandlePtr& cache) {
  std::string spec = spec_in;
  // "hier+refine" must not fall into the generic RefinedStrategy wrapper:
  // refine_mapping requires a one-to-one mapping, and hier accepts n > p.
  // HierTopoLB owns its final refinement stage instead.
  if (spec == "hier")
    return std::make_shared<HierTopoLB>(HierOptions{}, mode, cache);
  if (spec == "hier+refine") {
    HierOptions options;
    options.final_refine = true;
    return std::make_shared<HierTopoLB>(options, mode, cache);
  }
  if (consume_suffix(spec, "+linkrefine"))
    return std::make_shared<LinkRefinedStrategy>(
        make_with_handle(spec, mode, cache));
  if (consume_suffix(spec, "+refine"))
    return std::make_shared<RefinedStrategy>(make_with_handle(spec, mode, cache),
                                             8, mode, cache);
  if (spec == "random") return std::make_shared<RandomLB>();
  if (spec == "greedy") return std::make_shared<GreedyLB>();
  if (spec == "topocent") return std::make_shared<TopoCentLB>(mode, cache);
  if (spec == "topolb")
    return std::make_shared<TopoLB>(EstimationOrder::kSecond, mode, cache);
  if (spec == "topolb1")
    return std::make_shared<TopoLB>(EstimationOrder::kFirst, mode, cache);
  if (spec == "topolb3")
    return std::make_shared<TopoLB>(EstimationOrder::kThird, mode, cache);
  if (spec == "recursive") return std::make_shared<RecursiveBisectionLB>();
  // The exact oracle reads its own dense plane and ignores the distance
  // mode/cache: it never participates in the cached-vs-virtual suite.
  if (spec == "optimal") return std::make_shared<OptimalLB>();
  if (spec == "anneal")
    return std::make_shared<AnnealingLB>(AnnealingOptions{}, mode, cache);
  if (spec == "anneal-warm") {
    AnnealingOptions options;
    options.warm_start =
        std::make_shared<TopoLB>(EstimationOrder::kSecond, mode, cache);
    return std::make_shared<AnnealingLB>(options, mode, cache);
  }
  throw precondition_error("unknown strategy spec: " + spec_in);
}

}  // namespace

StrategyPtr make_strategy(const std::string& spec_in, DistanceMode mode) {
  return make_with_handle(spec_in, mode, std::make_shared<CacheHandle>());
}

StrategyPtr make_strategy_with_handle(const std::string& spec_in,
                                      DistanceMode mode,
                                      const CacheHandlePtr& handle) {
  TOPOMAP_REQUIRE(handle != nullptr,
                  "make_strategy_with_handle needs a CacheHandle");
  return make_with_handle(spec_in, mode, handle);
}

}  // namespace topomap::core
