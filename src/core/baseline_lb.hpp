// Topology-oblivious baseline strategies.
#pragma once

#include "core/strategy.hpp"

namespace topomap::core {

/// Uniform random bijection — the paper's "random placement" baseline.
class RandomLB final : public MappingStrategy {
 public:
  Mapping map(const graph::TaskGraph& g, const topo::Topology& topo,
              Rng& rng) const override;
  std::string name() const override { return "RandomLB"; }
};

/// Charm++-style GreedyLB: heaviest task goes to the least-loaded
/// processor, ignoring the network entirely.  With |V_t| == |V_p| every
/// processor receives one task and the placement is effectively arbitrary
/// with respect to topology — the paper uses it as its random-placement
/// stand-in for the trace-driven experiments.  Ties are shuffled so that
/// uniform-load inputs do not silently collapse to the identity mapping.
class GreedyLB final : public MappingStrategy {
 public:
  Mapping map(const graph::TaskGraph& g, const topo::Topology& topo,
              Rng& rng) const override;
  std::string name() const override { return "GreedyLB"; }
};

}  // namespace topomap::core
