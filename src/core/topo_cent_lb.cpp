#include "core/topo_cent_lb.hpp"

#include <limits>
#include <utility>
#include <vector>

#include "core/cache_handle.hpp"
#include "core/distance_provider.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "topo/distance_cache.hpp"

namespace topomap::core {

namespace {

constexpr int kProcGrain = 2048;  // free-processor cost scan

template <class Dist>
Mapping run_topocent(const graph::TaskGraph& g, const Dist& dist) {
  const int n = g.num_vertices();
  Mapping m(static_cast<std::size_t>(n), kUnassigned);
  if (n == 0) return m;
  OBS_SPAN("topocent/map");
  OBS_COUNTER_ADD("topocent/placements", n);

  std::vector<char> task_placed(static_cast<std::size_t>(n), 0);
  std::vector<char> proc_used(static_cast<std::size_t>(n), 0);
  // key[t]: total bytes t exchanges with already-placed tasks.
  std::vector<double> key(static_cast<std::size_t>(n), 0.0);

  // Per-cycle scratch: the selected task's already-placed edges, in CSR
  // order, as (bytes, assigned processor).
  std::vector<std::pair<double, int>> placed_edges;
  placed_edges.reserve(16);

  for (int cycle = 0; cycle < n; ++cycle) {
    // --- task selection ---
    int best_task = -1;
    if (cycle == 0) {
      // Most communicating task overall; ties -> lowest id.
      double best = -1.0;
      for (int t = 0; t < n; ++t) {
        if (g.comm_bytes(t) > best) {
          best = g.comm_bytes(t);
          best_task = t;
        }
      }
    } else {
      // Maximum communication with the placed set; ties -> larger total
      // communication, then lowest id.  Isolated/unconnected tasks (key 0)
      // are picked last, which is exactly what we want.
      double best = -1.0;
      for (int t = 0; t < n; ++t) {
        if (task_placed[static_cast<std::size_t>(t)]) continue;
        const double k = key[static_cast<std::size_t>(t)];
        if (k > best ||
            (k == best && best_task >= 0 &&
             g.comm_bytes(t) > g.comm_bytes(best_task))) {
          best = k;
          best_task = t;
        }
      }
    }
    TOPOMAP_ASSERT(best_task >= 0, "no task selected");

    // --- processor selection: minimise first-order hop-byte cost ---
    // The scan over free processors is the dominant O(p) x |placed edges|
    // work, and each candidate's cost is independent — parallelise over
    // static chunks of q.  Each chunk records its own first-strict-minimum;
    // combining the chunk results in ascending chunk order with strict `<`
    // reproduces the sequential lowest-id tie-break exactly.  Per-candidate
    // cost accumulation stays in CSR edge order, so every term and its
    // summation order match the sequential (and virtual-dispatch) path.
    placed_edges.clear();
    for (const graph::Edge& e : g.edges_of(best_task))
      if (task_placed[static_cast<std::size_t>(e.neighbor)])
        placed_edges.emplace_back(e.bytes,
                                  m[static_cast<std::size_t>(e.neighbor)]);

    const int chunks = support::parallel_chunk_count(n, kProcGrain);
    std::vector<double> chunk_cost(
        static_cast<std::size_t>(chunks),
        std::numeric_limits<double>::infinity());
    std::vector<int> chunk_proc(static_cast<std::size_t>(chunks), -1);
    support::parallel_for_chunks(
        n, kProcGrain, [&](int chunk, int begin, int end) {
          double best_cost = std::numeric_limits<double>::infinity();
          int best_proc = -1;
          for (int q = begin; q < end; ++q) {
            if (proc_used[static_cast<std::size_t>(q)]) continue;
            const auto row = dist.row(q);
            double cost = 0.0;
            for (const auto& [bytes, pe] : placed_edges)
              cost += bytes * row[pe];
            if (cost < best_cost) {
              best_cost = cost;
              best_proc = q;
            }
          }
          chunk_cost[static_cast<std::size_t>(chunk)] = best_cost;
          chunk_proc[static_cast<std::size_t>(chunk)] = best_proc;
        });
    int best_proc = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int c = 0; c < chunks; ++c) {
      if (chunk_cost[static_cast<std::size_t>(c)] < best_cost) {
        best_cost = chunk_cost[static_cast<std::size_t>(c)];
        best_proc = chunk_proc[static_cast<std::size_t>(c)];
      }
    }
    TOPOMAP_ASSERT(best_proc >= 0, "no free processor");

    // --- commit and update keys ---
    m[static_cast<std::size_t>(best_task)] = best_proc;
    task_placed[static_cast<std::size_t>(best_task)] = 1;
    proc_used[static_cast<std::size_t>(best_proc)] = 1;
    for (const graph::Edge& e : g.edges_of(best_task))
      if (!task_placed[static_cast<std::size_t>(e.neighbor)])
        key[static_cast<std::size_t>(e.neighbor)] += e.bytes;
  }
  return m;
}

}  // namespace

Mapping TopoCentLB::map(const graph::TaskGraph& g, const topo::Topology& topo,
                        Rng& rng) const {
  (void)rng;  // fully deterministic given the tie-breaking rules above
  require_square(g, topo);
  if (g.num_vertices() == 0) return {};
  if (mode_ == DistanceMode::kVirtual)
    return run_topocent(g, detail::VirtualDistance{topo});
  const auto cache = obtain_cache(cache_, topo);
  return run_topocent(g, detail::CachedDistance{*cache});
}

}  // namespace topomap::core
