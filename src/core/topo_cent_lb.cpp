#include "core/topo_cent_lb.hpp"

#include <limits>

#include "support/error.hpp"

namespace topomap::core {

Mapping TopoCentLB::map(const graph::TaskGraph& g, const topo::Topology& topo,
                        Rng& rng) const {
  (void)rng;  // fully deterministic given the tie-breaking rules below
  require_square(g, topo);
  const int n = g.num_vertices();
  Mapping m(static_cast<std::size_t>(n), kUnassigned);
  if (n == 0) return m;

  std::vector<char> task_placed(static_cast<std::size_t>(n), 0);
  std::vector<char> proc_used(static_cast<std::size_t>(n), 0);
  // key[t]: total bytes t exchanges with already-placed tasks.
  std::vector<double> key(static_cast<std::size_t>(n), 0.0);

  for (int cycle = 0; cycle < n; ++cycle) {
    // --- task selection ---
    int best_task = -1;
    if (cycle == 0) {
      // Most communicating task overall; ties -> lowest id.
      double best = -1.0;
      for (int t = 0; t < n; ++t) {
        if (g.comm_bytes(t) > best) {
          best = g.comm_bytes(t);
          best_task = t;
        }
      }
    } else {
      // Maximum communication with the placed set; ties -> larger total
      // communication, then lowest id.  Isolated/unconnected tasks (key 0)
      // are picked last, which is exactly what we want.
      double best = -1.0;
      for (int t = 0; t < n; ++t) {
        if (task_placed[static_cast<std::size_t>(t)]) continue;
        const double k = key[static_cast<std::size_t>(t)];
        if (k > best ||
            (k == best && best_task >= 0 &&
             g.comm_bytes(t) > g.comm_bytes(best_task))) {
          best = k;
          best_task = t;
        }
      }
    }
    TOPOMAP_ASSERT(best_task >= 0, "no task selected");

    // --- processor selection: minimise first-order hop-byte cost ---
    int best_proc = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int q = 0; q < n; ++q) {
      if (proc_used[static_cast<std::size_t>(q)]) continue;
      double cost = 0.0;
      for (const graph::Edge& e : g.edges_of(best_task)) {
        if (!task_placed[static_cast<std::size_t>(e.neighbor)]) continue;
        cost += e.bytes *
                topo.distance(q, m[static_cast<std::size_t>(e.neighbor)]);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_proc = q;
      }
    }
    TOPOMAP_ASSERT(best_proc >= 0, "no free processor");

    // --- commit and update keys ---
    m[static_cast<std::size_t>(best_task)] = best_proc;
    task_placed[static_cast<std::size_t>(best_task)] = 1;
    proc_used[static_cast<std::size_t>(best_proc)] = 1;
    for (const graph::Edge& e : g.edges_of(best_task))
      if (!task_placed[static_cast<std::size_t>(e.neighbor)])
        key[static_cast<std::size_t>(e.neighbor)] += e.bytes;
  }
  return m;
}

}  // namespace topomap::core
