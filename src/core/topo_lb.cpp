#include "core/topo_lb.hpp"

#include <limits>

#include "support/error.hpp"

namespace topomap::core {

namespace {

/// All mutable algorithm state, kept in one place so the update steps after
/// each placement read like the paper's description.
struct TopoLBState {
  TopoLBState(const graph::TaskGraph& graph_in, const topo::Topology& topo_in,
              EstimationOrder order_in)
      : g(graph_in), topo(topo_in), order(order_in), n(g.num_vertices()) {
    const auto un = static_cast<std::size_t>(n);
    assigned_cost.assign(un * un, 0.0);
    unplaced_bytes.resize(un);
    mean_dist.resize(un);
    for (int t = 0; t < n; ++t)
      unplaced_bytes[static_cast<std::size_t>(t)] = g.comm_bytes(t);
    for (int q = 0; q < n; ++q)
      mean_dist[static_cast<std::size_t>(q)] = topo.mean_distance_from(q);
    if (order == EstimationOrder::kThird) {
      sum_dist_free.resize(un);
      for (int q = 0; q < n; ++q)
        sum_dist_free[static_cast<std::size_t>(q)] =
            mean_dist[static_cast<std::size_t>(q)] * static_cast<double>(n);
    }
    task_placed.assign(un, 0);
    proc_used.assign(un, 0);
    free_procs.reserve(un);
    for (int q = 0; q < n; ++q) free_procs.push_back(q);
    f_sum.assign(un, 0.0);
    f_min.assign(un, 0.0);
    f_argmin.assign(un, -1);
    mapping.assign(un, kUnassigned);
    for (int t = 0; t < n; ++t) rescan_row(t);
  }

  /// f_est(t, q, P) for a free processor q under the configured order.
  double f_est(int t, int q) const {
    const auto row = static_cast<std::size_t>(t) * static_cast<std::size_t>(n);
    const double assigned = assigned_cost[row + static_cast<std::size_t>(q)];
    switch (order) {
      case EstimationOrder::kFirst:
        return assigned;
      case EstimationOrder::kSecond:
        return assigned + unplaced_bytes[static_cast<std::size_t>(t)] *
                              mean_dist[static_cast<std::size_t>(q)];
      case EstimationOrder::kThird:
        return assigned + unplaced_bytes[static_cast<std::size_t>(t)] *
                              sum_dist_free[static_cast<std::size_t>(q)] /
                              static_cast<double>(free_procs.size());
    }
    TOPOMAP_ASSERT(false, "unreachable estimation order");
  }

  /// Recompute F_sum / F_min / F_argmin of task t over the free processors.
  /// Scanning in increasing q keeps processor tie-breaking at lowest id.
  void rescan_row(int t) {
    double sum = 0.0;
    double mn = std::numeric_limits<double>::infinity();
    int arg = -1;
    for (int q : free_procs) {
      const double f = f_est(t, q);
      sum += f;
      if (f < mn) {
        mn = f;
        arg = q;
      }
    }
    f_sum[static_cast<std::size_t>(t)] = sum;
    f_min[static_cast<std::size_t>(t)] = mn;
    f_argmin[static_cast<std::size_t>(t)] = arg;
  }

  /// Pick the unplaced task with maximum gain = F_avg - F_min.
  /// Ties: larger total communication, then lower id.
  int select_task() const {
    const double nfree = static_cast<double>(free_procs.size());
    int best = -1;
    double best_gain = -std::numeric_limits<double>::infinity();
    for (int t = 0; t < n; ++t) {
      if (task_placed[static_cast<std::size_t>(t)]) continue;
      const double gain =
          f_sum[static_cast<std::size_t>(t)] / nfree -
          f_min[static_cast<std::size_t>(t)];
      if (gain > best_gain ||
          (gain == best_gain && best >= 0 &&
           g.comm_bytes(t) > g.comm_bytes(best))) {
        best_gain = gain;
        best = t;
      }
    }
    return best;
  }

  /// Commit task -> proc and update every cached quantity.
  void place(int task, int proc) {
    mapping[static_cast<std::size_t>(task)] = proc;
    task_placed[static_cast<std::size_t>(task)] = 1;

    const bool incremental = order != EstimationOrder::kThird;

    // 1. Retire `proc` from the incremental row statistics using the *old*
    //    f values (non-neighbour rows are otherwise unchanged).
    if (incremental) {
      for (int t = 0; t < n; ++t) {
        if (task_placed[static_cast<std::size_t>(t)]) continue;
        f_sum[static_cast<std::size_t>(t)] -= f_est(t, proc);
        if (f_argmin[static_cast<std::size_t>(t)] == proc)
          f_argmin[static_cast<std::size_t>(t)] = -2;  // needs rescan
      }
    }

    // 2. Remove the processor from the free set.
    proc_used[static_cast<std::size_t>(proc)] = 1;
    for (std::size_t i = 0; i < free_procs.size(); ++i) {
      if (free_procs[i] == proc) {
        free_procs.erase(free_procs.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }

    // 3. Third order: the free-set mean distances all shift.
    if (order == EstimationOrder::kThird) {
      for (int q : free_procs)
        sum_dist_free[static_cast<std::size_t>(q)] -=
            static_cast<double>(topo.distance(q, proc));
    }

    if (free_procs.empty()) return;

    // 4. Neighbours of the placed task: their unplaced->placed split moved,
    //    so their whole row changes — fold the now-exact distance term into
    //    assigned_cost and rescan (paper's O(p * delta(t_k)) step).
    for (const graph::Edge& e : g.edges_of(task)) {
      const int tj = e.neighbor;
      if (task_placed[static_cast<std::size_t>(tj)]) continue;
      const auto row =
          static_cast<std::size_t>(tj) * static_cast<std::size_t>(n);
      for (int q : free_procs)
        assigned_cost[row + static_cast<std::size_t>(q)] +=
            e.bytes * static_cast<double>(topo.distance(q, proc));
      unplaced_bytes[static_cast<std::size_t>(tj)] -= e.bytes;
      if (incremental) rescan_row(tj);
    }

    // 5. Rows whose minimum lived on the consumed processor.
    if (incremental) {
      for (int t = 0; t < n; ++t)
        if (!task_placed[static_cast<std::size_t>(t)] &&
            f_argmin[static_cast<std::size_t>(t)] == -2)
          rescan_row(t);
    }
  }

  const graph::TaskGraph& g;
  const topo::Topology& topo;
  const EstimationOrder order;
  const int n;

  std::vector<double> assigned_cost;   // A(t, q), row-major n x n
  std::vector<double> unplaced_bytes;  // U(t)
  std::vector<double> mean_dist;       // meandist_Vp(q)
  std::vector<double> sum_dist_free;   // 3rd order: sum_{free pj} d(q, pj)
  std::vector<char> task_placed;
  std::vector<char> proc_used;
  std::vector<int> free_procs;  // ascending order is maintained
  std::vector<double> f_sum;
  std::vector<double> f_min;
  std::vector<int> f_argmin;
  Mapping mapping;
};

}  // namespace

Mapping TopoLB::map(const graph::TaskGraph& g, const topo::Topology& topo,
                    Rng& rng) const {
  (void)rng;  // deterministic; see tie-breaking note in the header
  require_square(g, topo);
  const int n = g.num_vertices();
  if (n == 0) return {};

  TopoLBState st(g, topo, order_);
  for (int cycle = 0; cycle < n; ++cycle) {
    if (order_ == EstimationOrder::kThird) {
      // Free-set averages moved last cycle; refresh every row (O(p^2)).
      for (int t = 0; t < n; ++t)
        if (!st.task_placed[static_cast<std::size_t>(t)]) st.rescan_row(t);
    }
    const int task = st.select_task();
    TOPOMAP_ASSERT(task >= 0, "no task selected");
    const int proc = st.f_argmin[static_cast<std::size_t>(task)];
    TOPOMAP_ASSERT(proc >= 0, "no free processor for selected task");
    st.place(task, proc);
  }
  return st.mapping;
}

std::string TopoLB::name() const {
  switch (order_) {
    case EstimationOrder::kFirst:
      return "TopoLB(first-order)";
    case EstimationOrder::kSecond:
      return "TopoLB";
    case EstimationOrder::kThird:
      return "TopoLB(third-order)";
  }
  return "TopoLB(?)";
}

}  // namespace topomap::core
