#include "core/topo_lb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "core/cache_handle.hpp"
#include "core/distance_provider.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "topo/distance_cache.hpp"

namespace topomap::core {

namespace {

// Static-chunk grains for the row-independent kernels.  Chunk boundaries
// depend only on loop size and grain (never thread count), and each chunk
// touches only its own rows/slots, so results are byte-identical for any
// thread count — see support/parallel.hpp.
constexpr int kRowGrain = 8;      // full row rescans (O(p) work per row)
constexpr int kTaskGrain = 512;   // scalar per-task updates
constexpr int kProcGrain = 2048;  // per-free-processor updates

/// Row-minimum buffer depth.  Each row keeps its kTopK smallest (f, q)
/// pairs; when a row's argmin processor is consumed the next minimum is the
/// first still-free buffer entry, and a full O(p) rescan is needed only
/// once the buffer drains.  Correctness: a row's f values over free
/// processors change only when the row's task gains a placed neighbour
/// (step 4 rescans it then), so between rescans the free set merely
/// shrinks — and the K smallest of a set contain the minimum of every
/// subset they intersect.  On symmetric topologies nearly every row shares
/// one argmin, so without the buffer each placement forces O(p) full
/// rescans — O(p^3) total where the paper promises O(p^2 * deg).
constexpr int kTopK = 16;

/// All mutable algorithm state, kept in one place so the update steps after
/// each placement read like the paper's description.  `Dist` is either
/// detail::CachedDistance or detail::VirtualDistance; both run identical
/// arithmetic (core/distance_provider.hpp).
///
/// Lazy rows: until a task gains its first placed neighbour its
/// assigned_cost row is identically zero, so its f landscape is just
/// U(t) * meandist(q) (second order) or constant zero (first order) — a
/// scaled copy of one shared vector.  Such rows carry no per-row state;
/// their minimum lives in one global (meandist, q)-ascending order with a
/// skip-consumed head, and their F_sum is U(t) * sum of free meandists.
/// This removes the initial O(p^2) scan and, crucially, the lockstep
/// buffer-drain storm on symmetric topologies where every passive row
/// would otherwise refill at once.  A row activates (full rescan into its
/// top-K buffer) the first time step 4 touches it.  Third order refreshes
/// every row each cycle, so there the lazy path is disabled.
template <class Dist>
struct TopoLBState {
  TopoLBState(const graph::TaskGraph& graph_in, const Dist& dist_in,
              EstimationOrder order_in)
      : g(graph_in), dist(dist_in), order(order_in), n(g.num_vertices()),
        lazy(order_in != EstimationOrder::kThird) {
    const auto un = static_cast<std::size_t>(n);
    assigned_cost.assign(un * un, 0.0);
    unplaced_bytes.resize(un);
    mean_dist.resize(un);
    for (int t = 0; t < n; ++t)
      unplaced_bytes[static_cast<std::size_t>(t)] = g.comm_bytes(t);
    for (int q = 0; q < n; ++q)
      mean_dist[static_cast<std::size_t>(q)] = dist.mean_distance_from(q);
    if (order == EstimationOrder::kThird) {
      sum_dist_free.resize(un);
      for (int q = 0; q < n; ++q)
        sum_dist_free[static_cast<std::size_t>(q)] =
            mean_dist[static_cast<std::size_t>(q)] * static_cast<double>(n);
    }
    task_placed.assign(un, 0);
    proc_used.assign(un, 0);
    free_procs.reserve(un);
    for (int q = 0; q < n; ++q) free_procs.push_back(q);
    unplaced.reserve(un);
    for (int t = 0; t < n; ++t) unplaced.push_back(t);
    f_sum.assign(un, 0.0);
    f_min.assign(un, 0.0);
    f_argmin.assign(un, -1);
    top_k = std::min(kTopK, n);
    top_f.assign(un * static_cast<std::size_t>(top_k), 0.0);
    top_q.assign(un * static_cast<std::size_t>(top_k), -1);
    top_head.assign(un, 0);
    top_size.assign(un, 0);
    row_active.assign(un, 0);
    mapping.assign(un, kUnassigned);
    if (lazy) {
      // Shared landscape of passive rows: zero for first order (f ==
      // assigned == 0 there), meandist for second.  Lexicographic (value,
      // q) ascending, so the head is the lowest-id processor among equal
      // values — matching the sequential first-strict-minimum scan.
      m_order.reserve(un);
      const bool second = order == EstimationOrder::kSecond;
      for (int q = 0; q < n; ++q) {
        const double mq =
            second ? mean_dist[static_cast<std::size_t>(q)] : 0.0;
        m_order.emplace_back(mq, q);
        sum_m_free += mq;
      }
      std::sort(m_order.begin(), m_order.end());
    } else {
      rescan_all_rows();
    }
  }

  /// f_est(t, q, P) for a free processor q under the configured order.
  double f_est(int t, int q) const {
    const auto row = static_cast<std::size_t>(t) * static_cast<std::size_t>(n);
    const double assigned = assigned_cost[row + static_cast<std::size_t>(q)];
    switch (order) {
      case EstimationOrder::kFirst:
        return assigned;
      case EstimationOrder::kSecond:
        return assigned + unplaced_bytes[static_cast<std::size_t>(t)] *
                              mean_dist[static_cast<std::size_t>(q)];
      case EstimationOrder::kThird:
        return assigned + unplaced_bytes[static_cast<std::size_t>(t)] *
                              sum_dist_free[static_cast<std::size_t>(q)] /
                              static_cast<double>(free_procs.size());
    }
    TOPOMAP_UNREACHABLE("estimation order is an exhaustive enum");
  }

  /// Recompute F_sum and refill row t's top-K minima buffer by scanning the
  /// free processors in increasing q.  The buffer holds the K smallest
  /// (f, q) pairs in ascending lexicographic order, so its head is the
  /// sequential scan's first-strict-minimum (smallest f; lowest q on ties).
  ///
  /// This is the hottest kernel (every step-4 touched row pays one call),
  /// so the f expressions are specialized per order outside the loop —
  /// identical arithmetic to f_est, without its per-element dispatch — and
  /// the K smallest are kept in a small max-heap whose reject test is one
  /// predictable comparison per element.
  void rescan_row(int t) {
    const int nf = static_cast<int>(free_procs.size());
    OBS_COUNTER_ADD("topolb/row_rescans", 1);
    OBS_COUNTER_ADD("topolb/f_est_evals", nf);
    const double* arow =
        assigned_cost.data() +
        static_cast<std::size_t>(t) * static_cast<std::size_t>(n);
    const double u = unplaced_bytes[static_cast<std::size_t>(t)];
    std::pair<double, int> heap[kTopK];  // max-heap: largest (f, q) at [0]
    int hs = 0;
    double sum = 0.0;
    auto consider = [&](double f, int q) {
      const std::pair<double, int> cand(f, q);
      if (hs < top_k) {
        heap[hs++] = cand;
        std::push_heap(heap, heap + hs);
      } else if (cand < heap[0]) {
        std::pop_heap(heap, heap + hs);
        heap[hs - 1] = cand;
        std::push_heap(heap, heap + hs);
      }
    };
    switch (order) {
      case EstimationOrder::kFirst:
        for (int i = 0; i < nf; ++i) {
          const int q = free_procs[static_cast<std::size_t>(i)];
          const double f = arow[q];
          sum += f;
          consider(f, q);
        }
        break;
      case EstimationOrder::kSecond: {
        const double* md = mean_dist.data();
        for (int i = 0; i < nf; ++i) {
          const int q = free_procs[static_cast<std::size_t>(i)];
          const double f = arow[q] + u * md[q];
          sum += f;
          consider(f, q);
        }
        break;
      }
      case EstimationOrder::kThird: {
        const double* sdf = sum_dist_free.data();
        const double nfree = static_cast<double>(free_procs.size());
        for (int i = 0; i < nf; ++i) {
          const int q = free_procs[static_cast<std::size_t>(i)];
          const double f = arow[q] + u * sdf[q] / nfree;
          sum += f;
          consider(f, q);
        }
        break;
      }
    }
    std::sort_heap(heap, heap + hs);  // ascending (f, q)
    const auto base =
        static_cast<std::size_t>(t) * static_cast<std::size_t>(top_k);
    for (int i = 0; i < hs; ++i) {
      top_f[base + static_cast<std::size_t>(i)] = heap[i].first;
      top_q[base + static_cast<std::size_t>(i)] = heap[i].second;
    }
    row_active[static_cast<std::size_t>(t)] = 1;
    top_head[static_cast<std::size_t>(t)] = 0;
    top_size[static_cast<std::size_t>(t)] = hs;
    f_sum[static_cast<std::size_t>(t)] = sum;
    f_min[static_cast<std::size_t>(t)] =
        hs > 0 ? heap[0].first : std::numeric_limits<double>::infinity();
    f_argmin[static_cast<std::size_t>(t)] = hs > 0 ? heap[0].second : -1;
  }

  /// Row t's argmin processor was consumed: advance to the first buffered
  /// minimum that is still free, refilling with a full rescan only when the
  /// buffer is exhausted.  Between rescans the row's f values are unchanged
  /// (only rows touched in step 4 change, and those are rescanned there),
  /// so the surviving buffer entries are exact.
  void advance_row_min(int t) {
    const auto base =
        static_cast<std::size_t>(t) * static_cast<std::size_t>(top_k);
    int h = top_head[static_cast<std::size_t>(t)];
    const int sz = top_size[static_cast<std::size_t>(t)];
    while (h < sz &&
           proc_used[static_cast<std::size_t>(
               top_q[base + static_cast<std::size_t>(h)])])
      ++h;
    if (h >= sz) {
      rescan_row(t);
      return;
    }
    top_head[static_cast<std::size_t>(t)] = h;
    f_min[static_cast<std::size_t>(t)] =
        top_f[base + static_cast<std::size_t>(h)];
    f_argmin[static_cast<std::size_t>(t)] =
        top_q[base + static_cast<std::size_t>(h)];
  }

  /// Rescan every unplaced row.  Rows are independent (each writes only its
  /// own f_sum/f_min/f_argmin slots), so this is the main parallel kernel of
  /// the initial scan and of third order's per-cycle refresh.
  void rescan_all_rows() {
    support::parallel_for(
        static_cast<int>(unplaced.size()), kRowGrain, [&](int begin, int end) {
          for (int i = begin; i < end; ++i)
            rescan_row(unplaced[static_cast<std::size_t>(i)]);
        });
  }

  /// Pick the unplaced task with maximum gain = F_avg - F_min.
  /// Ties: larger total communication, then lower id.
  ///
  /// Gains are compared with a *relative* epsilon: f_sum is maintained by
  /// incremental subtraction (place() step 1), so two mathematically equal
  /// gains can differ by O(1e-16 * magnitude) of accumulated drift — and
  /// with exact `==` the documented tie-break would fire or not depending
  /// on optimization level (FMA contraction, vectorized sum order).  Gains
  /// within the tolerance are treated as tied and fall through to the
  /// comm-bytes / lowest-id rule, which no longer depends on FP noise.
  int select_task() const {
    const double nfree = static_cast<double>(free_procs.size());
    const double m_min_free = lazy ? m_order[static_cast<std::size_t>(m_head)].first : 0.0;
    int best = -1;
    double best_gain = 0.0;
    for (const int t : unplaced) {  // ascending, as the tie-break requires
      double fsum, fmin;
      if (row_active[static_cast<std::size_t>(t)]) {
        fsum = f_sum[static_cast<std::size_t>(t)];
        fmin = f_min[static_cast<std::size_t>(t)];
      } else {
        const double u = unplaced_bytes[static_cast<std::size_t>(t)];
        fsum = u * sum_m_free;
        fmin = u * m_min_free;
      }
      const double gain = fsum / nfree - fmin;
      if (best < 0) {
        best = t;
        best_gain = gain;
        continue;
      }
      const double tol =
          1e-9 * std::max(1.0, std::max(std::abs(gain), std::abs(best_gain)));
      if (gain > best_gain + tol) {
        best = t;
        best_gain = gain;
      } else if (gain > best_gain - tol &&
                 g.comm_bytes(t) > g.comm_bytes(best)) {
        best = t;
        best_gain = std::max(best_gain, gain);
      }
    }
    return best;
  }

  /// The free processor minimizing f_est(t, .): the row buffer's head for
  /// an active row, the shared global head for a passive one (for a
  /// passive row f is a nonnegative multiple of the shared landscape, so
  /// the (value, q)-lexicographic global minimum realizes the row
  /// minimum; a zero-communication task lands there too, any free
  /// processor being equally good at f == 0).
  int argmin_proc(int t) const {
    if (row_active[static_cast<std::size_t>(t)])
      return f_argmin[static_cast<std::size_t>(t)];
    return m_order[static_cast<std::size_t>(m_head)].second;
  }

  /// Commit task -> proc and update every cached quantity.
  void place(int task, int proc) {
    // Trajectory of the objective: edges close when their second endpoint
    // lands, so the running sum of just-closed incident edges equals the
    // final mapping's hop-bytes after the last placement.
    OBS_ONLY(if (::topomap::obs::enabled()) {
      const auto drow_obs = dist.row(proc);
      for (const graph::Edge& e : g.edges_of(task)) {
        if (!task_placed[static_cast<std::size_t>(e.neighbor)]) continue;
        obs_hop_bytes +=
            e.bytes * static_cast<double>(drow_obs[static_cast<std::size_t>(
                          mapping[static_cast<std::size_t>(e.neighbor)])]);
      }
      OBS_SERIES_APPEND("topolb/hop_bytes_trajectory", obs_hop_bytes);
    })
    mapping[static_cast<std::size_t>(task)] = proc;
    task_placed[static_cast<std::size_t>(task)] = 1;
    unplaced.erase(
        std::lower_bound(unplaced.begin(), unplaced.end(), task));

    const bool incremental = order != EstimationOrder::kThird;
    const int nu = static_cast<int>(unplaced.size());

    // 1. Retire `proc` from the incremental row statistics using the *old*
    //    f values (non-neighbour rows are otherwise unchanged).  Each task
    //    touches only its own slots — row-parallel.  Passive rows carry no
    //    per-row state: the shared sum/head update in step 2 covers them.
    //    Rows whose buffered minimum lived on `proc` land in per-chunk
    //    stale buckets, concatenated in ascending chunk order for step 5.
    std::vector<int> stale;
    if (incremental) {
      const int chunks = support::parallel_chunk_count(nu, kTaskGrain);
      std::vector<std::vector<int>> stale_chunks(
          static_cast<std::size_t>(chunks));
      support::parallel_for_chunks(
          nu, kTaskGrain, [&](int chunk, int begin, int end) {
            auto& bucket = stale_chunks[static_cast<std::size_t>(chunk)];
            for (int i = begin; i < end; ++i) {
              const int t = unplaced[static_cast<std::size_t>(i)];
              if (!row_active[static_cast<std::size_t>(t)]) continue;
              f_sum[static_cast<std::size_t>(t)] -= f_est(t, proc);
              if (f_argmin[static_cast<std::size_t>(t)] == proc)
                bucket.push_back(t);
            }
          });
      for (const auto& bucket : stale_chunks)
        stale.insert(stale.end(), bucket.begin(), bucket.end());
    }

    // 2. Remove the processor from the free set; keep the passive rows'
    //    shared landscape current (head skips consumed processors in
    //    amortized O(1), the free-sum drops by the consumed entry).
    proc_used[static_cast<std::size_t>(proc)] = 1;
    for (std::size_t i = 0; i < free_procs.size(); ++i) {
      if (free_procs[i] == proc) {
        free_procs.erase(free_procs.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    if (lazy) {
      sum_m_free -= order == EstimationOrder::kSecond
                        ? mean_dist[static_cast<std::size_t>(proc)]
                        : 0.0;
      while (m_head < n &&
             proc_used[static_cast<std::size_t>(
                 m_order[static_cast<std::size_t>(m_head)].second)])
        ++m_head;
    }

    // 3. Third order: the free-set mean distances all shift.
    if (order == EstimationOrder::kThird) {
      const auto drow = dist.row(proc);
      const int nfree = static_cast<int>(free_procs.size());
      support::parallel_for(nfree, kProcGrain, [&](int begin, int end) {
        for (int i = begin; i < end; ++i) {
          const int q = free_procs[static_cast<std::size_t>(i)];
          sum_dist_free[static_cast<std::size_t>(q)] -=
              static_cast<double>(drow[q]);
        }
      });
    }

    if (free_procs.empty()) return;

    // 4. Neighbours of the placed task: their unplaced->placed split moved,
    //    so their whole row changes — fold the now-exact distance term into
    //    assigned_cost (parallel over free processors), then rescan the
    //    touched rows (parallel over rows; a rescan reads only its own
    //    row's data, so deferring it past the other rows' updates changes
    //    nothing).  This is the paper's O(p * delta(t_k)) step.
    const auto drow = dist.row(proc);
    const int nfree = static_cast<int>(free_procs.size());
    std::vector<int> touched;
    for (const graph::Edge& e : g.edges_of(task)) {
      const int tj = e.neighbor;
      if (task_placed[static_cast<std::size_t>(tj)]) continue;
      const auto row =
          static_cast<std::size_t>(tj) * static_cast<std::size_t>(n);
      support::parallel_for(nfree, kProcGrain, [&](int begin, int end) {
        for (int i = begin; i < end; ++i) {
          const int q = free_procs[static_cast<std::size_t>(i)];
          assigned_cost[row + static_cast<std::size_t>(q)] +=
              e.bytes * static_cast<double>(drow[q]);
        }
      });
      unplaced_bytes[static_cast<std::size_t>(tj)] -= e.bytes;
      touched.push_back(tj);
    }
    if (incremental) {
      support::parallel_for(
          static_cast<int>(touched.size()), 1, [&](int begin, int end) {
            for (int i = begin; i < end; ++i)
              rescan_row(touched[static_cast<std::size_t>(i)]);
          });
    }

    // 5. Rows whose minimum lived on the consumed processor: pop the
    //    buffered next-best (amortized O(1); full rescan only on a drained
    //    buffer).  A stale row that step 4 just rescanned advances to its
    //    fresh head — a no-op.
    if (incremental) {
      support::parallel_for(
          static_cast<int>(stale.size()), kTaskGrain, [&](int begin, int end) {
            for (int i = begin; i < end; ++i)
              advance_row_min(stale[static_cast<std::size_t>(i)]);
          });
    }
  }

  const graph::TaskGraph& g;
  const Dist dist;
  const EstimationOrder order;
  const int n;
  const bool lazy;  // passive rows share the global landscape (not 3rd order)

  std::vector<double> assigned_cost;   // A(t, q), row-major n x n
  std::vector<double> unplaced_bytes;  // U(t)
  std::vector<double> mean_dist;       // meandist_Vp(q)
  std::vector<double> sum_dist_free;   // 3rd order: sum_{free pj} d(q, pj)
  std::vector<char> task_placed;
  std::vector<char> proc_used;
  std::vector<int> free_procs;  // ascending order is maintained
  std::vector<int> unplaced;    // ascending order is maintained
  std::vector<double> f_sum;
  std::vector<double> f_min;
  std::vector<int> f_argmin;
  int top_k = 0;               // min(kTopK, n)
  std::vector<double> top_f;   // n x top_k row-minima buffers, ascending
  std::vector<int> top_q;
  std::vector<int> top_head;   // first possibly-live buffer entry per row
  std::vector<int> top_size;   // valid entries per row
  std::vector<char> row_active;  // 0 until the row's first step-4 rescan
  std::vector<std::pair<double, int>> m_order;  // passive landscape, ascending
  int m_head = 0;            // first still-free entry of m_order
  double sum_m_free = 0.0;   // sum of m_order values over free processors
  double obs_hop_bytes = 0.0;  // instrumentation-only running objective
  Mapping mapping;
};

template <class Dist>
Mapping run_topolb(const graph::TaskGraph& g, const Dist& dist,
                   EstimationOrder order) {
  const int n = g.num_vertices();
  OBS_SPAN("topolb/map");
  TopoLBState<Dist> st(g, dist, order);
  for (int cycle = 0; cycle < n; ++cycle) {
    if (order == EstimationOrder::kThird && cycle > 0) {
      // Free-set averages moved last cycle; refresh every row (O(p^2)).
      st.rescan_all_rows();
    }
    int task;
    {
      OBS_SPAN("topolb/select_task");
      task = st.select_task();
    }
    TOPOMAP_ASSERT(task >= 0, "no task selected");
    const int proc = st.argmin_proc(task);
    TOPOMAP_ASSERT(proc >= 0, "no free processor for selected task");
    OBS_SPAN("topolb/place");
    st.place(task, proc);
  }
  OBS_COUNTER_ADD("topolb/placements", n);
  return st.mapping;
}

}  // namespace

Mapping TopoLB::map(const graph::TaskGraph& g, const topo::Topology& topo,
                    Rng& rng) const {
  (void)rng;  // deterministic; see tie-breaking note in the header
  require_square(g, topo);
  if (g.num_vertices() == 0) return {};
  if (mode_ == DistanceMode::kVirtual)
    return run_topolb(g, detail::VirtualDistance{topo}, order_);
  const auto cache = obtain_cache(cache_, topo);
  return run_topolb(g, detail::CachedDistance{*cache}, order_);
}

std::string TopoLB::name() const {
  switch (order_) {
    case EstimationOrder::kFirst:
      return "TopoLB(first-order)";
    case EstimationOrder::kSecond:
      return "TopoLB";
    case EstimationOrder::kThird:
      return "TopoLB(third-order)";
  }
  return "TopoLB(?)";
}

}  // namespace topomap::core
