// Contention explainability: route-based per-link attribution.
//
// core::link_loads (metrics.hpp) answers "how loaded is each link?";
// this layer answers *why*: for every directed link it records the total
// bytes plus the contributing task pairs, so a hot link can be traced back
// to the task-graph edges that route across it ("link (3,4) carries 8000 B,
// 4000 of them from pair (12,13)").  On top of the attribution it derives
// the aggregate link-load statistics the task-mapping literature evaluates
// mappings by — max/mean/L2 and a Gini imbalance coefficient — and a
// deterministic diff between two mappings of the same workload on the same
// machine ("link (3,4) dropped 8000 -> 1000 B; pairs (12,13),(12,17) moved
// off").
//
// Conventions match core::link_loads exactly: every task-graph edge routes
// both directions along Topology::route() with bytes/2 each way, so the sum
// of per-link totals equals the mapping's hop-bytes (exactly so for
// integral byte weights, where every addend is exactly representable).  All
// accumulation is sequential and keyed by link id, so the report is
// byte-identical run to run and independent of the worker-pool size.
//
// Everything here is ordinary always-compiled code (the obs:: class-API
// tier, not the OBS_* macro tier): computing an attribution never mutates
// observability state and is available in -DTOPOMAP_OBS=OFF builds.
#pragma once

#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "graph/task_graph.hpp"
#include "obs/json.hpp"
#include "topo/topology.hpp"

namespace topomap::core {

/// One task pair's share of a link's traffic.  `a` < `b` (the undirected
/// task-graph edge endpoints); `bytes` counts both directions of the pair's
/// traffic over this directed link (each direction contributes edge
/// bytes/2 per traversal).
struct LinkContributor {
  int a = 0;
  int b = 0;
  double bytes = 0.0;
};

/// A directed link with its total load and full contributor breakdown,
/// sorted by descending bytes (ties: ascending (a, b)).
struct LinkAttribution {
  int from = 0;
  int to = 0;
  double bytes = 0.0;  ///< == sum of contributors' bytes (exactly)
  std::vector<LinkContributor> contributors;
};

/// Aggregate link-load statistics over *all* directed links of the
/// topology (links carrying no traffic count as zero-load).
struct ContentionStats {
  double total_bytes = 0.0;  ///< sum over links; == hop-bytes
  double max_bytes = 0.0;
  double mean_bytes = 0.0;  ///< total / links_total
  double l2 = 0.0;          ///< sqrt(sum of squared link loads)
  double gini = 0.0;        ///< load imbalance in [0, 1); 0 = uniform
  int links_used = 0;       ///< links carrying any traffic
  int links_total = 0;
};

/// Full attribution of a mapping: per-link breakdowns (only links with
/// traffic, sorted by descending bytes, ties by ascending (from, to)) plus
/// the aggregate statistics.
struct ContentionReport {
  ContentionStats stats;
  std::vector<LinkAttribution> links;
};

/// Per-link change between two mappings of the same workload on the same
/// machine.  `moved_off` are pairs that routed over the link under A but
/// not under B; `moved_on` the reverse; `delta` == bytes_b - bytes_a.
struct LinkDelta {
  int from = 0;
  int to = 0;
  double bytes_a = 0.0;
  double bytes_b = 0.0;
  double delta = 0.0;
  std::vector<LinkContributor> moved_off;  ///< pairs leaving the link (A-only)
  std::vector<LinkContributor> moved_on;   ///< pairs arriving (B-only)
};

/// Deterministic diff between two attributions.  Only links whose byte
/// totals differ appear, sorted by descending |delta| (ties: ascending
/// (from, to)).  Antisymmetric: diff(B, A) is diff(A, B) with every delta
/// negated and moved_off/moved_on swapped.
struct ContentionDiff {
  ContentionStats stats_a;
  ContentionStats stats_b;
  std::vector<LinkDelta> links;
};

/// Route every task-graph edge over the machine (as core::link_loads does)
/// and attribute each directed link's bytes to the task pairs crossing it.
/// Requires a topology with route() support; throws precondition_error on
/// distance-model-only machines (FatTree).
ContentionReport attribute_link_loads(const graph::TaskGraph& g,
                                      const topo::Topology& topo,
                                      const Mapping& m);

/// Just the aggregate statistics (same routing + accumulation as
/// attribute_link_loads, without retaining per-pair breakdowns).
ContentionStats contention_stats(const graph::TaskGraph& g,
                                 const topo::Topology& topo, const Mapping& m);

/// Diff two attributions of the same workload on the same machine.
ContentionDiff diff_contention(const ContentionReport& a,
                               const ContentionReport& b);

/// Schema identity of the machine-readable contention artifact.
inline constexpr const char* kContentionSchemaName = "topomap.obs.contention";
inline constexpr int kContentionSchemaVersion = 1;

obs::json::Value contention_stats_to_json(const ContentionStats& stats);

/// The report's "links" JSON array: one object per link with its total and
/// its top `top_k` contributors (plus a `pairs` count of all contributors).
obs::json::Value contention_links_to_json(const ContentionReport& report,
                                          int top_k);

/// The diff's "links" JSON array (top_k bounds moved_off/moved_on lists).
obs::json::Value contention_diff_to_json(const ContentionDiff& diff,
                                         int top_k);

/// Compact terminal rendering: aggregate stats, a heatmap strip of every
/// directed link's load (ramp " .:-=+*#%@" scaled by the max), and the
/// `top_links` hottest links with their top `top_k` contributing pairs.
std::string render_contention_summary(const ContentionReport& report,
                                      int top_links, int top_k);

/// Terminal rendering of a diff: per-link "8000 -> 1000 B" lines with the
/// pairs that moved off/on, hottest shifts first.
std::string render_contention_diff(const ContentionDiff& diff, int top_links,
                                   int top_k);

}  // namespace topomap::core
