// Mapping-quality metrics: hop-bytes, hops-per-byte, and per-link load
// accounting (section 3 of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "core/mapping.hpp"
#include "graph/task_graph.hpp"
#include "topo/distance_cache.hpp"
#include "topo/topology.hpp"

namespace topomap::core {

/// HB(G_t, G_p, P) = sum over edges e=(a,b) of bytes(e) * d(P(a), P(b)).
double hop_bytes(const graph::TaskGraph& g, const topo::Topology& topo,
                 const Mapping& m);

/// Same metric read from a prebuilt distance cache.  Distances are exactly
/// equal integers and the edge summation order is identical, so this
/// returns bit-identical values to the virtual-dispatch overload.
double hop_bytes(const graph::TaskGraph& g, const topo::DistanceCache& cache,
                 const Mapping& m);

/// HB contribution of a single task: sum over its incident edges.  Summing
/// over all tasks double-counts each edge (the paper's 1/2 factor).
double hop_bytes_of_task(const graph::TaskGraph& g, const topo::Topology& topo,
                         const Mapping& m, int task);

/// hop_bytes / total bytes — the paper's headline "hops per byte".
/// Returns 0 when the graph has no communication.
double hops_per_byte(const graph::TaskGraph& g, const topo::Topology& topo,
                     const Mapping& m);

/// Expected hops-per-byte under uniform random placement: the mean distance
/// between two independent uniform processors (paper §5.2.1: sqrt(p)/2 for
/// square 2D tori, 3*cbrt(p)/4 for cubic 3D tori).
double expected_random_hops(const topo::Topology& topo);

/// Per-link byte loads when every message follows Topology::route().
struct LinkLoadStats {
  double total_bytes = 0.0;   ///< sum over directed links (== hop-bytes)
  double max_bytes = 0.0;     ///< most loaded directed link
  double mean_bytes = 0.0;    ///< average over all directed links
  int links_used = 0;         ///< directed links carrying any traffic
  int links_total = 0;        ///< all directed links in the topology
};

/// Route every task-graph edge (both directions, bytes each way = edge
/// bytes / 2 so totals match hop-bytes) and accumulate per-link loads.
/// Requires a topology with route() support (grids, hypercube, graphs).
/// Edge routing runs on the support::parallel pool (per-chunk load maps,
/// merged in ascending chunk order); the result is deterministic for any
/// thread count, though the FP sums may differ from a strictly sequential
/// accumulation at the ulp level (this is a read-only statistic — no
/// mapping decision consumes it).
LinkLoadStats link_loads(const graph::TaskGraph& g, const topo::Topology& topo,
                         const Mapping& m);

}  // namespace topomap::core
