#include "core/hier_topo_lb.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "core/cache_handle.hpp"
#include "core/distance_provider.hpp"
#include "core/metrics.hpp"
#include "core/refine_topo_lb.hpp"
#include "core/swap_kernel.hpp"
#include "graph/quotient.hpp"
#include "obs/obs.hpp"
#include "partition/multilevel.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "topo/distance_cache.hpp"

namespace topomap::core {

namespace {

using graph::TaskGraph;
using graph::UndirectedEdge;

constexpr int kEdgeGrain = 2048;  // swap-delta / hop-bytes edge chunks
constexpr int kNodeGrain = 16;    // machine-node split chunks

/// Balancing weights: vertex weights, or all-ones when the graph carries no
/// compute load (same convention as the multilevel partitioner).
std::vector<double> balance_weights(const TaskGraph& g) {
  std::vector<double> w(static_cast<std::size_t>(g.num_vertices()), 1.0);
  if (g.total_vertex_weight() > 0.0)
    for (int v = 0; v < g.num_vertices(); ++v)
      w[static_cast<std::size_t>(v)] = g.vertex_weight(v);
  return w;
}

// ---------------------------------------------------------------------------
// Machine-side hierarchy: contract the processor graph by heaviest-link
// matching until it fits the flat solve cap.  Distances between nodes are
// the base topology's distances between *representative* processors, so the
// coarse plane keeps the real metric at node granularity.
// ---------------------------------------------------------------------------

struct MachineLevel {
  std::vector<int> parent;  ///< level-k node -> level-(k+1) node
};

struct MachineHierarchy {
  /// levels[k].parent maps level-k nodes up to level-k+1; level 0 is the
  /// real processor set (reps[0] is the identity).
  std::vector<MachineLevel> levels;
  /// Per level: node -> representative base processor (ascending levels,
  /// index 0 = processors, index levels.size() = coarsest).
  std::vector<std::vector<int>> reps;
  /// Per level: node -> number of base processors covered.
  std::vector<std::vector<double>> caps;
  /// Coarsest contracted adjacency (neighbor ids, ascending).
  std::vector<std::vector<int>> coarsest_adj;

  int coarsest_size() const {
    return static_cast<int>(reps.back().size());
  }
};

/// Greedy heaviest-link matching of the current node graph, ascending node
/// order, ties to the lowest neighbor id.  Deterministic by construction.
MachineHierarchy coarsen_machine(const topo::Topology& topo, int target) {
  TOPOMAP_REQUIRE(topo.has_adjacency(),
                  "hier: machines larger than flat_proc_cap need "
                  "processor-level adjacency to coarsen (" +
                      topo.name() + " has none)");
  const int p0 = topo.size();
  MachineHierarchy mh;
  mh.reps.emplace_back(static_cast<std::size_t>(p0));
  std::iota(mh.reps.back().begin(), mh.reps.back().end(), 0);
  mh.caps.emplace_back(static_cast<std::size_t>(p0), 1.0);

  // Current level's weighted adjacency (link multiplicity after
  // contraction), neighbor ids ascending.
  std::vector<std::vector<std::pair<int, double>>> adj(
      static_cast<std::size_t>(p0));
  for (int q = 0; q < p0; ++q)
    for (int nb : topo.neighbors(q))
      adj[static_cast<std::size_t>(q)].emplace_back(nb, 1.0);

  while (static_cast<int>(adj.size()) > target) {
    const int pk = static_cast<int>(adj.size());
    std::vector<int> match(static_cast<std::size_t>(pk), -1);
    int coarse_count = 0;
    for (int v = 0; v < pk; ++v) {
      if (match[static_cast<std::size_t>(v)] != -1) continue;
      int best = -1;
      double best_w = -1.0;
      for (const auto& [nb, w] : adj[static_cast<std::size_t>(v)]) {
        if (match[static_cast<std::size_t>(nb)] != -1) continue;
        if (w > best_w) {  // ascending nb: ties keep the lowest id
          best_w = w;
          best = nb;
        }
      }
      match[static_cast<std::size_t>(v)] = best >= 0 ? best : v;
      if (best >= 0) match[static_cast<std::size_t>(best)] = v;
    }
    std::vector<int> parent(static_cast<std::size_t>(pk), -1);
    for (int v = 0; v < pk; ++v) {
      if (parent[static_cast<std::size_t>(v)] != -1) continue;
      const int u = match[static_cast<std::size_t>(v)];
      parent[static_cast<std::size_t>(v)] = coarse_count;
      parent[static_cast<std::size_t>(u)] = coarse_count;
      ++coarse_count;
    }
    if (coarse_count > static_cast<int>(0.95 * pk)) break;  // stalled

    const auto& rep_k = mh.reps.back();
    const auto& cap_k = mh.caps.back();
    std::vector<int> rep_c(static_cast<std::size_t>(coarse_count), -1);
    std::vector<double> cap_c(static_cast<std::size_t>(coarse_count), 0.0);
    for (int v = 0; v < pk; ++v) {
      const int c = parent[static_cast<std::size_t>(v)];
      cap_c[static_cast<std::size_t>(c)] += cap_k[static_cast<std::size_t>(v)];
      // Representative: the heavier member's rep; first visitor on ties
      // (lower level-k id), so the choice is order-stable.
      const int u = match[static_cast<std::size_t>(v)];
      if (rep_c[static_cast<std::size_t>(c)] < 0)
        rep_c[static_cast<std::size_t>(c)] =
            (u != v && cap_k[static_cast<std::size_t>(u)] >
                           cap_k[static_cast<std::size_t>(v)])
                ? rep_k[static_cast<std::size_t>(u)]
                : rep_k[static_cast<std::size_t>(v)];
    }

    std::vector<std::vector<std::pair<int, double>>> coarse_adj(
        static_cast<std::size_t>(coarse_count));
    for (int v = 0; v < pk; ++v) {
      const int cv = parent[static_cast<std::size_t>(v)];
      for (const auto& [nb, w] : adj[static_cast<std::size_t>(v)]) {
        const int cn = parent[static_cast<std::size_t>(nb)];
        if (cv != cn) coarse_adj[static_cast<std::size_t>(cv)].emplace_back(cn, w);
      }
    }
    for (auto& row : coarse_adj) {  // merge duplicate coarse links
      std::sort(row.begin(), row.end());
      std::size_t out = 0;
      for (std::size_t i = 0; i < row.size();) {
        std::size_t j = i;
        double w = 0.0;
        while (j < row.size() && row[j].first == row[i].first) w += row[j++].second;
        row[out++] = {row[i].first, w};
        i = j;
      }
      row.resize(out);
    }

    mh.levels.push_back(MachineLevel{std::move(parent)});
    mh.reps.push_back(std::move(rep_c));
    mh.caps.push_back(std::move(cap_c));
    adj = std::move(coarse_adj);
  }

  mh.coarsest_adj.resize(adj.size());
  for (std::size_t v = 0; v < adj.size(); ++v)
    for (const auto& [nb, w] : adj[v]) mh.coarsest_adj[v].push_back(nb);
  return mh;
}

/// Coarse machine plane: node distances are base distances between
/// representative processors, adjacency is the contracted link graph.
class NodeTopology final : public topo::Topology {
 public:
  NodeTopology(const topo::Topology& base, std::vector<int> reps,
               std::vector<std::vector<int>> adj)
      : base_(base), reps_(std::move(reps)), adj_(std::move(adj)) {}

  int size() const override { return static_cast<int>(reps_.size()); }
  int distance(int a, int b) const override {
    return base_.distance(reps_[static_cast<std::size_t>(a)],
                          reps_[static_cast<std::size_t>(b)]);
  }
  std::vector<int> neighbors(int p) const override {
    return adj_[static_cast<std::size_t>(p)];
  }
  std::string name() const override {
    return "hier-nodes(" + base_.name() + ",k=" +
           std::to_string(reps_.size()) + ')';
  }
  int distance_scale() const override { return base_.distance_scale(); }
  void write_distance_row(int p, std::uint16_t* out) const override {
    const int rp = reps_[static_cast<std::size_t>(p)];
    for (std::size_t b = 0; b < reps_.size(); ++b)
      out[b] = static_cast<std::uint16_t>(base_.distance(rp, reps_[b]));
  }

 private:
  const topo::Topology& base_;
  std::vector<int> reps_;
  std::vector<std::vector<int>> adj_;
};

/// Distance provider over machine-level-k node ids: base distances between
/// the nodes' representative processors (the same metric NodeTopology
/// exposes at the coarsest level, usable at any width without a cache).
struct RepDistance {
  const topo::Topology& base;
  const std::vector<int>& rep;

  struct Row {
    const topo::Topology& base;
    const std::vector<int>& rep;
    int rep_a;
    int operator[](int b) const {
      return base.distance(rep_a, rep[static_cast<std::size_t>(b)]);
    }
  };

  int operator()(int a, int b) const {
    return base.distance(rep[static_cast<std::size_t>(a)],
                         rep[static_cast<std::size_t>(b)]);
  }
  Row row(int a) const {
    return Row{base, rep, rep[static_cast<std::size_t>(a)]};
  }
};

// ---------------------------------------------------------------------------
// Deterministic bounded refinement: one pass over the crossing edges.
// Deltas are first evaluated in parallel against the pass-start mapping —
// a pure filter, every slot independent — then the surviving candidates
// are walked in edge order, each delta recomputed sequentially against the
// *current* mapping before the swap commits.  Accept decisions therefore
// never depend on thread count, and every accepted swap strictly lowers
// hop-bytes (no oscillation).
// ---------------------------------------------------------------------------

template <class Dist>
int edge_swap_pass(const TaskGraph& g, const Dist& dist, Mapping& m) {
  const auto& edges = g.edges();
  const int ne = g.num_edges();
  std::vector<double> delta(static_cast<std::size_t>(ne), 0.0);
  support::parallel_for(ne, kEdgeGrain, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      const UndirectedEdge& e = edges[static_cast<std::size_t>(i)];
      delta[static_cast<std::size_t>(i)] =
          detail::swap_delta_dist(g, dist, m, e.a, e.b);
    }
  });
  int swaps = 0;
  for (int i = 0; i < ne; ++i) {
    if (delta[static_cast<std::size_t>(i)] >= 0.0) continue;
    const UndirectedEdge& e = edges[static_cast<std::size_t>(i)];
    const double d = detail::swap_delta_dist(g, dist, m, e.a, e.b);
    if (d < 0.0) {
      std::swap(m[static_cast<std::size_t>(e.a)],
                m[static_cast<std::size_t>(e.b)]);
      ++swaps;
    }
  }
  return swaps;
}

/// Hop-bytes of `m` under an arbitrary distance provider (node planes have
/// no Topology object at interior machine levels).  Per-chunk partial sums
/// are reduced in ascending chunk order — deterministic for any thread
/// count.
template <class Dist>
double hop_bytes_dist(const TaskGraph& g, const Dist& dist, const Mapping& m) {
  const auto& edges = g.edges();
  const int ne = g.num_edges();
  const int chunks = support::parallel_chunk_count(ne, kEdgeGrain);
  std::vector<double> partial(static_cast<std::size_t>(chunks), 0.0);
  support::parallel_for_chunks(ne, kEdgeGrain, [&](int c, int begin, int end) {
    double sum = 0.0;
    for (int i = begin; i < end; ++i) {
      const UndirectedEdge& e = edges[static_cast<std::size_t>(i)];
      sum += e.bytes *
             static_cast<double>(dist(m[static_cast<std::size_t>(e.a)],
                                      m[static_cast<std::size_t>(e.b)]));
    }
    partial[static_cast<std::size_t>(c)] = sum;
  });
  double total = 0.0;
  for (double s : partial) total += s;
  return total;
}

template <class Dist>
int run_level_passes(const TaskGraph& g, const Dist& dist, Mapping& m,
                     int passes) {
  int swaps = 0;
  for (int pass = 0; pass < passes; ++pass) {
    const int s = edge_swap_pass(g, dist, m);
    swaps += s;
    if (s == 0) break;
  }
  return swaps;
}

/// Split every level-(k+1) node's task set between its level-k children
/// under capacity-proportional weight quotas.  Tasks preferring child c1
/// (positive score: total bytes-weighted distance saved by sitting on c1
/// rather than c2, neighbors pinned at their pass-start nodes) fill c1
/// first.  Nodes are processed in parallel — each writes only its own
/// tasks' slots in `next` — and every per-node decision reads the
/// immutable snapshot `m`, so the split is thread-count independent.
void split_machine_level(const TaskGraph& g, const topo::Topology& base,
                         const MachineHierarchy& mh, int k,
                         const std::vector<double>& task_w, const Mapping& m,
                         Mapping& next) {
  const auto& parent = mh.levels[static_cast<std::size_t>(k)].parent;
  const auto& rep_k = mh.reps[static_cast<std::size_t>(k)];
  const auto& rep_k1 = mh.reps[static_cast<std::size_t>(k) + 1];
  const auto& cap_k = mh.caps[static_cast<std::size_t>(k)];
  const int pk = static_cast<int>(parent.size());
  const int pk1 = static_cast<int>(rep_k1.size());
  const int n = g.num_vertices();

  // Children of each coarse node, in ascending level-k id (1 or 2 each).
  std::vector<std::array<int, 2>> kids(static_cast<std::size_t>(pk1),
                                       {-1, -1});
  for (int v = 0; v < pk; ++v) {
    auto& kc = kids[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
    (kc[0] < 0 ? kc[0] : kc[1]) = v;
  }

  // Bucket tasks by their current node: counting sort, ascending task id.
  std::vector<int> count(static_cast<std::size_t>(pk1) + 1, 0);
  for (int t = 0; t < n; ++t)
    ++count[static_cast<std::size_t>(m[static_cast<std::size_t>(t)]) + 1];
  for (int c = 0; c < pk1; ++c)
    count[static_cast<std::size_t>(c) + 1] += count[static_cast<std::size_t>(c)];
  std::vector<int> bucket(static_cast<std::size_t>(n));
  {
    std::vector<int> cursor(count.begin(), count.end() - 1);
    for (int t = 0; t < n; ++t)
      bucket[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(m[static_cast<std::size_t>(t)])]++)] = t;
  }

  support::parallel_for(pk1, kNodeGrain, [&](int begin, int end) {
    std::vector<std::pair<double, int>> order;  // (-score, task id)
    for (int c = begin; c < end; ++c) {
      const int first = count[static_cast<std::size_t>(c)];
      const int last = count[static_cast<std::size_t>(c) + 1];
      const int c1 = kids[static_cast<std::size_t>(c)][0];
      const int c2 = kids[static_cast<std::size_t>(c)][1];
      if (c2 < 0) {
        for (int i = first; i < last; ++i)
          next[static_cast<std::size_t>(
              bucket[static_cast<std::size_t>(i)])] = c1;
        continue;
      }
      const int r1 = rep_k[static_cast<std::size_t>(c1)];
      const int r2 = rep_k[static_cast<std::size_t>(c2)];
      // Edges staying inside this node contribute a per-node constant per
      // byte (the parent's rep is one of r1/r2) — precomputing it avoids
      // two distance lookups on the vast majority of edges at coarse
      // levels, where nodes are large and boundaries thin.
      const int rc = rep_k1[static_cast<std::size_t>(c)];
      const double dd_int =
          static_cast<double>(base.distance(r2, rc) - base.distance(r1, rc));
      double total_w = 0.0;
      order.clear();
      for (int i = first; i < last; ++i) {
        const int t = bucket[static_cast<std::size_t>(i)];
        total_w += task_w[static_cast<std::size_t>(t)];
        double score = 0.0;
        for (const graph::Edge& e : g.edges_of(t)) {
          const int cn = m[static_cast<std::size_t>(e.neighbor)];
          if (cn == c) {
            score += e.bytes * dd_int;
            continue;
          }
          const int rn = rep_k1[static_cast<std::size_t>(cn)];
          score += e.bytes * static_cast<double>(base.distance(r2, rn) -
                                                 base.distance(r1, rn));
        }
        order.emplace_back(-score, t);
      }
      std::sort(order.begin(), order.end());  // best-for-c1 first; id ties
      const double w1_target =
          total_w * cap_k[static_cast<std::size_t>(c1)] /
          (cap_k[static_cast<std::size_t>(c1)] +
           cap_k[static_cast<std::size_t>(c2)]);
      double w1 = 0.0;
      for (const auto& [neg_score, t] : order) {
        if (w1 < w1_target) {
          next[static_cast<std::size_t>(t)] = c1;
          w1 += task_w[static_cast<std::size_t>(t)];
        } else {
          next[static_cast<std::size_t>(t)] = c2;
        }
      }
    }
  });
}

}  // namespace

HierResult hier_map(const graph::TaskGraph& g, const topo::Topology& topo,
                    Rng& rng, const HierOptions& opt, DistanceMode mode,
                    const CacheHandlePtr& cache) {
  const int n = g.num_vertices();
  const int p = topo.size();
  TOPOMAP_REQUIRE(opt.flat_proc_cap >= 1 && opt.flat_proc_cap <= 20000,
                  "flat_proc_cap must be in [1, 20000] (DistanceCache cap)");
  TOPOMAP_REQUIRE(opt.flat_square_cap >= 0 && opt.flat_square_cap <= 20000,
                  "flat_square_cap must be in [0, 20000] (DistanceCache cap)");
  TOPOMAP_REQUIRE(opt.coarsen_factor >= 2, "coarsen_factor must be >= 2");
  TOPOMAP_REQUIRE(opt.refine_passes >= 0 && opt.coarse_refine_passes >= 0,
                  "refine pass counts must be non-negative");
  TOPOMAP_REQUIRE(n >= p,
                  "hier needs at least as many tasks as processors");

  OBS_SPAN("hier/map");
  HierResult out;
  if (n == 0) return out;

  // --- machine side: contract the processor graph when it is too wide ---
  // Square bypass: at n == p within the flat solver's reach, contraction
  // can only lose quality (the coarse plane's rep distances are lumpier
  // than the real metric) and saves nothing — solve flat instead.
  MachineHierarchy mh;
  const bool flat_square = n == p && p <= opt.flat_square_cap;
  const bool contracted = !flat_square && p > opt.flat_proc_cap;
  std::unique_ptr<NodeTopology> node_topo;
  if (contracted) {
    OBS_SPAN("hier/coarsen_machine");
    mh = coarsen_machine(topo, opt.flat_proc_cap);
    TOPOMAP_REQUIRE(
        mh.coarsest_size() <= 20000,
        "hier: machine contraction stalled above the DistanceCache cap on " +
            topo.name());
    node_topo = std::make_unique<NodeTopology>(topo, mh.reps.back(),
                                               std::move(mh.coarsest_adj));
    OBS_VALUE("hier/machine_nodes", node_topo->size());
  }
  const topo::Topology& plane = contracted ? *node_topo : topo;
  const int p_eff = plane.size();
  out.topo_levels = static_cast<int>(mh.levels.size());

  // --- task side: heavy-edge matching down to the comfort zone ---
  std::vector<part::CoarseLevel> tlevels;
  {
    OBS_SPAN("hier/coarsen_tasks");
    const TaskGraph* cur = &g;
    const long long stop_n =
        static_cast<long long>(opt.coarsen_factor) * p_eff;
    // Cap coarse vertices at ~0.65 of a target part so the coarsest
    // partition can still balance; matching naturally stalls right around
    // stop_n (average coarse weight = total / stop_n = cap/2.6).
    const double total_w = g.total_vertex_weight();
    const double weight_cap =
        total_w > 0.0 ? 0.65 * total_w / static_cast<double>(p_eff)
                      : std::numeric_limits<double>::infinity();
    while (cur->num_vertices() > stop_n) {
      part::CoarseLevel level;
      if (!part::coarsen_once(*cur, weight_cap, rng, &level)) break;
      tlevels.push_back(std::move(level));
      cur = &tlevels.back().coarse;
      OBS_VALUE("hier/level_vertices", cur->num_vertices());
    }
  }
  const TaskGraph& gm = tlevels.empty() ? g : tlevels.back().coarse;
  out.task_levels = static_cast<int>(tlevels.size());
  OBS_COUNTER_ADD("hier/task_levels", out.task_levels);
  OBS_COUNTER_ADD("hier/topo_levels", out.topo_levels);

  // --- coarsest solve: partition, quotient, TopoLB, RefineTopoLB ---
  std::vector<int> assign;
  Mapping mc;
  std::shared_ptr<const topo::DistanceCache> plane_cache;
  {
    OBS_SPAN("hier/coarse_solve");
    if (gm.num_vertices() == p_eff) {
      assign.resize(static_cast<std::size_t>(p_eff));
      std::iota(assign.begin(), assign.end(), 0);
    } else {
      assign = part::MultilevelPartitioner()
                   .partition(gm, p_eff, rng)
                   .assignment;
    }
    out.quotient = graph::quotient_graph(gm, assign, p_eff);

    // The plane cache is shared with the caller's handle only when the
    // plane *is* the caller's topology; a contracted plane lives and dies
    // with this call.
    const CacheHandlePtr solve_handle =
        contracted || !cache ? std::make_shared<CacheHandle>() : cache;
    if (mode == DistanceMode::kCached) plane_cache = solve_handle->get(plane);
    mc = TopoLB(opt.order, mode, solve_handle).map(out.quotient, plane, rng);
    if (opt.coarse_refine_passes > 0) {
      RefineResult rr =
          refine_mapping(out.quotient, plane, mc, opt.coarse_refine_passes,
                         mode, plane_cache.get());
      mc = std::move(rr.mapping);
      out.swaps += rr.swaps;
      out.coarse_hop_bytes = rr.hop_bytes_after;
    } else {
      out.coarse_hop_bytes = hop_bytes(out.quotient, plane, mc);
    }
    OBS_SERIES_APPEND("hier/hop_bytes_trajectory", out.coarse_hop_bytes);
  }
  out.coarse_mapping = mc;

  // --- task-side uncoarsening with bounded per-level refinement ---
  Mapping m(static_cast<std::size_t>(gm.num_vertices()));
  for (int v = 0; v < gm.num_vertices(); ++v)
    m[static_cast<std::size_t>(v)] =
        mc[static_cast<std::size_t>(assign[static_cast<std::size_t>(v)])];
  {
    OBS_SPAN("hier/uncoarsen_tasks");
    const auto level_stats = [&](const TaskGraph& lg,
                                 const Mapping& lm) -> HierLevelStats {
      const double hb =
          mode == DistanceMode::kCached
              ? hop_bytes_dist(lg, detail::CachedDistance{*plane_cache}, lm)
              : hop_bytes_dist(lg, detail::VirtualDistance{plane}, lm);
      return HierLevelStats{lg.num_vertices(), hb};
    };
    out.trajectory.push_back(level_stats(gm, m));
    for (int li = static_cast<int>(tlevels.size()) - 1; li >= 0; --li) {
      const TaskGraph& finer =
          (li == 0) ? g : tlevels[static_cast<std::size_t>(li - 1)].coarse;
      const auto& f2c = tlevels[static_cast<std::size_t>(li)].fine_to_coarse;
      Mapping mf(static_cast<std::size_t>(finer.num_vertices()));
      for (int v = 0; v < finer.num_vertices(); ++v)
        mf[static_cast<std::size_t>(v)] =
            m[static_cast<std::size_t>(f2c[static_cast<std::size_t>(v)])];
      if (opt.refine_passes > 0) {
        out.swaps +=
            mode == DistanceMode::kCached
                ? run_level_passes(finer, detail::CachedDistance{*plane_cache},
                                   mf, opt.refine_passes)
                : run_level_passes(finer, detail::VirtualDistance{plane}, mf,
                                   opt.refine_passes);
      }
      m = std::move(mf);
      out.trajectory.push_back(level_stats(finer, m));
      OBS_SERIES_APPEND("hier/hop_bytes_trajectory",
                        out.trajectory.back().hop_bytes);
    }
  }

  // Compose the coarsest group id of every original task (for the
  // projection-exactness tests and callers that want the partition).
  out.coarse_assignment.resize(static_cast<std::size_t>(n));
  std::iota(out.coarse_assignment.begin(), out.coarse_assignment.end(), 0);
  for (const auto& level : tlevels)
    for (int v = 0; v < n; ++v) {
      auto& c = out.coarse_assignment[static_cast<std::size_t>(v)];
      c = level.fine_to_coarse[static_cast<std::size_t>(c)];
    }
  for (int v = 0; v < n; ++v)
    out.coarse_assignment[static_cast<std::size_t>(v)] =
        assign[static_cast<std::size_t>(
            out.coarse_assignment[static_cast<std::size_t>(v)])];

  // --- machine-side splitting back to real processors ---
  if (contracted) {
    OBS_SPAN("hier/split_machine");
    const std::vector<double> task_w = balance_weights(g);
    for (int k = static_cast<int>(mh.levels.size()) - 1; k >= 0; --k) {
      Mapping next(static_cast<std::size_t>(n));
      {
        OBS_SPAN("hier/split_level");
        split_machine_level(g, topo, mh, k, task_w, m, next);
      }
      m = std::move(next);
      const int pk =
          static_cast<int>(mh.levels[static_cast<std::size_t>(k)].parent.size());
      if (pk <= opt.refine_node_cap && opt.refine_passes > 0) {
        OBS_SPAN("hier/split_refine");
        const RepDistance dist{topo, mh.reps[static_cast<std::size_t>(k)]};
        out.swaps += run_level_passes(g, dist, m, opt.refine_passes);
      }
      if (pk <= opt.refine_node_cap || k == 0) {
        const RepDistance dist{topo, mh.reps[static_cast<std::size_t>(k)]};
        out.trajectory.push_back(
            HierLevelStats{n, hop_bytes_dist(g, dist, m)});
        OBS_SERIES_APPEND("hier/hop_bytes_trajectory",
                          out.trajectory.back().hop_bytes);
      }
    }
  }

  // --- optional final polish ("hier+refine") ---
  if (opt.final_refine) {
    OBS_SPAN("hier/final_refine");
    if (n == p && !contracted) {
      RefineResult rr =
          refine_mapping(g, topo, m, 8, mode, plane_cache.get());
      m = std::move(rr.mapping);
      out.swaps += rr.swaps;
    } else if (contracted) {
      out.swaps +=
          run_level_passes(g, detail::VirtualDistance{topo}, m, 3);
    } else if (mode == DistanceMode::kCached) {
      out.swaps += run_level_passes(
          g, detail::CachedDistance{*plane_cache}, m, 3);
    } else {
      out.swaps +=
          run_level_passes(g, detail::VirtualDistance{topo}, m, 3);
    }
    if (!out.trajectory.empty()) {
      const double hb = hop_bytes(g, topo, m);
      out.trajectory.push_back(HierLevelStats{n, hb});
      OBS_SERIES_APPEND("hier/hop_bytes_trajectory", hb);
    }
  }

  OBS_COUNTER_ADD("hier/swaps", out.swaps);
  OBS_COUNTER_ADD("hier/placements", n);
  out.mapping = std::move(m);
  return out;
}

HierTopoLB::HierTopoLB(HierOptions options, DistanceMode mode,
                       CacheHandlePtr cache)
    : options_(options), mode_(mode), cache_(std::move(cache)) {
  TOPOMAP_REQUIRE(options_.flat_proc_cap >= 1 &&
                      options_.flat_proc_cap <= 20000,
                  "flat_proc_cap must be in [1, 20000]");
  TOPOMAP_REQUIRE(options_.flat_square_cap >= 0 &&
                      options_.flat_square_cap <= 20000,
                  "flat_square_cap must be in [0, 20000]");
  TOPOMAP_REQUIRE(options_.coarsen_factor >= 2,
                  "coarsen_factor must be >= 2");
}

Mapping HierTopoLB::map(const graph::TaskGraph& g, const topo::Topology& topo,
                        Rng& rng) const {
  return hier_map(g, topo, rng, options_, mode_, cache_).mapping;
}

std::string HierTopoLB::name() const {
  return options_.final_refine ? "HierTopoLB+refine" : "HierTopoLB";
}

}  // namespace topomap::core
