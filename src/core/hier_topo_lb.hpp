// HierTopoLB — multilevel (coarsen / map / uncoarsen) topology-aware
// mapping, the scale path to million-task graphs (DESIGN.md §12).
//
// Flat TopoLB keeps an O(n^2) assigned-cost matrix and the DistanceCache a
// dense O(p^2) plane, which caps direct mapping at a few thousand tasks and
// processors.  HierTopoLB lifts both limits with two hierarchies:
//
//   task side      repeated heavy-edge matching (part::coarsen_once) shrinks
//                  G_0 -> G_1 -> ... -> G_M until G_M fits TopoLB's comfort
//                  zone;
//   machine side   when p exceeds `flat_proc_cap`, the processor graph is
//                  contracted the same way into node groups whose pairwise
//                  distances are the *real* base-topology distances between
//                  representative processors — so the coarse solve still
//                  optimizes the true metric, just at node granularity.
//
// The coarsest graph is partitioned onto the nodes (MultilevelPartitioner +
// graph::quotient_graph), mapped with TopoLB on a real topo::DistanceCache
// plane, polished with RefineTopoLB, and then projected back level by
// level.  Every projection level runs a bounded deterministic swap pass
// (core/swap_kernel.hpp) over the crossing edges, so quality is recovered
// where it is cheap; machine nodes are split child-by-child under
// capacity-proportional quotas with distance-preference ordering.
//
// The strategy accepts n >= p (bijective when n == p <= flat_proc_cap,
// weight-balanced many-to-one otherwise) and is byte-identical for any
// TOPOMAP_THREADS at a fixed seed: all matching/partitioning is
// sequential-by-construction and the swap passes use a parallel
// filter + sequential accept schedule whose decisions never depend on
// thread count.
#pragma once

#include "core/strategy.hpp"
#include "core/topo_lb.hpp"
#include "graph/task_graph.hpp"

namespace topomap::core {

struct HierOptions {
  /// Largest machine mapped directly: with p <= cap the coarse solve runs
  /// on the real topology; above it the machine side is contracted to at
  /// most this many nodes first.  Must stay within the DistanceCache node
  /// ceiling (20000).
  int flat_proc_cap = 2048;
  /// Square bypass: at n == p <= this cap the hierarchy is pure overhead
  /// (no task coarsening would trigger and the flat solver fits), so the
  /// machine side is left uncontracted and the pipeline degenerates to
  /// TopoLB + bounded refinement on the real plane — matching flat
  /// quality exactly where flat still runs.  Must stay within the
  /// DistanceCache node ceiling (20000); the O(p^2) solve state makes
  /// values much beyond 4096 expensive.
  int flat_square_cap = 4096;
  /// Task coarsening stops near `coarsen_factor * (coarse node count)`
  /// vertices, so the coarsest partition has a few tasks per node to work
  /// with.
  int coarsen_factor = 4;
  /// Bounded swap passes after each task-side projection level (0 disables
  /// level refinement entirely — the pure-projection mode the exactness
  /// property test relies on).
  int refine_passes = 1;
  /// Machine-side levels run their swap pass only while the node count is
  /// at most this cap; deeper (wider) levels keep the quota split as-is.
  int refine_node_cap = 8192;
  /// RefineTopoLB sweeps over the coarsest (square) mapping; 0 disables.
  int coarse_refine_passes = 4;
  /// "+refine": full RefineTopoLB when the final mapping is square and the
  /// machine small enough, extra finest-level swap passes otherwise.
  bool final_refine = false;
  /// Estimation order of the coarsest TopoLB solve.
  EstimationOrder order = EstimationOrder::kSecond;
};

/// Vertex count and hop-bytes after each task-side projection level (first
/// entry = the coarsest graph, last = G_0).  Hop-bytes are measured on the
/// coarse node plane until the machine side is split.
struct HierLevelStats {
  int vertices = 0;
  double hop_bytes = 0.0;
};

struct HierResult {
  /// task -> processor, the strategy output.
  Mapping mapping;
  /// G_0 task -> coarsest group id (composition of every matching level).
  std::vector<int> coarse_assignment;
  /// coarsest group -> coarse node (== processor when no machine
  /// contraction happened).
  Mapping coarse_mapping;
  /// The coarsest quotient graph the groups were mapped with.
  graph::TaskGraph quotient;
  int task_levels = 0;        ///< task-side contraction rounds
  int topo_levels = 0;        ///< machine-side contraction rounds
  double coarse_hop_bytes = 0.0;  ///< quotient hop-bytes after coarse solve
  std::vector<HierLevelStats> trajectory;
  int swaps = 0;              ///< accepted swaps across all bounded passes
};

/// Run the full pipeline.  Requires n >= p >= 1 and, when p >
/// opt.flat_proc_cap, a topology with processor-level adjacency
/// (Topology::has_adjacency) so the machine side can be contracted.
HierResult hier_map(const graph::TaskGraph& g, const topo::Topology& topo,
                    Rng& rng, const HierOptions& opt = {},
                    DistanceMode mode = DistanceMode::kCached,
                    const CacheHandlePtr& cache = nullptr);

/// Strategy adaptor ("hier" / "hier+refine" specs).
class HierTopoLB final : public MappingStrategy {
 public:
  explicit HierTopoLB(HierOptions options = {},
                      DistanceMode mode = DistanceMode::kCached,
                      CacheHandlePtr cache = nullptr);

  Mapping map(const graph::TaskGraph& g, const topo::Topology& topo,
              Rng& rng) const override;
  std::string name() const override;
  bool supports_oversubscription() const override { return true; }

  const HierOptions& options() const { return options_; }

 private:
  HierOptions options_;
  DistanceMode mode_;
  CacheHandlePtr cache_;  // shared across a composition; may be null
};

}  // namespace topomap::core
