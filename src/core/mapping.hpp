// Task-mapping representation and validation.
//
// A mapping P : V_t -> V_p assigns each task-graph vertex a processor.
// The paper's mapping phase runs after partitioning, so strategies require
// |V_t| == |V_p| and produce bijections; the metric functions accept any
// many-to-one mapping (co-located tasks simply contribute zero hop-bytes).
#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "topo/topology.hpp"

namespace topomap::core {

/// mapping[task] == processor index.  kUnassigned marks partial mappings.
using Mapping = std::vector<int>;

inline constexpr int kUnassigned = -1;

/// Every task assigned to a valid processor of `topo`.
bool is_complete(const Mapping& m, const topo::Topology& topo);

/// Complete and injective (a bijection when |V_t| == |V_p|).
bool is_one_to_one(const Mapping& m, const topo::Topology& topo);

/// The identity mapping for n tasks (task i on processor i).  Useful as the
/// paper's "optimal mapping" when the task graph is an isomorphic subgraph
/// of the topology with matching vertex numbering (e.g. stencil_3d(8,8,8)
/// onto TorusMesh::mesh({8,8,8})).
Mapping identity_mapping(int n);

/// Inverse of a one-to-one mapping: proc -> task (kUnassigned for empty).
std::vector<int> inverse_mapping(const Mapping& m, const topo::Topology& topo);

}  // namespace topomap::core
