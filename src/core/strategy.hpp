// Mapping-strategy interface, mirroring the Charm++ load-balancing strategy
// plug-in point the paper implements TopoLB/TopoCentLB behind.
//
// Strategies take the (already partitioned/coalesced) task graph with
// |V_t| == |V_p| and produce a bijective task -> processor mapping.  All
// randomness flows through the caller-provided Rng.
#pragma once

#include <memory>
#include <string>

#include "core/mapping.hpp"
#include "graph/task_graph.hpp"
#include "support/rng.hpp"
#include "topo/topology.hpp"

namespace topomap::core {

/// How a strategy evaluates processor distances.
///   kCached   build a topo::DistanceCache once per map() call and read
///             dense uint16 rows — the production fast path;
///   kVirtual  dispatch through Topology::distance on every lookup — the
///             reference path the equivalence tests and the cached-vs-virtual
///             benches compare against.
/// The two paths run the same kernels in the same order and produce
/// byte-identical mappings (asserted by tests/test_distance_cache.cpp).
enum class DistanceMode { kCached, kVirtual };

/// Shared DistanceCache slot for a strategy composition (core/cache_handle.hpp).
class CacheHandle;
using CacheHandlePtr = std::shared_ptr<CacheHandle>;

class MappingStrategy {
 public:
  virtual ~MappingStrategy() = default;

  /// Produce a complete one-to-one mapping.  Requires
  /// g.num_vertices() == topo.size() (throws precondition_error otherwise)
  /// unless supports_oversubscription() — then any n >= p is accepted and
  /// the result is a balanced many-to-one mapping (bijective at n == p).
  virtual Mapping map(const graph::TaskGraph& g, const topo::Topology& topo,
                      Rng& rng) const = 0;

  virtual std::string name() const = 0;

  /// True for strategies that map more tasks than processors themselves
  /// (HierTopoLB); the CLI uses this to skip the tasks == procs check.
  virtual bool supports_oversubscription() const { return false; }

 protected:
  static void require_square(const graph::TaskGraph& g,
                             const topo::Topology& topo);
};

using StrategyPtr = std::shared_ptr<const MappingStrategy>;

/// Construct a strategy by name:
///   "random"             uniform random bijection
///   "greedy"             compute-load greedy (topology-oblivious, GreedyLB)
///   "topocent"           TopoCentLB
///   "topolb"             TopoLB, second-order estimation (paper default)
///   "topolb1"            TopoLB, first-order estimation
///   "topolb3"            TopoLB, third-order estimation
///   "recursive"          recursive dual-bisection mapper (extension)
///   "optimal"            exact branch-and-bound oracle (core/optimal_lb.hpp;
///                        <= 12 tasks, throws precondition_error beyond)
///   "hier"               multilevel coarsen/map/uncoarsen (HierTopoLB);
///                        accepts n >= p and scales to million-task graphs
///   "hier+refine"        HierTopoLB with a final refinement stage (full
///                        RefineTopoLB when square, extra bounded passes
///                        otherwise)
///   "anneal"             simulated annealing from a random start
///   "anneal-warm"        simulated annealing warm-started from TopoLB
///   "<base>+refine"      any of the above followed by RefineTopoLB
///   "<base>+linkrefine"  any of the above followed by link-load refinement
/// `mode` selects the distance path for every strategy in the composition
/// (the default cached mode is what production callers want).  Every stage
/// of a composition shares one CacheHandle, so e.g. "topolb+refine" and
/// warm-started annealing build the distance matrix once per map() call.
StrategyPtr make_strategy(const std::string& spec,
                          DistanceMode mode = DistanceMode::kCached);

/// make_strategy with a caller-owned CacheHandle instead of a fresh one —
/// the topomapd service pre-seeds the handle from its svc::CachePool so
/// every request on the same machine reuses one distance-plane fill.
/// `handle` must be non-null.
StrategyPtr make_strategy_with_handle(const std::string& spec,
                                      DistanceMode mode,
                                      const CacheHandlePtr& handle);

}  // namespace topomap::core
