// Mapping-strategy interface, mirroring the Charm++ load-balancing strategy
// plug-in point the paper implements TopoLB/TopoCentLB behind.
//
// Strategies take the (already partitioned/coalesced) task graph with
// |V_t| == |V_p| and produce a bijective task -> processor mapping.  All
// randomness flows through the caller-provided Rng.
#pragma once

#include <memory>
#include <string>

#include "core/mapping.hpp"
#include "graph/task_graph.hpp"
#include "support/rng.hpp"
#include "topo/topology.hpp"

namespace topomap::core {

class MappingStrategy {
 public:
  virtual ~MappingStrategy() = default;

  /// Produce a complete one-to-one mapping.  Requires
  /// g.num_vertices() == topo.size() (throws precondition_error otherwise).
  virtual Mapping map(const graph::TaskGraph& g, const topo::Topology& topo,
                      Rng& rng) const = 0;

  virtual std::string name() const = 0;

 protected:
  static void require_square(const graph::TaskGraph& g,
                             const topo::Topology& topo);
};

using StrategyPtr = std::shared_ptr<const MappingStrategy>;

/// Construct a strategy by name:
///   "random"             uniform random bijection
///   "greedy"             compute-load greedy (topology-oblivious, GreedyLB)
///   "topocent"           TopoCentLB
///   "topolb"             TopoLB, second-order estimation (paper default)
///   "topolb1"            TopoLB, first-order estimation
///   "topolb3"            TopoLB, third-order estimation
///   "recursive"          recursive dual-bisection mapper (extension)
///   "anneal"             simulated annealing from a random start
///   "anneal-warm"        simulated annealing warm-started from TopoLB
///   "<base>+refine"      any of the above followed by RefineTopoLB
///   "<base>+linkrefine"  any of the above followed by link-load refinement
StrategyPtr make_strategy(const std::string& spec);

}  // namespace topomap::core
