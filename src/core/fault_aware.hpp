// Mapping onto the alive subset of a faulted machine.
//
// Strategies require a bijection onto processors 0..p-1, so they refuse a
// FaultOverlay with dead processors (see MappingStrategy::require_square).
// map_on_alive() closes the gap: it re-indexes the alive processors into a
// compact topo::SubTopology (distances/routes still the overlay's, i.e.
// fault-rerouted), pads the task graph with zero-weight isolated tasks up
// to the alive count so the bijection precondition holds, runs the
// strategy, and translates the result back to original processor ids.
// Padding preserves strategy determinism: dummy tasks communicate nothing,
// so they absorb the left-over processors without perturbing real
// placements' cost structure.
//
// Partition tolerance: when faults split the alive set into several
// components, mapping proceeds on the *primary* component (the largest;
// ties to the lowest processor id — topo::connected_components) as long as
// the tasks fit there.  Only when they do not fit does map_on_alive throw,
// and the error names the split; map_on_largest_component() never throws
// for capacity — it deterministically quarantines the overflow (lightest
// communicators first) and reports who was left out, which is what a
// runtime that must keep running wants.
#pragma once

#include <vector>

#include "core/mapping.hpp"
#include "core/strategy.hpp"
#include "graph/task_graph.hpp"
#include "support/rng.hpp"
#include "topo/fault_overlay.hpp"

namespace topomap::core {

/// Map g onto the alive processors of `overlay` with `strategy`.  Requires
/// 1 <= g.num_vertices() <= overlay.num_alive(); when faults split the
/// alive set the tasks must fit on the largest component
/// (precondition_error naming the partition otherwise).  The returned
/// mapping uses the overlay's original processor ids; every assignment is
/// an alive processor and no processor is used twice.
Mapping map_on_alive(const MappingStrategy& strategy,
                     const graph::TaskGraph& g,
                     const topo::FaultOverlay& overlay, Rng& rng);

/// A partition-tolerant mapping: placed tasks live on one connected
/// component; the rest are deterministically quarantined.
struct PartitionedMapResult {
  /// Per-task processor; quarantined tasks hold kUnassigned.
  Mapping mapping;
  /// Quarantined task ids, ascending.  Empty when everything fit.
  std::vector<int> quarantined;
  /// Alive components the machine split into (1 = connected).
  int components = 1;
  /// Processors in the component the tasks were mapped onto.
  int primary_size = 0;
};

/// Map as much of g as fits onto the primary alive component of `overlay`.
/// When the component is smaller than the task count, the heaviest
/// communicators (total incident bytes, ties to the lower task id) keep
/// their places and the rest are quarantined — deterministic, so every
/// thread count and every retry strands the same tasks.  Requires >= 1
/// task and >= 1 alive processor.
PartitionedMapResult map_on_largest_component(const MappingStrategy& strategy,
                                              const graph::TaskGraph& g,
                                              const topo::FaultOverlay& overlay,
                                              Rng& rng);

}  // namespace topomap::core
