// Mapping onto the alive subset of a faulted machine.
//
// Strategies require a bijection onto processors 0..p-1, so they refuse a
// FaultOverlay with dead processors (see MappingStrategy::require_square).
// map_on_alive() closes the gap: it re-indexes the alive processors into a
// compact topo::SubTopology (distances/routes still the overlay's, i.e.
// fault-rerouted), pads the task graph with zero-weight isolated tasks up
// to the alive count so the bijection precondition holds, runs the
// strategy, and translates the result back to original processor ids.
// Padding preserves strategy determinism: dummy tasks communicate nothing,
// so they absorb the left-over processors without perturbing real
// placements' cost structure.
#pragma once

#include "core/mapping.hpp"
#include "core/strategy.hpp"
#include "graph/task_graph.hpp"
#include "support/rng.hpp"
#include "topo/fault_overlay.hpp"

namespace topomap::core {

/// Map g onto the alive processors of `overlay` with `strategy`.  Requires
/// 1 <= g.num_vertices() <= overlay.num_alive() (precondition_error
/// otherwise, also when faults disconnect the alive set).  The returned
/// mapping uses the overlay's original processor ids; every assignment is
/// an alive processor and no processor is used twice.
Mapping map_on_alive(const MappingStrategy& strategy,
                     const graph::TaskGraph& g,
                     const topo::FaultOverlay& overlay, Rng& rng);

}  // namespace topomap::core
