// TopoLB (paper §4.1–4.4) — the paper's primary contribution.
//
// Iteratively select the unplaced task whose placement is most *critical*
// and put it on its cheapest free processor.  Criticality of task t is
//
//     gain(t) = F_avg(t) - F_min(t)
//
// where F_avg / F_min are the average / minimum of the estimation function
// f_est(t, q, P) over the free processors q: a task whose best spot is much
// better than a typical spot must be pinned down now, because waiting risks
// losing that spot.
//
// The estimation function approximates t's eventual contribution to
// hop-bytes.  Writing A(t, q) for the exact contribution of t's *placed*
// neighbours ( sum c_tj * d(q, P(t_j)) ) and U(t) for the total bytes to
// *unplaced* neighbours:
//
//   first order   f = A(t, q)
//   second order  f = A(t, q) + U(t) * meandist_Vp(q)      (paper default)
//   third order   f = A(t, q) + U(t) * meandist_free_k(q)
//
// meandist_Vp(q) is the static mean distance from q to every processor;
// meandist_free_k(q) is the mean distance from q to the processors still
// free at cycle k.  Second order costs O(p * |E_t|) total; third order
// costs O(p^2) per cycle = O(p^3) total (paper §4.4), which is why second
// order is the production default.
//
// Tie-breaking (unspecified in the paper, documented in DESIGN.md): task
// ties by larger total communication then lower id; processor ties by
// lower id.  Gain comparisons use a relative epsilon so the tie rules do
// not depend on floating-point noise.  The algorithm is fully
// deterministic, for any distance mode and any support::parallel thread
// count.
#pragma once

#include <utility>

#include "core/strategy.hpp"

namespace topomap::core {

enum class EstimationOrder { kFirst = 1, kSecond = 2, kThird = 3 };

class TopoLB final : public MappingStrategy {
 public:
  explicit TopoLB(EstimationOrder order = EstimationOrder::kSecond,
                  DistanceMode mode = DistanceMode::kCached,
                  CacheHandlePtr cache = nullptr)
      : order_(order), mode_(mode), cache_(std::move(cache)) {}

  Mapping map(const graph::TaskGraph& g, const topo::Topology& topo,
              Rng& rng) const override;
  std::string name() const override;

  EstimationOrder order() const { return order_; }
  DistanceMode mode() const { return mode_; }

 private:
  EstimationOrder order_;
  DistanceMode mode_;
  CacheHandlePtr cache_;  // shared across a composition; may be null
};

}  // namespace topomap::core
