#include "core/baseline_lb.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"
#include "topo/fault_overlay.hpp"

namespace topomap::core {

void MappingStrategy::require_square(const graph::TaskGraph& g,
                                     const topo::Topology& topo) {
  // A strategy run directly on an overlay with dead processors would hand
  // out dead placements (size() still counts them) — fail fast and point at
  // the alive-subset entry point.  Link-only fault sets are fine: every
  // processor is placeable and distances already route around the faults.
  if (const auto* overlay = dynamic_cast<const topo::FaultOverlay*>(&topo)) {
    TOPOMAP_REQUIRE(
        overlay->num_failed_nodes() == 0,
        "mapping strategies need every processor alive; " + topo.name() +
            " has " + std::to_string(overlay->num_failed_nodes()) +
            " failed processors — use core::map_on_alive to map onto the "
            "alive subset");
  }
  TOPOMAP_REQUIRE(g.num_vertices() == topo.size(),
                  "mapping strategies need |V_t| == |V_p|; partition/coalesce "
                  "the task graph first");
}

Mapping RandomLB::map(const graph::TaskGraph& g, const topo::Topology& topo,
                      Rng& rng) const {
  require_square(g, topo);
  return rng.permutation(topo.size());
}

Mapping GreedyLB::map(const graph::TaskGraph& g, const topo::Topology& topo,
                      Rng& rng) const {
  require_square(g, topo);
  const int n = g.num_vertices();

  // Heaviest-first task order; ties broken by a random shuffle so that the
  // common all-equal-load case does not degenerate to identity.
  std::vector<int> order = rng.permutation(n);
  std::stable_sort(order.begin(), order.end(), [&g](int a, int b) {
    return g.vertex_weight(a) > g.vertex_weight(b);
  });

  // With one task per processor the "least loaded" processor is simply the
  // next empty one; visit processors in random order (GreedyLB makes no
  // topology promise, and Charm++'s implementation is effectively random
  // with respect to the network).
  std::vector<int> procs = rng.permutation(n);
  Mapping m(static_cast<std::size_t>(n), kUnassigned);
  for (int i = 0; i < n; ++i)
    m[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
        procs[static_cast<std::size_t>(i)];
  return m;
}

}  // namespace topomap::core
